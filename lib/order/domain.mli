(** Database domains with complete objects (Section 3 of the paper) and the
    executable content of Theorem 1 (max-descriptions are glbs), Lemma 1
    (bases), Corollary 1, and Theorem 2 (monotonicity + complete saturation
    ⇒ naïve evaluation).

    All checks are carried out relative to explicit finite pools, as in
    {!Preorder}. *)

module type COMPLETE_DOMAIN = sig
  type t

  val leq : t -> t -> bool

  (** [is_complete x] iff [x ∈ C], the objects without nulls. *)
  val is_complete : t -> bool

  (** [pi_cpl x] is the unique maximal complete object under [x] (e.g.
      dropping rows with nulls from a naïve table). *)
  val pi_cpl : t -> t
end

module Make (D : COMPLETE_DOMAIN) : sig
  type elt = D.t

  module P : module type of Preorder.Make (D)

  (** {1 Structural laws of complete objects} *)

  (** [retraction_laws ~pool] checks, over [pool], the three requirements on
      complete objects: [pi_cpl x ⊑ x], [pi_cpl] is the identity on complete
      objects, and [pi_cpl] is monotone. *)
  val retraction_laws : pool:elt list -> bool

  (** [up_cpl x ~pool] is [↑cpl x ∩ pool]: the complete objects of [pool]
      above [x]. *)
  val up_cpl : elt -> pool:elt list -> elt list

  (** {1 Max-descriptions and Theorem 1} *)

  (** [models x ~pool] is [Mod(x) = ↑x] restricted to [pool]; [theory] is
      [Th(x) = ↓x]. *)
  val models : elt -> pool:elt list -> elt list

  val theory : elt -> pool:elt list -> elt list
  val models_of_set : elt list -> pool:elt list -> elt list
  val theory_of_set : elt list -> pool:elt list -> elt list

  (** [is_max_description x xs ~pool] iff [Mod(x) = Mod(Th(xs))] over
      [pool]. *)
  val is_max_description : elt -> elt list -> pool:elt list -> bool

  (** [theorem1_agrees xs ~pool] verifies Theorem 1 on the pool: an element
      is a max-description of [xs] iff it is a glb of [xs]. *)
  val theorem1_agrees : elt list -> pool:elt list -> bool

  (** {1 Certain answers} *)

  (** [certain_cpl q x ~completions ~pool] is
      [∧cpl { q(c) | c ∈ completions }], the glb computed among complete
      objects of [pool]; [completions] should sample [↑cpl x].  Returns
      [None] when the pool exhibits no glb. *)
  val certain_cpl :
    (elt -> elt) -> elt -> completions:elt list -> pool:elt list -> elt option

  (** [naive_eval q x] is [pi_cpl (q x)]. *)
  val naive_eval : (elt -> elt) -> elt -> elt

  (** [naive_evaluation_ok q x ~completions ~pool] iff
      [certain_cpl q x ∼ naive_eval q x] (Theorem 2's conclusion). *)
  val naive_evaluation_ok :
    (elt -> elt) -> elt -> completions:elt list -> pool:elt list -> bool

  (** {1 Complete saturation (Theorem 2's premises)} *)

  (** [complete_saturation q ~on ~up_cpl ~pool] checks the two saturation
      conditions for query [q] on each [x ∈ on], where [up_cpl x] supplies a
      finite sample of complete objects above [x] and incompatibility of two
      complete objects means they have no common upper bound in [pool]. *)
  val complete_saturation :
    (elt -> elt) ->
    on:elt list ->
    up_cpl:(elt -> elt list) ->
    pool:elt list ->
    bool

  (** [corollary1 q x] iff [certain(Q, ↑x) = Q(x)]: over the semantics
      [[x]] = ↑x, certain answers of a monotone query are computed by
      application.  Checked as [q x] being a glb of [q(↑x ∩ pool)]. *)
  val corollary1 : (elt -> elt) -> elt -> pool:elt list -> bool
end
