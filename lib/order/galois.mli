(** The model/theory Galois connection behind max-descriptions
    (Section 2.2 and Theorem 1, after [43]): over a preordered set viewed
    as both models and formulas, [Mod] and [Th] form an antitone Galois
    connection, and [Mod ∘ Th] is a closure operator whose closed sets are
    the model classes of objects — which is exactly why max-descriptions
    are glbs.

    All computations are over finite pools, as in {!Preorder}. *)

module Make (P : Preorder.S) : sig
  type elt = P.t

  (** [models xs ~pool] — ⋂ Mod(x) = elements above every [x ∈ xs]. *)
  val models : elt list -> pool:elt list -> elt list

  (** [theory xs ~pool] — ⋂ Th(x) = elements below every [x ∈ xs]. *)
  val theory : elt list -> pool:elt list -> elt list

  (** [closure xs ~pool] — [Mod (Th xs)] over the pool. *)
  val closure : elt list -> pool:elt list -> elt list

  (** The Galois laws, checked over the pool:
      antitone: [xs ⊆ ys ⇒ models ys ⊆ models xs] (and dually);
      section:  [xs ⊆ theory (models xs)] and [xs ⊆ models (theory xs)];
      closure operator: extensive, monotone, idempotent. *)
  val laws_hold : pool:elt list -> bool

  (** [closed xs ~pool] — [xs] equals its closure (as sets of pool
      members). *)
  val closed : elt list -> pool:elt list -> bool

  (** [is_max_description x xs ~pool] — [Mod {x} = closure xs]: the [16]
      definition, which Theorem 1 identifies with [x = ∧xs]. *)
  val is_max_description : elt -> elt list -> pool:elt list -> bool
end
