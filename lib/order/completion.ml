(* Cuts are represented by the bitmask of their lower set A; the upper set
   is recomputed as up(A).  A set is a cut-lower-set iff down(up(A)) = A. *)

type t = {
  size : int;
  leq : int -> int -> bool;
  cuts : int array; (* lower-set masks, sorted *)
  index : (int, int) Hashtbl.t; (* mask -> position in cuts *)
}

let mem mask x = mask land (1 lsl x) <> 0

let make ~size ~leq =
  let full = (1 lsl size) - 1 in
  let up mask =
    let r = ref 0 in
    for y = 0 to size - 1 do
      let dominates =
        let ok = ref true in
        for x = 0 to size - 1 do
          if mem mask x && not (leq x y) then ok := false
        done;
        !ok
      in
      if dominates then r := !r lor (1 lsl y)
    done;
    !r
  in
  let down mask =
    let r = ref 0 in
    for y = 0 to size - 1 do
      let below =
        let ok = ref true in
        for x = 0 to size - 1 do
          if mem mask x && not (leq y x) then ok := false
        done;
        !ok
      in
      if below then r := !r lor (1 lsl y)
    done;
    !r
  in
  let seen = Hashtbl.create 64 in
  for s = 0 to full do
    let a = down (up s) in
    if not (Hashtbl.mem seen a) then Hashtbl.add seen a ()
  done;
  let cuts =
    Hashtbl.fold (fun a () acc -> a :: acc) seen [] |> List.sort compare
    |> Array.of_list
  in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i a -> Hashtbl.replace index a i) cuts;
  { size; leq; cuts; index }

let cardinal c = Array.length c.cuts

let down_closure c mask =
  (* recompute down(up(mask)) in the stored preorder *)
  let up m =
    let r = ref 0 in
    for y = 0 to c.size - 1 do
      let ok = ref true in
      for x = 0 to c.size - 1 do
        if mem m x && not (c.leq x y) then ok := false
      done;
      if !ok then r := !r lor (1 lsl y)
    done;
    !r
  in
  let down m =
    let r = ref 0 in
    for y = 0 to c.size - 1 do
      let ok = ref true in
      for x = 0 to c.size - 1 do
        if mem m x && not (c.leq y x) then ok := false
      done;
      if !ok then r := !r lor (1 lsl y)
    done;
    !r
  in
  down (up mask)

let embed c x =
  let a = down_closure c (1 lsl x) in
  Hashtbl.find c.index a

let cut_leq c i j =
  let a1 = c.cuts.(i) and a2 = c.cuts.(j) in
  a1 land a2 = a1

let meet c i j =
  let a = down_closure c (c.cuts.(i) land c.cuts.(j)) in
  (* intersection of cut lower sets is already closed; the closure is a
     no-op defensively *)
  Hashtbl.find c.index a

let join c i j =
  let a = down_closure c (c.cuts.(i) lor c.cuts.(j)) in
  Hashtbl.find c.index a

let is_lattice c =
  let n = cardinal c in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let m = meet c i j and u = join c i j in
      if not (cut_leq c m i && cut_leq c m j) then ok := false;
      if not (cut_leq c i u && cut_leq c j u) then ok := false;
      (* greatest lower bound property *)
      for k = 0 to n - 1 do
        if cut_leq c k i && cut_leq c k j && not (cut_leq c k m) then
          ok := false;
        if cut_leq c i k && cut_leq c j k && not (cut_leq c u k) then
          ok := false
      done
    done
  done;
  !ok

let embedding_preserves_order c ~leq =
  let ok = ref true in
  for x = 0 to c.size - 1 do
    for y = 0 to c.size - 1 do
      if leq x y <> cut_leq c (embed c x) (embed c y) then ok := false
    done
  done;
  !ok
