(** The classical powerdomain liftings from programming-language semantics
    ([22]; used for databases in [9, 34, 36, 39]) that Section 4 measures
    against the semantic information ordering:

    - Hoare (lower):   X ⊑H Y iff ∀x∈X ∃y∈Y. x ⊑ y
    - Smyth (upper):   X ⊑S Y iff ∀y∈Y ∃x∈X. x ⊑ y
    - Plotkin (convex): both.

    Over tuples ordered by "null below everything" these give the orderings
    ⪯ (Hoare — OWA flavour) and the Plotkin ordering used for CWA; Prop. 4
    and Prop. 8 locate them relative to ⊑ and ⊑cwa. *)

module Make (P : Preorder.S) : sig
  type elt = P.t

  val hoare : elt list -> elt list -> bool
  val smyth : elt list -> elt list -> bool
  val plotkin : elt list -> elt list -> bool

  (** Each lift is itself a preorder on finite sets; these instantiate
      {!Preorder.Make} over lists. *)
  module Hoare : Preorder.S with type t = elt list

  module Smyth : Preorder.S with type t = elt list
  module Plotkin : Preorder.S with type t = elt list
end
