(** Preorders and the order-theoretic vocabulary of Section 3: information
    orderings, lower/upper bounds, greatest lower bounds, bases.

    The carriers of the paper's database domains are infinite (all naïve
    databases over a schema, all trees, ...), so the derived operations work
    over explicit finite {e pools}: a pool is a finite list of objects taken
    as the universe for bound computations.  This is exactly how the paper
    uses the theory computationally (finite bases, finite sets of query
    answers). *)

module type S = sig
  type t

  (** [leq x y] is the preorder [x ⊑ y] ("x is less informative than y"). *)
  val leq : t -> t -> bool
end

(** Derived operations over a preorder. *)
module Make (P : S) : sig
  type elt = P.t

  (** [equiv x y] is the associated equivalence [x ∼ y], i.e.
      [x ⊑ y ∧ y ⊑ x]. *)
  val equiv : elt -> elt -> bool

  (** [is_lower_bound y xs] iff [y ⊑ x] for all [x ∈ xs]. *)
  val is_lower_bound : elt -> elt list -> bool

  val is_upper_bound : elt -> elt list -> bool

  (** [is_glb y xs ~pool] iff [y] is a lower bound of [xs] and every lower
      bound of [xs] found in [pool] is [⊑ y].  With an adequate pool this is
      the paper's [y = ∧xs] (as an equivalence class). *)
  val is_glb : elt -> elt list -> pool:elt list -> bool

  val is_lub : elt -> elt list -> pool:elt list -> bool

  (** [glb_in_pool xs ~pool] searches [pool] for a maximal lower bound of
      [xs] that dominates every lower bound in [pool]; [None] when the pool
      exhibits no glb (e.g. two incomparable maximal lower bounds). *)
  val glb_in_pool : elt list -> pool:elt list -> elt option

  val lub_in_pool : elt list -> pool:elt list -> elt option

  (** [lower_bounds_in_pool xs ~pool] lists the members of [pool] that are
      lower bounds of [xs]. *)
  val lower_bounds_in_pool : elt list -> pool:elt list -> elt list

  val upper_bounds_in_pool : elt list -> pool:elt list -> elt list

  (** [maximal xs] lists the [⊑]-maximal elements of [xs] (one per
      ∼-equivalence class). *)
  val maximal : elt list -> elt list

  val minimal : elt list -> elt list

  (** [is_antichain xs] iff elements of [xs] are pairwise [⊑]-incomparable. *)
  val is_antichain : elt list -> bool

  (** [is_chain xs] iff [xs] is totally ordered by [⊑] as given. *)
  val is_chain : elt list -> bool

  (** [is_basis b xs] is Lemma 1's premise: [↑b = ↑xs], checked as: every
      [x ∈ xs] dominates some [y ∈ b] and [b ⊆ xs]-upward-equivalent, i.e.
      each [y ∈ b] is dominated by... concretely we verify
      [∀x∈xs ∃y∈b, y ⊑ x] and [∀y∈b ∃x∈xs, x ⊑ y]. *)
  val is_basis : elt list -> elt list -> bool

  (** [monotone f ~on] checks [x ⊑ y ⇒ f x ⊑ f y] over all pairs drawn from
      [on], where the image ordering is given by [leq'] (defaults to
      [P.leq] when the query maps the domain to itself is not assumed —
      callers supply [leq']). *)
  val monotone :
    (elt -> 'b) -> leq':('b -> 'b -> bool) -> on:elt list -> bool
end
