module Make (P : Preorder.S) = struct
  type elt = P.t

  let models xs ~pool =
    List.filter (fun y -> List.for_all (fun x -> P.leq x y) xs) pool

  let theory xs ~pool =
    List.filter (fun y -> List.for_all (fun x -> P.leq y x) xs) pool

  let closure xs ~pool = models (theory xs ~pool) ~pool

  let subset l1 l2 = List.for_all (fun x -> List.memq x l2) l1
  let same l1 l2 = subset l1 l2 && subset l2 l1

  let closed xs ~pool = same (closure xs ~pool) xs

  let rec subsets_upto k = function
    | [] -> [ [] ]
    | _ when k = 0 -> [ [] ]
    | x :: rest ->
      let without = subsets_upto k rest in
      without @ List.map (fun s -> x :: s) (subsets_upto (k - 1) rest)

  let laws_hold ~pool =
    (* checking over all subsets is exponential; sample subsets of size
       ≤ 2 plus the full pool, which exercises every law *)
    let samples = subsets_upto 2 pool @ [ pool ] in
    List.for_all
      (fun xs ->
        let m = models xs ~pool and t = theory xs ~pool in
        (* sections *)
        subset xs (theory m ~pool)
        && subset xs (models t ~pool)
        (* closure is extensive and idempotent *)
        && subset (List.filter (fun x -> List.memq x pool) xs) (closure xs ~pool)
        && same (closure (closure xs ~pool) ~pool) (closure xs ~pool))
      samples
    && List.for_all
         (fun xs ->
           List.for_all
             (fun ys ->
               (* antitonicity on nested pairs *)
               (not (subset xs ys))
               || (subset (models ys ~pool) (models xs ~pool)
                  && subset (theory ys ~pool) (theory xs ~pool)))
             (subsets_upto 1 pool))
         (subsets_upto 1 pool)

  let is_max_description x xs ~pool =
    same (models [ x ] ~pool) (closure xs ~pool)
end
