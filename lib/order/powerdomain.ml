module Make (P : Preorder.S) = struct
  type elt = P.t

  let hoare xs ys =
    List.for_all (fun x -> List.exists (fun y -> P.leq x y) ys) xs

  let smyth xs ys =
    List.for_all (fun y -> List.exists (fun x -> P.leq x y) xs) ys

  let plotkin xs ys = hoare xs ys && smyth xs ys

  module Hoare = struct
    type t = elt list

    let leq = hoare
  end

  module Smyth = struct
    type t = elt list

    let leq = smyth
  end

  module Plotkin = struct
    type t = elt list

    let leq = plotkin
  end
end
