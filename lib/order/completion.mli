(** Dedekind–MacNeille completion of a finite preorder — the smallest
    complete lattice the preorder embeds into.  The proof of Theorem 3 uses
    it: if every subset of the (countable) preorder of naïve tables had a
    glb, the completion of an embedded 〈Q, <〉 would be countable, which it
    is not.  On finite fragments the completion is computable; this module
    builds it by the standard cut construction and is exercised by tests as
    the executable face of that argument. *)

(** A completion of the elements [0 .. n-1] under a preorder [leq]. *)
type t

(** [make ~size ~leq] — computes all cuts (A, B) with A = lower bounds of
    B and B = upper bounds of A; exponential in [size], fine for the small
    fragments used here. *)
val make : size:int -> leq:(int -> int -> bool) -> t

(** Number of cuts (lattice elements). *)
val cardinal : t -> int

(** [embed c x] — index of the principal cut of element [x]. *)
val embed : t -> int -> int

(** [cut_leq c i j] — lattice order between cuts. *)
val cut_leq : t -> int -> int -> bool

(** [meet c i j] / [join c i j] — lattice operations (always defined:
    the completion is a complete lattice). *)
val meet : t -> int -> int -> int

val join : t -> int -> int -> int

(** [is_lattice c] — self-check: every pair of cuts has a meet and a
    join. *)
val is_lattice : t -> bool

(** [embedding_preserves_order c ~leq] — self-check: [x ⊑ y] iff
    [embed x ≤ embed y]. *)
val embedding_preserves_order : t -> leq:(int -> int -> bool) -> bool
