module type COMPLETE_DOMAIN = sig
  type t

  val leq : t -> t -> bool
  val is_complete : t -> bool
  val pi_cpl : t -> t
end

module Make (D : COMPLETE_DOMAIN) = struct
  type elt = D.t

  module P = Preorder.Make (D)

  let retraction_laws ~pool =
    List.for_all
      (fun x ->
        let p = D.pi_cpl x in
        D.is_complete p && D.leq p x
        && ((not (D.is_complete x)) || P.equiv p x))
      pool
    && P.monotone D.pi_cpl ~leq':D.leq ~on:pool

  let up_cpl x ~pool =
    List.filter (fun c -> D.is_complete c && D.leq x c) pool

  let models x ~pool = List.filter (fun y -> D.leq x y) pool
  let theory x ~pool = List.filter (fun y -> D.leq y x) pool

  let models_of_set xs ~pool =
    List.filter (fun y -> List.for_all (fun x -> D.leq x y) xs) pool

  let theory_of_set xs ~pool =
    List.filter (fun y -> List.for_all (fun x -> D.leq y x) xs) pool

  (* Mod(Th(X)) over the pool: elements above every lower bound of X. *)
  let models_of_theory xs ~pool =
    let th = theory_of_set xs ~pool in
    models_of_set th ~pool

  let same_elements l1 l2 =
    List.length l1 = List.length l2
    && List.for_all (fun x -> List.memq x l2) l1

  let is_max_description x xs ~pool =
    same_elements (models x ~pool) (models_of_theory xs ~pool)

  let theorem1_agrees xs ~pool =
    List.for_all
      (fun x -> is_max_description x xs ~pool = P.is_glb x xs ~pool)
      pool

  let certain_cpl q _x ~completions ~pool =
    let answers = List.map q completions in
    let cpl_pool = List.filter D.is_complete pool in
    P.glb_in_pool answers ~pool:cpl_pool

  let naive_eval q x = D.pi_cpl (q x)

  let naive_evaluation_ok q x ~completions ~pool =
    match certain_cpl q x ~completions ~pool with
    | None -> false
    | Some c -> P.equiv c (naive_eval q x)

  let incompatible ~pool c c' =
    not (List.exists (fun u -> D.leq c u && D.leq c' u) pool)

  let complete_saturation q ~on ~up_cpl ~pool =
    List.for_all
      (fun x ->
        let qx = q x in
        if not (D.is_complete qx) then true
        else
          let ups = up_cpl x in
          (* (i) some complete c above x has q(c) = q(x) (up to ∼) *)
          List.exists (fun c -> P.equiv (q c) qx) ups
          (* (ii) any complete c' strictly below q(x) is incompatible with
             q(c) for some complete c above x *)
          && List.for_all
               (fun c' ->
                 (not (D.is_complete c'))
                 || (not (D.leq c' qx))
                 || P.equiv c' qx
                 || List.exists (fun c -> incompatible ~pool (q c) c') ups)
               pool)
      on

  let corollary1 q x ~pool =
    let up = models x ~pool in
    let images = List.map q up in
    P.is_glb (q x) images ~pool
end
