module type S = sig
  type t

  val leq : t -> t -> bool
end

module Make (P : S) = struct
  type elt = P.t

  let equiv x y = P.leq x y && P.leq y x
  let is_lower_bound y xs = List.for_all (fun x -> P.leq y x) xs
  let is_upper_bound y xs = List.for_all (fun x -> P.leq x y) xs

  let lower_bounds_in_pool xs ~pool =
    List.filter (fun y -> is_lower_bound y xs) pool

  let upper_bounds_in_pool xs ~pool =
    List.filter (fun y -> is_upper_bound y xs) pool

  let is_glb y xs ~pool =
    is_lower_bound y xs
    && List.for_all (fun y' -> P.leq y' y) (lower_bounds_in_pool xs ~pool)

  let is_lub y xs ~pool =
    is_upper_bound y xs
    && List.for_all (fun y' -> P.leq y y') (upper_bounds_in_pool xs ~pool)

  let glb_in_pool xs ~pool =
    let lbs = lower_bounds_in_pool xs ~pool in
    List.find_opt (fun y -> List.for_all (fun y' -> P.leq y' y) lbs) lbs

  let lub_in_pool xs ~pool =
    let ubs = upper_bounds_in_pool xs ~pool in
    List.find_opt (fun y -> List.for_all (fun y' -> P.leq y y') ubs) ubs

  let maximal xs =
    List.filter
      (fun x -> List.for_all (fun y -> not (P.leq x y) || P.leq y x) xs)
      xs

  let minimal xs =
    List.filter
      (fun x -> List.for_all (fun y -> not (P.leq y x) || P.leq x y) xs)
      xs

  let is_antichain xs =
    let rec go = function
      | [] -> true
      | x :: rest ->
        List.for_all (fun y -> (not (P.leq x y)) && not (P.leq y x)) rest
        && go rest
    in
    go xs

  let is_chain xs =
    let rec go = function
      | [] | [ _ ] -> true
      | x :: (y :: _ as rest) -> P.leq x y && go rest
    in
    go xs

  let is_basis b xs =
    List.for_all (fun x -> List.exists (fun y -> P.leq y x) b) xs
    && List.for_all (fun y -> List.exists (fun x -> P.leq x y) xs) b

  let monotone f ~leq' ~on =
    List.for_all
      (fun x ->
        List.for_all (fun y -> (not (P.leq x y)) || leq' (f x) (f y)) on)
      on
end
