(** Values populating incomplete databases: constants from [C] and nulls
    from [N] (Section 2.1 of the paper).  Constants and nulls are disjoint;
    nulls are identified by integer ids and printed as [_|_k]. *)

type const =
  | Int of int
  | Str of string

type t =
  | Const of const
  | Null of int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_null : t -> bool
val is_const : t -> bool

(** [int n] and [str s] build constant values. *)
val int : int -> t

val str : string -> t

(** [null i] is the null with id [i]. *)
val null : int -> t

(** [fresh_null ()] returns a null unused by any previous call; the supply is
    global and monotone.  [reset_fresh ()] restarts it (tests only). *)
val fresh_null : unit -> t

val reset_fresh : unit -> unit

(** [fresh_const ()] returns a constant guaranteed distinct from all
    constants returned by previous calls; drawn from a reserved namespace
    ["#k"]. *)
val fresh_const : unit -> t

val compare_const : const -> const -> int
val pp_const : Format.formatter -> const -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
