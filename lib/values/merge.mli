(** The tuple-merge operation [⊗] of equation (1) in the paper, shared by
    the relational glb (Prop. 5) and the generalized-database glb (Thm 4):

    {v (a1..am) ⊗ (b1..bm) = (c1..cm)
       where ci = ai           if ai = bi ∈ C
                | ⊥(ai,bi)     otherwise v}

    The pair nulls [⊥(x,y)] are allocated from a registry so that the same
    pair always yields the same null within one merge session, and all the
    allocated nulls are fresh (outside any previously created null). *)

type t
(** A merge session: remembers the 1-1 assignment (x,y) ↦ ⊥xy. *)

val create : unit -> t

(** [value reg x y] is [x ⊗ y]. *)
val value : t -> Value.t -> Value.t -> Value.t

val arrays : t -> Value.t array -> Value.t array -> Value.t array
val lists : t -> Value.t list -> Value.t list -> Value.t list

(** [left_valuation reg] maps every allocated [⊥xy] back to [x]; this is the
    homomorphism witnessing [R ⊗ R' ⊑ R] in Prop. 5.  Likewise
    [right_valuation]. *)
val left_valuation : t -> Valuation.t

val right_valuation : t -> Valuation.t

(** [pairs reg] lists the allocated pair nulls with their components. *)
val pairs : t -> (Value.t * Value.t * Value.t) list
