type key = Value.t * Value.t

module Key_map = Map.Make (struct
  type t = key

  let compare (a, b) (c, d) =
    match Value.compare a c with 0 -> Value.compare b d | n -> n
end)

type t = { mutable table : Value.t Key_map.t }

let create () = { table = Key_map.empty }

let value reg x y =
  match x, y with
  | Value.Const _, Value.Const _ when Value.equal x y -> x
  | _ -> (
    match Key_map.find_opt (x, y) reg.table with
    | Some n -> n
    | None ->
      let n = Value.fresh_null () in
      reg.table <- Key_map.add (x, y) n reg.table;
      n)

let arrays reg xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Merge.arrays: length mismatch";
  Array.map2 (value reg) xs ys

let lists reg xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Merge.lists: length mismatch";
  List.map2 (value reg) xs ys

let left_valuation reg =
  Key_map.fold (fun (x, _) n h -> Valuation.bind h n x) reg.table
    Valuation.empty

let right_valuation reg =
  Key_map.fold (fun (_, y) n h -> Valuation.bind h n y) reg.table
    Valuation.empty

let pairs reg =
  Key_map.fold (fun (x, y) n acc -> (x, y, n) :: acc) reg.table []
