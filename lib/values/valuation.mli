(** Valuations of nulls: finite partial maps from nulls to values.  A
    valuation [h] is extended to the identity on constants, as in the paper's
    definition of homomorphisms.  Valuations whose range contains only
    constants witness membership of a completion in [[D]]. *)

type t

val empty : t

(** [bind h n v] binds null [n] to [v].  @raise Invalid_argument if [n] is
    not a null, or if [n] is already bound to a different value. *)
val bind : t -> Value.t -> Value.t -> t

(** [bind_opt h n v] is [Some (bind h n v)] unless [n] is bound to a
    conflicting value, in which case it is [None]. *)
val bind_opt : t -> Value.t -> Value.t -> t option

val find : t -> Value.t -> Value.t option

(** [apply h v] is [h(v)]: the binding of [v] if [v] is a bound null, [v]
    itself if [v] is a constant or an unbound null. *)
val apply : t -> Value.t -> Value.t

val apply_list : t -> Value.t list -> Value.t list
val apply_array : t -> Value.t array -> Value.t array

(** [unify h u v] refines [h] so that [h(u) = v], binding the null [u] when
    needed.  Returns [None] on clash (distinct constants, or a conflicting
    earlier binding). *)
val unify : t -> Value.t -> Value.t -> t option

(** [unify_lists h us vs] unifies pointwise; [None] on length mismatch or
    clash. *)
val unify_lists : t -> Value.t list -> Value.t list -> t option

val unify_arrays : t -> Value.t array -> Value.t array -> t option

(** [extend_match h us vs] extends [h] so that the {e image} of [us] under
    the homomorphism [h] equals [vs]: constants must match exactly, a bound
    null's image must match exactly (a homomorphism applies once, never
    iterated), an unbound null gets bound.  This is the unification step of
    every homomorphism search in the library; contrast with {!unify}, which
    chases bindings. *)
val extend_match : t -> Value.t array -> Value.t array -> t option

(** [extend_match_value h u v] — single-position [extend_match]. *)
val extend_match_value : t -> Value.t -> Value.t -> t option

val of_list : (Value.t * Value.t) list -> t
val bindings : t -> (Value.t * Value.t) list
val domain : t -> Value.Set.t
val range : t -> Value.Set.t
val cardinal : t -> int

(** [is_grounding h] holds when every value in the range of [h] is a
    constant. *)
val is_grounding : t -> bool

(** [is_injective h] holds when no two nulls are bound to the same value. *)
val is_injective : t -> bool

(** [compose f g] is the valuation mapping [n] to [g(f(n))] for [n] in the
    domain of [f], and agreeing with [g] on nulls outside it. *)
val compose : t -> t -> t

(** [grounding_of_nulls ?avoid nulls] maps each null in [nulls] to a distinct
    fresh constant not occurring in [avoid]. *)
val grounding_of_nulls : ?avoid:Value.Set.t -> Value.Set.t -> t

val pp : Format.formatter -> t -> unit
