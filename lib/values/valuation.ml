type t = Value.t Value.Map.t

let empty = Value.Map.empty

let bind h n v =
  if not (Value.is_null n) then
    invalid_arg "Valuation.bind: domain element is not a null";
  match Value.Map.find_opt n h with
  | Some v' when not (Value.equal v v') ->
    invalid_arg "Valuation.bind: conflicting binding"
  | _ -> Value.Map.add n v h

let bind_opt h n v =
  if not (Value.is_null n) then None
  else
    match Value.Map.find_opt n h with
    | Some v' -> if Value.equal v v' then Some h else None
    | None -> Some (Value.Map.add n v h)

let find h n = Value.Map.find_opt n h

let apply h v =
  if Value.is_const v then v
  else match Value.Map.find_opt v h with Some v' -> v' | None -> v

let apply_list h vs = List.map (apply h) vs
let apply_array h vs = Array.map (apply h) vs

let unify h u v =
  let u' = apply h u in
  if Value.equal u' v then Some h
  else if Value.is_null u' then bind_opt h u' v
  else None

let rec unify_lists h us vs =
  match us, vs with
  | [], [] -> Some h
  | u :: us', v :: vs' -> (
    match unify h u v with
    | Some h' -> unify_lists h' us' vs'
    | None -> None)
  | _ -> None

let unify_arrays h us vs =
  if Array.length us <> Array.length vs then None
  else
    let n = Array.length us in
    let rec go h i =
      if i = n then Some h
      else
        match unify h us.(i) vs.(i) with
        | Some h' -> go h' (i + 1)
        | None -> None
    in
    go h 0

let extend_match_value h u v =
  if Value.is_const u then if Value.equal u v then Some h else None
  else
    match Value.Map.find_opt u h with
    | Some w -> if Value.equal w v then Some h else None
    | None -> Some (Value.Map.add u v h)

let extend_match h us vs =
  let n = Array.length us in
  if n <> Array.length vs then None
  else
    let rec go h i =
      if i = n then Some h
      else
        match extend_match_value h us.(i) vs.(i) with
        | Some h' -> go h' (i + 1)
        | None -> None
    in
    go h 0

let of_list l = List.fold_left (fun h (n, v) -> bind h n v) empty l
let bindings h = Value.Map.bindings h
let domain h = Value.Map.fold (fun n _ s -> Value.Set.add n s) h Value.Set.empty
let range h = Value.Map.fold (fun _ v s -> Value.Set.add v s) h Value.Set.empty
let cardinal = Value.Map.cardinal
let is_grounding h = Value.Map.for_all (fun _ v -> Value.is_const v) h

let is_injective h =
  let seen = Hashtbl.create 16 in
  Value.Map.for_all
    (fun _ v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    h

let compose f g =
  let applied = Value.Map.map (fun v -> apply g v) f in
  Value.Map.union (fun _ v _ -> Some v) applied g

let grounding_of_nulls ?(avoid = Value.Set.empty) nulls =
  let rec fresh () =
    let c = Value.fresh_const () in
    if Value.Set.mem c avoid then fresh () else c
  in
  Value.Set.fold (fun n h -> bind h n (fresh ())) nulls empty

let pp ppf h =
  let pp_binding ppf (n, v) =
    Format.fprintf ppf "%a -> %a" Value.pp n Value.pp v
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_binding)
    (bindings h)
