type const =
  | Int of int
  | Str of string

type t =
  | Const of const
  | Null of int

let compare_const c1 c2 =
  match c1, c2 with
  | Int i, Int j -> Int.compare i j
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1
  | Str s, Str t -> String.compare s t

let compare v1 v2 =
  match v1, v2 with
  | Const c1, Const c2 -> compare_const c1 c2
  | Const _, Null _ -> -1
  | Null _, Const _ -> 1
  | Null i, Null j -> Int.compare i j

let equal v1 v2 = compare v1 v2 = 0

let hash = function
  | Const (Int i) -> Hashtbl.hash (0, i)
  | Const (Str s) -> Hashtbl.hash (1, s)
  | Null i -> Hashtbl.hash (2, i)

let is_null = function Null _ -> true | Const _ -> false
let is_const = function Const _ -> true | Null _ -> false

let int i = Const (Int i)
let str s = Const (Str s)
let null i = Null i

(* Atomic so that fresh values drawn from concurrent domains (the batch
   layer) are still globally unique. *)
let null_counter = Atomic.make 0
let const_counter = Atomic.make 0

let fresh_null () = Null (1 + Atomic.fetch_and_add null_counter 1)

let reset_fresh () =
  Atomic.set null_counter 0;
  Atomic.set const_counter 0

let fresh_const () =
  Const (Str (Printf.sprintf "#%d" (1 + Atomic.fetch_and_add const_counter 1)))

let pp_const ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Str s -> Format.fprintf ppf "%s" s

let pp ppf = function
  | Const c -> pp_const ppf c
  | Null i -> Format.fprintf ppf "_|_%d" i

let to_string v = Format.asprintf "%a" pp v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
