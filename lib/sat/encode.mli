(** CNF encoding of homomorphism instances (and hence Boolean-CQ
    certainty, which {!Certdb_query} reduces to hom search).

    The encoding is the direct one over the engine's compiled view
    ({!Certdb_csp.Engine.Compiled}): a selector variable [x_{v,w}] per
    admissible (source var, target node) pair from the variable's
    {!Certdb_csp.Domains} bitset, at-least-one / pairwise at-most-one
    clauses per variable, and per-constraint tuple-support variables
    [y_{c,t}] (at least one supporting target tuple per source fact,
    each implying its positions' selectors) read off the columnar
    {!Certdb_csp.Structure} indexes.  Optionally, symmetry-breaking
    ordering clauses over classes of interchangeable source variables —
    the interchangeable fresh nulls of naïve tables — cut the [k!]
    permutation blowup that chronological backtracking pays.

    Models decode back to homomorphism witnesses and are re-checked by
    {!Certdb_csp.Engine.is_hom}; a model that fails verification
    surfaces as [Unknown (Crashed "sat.decode")], never as a bogus
    [Sat]. *)

module Engine = Certdb_csp.Engine

(** [interchangeable_classes c] — classes (size ≥ 2, ascending dense
    var ids) of source variables that are pairwise interchangeable:
    equal labels, equal initial domains, and every transposition with
    the class representative maps the source fact set to itself.
    Transpositions through a common element generate the symmetric
    group, so any permutation within a class is a source automorphism
    fixing everything else — which is what makes the ordering clauses
    sound. *)
val interchangeable_classes : Engine.Compiled.t -> int array array

type stats = {
  sel_vars : int;  (** selector variables *)
  tuple_vars : int;  (** tuple-support variables *)
  clauses : int;
  sym_classes : int;  (** interchangeable classes of size ≥ 2 *)
  largest_class : int;  (** 0 when there are none *)
}

module Make (Solv : Solver.S) : sig
  type t

  (** [make ?restrict ?symmetry ~source ~target ()] — compile and
      encode.  [symmetry] (default [true]) controls the ordering
      clauses; they never change satisfiability. *)
  val make :
    ?restrict:Certdb_csp.Domains.t ->
    ?symmetry:bool ->
    source:Certdb_csp.Structure.t ->
    target:Certdb_csp.Structure.t ->
    unit ->
    t

  (** Decide, decode, verify.  May be called repeatedly under different
      limits: the backend keeps its clauses (and, for CDCL, what it
      learned) across calls. *)
  val solve : ?limits:Engine.Limits.t -> t -> Engine.hom Engine.outcome

  val satisfiable : ?limits:Engine.Limits.t -> t -> unit Engine.outcome
  val stats : t -> stats

  (** The underlying backend instance (for DIMACS export). *)
  val solver : t -> Solv.t
end
