(** DIMACS CNF export for cross-checking encodings against external
    solvers.

    {!Recorder} is a {!Solver.S} backend that records the clause set
    instead of solving it: feed it through {!Encode.Make} (or any other
    clause producer) and print the result with {!pp}.  Its [solve]
    always answers [Unknown (Crashed "sat.recorder")] — recording is not
    deciding — so it can never be mistaken for a definitive backend. *)

module Recorder : sig
  include Solver.S

  (** Recorded clauses, in insertion order, as DIMACS-style literal
      lists (no terminating 0). *)
  val clauses : t -> int list list
end

(** [pp ?comments ppf r] — print the recorded instance in DIMACS CNF:
    [c] comment lines, the [p cnf <vars> <clauses>] header, then one
    zero-terminated clause per line. *)
val pp : ?comments:string list -> Format.formatter -> Recorder.t -> unit

val to_string : ?comments:string list -> Recorder.t -> string
