module Engine = Certdb_csp.Engine

type choice = Csp | Sat | Auto

let choice_to_string = function Csp -> "csp" | Sat -> "sat" | Auto -> "auto"

let choice_of_string = function
  | "csp" -> Some Csp
  | "sat" -> Some Sat
  | "auto" -> Some Auto
  | _ -> None

let choice_names = [ "csp"; "sat"; "auto" ]

module Cnf = Encode.Make (Solver.Cdcl)

let encode ?(config = Engine.Config.default) ?symmetry ~source ~target () =
  Cnf.make ?restrict:config.Engine.Config.restrict ?symmetry ~source ~target
    ()

let solve ?(config = Engine.Config.default) ?symmetry ~source ~target () =
  let t = encode ~config ?symmetry ~source ~target () in
  Cnf.solve ~limits:config.Engine.Config.limits t

let satisfiable ?(config = Engine.Config.default) ?symmetry ~source ~target ()
    =
  let t = encode ~config ?symmetry ~source ~target () in
  Cnf.satisfiable ~limits:config.Engine.Config.limits t

module Recorded = Encode.Make (Dimacs.Recorder)

let dimacs ?restrict ?symmetry ?(comments = []) ~source ~target () =
  let config = Engine.Config.make ?restrict () in
  let t =
    Recorded.make ?restrict:config.Engine.Config.restrict ?symmetry ~source
      ~target ()
  in
  let st = Recorded.stats t in
  let comments =
    comments
    @ [
        Printf.sprintf
          "sel_vars=%d tuple_vars=%d clauses=%d sym_classes=%d \
           largest_class=%d"
          st.Encode.sel_vars st.Encode.tuple_vars st.Encode.clauses
          st.Encode.sym_classes st.Encode.largest_class;
      ]
  in
  Dimacs.to_string ~comments (Recorded.solver t)
