(** The CDCL-instantiated SAT backend, shaped like {!Certdb_csp.Engine}'s
    entry points so callers can swap solvers per instance, plus the
    backend-choice vocabulary shared by the CLI, the planner, and the
    server ([--backend csp|sat|auto]). *)

module Engine = Certdb_csp.Engine

(** Which solver family answers a hom / certainty instance.  [Auto]
    defers the pick to {!Certdb_analysis}'s certificates. *)
type choice = Csp | Sat | Auto

val choice_to_string : choice -> string
val choice_of_string : string -> choice option

(** ["csp"; "sat"; "auto"] — for CLI enums and error messages. *)
val choice_names : string list

(** {!Encode.Make} over the {!Solver.Cdcl} core. *)
module Cnf : sig
  type t

  val make :
    ?restrict:Certdb_csp.Domains.t ->
    ?symmetry:bool ->
    source:Certdb_csp.Structure.t ->
    target:Certdb_csp.Structure.t ->
    unit ->
    t

  val solve : ?limits:Engine.Limits.t -> t -> Engine.hom Engine.outcome
  val satisfiable : ?limits:Engine.Limits.t -> t -> unit Engine.outcome
  val stats : t -> Encode.stats
  val solver : t -> Solver.Cdcl.t
end

(** [solve ?config ~source ~target ()] — one-shot encode + CDCL solve.
    Only [config.limits] and [config.restrict] apply ([var_order] and
    [propagation] are CSP-engine knobs); outcomes use the same
    three-valued contract, with [Sat h] a verified witness. *)
val solve :
  ?config:Engine.Config.t ->
  ?symmetry:bool ->
  source:Certdb_csp.Structure.t ->
  target:Certdb_csp.Structure.t ->
  unit ->
  Engine.hom Engine.outcome

val satisfiable :
  ?config:Engine.Config.t ->
  ?symmetry:bool ->
  source:Certdb_csp.Structure.t ->
  target:Certdb_csp.Structure.t ->
  unit ->
  unit Engine.outcome

(** [dimacs ?restrict ?symmetry ?comments ~source ~target ()] — the
    instance's CNF in DIMACS format, with an encoding-stats comment
    line appended. *)
val dimacs :
  ?restrict:Certdb_csp.Domains.t ->
  ?symmetry:bool ->
  ?comments:string list ->
  source:Certdb_csp.Structure.t ->
  target:Certdb_csp.Structure.t ->
  unit ->
  string
