(** The pluggable propositional backend: a solver module signature in the
    crossbow [Csp_inst.Make (Solv : Csp_solver.S)] shape (SNIPPETS.md),
    plus a pure-OCaml CDCL implementation.

    Variables are positive integers handed out by {!S.new_var}; a literal
    is [+v] (the variable) or [-v] (its negation) — the DIMACS
    convention, so clause lists print directly.  {!S.solve} runs under
    {!Certdb_csp.Engine.Limits.t} with the engine's budget semantics:
    decisions tick the node budget, conflicts tick the backtrack budget
    (conflict budget ≈ backtrack budget), the wall-clock deadline and the
    cancel token are polled inside the search loop, and the result is the
    same three-valued {!Certdb_csp.Engine.outcome} — [Sat]/[Unsat] are
    definitive, a tripped limit is [Unknown].

    Every conflict passes the ["csp.sat.conflict"] fault point
    ({!Certdb_obs.Fault}), and an injected crash surfaces as
    [Unknown (Crashed "csp.sat.conflict")], never an escaped exception —
    the same failure contract as the CSP engine, which is what lets
    {!Certdb_csp.Resilient}'s ladder cross backends. *)

module Engine = Certdb_csp.Engine

(** What a backend must provide.  [solve] may be called repeatedly with
    different assumption sets over a growing clause set (incremental
    use); clauses are permanent. *)
module type S = sig
  type t

  (** Backend name, for routing labels and DIMACS comments. *)
  val name : string

  val create : unit -> t

  (** Allocate a fresh variable (positive, dense from 1). *)
  val new_var : t -> int

  (** Number of variables allocated so far. *)
  val nvars : t -> int

  (** [add_clause s lits] — add a clause over existing variables.
      Duplicate literals are merged and tautologies dropped; the empty
      clause makes the instance permanently unsatisfiable.
      @raise Invalid_argument on a literal whose variable was never
      allocated. *)
  val add_clause : t -> int list -> unit

  (** [solve ?assumptions ?limits s] — decide satisfiability of the
      clauses under the (temporary) assumption literals.  [Unsat] means
      unsatisfiable {e under the assumptions}; [Unknown r] reports the
      tripped limit ([r] uses the engine's reasons: [Node_budget] =
      decision budget, [Backtrack_budget] = conflict budget, plus
      [Deadline] / [Cancelled] / [Crashed _]). *)
  val solve :
    ?assumptions:int list ->
    ?limits:Engine.Limits.t ->
    t ->
    unit Engine.outcome

  (** [model_value s v] — the value of [v] in the model of the last
      [Sat] answer.  Meaningless (but safe) otherwise. *)
  val model_value : t -> int -> bool

  (** Conflicts encountered over the solver's lifetime. *)
  val conflicts : t -> int
end

(** The CDCL core: two-watched-literal unit propagation, first-UIP
    conflict analysis with clause learning, VSIDS-style exponential
    activity decay, phase saving, and Luby-sequence restarts.  Learned
    clauses are kept (no database reduction — instance sizes here are
    bounded by the encoder).  Counted under [csp.sat.*]. *)
module Cdcl : S

(** The name of the conflict fault point, ["csp.sat.conflict"]. *)
val conflict_fault_point : string
