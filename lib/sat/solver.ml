module Engine = Certdb_csp.Engine
module Obs = Certdb_obs.Obs
module Fault = Certdb_obs.Fault

let conflict_fault_point = "csp.sat.conflict"

(* Observability: one family of counters for every backend. *)
let c_solves = Obs.counter "csp.sat.solves"
let c_decisions = Obs.counter "csp.sat.decisions"
let c_conflicts = Obs.counter "csp.sat.conflicts"
let c_propagations = Obs.counter "csp.sat.propagations"
let c_learned = Obs.counter "csp.sat.learned"
let c_restarts = Obs.counter "csp.sat.restarts"

module type S = sig
  type t

  val name : string
  val create : unit -> t
  val new_var : t -> int
  val nvars : t -> int
  val add_clause : t -> int list -> unit

  val solve :
    ?assumptions:int list ->
    ?limits:Engine.Limits.t ->
    t ->
    unit Engine.outcome

  val model_value : t -> int -> bool
  val conflicts : t -> int
end

(* A tiny growable int vector: watch lists are hot, [int list] churn is
   not. *)
module Vec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push v x =
    if v.size = Array.length v.data then begin
      let cap = max 4 (2 * Array.length v.data) in
      let data = Array.make cap 0 in
      Array.blit v.data 0 data 0 v.size;
      v.data <- data
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1
end

module Cdcl = struct
  let name = "cdcl"

  (* Internal literals: variable [v] (0-based) is [2*v] positive,
     [2*v + 1] negated.  External literals are DIMACS-style [±(v+1)]. *)
  type t = {
    mutable nvars : int;
    mutable clauses : int array array; (* id -> lits; learnt included *)
    mutable nclauses : int;
    mutable watches : Vec.t array; (* lit -> clause ids watching it *)
    mutable value : int array; (* var -> 0 unassigned / 1 true / -1 false *)
    mutable level : int array; (* var -> decision level *)
    mutable reason : int array; (* var -> clause id or -1 *)
    mutable activity : float array;
    mutable polarity : bool array; (* phase saving *)
    mutable seen : bool array; (* conflict-analysis scratch *)
    mutable trail : int array; (* assigned lits, in order *)
    mutable trail_size : int;
    mutable trail_lim : int list; (* trail sizes at decision points *)
    mutable qhead : int;
    mutable var_inc : float;
    mutable unsat : bool; (* a level-0 conflict is permanent *)
    mutable model : int array; (* value snapshot of the last Sat *)
    mutable n_conflicts : int;
  }

  let create () =
    {
      nvars = 0;
      clauses = Array.make 16 [||];
      nclauses = 0;
      watches = [||];
      value = [||];
      level = [||];
      reason = [||];
      activity = [||];
      polarity = [||];
      seen = [||];
      trail = [||];
      trail_size = 0;
      trail_lim = [];
      qhead = 0;
      var_inc = 1.0;
      unsat = false;
      model = [||];
      n_conflicts = 0;
    }

  let nvars s = s.nvars
  let conflicts s = s.n_conflicts

  let grow_int a n d =
    let b = Array.make n d in
    Array.blit a 0 b 0 (Array.length a);
    b

  let new_var s =
    let v = s.nvars in
    s.nvars <- v + 1;
    if s.nvars > Array.length s.value then begin
      let cap = max 16 (2 * Array.length s.value) in
      s.value <- grow_int s.value cap 0;
      s.level <- grow_int s.level cap 0;
      s.reason <- grow_int s.reason cap (-1);
      s.trail <- grow_int s.trail cap 0;
      let act = Array.make cap 0.0 in
      Array.blit s.activity 0 act 0 (Array.length s.activity);
      s.activity <- act;
      let pol = Array.make cap false in
      Array.blit s.polarity 0 pol 0 (Array.length s.polarity);
      s.polarity <- pol;
      let sn = Array.make cap false in
      Array.blit s.seen 0 sn 0 (Array.length s.seen);
      s.seen <- sn;
      let w = Array.init (2 * cap) (fun _ -> Vec.create ()) in
      Array.blit s.watches 0 w 0 (Array.length s.watches);
      s.watches <- w
    end;
    v + 1

  let lit_of_ext s l =
    let v = abs l - 1 in
    if l = 0 || v >= s.nvars then
      invalid_arg (Printf.sprintf "Sat.Solver: literal %d out of range" l);
    (2 * v) lor (if l < 0 then 1 else 0)

  (* value of an internal literal: 1 true, -1 false, 0 unassigned *)
  let lit_value s l =
    let v = s.value.(l lsr 1) in
    if l land 1 = 0 then v else -v

  let decision_level s = List.length s.trail_lim

  let enqueue s l reason =
    s.value.(l lsr 1) <- (if l land 1 = 0 then 1 else -1);
    s.level.(l lsr 1) <- decision_level s;
    s.reason.(l lsr 1) <- reason;
    s.trail.(s.trail_size) <- l;
    s.trail_size <- s.trail_size + 1

  let attach s cid =
    let c = s.clauses.(cid) in
    (* a clause watching [l] lives in [watches.(l lxor 1)]: it must be
       revisited when the negation of [l] becomes true *)
    Vec.push s.watches.(c.(0) lxor 1) cid;
    Vec.push s.watches.(c.(1) lxor 1) cid

  let add_clause_internal s lits =
    let cid = s.nclauses in
    if cid = Array.length s.clauses then begin
      let cs = Array.make (2 * cid) [||] in
      Array.blit s.clauses 0 cs 0 cid;
      s.clauses <- cs
    end;
    s.clauses.(cid) <- lits;
    s.nclauses <- cid + 1;
    attach s cid;
    cid

  (* Clauses may only be added at decision level 0 (the solver always
     returns there between [solve] calls), so simplification against the
     root-level assignment keeps the watch invariant sound. *)
  let add_clause s ext_lits =
    if not s.unsat then begin
      assert (decision_level s = 0);
      let lits = List.map (lit_of_ext s) ext_lits in
      let lits = List.sort_uniq compare lits in
      let taut =
        List.exists (fun l -> List.mem (l lxor 1) lits) lits
        || List.exists (fun l -> lit_value s l > 0) lits
      in
      if not taut then begin
        let lits = List.filter (fun l -> lit_value s l = 0) lits in
        match lits with
        | [] -> s.unsat <- true
        | [ l ] -> enqueue s l (-1)
        | lits -> ignore (add_clause_internal s (Array.of_list lits))
      end
    end

  (* Two-watched-literal unit propagation; returns the conflicting clause
     id, or -1. *)
  let propagate s =
    let confl = ref (-1) in
    while !confl < 0 && s.qhead < s.trail_size do
      let p = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      Obs.incr c_propagations;
      let ws = s.watches.(p) in
      let j = ref 0 in
      let i = ref 0 in
      let n = ws.Vec.size in
      while !i < n do
        let cid = ws.Vec.data.(!i) in
        incr i;
        let c = s.clauses.(cid) in
        let np = p lxor 1 in
        (* normalize: the falsified watch sits at c.(1) *)
        if c.(0) = np then begin
          c.(0) <- c.(1);
          c.(1) <- np
        end;
        if lit_value s c.(0) > 0 then begin
          (* satisfied: keep watching *)
          ws.Vec.data.(!j) <- cid;
          incr j
        end
        else begin
          (* look for a non-false literal to watch instead *)
          let len = Array.length c in
          let k = ref 2 in
          while !k < len && lit_value s c.(!k) < 0 do
            incr k
          done;
          if !k < len then begin
            c.(1) <- c.(!k);
            c.(!k) <- np;
            Vec.push s.watches.(c.(1) lxor 1) cid
          end
          else begin
            ws.Vec.data.(!j) <- cid;
            incr j;
            if lit_value s c.(0) < 0 then begin
              (* conflict: drain the rest of the watch list untouched *)
              confl := cid;
              while !i < n do
                ws.Vec.data.(!j) <- ws.Vec.data.(!i);
                incr j;
                incr i
              done;
              s.qhead <- s.trail_size
            end
            else enqueue s c.(0) cid
          end
        end
      done;
      ws.Vec.size <- !j
    done;
    !confl

  let var_bump s v =
    s.activity.(v) <- s.activity.(v) +. s.var_inc;
    if s.activity.(v) > 1e100 then begin
      for u = 0 to s.nvars - 1 do
        s.activity.(u) <- s.activity.(u) *. 1e-100
      done;
      s.var_inc <- s.var_inc *. 1e-100
    end

  let cancel_until s lvl =
    if decision_level s > lvl then begin
      (* pop trail_lim entries down to [lvl]; the last one popped is the
         trail size recorded when decision [lvl + 1] was made *)
      let rec pop lims n cut =
        if n > lvl then
          match lims with
          | sz :: rest -> pop rest (n - 1) sz
          | [] -> assert false
        else (lims, cut)
      in
      let lims, cut = pop s.trail_lim (decision_level s) s.trail_size in
      for i = s.trail_size - 1 downto cut do
        let l = s.trail.(i) in
        let v = l lsr 1 in
        s.polarity.(v) <- l land 1 = 0;
        s.value.(v) <- 0;
        s.reason.(v) <- -1
      done;
      s.trail_size <- cut;
      s.qhead <- cut;
      s.trail_lim <- lims
    end

  (* First-UIP conflict analysis.  Returns (learnt clause with the
     asserting literal first, backjump level). *)
  let analyze s confl =
    let learnt = ref [] in
    let btlevel = ref 0 in
    let counter = ref 0 in
    let p = ref (-1) in
    let cid = ref confl in
    let idx = ref (s.trail_size - 1) in
    let cur = decision_level s in
    let continue = ref true in
    while !continue do
      let c = s.clauses.(!cid) in
      Array.iter
        (fun q ->
          if q <> !p then begin
            let v = q lsr 1 in
            if (not s.seen.(v)) && s.level.(v) > 0 then begin
              s.seen.(v) <- true;
              var_bump s v;
              if s.level.(v) >= cur then incr counter
              else begin
                learnt := q :: !learnt;
                if s.level.(v) > !btlevel then btlevel := s.level.(v)
              end
            end
          end)
        c;
      (* next seen literal on the trail *)
      while not s.seen.(s.trail.(!idx) lsr 1) do
        decr idx
      done;
      p := s.trail.(!idx);
      decr idx;
      let v = !p lsr 1 in
      s.seen.(v) <- false;
      decr counter;
      if !counter = 0 then continue := false else cid := s.reason.(v)
    done;
    let learnt = (!p lxor 1) :: !learnt in
    List.iter (fun q -> s.seen.(q lsr 1) <- false) (List.tl learnt);
    (Array.of_list learnt, !btlevel)

  (* Luby restart sequence: 1 1 2 1 1 2 4 ... *)
  let rec luby i =
    (* i = 2^k - 1 ends a block with value 2^(k-1); otherwise recurse
       into the repeated prefix *)
    let rec pow2 k acc = if acc >= i + 1 then (k, acc) else pow2 (k + 1) (2 * acc) in
    let k, p = pow2 0 1 in
    if p = i + 1 then float_of_int (1 lsl (k - 1)) else luby (i - (p / 2) + 1)

  let restart_base = 64

  exception Unsat_under_assumptions

  let solve ?(assumptions = []) ?(limits = Engine.Limits.unlimited) s =
    Obs.incr c_solves;
    if s.unsat then Engine.Unsat
    else begin
      let assumps = Array.of_list (List.map (lit_of_ext s) assumptions) in
      Engine.Budget.run limits (fun budget ->
          Fun.protect
            ~finally:(fun () -> cancel_until s 0)
            (fun () ->
              let sat = ref None in
              let restarts = ref 0 in
              let conflict_limit = ref (float_of_int restart_base *. luby 1) in
              let conflicts_here = ref 0 in
              (try
                 while !sat = None do
                   let confl = propagate s in
                   if confl >= 0 then begin
                     (* conflict *)
                     s.n_conflicts <- s.n_conflicts + 1;
                     incr conflicts_here;
                     Obs.incr c_conflicts;
                     Fault.hit conflict_fault_point;
                     Engine.Budget.tick_backtrack budget;
                     if decision_level s = 0 then begin
                       s.unsat <- true;
                       raise Unsat_under_assumptions
                     end;
                     let learnt, btlevel = analyze s confl in
                     cancel_until s btlevel;
                     Obs.incr c_learned;
                     s.var_inc <- s.var_inc /. 0.95;
                     if Array.length learnt = 1 then enqueue s learnt.(0) (-1)
                     else begin
                       (* watch the asserting literal and a max-level one *)
                       let best = ref 1 in
                       for k = 2 to Array.length learnt - 1 do
                         if
                           s.level.(learnt.(k) lsr 1)
                           > s.level.(learnt.(!best) lsr 1)
                         then best := k
                       done;
                       let tmp = learnt.(1) in
                       learnt.(1) <- learnt.(!best);
                       learnt.(!best) <- tmp;
                       let cid = add_clause_internal s learnt in
                       enqueue s learnt.(0) cid
                     end
                   end
                   else if
                     float_of_int !conflicts_here >= !conflict_limit
                   then begin
                     (* Luby restart: back to the root, keep the learnt
                        clauses and phases *)
                     conflicts_here := 0;
                     incr restarts;
                     Obs.incr c_restarts;
                     conflict_limit :=
                       float_of_int restart_base *. luby (!restarts + 1);
                     cancel_until s 0
                   end
                   else begin
                     (* re-assert assumptions, then branch *)
                     let rec next_assumption i =
                       if i >= Array.length assumps then `Done
                       else
                         let l = assumps.(i) in
                         match lit_value s l with
                         | v when v > 0 -> next_assumption (i + 1)
                         | v when v < 0 -> `Conflicting
                         | _ -> `Decide l
                     in
                     match next_assumption 0 with
                     | `Conflicting -> raise Unsat_under_assumptions
                     | `Decide l ->
                       s.trail_lim <- s.trail_size :: s.trail_lim;
                       enqueue s l (-1)
                     | `Done -> (
                       (* VSIDS-style pick: unassigned variable of maximal
                          activity, saved phase *)
                       let best = ref (-1) in
                       for v = 0 to s.nvars - 1 do
                         if
                           s.value.(v) = 0
                           && (!best < 0
                              || s.activity.(v) > s.activity.(!best))
                         then best := v
                       done;
                       match !best with
                       | -1 ->
                         (* full assignment: a model *)
                         s.model <- Array.sub s.value 0 s.nvars;
                         sat := Some true
                       | v ->
                         (* decisions are the SAT side of the node budget;
                            the tick also polls the cancel token and the
                            deadline *)
                         Engine.Budget.tick_node budget;
                         Obs.incr c_decisions;
                         s.trail_lim <- s.trail_size :: s.trail_lim;
                         enqueue s
                           ((2 * v) lor (if s.polarity.(v) then 0 else 1))
                           (-1))
                   end
                 done;
                 Some ()
               with Unsat_under_assumptions -> None)))
    end

  let model_value s v =
    let v = v - 1 in
    v >= 0 && v < Array.length s.model && s.model.(v) > 0
end
