module Engine = Certdb_csp.Engine

module Recorder = struct
  let name = "recorder"

  type t = { mutable nvars : int; mutable rev_clauses : int list list }

  let create () = { nvars = 0; rev_clauses = [] }

  let new_var s =
    s.nvars <- s.nvars + 1;
    s.nvars

  let nvars s = s.nvars

  let add_clause s lits =
    List.iter
      (fun l ->
        if l = 0 || abs l > s.nvars then
          invalid_arg (Printf.sprintf "Sat.Dimacs: literal %d out of range" l))
      lits;
    s.rev_clauses <- lits :: s.rev_clauses

  let solve ?assumptions:_ ?limits:_ _ =
    Engine.Unknown (Engine.Crashed "sat.recorder")

  let model_value _ _ = false
  let conflicts _ = 0
  let clauses s = List.rev s.rev_clauses
end

let pp ?(comments = []) ppf (r : Recorder.t) =
  List.iter (fun c -> Format.fprintf ppf "c %s@." c) comments;
  let cs = Recorder.clauses r in
  Format.fprintf ppf "p cnf %d %d@." (Recorder.nvars r) (List.length cs);
  List.iter
    (fun lits ->
      List.iter (fun l -> Format.fprintf ppf "%d " l) lits;
      Format.fprintf ppf "0@.")
    cs

let to_string ?comments r = Format.asprintf "%a" (pp ?comments) r
