module Engine = Certdb_csp.Engine
module Structure = Certdb_csp.Structure
module Domains = Certdb_csp.Domains
module Bitset = Domains.Bitset

let interchangeable_classes (c : Engine.Compiled.t) =
  let tables =
    Array.map
      (fun (cr : Structure.crel) ->
        let tbl = Hashtbl.create (max 16 cr.count) in
        for ti = 0 to cr.count - 1 do
          Hashtbl.replace tbl (Array.sub cr.flat (ti * cr.arity) cr.arity) ()
        done;
        tbl)
      c.csrc.crels
  in
  let swap_ok a b =
    c.csrc.node_labels.(a) = c.csrc.node_labels.(b)
    && c.init.(a) = c.init.(b)
    &&
    let sw x = if x = a then b else if x = b then a else x in
    try
      Array.iteri
        (fun ri (cr : Structure.crel) ->
          let tbl = tables.(ri) in
          for ti = 0 to cr.count - 1 do
            let base = ti * cr.arity in
            let touches = ref false in
            for p = 0 to cr.arity - 1 do
              let x = cr.flat.(base + p) in
              if x = a || x = b then touches := true
            done;
            if !touches then
              let row = Array.init cr.arity (fun p -> sw cr.flat.(base + p)) in
              if not (Hashtbl.mem tbl row) then raise Exit
          done)
        c.csrc.crels;
      true
    with Exit -> false
  in
  let used = Array.make (max 1 c.nvars) false in
  let classes = ref [] in
  for v = 0 to c.nvars - 1 do
    if not used.(v) then begin
      used.(v) <- true;
      let members = ref [ v ] in
      for u = v + 1 to c.nvars - 1 do
        if (not used.(u)) && swap_ok v u then begin
          used.(u) <- true;
          members := u :: !members
        end
      done;
      if List.length !members >= 2 then
        classes := Array.of_list (List.rev !members) :: !classes
    end
  done;
  Array.of_list (List.rev !classes)

type stats = {
  sel_vars : int;
  tuple_vars : int;
  clauses : int;
  sym_classes : int;
  largest_class : int;
}

module Make (Solv : Solver.S) = struct
  type t = {
    solver : Solv.t;
    compiled : Engine.Compiled.t;
    sel : int array array; (* dense var -> dense target node -> ext var *)
    source : Structure.t;
    target : Structure.t;
    stats : stats;
  }

  let make ?restrict ?(symmetry = true) ~source ~target () =
    let c = Engine.compile ?restrict ~source ~target () in
    let solver = Solv.create () in
    let nclauses = ref 0 in
    let add cl =
      incr nclauses;
      Solv.add_clause solver cl
    in
    (* Selector variables over each variable's initial bitset domain. *)
    let sel =
      Array.init c.nvars (fun v ->
          let row = Array.make c.cap 0 in
          Bitset.iter (fun w -> row.(w) <- Solv.new_var solver) c.init.(v);
          row)
    in
    let sel_vars = Solv.nvars solver in
    (* A 0-ary source fact missing from the target refutes the instance
       before any variable choice. *)
    if not c.zero_ok then add [];
    (* At least one value; at most one (pairwise) — exactly-one makes
       models decode to functions. *)
    for v = 0 to c.nvars - 1 do
      let ws = Bitset.to_list c.init.(v) in
      add (List.map (fun w -> sel.(v).(w)) ws);
      let rec amo = function
        | [] -> ()
        | w :: rest ->
          List.iter (fun w' -> add [ -sel.(v).(w); -sel.(v).(w') ]) rest;
          amo rest
      in
      amo ws
    done;
    (* Per source fact: at least one supporting target tuple, each
       implying the selectors of its positions.  Tuples incompatible
       with the domains — or with a repeated variable — are dropped. *)
    Array.iter
      (fun (cc : Engine.Compiled.ccstr) ->
        let ar = Array.length cc.cvars in
        if ar > 0 then
          match cc.tgt with
          | None -> add []
          | Some crel ->
            let ys = ref [] in
            for ti = 0 to crel.count - 1 do
              let base = ti * ar in
              let ok = ref true in
              for p = 0 to ar - 1 do
                let v = cc.cvars.(p) and w = crel.flat.(base + p) in
                if not (Bitset.mem c.init.(v) w) then ok := false;
                for q = 0 to p - 1 do
                  if cc.cvars.(q) = v && crel.flat.(base + q) <> w then
                    ok := false
                done
              done;
              if !ok then begin
                let y = Solv.new_var solver in
                ys := y :: !ys;
                let pairs = ref [] in
                for p = 0 to ar - 1 do
                  let vw = (cc.cvars.(p), crel.flat.(base + p)) in
                  if not (List.mem vw !pairs) then pairs := vw :: !pairs
                done;
                List.iter (fun (v, w) -> add [ -y; sel.(v).(w) ]) !pairs
              end
            done;
            add !ys)
      c.cstrs;
    let tuple_vars = Solv.nvars solver - sel_vars in
    (* Ordering clauses over interchangeable variables: within a class
       (ascending var ids) force h(v_i) <= h(v_{i+1}) on dense target
       ids.  Sound because any class permutation is a source
       automorphism. *)
    let classes = if symmetry then interchangeable_classes c else [||] in
    Array.iter
      (fun cls ->
        for i = 0 to Array.length cls - 2 do
          let a = cls.(i) and b = cls.(i + 1) in
          Bitset.iter
            (fun w ->
              Bitset.iter
                (fun w' -> if w' < w then add [ -sel.(a).(w); -sel.(b).(w') ])
                c.init.(b))
            c.init.(a)
        done)
      classes;
    let largest_class =
      Array.fold_left (fun acc c -> max acc (Array.length c)) 0 classes
    in
    {
      solver;
      compiled = c;
      sel;
      source;
      target;
      stats =
        {
          sel_vars;
          tuple_vars;
          clauses = !nclauses;
          sym_classes = Array.length classes;
          largest_class;
        };
    }

  let stats t = t.stats
  let solver t = t.solver

  let decode t =
    let c = t.compiled in
    let h = ref Structure.Int_map.empty in
    let total = ref true in
    for v = 0 to c.nvars - 1 do
      let chosen = ref (-1) in
      Bitset.iter
        (fun w ->
          if !chosen < 0 && Solv.model_value t.solver t.sel.(v).(w) then
            chosen := w)
        c.init.(v);
      if !chosen < 0 then total := false
      else
        h :=
          Structure.Int_map.add c.csrc.node_ids.(v)
            c.ctgt.node_ids.(!chosen)
            !h
    done;
    if !total then Some !h else None

  let solve ?limits t =
    match Solv.solve ?limits t.solver with
    | Engine.Unsat -> Engine.Unsat
    | Engine.Unknown r -> Engine.Unknown r
    | Engine.Sat () -> (
      match decode t with
      | Some h when Engine.is_hom ~source:t.source ~target:t.target h ->
        Engine.Sat h
      | _ -> Engine.Unknown (Engine.Crashed "sat.decode"))

  let satisfiable ?limits t =
    match solve ?limits t with
    | Engine.Sat _ -> Engine.Sat ()
    | Engine.Unsat -> Engine.Unsat
    | Engine.Unknown r -> Engine.Unknown r
end
