(** Concrete syntax for first-order queries, used by the [certdb] CLI:

    {v
      exists x, y. R(x, y) and not S(x)
      forall x. R(x, 1) -> x = 2
    v}

    Keywords: [exists], [forall], [and], [or], [not], [true], [false];
    implication is [->], equality [=].  Inside atom arguments, bare
    identifiers are variables; integers and double-quoted strings are
    constants. *)

exception Parse_error of string

(** @raise Parse_error on malformed input. *)
val formula : string -> Fo.t
