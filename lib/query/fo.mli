(** First-order queries over relational instances, with active-domain
    semantics.  Evaluating an FO sentence directly on an incomplete
    instance treats nulls as plain values ([⊥1 = ⊥1], [⊥1 ≠ ⊥2],
    [⊥1 ≠ c]) — this is the first stage of naïve evaluation. *)

open Certdb_values
open Certdb_relational

type term =
  | Var of string
  | Val of Value.t

type t =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

(** Smart constructors. *)
val conj : t list -> t

val disj : t list -> t
val var : string -> term
val const : Value.t -> term
val atom : string -> term list -> t

val free_vars : t -> string list
val constants : t -> Value.Set.t

(** [is_existential_positive f] — no negation/implication/universal;
    i.e. a union of conjunctive queries up to logical equivalence. *)
val is_existential_positive : t -> bool

(** [is_existential f] — negations allowed, universal quantifiers not
    (after implication elimination; [Implies] counts as a negation). *)
val is_existential : t -> bool

(** [eval d env f] evaluates with quantifiers ranging over the active
    domain of [d] plus the constants of [f] (and values of [env]). *)
val eval : Instance.t -> Value.t Stdlib.Map.Make(String).t -> t -> bool

(** [holds d f] — [eval] with the empty environment; [f] must be a
    sentence. *)
val holds : Instance.t -> t -> bool

(** [answers ~head d f] — the set of assignments of [head] (drawn from the
    evaluation domain) satisfying [f], as an instance of a single relation
    ["ans"]. *)
val answers : head:string list -> Instance.t -> t -> Instance.t

val pp : Format.formatter -> t -> unit
