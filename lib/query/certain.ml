open Certdb_values
open Certdb_relational
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace

let naive_evals = Obs.counter "query.naive_evals"
let certain_checks = Obs.counter "query.certain_checks"
let answer_tuples = Obs.counter "query.answer_tuples"

let drop_null_tuples d =
  Instance.filter
    (fun (f : Instance.fact) -> Array.for_all Value.is_const f.args)
    d

let count_answers d =
  Obs.add answer_tuples (Instance.cardinal d);
  d

let naive_eval_fo ~head q d =
  Obs.incr naive_evals;
  Trace.with_span "query.naive_eval" @@ fun () ->
  count_answers (drop_null_tuples (Fo.answers ~head d q))

let naive_eval_ucq u d =
  Obs.incr naive_evals;
  Trace.with_span "query.naive_eval" @@ fun () ->
  count_answers (drop_null_tuples (Ucq.answers u d))

let naive_holds q d =
  Obs.incr naive_evals;
  Trace.with_span "query.naive_eval" @@ fun () -> Fo.holds d q

let certain_fo ~head q d =
  Obs.incr certain_checks;
  Trace.with_span "query.certain_fo" @@ fun () ->
  Semantics.certain_answers_by_enumeration (fun r -> Fo.answers ~head r q) d

let certain_holds_fo ?(worlds = []) q d =
  let sample = List.map snd (Semantics.sample_completions d) in
  List.for_all (fun r -> Fo.holds r q) (sample @ worlds)

let certain_holds_fo_owa q d =
  List.for_all (fun r -> Fo.holds r q) (Semantics.sample_worlds d)

(* For existential sentences, certainty over all of [[d]] reduces to the
   complete homomorphic images of d: existential FO is preserved under
   extensions, and every member of [[d]] extends such an image.  For the
   relational coding (σ = ∅) images are exactly the groundings — the set
   representation collapses merged facts by itself. *)
let certain_existential q d =
  if not (Fo.is_existential q) then
    invalid_arg "Certain.certain_existential: not an existential sentence";
  Obs.incr certain_checks;
  Trace.with_span "query.certain_existential" @@ fun () ->
  List.for_all (fun (_, r) -> Fo.holds r q) (Semantics.sample_completions d)

let certain_ucq = naive_eval_ucq

let certain_cq_via_hom q d =
  let tableau, _ = Cq.freeze q in
  Ordering.leq tableau d

let certain_cq_via_hom_b ?limits q d =
  let tableau, _ = Cq.freeze q in
  Ordering.leq_b ?limits tableau d

let certain_cq_via_containment q d = Cq.contained (Cq.of_instance d) q
let certain_cq_via_naive q d = Cq.holds q d

(* {2 Bounded-treewidth route (Theorem 6 / Lemma 4)} *)

module Structure = Certdb_csp.Structure
module Bounded_tw = Certdb_csp.Bounded_tw
module Treewidth = Certdb_csp.Treewidth
module Int_set = Structure.Int_set

module Domains = Certdb_csp.Domains

(* [D_Q ⊑ D] as an R-compatible hom problem — the shared encoding behind
   the bounded-treewidth and component-parallel routes: one unlabeled
   node per distinct term of the query, one target node per
   active-domain value.  [restrict] carries the semantics of the
   information ordering — a constant may map only to its own value, a
   variable (or a null literal) anywhere — so node labels stay unused.
   Both DPs ignore 0-ary facts, so propositional atoms are partitioned
   out for a direct check against [d]. *)
type cq_hom_instance = {
  cq_source : Structure.t;
  cq_target : Structure.t;
  cq_restrict : Domains.t;
}

let cq_hom_encode positive d =
  let term_ids = Hashtbl.create 16 in
  let next = ref 0 in
  let id_of_term t =
    match Hashtbl.find_opt term_ids t with
    | Some i -> i
    | None ->
      let i = !next in
      incr next;
      Hashtbl.replace term_ids t i;
      i
  in
  let source_tuples =
    List.map
      (fun (a : Cq.atom) ->
        (a.rel, [ Array.of_list (List.map id_of_term a.args) ]))
      positive
  in
  let source =
    Structure.make
      ~nodes:(List.init !next (fun i -> (i, None)))
      ~tuples:source_tuples
  in
  let values = Value.Set.elements (Instance.active_domain d) in
  let value_ids =
    List.fold_left
      (fun (i, m) v -> (i + 1, Value.Map.add v i m))
      (0, Value.Map.empty) values
    |> snd
  in
  let target =
    Structure.make
      ~nodes:(List.mapi (fun i _ -> (i, None)) values)
      ~tuples:
        (List.filter_map
           (fun (f : Instance.fact) ->
             if Array.length f.args = 0 then None
             else
               Some
                 ( f.rel,
                   [
                     Array.map (fun v -> Value.Map.find v value_ids) f.args;
                   ] ))
           (Instance.facts d))
  in
  let restrict =
    Domains.of_list
      (Hashtbl.fold
         (fun t i acc ->
           match t with
           | Fo.Var _ -> acc
           | Fo.Val value ->
             if Value.is_null value then acc
             else
               let s =
                 match Value.Map.find_opt value value_ids with
                 | Some w -> Int_set.singleton w
                 | None -> Int_set.empty
               in
               (i, s) :: acc)
         term_ids [])
  in
  { cq_source = source; cq_target = target; cq_restrict = restrict }

let cq_zero_split q d =
  let zero_ary, positive =
    List.partition (fun (a : Cq.atom) -> a.args = []) q.Cq.atoms
  in
  let zero_ok =
    List.for_all
      (fun (a : Cq.atom) ->
        List.exists (fun t -> Array.length t = 0) (Instance.tuples d a.rel))
      zero_ary
  in
  (zero_ok, positive)

let certain_cq_via_btw ?decomposition q d =
  if q.Cq.head <> [] then
    invalid_arg "Certain.certain_cq_via_btw: Boolean query only";
  Obs.incr certain_checks;
  Trace.with_span "query.certain_btw" @@ fun () ->
  let zero_ok, positive = cq_zero_split q d in
  if not zero_ok then false
  else if positive = [] then true
  else begin
    let { cq_source = source; cq_target = target; cq_restrict = restrict } =
      cq_hom_encode positive d
    in
    let decomposition =
      match decomposition with
      | Some dec -> dec
      | None -> fst (Treewidth.estimate source)
    in
    Bounded_tw.r_hom ~decomposition ~restrict ~source ~target ()
  end

(* The component-parallel route: a query with disconnected atom groups
   (a cartesian-product query) decomposes into one hom instance per
   connected component of the tableau; [Engine.Components] solves them
   independently — on [jobs] domains when asked — and conjoins.  Always
   budget-sound: [`Unknown] only when a limit trips. *)
let certain_cq_via_components ?(jobs = 1)
    ?(limits = Certdb_csp.Engine.Limits.unlimited) q d =
  if q.Cq.head <> [] then
    invalid_arg "Certain.certain_cq_via_components: Boolean query only";
  Obs.incr certain_checks;
  Trace.with_span "query.certain_components" @@ fun () ->
  let zero_ok, positive = cq_zero_split q d in
  if not zero_ok then `False
  else if positive = [] then `True
  else begin
    let { cq_source = source; cq_target = target; cq_restrict = restrict } =
      cq_hom_encode positive d
    in
    let config =
      Certdb_csp.Engine.Config.make ~limits ~restrict ()
    in
    Certdb_csp.Engine.decision_of_outcome
      (Certdb_csp.Engine.Components.satisfiable ~config ~jobs ~source
         ~target ())
  end

(* {2 The SAT backend route} *)

module Engine = Certdb_csp.Engine
module Sat_backend = Certdb_sat.Backend

(* Same reduction as the components/btw routes — the tableau as source,
   the active domain as target, constants pinned by [restrict] — but
   decided by CNF encoding + CDCL instead of backtracking search. *)
let certain_cq_via_sat_b ?limits ?symmetry q d =
  if q.Cq.head <> [] then
    invalid_arg "Certain.certain_cq_via_sat_b: Boolean query only";
  Obs.incr certain_checks;
  Trace.with_span "query.certain_sat" @@ fun () ->
  let zero_ok, positive = cq_zero_split q d in
  if not zero_ok then `False
  else if positive = [] then `True
  else begin
    let { cq_source = source; cq_target = target; cq_restrict = restrict } =
      cq_hom_encode positive d
    in
    let config = Engine.Config.make ?limits ~restrict () in
    Engine.decision_of_outcome
      (Sat_backend.satisfiable ~config ?symmetry ~source ~target ())
  end

(* The same instance, exported as DIMACS CNF for external solvers.  The
   0-ary split is not expressible in clauses over the encoding's
   variables (it needs no variables at all), so it is reported in a
   comment; a [zero_ok=false] instance is unsatisfiable regardless of
   the clauses below it. *)
let certain_cq_dimacs ?symmetry q d =
  if q.Cq.head <> [] then
    invalid_arg "Certain.certain_cq_dimacs: Boolean query only";
  let zero_ok, positive = cq_zero_split q d in
  let { cq_source = source; cq_target = target; cq_restrict = restrict } =
    cq_hom_encode positive d
  in
  let comments =
    [ Printf.sprintf "certdb Boolean-CQ certainty; zero_ok=%b" zero_ok ]
  in
  Sat_backend.dimacs ~restrict ?symmetry ~comments ~source ~target ()

(* {2 Graceful degradation} *)

module Resilient = Certdb_csp.Resilient

let resilient_exact = Obs.counter "query.resilient.exact"
let resilient_degraded = Obs.counter "query.resilient.degraded"

let outcome_of_decision = function
  | `True -> Engine.Sat ()
  | `False -> Engine.Unsat
  | `Unknown r -> Engine.Unknown r

let certain_cq_resilient ?policy ?(limits = Engine.Limits.unlimited)
    ?(backend = Sat_backend.Csp) q d =
  Obs.incr certain_checks;
  let csp limits = outcome_of_decision (certain_cq_via_hom_b ~limits q d) in
  let sat limits = outcome_of_decision (certain_cq_via_sat_b ~limits q d) in
  let r =
    match backend with
    | Sat_backend.Csp ->
      Resilient.run ?policy ~limits (fun ~attempt:_ limits -> csp limits)
    | Sat_backend.Sat ->
      (* SAT primary; if every CDCL attempt trips (or crashes), retry
         once on the CSP engine before degrading *)
      Resilient.run ?policy ~fallback:("csp", csp) ~limits
        (fun ~attempt:_ limits -> sat limits)
    | Sat_backend.Auto ->
      (* without a planner certificate, Auto means: CSP first (the
         default engine), cross to SAT on exhaustion *)
      Resilient.run ?policy ~fallback:("sat", sat) ~limits
        (fun ~attempt:_ limits -> csp limits)
  in
  match r.Resilient.outcome with
  | Engine.Sat () ->
    Obs.incr resilient_exact;
    `Exact true
  | Engine.Unsat ->
    Obs.incr resilient_exact;
    `Exact false
  | Engine.Unknown _ ->
    (* every retry tripped: degrade to naïve evaluation, which is sound
       for certain answers (Theorem 4) and never budgeted.  It is still
       a hom-shaped evaluation, so a permanent injected crash at
       csp.search.node would kill this last rung too — [false] is the
       trivially sound floor, and the graded contract survives *)
    Obs.incr resilient_degraded;
    let lower =
      match certain_cq_via_naive q d with
      | b -> b
      | exception Certdb_obs.Fault.Injected _ -> false
    in
    `Lower_bound lower

let certain_holds_cwa q d =
  Obs.incr certain_checks;
  Trace.with_span "query.certain_cwa" @@ fun () ->
  List.for_all (fun (_, r) -> Fo.holds r q) (Semantics.sample_completions d)

let possible_holds_cwa q d =
  List.exists (fun (_, r) -> Fo.holds r q) (Semantics.sample_completions d)

let possible_ucq u d =
  List.fold_left
    (fun acc (_, r) -> Instance.union acc (Ucq.answers u r))
    Instance.empty
    (Semantics.sample_completions d)

let naive_eval_is_certain ~head q d =
  Instance.equal (naive_eval_fo ~head q d) (certain_fo ~head q d)
