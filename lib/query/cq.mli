(** Conjunctive queries and their tableaux.  A naïve database is a Boolean
    CQ and vice versa (Section 2.1): [D ↦ Q_D] replaces nulls by
    existential variables, [Q ↦ D_Q] freezes variables into nulls.  CQ
    containment is tableau homomorphism, which together with the
    information ordering yields Prop. 2. *)

open Certdb_values
open Certdb_relational

type atom = { rel : string; args : Fo.term list }

type t = {
  head : string list; (* empty: Boolean CQ *)
  atoms : atom list;
}

val make : ?head:string list -> (string * Fo.term list) list -> t
val boolean : (string * Fo.term list) list -> t
val vars : t -> string list
val to_fo : t -> Fo.t

(** [freeze q] — the tableau [D_Q]: each variable becomes a fresh null.
    Returns the instance and the variable-to-null assignment (whose
    restriction to [head] identifies the distinguished nulls). *)
val freeze : t -> Instance.t * Value.t Stdlib.Map.Make(String).t

(** [of_instance d] — the canonical Boolean CQ [Q_D] of a naïve database:
    nulls become variables named after their ids. *)
val of_instance : Instance.t -> t

(** [answers q d] evaluates [q] over [d] {e as if complete} (nulls are
    values), via homomorphism search on the tableau — result is a relation
    ["ans"]; for a Boolean query the 0-ary fact [ans()] encodes [true]. *)
val answers : t -> Instance.t -> Instance.t

(** [holds q d] — Boolean CQ satisfaction [d |= q]. *)
val holds : t -> Instance.t -> bool

(** [contained q1 q2] — [Q1 ⊆ Q2] via a homomorphism from the tableau of
    [q2] into the tableau of [q1] preserving distinguished nulls. *)
val contained : t -> t -> bool

(** [equivalent q1 q2] — mutual containment. *)
val equivalent : t -> t -> bool

(** [minimize q] — the classical CQ minimization: the core of the tableau
    (with head variables frozen to constants so they cannot fold), read
    back as a query.  The result is equivalent to [q] and has a minimal
    number of atoms. *)
val minimize : t -> t

val pp : Format.formatter -> t -> unit
