open Certdb_values
open Certdb_relational
module String_map = Map.Make (String)

type atom = { rel : string; args : Fo.term list }

type t = {
  head : string list;
  atoms : atom list;
}

let make ?(head = []) atoms =
  let q = { head; atoms = List.map (fun (rel, args) -> { rel; args }) atoms } in
  let vs =
    List.concat_map
      (fun a ->
        List.filter_map
          (function Fo.Var x -> Some x | Fo.Val _ -> None)
          a.args)
      q.atoms
  in
  List.iter
    (fun x ->
      if not (List.mem x vs) then
        invalid_arg
          (Printf.sprintf "Cq.make: head variable %s not in the body" x))
    head;
  q

let boolean atoms = make atoms

let vars q =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc t ->
          match t with
          | Fo.Var x when not (List.mem x acc) -> x :: acc
          | _ -> acc)
        acc a.args)
    [] q.atoms
  |> List.rev

let to_fo q =
  let body =
    Fo.conj (List.map (fun a -> Fo.Atom (a.rel, a.args)) q.atoms)
  in
  let bound = List.filter (fun x -> not (List.mem x q.head)) (vars q) in
  if bound = [] then body else Fo.Exists (bound, body)

let freeze q =
  let assignment =
    List.fold_left
      (fun m x ->
        if String_map.mem x m then m
        else String_map.add x (Value.fresh_null ()) m)
      String_map.empty (vars q)
  in
  let term_value = function
    | Fo.Val v -> v
    | Fo.Var x -> String_map.find x assignment
  in
  let inst =
    List.fold_left
      (fun acc a -> Instance.add_fact acc a.rel (List.map term_value a.args))
      Instance.empty q.atoms
  in
  (inst, assignment)

let of_instance d =
  let atoms =
    List.map
      (fun (f : Instance.fact) ->
        ( f.rel,
          List.map
            (fun v ->
              match v with
              | Value.Null i -> Fo.Var (Printf.sprintf "x%d" i)
              | Value.Const _ -> Fo.Val v)
            (Array.to_list f.args) ))
      (Instance.facts d)
  in
  boolean atoms

let answers q d =
  let tableau, assignment = freeze q in
  let head_nulls = List.map (fun x -> String_map.find x assignment) q.head in
  let results = ref Instance.empty in
  Certdb_relational.Hom.iter tableau d (fun h ->
      let tuple = List.map (Valuation.apply h) head_nulls in
      results := Instance.add_fact !results "ans" tuple;
      `Continue);
  !results

let holds q d =
  if q.head <> [] then invalid_arg "Cq.holds: non-Boolean query";
  let tableau, _ = freeze q in
  Certdb_relational.Hom.exists tableau d

(* Q1 ⊆ Q2 iff the canonical database of Q1 (head variables frozen to
   distinguished constants) satisfies Q2 with the same distinguished
   output. *)
let contained q1 q2 =
  if List.length q1.head <> List.length q2.head then false
  else begin
    let distinguished =
      List.map (fun x -> (x, Value.fresh_const ())) q1.head
    in
    let build q head_pairs =
      let head_map =
        List.fold_left
          (fun m (x, c) -> String_map.add x c m)
          String_map.empty head_pairs
      in
      let body_map =
        List.fold_left
          (fun m x ->
            if String_map.mem x m then m
            else String_map.add x (Value.fresh_null ()) m)
          head_map (vars q)
      in
      let term_value = function
        | Fo.Val v -> v
        | Fo.Var x -> String_map.find x body_map
      in
      List.fold_left
        (fun acc a ->
          Instance.add_fact acc a.rel (List.map term_value a.args))
        Instance.empty q.atoms
    in
    let pairs1 = distinguished in
    let pairs2 =
      List.map2 (fun x (_, c) -> (x, c)) q2.head distinguished
    in
    let canon1 = build q1 pairs1 in
    let tabl2 = build q2 pairs2 in
    Certdb_relational.Hom.exists tabl2 canon1
  end

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let minimize q =
  (* freeze: head variables to distinguished constants, body variables to
     nulls; minimize = take the core; read the atoms back *)
  let head_pairs = List.map (fun x -> (x, Value.fresh_const ())) q.head in
  let head_map =
    List.fold_left
      (fun m (x, c) -> String_map.add x c m)
      String_map.empty head_pairs
  in
  let body_map =
    List.fold_left
      (fun m x ->
        if String_map.mem x m then m
        else String_map.add x (Value.fresh_null ()) m)
      head_map (vars q)
  in
  let term_value = function
    | Fo.Val v -> v
    | Fo.Var x -> String_map.find x body_map
  in
  let inst =
    List.fold_left
      (fun acc a -> Instance.add_fact acc a.rel (List.map term_value a.args))
      Instance.empty q.atoms
  in
  let core = Core_instance.core inst in
  let back v =
    match List.find_opt (fun (_, c) -> Value.equal c v) head_pairs with
    | Some (x, _) -> Fo.Var x
    | None -> (
      match v with
      | Value.Null i -> Fo.Var (Printf.sprintf "m%d" i)
      | Value.Const _ -> Fo.Val v)
  in
  let atoms =
    List.map
      (fun (f : Instance.fact) ->
        (f.rel, List.map back (Array.to_list f.args)))
      (Instance.facts core)
  in
  make ~head:q.head atoms

let pp ppf q =
  let pp_atom ppf a =
    Format.fprintf ppf "%s(%a)" a.rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf t ->
           match t with
           | Fo.Var x -> Format.fprintf ppf "%s" x
           | Fo.Val v -> Value.pp ppf v))
      a.args
  in
  Format.fprintf ppf "ans(%s) :- %a" (String.concat "," q.head)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_atom)
    q.atoms
