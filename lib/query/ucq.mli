open Certdb_relational
(** Unions of conjunctive queries — the exact class for which naïve
    evaluation computes certain answers (Imieliński–Lipski; optimal by
    Prop. 1). *)

type t = Cq.t list

(** @raise Invalid_argument unless all disjuncts share the head arity. *)
val make : Cq.t list -> t

val to_fo : t -> Fo.t
val answers : t -> Instance.t -> Instance.t
val holds : t -> Instance.t -> bool

(** [contained u1 u2] — each disjunct of [u1] contained in some disjunct of
    [u2] (sound and complete for UCQ containment). *)
val contained : t -> t -> bool
