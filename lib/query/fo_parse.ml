open Certdb_values

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Ident of string
  | Number of int
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Arrow
  | Equals

let keywords = [ "exists"; "forall"; "and"; "or"; "not"; "true"; "false" ]

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (tokens := Lparen :: !tokens; incr i)
    else if c = ')' then (tokens := Rparen :: !tokens; incr i)
    else if c = ',' then (tokens := Comma :: !tokens; incr i)
    else if c = '.' then (tokens := Dot :: !tokens; incr i)
    else if c = '=' then (tokens := Equals :: !tokens; incr i)
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '>' then begin
      tokens := Arrow :: !tokens;
      i := !i + 2
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then fail "unterminated string literal";
      tokens := Quoted (String.sub s (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      (match int_of_string_opt (String.sub s !i (!j - !i)) with
      | Some k -> tokens := Number k :: !tokens
      | None -> fail "bad number");
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      tokens := Ident (String.sub s !i (!j - !i)) :: !tokens;
      i := !j
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

let formula s =
  let tokens = ref (tokenize s) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () =
    match !tokens with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
      tokens := rest;
      t
  in
  let expect what t' =
    let t = advance () in
    if t <> t' then fail "expected %s" what
  in
  let parse_term () =
    match advance () with
    | Ident x when not (List.mem x keywords) -> Fo.Var x
    | Number k -> Fo.Val (Value.int k)
    | Quoted str -> Fo.Val (Value.str str)
    | _ -> fail "expected a term"
  in
  let parse_varlist () =
    let rec loop acc =
      match advance () with
      | Ident x when not (List.mem x keywords) -> (
        match peek () with
        | Some Comma ->
          ignore (advance ());
          loop (x :: acc)
        | Some Dot ->
          ignore (advance ());
          List.rev (x :: acc)
        | _ -> fail "expected ',' or '.' in the quantifier prefix")
      | _ -> fail "expected a variable"
    in
    loop []
  in
  (* precedence: quantifiers < -> < or < and < not/atoms *)
  let rec parse_formula () =
    match peek () with
    | Some (Ident "exists") ->
      ignore (advance ());
      let xs = parse_varlist () in
      Fo.Exists (xs, parse_formula ())
    | Some (Ident "forall") ->
      ignore (advance ());
      let xs = parse_varlist () in
      Fo.Forall (xs, parse_formula ())
    | _ -> parse_implies ()
  and parse_implies () =
    let lhs = parse_or () in
    match peek () with
    | Some Arrow ->
      ignore (advance ());
      Fo.Implies (lhs, parse_formula ())
    | _ -> lhs
  and parse_or () =
    let lhs = parse_and () in
    match peek () with
    | Some (Ident "or") ->
      ignore (advance ());
      Fo.Or (lhs, parse_or ())
    | _ -> lhs
  and parse_and () =
    let lhs = parse_unary () in
    match peek () with
    | Some (Ident "and") ->
      ignore (advance ());
      Fo.And (lhs, parse_and ())
    | _ -> lhs
  and parse_unary () =
    match peek () with
    | Some (Ident "not") ->
      ignore (advance ());
      Fo.Not (parse_unary ())
    | Some (Ident "true") ->
      ignore (advance ());
      Fo.True
    | Some (Ident "false") ->
      ignore (advance ());
      Fo.False
    | Some (Ident ("exists" | "forall")) -> parse_formula ()
    | Some Lparen ->
      ignore (advance ());
      let f = parse_formula () in
      expect "')'" Rparen;
      f
    | Some (Ident rel) -> (
      ignore (advance ());
      match peek () with
      | Some Lparen ->
        ignore (advance ());
        let args = ref [] in
        (match peek () with
        | Some Rparen -> ignore (advance ())
        | _ ->
          let rec loop () =
            args := parse_term () :: !args;
            match advance () with
            | Comma -> loop ()
            | Rparen -> ()
            | _ -> fail "expected ',' or ')'"
          in
          loop ());
        Fo.Atom (rel, List.rev !args)
      | Some Equals ->
        ignore (advance ());
        Fo.Eq (Fo.Var rel, parse_term ())
      | _ -> fail "expected '(' or '=' after %s" rel)
    | Some (Number _ | Quoted _) -> (
      let lhs = parse_term () in
      match advance () with
      | Equals -> Fo.Eq (lhs, parse_term ())
      | _ -> fail "expected '=' after a constant")
    | _ -> fail "expected a formula"
  in
  let f = parse_formula () in
  if !tokens <> [] then fail "trailing input after the formula";
  f
