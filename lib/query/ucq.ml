open Certdb_relational
type t = Cq.t list

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: qs ->
    let arity = List.length q.Cq.head in
    List.iter
      (fun q' ->
        if List.length q'.Cq.head <> arity then
          invalid_arg "Ucq.make: disjuncts with different head arities")
      qs;
    q :: qs

let to_fo u = Fo.disj (List.map Cq.to_fo u)

let answers u d =
  List.fold_left
    (fun acc q -> Instance.union acc (Cq.answers q d))
    Instance.empty u

let holds u d = List.exists (fun q -> Cq.holds q d) u

let contained u1 u2 =
  List.for_all
    (fun q1 -> List.exists (fun q2 -> Cq.contained q1 q2) u2)
    u1
