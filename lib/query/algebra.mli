(** Positive relational algebra — the procedural language for which the
    paper notes certain answers are computable in polynomial time by naïve
    evaluation (Section 2.1).  Operators: base relation, selection
    (equality conditions only — positivity), projection, natural-join-like
    equijoin on column positions, renaming (column permutation), union, and
    cross product.

    Evaluation over an incomplete instance treats nulls as values; the
    naïve-evaluation wrapper then discards tuples containing nulls.
    Columns are 0-based. *)

open Certdb_values
open Certdb_relational

type condition =
  | Col_eq_col of int * int (* σ_{i = j} *)
  | Col_eq_const of int * Value.t (* σ_{i = c} *)

type t =
  | Rel of string (* base relation *)
  | Select of condition * t
  | Project of int list * t (* keep the listed columns, in order *)
  | Product of t * t
  | Join of (int * int) list * t * t (* equijoin on position pairs *)
  | Union of t * t
  | Rename of int list * t (* permutation of columns *)

(** [arity schema q] — the output arity, checking well-formedness.
    @raise Invalid_argument on arity errors or unknown relations. *)
val arity : Schema.t -> t -> int

(** [eval q d] — evaluate over an instance, nulls as values.  The result
    is a set of tuples. *)
val eval : t -> Instance.t -> Value.t array list

(** [eval_instance ~name q d] — the result as an instance of relation
    [name]. *)
val eval_instance : name:string -> t -> Instance.t -> Instance.t

(** [naive_eval ~name q d] — evaluate and drop tuples containing nulls:
    certain answers, for this (positive) language. *)
val naive_eval : name:string -> t -> Instance.t -> Instance.t

(** [to_fo q ~schema] — translate into first-order logic: returns the
    output variable names (one per column) and an existential positive
    formula; used to cross-check the two evaluators.
    @raise Invalid_argument on arity errors. *)
val to_fo : t -> schema:Schema.t -> string list * Fo.t

val pp : Format.formatter -> t -> unit
