open Certdb_values
open Certdb_relational
module Obs = Certdb_obs.Obs

let ops = Obs.counter "query.algebra.ops"
let out_tuples = Obs.counter "query.algebra.tuples"

type condition =
  | Col_eq_col of int * int
  | Col_eq_const of int * Value.t

type t =
  | Rel of string
  | Select of condition * t
  | Project of int list * t
  | Product of t * t
  | Join of (int * int) list * t * t
  | Union of t * t
  | Rename of int list * t

let rec arity schema = function
  | Rel r -> (
    match Schema.arity schema r with
    | Some k -> k
    | None -> invalid_arg (Printf.sprintf "Algebra: unknown relation %s" r))
  | Select (cond, q) ->
    let k = arity schema q in
    (match cond with
    | Col_eq_col (i, j) ->
      if i < 0 || j < 0 || i >= k || j >= k then
        invalid_arg "Algebra: selection column out of range"
    | Col_eq_const (i, _) ->
      if i < 0 || i >= k then
        invalid_arg "Algebra: selection column out of range");
    k
  | Project (cols, q) ->
    let k = arity schema q in
    List.iter
      (fun c ->
        if c < 0 || c >= k then
          invalid_arg "Algebra: projection column out of range")
      cols;
    List.length cols
  | Product (q1, q2) -> arity schema q1 + arity schema q2
  | Join (pairs, q1, q2) ->
    let k1 = arity schema q1 and k2 = arity schema q2 in
    List.iter
      (fun (i, j) ->
        if i < 0 || i >= k1 || j < 0 || j >= k2 then
          invalid_arg "Algebra: join column out of range")
      pairs;
    k1 + k2
  | Union (q1, q2) ->
    let k1 = arity schema q1 and k2 = arity schema q2 in
    if k1 <> k2 then invalid_arg "Algebra: union arity mismatch";
    k1
  | Rename (perm, q) ->
    let k = arity schema q in
    if List.length perm <> k || List.sort compare perm <> List.init k Fun.id
    then invalid_arg "Algebra: rename is not a permutation";
    k

module Tuple_set = Set.Make (struct
  type t = Value.t array

  let compare (a : Value.t array) b = Stdlib.compare a b
end)

let rec eval_set q d =
  Obs.incr ops;
  match q with
  | Rel r -> Tuple_set.of_list (Instance.tuples d r)
  | Select (cond, q) ->
    let pass t =
      match cond with
      | Col_eq_col (i, j) -> Value.equal t.(i) t.(j)
      | Col_eq_const (i, c) -> Value.equal t.(i) c
    in
    Tuple_set.filter pass (eval_set q d)
  | Project (cols, q) ->
    Tuple_set.fold
      (fun t acc ->
        Tuple_set.add (Array.of_list (List.map (fun c -> t.(c)) cols)) acc)
      (eval_set q d) Tuple_set.empty
  | Product (q1, q2) ->
    let s1 = eval_set q1 d and s2 = eval_set q2 d in
    Tuple_set.fold
      (fun t1 acc ->
        Tuple_set.fold
          (fun t2 acc -> Tuple_set.add (Array.append t1 t2) acc)
          s2 acc)
      s1 Tuple_set.empty
  | Join (pairs, q1, q2) ->
    let s1 = eval_set q1 d and s2 = eval_set q2 d in
    Tuple_set.fold
      (fun t1 acc ->
        Tuple_set.fold
          (fun t2 acc ->
            if
              List.for_all (fun (i, j) -> Value.equal t1.(i) t2.(j)) pairs
            then Tuple_set.add (Array.append t1 t2) acc
            else acc)
          s2 acc)
      s1 Tuple_set.empty
  | Union (q1, q2) -> Tuple_set.union (eval_set q1 d) (eval_set q2 d)
  | Rename (perm, q) ->
    let perm = Array.of_list perm in
    Tuple_set.fold
      (fun t acc ->
        let t' = Array.make (Array.length t) t.(0) in
        Array.iteri (fun dst src -> t'.(dst) <- t.(src)) perm;
        Tuple_set.add t' acc)
      (eval_set q d) Tuple_set.empty

let eval q d =
  Obs.with_span "query.algebra.eval" @@ fun () ->
  let result = Tuple_set.elements (eval_set q d) in
  Obs.add out_tuples (List.length result);
  result

let eval_instance ~name q d =
  List.fold_left
    (fun acc t -> Instance.add_fact acc name (Array.to_list t))
    Instance.empty (eval q d)

let naive_eval ~name q d =
  Instance.filter
    (fun (f : Instance.fact) -> Array.for_all Value.is_const f.args)
    (eval_instance ~name q d)

(* FO translation: a column becomes a variable; fresh variable names are
   threaded through a counter. *)
let to_fo q ~schema =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  (* returns (column variable names, formula) *)
  let rec go q =
    match q with
    | Rel r ->
      let k =
        match Schema.arity schema r with
        | Some k -> k
        | None -> invalid_arg (Printf.sprintf "Algebra: unknown relation %s" r)
      in
      let vars = List.init k (fun _ -> fresh ()) in
      (vars, Fo.Atom (r, List.map (fun v -> Fo.Var v) vars))
    | Select (cond, q) ->
      let vars, f = go q in
      let extra =
        match cond with
        | Col_eq_col (i, j) ->
          Fo.Eq (Fo.Var (List.nth vars i), Fo.Var (List.nth vars j))
        | Col_eq_const (i, c) -> Fo.Eq (Fo.Var (List.nth vars i), Fo.Val c)
      in
      (vars, Fo.And (f, extra))
    | Project (cols, q) ->
      let vars, f = go q in
      let kept = List.map (fun c -> List.nth vars c) cols in
      let dropped = List.filter (fun v -> not (List.mem v kept)) vars in
      let f = if dropped = [] then f else Fo.Exists (dropped, f) in
      (kept, f)
    | Product (q1, q2) ->
      let vars1, f1 = go q1 and vars2, f2 = go q2 in
      (vars1 @ vars2, Fo.And (f1, f2))
    | Join (pairs, q1, q2) ->
      let vars1, f1 = go q1 and vars2, f2 = go q2 in
      let eqs =
        List.map
          (fun (i, j) ->
            Fo.Eq (Fo.Var (List.nth vars1 i), Fo.Var (List.nth vars2 j)))
          pairs
      in
      (vars1 @ vars2, Fo.conj ((f1 :: f2 :: eqs) |> List.rev))
    | Union (q1, q2) ->
      let vars1, f1 = go q1 and vars2, f2 = go q2 in
      (* align the two branches on vars1 by equating columns *)
      let eqs =
        List.map2 (fun v w -> Fo.Eq (Fo.Var v, Fo.Var w)) vars1 vars2
      in
      let right = Fo.Exists (vars2, Fo.conj (f2 :: eqs)) in
      (vars1, Fo.Or (f1, right))
    | Rename (perm, q) ->
      let vars, f = go q in
      (List.map (fun src -> List.nth vars src) perm, f)
  in
  go q

let rec pp ppf = function
  | Rel r -> Format.fprintf ppf "%s" r
  | Select (Col_eq_col (i, j), q) ->
    Format.fprintf ppf "sel[%d=%d](%a)" i j pp q
  | Select (Col_eq_const (i, c), q) ->
    Format.fprintf ppf "sel[%d=%a](%a)" i Value.pp c pp q
  | Project (cols, q) ->
    Format.fprintf ppf "proj[%s](%a)"
      (String.concat "," (List.map string_of_int cols))
      pp q
  | Product (q1, q2) -> Format.fprintf ppf "(%a x %a)" pp q1 pp q2
  | Join (pairs, q1, q2) ->
    Format.fprintf ppf "(%a |x|[%s] %a)" pp q1
      (String.concat ","
         (List.map (fun (i, j) -> Printf.sprintf "%d=%d" i j) pairs))
      pp q2
  | Union (q1, q2) -> Format.fprintf ppf "(%a u %a)" pp q1 pp q2
  | Rename (perm, q) ->
    Format.fprintf ppf "rho[%s](%a)"
      (String.concat "," (List.map string_of_int perm))
      pp q
