open Certdb_values
open Certdb_relational
module String_map = Map.Make (String)

type term =
  | Var of string
  | Val of Value.t

type t =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let var x = Var x
let const v = Val v
let atom rel args = Atom (rel, args)

let free_vars f =
  let rec go bound acc = function
    | True | False -> acc
    | Atom (_, ts) ->
      List.fold_left
        (fun acc t ->
          match t with
          | Var x when not (List.mem x bound) && not (List.mem x acc) ->
            x :: acc
          | _ -> acc)
        acc ts
    | Eq (t1, t2) ->
      List.fold_left
        (fun acc t ->
          match t with
          | Var x when not (List.mem x bound) && not (List.mem x acc) ->
            x :: acc
          | _ -> acc)
        acc [ t1; t2 ]
    | Not g -> go bound acc g
    | And (g1, g2) | Or (g1, g2) | Implies (g1, g2) ->
      go bound (go bound acc g1) g2
    | Exists (xs, g) | Forall (xs, g) -> go (xs @ bound) acc g
  in
  List.rev (go [] [] f)

let constants f =
  let rec go acc = function
    | True | False -> acc
    | Atom (_, ts) ->
      List.fold_left
        (fun acc t -> match t with Val v -> Value.Set.add v acc | Var _ -> acc)
        acc ts
    | Eq (t1, t2) ->
      List.fold_left
        (fun acc t -> match t with Val v -> Value.Set.add v acc | Var _ -> acc)
        acc [ t1; t2 ]
    | Not g -> go acc g
    | And (g1, g2) | Or (g1, g2) | Implies (g1, g2) -> go (go acc g1) g2
    | Exists (_, g) | Forall (_, g) -> go acc g
  in
  go Value.Set.empty f

let rec is_existential_positive = function
  | True | False | Atom _ | Eq _ -> true
  | And (f, g) | Or (f, g) ->
    is_existential_positive f && is_existential_positive g
  | Exists (_, f) -> is_existential_positive f
  | Not _ | Implies _ | Forall _ -> false

let rec is_existential = function
  | True | False | Atom _ | Eq _ -> true
  | And (f, g) | Or (f, g) -> is_existential f && is_existential g
  | Not f -> is_quantifier_free f
  | Implies (f, g) -> is_quantifier_free f && is_quantifier_free (Not g)
  | Exists (_, f) -> is_existential f
  | Forall _ -> false

and is_quantifier_free = function
  | True | False | Atom _ | Eq _ -> true
  | Not f -> is_quantifier_free f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
    is_quantifier_free f && is_quantifier_free g
  | Exists _ | Forall _ -> false

let eval_term env = function
  | Val v -> v
  | Var x -> (
    match String_map.find_opt x env with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Fo.eval: unbound variable %s" x))

let eval d env f =
  let domain =
    Value.Set.elements
      (Value.Set.union (Instance.active_domain d) (constants f))
  in
  let rec go env = function
    | True -> true
    | False -> false
    | Atom (rel, ts) ->
      let args = List.map (eval_term env) ts in
      Instance.mem d (Instance.fact rel args)
    | Eq (t1, t2) -> Value.equal (eval_term env t1) (eval_term env t2)
    | Not g -> not (go env g)
    | And (g1, g2) -> go env g1 && go env g2
    | Or (g1, g2) -> go env g1 || go env g2
    | Implies (g1, g2) -> (not (go env g1)) || go env g2
    | Exists (xs, g) -> quantify env xs g List.exists
    | Forall (xs, g) -> quantify env xs g List.for_all
  and quantify : 'a. _ -> _ -> _ -> (((Value.t -> bool) -> Value.t list -> bool)) -> bool =
   fun env xs g combine ->
    match xs with
    | [] -> go env g
    | x :: rest ->
      combine (fun v -> quantify (String_map.add x v env) rest g combine) domain
  in
  go env f

let holds d f = eval d String_map.empty f

let answers ~head d f =
  let domain =
    Value.Set.elements
      (Value.Set.union (Instance.active_domain d) (constants f))
  in
  let rec assignments env = function
    | [] -> if eval d env f then [ env ] else []
    | x :: rest ->
      List.concat_map
        (fun v -> assignments (String_map.add x v env) rest)
        domain
  in
  List.fold_left
    (fun acc env ->
      Instance.add_fact acc "ans"
        (List.map (fun x -> String_map.find x env) head))
    Instance.empty
    (assignments String_map.empty head)

let pp_term ppf = function
  | Var x -> Format.fprintf ppf "%s" x
  | Val v -> Value.pp ppf v

let rec pp ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Atom (rel, ts) ->
    Format.fprintf ppf "%s(%a)" rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         pp_term)
      ts
  | Eq (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | Not f -> Format.fprintf ppf "~(%a)" pp f
  | And (f, g) -> Format.fprintf ppf "(%a /\\ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(%a \\/ %a)" pp f pp g
  | Implies (f, g) -> Format.fprintf ppf "(%a -> %a)" pp f pp g
  | Exists (xs, f) ->
    Format.fprintf ppf "exists %s. %a" (String.concat "," xs) pp f
  | Forall (xs, f) ->
    Format.fprintf ppf "forall %s. %a" (String.concat "," xs) pp f
