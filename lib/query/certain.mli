(** Certain answers over naïve databases (Section 2.1) and the paper's
    characterizations:

    - [certain(Q,D) = ⋂ { Q(R) | R ∈ [[D]] }] — reference implementation by
      enumeration of a finite completion sample;
    - naïve evaluation [Q_naïve(D)]: run [Q] treating nulls as values, then
      drop tuples with nulls — computes certain answers exactly for UCQs;
    - Prop. 2: for Boolean CQs, [certain(Q,D) = true] iff [D_Q ⊑ D] iff
      [Q_D ⊆ Q]. *)

open Certdb_relational

(** {1 Naïve evaluation} *)

(** [naive_eval_fo ~head q d] — evaluate, then remove answer tuples
    containing nulls. *)
val naive_eval_fo : head:string list -> Fo.t -> Instance.t -> Instance.t

(** [naive_eval_ucq u d] — naïve evaluation through the tableau-based CQ
    evaluator (faster than FO enumeration). *)
val naive_eval_ucq : Ucq.t -> Instance.t -> Instance.t

(** [naive_holds q d] — Boolean naïve evaluation: [d |= q] with nulls as
    values. *)
val naive_holds : Fo.t -> Instance.t -> bool

(** {1 Certain answers — reference implementations} *)

(** [certain_fo ~head q d] — by enumeration over
    {!Semantics.sample_completions}.  Exponential; small inputs only. *)
val certain_fo : head:string list -> Fo.t -> Instance.t -> Instance.t

(** [certain_holds_fo ?worlds q d] — certain truth of a Boolean FO query
    over the completion sample, optionally extended with caller-supplied
    worlds from [[d]] (needed to refute certainty of non-monotone
    queries). *)
val certain_holds_fo : ?worlds:Instance.t list -> Fo.t -> Instance.t -> bool

(** [certain_holds_fo_owa q d] — over {!Semantics.sample_worlds}, which
    includes proper supersets of the groundings. *)
val certain_holds_fo_owa : Fo.t -> Instance.t -> bool

(** [certain_existential q d] — {e exact} certain truth for Boolean
    existential FO (negation allowed, no universals): existential sentences
    are preserved under extensions, so certainty reduces to the complete
    homomorphic images of [d] (the Theorem 7(b) argument of the paper,
    applied to relations): groundings of the nulls composed with merges of
    facts made equal.  Exponential in the null count.
    @raise Invalid_argument if [q] is not existential. *)
val certain_existential : Fo.t -> Instance.t -> bool

(** {1 Closed-world certainty and possibility}

    Under CWA the semantics of [d] is exactly its groundings [{h(d)}] —
    no supersets (§7 of the paper contrasts the two regimes).  Certainty
    and possibility are then decidable for all of FO by grounding
    enumeration (exponential in the nulls). *)

(** [certain_holds_cwa q d] — [q] true in every grounding. *)
val certain_holds_cwa : Fo.t -> Instance.t -> bool

(** [possible_holds_cwa q d] — [q] true in some grounding. *)
val possible_holds_cwa : Fo.t -> Instance.t -> bool

(** [possible_ucq u d] — tuples appearing in [Q(h(d))] for some grounding
    [h]: the possible answers.  Under OWA possibility is trivial for
    monotone queries over supersets, so the CWA reading is the useful
    one. *)
val possible_ucq : Ucq.t -> Instance.t -> Instance.t

(** [certain_ucq u d] — certain answers of a UCQ, by naïve evaluation
    (provably equal to the enumeration semantics). *)
val certain_ucq : Ucq.t -> Instance.t -> Instance.t

(** {1 Prop. 2 — the three equivalent views for Boolean CQs} *)

(** [certain_cq_via_hom q d] — [D_Q ⊑ D]. *)
val certain_cq_via_hom : Cq.t -> Instance.t -> bool

(** Budgeted [D_Q ⊑ D] through the engine: [`Unknown r] when the hom
    search tripped a limit of [limits], never a wrong [`True]/[`False]. *)
val certain_cq_via_hom_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Cq.t ->
  Instance.t ->
  Certdb_csp.Engine.decision

(** Budgeted [D_Q ⊑ D] decided by the SAT backend
    ({!Certdb_sat.Backend}): the tableau/active-domain hom instance is
    encoded to CNF (selector + tuple-support variables, symmetry
    breaking over interchangeable variables unless [symmetry:false])
    and handed to the CDCL core under [limits] (conflict budget ≈
    backtrack budget).  Agrees with {!certain_cq_via_hom_b} on every
    definitive answer; [`Unknown r] when a limit trips.
    @raise Invalid_argument on a non-Boolean query. *)
val certain_cq_via_sat_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?symmetry:bool ->
  Cq.t ->
  Instance.t ->
  Certdb_csp.Engine.decision

(** [certain_cq_dimacs ?symmetry q d] — the CNF of the [D_Q ⊑ D]
    instance in DIMACS format, for cross-checking against external
    solvers ([certdb sat dimacs]).  The 0-ary-fact precondition is
    reported in a [c] comment ([zero_ok=false] means the instance is
    unsatisfiable irrespective of the clauses).
    @raise Invalid_argument on a non-Boolean query. *)
val certain_cq_dimacs : ?symmetry:bool -> Cq.t -> Instance.t -> string

(** [certain_cq_resilient ?policy ?limits ?backend q d] — Boolean CQ
    certainty that degrades instead of giving up.  The exact procedure
    is the Prop. 2 hom check [D_Q ⊑ D] under the retry/escalation
    ladder of {!Certdb_csp.Resilient}; if every attempt trips its
    budget the answer degrades to naïve evaluation, which is {e sound}
    for certain answers (Theorem 4 — for plain CQs over naïve tables it
    is in fact exact, but the resilient API certifies only the sound
    direction, the guarantee that generalizes to the gdm/xml regimes).

    [backend] picks the primary solver and its escalation partner:
    [Csp] (default) runs the CSP ladder exactly as before; [Sat] runs
    the CDCL backend with a CSP fallback rung on exhaustion; [Auto]
    runs CSP with a SAT fallback rung.  Crossing backends never flips a
    definitive answer (the fallback only runs on [Unknown]).  Results:

    - [`Exact b] — the hom search settled it: [b] is the certain answer;
    - [`Lower_bound true] — budgets exhausted, but naïve evaluation
      certifies the query {e is} certainly true;
    - [`Lower_bound false] — budgets exhausted and nothing certified:
      the query may or may not be certain.

    Never returns an [`Unknown], and never lets an injected crash
    ([Certdb_obs.Fault.Injected]) escape: if the naïve fallback itself
    crashes, the answer is the trivially sound [`Lower_bound false].
    [query.resilient.exact] / [query.resilient.degraded] count which
    rung answered. *)
val certain_cq_resilient :
  ?policy:Certdb_csp.Resilient.Policy.t ->
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?backend:Certdb_sat.Backend.choice ->
  Cq.t ->
  Instance.t ->
  [ `Exact of bool | `Lower_bound of bool ]

(** [certain_cq_via_btw ?decomposition q d] — [D_Q ⊑ D] by the
    bounded-treewidth dynamic program of Theorem 6: the query's terms
    become an unlabeled structure, [d]'s active domain the target, and
    the candidate relation pins constants to themselves while leaving
    variables free.  Polynomial for a fixed decomposition width (the
    planner routes acyclic / low-width queries here); agrees with
    {!certain_cq_via_hom} on every Boolean CQ.  When [decomposition] is
    absent the better of the two {!Certdb_csp.Treewidth} heuristics is
    used.
    @raise Invalid_argument on a non-Boolean query. *)
val certain_cq_via_btw :
  ?decomposition:Certdb_csp.Treewidth.t -> Cq.t -> Instance.t -> bool

(** [certain_cq_via_components ?jobs ?limits q d] — [D_Q ⊑ D] by
    connected-component decomposition: the tableau is split into the
    connected components of its Gaifman graph (a cartesian-product query
    yields several), each component is solved as an independent hom
    instance on the shared target — in parallel on [jobs] domains when
    [jobs > 1] — and the outcomes conjoined ({!Certdb_csp.Engine.Components}).
    Shares the CQ→hom encoding (constants pinned, variables and null
    literals free) with {!certain_cq_via_btw}.  Budget-sound: [`Unknown]
    only when a component trips a limit of [limits], never a wrong
    [`True]/[`False].
    @raise Invalid_argument on a non-Boolean query. *)
val certain_cq_via_components :
  ?jobs:int ->
  ?limits:Certdb_csp.Engine.Limits.t ->
  Cq.t ->
  Instance.t ->
  Certdb_csp.Engine.decision

(** [certain_cq_via_containment q d] — [Q_D ⊆ Q]. *)
val certain_cq_via_containment : Cq.t -> Instance.t -> bool

(** [certain_cq_via_naive q d] — naïve Boolean evaluation. *)
val certain_cq_via_naive : Cq.t -> Instance.t -> bool

(** {1 Agreement checks (used by tests and by experiment E1/E2)} *)

(** [naive_eval_is_certain ~head q d] iff naïve evaluation and the
    enumeration reference agree on [d]. *)
val naive_eval_is_certain : head:string list -> Fo.t -> Instance.t -> bool

val drop_null_tuples : Instance.t -> Instance.t
