open Certdb_values

type t =
  | Atom of Value.t
  | Nested of t array list

type schema =
  | SAtom
  | SSet of schema list

let atom v = Atom v
let set tuples = Nested tuples

let rec conforms v s =
  match v, s with
  | Atom _, SAtom -> true
  | Nested tuples, SSet cols ->
    let k = List.length cols in
    List.for_all
      (fun tup ->
        Array.length tup = k
        && List.for_all2 conforms (Array.to_list tup) cols)
      tuples
  | _ -> false

let rec nulls = function
  | Atom (Value.Null _ as n) -> Value.Set.singleton n
  | Atom _ -> Value.Set.empty
  | Nested tuples ->
    List.fold_left
      (fun acc tup ->
        Array.fold_left (fun acc v -> Value.Set.union acc (nulls v)) acc tup)
      Value.Set.empty tuples

let is_complete v = Value.Set.is_empty (nulls v)

let rec apply h = function
  | Atom v -> Atom (Valuation.apply h v)
  | Nested tuples -> Nested (List.map (Array.map (apply h)) tuples)

let ground v =
  let h = Valuation.grounding_of_nulls (nulls v) in
  apply h v

(* atom order: a null is below everything; constants only below
   themselves *)
let atom_leq a b =
  match a with
  | Value.Null _ -> true
  | Value.Const _ -> Value.equal a b

let rec leq_owa v w =
  match v, w with
  | Atom a, Atom b -> atom_leq a b
  | Nested xs, Nested ys ->
    List.for_all
      (fun x -> List.exists (fun y -> tuple_leq_owa x y) ys)
      xs
  | _ -> false

and tuple_leq_owa x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if not (leq_owa v y.(i)) then ok := false) x;
       !ok
     end

let rec leq_cwa v w =
  match v, w with
  | Atom a, Atom b -> atom_leq a b
  | Nested xs, Nested ys ->
    List.for_all (fun x -> List.exists (fun y -> tuple_leq_cwa x y) ys) xs
    && List.for_all (fun y -> List.exists (fun x -> tuple_leq_cwa x y) xs) ys
  | _ -> false

and tuple_leq_cwa x y =
  Array.length x = Array.length y
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if not (leq_cwa v y.(i)) then ok := false) x;
       !ok
     end

let equiv_owa v w = leq_owa v w && leq_owa w v

(* glb: atoms merge like ⊗ (equal constants survive, anything else becomes
   a fresh null); sets take pairwise glbs — Prop. 5 lifted through the
   nesting.  A shared merge registry keeps the pair-null assignment
   consistent across the whole value. *)
let glb v w =
  let reg = Merge.create () in
  let rec go v w =
    match v, w with
    | Atom a, Atom b -> Some (Atom (Merge.value reg a b))
    | Nested xs, Nested ys ->
      let pairs =
        List.concat_map
          (fun x -> List.filter_map (fun y -> go_tuple x y) ys)
          xs
      in
      Some (Nested pairs)
    | _ -> None
  and go_tuple x y =
    if Array.length x <> Array.length y then None
    else
      let cells =
        Array.to_list (Array.map2 (fun a b -> go a b) x y)
      in
      if List.for_all Option.is_some cells then
        Some (Array.of_list (List.map Option.get cells))
      else None
  in
  go v w

let of_instance_relation d rel =
  Nested
    (List.map
       (fun args -> Array.map (fun v -> Atom v) args)
       (Certdb_relational.Instance.tuples d rel))

let to_instance_relation v ~rel =
  match v with
  | Nested tuples ->
    List.fold_left
      (fun acc tup ->
        let args =
          Array.to_list
            (Array.map
               (function
                 | Atom a -> a
                 | Nested _ ->
                   invalid_arg "Nested.to_instance_relation: nested cell")
               tup)
        in
        Certdb_relational.Instance.add_fact acc rel args)
      Certdb_relational.Instance.empty tuples
  | Atom _ -> invalid_arg "Nested.to_instance_relation: not a set"

let rec pp ppf = function
  | Atom v -> Value.pp ppf v
  | Nested tuples ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf tup ->
           Format.fprintf ppf "(%a)"
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                pp)
             (Array.to_list tup)))
      tuples
