(** Nested relations with null-extended partial information — the data
    model where the 1990s ordering-based theories of incompleteness
    ([9, 33, 34, 36]) actually succeeded, as the paper's introduction
    recounts, before failing on XML.

    A nested value is an atom (constant or null) or a set of tuples of
    nested values.  The information ordering is the recursive
    powerdomain lift of the atom order (null below everything):

    - OWA flavour (Hoare): [X ⊑H Y] iff every tuple of X is dominated by
      a tuple of Y;
    - CWA flavour (Plotkin): both directions.

    [glb] lifts the ⊗-merge of Prop. 5 through the nesting: the glb of
    two sets is the set of pairwise glbs — the same product construction
    the paper generalizes, one level up. *)

open Certdb_values

type t =
  | Atom of Value.t
  | Nested of t array list (* a set of tuples *)

(** Schemas describe the nesting shape. *)
type schema =
  | SAtom
  | SSet of schema list (* set of tuples with the listed column shapes *)

val atom : Value.t -> t
val set : t array list -> t

(** [conforms v s]. *)
val conforms : t -> schema -> bool

val nulls : t -> Value.Set.t
val is_complete : t -> bool

(** [apply h v] — map all atoms through the valuation. *)
val apply : Valuation.t -> t -> t

val ground : t -> t

(** {1 Orderings} *)

(** [leq_owa v w] — recursive Hoare lift. *)
val leq_owa : t -> t -> bool

(** [leq_cwa v w] — recursive Plotkin lift. *)
val leq_cwa : t -> t -> bool

val equiv_owa : t -> t -> bool

(** {1 Greatest lower bounds (OWA)} *)

(** [glb v w] — the recursive ⊗/product construction; [None] when the
    shapes disagree (atom vs set, or tuple arities differ). *)
val glb : t -> t -> t option

(** {1 Embedding of flat relations} *)

(** [of_instance_relation d rel] — a flat relation as [Nested]. *)
val of_instance_relation : Certdb_relational.Instance.t -> string -> t

(** [to_instance_relation v ~rel] — back to a flat instance.
    @raise Invalid_argument if [v] is not a set of atom tuples. *)
val to_instance_relation : t -> rel:string -> Certdb_relational.Instance.t

val pp : Format.formatter -> t -> unit
