open Certdb_csp
module Int_set = Structure.Int_set

(* An endomorphism identifying u and v exists iff the quotient of g by
   {u = v} maps homomorphically back into g. *)
let folding_endo g =
  let vs = Digraph.vertices g in
  let rec pairs = function
    | [] -> None
    | u :: rest -> (
      let attempt v =
        let quotient = Digraph.map (fun x -> if x = v then u else x) g in
        Graph_hom.find quotient g
        |> Option.map (fun h -> (u, v, h))
      in
      match List.find_map attempt rest with
      | Some r -> Some r
      | None -> pairs rest)
  in
  pairs vs

let is_core g = Option.is_none (folding_endo g)

let rec core g =
  match folding_endo g with
  | None -> g
  | Some (u, v, h) ->
    (* h : quotient → g; the composite endo sends v to u's image.  Its
       image, as an induced subgraph, is hom-equivalent to g and strictly
       smaller. *)
    let endo x =
      let x' = if x = v then u else x in
      Structure.Int_map.find x' h
    in
    let image =
      List.fold_left
        (fun s x -> Int_set.add (endo x) s)
        Int_set.empty (Digraph.vertices g)
    in
    core (Digraph.restrict g image)

let glb g g' = core (Digraph.product g g')
let lub g g' = core (Digraph.disjoint_union g g')
