(** Directed graphs, realized as structures with a single binary relation
    [E].  The homomorphism preorder on graphs and its lattice of cores
    (Section 4, after [24]) furnish the counterexamples of Theorem 3. *)

open Certdb_csp

type t

val of_structure : Structure.t -> t
val to_structure : t -> Structure.t
val empty : t
val add_vertex : t -> int -> t
val add_edge : t -> int -> int -> t

(** [make ~vertices ~edges] builds a graph; vertices of edges are added
    implicitly. *)
val make : ?vertices:int list -> edges:(int * int) list -> unit -> t

val vertices : t -> int list
val edges : t -> (int * int) list
val size : t -> int
val edge_count : t -> int
val mem_edge : t -> int -> int -> bool

val product : t -> t -> t
val disjoint_union : t -> t -> t

(** [map f g] is the homomorphic image of [g] under the vertex map [f]. *)
val map : (int -> int) -> t -> t

val restrict : t -> Structure.Int_set.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Generator families} *)

(** [path n] is the directed path [P_n] with [n] edges (n+1 vertices). *)
val path : int -> t

(** [cycle n] is the directed cycle [C_n] on [n ≥ 1] vertices. *)
val cycle : int -> t

(** [clique n] is the complete digraph [K_n] without self-loops (both edge
    directions present). *)
val clique : int -> t

(** [transitive_tournament n] — acyclic orientation of K_n. *)
val transitive_tournament : int -> t

(** [grid n m] — directed grid with right and down edges. *)
val grid : int -> int -> t

(** [random ~seed ~vertices ~edge_prob ()] — Erdős–Rényi digraph. *)
val random : seed:int -> vertices:int -> edge_prob:float -> unit -> t
