let colorable_sym k g =
  let sym =
    List.fold_left
      (fun acc (x, y) -> Digraph.add_edge (Digraph.add_edge acc x y) y x)
      (List.fold_left Digraph.add_vertex Digraph.empty (Digraph.vertices g))
      (Digraph.edges g)
  in
  Graph_hom.colorable k sym

let chromatic_number g =
  if Digraph.size g = 0 then 0
  else
    let rec search k =
      if k > Digraph.size g then Digraph.size g
      else if Graph_hom.colorable k g then k
      else search (k + 1)
    in
    search 1

(* Shortest directed closed walk (per parity) via parity-layered BFS from
   every vertex: dist.(v, p) is the shortest walk start → v of parity p.
   The shortest closed walk of a given parity equals the shortest cycle of
   that parity containing the start (a closed walk of odd length always
   contains an odd cycle; for the minimum, walk = cycle). *)
let girth_filtered parity g =
  let vertices = Digraph.vertices g in
  let adj v =
    List.filter_map
      (fun (x, y) -> if x = v then Some y else None)
      (Digraph.edges g)
  in
  let best = ref None in
  List.iter
    (fun start ->
      let dist = Hashtbl.create 32 in
      Hashtbl.replace dist (start, 0) 0;
      let q = Queue.create () in
      Queue.add (start, 0) q;
      while not (Queue.is_empty q) do
        let v, p = Queue.pop q in
        let d = Hashtbl.find dist (v, p) in
        List.iter
          (fun w ->
            let key = (w, 1 - p) in
            if not (Hashtbl.mem dist key) then begin
              Hashtbl.replace dist key (d + 1);
              Queue.add key q
            end)
          (adj v)
      done;
      (* close the walk with an edge back into [start]; the seed
         dist(start,0)=0 would otherwise hide even-length returns *)
      List.iter
        (fun (x, y) ->
          if y = start then
            List.iter
              (fun p ->
                match Hashtbl.find_opt dist (x, p) with
                | Some d ->
                  let len = d + 1 in
                  if parity len then
                    best :=
                      Some
                        (match !best with None -> len | Some b -> min b len)
                | None -> ())
              [ 0; 1 ])
        (Digraph.edges g))
    vertices;
  !best

let girth g = girth_filtered (fun _ -> true) g
let odd_girth g = girth_filtered (fun len -> len mod 2 = 1) g
let is_acyclic g = girth g = None

let longest_path g =
  if not (is_acyclic g) then None
  else begin
    let memo = Hashtbl.create 16 in
    let adj v =
      List.filter_map
        (fun (x, y) -> if x = v then Some y else None)
        (Digraph.edges g)
    in
    let rec longest v =
      match Hashtbl.find_opt memo v with
      | Some d -> d
      | None ->
        let d =
          List.fold_left (fun acc w -> max acc (1 + longest w)) 0 (adj v)
        in
        Hashtbl.replace memo v d;
        d
    in
    Some
      (List.fold_left (fun acc v -> max acc (longest v)) 0 (Digraph.vertices g))
  end

let monotone_antimonotone_witness g g' =
  (not (Graph_hom.leq g g'))
  || (chromatic_number g <= chromatic_number g'
     &&
     match odd_girth g, odd_girth g' with
     | Some og, Some og' -> og >= og'
     (* an odd closed walk maps to an odd closed walk: g' must have one *)
     | Some _, None -> false
     | None, _ -> true)
