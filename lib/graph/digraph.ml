open Certdb_csp

type t = Structure.t

let edge_rel = "E"
let of_structure s = s
let to_structure g = g
let empty = Structure.empty
let add_vertex g v = Structure.add_node g v

let add_edge g x y =
  let g = add_vertex (add_vertex g x) y in
  Structure.add_edge g edge_rel x y

let make ?(vertices = []) ~edges () =
  let g = List.fold_left add_vertex empty vertices in
  List.fold_left (fun g (x, y) -> add_edge g x y) g edges

let vertices = Structure.nodes

let edges g =
  List.map (fun t -> (t.(0), t.(1))) (Structure.tuples_of g edge_rel)

let size = Structure.size
let edge_count g = List.length (edges g)
let mem_edge g x y = Structure.mem_tuple g edge_rel [| x; y |]

let product g1 g2 = fst (Structure.product g1 g2)

let disjoint_union g1 g2 =
  let u, _, _ = Structure.disjoint_union g1 g2 in
  u

let map f g = Structure.map_nodes g f
let restrict = Structure.restrict
let equal = Structure.equal

let pp ppf g =
  Format.fprintf ppf "{%d vertices; %a}" (size g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (x, y) -> Format.fprintf ppf "%d->%d" x y))
    (edges g)

let path n =
  let g = ref (add_vertex empty 0) in
  for i = 0 to n - 1 do
    g := add_edge !g i (i + 1)
  done;
  !g

let cycle n =
  if n < 1 then invalid_arg "Digraph.cycle";
  let g = ref empty in
  for i = 0 to n - 1 do
    g := add_edge !g i ((i + 1) mod n)
  done;
  !g

let clique n =
  let g = ref empty in
  for i = 0 to n - 1 do
    g := add_vertex !g i
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then g := add_edge !g i j
    done
  done;
  !g

let transitive_tournament n =
  let g = ref empty in
  for i = 0 to n - 1 do
    g := add_vertex !g i
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      g := add_edge !g i j
    done
  done;
  !g

let grid n m =
  let id i j = (i * m) + j in
  let g = ref empty in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      g := add_vertex !g (id i j)
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      if j + 1 < m then g := add_edge !g (id i j) (id i (j + 1));
      if i + 1 < n then g := add_edge !g (id i j) (id (i + 1) j)
    done
  done;
  !g

let random ~seed ~vertices ~edge_prob () =
  let st = Random.State.make [| seed |] in
  let g = ref empty in
  for i = 0 to vertices - 1 do
    g := add_vertex !g i
  done;
  for i = 0 to vertices - 1 do
    for j = 0 to vertices - 1 do
      if i <> j && Random.State.float st 1.0 < edge_prob then
        g := add_edge !g i j
    done
  done;
  !g
