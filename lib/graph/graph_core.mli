(** Cores of directed graphs: the smallest retract, unique up to
    isomorphism [24].  The core lattice underlies the glb/lub constructions
    of Section 4 ([G ∧ G′ = core(G × G′)], [G ∨ G′ = core(G ⊔ G′)]). *)

(** [is_core g] iff every endomorphism of [g] is injective. *)
val is_core : Digraph.t -> bool

(** [core g] computes a core of [g] by iterated proper folding. *)
val core : Digraph.t -> Digraph.t

(** [glb g g'] is [core (product g g')] — the greatest lower bound of [g]
    and [g'] in the homomorphism order. *)
val glb : Digraph.t -> Digraph.t -> Digraph.t

(** [lub g g'] is [core (disjoint_union g g')] — the least upper bound. *)
val lub : Digraph.t -> Digraph.t -> Digraph.t
