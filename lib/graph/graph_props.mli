(** Structural graph parameters used in Section 4's lattice-of-cores
    discussion: the chromatic number is monotone in the homomorphism order,
    the odd girth is antimonotone — together (Erdős [18]) they generate the
    antichains and dense chains of the core lattice. *)

(** [colorable_sym k g] — proper k-colorability of the {e symmetric
    closure} of [g] (edge directions forgotten), via homomorphism into
    K_k. *)
val colorable_sym : int -> Digraph.t -> bool

(** [chromatic_number g] — smallest k with a homomorphism into K_k
    (exponential search; small graphs only). *)
val chromatic_number : Digraph.t -> int

(** [odd_girth g] — length of the shortest odd directed cycle ([None] if
    no odd cycle). *)
val odd_girth : Digraph.t -> int option

(** [girth g] — length of the shortest directed cycle ([None] if
    acyclic). *)
val girth : Digraph.t -> int option

val is_acyclic : Digraph.t -> bool

(** [longest_path g] — number of edges of a longest directed path;
    for cyclic graphs this is unbounded, so [None].  Linear-time DAG DP. *)
val longest_path : Digraph.t -> int option

(** [monotone_antimonotone_witness g g'] — checks the Section 4
    observation on a pair with [g ⊑ g']: chromatic number must not
    decrease, odd girth must not increase (when both are defined). *)
val monotone_antimonotone_witness : Digraph.t -> Digraph.t -> bool
