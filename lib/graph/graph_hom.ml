open Certdb_csp

let find g g' =
  Solver.find_hom ~source:(Digraph.to_structure g)
    ~target:(Digraph.to_structure g') ()

let exists g g' = Option.is_some (find g g')
let leq = exists
let equiv g g' = leq g g' && leq g' g
let strictly_less g g' = leq g g' && not (leq g' g)
let incomparable g g' = (not (leq g g')) && not (leq g' g)

let is_hom g g' h =
  Solver.is_hom ~source:(Digraph.to_structure g)
    ~target:(Digraph.to_structure g') h

let colorable k g = leq g (Digraph.clique k)
