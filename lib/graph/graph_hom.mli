(** Graph homomorphisms and the homomorphism preorder [G ⊑ G′] of
    Section 4. *)

open Certdb_csp

(** [exists g g'] iff there is a homomorphism [g → g']. *)
val exists : Digraph.t -> Digraph.t -> bool

val find : Digraph.t -> Digraph.t -> Solver.hom option

(** [leq] is [exists]: the homomorphism preorder. *)
val leq : Digraph.t -> Digraph.t -> bool

(** [equiv g g'] is hom-equivalence [g ∼ g']. *)
val equiv : Digraph.t -> Digraph.t -> bool

(** [strictly_less g g'] iff [g ⊑ g'] and not [g' ⊑ g] (written [≺]). *)
val strictly_less : Digraph.t -> Digraph.t -> bool

(** [incomparable g g'] iff neither direction has a homomorphism. *)
val incomparable : Digraph.t -> Digraph.t -> bool

(** [is_hom_image h g g'] checks a given vertex map. *)
val is_hom : Digraph.t -> Digraph.t -> Solver.hom -> bool

(** [colorable k g] iff [g] admits a homomorphism into the clique [K_k]
    (ignoring edge directions is unnecessary: [K_k] has both directions). *)
val colorable : int -> Digraph.t -> bool
