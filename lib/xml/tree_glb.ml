open Certdb_values

(* duplicate siblings (syntactically equal subtrees, which the shared merge
   registry produces readily) are redundant: folding them onto one copy is
   the identity on all values *)
let dedupe_children cs =
  List.fold_left
    (fun kept c ->
      if List.exists (Tree.equal c) kept then kept else c :: kept)
    [] cs
  |> List.rev

let glb t1 t2 =
  let reg = Merge.create () in
  let rec pair (t1 : Tree.t) (t2 : Tree.t) =
    if not (String.equal t1.label t2.label) then None
    else if Array.length t1.data <> Array.length t2.data then None
    else
      let data = Merge.arrays reg t1.data t2.data in
      let children =
        List.concat_map
          (fun c1 ->
            List.filter_map (fun c2 -> pair c1 c2) t2.Tree.children)
          t1.Tree.children
        |> dedupe_children
      in
      Some { Tree.label = t1.label; data; children }
  in
  pair t1 t2

let family = function
  | [] -> invalid_arg "Tree_glb.family: empty family"
  | t :: ts ->
    List.fold_left
      (fun acc t' -> match acc with None -> None | Some g -> glb g t')
      (Some t) ts

let certain_information = family

(* [reduce] drops a child of the root whenever the whole tree maps
   homomorphically (root-anchored) into the tree without that child: the
   remainder is then ∼-equivalent (the inclusion is a homomorphism in the
   other direction).  This is a root-level core reduction — exactly what is
   needed to keep glb folds over result forests from multiplying. *)
let reduce (t : Tree.t) =
  let drop_one (t : Tree.t) =
    let n = List.length t.Tree.children in
    let rec try_i i =
      if i >= n then None
      else
        let t' =
          { t with Tree.children = List.filteri (fun j _ -> j <> i) t.Tree.children }
        in
        if Tree_hom.exists ~require_root:true t t' then Some t' else try_i (i + 1)
    in
    try_i 0
  in
  let rec go t = match drop_one t with Some t' -> go t' | None -> t in
  go t

let family_reduced = function
  | [] -> invalid_arg "Tree_glb.family_reduced: empty family"
  | t :: ts ->
    List.fold_left
      (fun acc t' ->
        match acc with
        | None -> None
        | Some g -> Option.map reduce (glb g t'))
      (Some (reduce t)) ts
