(** Sibling-ordered XML trees.  Homomorphisms additionally preserve the
    strict sibling order: if x precedes y among the children of a node,
    h₁(x) precedes h₁(y) among the children of h₁(x)'s parent.

    Prop. 6: with sibling order, even two-element finite sets of trees can
    lack a glb — [witness_no_glb] exhibits the paper's counterexample
    (roots labeled a, children b,c in the two orders). *)

open Certdb_values

(** [exists_hom t t'] — order-preserving homomorphism (rooted at any target
    node). *)
val exists_hom : Tree.t -> Tree.t -> bool

val leq : Tree.t -> Tree.t -> bool
val equiv : Tree.t -> Tree.t -> bool

(** [find_hom t t'] returns the data valuation of a witnessing
    homomorphism. *)
val find_hom : Tree.t -> Tree.t -> Valuation.t option

(** The pair (T, T′) of Prop. 6: a[b;c] and a[c;b]. *)
val prop6_pair : unit -> Tree.t * Tree.t

(** [maximal_lower_bounds_in_pool ts ~pool] — the ⊑-maximal lower bounds of
    [ts] found in [pool]; Prop. 6's failure shows as two or more
    incomparable maxima. *)
val maximal_lower_bounds_in_pool : Tree.t list -> pool:Tree.t list -> Tree.t list

(** [has_glb_in_pool ts ~pool] — whether some pool element is a glb of
    [ts] relative to the pool. *)
val has_glb_in_pool : Tree.t list -> pool:Tree.t list -> bool
