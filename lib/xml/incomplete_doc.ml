open Certdb_values

type edge =
  | Child
  | Descendant

type t = {
  label : string option;
  data : Value.t array;
  edges : (edge * t) list;
}

let node ?label ?(data = []) edges =
  { label; data = Array.of_list data; edges }

let rec of_tree (t : Tree.t) =
  {
    label = Some t.label;
    data = t.data;
    edges = List.map (fun c -> (Child, of_tree c)) t.children;
  }

let rec size d = 1 + List.fold_left (fun n (_, c) -> n + size c) 0 d.edges

let nulls d =
  let rec go acc d =
    let acc =
      Array.fold_left
        (fun acc v -> if Value.is_null v then Value.Set.add v acc else acc)
        acc d.data
    in
    List.fold_left (fun acc (_, c) -> go acc c) acc d.edges
  in
  go Value.Set.empty d

let rec tree_subtrees (t : Tree.t) = t :: List.concat_map tree_subtrees t.children
let tree_descendants (t : Tree.t) = List.concat_map tree_subtrees t.children

(* match the description node d against the tree node t, threading the
   valuation; full backtracking over edge targets *)
let rec match_at h d (t : Tree.t) =
  let label_ok =
    match d.label with None -> true | Some l -> String.equal l t.label
  in
  if not label_ok then None
  else
    match Valuation.extend_match h d.data t.data with
    | None -> None
    | Some h -> match_edges h d.edges t

and match_edges h edges (t : Tree.t) =
  match edges with
  | [] -> Some h
  | (kind, child_desc) :: rest ->
    let candidates =
      match kind with
      | Child -> t.children
      | Descendant -> tree_descendants t
    in
    let rec try_candidates = function
      | [] -> None
      | c :: cs -> (
        match match_at h child_desc c with
        | Some h' -> (
          match match_edges h' rest t with
          | Some h'' -> Some h''
          | None -> try_candidates cs)
        | None -> try_candidates cs)
    in
    try_candidates candidates

let satisfied_with d t = match_at Valuation.empty d t
let member d t = Tree.is_complete t && Option.is_some (satisfied_with d t)

let sample_completions ~alphabet ~chain_bound d =
  if chain_bound < 1 then invalid_arg "Incomplete_doc: chain_bound >= 1";
  (* 1. resolve structure: wildcard labels over the alphabet (respecting
     data arity), descendant edges into chains of wildcard interior nodes
     of length 1..chain_bound *)
  let labels_of_arity k =
    List.filter (fun (_, a) -> a = k) alphabet |> List.map fst
  in
  let rec structures d =
    let label_choices =
      match d.label with
      | Some l -> (
        match List.assoc_opt l alphabet with
        | Some a when a = Array.length d.data -> [ l ]
        | _ -> [])
      | None -> labels_of_arity (Array.length d.data)
    in
    let edge_choices =
      (* each edge yields a list of alternative (child tree) expansions *)
      List.map
        (fun (kind, c) ->
          let subs = structures c in
          match kind with
          | Child -> subs
          | Descendant ->
            (* chains of length 1..chain_bound ending in the child; the
               interior nodes take 0-ary alphabet labels *)
            let interiors = labels_of_arity 0 in
            let rec chains len sub =
              if len = 1 then [ sub ]
              else
                List.concat_map
                  (fun l ->
                    List.map
                      (fun inner -> Tree.node l [ inner ])
                      (chains (len - 1) sub))
                  interiors
            in
            List.concat_map
              (fun sub ->
                List.concat_map
                  (fun len -> chains len sub)
                  (List.init chain_bound (fun i -> i + 1)))
              subs)
        d.edges
    in
    let rec product = function
      | [] -> [ [] ]
      | choices :: rest ->
        List.concat_map
          (fun c -> List.map (fun tail -> c :: tail) (product rest))
          choices
    in
    List.concat_map
      (fun l ->
        List.map
          (fun children -> Tree.node ~data:(Array.to_list d.data) l children)
          (product edge_choices))
      label_choices
  in
  (* 2. ground the data nulls *)
  List.concat_map
    (fun skeleton ->
      let ns = Value.Set.elements (Tree.nulls skeleton) in
      let k = List.length ns in
      let fresh = List.init (k + 1) (fun _ -> Value.fresh_const ()) in
      let candidates =
        Value.Set.elements (Tree.constants skeleton) @ fresh
      in
      let rec assign acc = function
        | [] -> [ acc ]
        | n :: rest ->
          List.concat_map
            (fun c -> assign (Valuation.bind acc n c) rest)
            candidates
      in
      List.map (fun h -> Tree.apply h skeleton) (assign Valuation.empty ns))
    (structures d)

let leq ~alphabet ~chain_bound d d' =
  List.for_all
    (fun t -> Option.is_some (satisfied_with d t))
    (sample_completions ~alphabet ~chain_bound d')

let rec consistent ~alphabet d =
  let label_ok =
    match d.label with
    | Some l -> (
      match List.assoc_opt l alphabet with
      | Some a -> a = Array.length d.data
      | None -> false)
    | None ->
      List.exists (fun (_, a) -> a = Array.length d.data) alphabet
  in
  let descendant_ok =
    (* a descendant edge needs a 0-ary label available for interior nodes
       only if the chain must be longer than 1 — length 1 always works, so
       descendant edges are as consistent as their targets *)
    true
  in
  label_ok && descendant_ok
  && List.for_all (fun (_, c) -> consistent ~alphabet c) d.edges

let rec pp ppf d =
  let label = match d.label with Some l -> l | None -> "*" in
  let pp_data ppf data =
    if Array.length data > 0 then
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Value.pp)
        (Array.to_list data)
  in
  if d.edges = [] then Format.fprintf ppf "%s%a" label pp_data d.data
  else
    Format.fprintf ppf "%s%a[%a]" label pp_data d.data
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (kind, c) ->
           match kind with
           | Child -> pp ppf c
           | Descendant -> Format.fprintf ppf "//%a" pp c))
      d.edges
