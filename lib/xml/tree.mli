(** Incomplete XML documents (Section 2.2): unranked trees whose nodes
    carry a label from a finite alphabet and a tuple of data values over
    [C ∪ N] of the label's arity.  A tree is complete when its data values
    are all constants. *)

open Certdb_values
open Certdb_gdm
open Certdb_relational

type t = {
  label : string;
  data : Value.t array;
  children : t list;
}

val node : ?data:Value.t list -> string -> t list -> t
val leaf : ?data:Value.t list -> string -> t

val size : t -> int
val depth : t -> int
val labels : t -> string list
val nulls : t -> Value.Set.t
val constants : t -> Value.Set.t
val is_complete : t -> bool

(** [apply h t] maps all data through the valuation. *)
val apply : Valuation.t -> t -> t

val ground : t -> t
val rename_apart : avoid:Value.Set.t -> t -> t

(** [to_gdb t] — the generalized-database coding: nodes numbered in
    preorder (root = 0), one binary relation ["child"]. *)
val to_gdb : t -> Gdb.t

(** [of_instance d] — coding of a naïve relational database as an XML
    document of depth 2 (used by Corollary 2): a root labeled ["r"] with
    one child per fact, labeled by the fact's relation and carrying its
    tuple. *)
val of_instance : Instance.t -> t

(** [random ~seed ~labels ~max_depth ~max_children ~null_prob ~domain ()] —
    random tree; [labels] pairs label names with arities. *)
val random :
  seed:int ->
  labels:(string * int) list ->
  max_depth:int ->
  max_children:int ->
  null_prob:float ->
  domain:int ->
  unit ->
  t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
