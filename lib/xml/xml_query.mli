(** XML-to-XML queries in the style of [16] (David–Libkin–Murlak, "Certain
    answers for XML queries"): a query is a tree pattern with variables and
    an output template; applied to a document it emits, under a fixed
    result root, one instantiated template per pattern match.

    Certain answers over an incomplete tree are the certain information —
    the max-description / glb (Theorem 1) — of the query's outputs over the
    completions.  Queries of this shape are monotone, so (Corollary 1 /
    Theorem 2) the glb over completions is ∼-equivalent to direct naïve
    application; both are provided, and the agreement is exercised by tests
    and the E7 family of experiments. *)

type template = {
  label : string;
  data : Pattern.term list;
  children : template list;
}

type t = {
  pattern : Pattern.t;
  template : template;
}

val template : ?data:Pattern.term list -> string -> template list -> template
val make : pattern:Pattern.t -> template:template -> t

(** [apply q t] — naïve application: match the pattern (nulls are values),
    instantiate the template per binding under a ["result"] root.
    @raise Invalid_argument if the template uses a variable the pattern
    does not bind. *)
val apply : t -> Tree.t -> Tree.t

(** [sample_completions t] — groundings of the tree's nulls into its
    constants plus k+1 fresh constants. *)
val sample_completions : Tree.t -> Tree.t list

(** [certain_by_enumeration q t] — the glb (max-description) of
    [apply q] over the sampled completions; [None] only if the tree glb
    fails, which cannot happen here (all outputs share the result root). *)
val certain_by_enumeration : t -> Tree.t -> Tree.t option

(** [naive_certain_agrees q t] — checks [certain_by_enumeration q t ∼
    apply q t] (the Corollary 1 shape). *)
val naive_certain_agrees : t -> Tree.t -> bool
