(** Greatest lower bounds of unordered XML trees in the class K of
    unranked trees (Section 5.2; the max-description construction of [16]):
    pair the roots when their labels agree, then recursively pair children
    with equal labels level by level, merging data with ⊗.

    When root labels differ no tree lower bound with those roots exists;
    [glb] then returns [None] (in [16] documents share a designated root
    label, so this does not arise there). *)

val glb : Tree.t -> Tree.t -> Tree.t option

(** [family ts] folds [glb]; [None] if any step fails.
    @raise Invalid_argument on []. *)
val family : Tree.t list -> Tree.t option

(** [certain_information ts] — the max-description of a finite set of
    trees: [family ts] (Theorem 1 identifies max-descriptions with
    glbs). *)
val certain_information : Tree.t list -> Tree.t option

(** [reduce t] — a ∼-preserving shrink of [t]: drops a child of the root
    whenever the whole tree maps homomorphically (root-anchored) into the
    tree without it.  Folding a large family of glbs without reduction
    multiplies children; [family_reduced] interleaves it. *)
val reduce : Tree.t -> Tree.t

val family_reduced : Tree.t list -> Tree.t option
