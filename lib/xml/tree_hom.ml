open Certdb_csp
open Certdb_gdm
module Obs = Certdb_obs.Obs

let searches = Obs.counter "xml.tree_hom.searches"

let find ?(require_root = false) t t' =
  Obs.incr searches;
  Obs.with_span "xml.tree_hom.find" @@ fun () ->
  let d = Tree.to_gdb t and d' = Tree.to_gdb t' in
  let restrict =
    if require_root then
      Some
        (fun v ->
          if v = 0 then Structure.Int_set.singleton 0
          else Structure.Int_set.of_list (Gdb.nodes d'))
    else None
  in
  Ghom.find ?restrict d d'

let exists ?require_root t t' = Option.is_some (find ?require_root t t')
let leq t t' = exists t t'
let equiv t t' = leq t t' && leq t' t
let strictly_less t t' = leq t t' && not (leq t' t)
let incomparable t t' = (not (leq t t')) && not (leq t' t)
let models t t' = leq t' t
let mem t' t = Tree.is_complete t' && leq t t'
