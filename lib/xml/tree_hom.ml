open Certdb_csp
open Certdb_gdm
module Obs = Certdb_obs.Obs

let searches = Obs.counter "xml.tree_hom.searches"

(* Compose a caller restriction with the root-pinning one; both are
   first-class Domains.t values, so composition is Domains.inter. *)
let effective_restrict ~require_root ~restrict _d' =
  let root_restrict =
    if require_root then Some (Domains.singleton 0 0) else None
  in
  match (root_restrict, restrict) with
  | None, None -> None
  | Some r, None | None, Some r -> Some r
  | Some r1, Some r2 -> Some (Domains.inter r1 r2)

let find ?(require_root = false) ?restrict t t' =
  Obs.incr searches;
  Obs.with_span "xml.tree_hom.find" @@ fun () ->
  let d = Tree.to_gdb t and d' = Tree.to_gdb t' in
  let restrict = effective_restrict ~require_root ~restrict d' in
  Ghom.find ?restrict d d'

let find_b ?(require_root = false) ?restrict ?limits t t' =
  Obs.incr searches;
  Obs.with_span "xml.tree_hom.find" @@ fun () ->
  let d = Tree.to_gdb t and d' = Tree.to_gdb t' in
  let restrict = effective_restrict ~require_root ~restrict d' in
  Ghom.find_b ?restrict ?limits d d'

let exists ?require_root ?restrict t t' =
  Option.is_some (find ?require_root ?restrict t t')

let exists_b ?require_root ?restrict ?limits t t' =
  Engine.decision_of_outcome (find_b ?require_root ?restrict ?limits t t')

let leq t t' = exists t t'
let leq_b ?limits t t' = exists_b ?limits t t'
let equiv t t' = leq t t' && leq t' t
let strictly_less t t' = leq t t' && not (leq t' t)
let incomparable t t' = (not (leq t t')) && not (leq t' t)
let models t t' = leq t' t
let mem t' t = Tree.is_complete t' && leq t t'

let mem_b ?limits t' t =
  if not (Tree.is_complete t') then `False else leq_b ?limits t t'

(* {2 Graceful degradation} *)

module Resilient = Certdb_csp.Resilient

let resilient_exact = Obs.counter "xml.resilient.exact"
let resilient_degraded = Obs.counter "xml.resilient.degraded"

let leq_resilient ?policy ?(limits = Engine.Limits.unlimited) t t' =
  let r =
    Resilient.run ?policy ~limits (fun ~attempt:_ limits ->
        find_b ~limits t t')
  in
  match r.Resilient.outcome with
  | Engine.Sat _ ->
    Obs.incr resilient_exact;
    `Exact true
  | Engine.Unsat ->
    Obs.incr resilient_exact;
    `Exact false
  | Engine.Unknown _ ->
    (* for tree hom existence the only positive certificate is a witness,
       and the only negative one is exhaustion; once every retry trips
       there is nothing sound left to certify *)
    Obs.incr resilient_degraded;
    `Lower_bound false

let mem_resilient ?policy ?limits t' t =
  if not (Tree.is_complete t') then begin
    Obs.incr resilient_exact;
    `Exact false
  end
  else leq_resilient ?policy ?limits t t'
