open Certdb_values

(* Order-preserving matching with full backtracking on the shared data
   valuation: the children of a matched node must embed, in order and
   injectively, into the children of the image. *)
let rec match_at valuation (t : Tree.t) (t' : Tree.t) =
  if not (String.equal t.label t'.label) then None
  else
    match Valuation.extend_match valuation t.data t'.data with
    | None -> None
    | Some valuation -> embed valuation t.children t'.children

and embed valuation cs ds =
  match cs with
  | [] -> Some valuation
  | c :: cs' ->
    let rec try_positions = function
      | [] -> None
      | d :: ds' -> (
        match match_at valuation c d with
        | Some v' -> (
          match embed v' cs' ds' with
          | Some v'' -> Some v''
          | None -> try_positions ds')
        | None -> try_positions ds')
    in
    try_positions ds

let rec subtrees t = t :: List.concat_map subtrees t.Tree.children

let find_hom t t' =
  List.find_map (fun n' -> match_at Valuation.empty t n') (subtrees t')

let exists_hom t t' = Option.is_some (find_hom t t')
let leq = exists_hom
let equiv t t' = leq t t' && leq t' t

let prop6_pair () =
  ( Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ],
    Tree.node "a" [ Tree.leaf "c"; Tree.leaf "b" ] )

let is_lower_bound y ts = List.for_all (fun t -> leq y t) ts

let maximal_lower_bounds_in_pool ts ~pool =
  let lbs = List.filter (fun y -> is_lower_bound y ts) pool in
  List.filter
    (fun y -> List.for_all (fun z -> (not (leq y z)) || leq z y) lbs)
    lbs

let has_glb_in_pool ts ~pool =
  let lbs = List.filter (fun y -> is_lower_bound y ts) pool in
  List.exists (fun y -> List.for_all (fun z -> leq z y) lbs) lbs
