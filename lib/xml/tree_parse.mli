(** Concrete syntax for data trees, mirroring {!Certdb_relational.Parse}:

    {v
      catalog[ book(1, 1999)[ author("ann") ]; book(2, _y) ]
    v}

    A node is [label], optionally [label(values…)], optionally followed by
    [\[children; …\]].  Values are integers, quoted strings, bare
    identifiers (strings), or nulls [_name] (same name = same null within
    one parse). *)

open Certdb_values

exception Parse_error of string

(** [tree s] parses one tree; returns it with the null bindings used.
    @raise Parse_error on malformed input. *)
val tree : ?bindings:(string * Value.t) list -> string -> Tree.t * (string * Value.t) list

(** [to_string t] prints a tree back in the concrete syntax. *)
val to_string : Tree.t -> string
