(** Homomorphisms between XML trees (Section 2.2): pairs (h₁, h₂) mapping
    nodes to nodes (preserving the child relation and labels) and nulls to
    values, with [ρ′(h₁ x) = h₂(ρ x)].

    The definition does not force the root to map to the root; complete
    documents have a designated root label, which pins it in practice.
    [leq] is the information ordering [T ⊑ T′] (Prop. 3 for trees). *)

open Certdb_csp
open Certdb_gdm

(** [find ?require_root ?restrict t t'] — [require_root] (default [false])
    restricts h₁ to send root to root; [restrict] further constrains
    candidate target nodes as a {!Domains.t} restriction (intersected
    with the root pin when both are given). *)
val find :
  ?require_root:bool ->
  ?restrict:Domains.t ->
  Tree.t ->
  Tree.t ->
  Ghom.t option

val exists :
  ?require_root:bool ->
  ?restrict:Domains.t ->
  Tree.t ->
  Tree.t ->
  bool

(** Budgeted search; [Unknown r] reports the tripped limit of [limits]. *)
val find_b :
  ?require_root:bool ->
  ?restrict:Domains.t ->
  ?limits:Engine.Limits.t ->
  Tree.t ->
  Tree.t ->
  Ghom.t Engine.outcome

val exists_b :
  ?require_root:bool ->
  ?restrict:Domains.t ->
  ?limits:Engine.Limits.t ->
  Tree.t ->
  Tree.t ->
  Engine.decision

val leq : Tree.t -> Tree.t -> bool

(** Budgeted [⊑] on trees. *)
val leq_b : ?limits:Engine.Limits.t -> Tree.t -> Tree.t -> Engine.decision

val equiv : Tree.t -> Tree.t -> bool
val strictly_less : Tree.t -> Tree.t -> bool
val incomparable : Tree.t -> Tree.t -> bool

(** [models t t'] — [T |= T′] in the notation of [16]: [t] satisfies the
    description [t'], i.e. there is a homomorphism [t' → t]. *)
val models : Tree.t -> Tree.t -> bool

(** [mem t' t] — the membership problem: complete [t'] ∈ [[t]]. *)
val mem : Tree.t -> Tree.t -> bool

(** Budgeted membership. *)
val mem_b : ?limits:Engine.Limits.t -> Tree.t -> Tree.t -> Engine.decision

(** [leq_resilient ?policy ?limits t t'] — [⊑] under the
    retry/escalation ladder of {!Resilient}, never [`Unknown]:
    [`Exact b] when some attempt settled the search; [`Lower_bound
    false] when every attempt tripped — for hom existence the only
    positive certificate is a witness and the only negative one is
    exhaustion, so an exhausted ladder certifies nothing (unlike the
    relational certain-answer case, where naïve evaluation supplies a
    sound [`Lower_bound true]). *)
val leq_resilient :
  ?policy:Resilient.Policy.t ->
  ?limits:Engine.Limits.t ->
  Tree.t ->
  Tree.t ->
  [ `Exact of bool | `Lower_bound of bool ]

(** Resilient membership: [`Exact false] outright on incomplete [t']. *)
val mem_resilient :
  ?policy:Resilient.Policy.t ->
  ?limits:Engine.Limits.t ->
  Tree.t ->
  Tree.t ->
  [ `Exact of bool | `Lower_bound of bool ]
