open Certdb_gdm

type axis =
  [ `Child
  | `Descendant
  | `Next_sibling
  | `Sibling_order
  ]

let rel_name = function
  | `Child -> "child"
  | `Descendant -> "descendant"
  | `Next_sibling -> "next_sibling"
  | `Sibling_order -> "sibling_order"

type walked = W of int * Tree.t * walked list

let to_gdb ~axes t =
  let counter = ref 0 in
  (* first pass: assign preorder ids *)
  let rec walk (t : Tree.t) =
    let id = !counter in
    incr counter;
    let children = List.map walk t.children in
    W (id, t, children)
  in
  let root = walk t in
  let db = ref Gdb.empty in
  let rec add_nodes (W (id, t, children)) =
    db := Gdb.add_node !db ~node:id ~label:t.label ~data:(Array.to_list t.data);
    List.iter add_nodes children
  in
  add_nodes root;
  let rec all_ids (W (id, _, children)) =
    id :: List.concat_map all_ids children
  in
  let rec add_edges (W (id, _, children)) =
    let child_ids = List.map (fun (W (cid, _, _)) -> cid) children in
    if List.mem `Child axes then
      List.iter
        (fun cid -> db := Gdb.add_tuple !db (rel_name `Child) [ id; cid ])
        child_ids;
    if List.mem `Descendant axes then
      List.iter
        (fun c ->
          List.iter
            (fun did ->
              db := Gdb.add_tuple !db (rel_name `Descendant) [ id; did ])
            (all_ids c))
        children;
    if List.mem `Next_sibling axes then begin
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          db := Gdb.add_tuple !db (rel_name `Next_sibling) [ a; b ];
          pairs rest
        | _ -> ()
      in
      pairs child_ids
    end;
    if List.mem `Sibling_order axes then
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if i < j then
                db := Gdb.add_tuple !db (rel_name `Sibling_order) [ a; b ])
            child_ids)
        child_ids;
    List.iter add_edges children
  in
  add_edges root;
  !db

let leq ~axes t t' = Gordering.leq (to_gdb ~axes t) (to_gdb ~axes t')

let schema ~axes ~alphabet =
  Gschema.make ~alphabet ~sigma:(List.map (fun a -> (rel_name a, 2)) axes)
