let prop10_quadruple () =
  let t1 = Tree.node "a" [ Tree.leaf "b" ] in
  let t2 = Tree.node "a" [ Tree.leaf "c" ] in
  let t' = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ] in
  let t'' =
    Tree.node "d"
      [ Tree.node "a" [ Tree.leaf "b" ]; Tree.node "a" [ Tree.leaf "c" ] ]
  in
  (t1, t2, t', t'')

(* Small data-free trees: all shapes with ≤ 2 levels below the root over
   labels {a,b,c,d}, each node having at most 2 children drawn from
   leaves. *)
let small_tree_pool () =
  let labels = [ "a"; "b"; "c"; "d" ] in
  let leaves = List.map Tree.leaf labels in
  let depth2 =
    List.concat_map
      (fun l ->
        List.concat_map
          (fun c1 ->
            Tree.node l [ c1 ]
            :: List.map (fun c2 -> Tree.node l [ c1; c2 ]) leaves)
          leaves)
      labels
  in
  let depth3 =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun (t : Tree.t) ->
            if t.children <> [] then Some (Tree.node l [ t ]) else None)
          depth2)
      [ "a"; "d" ]
  in
  leaves @ depth2 @ depth3

let prop10_check () =
  let t1, t2, t', t'' = prop10_quadruple () in
  let upper t = Tree_hom.leq t1 t && Tree_hom.leq t2 t in
  (* both t' and t'' are upper bounds *)
  upper t' && upper t''
  (* and no pool element is an upper bound below both *)
  && not
       (List.exists
          (fun t ->
            upper t && Tree_hom.leq t t' && Tree_hom.leq t t'')
          (small_tree_pool ()))
