(** Tree patterns — the pattern-based view of incompleteness in XML that
    the paper points to ([4, 7, 8]): nodes with a label or a wildcard, data
    terms that are constants or variables, and child / descendant axes.
    Patterns are existential positive, so certain answering over incomplete
    trees is by naïve matching (Theorem 2 / Theorem 7(a) specialized to
    trees). *)

open Certdb_values

type term =
  | Var of string
  | Val of Value.t

type axis =
  | Child
  | Descendant

type t = {
  label : string option; (* [None] is the wildcard *)
  data : term list; (* [] leaves the node's data unconstrained *)
  children : (axis * t) list;
}

val node : ?label:string -> ?data:term list -> (axis * t) list -> t

(** Bindings of pattern variables produced by a match. *)
type binding = Value.t Stdlib.Map.Make(String).t

(** [find_match ?require_root p t] — a match of [p] anywhere in [t]
    ([require_root] pins the pattern root to the tree root).  Variables
    bind consistently across the whole pattern; the same variable twice
    demands equal data values. *)
val find_match : ?require_root:bool -> t -> Tree.t -> binding option

val matches : ?require_root:bool -> t -> Tree.t -> bool

(** [all_matches p t] — every distinct binding. *)
val all_matches : ?require_root:bool -> t -> Tree.t -> binding list

(** [certain_match p t] — is [p] certain over the incomplete tree [t]
    (i.e., does it match every completion)?  Computed by naïve matching,
    then checking the binding uses no nulls when variables are exported —
    for Boolean certainty, a match whose data comparisons hold already
    syntactically is certain (patterns are existential positive). *)
val certain_match : t -> Tree.t -> bool

(** [answers p t ~out] — certain answers for the tuple of output variables
    [out]: all bindings of [out] to constants from naïve matching. *)
val answers : t -> Tree.t -> out:string list -> Value.t list list
