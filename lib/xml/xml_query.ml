open Certdb_values
module String_map = Map.Make (String)

type template = {
  label : string;
  data : Pattern.term list;
  children : template list;
}

type t = {
  pattern : Pattern.t;
  template : template;
}

let template ?(data = []) label children = { label; data; children }
let make ~pattern ~template = { pattern; template }

let rec instantiate (binding : Pattern.binding) tmpl =
  let value = function
    | Pattern.Val v -> v
    | Pattern.Var x -> (
      match String_map.find_opt x binding with
      | Some v -> v
      | None ->
        invalid_arg
          (Printf.sprintf "Xml_query: template variable %s unbound" x))
  in
  Tree.node ~data:(List.map value tmpl.data) tmpl.label
    (List.map (instantiate binding) tmpl.children)

let apply q t =
  let bindings = Pattern.all_matches q.pattern t in
  Tree.node "result" (List.map (fun b -> instantiate b q.template) bindings)

let sample_completions t =
  let nulls = Value.Set.elements (Tree.nulls t) in
  let k = List.length nulls in
  let fresh = List.init (k + 1) (fun _ -> Value.fresh_const ()) in
  let candidates = Value.Set.elements (Tree.constants t) @ fresh in
  let rec assign acc = function
    | [] -> [ acc ]
    | n :: rest ->
      List.concat_map
        (fun c -> assign (Valuation.bind acc n c) rest)
        candidates
  in
  List.map (fun h -> Tree.apply h t) (assign Valuation.empty nulls)

let certain_by_enumeration q t =
  let outputs = List.map (apply q) (sample_completions t) in
  match outputs with
  | [] -> Some (apply q t)
  | _ -> Tree_glb.family_reduced outputs

let naive_certain_agrees q t =
  match certain_by_enumeration q t with
  | None -> false
  | Some certain ->
    let naive = apply q t in
    Tree_hom.equiv certain naive
