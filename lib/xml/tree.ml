open Certdb_values
open Certdb_gdm
open Certdb_relational

type t = {
  label : string;
  data : Value.t array;
  children : t list;
}

let node ?(data = []) label children =
  { label; data = Array.of_list data; children }

let leaf ?data label = node ?data label []

let rec size t = 1 + List.fold_left (fun n c -> n + size c) 0 t.children

let rec depth t =
  1 + List.fold_left (fun d c -> max d (depth c)) 0 t.children

let labels t =
  let rec go acc t =
    let acc = if List.mem t.label acc then acc else t.label :: acc in
    List.fold_left go acc t.children
  in
  List.rev (go [] t)

let fold_values f t init =
  let rec go acc t =
    let acc = Array.fold_left f acc t.data in
    List.fold_left go acc t.children
  in
  go init t

let nulls t =
  fold_values
    (fun acc v -> if Value.is_null v then Value.Set.add v acc else acc)
    t Value.Set.empty

let constants t =
  fold_values
    (fun acc v -> if Value.is_const v then Value.Set.add v acc else acc)
    t Value.Set.empty

let is_complete t = Value.Set.is_empty (nulls t)

let rec apply h t =
  {
    t with
    data = Valuation.apply_array h t.data;
    children = List.map (apply h) t.children;
  }

let ground t =
  let h = Valuation.grounding_of_nulls ~avoid:(constants t) (nulls t) in
  apply h t

let rename_apart ~avoid t =
  let renaming =
    Value.Set.fold
      (fun n h ->
        let rec fresh () =
          let n' = Value.fresh_null () in
          if Value.Set.mem n' avoid then fresh () else n'
        in
        Valuation.bind h n (fresh ()))
      (nulls t) Valuation.empty
  in
  apply renaming t

let to_gdb t =
  let counter = ref 0 in
  let rec go db parent t =
    let id = !counter in
    incr counter;
    let db =
      Gdb.add_node db ~node:id ~label:t.label ~data:(Array.to_list t.data)
    in
    let db =
      match parent with
      | None -> db
      | Some p -> Gdb.add_tuple db "child" [ p; id ]
    in
    List.fold_left (fun db c -> go db (Some id) c) db t.children
  in
  go Gdb.empty None t

let of_instance d =
  let children =
    List.map
      (fun (f : Instance.fact) ->
        leaf ~data:(Array.to_list f.args) f.rel)
      (Instance.facts d)
  in
  node "r" children

let random ~seed ~labels ~max_depth ~max_children ~null_prob ~domain () =
  let st = Random.State.make [| seed |] in
  let labels = Array.of_list labels in
  if Array.length labels = 0 then invalid_arg "Tree.random: no labels";
  let value () =
    if Random.State.float st 1.0 < null_prob then Value.fresh_null ()
    else Value.int (Random.State.int st domain)
  in
  let rec build d =
    let lbl, arity = labels.(Random.State.int st (Array.length labels)) in
    let data = List.init arity (fun _ -> value ()) in
    let nkids = if d >= max_depth then 0 else Random.State.int st (max_children + 1) in
    node ~data lbl (List.init nkids (fun _ -> build (d + 1)))
  in
  build 1

let rec equal t1 t2 =
  String.equal t1.label t2.label
  && t1.data = t2.data
  && List.length t1.children = List.length t2.children
  && List.for_all2 equal t1.children t2.children

let rec pp ppf t =
  let pp_data ppf d =
    if Array.length d > 0 then
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Value.pp)
        (Array.to_list d)
  in
  if t.children = [] then
    Format.fprintf ppf "%s%a" t.label pp_data t.data
  else
    Format.fprintf ppf "%s%a[%a]" t.label pp_data t.data
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         pp)
      t.children
