(** Richer structural vocabularies for trees (Section 5.1 remarks that σ
    may contain axes beyond the child relation — e.g. next-sibling).  This
    module codes a tree into a generalized database over a chosen set of
    axes; homomorphisms of the resulting databases then preserve those
    axes, which reconciles the ordered-tree homomorphisms of Prop. 6 with
    the uniform GDM view (a gdm-hom over [`Sibling_order] is exactly an
    order-preserving tree homomorphism). *)

open Certdb_gdm

type axis =
  [ `Child
  | `Descendant
  | `Next_sibling
  | `Sibling_order (* x strictly before y among the same node's children *)
  ]

(** Relation name used for each axis in the structural vocabulary. *)
val rel_name : axis -> string

(** [to_gdb ~axes t] — nodes numbered in preorder (root 0), one σ-relation
    per requested axis. *)
val to_gdb : axes:axis list -> Tree.t -> Gdb.t

(** [leq ~axes t t'] — the information ordering with the given axes in the
    vocabulary. *)
val leq : axes:axis list -> Tree.t -> Tree.t -> bool

(** [schema ~axes ~alphabet] — the corresponding generalized schema. *)
val schema : axes:axis list -> alphabet:(string * int) list -> Gschema.t
