(** Structurally incomplete XML documents, after [4, 7]: beyond data nulls,
    a document description may leave structure unknown — an edge may be a
    {e child} or a {e descendant} edge, and a node's label may be a
    wildcard.  (The paper's Section 2.2 uses the data-nulls fragment; this
    module implements the richer model the cited works study, with the
    membership and consistency problems of Section 6.)

    Semantics: a complete tree [T ∈ [[p]]] iff there are mappings of the
    description's nodes to [T]'s nodes sending the root to the root, child
    edges to edges, descendant edges to proper descendant paths, respecting
    labels (wildcards match anything) and data through a single valuation
    of the nulls. *)

open Certdb_values

type edge =
  | Child
  | Descendant

type t = {
  label : string option; (* [None] is a wildcard *)
  data : Value.t array;
  edges : (edge * t) list;
}

val node : ?label:string -> ?data:Value.t list -> (edge * t) list -> t

(** [of_tree t] — every edge a child edge, labels fixed. *)
val of_tree : Tree.t -> t

val size : t -> int
val nulls : t -> Value.Set.t

(** [member doc t] — the membership problem: is the complete tree [t] in
    [[doc]]?  (NP in general — exponential backtracking; polynomial for
    data-null-free descriptions on small inputs.) *)
val member : t -> Tree.t -> bool

(** [satisfied_with doc t] — a witnessing valuation of the data nulls. *)
val satisfied_with : t -> Tree.t -> Valuation.t option

(** [sample_completions ~alphabet ~chain_bound doc] — a finite sample of
    [[doc]]: wildcards resolved over [alphabet] (label, arity) pairs,
    descendant edges expanded into chains of length 1..[chain_bound] with
    alphabet-labeled fresh interior nodes, nulls grounded.  Exponential;
    small descriptions only. *)
val sample_completions :
  alphabet:(string * int) list -> chain_bound:int -> t -> Tree.t list

(** [leq doc doc' ~alphabet ~chain_bound] — sampled information ordering:
    every sampled completion of [doc'] satisfies [doc].  Sound for refuting
    [⊑]; complete only w.r.t. the sample. *)
val leq :
  alphabet:(string * int) list -> chain_bound:int -> t -> t -> bool

(** [consistent ~alphabet doc] — the consistency problem: does [doc] have a
    completion over the alphabet?  Fails when some wildcard node's data
    arity matches no label, or a fixed label's arity disagrees. *)
val consistent : alphabet:(string * int) list -> t -> bool

val pp : Format.formatter -> t -> unit
