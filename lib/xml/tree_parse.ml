open Certdb_values

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Ident of string
  | Number of int
  | Quoted of string
  | Null_name of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semi

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (tokens := Lparen :: !tokens; incr i)
    else if c = ')' then (tokens := Rparen :: !tokens; incr i)
    else if c = '[' then (tokens := Lbracket :: !tokens; incr i)
    else if c = ']' then (tokens := Rbracket :: !tokens; incr i)
    else if c = ',' then (tokens := Comma :: !tokens; incr i)
    else if c = ';' then (tokens := Semi :: !tokens; incr i)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then fail "unterminated string literal";
      tokens := Quoted (String.sub s (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let lit = String.sub s !i (!j - !i) in
      (match int_of_string_opt lit with
      | Some k -> tokens := Number k :: !tokens
      | None -> fail "bad number %S" lit);
      i := !j
    end
    else if c = '_' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      if !j = !i + 1 then fail "null name expected after '_'";
      tokens := Null_name (String.sub s (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      tokens := Ident (String.sub s !i (!j - !i)) :: !tokens;
      i := !j
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

let tree ?(bindings = []) s =
  let tokens = ref (tokenize s) in
  let nulls = Hashtbl.create 8 in
  List.iter (fun (name, v) -> Hashtbl.replace nulls name v) bindings;
  let null_of name =
    match Hashtbl.find_opt nulls name with
    | Some v -> v
    | None ->
      let v = Value.fresh_null () in
      Hashtbl.add nulls name v;
      v
  in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () =
    match !tokens with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
      tokens := rest;
      t
  in
  let parse_value () =
    match advance () with
    | Number k -> Value.int k
    | Quoted str | Ident str -> Value.str str
    | Null_name name -> null_of name
    | _ -> fail "expected a value"
  in
  let rec parse_node () =
    let label =
      match advance () with
      | Ident l -> l
      | _ -> fail "expected a label"
    in
    let data =
      match peek () with
      | Some Lparen ->
        ignore (advance ());
        let args = ref [] in
        (match peek () with
        | Some Rparen -> ignore (advance ())
        | _ ->
          let rec loop () =
            args := parse_value () :: !args;
            match advance () with
            | Comma -> loop ()
            | Rparen -> ()
            | _ -> fail "expected ',' or ')'"
          in
          loop ());
        List.rev !args
      | _ -> []
    in
    let children =
      match peek () with
      | Some Lbracket ->
        ignore (advance ());
        let kids = ref [] in
        (match peek () with
        | Some Rbracket -> ignore (advance ())
        | _ ->
          let rec loop () =
            kids := parse_node () :: !kids;
            match advance () with
            | Semi -> loop ()
            | Rbracket -> ()
            | _ -> fail "expected ';' or ']'"
          in
          loop ());
        List.rev !kids
      | _ -> []
    in
    Tree.node ~data label children
  in
  let t = parse_node () in
  if !tokens <> [] then fail "trailing input after the tree";
  let bindings = Hashtbl.fold (fun name v acc -> (name, v) :: acc) nulls [] in
  (t, bindings)

let value_to_string v =
  match v with
  | Value.Const (Value.Int k) -> string_of_int k
  | Value.Const (Value.Str s) -> Printf.sprintf "%S" s
  | Value.Null i -> Printf.sprintf "_n%d" i

let rec to_string (t : Tree.t) =
  let data =
    if Array.length t.data = 0 then ""
    else
      Printf.sprintf "(%s)"
        (String.concat ", " (List.map value_to_string (Array.to_list t.data)))
  in
  let children =
    if t.children = [] then ""
    else
      Printf.sprintf "[%s]" (String.concat "; " (List.map to_string t.children))
  in
  t.label ^ data ^ children
