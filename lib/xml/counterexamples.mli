(** The paper's tree counterexamples.

    Prop. 10: least upper bounds need not exist for unordered labeled
    trees.  With [t1 = a[b]], [t2 = a[c]], both [t' = a[b;c]] and
    [t'' = d[a[b]; a[c]]] are upper bounds, but any common upper bound [t]
    of [t1, t2] below both would need its images of the two a-nodes to
    either share a node (then [t ⋢ t'']) or be disjoint (then [t ⋢ t']). *)

(** [(t1, t2, t', t'')] as above. *)
val prop10_quadruple : unit -> Tree.t * Tree.t * Tree.t * Tree.t

(** [prop10_check ()] — runs the complete argument over the quadruple plus
    a pool of candidate bounds; returns true when the counterexample
    behaves as Prop. 10 states. *)
val prop10_check : unit -> bool

(** A pool of small data-free trees over labels a,b,c,d (depth ≤ 3), used
    to search for bounds exhaustively. *)
val small_tree_pool : unit -> Tree.t list
