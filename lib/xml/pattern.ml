open Certdb_values
module String_map = Map.Make (String)

type term =
  | Var of string
  | Val of Value.t

type axis =
  | Child
  | Descendant

type t = {
  label : string option;
  data : term list;
  children : (axis * t) list;
}

let node ?label ?(data = []) children = { label; data; children }

type binding = Value.t String_map.t

(* unify one pattern term against a tree value: constants must be equal,
   bound variables must match exactly, unbound variables bind *)
let unify_term env term v =
  match term with
  | Val c -> if Value.equal c v then Some env else None
  | Var x -> (
    match String_map.find_opt x env with
    | Some v' -> if Value.equal v v' then Some env else None
    | None -> Some (String_map.add x v env))

let rec unify_data env terms values i =
  match terms with
  | [] -> if i = Array.length values then Some env else None
  | t :: rest ->
    if i >= Array.length values then None
    else
      match unify_term env t values.(i) with
      | Some env' -> unify_data env' rest values (i + 1)
      | None -> None

let rec subtrees t = t :: List.concat_map subtrees t.Tree.children
let proper_descendants t = List.concat_map subtrees t.Tree.children

(* match pattern p with its root at tree node t, threading the binding *)
let rec match_at env p (t : Tree.t) =
  let label_ok =
    match p.label with None -> true | Some l -> String.equal l t.label
  in
  if not label_ok then None
  else
    (* an empty data list leaves the node's data unconstrained *)
    let data_result =
      if p.data = [] then Some env else unify_data env p.data t.data 0
    in
    match data_result with
    | None -> None
    | Some env -> match_children env p.children t

and match_children env specs t =
  match specs with
  | [] -> Some env
  | (axis, child_pattern) :: rest ->
    let candidates =
      match axis with
      | Child -> t.Tree.children
      | Descendant -> proper_descendants t
    in
    let rec try_candidates = function
      | [] -> None
      | c :: cs -> (
        match match_at env child_pattern c with
        | Some env' -> (
          match match_children env' rest t with
          | Some env'' -> Some env''
          | None -> try_candidates cs)
        | None -> try_candidates cs)
    in
    try_candidates candidates

let anchor_points ~require_root t =
  if require_root then [ t ] else subtrees t

let find_match ?(require_root = false) p t =
  List.find_map
    (fun anchor -> match_at String_map.empty p anchor)
    (anchor_points ~require_root t)

let matches ?require_root p t = Option.is_some (find_match ?require_root p t)

let all_matches ?(require_root = false) p t =
  (* exhaustive: fold over anchors collecting every binding; the matcher
     above returns the first, so re-run it per anchor with memoized
     enumeration *)
  let results = ref [] in
  let rec enum_at env p (tr : Tree.t) k =
    let label_ok =
      match p.label with None -> true | Some l -> String.equal l tr.label
    in
    if label_ok then
      let data_result =
        if p.data = [] then Some env else unify_data env p.data tr.data 0
      in
      match data_result with
      | None -> ()
      | Some env -> enum_children env p.children tr k
  and enum_children env specs tr k =
    match specs with
    | [] -> k env
    | (axis, child_pattern) :: rest ->
      let candidates =
        match axis with
        | Child -> tr.Tree.children
        | Descendant -> proper_descendants tr
      in
      List.iter
        (fun c ->
          enum_at env child_pattern c (fun env' ->
              enum_children env' rest tr k))
        candidates
  in
  List.iter
    (fun anchor ->
      enum_at String_map.empty p anchor (fun env ->
          if not (List.exists (String_map.equal Value.equal env) !results)
          then results := env :: !results))
    (anchor_points ~require_root t);
  List.rev !results

let certain_match p t = matches p t

let answers p t ~out =
  all_matches p t
  |> List.filter_map (fun env ->
         let tuple =
           List.map
             (fun x ->
               match String_map.find_opt x env with
               | Some v -> v
               | None -> invalid_arg ("Pattern.answers: unbound output " ^ x))
             out
         in
         if List.for_all Value.is_const tuple then Some tuple else None)
  |> List.sort_uniq compare
