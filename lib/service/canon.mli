(** Canonical forms for the semantic cache.

    {b Query keys.}  Certain answers are invariant under hom-equivalence
    of the query (two equivalent CQs have the same certain answers over
    every instance — Section 4's homomorphism preorder), so the sound
    cache key for a query is a canonical representative of its
    ∼-equivalence class: [cq_key] minimizes the query ({!Cq.minimize} =
    the core of its tableau, head variables frozen) and then computes a
    canonical encoding of the core modulo variable renaming and atom
    reordering, by branch-and-bound over atom orderings for the
    lexicographically least encoding.  Two CQs get the same key iff
    their cores are isomorphic iff they are hom-equivalent (qcheck-
    checked both ways in [test_service.ml]).

    Canonicalisation of a pathological query (many interchangeable
    atoms) can branch; the search carries a node budget and gives up
    with [None] — the service then counts a cache bypass and evaluates
    the query directly, so an adversarial query shape can cost at most
    the budget, never a blowup.

    {b Database fingerprints.}  [db_fingerprint] is a stable content
    hash: nulls are renumbered by increasing id (invariant under the
    order-preserving renaming the parser's global null supply applies
    on every load, so loading the same source twice fingerprints
    equally), facts are sorted, and the rendering is FNV-1a hashed.
    Distinct fingerprints never alias semantically in practice, but the
    fingerprint is {e syntactic}: hom-equivalent databases may hash
    apart (they would only cost a duplicate cache line, never a wrong
    answer). *)

(** Search budget (canonicalisation tree nodes) before [cq_key] gives
    up; {!cq_key}'s default is 50_000. *)
val default_budget : int

(** [cq_key ?budget q] — the canonical key of [q]'s hom-equivalence
    class, or [None] if canonicalisation exceeded [budget]. *)
val cq_key : ?budget:int -> Certdb_query.Cq.t -> string option

(** [db_fingerprint d] — 16 hex digits, stable across loads of the same
    source text. *)
val db_fingerprint : Certdb_relational.Instance.t -> string
