open Certdb_relational
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Openmetrics = Certdb_obs.Openmetrics
module Json = Obs.Json
module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient
module Cq = Certdb_query.Cq
module Ucq = Certdb_query.Ucq
module Plan = Certdb_analysis.Plan
module Footprint = Certdb_analysis.Footprint
module Sat_backend = Certdb_sat.Backend

module Config = struct
  type t = {
    cache_capacity : int;
    canon_budget : int;
    policy : Resilient.Policy.t;
    default_limits : Engine.Limits.t;
    jobs : int;
    slow_ms : float option;
    backend : Sat_backend.choice;
  }

  let make ?(cache_capacity = 1024) ?(canon_budget = Canon.default_budget)
      ?(policy = Resilient.Policy.default)
      ?(default_limits = Engine.Limits.unlimited) ?jobs ?slow_ms
      ?(backend = Sat_backend.Csp) () =
    let jobs =
      match jobs with Some j -> max 1 j | None -> Engine.Batch.default_jobs ()
    in
    { cache_capacity; canon_budget; policy; default_limits; jobs; slow_ms;
      backend }

  let default = make ()
end

type answer =
  | Graded of [ `Exact of bool | `Lower_bound of bool ]
  | Tuples of Instance.t

type db_entry = { instance : Instance.t; fingerprint : string }

type t = {
  config : Config.t;
  registry : (string, db_entry) Hashtbl.t;
  registry_mu : Mutex.t;
      (* the supervisor serves connections on concurrent domains; the
         registry is the one shared table not already guarded (the
         caches carry their own mutex, counters are atomic) *)
  cache : answer Cache.t option;
  memo : string option Cache.t option;
      (* query source text -> canonical key ([None] = canonicalisation
         gave up), so a repeated request string skips parsing, core
         computation and the canonical-labeling search; db-independent,
         bounded by its own LRU under [service.canon] *)
  served : int Atomic.t;
  started_ms : float;
  t_hit : Obs.timer;
  t_miss : Obs.timer;
  c_requests : Obs.counter;
  c_errors : Obs.counter;
  slow_sink : Json.t -> unit;
}

let create ?(config = Config.default)
    ?(slow_sink = fun row -> prerr_endline (Json.to_string row)) () =
  {
    config;
    registry = Hashtbl.create 16;
    registry_mu = Mutex.create ();
    cache =
      (if config.Config.cache_capacity > 0 then
         Some (Cache.create ~capacity:config.Config.cache_capacity ())
       else None);
    memo =
      (if config.Config.cache_capacity > 0 then
         Some
           (Cache.create ~namespace:"service.canon"
              ~capacity:(4 * config.Config.cache_capacity)
              ())
       else None);
    served = Atomic.make 0;
    started_ms = Obs.now_ms ();
    t_hit = Obs.timer "service.request.hit";
    t_miss = Obs.timer "service.request.miss";
    c_requests = Obs.counter "service.requests";
    c_errors = Obs.counter "service.errors";
    slow_sink;
  }

let cache_totals t = Option.map Cache.totals t.cache

let locked t f =
  Mutex.lock t.registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.registry_mu) f

let load_entry t ~name ~source =
  match Wire.parse_instance_result source with
  | Error m -> Error m
  | Ok d ->
    let entry = { instance = d; fingerprint = Canon.db_fingerprint d } in
    locked t (fun () -> Hashtbl.replace t.registry name entry);
    Ok entry

let load t ~name ~source =
  Result.map (fun e -> e.instance) (load_entry t ~name ~source)

let lookup t db =
  match locked t (fun () -> Hashtbl.find_opt t.registry db) with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "unknown database %S" db)

(* ---- cached evaluation ---------------------------------------------- *)

(* [`Lower_bound] answers depend on the budget that produced them, so
   their cache key carries the budget; [`Exact] answers (and non-Boolean
   answer sets, always exact by Theorem 4) are budget-independent. *)
let limits_sig ?(backend = Sat_backend.Csp) (l : Engine.Limits.t)
    (p : Resilient.Policy.t) =
  let i = function None -> "-" | Some n -> string_of_int n in
  let f = function None -> "-" | Some x -> Printf.sprintf "%g" x in
  let base =
    Printf.sprintf "b:%s,%s,%s;a:%d;e:%g" (i l.nodes) (i l.backtracks)
      (f l.timeout_ms) p.Resilient.Policy.max_attempts
      p.Resilient.Policy.escalation
  in
  (* the default backend keeps its historical key; non-default backends
     scope their lower bounds apart (an Exact answer is still shared —
     routing never changes answers, only whether a budget trips) *)
  match backend with
  | Sat_backend.Csp -> base
  | b -> base ^ ";k:" ^ Sat_backend.choice_to_string b

(* a query whose cache lookup missed, ready to compute *)
type pending = {
  p_entry : db_entry;
  p_limits : Engine.Limits.t;
  p_policy : Resilient.Policy.t;
  p_q : Cq.t;
  p_backend : Sat_backend.choice;
  p_plain : string option;  (* where an exact answer is stored *)
  p_scoped : string option;  (* where a lower bound is stored *)
}

(* Cache lookup order: the plain key first — an exact answer cached by
   anyone is valid under any budget — then, for budgeted requests, the
   budget-scoped key, so a degraded answer is only reused by requests
   imposing the same budget. *)
let prepare t entry ~limits ~policy ~backend ~no_cache q =
  let todo plain scoped =
    `Todo
      {
        p_entry = entry;
        p_limits = limits;
        p_policy = policy;
        p_q = q;
        p_backend = backend;
        p_plain = plain;
        p_scoped = scoped;
      }
  in
  match t.cache with
  | None -> todo None None
  | Some cache when no_cache ->
    Cache.bypass cache;
    todo None None
  | Some cache -> (
    match Canon.cq_key ~budget:t.config.Config.canon_budget q with
    | None ->
      Cache.bypass cache;
      todo None None
    | Some ck -> (
      let key = entry.fingerprint ^ "|" ^ ck in
      let scoped =
        if Engine.Limits.is_unlimited limits then None
        else Some (key ^ "|" ^ limits_sig ~backend limits policy)
      in
      match Cache.find cache key with
      | Some (a, _) -> `Hit a
      | None -> (
        match Option.bind scoped (Cache.find cache) with
        | Some (a, _) -> `Hit a
        | None -> todo (Some key) scoped)))

(* search-effort attribution for [explain]: the solver counters are
   process-global, so the deltas around one evaluation are approximate
   when other requests compute concurrently (the batch verb); for the
   common single-request case they are exact *)
let c_nodes = Obs.counter "csp.solver.decisions"
let c_backtracks = Obs.counter "csp.solver.backtracks"

(* [jobs] parallelizes {e within} the query: a cartesian-product CQ routed
   to [Plan.Components] solves its components on that many domains.  The
   batch verb keeps [jobs = 1] here — it already spreads whole requests
   across the pool. *)
let compute_pending ?(jobs = 1) p =
  let t0 = Obs.now_ms () in
  let n0 = Obs.counter_value c_nodes in
  let b0 = Obs.counter_value c_backtracks in
  let a =
    if p.p_q.Cq.head = [] then
      Graded
        (Plan.certain ~policy:p.p_policy ~limits:p.p_limits ~jobs
           ~backend:p.p_backend p.p_q p.p_entry.instance)
    else Tuples (Plan.certain_answers (Ucq.make [ p.p_q ]) p.p_entry.instance)
  in
  Trace.annotate "nodes" (string_of_int (Obs.counter_value c_nodes - n0));
  Trace.annotate "backtracks"
    (string_of_int (Obs.counter_value c_backtracks - b0));
  (a, Obs.now_ms () -. t0)

let store t p a ~cost_ms =
  match t.cache with
  | None -> ()
  | Some cache -> (
    (* every entry is scoped by what the query reads, so an update verb
       can invalidate by footprint overlap instead of flushing *)
    let footprint = Footprint.of_cq p.p_q in
    match (a, p.p_plain, p.p_scoped) with
    | (Graded (`Exact _) | Tuples _), Some k, _ ->
      Cache.add cache k ~footprint ~cost_ms a
    | Graded (`Lower_bound _), _, Some k ->
      Cache.add cache k ~footprint ~cost_ms a
    | _ -> ())

let eval_query t ~db ?limits ?max_attempts ?backend ?(no_cache = false) q =
  let limits = Option.value limits ~default:t.config.Config.default_limits in
  let policy =
    match max_attempts with
    | None -> t.config.Config.policy
    | Some n ->
      { t.config.Config.policy with Resilient.Policy.max_attempts = max 1 n }
  in
  let backend = Option.value backend ~default:t.config.Config.backend in
  match lookup t db with
  | Error _ as e -> e
  | Ok entry -> (
    match prepare t entry ~limits ~policy ~backend ~no_cache q with
    | `Hit a -> Ok ((a, true) : answer * bool)
    | `Todo p ->
      let a, cost_ms = compute_pending ~jobs:t.config.Config.jobs p in
      store t p a ~cost_ms;
      Ok (a, false))

(* ---- request handling ----------------------------------------------- *)

let or_opt a b = match a with Some _ -> a | None -> b

let request_limits t j =
  let d = t.config.Config.default_limits in
  Engine.Limits.make
    ?nodes:(or_opt (Wire.int_field "node_budget" j) d.Engine.Limits.nodes)
    ?backtracks:
      (or_opt (Wire.int_field "backtrack_budget" j) d.Engine.Limits.backtracks)
    ?timeout_ms:
      (or_opt (Wire.float_field "timeout_ms" j) d.Engine.Limits.timeout_ms)
    ?cancel:d.Engine.Limits.cancel ()

let request_policy t j =
  match Wire.int_field "max_attempts" j with
  | None -> t.config.Config.policy
  | Some n ->
    { t.config.Config.policy with Resilient.Policy.max_attempts = max 1 n }

let request_backend t j =
  match Wire.str_field "backend" j with
  | None -> Ok t.config.Config.backend
  | Some s -> (
    match Sat_backend.choice_of_string s with
    | Some b -> Ok b
    | None ->
      Error
        (Printf.sprintf "backend: %S is not one of %s" s
           (String.concat "/" Sat_backend.choice_names)))

(* Parse the query-shaped fields of [j] and run the cache lookup.  The
   canonical key of the request's query text comes from the [memo] LRU
   when the same text was served before, so the hit path skips CQ
   parsing, core computation and the canonical-labeling search; the
   query is only parsed when an evaluation (or a fresh canonicalisation)
   actually needs it. *)
let prepare_request t j =
  match Wire.str_field "db" j with
  | None -> Error "missing field \"db\""
  | Some db -> (
    match Wire.str_field "query" j with
    | None -> Error "missing field \"query\""
    | Some qs -> (
      match lookup t db with
      | Error m -> Error m
      | Ok entry -> (
        match request_backend t j with
        | Error m -> Error m
        | Ok backend -> (
        let limits = request_limits t j in
        let policy = request_policy t j in
        let no_cache =
          Option.value (Wire.bool_field "no_cache" j) ~default:false
        in
        let parse () =
          match Wire.parse_cq_result qs with
          | Ok q -> Ok q
          | Error m -> Error ("query: " ^ m)
        in
        let todo ?q plain scoped =
          match (match q with Some q -> Ok q | None -> parse ()) with
          | Error _ as e -> e
          | Ok q ->
            Ok
              (`Todo
                 {
                   p_entry = entry;
                   p_limits = limits;
                   p_policy = policy;
                   p_q = q;
                   p_backend = backend;
                   p_plain = plain;
                   p_scoped = scoped;
                 })
        in
        match (t.cache, t.memo) with
        | Some cache, _ when no_cache ->
          Cache.bypass cache;
          todo None None
        | Some cache, Some memo -> (
          let ck =
            match Cache.find memo qs with
            | Some (ck, _) -> Ok (ck, None)
            | None -> (
              match parse () with
              | Error _ as e -> e
              | Ok q ->
                let ck =
                  Canon.cq_key ~budget:t.config.Config.canon_budget q
                in
                Cache.add memo qs ~cost_ms:0.0 ck;
                Ok (ck, Some q))
          in
          match ck with
          | Error _ as e -> e
          | Ok (None, q) ->
            Cache.bypass cache;
            todo ?q None None
          | Ok (Some ck, q) -> (
            let key = entry.fingerprint ^ "|" ^ ck in
            let scoped =
              if Engine.Limits.is_unlimited limits then None
              else Some (key ^ "|" ^ limits_sig ~backend limits policy)
            in
            match Cache.find cache key with
            | Some (a, _) -> Ok (`Hit a)
            | None -> (
              match Option.bind scoped (Cache.find cache) with
              | Some (a, _) -> Ok (`Hit a)
              | None -> todo ?q (Some key) scoped)))
        | _ -> todo None None))))

let answer_fields ?latency_ms answer ~cached =
  let base =
    match answer with
    | Graded g ->
      let grade, b =
        match g with
        | `Exact b -> ("exact", b)
        | `Lower_bound b -> ("lower-bound", b)
      in
      [
        ("status", Json.String "ok");
        ("grade", Json.String grade);
        ("certain", Json.Bool b);
      ]
    | Tuples d ->
      [
        ("status", Json.String "ok");
        ("grade", Json.String "exact");
        ("answers", Json.String (Parse.to_string d));
      ]
  in
  base
  @ [ ("cached", Json.Bool cached) ]
  @
  match latency_ms with
  | Some f -> [ ("latency_ms", Json.Float f) ]
  | None -> []

let explain_requested j =
  Option.value (Wire.bool_field "explain" j) ~default:false

(* the label [explain] surfaces for the cache; each value corresponds to
   the Cache counter bumped by the lookup (hit/miss/bypass), [off] when
   the server runs with no cache at all *)
let cache_disposition t = function
  | `Hit _ -> "hit"
  | `Todo p -> (
    match t.cache with
    | None -> "off"
    | Some _ ->
      if p.p_plain = None && p.p_scoped = None then "bypass" else "miss")

let slow_row t j ~op ~dt ~trace =
  let str k =
    match Wire.str_field k j with
    | Some s -> [ (k, Json.String s) ]
    | None -> []
  in
  t.slow_sink
    (Json.Obj
       ([
          ("slow_query", Json.Bool true);
          ("op", Json.String op);
          ("latency_ms", Json.Float dt);
        ]
       @ str "id" @ str "db" @ str "query"
       @ [ ("trace", trace) ]))

(* The request root span doubles as the [service.request] timer sample
   (Trace spans feed the plain Obs timer of their name), so the aggregate
   latency metric and the trace tree come from the same interval. *)
let query_fields t j =
  let explain = explain_requested j in
  let outcome, tid =
    Trace.with_trace "service.request" (fun tid ->
        let t0 = Obs.now_ms () in
        match prepare_request t j with
        | Error m -> (Error m, tid)
        | Ok prepared ->
          Trace.annotate "cache" (cache_disposition t prepared);
          let answer, cached =
            match prepared with
            | `Hit a -> (a, true)
            | `Todo p ->
              let a, cost_ms =
                compute_pending ~jobs:t.config.Config.jobs p
              in
              store t p a ~cost_ms;
              (a, false)
          in
          let dt = Obs.now_ms () -. t0 in
          Obs.record_ms (if cached then t.t_hit else t.t_miss) dt;
          Atomic.incr t.served;
          (Ok (answer_fields ~latency_ms:dt answer ~cached, dt), tid))
  in
  (* the root span is closed here, so the ring holds the full tree *)
  match outcome with
  | Error _ as e -> e
  | Ok (fields, dt) ->
    (match t.config.Config.slow_ms with
    | Some threshold when dt >= threshold ->
      slow_row t j ~op:"query" ~dt ~trace:(Trace.summary tid)
    | _ -> ());
    Ok
      (if explain then fields @ [ ("trace", Trace.summary tid) ] else fields)

(* the [batch] verb: cache hits and malformed sub-requests are settled in
   the coordinating domain; misses fan out over the domain pool, and the
   cache is written back by the coordinator (the cache is mutex-guarded,
   but keeping writers single-domain keeps eviction order deterministic) *)
let batch_fields t j =
  match Json.member "requests" j with
  | Some (Json.List reqs) ->
    let explain_all = explain_requested j in
    (* the whole batch is one trace: every task span inherits the batch's
       trace id across the worker domains ([Engine.Batch] ships the
       coordinator's context), so [trace dump] shows the fan-out as one
       tree and explained sub-responses are subtrees of it *)
    let rows =
      Trace.with_trace "service.batch" (fun tid ->
          let prepared =
            List.mapi
              (fun i r ->
                let sub_id =
                  Option.value (Wire.str_field "id" r)
                    ~default:(string_of_int i)
                in
                let sub_op =
                  Option.value (Wire.str_field "op" r) ~default:"query"
                in
                if not (String.equal sub_op "query") then
                  ( i,
                    sub_id,
                    r,
                    Error
                      (Printf.sprintf "batch supports only \"query\", got %S"
                         sub_op) )
                else (i, sub_id, r, prepare_request t r))
              reqs
          in
          let todo =
            List.filter_map
              (function i, _, r, Ok (`Todo p) -> Some (i, r, p) | _ -> None)
              prepared
          in
          let computed =
            Engine.Batch.map_result ~jobs:t.config.Config.jobs
              (fun (i, _, p) ->
                (* runs inside the worker's csp.batch.task span; its id
                   roots the sub-response's explained subtree *)
                Trace.annotate "cache" "miss";
                (i, Trace.current_span (), compute_pending p))
              todo
          in
          let results = Hashtbl.create (List.length todo) in
          List.iter2
            (fun (i, r, p) res ->
              match res with
              | Ok (_, sid, (a, cost_ms)) ->
                store t p a ~cost_ms;
                Obs.record_ms t.t_miss cost_ms;
                (match t.config.Config.slow_ms with
                | Some threshold when cost_ms >= threshold ->
                  slow_row t r ~op:"query" ~dt:cost_ms
                    ~trace:(Trace.summary ?root:sid tid)
                | _ -> ());
                Hashtbl.replace results i (Ok (sid, a))
              | Error (Engine.Batch.Raised { exn; _ }) ->
                Hashtbl.replace results i (Error (Wire.describe_exn exn))
              | Error Engine.Batch.Skipped ->
                Hashtbl.replace results i (Error "skipped"))
            todo computed;
          List.map
            (fun (i, sub_id, r, pr) ->
              let explain = explain_all || explain_requested r in
              let fields =
                match pr with
                | Error m ->
                  Obs.incr t.c_errors;
                  Wire.error_fields m
                | Ok (`Hit a) ->
                  Atomic.incr t.served;
                  answer_fields a ~cached:true
                  @
                  if explain then
                    [
                      ( "trace",
                        Json.Obj
                          [
                            ("trace_id", Json.Int tid);
                            ("cache", Json.String "hit");
                          ] );
                    ]
                  else []
                | Ok (`Todo _) -> (
                  match Hashtbl.find results i with
                  | Ok (sid, a) ->
                    Atomic.incr t.served;
                    answer_fields a ~cached:false
                    @
                    if explain then
                      [ ("trace", Trace.summary ?root:sid tid) ]
                    else []
                  | Error m ->
                    Obs.incr t.c_errors;
                    Wire.error_fields m)
              in
              Wire.row ~idx:i ~id:sub_id ~op:"query" fields)
            prepared)
    in
    Ok [ ("status", Json.String "ok"); ("results", Json.List rows) ]
  | Some _ | None -> Error "missing \"requests\" array"

let load_fields t j =
  match (Wire.str_field "name" j, Wire.str_field "source" j) with
  | None, _ -> Error "missing field \"name\""
  | _, None -> Error "missing field \"source\""
  | Some name, Some source -> (
    match load_entry t ~name ~source with
    | Error m -> Error ("source: parse error: " ^ m)
    | Ok entry ->
      Ok
        [
          ("status", Json.String "ok");
          ("name", Json.String name);
          ("fingerprint", Json.String entry.fingerprint);
          ("facts", Json.Int (Instance.cardinal entry.instance));
        ])

let unload_fields t j =
  match Wire.str_field "name" j with
  | None -> Error "missing field \"name\""
  | Some name ->
    let removed =
      locked t (fun () ->
          if Hashtbl.mem t.registry name then begin
            Hashtbl.remove t.registry name;
            true
          end
          else false)
    in
    if removed then Ok [ ("status", Json.String "ok"); ("name", Json.String name) ]
    else Error (Printf.sprintf "unknown database %S" name)

(* the [invalidate] verb: announce a (future) update touching one
   relation — whole tuples, or just some columns — and drop exactly the
   cached entries whose footprint overlaps it.  The insert/delete verbs
   themselves land later; the invalidation path and its counters are
   live now. *)
let invalidate_fields t j =
  match Wire.str_field "rel" j with
  | None -> Error "missing field \"rel\""
  | Some rel -> (
    let touch =
      match Wire.int_list_field "cols" j with
      | None -> Ok (Footprint.touch_rel rel)
      | Some cols ->
        if List.for_all (fun c -> c >= 1) cols then
          Ok (Footprint.touch_cols rel (List.map (fun c -> c - 1) cols))
        else Error "\"cols\" are 1-based positions"
    in
    match touch with
    | Error m -> Error m
    | Ok touch -> (
      let scoped =
        match Wire.str_field "db" j with
        | None -> Ok None
        | Some db ->
          Result.map (fun e -> Some (e.fingerprint ^ "|")) (lookup t db)
      in
      match scoped with
      | Error m -> Error m
      | Ok key_prefix ->
        let dropped =
          match t.cache with
          | None -> 0
          | Some cache -> Cache.invalidate ?key_prefix cache touch
        in
        Ok
          [
            ("status", Json.String "ok");
            ("rel", Json.String rel);
            ("invalidated", Json.Int dropped);
            ( "remaining",
              Json.Int
                (match t.cache with None -> 0 | Some c -> Cache.size c) );
          ]))

let stats_fields t j =
  let full = Option.value (Wire.bool_field "full" j) ~default:false in
  let dbs =
    locked t (fun () ->
        Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.registry [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, e) ->
           Json.Obj
             [
               ("name", Json.String name);
               ("fingerprint", Json.String e.fingerprint);
               ("facts", Json.Int (Instance.cardinal e.instance));
             ])
  in
  let cache_j =
    match t.cache with
    | None -> Json.Null
    | Some c ->
      let tot = Cache.totals c in
      Json.Obj
        [
          ("capacity", Json.Int (Cache.capacity c));
          ("size", Json.Int (Cache.size c));
          ("hits", Json.Int tot.Cache.hits);
          ("misses", Json.Int tot.Cache.misses);
          ("evictions", Json.Int tot.Cache.evictions);
          ("bypasses", Json.Int tot.Cache.bypasses);
        ]
  in
  [
    ("status", Json.String "ok");
    ("uptime_ms", Json.Float (Obs.now_ms () -. t.started_ms));
    ("served", Json.Int (Atomic.get t.served));
    ("databases", Json.List dbs);
    ("cache", cache_j);
  ]
  @ if full then [ ("metrics", Obs.to_json (Obs.snapshot ())) ] else []

(* the [trace] verb: dump the ring buffer as Chrome trace-event JSON
   (loadable in about:tracing / Perfetto); [clear:true] empties the ring
   after the dump *)
let trace_fields j =
  let clear = Option.value (Wire.bool_field "clear" j) ~default:false in
  let evs = Trace.events () in
  let fields =
    [
      ("status", Json.String "ok");
      ("events", Json.Int (List.length evs));
      ("dropped", Json.Int (Trace.dropped ()));
      ("chrome", Trace.chrome evs);
    ]
  in
  if clear then Trace.clear ();
  fields

(* the [metrics] verb: OpenMetrics text exposition of the whole Obs
   registry, for a scraper watching the server *)
let metrics_fields () =
  [
    ("status", Json.String "ok");
    ("content_type", Json.String Openmetrics.content_type);
    ("body", Json.String (Openmetrics.expose (Obs.snapshot ())));
  ]

let handle_line t ~idx line =
  Obs.incr t.c_requests;
  let continue j = (j, `Continue) in
  match Json.of_string line with
  | exception Json.Parse_error m ->
    Obs.incr t.c_errors;
    continue
      (Wire.row ~idx
         ~id:("line-" ^ string_of_int idx)
         ~op:"?"
         (Wire.error_fields ("json: " ^ m)))
  | j -> (
    let id = Option.value (Wire.str_field "id" j) ~default:(string_of_int idx) in
    let op = Option.value (Wire.str_field "op" j) ~default:"?" in
    let reply fields = Wire.row ~idx ~id ~op fields in
    let of_result = function
      | Ok fields -> reply fields
      | Error m ->
        Obs.incr t.c_errors;
        reply (Wire.error_fields m)
    in
    match op with
    | "load" -> continue (of_result (load_fields t j))
    | "unload" -> continue (of_result (unload_fields t j))
    | "query" -> continue (of_result (query_fields t j))
    | "batch" -> continue (of_result (batch_fields t j))
    | "invalidate" -> continue (of_result (invalidate_fields t j))
    | "stats" -> continue (reply (stats_fields t j))
    | "trace" -> continue (reply (trace_fields j))
    | "metrics" -> continue (reply (metrics_fields ()))
    (* liveness probe: constant-work, constant-shape answer, so clients
       (and cram tests) can match it byte-for-byte *)
    | "ping" ->
      continue
        (reply [ ("status", Json.String "ok"); ("pong", Json.Bool true) ])
    | "shutdown" ->
      ( reply
          [
            ("status", Json.String "ok");
            ("served", Json.Int (Atomic.get t.served));
          ],
        `Shutdown )
    | other ->
      continue (of_result (Error (Printf.sprintf "unknown op %S" other))))

(* ---- the loop -------------------------------------------------------- *)

let oversized_row ~idx ~max =
  Wire.row ~idx
    ~id:("line-" ^ string_of_int idx)
    ~op:"?"
    (Wire.error_fields (Printf.sprintf "request line exceeds %d bytes" max))

let serve ?(max_line_bytes = Wire.default_max_line_bytes) t ic oc =
  let respond row =
    output_string oc (Json.to_string row);
    output_char oc '\n';
    flush oc
  in
  let rec loop idx =
    match Wire.input_line_bounded ~max:max_line_bytes ic with
    | `Eof -> `Eof
    | `Oversized _ ->
      (* the over-long line was drained, never buffered whole; the
         stream stays in sync and the client gets a structured row *)
      Obs.incr t.c_requests;
      Obs.incr t.c_errors;
      respond (oversized_row ~idx ~max:max_line_bytes);
      loop (idx + 1)
    | `Line line ->
      if String.trim line = "" then loop idx
      else begin
        let row, k = handle_line t ~idx line in
        respond row;
        match k with `Continue -> loop (idx + 1) | `Shutdown -> `Shutdown
      end
  in
  loop 0
