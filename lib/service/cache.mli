(** A bounded LRU cache with observability: the storage layer of the
    semantic query cache.

    Keys are strings (the {!Canon} canonical forms); values are
    whatever the caller stores ([Server] stores graded answers).  Every
    entry carries the cost (milliseconds) of computing it, so a hit can
    account the work it saved.

    Entries may carry a {!Certdb_analysis.Footprint.t} describing what
    part of the database their value depends on; {!invalidate} then
    drops exactly the entries whose footprint overlaps an update touch
    (entries without a footprint are dropped conservatively), so a
    future insert/delete verb only pays for the queries it can actually
    affect.

    Counters (under the cache's namespace, default [service.cache]):
    [<ns>.hit], [<ns>.miss], [<ns>.evict], [<ns>.bypass], plus
    [<ns>.footprint_hit] / [<ns>.footprint_skip] counting entries
    invalidated / preserved by footprint-overlap checks; the
    [<ns>.size] gauge tracks occupancy and the [<ns>.saved_ms] timer
    receives each hit's saved cost (so [snapshot] reports total and
    p50/p95 of the work the cache absorbed).  Local totals are also
    kept per cache (reported by the server's [stats] verb, independent
    of [Obs.reset]).

    Operations are mutex-guarded: the server touches the cache only
    from its coordinating domain, but the guard makes the structure
    safe to share. *)

type 'a t

(** [create ?namespace ~capacity ()] — [capacity <= 0] means the cache
    stores nothing (every [find] misses, every [add] is dropped). *)
val create : ?namespace:string -> capacity:int -> unit -> 'a t

(** [find t key] — [Some (value, cost_ms)] and a promotion to
    most-recently-used on a hit. *)
val find : 'a t -> string -> ('a * float) option

(** [add t key ?footprint ~cost_ms v] inserts or refreshes [key],
    evicting the least recently used entry when over capacity.
    [footprint] (if any) scopes the entry for {!invalidate}. *)
val add :
  'a t ->
  string ->
  ?footprint:Certdb_analysis.Footprint.t ->
  cost_ms:float ->
  'a ->
  unit

(** [invalidate ?key_prefix t touch] — drop every entry (with a key
    extending [key_prefix], default all) whose footprint overlaps
    [touch], or that has no footprint; returns the number dropped.
    Surviving entries bump [<ns>.footprint_skip], dropped ones
    [<ns>.footprint_hit].  [key_prefix] lets the server scope the sweep
    to one database's fingerprint. *)
val invalidate :
  ?key_prefix:string -> 'a t -> Certdb_analysis.Footprint.touch -> int

(** [bypass t] records a request that could not use the cache (no
    canonical key, or the request opted out). *)
val bypass : 'a t -> unit

val size : 'a t -> int
val capacity : 'a t -> int

type totals = { hits : int; misses : int; evictions : int; bypasses : int }

val totals : 'a t -> totals

(** Drop every entry (totals survive). *)
val clear : 'a t -> unit
