(** A bounded LRU cache with observability: the storage layer of the
    semantic query cache.

    Keys are strings (the {!Canon} canonical forms); values are
    whatever the caller stores ([Server] stores graded answers).  Every
    entry carries the cost (milliseconds) of computing it, so a hit can
    account the work it saved.

    Counters (under the cache's namespace, default [service.cache]):
    [<ns>.hit], [<ns>.miss], [<ns>.evict], [<ns>.bypass]; the
    [<ns>.size] gauge tracks occupancy and the [<ns>.saved_ms] timer
    receives each hit's saved cost (so [snapshot] reports total and
    p50/p95 of the work the cache absorbed).  Local totals are also
    kept per cache (reported by the server's [stats] verb, independent
    of [Obs.reset]).

    Operations are mutex-guarded: the server touches the cache only
    from its coordinating domain, but the guard makes the structure
    safe to share. *)

type 'a t

(** [create ?namespace ~capacity ()] — [capacity <= 0] means the cache
    stores nothing (every [find] misses, every [add] is dropped). *)
val create : ?namespace:string -> capacity:int -> unit -> 'a t

(** [find t key] — [Some (value, cost_ms)] and a promotion to
    most-recently-used on a hit. *)
val find : 'a t -> string -> ('a * float) option

(** [add t key ~cost_ms v] inserts or refreshes [key], evicting the
    least recently used entry when over capacity. *)
val add : 'a t -> string -> cost_ms:float -> 'a -> unit

(** [bypass t] records a request that could not use the cache (no
    canonical key, or the request opted out). *)
val bypass : 'a t -> unit

val size : 'a t -> int
val capacity : 'a t -> int

type totals = { hits : int; misses : int; evictions : int; bypasses : int }

val totals : 'a t -> totals

(** Drop every entry (totals survive). *)
val clear : 'a t -> unit
