(** A robust connector for the {!Server} JSONL protocol over a Unix
    socket: per-request timeouts, bounded retries with exponential
    backoff and deterministic jitter, and idempotent [id]-keyed
    response matching.

    Retrying is safe because every attempt of one {!request} reuses the
    {e same} request id: a late response to an earlier attempt of the
    same request is still a valid answer, while any other row (a crash
    row with a synthetic id, garbage from a torn frame) is discarded.
    Any wire anomaly — timeout, EOF, an unparsable line — drops the
    connection before the retry, so a stale response can never be
    matched to a later request.

    Overload cooperation: a [{"status":"overloaded","retry_after_ms":F}]
    shed row makes the client back off for at least [F] ms before the
    bounded retry ([service.client.overloaded] counts them); a shed row
    {e without} the hint is reported as a protocol error, not retried.

    Connections are lazy (first {!request} dials) and re-dialed after
    any drop; {!connect} itself never touches the socket. *)

module Json = Certdb_obs.Obs.Json

module Config : sig
  type t = {
    request_timeout_ms : float;  (** per-attempt response deadline *)
    max_retries : int;  (** attempts beyond the first *)
    backoff_ms : float;  (** backoff base, doubled per attempt *)
    max_backoff_ms : float;  (** backoff cap (before the shed hint) *)
    jitter_seed : int;
        (** seeds the deterministic jitter stream; give concurrent
            clients distinct seeds to decorrelate retry storms *)
  }

  (** 2 s timeout, 5 retries, 10 ms base, 2 s cap, seed 1. *)
  val default : t

  val make :
    ?request_timeout_ms:float ->
    ?max_retries:int ->
    ?backoff_ms:float ->
    ?max_backoff_ms:float ->
    ?jitter_seed:int ->
    unit ->
    t
end

type t

val connect : ?config:Config.t -> path:string -> unit -> t

(** [request t fields] sends one request object and returns the
    response row whose [id] matches.  [fields] should carry ["op"]
    (and its operands); the [id] field is managed by the client —
    pass [?id] to pin it, otherwise a fresh one is assigned.
    [Error msg] after the retry budget is exhausted or on a protocol
    violation. *)
val request :
  t -> ?id:string -> (string * Json.t) list -> (Json.t, string) result

(** [ping t] — one [{"op":"ping"}] round trip; [Ok latency_ms]. *)
val ping : t -> (float, string) result

val close : t -> unit
