module Obs = Certdb_obs.Obs
module Footprint = Certdb_analysis.Footprint

(* Intrusive doubly-linked LRU list over hashtable entries: O(1) find /
   add / evict.  [lru_prev] points toward the least recently used end. *)
type 'a node = {
  key : string;
  mutable value : 'a;
  mutable cost_ms : float;
  mutable footprint : Footprint.t option;
  mutable prev : 'a node option;  (* toward LRU *)
  mutable next : 'a node option;  (* toward MRU *)
}

type totals = { hits : int; misses : int; evictions : int; bypasses : int }

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable lru : 'a node option;  (* least recently used *)
  mutable mru : 'a node option;  (* most recently used *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bypasses : int;
  c_hit : Obs.counter;
  c_miss : Obs.counter;
  c_evict : Obs.counter;
  c_bypass : Obs.counter;
  c_fp_hit : Obs.counter;
  c_fp_skip : Obs.counter;
  g_size : Obs.gauge;
  t_saved : Obs.timer;
}

let create ?(namespace = "service.cache") ~capacity () =
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    lru = None;
    mru = None;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    bypasses = 0;
    c_hit = Obs.counter (namespace ^ ".hit");
    c_miss = Obs.counter (namespace ^ ".miss");
    c_evict = Obs.counter (namespace ^ ".evict");
    c_bypass = Obs.counter (namespace ^ ".bypass");
    c_fp_hit = Obs.counter (namespace ^ ".footprint_hit");
    c_fp_skip = Obs.counter (namespace ^ ".footprint_skip");
    g_size = Obs.gauge (namespace ^ ".size");
    t_saved = Obs.timer (namespace ^ ".saved_ms");
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* unlink [n] from the list (must be a member) *)
let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.lru <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.mru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.prev <- t.mru;
  n.next <- None;
  (match t.mru with Some m -> m.next <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some n ->
    unlink t n;
    push_mru t n;
    t.hits <- t.hits + 1;
    Obs.incr t.c_hit;
    Obs.record_ms t.t_saved n.cost_ms;
    Some (n.value, n.cost_ms)
  | None ->
    t.misses <- t.misses + 1;
    Obs.incr t.c_miss;
    None

let add t key ?footprint ~cost_ms value =
  if t.capacity > 0 then
    locked t @@ fun () ->
    (match Hashtbl.find_opt t.table key with
    | Some n ->
      n.value <- value;
      n.cost_ms <- cost_ms;
      n.footprint <- footprint;
      unlink t n;
      push_mru t n
    | None ->
      let n = { key; value; cost_ms; footprint; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_mru t n;
      if Hashtbl.length t.table > t.capacity then begin
        match t.lru with
        | Some victim ->
          unlink t victim;
          Hashtbl.remove t.table victim.key;
          t.evictions <- t.evictions + 1;
          Obs.incr t.c_evict
        | None -> ()
      end);
    Obs.set_int t.g_size (Hashtbl.length t.table)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let invalidate ?(key_prefix = "") t touch =
  locked t @@ fun () ->
  let victims = ref [] in
  Hashtbl.iter
    (fun _ n ->
      if starts_with ~prefix:key_prefix n.key then
        (* no footprint on the entry means we know nothing about what it
           reads: invalidate conservatively *)
        let hit =
          match n.footprint with
          | None -> true
          | Some fp -> Footprint.overlaps fp touch
        in
        if hit then begin
          Obs.incr t.c_fp_hit;
          victims := n :: !victims
        end
        else Obs.incr t.c_fp_skip)
    t.table;
  List.iter
    (fun n ->
      unlink t n;
      Hashtbl.remove t.table n.key)
    !victims;
  Obs.set_int t.g_size (Hashtbl.length t.table);
  List.length !victims

let bypass t =
  locked t @@ fun () ->
  t.bypasses <- t.bypasses + 1;
  Obs.incr t.c_bypass

let size t = locked t @@ fun () -> Hashtbl.length t.table
let capacity t = t.capacity

let totals t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    bypasses = t.bypasses;
  }

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.lru <- None;
  t.mru <- None;
  Obs.set_int t.g_size 0
