module Obs = Certdb_obs.Obs
module Fault = Certdb_obs.Fault
module Json = Obs.Json

module Config = struct
  type t = {
    conns : int;
    queue_capacity : int;
    request_timeout_ms : float option;
    max_line_bytes : int;
    backlog : int;
    retry_after_ms : float;
  }

  let make ?(conns = 4) ?(queue_capacity = 16) ?request_timeout_ms
      ?(max_line_bytes = Wire.default_max_line_bytes) ?(backlog = 64)
      ?(retry_after_ms = 50.0) () =
    {
      conns = max 1 conns;
      queue_capacity = max 1 queue_capacity;
      request_timeout_ms;
      max_line_bytes = max 1 max_line_bytes;
      backlog = max 1 backlog;
      retry_after_ms = Float.max 1.0 retry_after_ms;
    }

  let default = make ()
end

let c_accepted = Obs.counter "service.server.accepted"
let c_shed = Obs.counter "service.server.shed"
let c_crashed = Obs.counter "service.server.crashed"
let c_timeouts = Obs.counter "service.server.timeouts"
let g_inflight = Obs.gauge "service.server.inflight"
let g_queue = Obs.gauge "service.server.queue_depth"

type t = {
  server : Server.t;
  config : Config.t;
  stop : bool Atomic.t;
  queue : Unix.file_descr Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  inflight : int Atomic.t;
}

(* Drain entry point for normal (non-signal) contexts: trip the flag and
   wake every idle worker.  The SIGTERM handler only sets the atomic —
   taking [mu] from a handler could deadlock against the interrupted
   acceptor — and relies on the acceptor noticing within its 0.1 s
   select slice, after which [run] broadcasts from here. *)
let request_stop t =
  Atomic.set t.stop true;
  Mutex.lock t.mu;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu

(* ---- wire fault injection -------------------------------------------- *)

(* The schedule (CERTDB_FAULT) selects {e which} hits are perturbed; the
   perturbation itself cycles deterministically with the hit index, so
   one spec exercises all three failure shapes. *)
let wire_action n =
  match n mod 3 with 1 -> `Drop | 2 -> `Delay_ms 5 | _ -> `Truncate

let faulty_read t reader =
  match
    Wire.Fd_reader.read_line ?timeout_ms:t.config.request_timeout_ms
      ~stop:t.stop ~max:t.config.max_line_bytes reader
  with
  | `Line line as ok -> (
    match Fault.check "service.read" with
    | None -> ok
    | Some n -> (
      match wire_action n with
      | `Drop -> `Dropped (* the request vanishes; the client must retry *)
      | `Delay_ms ms ->
        Unix.sleepf (float_of_int ms /. 1000.);
        ok
      | `Truncate -> `Line (String.sub line 0 (String.length line / 2))))
  | (`Eof | `Oversized _ | `Timeout | `Stopped) as other -> other

let faulty_write fd line =
  match Fault.check "service.write" with
  | None -> Wire.write_line fd line
  | Some n -> (
    match wire_action n with
    | `Drop -> Ok () (* the response vanishes *)
    | `Delay_ms ms ->
      Unix.sleepf (float_of_int ms /. 1000.);
      Wire.write_line fd line
    | `Truncate ->
      (* half a line and no newline: the client sees a torn frame and
         must drop the connection *)
      Wire.write_raw fd (String.sub line 0 (String.length line / 2)))

(* ---- connection handling --------------------------------------------- *)

(* best-effort echo of the request id on a crash row, so a retrying
   client can still match the response *)
let request_id ~idx line =
  match Json.of_string line with
  | j -> Option.value (Wire.str_field "id" j) ~default:(string_of_int idx)
  | exception _ -> "line-" ^ string_of_int idx

let timeout_row ~idx =
  Wire.row ~idx
    ~id:("line-" ^ string_of_int idx)
    ~op:"?"
    (Wire.error_fields "request timed out")

(* One request/response exchange per iteration.  Crash isolation is
   here: an exception out of [Server.handle_line] — a bug, or an
   injected [service.handler] fault — becomes a structured error row
   and the connection (and process) live on. *)
let handle_conn t fd =
  let reader = Wire.Fd_reader.create fd in
  let rec loop idx =
    match faulty_read t reader with
    | `Stopped | `Eof -> `Closed
    | `Timeout ->
      (* reclaim the worker: one stalled client must not hold a pool
         slot forever.  Best-effort notice, then hang up. *)
      Obs.incr c_timeouts;
      ignore (Wire.write_line fd (Json.to_string (timeout_row ~idx)));
      `Closed
    | `Oversized _ -> (
      match
        faulty_write fd
          (Json.to_string
             (Server.oversized_row ~idx ~max:t.config.max_line_bytes))
      with
      | Ok () -> loop (idx + 1)
      | Error _ -> `Closed)
    | `Dropped -> loop (idx + 1)
    | `Line line ->
      if String.trim line = "" then loop idx
      else begin
        let row, k =
          try
            Fault.hit "service.handler";
            Server.handle_line t.server ~idx line
          with e ->
            Obs.incr c_crashed;
            ( Wire.row ~idx ~id:(request_id ~idx line) ~op:"?"
                (Wire.error_fields
                   ("handler crashed: " ^ Wire.describe_exn e)),
              `Continue )
        in
        match faulty_write fd (Json.to_string row) with
        | Error _ -> `Closed (* client hung up mid-response (EPIPE) *)
        | Ok () -> (
          match k with `Continue -> loop (idx + 1) | `Shutdown -> `Shutdown)
      end
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> loop 0)

(* ---- the pool -------------------------------------------------------- *)

let rec worker t =
  Mutex.lock t.mu;
  let rec next () =
    (* stop first: connections still queued at drain are shed by [run],
       not served *)
    if Atomic.get t.stop then None
    else if not (Queue.is_empty t.queue) then begin
      let fd = Queue.pop t.queue in
      Obs.set_int g_queue (Queue.length t.queue);
      Some fd
    end
    else begin
      Condition.wait t.nonempty t.mu;
      next ()
    end
  in
  let conn = next () in
  Mutex.unlock t.mu;
  match conn with
  | None -> ()
  | Some fd ->
    Obs.set_int g_inflight (1 + Atomic.fetch_and_add t.inflight 1);
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          Obs.set_int g_inflight (Atomic.fetch_and_add t.inflight (-1) - 1))
        (fun () -> handle_conn t fd)
    in
    (match outcome with `Shutdown -> request_stop t | `Closed -> ());
    worker t

(* ---- admission ------------------------------------------------------- *)

let shed t fd ~depth =
  Obs.incr c_shed;
  (* the hint grows with pressure: a queue at capacity doubles it *)
  let retry_after_ms =
    t.config.Config.retry_after_ms
    *. (1.0 +. (float_of_int depth /. float_of_int t.config.Config.queue_capacity))
  in
  ignore
    (Wire.write_line fd
       (Json.to_string (Json.Obj (Wire.overloaded_fields ~retry_after_ms))));
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t fd =
  Mutex.lock t.mu;
  let depth = Queue.length t.queue in
  if depth >= t.config.Config.queue_capacity then begin
    Mutex.unlock t.mu;
    shed t fd ~depth
  end
  else begin
    Queue.push fd t.queue;
    Obs.set_int g_queue (depth + 1);
    Condition.signal t.nonempty;
    Mutex.unlock t.mu
  end

(* ---- accept loop ----------------------------------------------------- *)

(* select in 0.1 s slices so a drain (shutdown verb, SIGTERM) is noticed
   promptly; transient accept errors back off exponentially instead of
   tearing down the listener. *)
let acceptor t sock =
  let backoff = ref 0.01 in
  let rec loop () =
    if not (Atomic.get t.stop) then
      match Unix.select [ sock ] [] [] 0.1 with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept sock with
        | fd, _ ->
          backoff := 0.01;
          Obs.incr c_accepted;
          admit t fd;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception
            Unix.Unix_error
              ( ( Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK
                | Unix.EMFILE | Unix.ENFILE | Unix.ENOMEM ),
                _,
                _ ) ->
          Unix.sleepf !backoff;
          backoff := Float.min 1.0 (!backoff *. 2.0);
          loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ---- lifecycle ------------------------------------------------------- *)

let run ?(config = Config.default) server ~path =
  (* stale socket from a crashed predecessor *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (* a client that disconnects mid-response must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    {
      server;
      config;
      stop = Atomic.make false;
      queue = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      inflight = Atomic.make 0;
    }
  in
  (* SIGTERM drains like the shutdown verb.  Handler body: one atomic
     store (see [request_stop]); accept also wakes on the EINTR. *)
  let prev_term =
    try
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Atomic.set t.stop true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (match prev_term with
      | Some b -> (
        try Sys.set_signal Sys.sigterm b with Invalid_argument _ -> ())
      | None -> ());
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock t.config.Config.backlog;
      let workers =
        List.init t.config.Config.conns (fun _ ->
            Domain.spawn (fun () -> worker t))
      in
      acceptor t sock;
      (* drain: stop accepting (done — the acceptor only returns once
         [stop] is set), wake idle workers, finish in-flight requests *)
      request_stop t;
      List.iter Domain.join workers;
      (* connections admitted but never started get a shed row, not a
         silent hangup *)
      Mutex.lock t.mu;
      let leftover = List.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      Obs.set_int g_queue 0;
      Mutex.unlock t.mu;
      List.iter (fun fd -> shed t fd ~depth:0) leftover)
