(** The JSONL wire format shared by [certdb batch] and [certdb serve]:
    request parsing (field accessors, per-request {!Engine.Limits.t}
    admission, the CQ concrete syntax), response rows, and the batch
    task table (op name → budgeted work closure).

    One JSON object per line in both directions.  Every response row
    carries [id] (echoed from the request, defaulting to the line
    index), [index] (the 0-based line index) and [op]; malformed
    requests become structured [status:"error"] rows instead of killing
    the stream. *)

open Certdb_relational
module Json = Certdb_obs.Obs.Json
module Engine = Certdb_csp.Engine

(** {1 Conjunctive-query concrete syntax}

    ["ans(x,y) :- R(x,z), S(z,y)"] — variables are written [_x] inside
    atoms (the instance parser's null syntax); head variables may drop
    the underscore. *)

val parse_cq_result : string -> (Certdb_query.Cq.t, string) result

(** {1 JSON field accessors} *)

val str_field : string -> Json.t -> string option
val int_field : string -> Json.t -> int option

(** [int_list_field k j] — a homogeneous array of ints; [None] when the
    field is absent, not an array, or mixes in non-ints. *)
val int_list_field : string -> Json.t -> int list option

(** [float_field k j] accepts both [Int] and [Float] payloads. *)
val float_field : string -> Json.t -> float option

val bool_field : string -> Json.t -> bool option

(** [limits_of_json ?cancel j] — per-request admission: the
    [node_budget], [backtrack_budget] and [timeout_ms] fields of a
    request object, absent fields meaning unlimited. *)
val limits_of_json : ?cancel:Engine.Cancel.t -> Json.t -> Engine.Limits.t

(** {1 Response rows} *)

(** [row ~idx ~id ~op fields] — the response envelope:
    [{"id":…,"index":…,"op":…,…fields}]. *)
val row : idx:int -> id:string -> op:string -> (string * Json.t) list -> Json.t

val error_fields : string -> (string * Json.t) list

(** [overloaded_fields ~retry_after_ms] — the admission-control shed
    row: [{"status":"overloaded","retry_after_ms":F}].  Clients back
    off for at least [retry_after_ms] before retrying. *)
val overloaded_fields : retry_after_ms:float -> (string * Json.t) list

(** [describe_exn e] — human-readable rendering, special-casing injected
    faults ([Certdb_obs.Fault.Injected]). *)
val describe_exn : exn -> string

(** {1 Batch tasks} *)

(** A parsed batch line: the request's own limits, a closure solving
    the problem under the (possibly escalated) limits of the current
    attempt, and an optional named cross-backend fallback the retry
    ladder runs when every primary attempt trips. *)
type work = {
  w_limits : Engine.Limits.t;
  w_run :
    Engine.Limits.t ->
    [ `Sat of (string * Json.t) list | `Unsat | `Unknown of Engine.reason ];
  w_fallback :
    (string
    * (Engine.Limits.t ->
      [ `Sat of (string * Json.t) list | `Unsat | `Unknown of Engine.reason ]))
    option;
}

(** [(id, op, work-or-parse-error)] *)
type task = string * string * (work, string) result

(** [parse_task ?cancel ?backend idx line] parses one JSONL batch
    request ([op] ∈ [leq] / [member] / [certain]).  Any parse failure —
    bad JSON, missing field, unknown op — is [Error msg], never an
    exception.  [cancel] is threaded into the task's limits so a
    fail-fast trip aborts in-flight searches.

    [backend] (default [Csp]) picks the solver for [certain] tasks; a
    per-line ["backend": "csp"|"sat"|"auto"] field overrides it.
    [Sat] makes the CDCL backend primary with a CSP fallback rung;
    [Auto] consults {!Certdb_analysis.Plan.route_cq}'s certificates;
    [Csp] behaves exactly as before (no fallback). *)
val parse_task :
  ?cancel:Engine.Cancel.t ->
  ?backend:Certdb_sat.Backend.choice ->
  int ->
  string ->
  task

(** [run_task ~policy (idx, task)] runs a parsed task under the
    {!Certdb_csp.Resilient} retry ladder — crossing to the task's
    fallback backend on exhaustion, if it has one — and renders the
    response row ([status] ∈ [sat] / [unsat] / [unknown] / [error],
    plus [attempts] when the policy retries). *)
val run_task :
  policy:Certdb_csp.Resilient.Policy.t -> int * task -> Json.t

val parse_instance_result : string -> (Instance.t, string) result

(** {1 Bounded line IO}

    Request lines are capped: an over-long line is drained to its
    newline (so the stream stays in sync) but never buffered whole, and
    reported as [`Oversized total_bytes] for the caller to answer with
    a structured error row. *)

(** 1 MiB. *)
val default_max_line_bytes : int

(** [input_line_bounded ?max ic] — bounded [input_line] over a channel
    (the stdio server).  A partial final line without a newline is
    still [`Line]. *)
val input_line_bounded :
  ?max:int -> In_channel.t -> [ `Line of string | `Oversized of int | `Eof ]

(** Buffered line reads over a raw [Unix] fd with per-call deadlines —
    the supervisor's connection reader.  [Unix.select] runs in ≤100 ms
    slices polling [stop], so drain interrupts an idle read promptly;
    [EINTR] is always retried.  A partial line at socket EOF is a torn
    request and reads as [`Eof]. *)
module Fd_reader : sig
  type t

  val create : Unix.file_descr -> t

  val read_line :
    ?timeout_ms:float ->
    ?stop:bool Atomic.t ->
    max:int ->
    t ->
    [ `Line of string | `Oversized of int | `Timeout | `Eof | `Stopped ]
end

(** [write_line fd line] writes [line ^ "\n"] whole (short writes and
    [EINTR] retried); any other [Unix] error — [EPIPE] from a client
    that hung up mid-response — is [Error msg], never an exception. *)
val write_line : Unix.file_descr -> string -> (unit, string) result

val write_raw : Unix.file_descr -> string -> (unit, string) result
