open Certdb_values
module Cq = Certdb_query.Cq
module Fo = Certdb_query.Fo
module Instance = Certdb_relational.Instance
module String_map = Map.Make (String)

let default_budget = 50_000

(* ---- canonical CQ keys ----------------------------------------------

   After minimization the query is a core: hom-equivalent queries have
   isomorphic cores, so a canonical encoding of the core modulo variable
   renaming and atom reordering keys the whole ∼-class.  The encoding of
   an atom sequence renders constants verbatim, head variables by their
   first head position (they may not be renamed apart), and body
   variables by canonical ids assigned in order of first use; the
   canonical encoding of the query is the lexicographically least
   rendering over all atom orders.  Branch and bound: at each step only
   atoms whose rendering under the current assignment is minimal are
   explored (the least sequence must start with a least element), and a
   branch whose prefix already exceeds the best known sequence is cut. *)

exception Budget_exceeded

type enc_state = { mapping : int String_map.t; next : int }

(* encode one atom under [st]; fresh body variables are assigned ids
   left to right *)
let encode_atom head_index st (rel, args) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf rel;
  Buffer.add_char buf '(';
  let st =
    List.fold_left
      (fun st t ->
        let st, rendered =
          match t with
          | Fo.Val v -> (st, "c:" ^ Value.to_string v)
          | Fo.Var x -> (
            match List.assoc_opt x head_index with
            | Some i -> (st, Printf.sprintf "h%d" i)
            | None -> (
              match String_map.find_opt x st.mapping with
              | Some k -> (st, Printf.sprintf "v%d" k)
              | None ->
                ( {
                    mapping = String_map.add x st.next st.mapping;
                    next = st.next + 1;
                  },
                  Printf.sprintf "v%d" st.next )))
        in
        Buffer.add_string buf rendered;
        Buffer.add_char buf ',';
        st)
      st args
  in
  Buffer.add_char buf ')';
  (Buffer.contents buf, st)

(* lexicographic order on atom-encoding sequences (all candidates have
   the same length, the number of core atoms) *)
let rec seq_lt a b =
  match (a, b) with
  | [], _ -> false
  | _ :: _, [] -> false
  | x :: a, y :: b ->
    let c = String.compare x y in
    if c < 0 then true else if c > 0 then false else seq_lt a b

(* does [prefix] already exceed [best] (so no completion of it can be
   the minimum)? *)
let rec prefix_exceeds prefix best =
  match (prefix, best) with
  | [], _ -> false
  | _ :: _, [] -> false
  | x :: prefix, y :: best ->
    let c = String.compare x y in
    if c > 0 then true else if c < 0 then false else prefix_exceeds prefix best

let canonical_body ~budget head_index atoms =
  let nodes = ref 0 in
  let best : string list option ref = ref None in
  let rec go prefix_rev state remaining =
    incr nodes;
    if !nodes > budget then raise Budget_exceeded;
    match remaining with
    | [] ->
      let full = List.rev prefix_rev in
      if match !best with None -> true | Some b -> seq_lt full b then
        best := Some full
    | _ ->
      let encoded =
        List.mapi
          (fun i atom ->
            let enc, st = encode_atom head_index state atom in
            (i, enc, st))
          remaining
      in
      (* the least complete sequence must start with a least next
         element, so only minimally-encoded atoms are explored; among
         them, branches whose prefix already exceeds the best known
         sequence are cut (re-checked per sibling, since an earlier
         sibling may have lowered the bar) *)
      let min_enc =
        List.fold_left
          (fun acc (_, enc, _) ->
            match acc with
            | None -> Some enc
            | Some m -> if String.compare enc m < 0 then Some enc else acc)
          None encoded
        |> Option.get
      in
      List.iter
        (fun (i, enc, st) ->
          if String.equal enc min_enc then begin
            let prefix_rev = enc :: prefix_rev in
            let viable =
              match !best with
              | None -> true
              | Some b -> not (prefix_exceeds (List.rev prefix_rev) b)
            in
            if viable then
              go prefix_rev st (List.filteri (fun j _ -> j <> i) remaining)
          end)
        encoded
  in
  match go [] { mapping = String_map.empty; next = 0 } atoms with
  | () -> Option.map (String.concat ";") !best
  | exception Budget_exceeded -> None

let cq_key ?(budget = default_budget) q =
  let q = Cq.minimize q in
  (* head variables are pinned to their first head position: the head of
     an equivalent query must expose the same variable pattern *)
  let head_index =
    List.rev
      (snd
         (List.fold_left
            (fun (i, acc) x ->
              ( i + 1,
                if List.mem_assoc x acc then acc else (x, i) :: acc ))
            (0, []) q.Cq.head))
  in
  let head_sig =
    String.concat ","
      (List.map
         (fun x -> string_of_int (List.assoc x head_index))
         q.Cq.head)
  in
  let atoms = List.map (fun a -> (a.Cq.rel, a.Cq.args)) q.Cq.atoms in
  Option.map
    (fun body -> Printf.sprintf "cq:[%s]|%s" head_sig body)
    (canonical_body ~budget head_index atoms)

(* ---- database fingerprints ------------------------------------------ *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let db_fingerprint d =
  (* renumber nulls by increasing id: the parser's global null supply is
     monotone in source order, so reloading the same text renumbers
     identically *)
  let renumber =
    let _, m =
      Value.Set.fold
        (fun v (i, m) -> (i + 1, Value.Map.add v i m))
        (Instance.nulls d) (0, Value.Map.empty)
    in
    m
  in
  let render_value = function
    | Value.Const _ as v -> "c:" ^ Value.to_string v
    | Value.Null _ as v ->
      Printf.sprintf "n%d" (Value.Map.find v renumber)
  in
  let rendered =
    List.map
      (fun (f : Instance.fact) ->
        f.rel ^ "("
        ^ String.concat "," (List.map render_value (Array.to_list f.args))
        ^ ")")
      (Instance.facts d)
    |> List.sort String.compare
  in
  Printf.sprintf "%016Lx" (fnv1a64 (String.concat ";" rendered))
