(** The long-running certain-answer server: a named database registry, a
    core-canonical semantic cache, and a JSONL request loop served over
    stdio or a Unix socket.

    {1 Protocol}

    One JSON object per line in both directions.  Verbs:

    {v
    {"op":"load","name":"d","source":"R(1,2); R(2,_x)"}
    {"op":"unload","name":"d"}
    {"op":"query","db":"d","query":"ans() :- R(_x,_y), R(_y,_x)",
     "node_budget":N?,"backtrack_budget":N?,"timeout_ms":F?,
     "max_attempts":N?,"no_cache":true?,"explain":true?}
    {"op":"batch","requests":[ <query objects> ],"explain":true?}
    {"op":"invalidate","rel":"R","cols":[1,3]?,"db":"d"?}
    {"op":"stats","full":true?}
    {"op":"trace","clear":true?}
    {"op":"metrics"}
    {"op":"ping"}
    {"op":"shutdown"}
    v}

    Responses echo [id] (default: the request's line index), [index]
    and [op].  A Boolean query answers
    [{"status":"ok","grade":"exact"|"lower-bound","certain":b,
    "cached":b,"latency_ms":f}]; a non-Boolean query answers
    [{"status":"ok","answers":"ans(1); ans(2)",...}] (naïve evaluation,
    always exact by Theorem 4).  [ping] answers
    [{"status":"ok","pong":true}] — a constant-work liveness probe.
    Malformed or failing requests produce [{"status":"error","error":msg}]
    rows and the loop keeps serving; only [shutdown] (or EOF) ends it.
    A request line longer than the serve loop's cap is drained and
    answered with an [error] row ("request line exceeds N bytes")
    without ever being buffered whole.

    Under the concurrent socket front end ({!Supervisor}), an
    overloaded server sheds new connections with one
    [{"status":"overloaded","retry_after_ms":F}] row instead of
    queueing unboundedly; {!Client} honors the hint.

    {1 Explainability}

    Every [query] runs under a request-rooted {!Certdb_obs.Trace} trace;
    a [batch] shares one trace across its worker-domain tasks.  With
    [explain:true] the response row gains a ["trace"] object — the
    per-request span tree with the plan route, resilient-ladder rung and
    attempt count, cache disposition ([hit]/[miss]/[bypass]/[off]) and
    search effort (node/backtrack counter deltas, approximate when other
    requests compute concurrently).  Responses without [explain] are
    byte-identical to the pre-trace protocol.  The [trace] verb dumps
    the ring buffer as Chrome trace-event JSON; the [metrics] verb
    returns an OpenMetrics text exposition of the Obs registry.  When
    {!Config.t.slow_ms} is set, any request at least that slow emits a
    slow-query row (with its full span tree) to the [slow_sink] passed
    to {!create} (default: stderr).

    {1 Caching}

    Queries are cached by {!Canon.cq_key} of the query joined with
    {!Canon.db_fingerprint} of the target database, so hom-equivalent
    queries against the same instance share one entry — sound because
    certain answers are invariant under hom-equivalence.  [`Exact]
    answers (and non-Boolean answer sets) live under the plain key and
    are served to any request; a [`Lower_bound] produced under an
    exhausted budget is cached under a budget-scoped key and reused
    only by requests imposing the same budget, so a degraded answer is
    never served where a better one could be computed.  Engine
    [Unknown] outcomes never reach this layer (the resilient ladder
    grades them away) and are never cached.  Requests whose
    canonicalisation exceeds its node budget, or that set
    [no_cache:true], bypass the cache (counted).

    Every stored entry carries its query's
    {!Certdb_analysis.Footprint.t}.  The [invalidate] verb announces an
    update touching relation [rel] — whole tuples when [cols] is
    absent, only those 1-based columns when present — and drops exactly
    the entries whose footprint overlaps the touch, scoped to one
    database's fingerprint when [db] is given (counters
    [service.cache.footprint_hit] / [service.cache.footprint_skip]).
    It answers [{"status":"ok","rel":r,"invalidated":n,"remaining":n}].
    The insert/delete verbs that will call this implicitly land later;
    the invalidation path is live now. *)

open Certdb_relational
module Json = Certdb_obs.Obs.Json
module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient

module Config : sig
  type t = {
    cache_capacity : int;  (** [<= 0] disables the cache *)
    canon_budget : int;  (** {!Canon.cq_key} search budget *)
    policy : Resilient.Policy.t;  (** default retry policy *)
    default_limits : Engine.Limits.t;
        (** per-request admission default; request fields override *)
    jobs : int;  (** domain-pool width for the [batch] verb *)
    slow_ms : float option;
        (** slow-query threshold; [None] disables the slow log *)
    backend : Certdb_sat.Backend.choice;
        (** default solver backend for [certain] evaluations; a
            per-request ["backend"] field overrides it *)
  }

  (** 1024 entries, default policy, unlimited limits,
      [Engine.Batch.default_jobs] workers, no slow log, CSP backend. *)
  val default : t

  val make :
    ?cache_capacity:int ->
    ?canon_budget:int ->
    ?policy:Resilient.Policy.t ->
    ?default_limits:Engine.Limits.t ->
    ?jobs:int ->
    ?slow_ms:float ->
    ?backend:Certdb_sat.Backend.choice ->
    unit ->
    t
end

type t

(** [slow_sink] receives one JSON row per slow request (see
    {!Config.t.slow_ms}); defaults to a line on stderr. *)
val create : ?config:Config.t -> ?slow_sink:(Json.t -> unit) -> unit -> t

(** {1 Typed entry points (tests, benches)} *)

val load : t -> name:string -> source:string -> (Instance.t, string) result

(** A query answer: graded Boolean certainty, or the certain answer set
    of a non-Boolean query. *)
type answer =
  | Graded of [ `Exact of bool | `Lower_bound of bool ]
  | Tuples of Instance.t

(** [eval_query t ~db q] — the served evaluation: planner-routed,
    resilient, cache-checked.  The [bool] is [true] on a cache hit. *)
val eval_query :
  t ->
  db:string ->
  ?limits:Engine.Limits.t ->
  ?max_attempts:int ->
  ?backend:Certdb_sat.Backend.choice ->
  ?no_cache:bool ->
  Certdb_query.Cq.t ->
  (answer * bool, string) result

val cache_totals : t -> Cache.totals option

(** {1 The request loop} *)

(** [handle_line t ~idx line] — one request through the full wire path;
    returns the response row and whether the loop should continue. *)
val handle_line : t -> idx:int -> string -> Json.t * [ `Continue | `Shutdown ]

(** [oversized_row ~idx ~max] — the structured answer to a request line
    longer than [max] bytes (shared by {!serve} and the socket
    supervisor). *)
val oversized_row : idx:int -> max:int -> Json.t

(** [serve t ic oc] reads JSONL requests from [ic] and writes one
    response line per request to [oc] (flushed per line).  Lines longer
    than [max_line_bytes] (default {!Wire.default_max_line_bytes}) are
    drained — never buffered whole — and answered with an [error] row.

    Socket serving lives in {!Supervisor.run}: concurrent connections
    on a bounded domain pool with admission control, crash isolation
    and graceful drain. *)
val serve :
  ?max_line_bytes:int -> t -> in_channel -> out_channel -> [ `Shutdown | `Eof ]
