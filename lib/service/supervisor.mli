(** The concurrent socket front end of {!Server}: a bounded worker-domain
    pool with admission control, per-connection crash isolation, request
    deadlines and graceful drain.

    {1 Architecture}

    {!run} binds a Unix socket and splits work across [1 + conns]
    domains: the calling domain accepts (selecting in 0.1 s slices so a
    drain is noticed promptly, retrying [EINTR], backing off
    exponentially after transient accept errors), and [conns] worker
    domains each own one connection at a time, reading requests through
    {!Wire.Fd_reader} and answering through {!Server.handle_line}.

    {1 Admission control}

    Accepted connections wait in a bounded queue.  When the queue is at
    [queue_capacity], a new connection is {e shed}: it gets one
    [{"status":"overloaded","retry_after_ms":F}] row — the hint grows
    with queue pressure — and is closed.  Exposed as the
    [service.server.shed] counter and the [service.server.inflight] /
    [service.server.queue_depth] gauges.

    {1 Robustness}

    - An uncaught exception from the request handler (including an
      injected ["service.handler"] fault) becomes a structured [error]
      row ("handler crashed: …", echoing the request id when the line
      parses) plus a [service.server.crashed] count — never a dead
      worker or process.
    - A connection idle past [request_timeout_ms] is answered with a
      "request timed out" error row and closed, reclaiming the pool
      slot ([service.server.timeouts]).
    - Request lines longer than [max_line_bytes] are drained and
      answered with {!Server.oversized_row}.
    - [EPIPE]/[ECONNRESET] from a client that hung up close that
      connection only ([SIGPIPE] is ignored).

    {1 Drain}

    The [shutdown] verb (from any connection) and [SIGTERM] trip one
    stop flag: the acceptor stops accepting, in-flight requests finish,
    idle and queued connections are released (queued ones get a shed
    row), workers are joined and the socket file is unlinked.

    {1 Wire faults}

    When a ["service.read"] / ["service.write"] fault point is armed
    (see {!Certdb_obs.Fault}), selected hits perturb the wire instead of
    crashing: the perturbation cycles deterministically with the hit
    index — drop the frame, delay it 5 ms, or truncate it — so one
    [CERTDB_FAULT] spec exercises lost requests, lost responses, slow
    frames and torn frames.  {!Client} recovers from all of them. *)

module Config : sig
  type t = {
    conns : int;  (** worker domains, i.e. concurrent connections *)
    queue_capacity : int;  (** accepted-but-unserved bound; beyond it, shed *)
    request_timeout_ms : float option;
        (** per-request read deadline; [None] waits forever *)
    max_line_bytes : int;  (** request line cap *)
    backlog : int;  (** [Unix.listen] backlog *)
    retry_after_ms : float;  (** base backoff hint on shed rows *)
  }

  (** 4 conns, queue of 16, no deadline, 1 MiB lines, backlog 64,
      50 ms base hint. *)
  val default : t

  val make :
    ?conns:int ->
    ?queue_capacity:int ->
    ?request_timeout_ms:float ->
    ?max_line_bytes:int ->
    ?backlog:int ->
    ?retry_after_ms:float ->
    unit ->
    t
end

(** [run ?config server ~path] serves [server] on the Unix socket
    [path] until a client issues [shutdown] or the process receives
    [SIGTERM], then drains and unlinks the socket.  A stale socket file
    at [path] is unlinked at startup. *)
val run : ?config:Config.t -> Server.t -> path:string -> unit
