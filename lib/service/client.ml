module Obs = Certdb_obs.Obs
module Json = Obs.Json

module Config = struct
  type t = {
    request_timeout_ms : float;
    max_retries : int;
    backoff_ms : float;
    max_backoff_ms : float;
    jitter_seed : int;
  }

  let make ?(request_timeout_ms = 2000.0) ?(max_retries = 5)
      ?(backoff_ms = 10.0) ?(max_backoff_ms = 2000.0) ?(jitter_seed = 1) () =
    {
      request_timeout_ms = Float.max 1.0 request_timeout_ms;
      max_retries = max 0 max_retries;
      backoff_ms = Float.max 0.0 backoff_ms;
      max_backoff_ms = Float.max 1.0 max_backoff_ms;
      jitter_seed;
    }

  let default = make ()
end

let c_retries = Obs.counter "service.client.retries"
let c_overloaded = Obs.counter "service.client.overloaded"

type t = {
  path : string;
  config : Config.t;
  mutable conn : (Unix.file_descr * Wire.Fd_reader.t) option;
  mutable seq : int;
}

let connect ?(config = Config.default) ~path () =
  { path; config; conn = None; seq = 0 }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some (fd, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.conn <- None

let close = drop_conn

let ensure_conn t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX t.path) with
    | () ->
      let c = (fd, Wire.Fd_reader.create fd) in
      t.conn <- Some c;
      Ok c
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e))

(* splitmix64 finalizer — deterministic jitter from (seed, attempt,
   sequence), so retry storms from concurrent clients decorrelate
   without nondeterminism in tests *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let jitter t ~attempt =
  let h =
    mix64
      (Int64.of_int
         ((t.config.Config.jitter_seed * 0x9e3779b1)
         lxor (attempt * 0x85ebca6b) lxor t.seq))
  in
  let u =
    Int64.to_float (Int64.logand h 0xffffL) /. 65536.0 (* [0, 1) *)
  in
  u *. Float.max 1.0 t.config.Config.backoff_ms

(* exponential backoff with full deterministic jitter; [floor_ms] (a
   server [retry_after_ms] hint) is honored as a lower bound *)
let backoff_ms t ~attempt ~floor_ms =
  let base =
    Float.min t.config.Config.max_backoff_ms
      (t.config.Config.backoff_ms *. (2.0 ** float_of_int (attempt - 1)))
  in
  Float.max floor_ms (base +. jitter t ~attempt)

let fresh_id t =
  t.seq <- t.seq + 1;
  Printf.sprintf "c%d" t.seq

(* One request, at-most-[1 + max_retries] attempts.  Responses are
   matched by the echoed [id] — the same id is reused across attempts,
   so a response to an earlier attempt of the {e same} request is still
   a valid answer, while rows for anything else (crash rows with
   synthetic ids, torn-frame garbage) are discarded.  Any wire anomaly
   — timeout, EOF, unparsable line — drops the connection before the
   retry, so a stale response can never be matched to a later request. *)
let request t ?id fields =
  let id = match id with Some id -> id | None -> fresh_id t in
  let fields = List.filter (fun (k, _) -> not (String.equal k "id")) fields in
  let line = Json.to_string (Json.Obj (("id", Json.String id) :: fields)) in
  let retry ~attempt ~floor_ms err =
    if attempt > t.config.Config.max_retries then (* attempts are 1-based *)
      Error (Printf.sprintf "%s (after %d attempts)" err attempt)
    else begin
      Obs.incr c_retries;
      Unix.sleepf (backoff_ms t ~attempt ~floor_ms /. 1000.0);
      Ok ()
    end
  in
  let rec attempt_loop attempt =
    let fail ?(floor_ms = 0.0) err =
      drop_conn t;
      match retry ~attempt ~floor_ms err with
      | Ok () -> attempt_loop (attempt + 1)
      | Error _ as e -> e
    in
    match ensure_conn t with
    | Error e -> fail ("connect: " ^ e)
    | Ok (fd, reader) -> (
      match Wire.write_line fd line with
      | Error e -> fail ("write: " ^ e)
      | Ok () ->
        let deadline =
          Obs.now_ms () +. t.config.Config.request_timeout_ms
        in
        let rec await () =
          let left = deadline -. Obs.now_ms () in
          if left <= 0.0 then fail "timed out"
          else
            match
              Wire.Fd_reader.read_line ~timeout_ms:left
                ~max:Wire.default_max_line_bytes reader
            with
            | `Timeout -> fail "timed out"
            | `Eof -> fail "connection closed"
            | `Stopped -> fail "interrupted"
            | `Oversized _ -> fail "oversized response"
            | `Line l -> (
              match Json.of_string l with
              | exception Json.Parse_error _ ->
                (* torn frame (e.g. a truncated write upstream): the
                   rest of this connection's framing is suspect *)
                fail "torn response line"
              | j -> (
                match Wire.str_field "status" j with
                | Some "overloaded" -> (
                  Obs.incr c_overloaded;
                  match Wire.float_field "retry_after_ms" j with
                  | None ->
                    (* a shed without a hint is a protocol violation,
                       not something to paper over with retries *)
                    drop_conn t;
                    Error "protocol: overloaded row without retry_after_ms"
                  | Some ms -> fail ~floor_ms:ms "overloaded")
                | _ ->
                  if Wire.str_field "id" j = Some id then Ok j
                  else await ())) (* not ours: discard and keep reading *)
        in
        await ())
  in
  attempt_loop 1

let ping t =
  let t0 = Obs.now_ms () in
  match request t [ ("op", Json.String "ping") ] with
  | Error _ as e -> e
  | Ok j -> (
    match (Wire.str_field "status" j, Wire.bool_field "pong" j) with
    | Some "ok", Some true -> Ok (Obs.now_ms () -. t0)
    | _ -> Error ("unexpected ping response: " ^ Json.to_string j))
