open Certdb_relational
module Json = Certdb_obs.Obs.Json
module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient
module Sat_backend = Certdb_sat.Backend

(* CQ concrete syntax: "ans(vars) :- atoms".  The body reuses the
   instance parser (atoms separated by ");" boundaries rewritten to
   ";"), so variables are the parser's named nulls. *)
exception Cq_syntax of string

let parse_cq_result s =
  match
    let fail msg = raise (Cq_syntax msg) in
    match String.index_opt s ':' with
    | None -> fail "expected 'ans(vars) :- atoms'"
    | Some i ->
      let head_part = String.trim (String.sub s 0 i) in
      let body_part =
        String.trim (String.sub s (i + 2) (String.length s - i - 2))
      in
      let head_vars =
        match String.index_opt head_part '(' with
        | Some j
          when String.length head_part > 0
               && head_part.[String.length head_part - 1] = ')' ->
          let inner =
            String.sub head_part (j + 1) (String.length head_part - j - 2)
          in
          if String.trim inner = "" then []
          else String.split_on_char ',' inner |> List.map String.trim
        | _ -> fail "malformed head"
      in
      (* body: atoms are comma-separated; rewrite ")," boundaries to ";"
         so the instance parser accepts them *)
      let buf = Buffer.create (String.length body_part) in
      String.iteri
        (fun idx c ->
          if c = ',' && idx > 0 && body_part.[idx - 1] = ')' then
            Buffer.add_char buf ';'
          else Buffer.add_char buf c)
        body_part;
      let body_inst, bindings =
        try Parse.instance (Buffer.contents buf)
        with Parse.Parse_error m -> fail m
      in
      (* named nulls become CQ variables *)
      let name_of_null v =
        List.find_map
          (fun (name, v') -> if Certdb_values.Value.equal v v' then Some name else None)
          bindings
      in
      let atoms =
        List.map
          (fun (f : Instance.fact) ->
            ( f.rel,
              List.map
                (fun v ->
                  match name_of_null v with
                  | Some name -> Certdb_query.Fo.Var name
                  | None -> Certdb_query.Fo.Val v)
                (Array.to_list f.args) ))
          (Instance.facts body_inst)
      in
      (* variables are written _x in atoms; heads may drop the
         underscore *)
      let normalize v =
        if String.length v > 0 && v.[0] = '_' then
          String.sub v 1 (String.length v - 1)
        else v
      in
      let head = List.map normalize head_vars in
      (try Certdb_query.Cq.make ~head atoms with Invalid_argument m -> fail m)
  with
  | q -> Ok q
  | exception Cq_syntax m -> Error m

let parse_instance_result s =
  match Parse.instance s with
  | d, _ -> Ok d
  | exception Parse.Parse_error m -> Error m

(* field accessors *)

let str_field k j =
  match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let int_field k j =
  match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

let int_list_field k j =
  match Json.member k j with
  | Some (Json.List l) ->
    List.fold_left
      (fun acc e ->
        match (acc, e) with
        | Some ns, Json.Int n -> Some (n :: ns)
        | _ -> None)
      (Some []) l
    |> Option.map List.rev
  | _ -> None

let float_field k j =
  match Json.member k j with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let bool_field k j =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let limits_of_json ?cancel j =
  Engine.Limits.make
    ?nodes:(int_field "node_budget" j)
    ?backtracks:(int_field "backtrack_budget" j)
    ?timeout_ms:(float_field "timeout_ms" j)
    ?cancel ()

(* response rows *)

let row ~idx ~id ~op fields =
  Json.Obj
    (("id", Json.String id)
    :: ("index", Json.Int idx)
    :: ("op", Json.String op)
    :: fields)

let error_fields msg =
  [ ("status", Json.String "error"); ("error", Json.String msg) ]

let overloaded_fields ~retry_after_ms =
  [
    ("status", Json.String "overloaded");
    ("retry_after_ms", Json.Float retry_after_ms);
  ]

(* bounded line IO *)

let default_max_line_bytes = 1 lsl 20

let input_line_bounded ?(max = default_max_line_bytes) ic =
  let buf = Buffer.create 256 in
  (* [overflow] counts bytes past the cap of the current line: the tail
     is drained (to keep the stream in sync) but never buffered. *)
  let rec go overflow =
    match In_channel.input_char ic with
    | None ->
      if overflow > 0 then `Oversized (Buffer.length buf + overflow)
      else if Buffer.length buf = 0 then `Eof
      else `Line (Buffer.contents buf)
    | Some '\n' ->
      if overflow > 0 then `Oversized (Buffer.length buf + overflow)
      else `Line (Buffer.contents buf)
    | Some c ->
      if Buffer.length buf >= max then go (overflow + 1)
      else begin
        Buffer.add_char buf c;
        go 0
      end
  in
  go 0

module Fd_reader = struct
  type t = {
    fd : Unix.file_descr;
    chunk : Bytes.t;
    mutable pending : string;
    mutable discarding : int;
        (* > 0: bytes already dropped of an over-long line still being
           drained to its terminating newline *)
  }

  let create fd =
    { fd; chunk = Bytes.create 8192; pending = ""; discarding = 0 }

  (* Select in <=100ms slices so a tripped [stop] flag (drain) is
     noticed promptly even under an indefinite timeout. *)
  let slice = 0.1

  let stopped = function Some s -> Atomic.get s | None -> false

  let rec wait_readable t ~deadline ~stop =
    if stopped stop then `Stopped
    else
      let now = Unix.gettimeofday () in
      match deadline with
      | Some d when now >= d -> `Timeout
      | _ -> (
        let dt =
          match deadline with
          | Some d -> Float.min slice (d -. now)
          | None -> slice
        in
        match Unix.select [ t.fd ] [] [] dt with
        | [], _, _ -> wait_readable t ~deadline ~stop
        | _ -> `Readable
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          wait_readable t ~deadline ~stop)

  (* Consume one buffered line (or the tail of an over-long line).
     [None] when no newline is buffered yet. *)
  let take_line t ~max =
    match String.index_opt t.pending '\n' with
    | Some i ->
      let rest =
        String.sub t.pending (i + 1) (String.length t.pending - i - 1)
      in
      if t.discarding > 0 then begin
        let total = t.discarding + i in
        t.discarding <- 0;
        t.pending <- rest;
        Some (`Oversized total)
      end
      else begin
        let line = String.sub t.pending 0 i in
        t.pending <- rest;
        if i > max then Some (`Oversized i) else Some (`Line line)
      end
    | None ->
      if t.discarding > 0 || String.length t.pending > max then begin
        t.discarding <- t.discarding + String.length t.pending;
        t.pending <- ""
      end;
      None

  let read_line ?timeout_ms ?stop ~max t =
    let deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) timeout_ms
    in
    let rec go () =
      match take_line t ~max with
      | Some (`Line _ as r) -> r
      | Some (`Oversized _ as r) -> r
      | None -> (
        match wait_readable t ~deadline ~stop with
        | `Timeout -> `Timeout
        | `Stopped -> `Stopped
        | `Readable -> (
          match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
          (* a partial pending line at socket EOF is a torn request,
             not a request *)
          | 0 -> `Eof
          | n ->
            t.pending <- t.pending ^ Bytes.sub_string t.chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
            `Eof))
    in
    go ()
end

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let write_raw fd s =
  match write_all fd s 0 (String.length s) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let write_line fd line = write_raw fd (line ^ "\n")

let describe_exn = function
  | Certdb_obs.Fault.Injected point -> "injected fault at " ^ point
  | e -> Printexc.to_string e

(* batch tasks *)

type work = {
  w_limits : Engine.Limits.t;
  w_run :
    Engine.Limits.t ->
    [ `Sat of (string * Json.t) list | `Unsat | `Unknown of Engine.reason ];
  w_fallback :
    (string
    * (Engine.Limits.t ->
      [ `Sat of (string * Json.t) list | `Unsat | `Unknown of Engine.reason ]))
    option;
}

type task = string * string * (work, string) result

let work ?fallback limits run = { w_limits = limits; w_run = run; w_fallback = fallback }

let parse_task ?cancel ?(backend = Sat_backend.Csp) idx line =
  match Json.of_string line with
  | exception Json.Parse_error m ->
    ("line-" ^ string_of_int idx, "?", Error ("json: " ^ m))
  | j ->
    let id = Option.value (str_field "id" j) ~default:(string_of_int idx) in
    let op = Option.value (str_field "op" j) ~default:"?" in
    let limits = limits_of_json ?cancel j in
    let instance k =
      match str_field k j with
      | None -> Error (Printf.sprintf "missing field %S" k)
      | Some s -> (
        match parse_instance_result s with
        | Ok d -> Ok d
        | Error m -> Error (Printf.sprintf "%s: parse error: %s" k m))
    in
    let ( let* ) = Result.bind in
    (* each op is a closure over the problem taking the (possibly
       escalated) limits of the current attempt *)
    let work =
      match op with
      | "leq" ->
        let* d1 = instance "d1" in
        let* d2 = instance "d2" in
        Ok
          (work limits (fun limits ->
               match Hom.find_b ~limits d1 d2 with
               | Engine.Sat h ->
                 `Sat
                   [
                     ( "witness",
                       Json.String
                         (Format.asprintf "%a" Certdb_values.Valuation.pp h) );
                   ]
               | Engine.Unsat -> `Unsat
               | Engine.Unknown r -> `Unknown r))
      | "member" ->
        let* d = instance "d" in
        let* r = instance "r" in
        Ok
          (work limits (fun limits ->
               match Semantics.mem_b ~limits r d with
               | `True -> `Sat []
               | `False -> `Unsat
               | `Unknown reason -> `Unknown reason))
      | "certain" -> (
        let* d = instance "d" in
        let* backend =
          (* per-line override of the stream-level default *)
          match str_field "backend" j with
          | None -> Ok backend
          | Some s -> (
            match Sat_backend.choice_of_string s with
            | Some b -> Ok b
            | None ->
              Error
                (Printf.sprintf "backend: %S is not one of %s" s
                   (String.concat "/" Sat_backend.choice_names)))
        in
        match str_field "query" j with
        | None -> Error "missing field \"query\""
        | Some qs -> (
          match parse_cq_result qs with
          | Error m -> Error ("query: " ^ m)
          | Ok q ->
            let of_decision = function
              | `True -> `Sat []
              | `False -> `Unsat
              | `Unknown reason -> `Unknown reason
            in
            let csp limits =
              of_decision (Certdb_query.Certain.certain_cq_via_hom_b ~limits q d)
            in
            let sat limits =
              of_decision (Certdb_query.Certain.certain_cq_via_sat_b ~limits q d)
            in
            (* the primary backend; the other one is the ladder's
               cross-backend fallback rung.  [Auto] asks the planner's
               certificates which solver fits this query. *)
            let sat_primary =
              match backend with
              | Sat_backend.Csp -> false
              | Sat_backend.Sat -> true
              | Sat_backend.Auto -> (
                match
                  (Certdb_analysis.Plan.route_cq ~backend:Sat_backend.Auto q)
                    .route
                with
                | Certdb_analysis.Plan.Sat_backend _ -> true
                | _ -> false)
            in
            Ok
              (if sat_primary then work ~fallback:("csp", csp) limits sat
               else if backend = Sat_backend.Csp then work limits csp
               else work ~fallback:("sat", sat) limits csp)))
      | other -> Error (Printf.sprintf "unknown op %S" other)
    in
    (id, op, work)

let run_task ~policy (idx, (id, op, work)) =
  let fields =
    match work with
    | Error msg -> error_fields msg
    | Ok { w_limits = limits; w_run = f; w_fallback } -> (
      let lift f limits =
        match f limits with
        | `Sat extra -> Engine.Sat extra
        | `Unsat -> Engine.Unsat
        | `Unknown reason -> Engine.Unknown reason
      in
      let fallback =
        Option.map (fun (name, f) -> (name, lift f)) w_fallback
      in
      match
        Resilient.run ~policy ?fallback ~limits (fun ~attempt:_ limits ->
            lift f limits)
      with
      | r ->
        let base =
          match r.Resilient.outcome with
          | Engine.Sat extra -> ("status", Json.String "sat") :: extra
          | Engine.Unsat -> [ ("status", Json.String "unsat") ]
          | Engine.Unknown reason ->
            [
              ("status", Json.String "unknown");
              ("reason", Json.String (Engine.reason_to_string reason));
            ]
        in
        if policy.Resilient.Policy.max_attempts > 1 then
          base @ [ ("attempts", Json.Int r.Resilient.attempts) ]
        else base
      | exception e -> error_fields (describe_exn e))
  in
  row ~idx ~id ~op fields
