open Certdb_relational
module Json = Certdb_obs.Obs.Json
module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient

(* CQ concrete syntax: "ans(vars) :- atoms".  The body reuses the
   instance parser (atoms separated by ");" boundaries rewritten to
   ";"), so variables are the parser's named nulls. *)
exception Cq_syntax of string

let parse_cq_result s =
  match
    let fail msg = raise (Cq_syntax msg) in
    match String.index_opt s ':' with
    | None -> fail "expected 'ans(vars) :- atoms'"
    | Some i ->
      let head_part = String.trim (String.sub s 0 i) in
      let body_part =
        String.trim (String.sub s (i + 2) (String.length s - i - 2))
      in
      let head_vars =
        match String.index_opt head_part '(' with
        | Some j
          when String.length head_part > 0
               && head_part.[String.length head_part - 1] = ')' ->
          let inner =
            String.sub head_part (j + 1) (String.length head_part - j - 2)
          in
          if String.trim inner = "" then []
          else String.split_on_char ',' inner |> List.map String.trim
        | _ -> fail "malformed head"
      in
      (* body: atoms are comma-separated; rewrite ")," boundaries to ";"
         so the instance parser accepts them *)
      let buf = Buffer.create (String.length body_part) in
      String.iteri
        (fun idx c ->
          if c = ',' && idx > 0 && body_part.[idx - 1] = ')' then
            Buffer.add_char buf ';'
          else Buffer.add_char buf c)
        body_part;
      let body_inst, bindings =
        try Parse.instance (Buffer.contents buf)
        with Parse.Parse_error m -> fail m
      in
      (* named nulls become CQ variables *)
      let name_of_null v =
        List.find_map
          (fun (name, v') -> if Certdb_values.Value.equal v v' then Some name else None)
          bindings
      in
      let atoms =
        List.map
          (fun (f : Instance.fact) ->
            ( f.rel,
              List.map
                (fun v ->
                  match name_of_null v with
                  | Some name -> Certdb_query.Fo.Var name
                  | None -> Certdb_query.Fo.Val v)
                (Array.to_list f.args) ))
          (Instance.facts body_inst)
      in
      (* variables are written _x in atoms; heads may drop the
         underscore *)
      let normalize v =
        if String.length v > 0 && v.[0] = '_' then
          String.sub v 1 (String.length v - 1)
        else v
      in
      let head = List.map normalize head_vars in
      (try Certdb_query.Cq.make ~head atoms with Invalid_argument m -> fail m)
  with
  | q -> Ok q
  | exception Cq_syntax m -> Error m

let parse_instance_result s =
  match Parse.instance s with
  | d, _ -> Ok d
  | exception Parse.Parse_error m -> Error m

(* field accessors *)

let str_field k j =
  match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let int_field k j =
  match Json.member k j with Some (Json.Int n) -> Some n | _ -> None

let float_field k j =
  match Json.member k j with
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some (Json.Float f) -> Some f
  | _ -> None

let bool_field k j =
  match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None

let limits_of_json ?cancel j =
  Engine.Limits.make
    ?nodes:(int_field "node_budget" j)
    ?backtracks:(int_field "backtrack_budget" j)
    ?timeout_ms:(float_field "timeout_ms" j)
    ?cancel ()

(* response rows *)

let row ~idx ~id ~op fields =
  Json.Obj
    (("id", Json.String id)
    :: ("index", Json.Int idx)
    :: ("op", Json.String op)
    :: fields)

let error_fields msg =
  [ ("status", Json.String "error"); ("error", Json.String msg) ]

let describe_exn = function
  | Certdb_obs.Fault.Injected point -> "injected fault at " ^ point
  | e -> Printexc.to_string e

(* batch tasks *)

type work =
  Engine.Limits.t
  * (Engine.Limits.t ->
    [ `Sat of (string * Json.t) list | `Unsat | `Unknown of Engine.reason ])

type task = string * string * (work, string) result

let parse_task ?cancel idx line =
  match Json.of_string line with
  | exception Json.Parse_error m ->
    ("line-" ^ string_of_int idx, "?", Error ("json: " ^ m))
  | j ->
    let id = Option.value (str_field "id" j) ~default:(string_of_int idx) in
    let op = Option.value (str_field "op" j) ~default:"?" in
    let limits = limits_of_json ?cancel j in
    let instance k =
      match str_field k j with
      | None -> Error (Printf.sprintf "missing field %S" k)
      | Some s -> (
        match parse_instance_result s with
        | Ok d -> Ok d
        | Error m -> Error (Printf.sprintf "%s: parse error: %s" k m))
    in
    let ( let* ) = Result.bind in
    (* each op is a closure over the problem taking the (possibly
       escalated) limits of the current attempt *)
    let work =
      match op with
      | "leq" ->
        let* d1 = instance "d1" in
        let* d2 = instance "d2" in
        Ok
          ( limits,
            fun limits ->
              match Hom.find_b ~limits d1 d2 with
              | Engine.Sat h ->
                `Sat
                  [
                    ( "witness",
                      Json.String
                        (Format.asprintf "%a" Certdb_values.Valuation.pp h) );
                  ]
              | Engine.Unsat -> `Unsat
              | Engine.Unknown r -> `Unknown r )
      | "member" ->
        let* d = instance "d" in
        let* r = instance "r" in
        Ok
          ( limits,
            fun limits ->
              match Semantics.mem_b ~limits r d with
              | `True -> `Sat []
              | `False -> `Unsat
              | `Unknown reason -> `Unknown reason )
      | "certain" -> (
        let* d = instance "d" in
        match str_field "query" j with
        | None -> Error "missing field \"query\""
        | Some qs -> (
          match parse_cq_result qs with
          | Error m -> Error ("query: " ^ m)
          | Ok q ->
            Ok
              ( limits,
                fun limits ->
                  match
                    Certdb_query.Certain.certain_cq_via_hom_b ~limits q d
                  with
                  | `True -> `Sat []
                  | `False -> `Unsat
                  | `Unknown reason -> `Unknown reason )))
      | other -> Error (Printf.sprintf "unknown op %S" other)
    in
    (id, op, work)

let run_task ~policy (idx, (id, op, work)) =
  let fields =
    match work with
    | Error msg -> error_fields msg
    | Ok (limits, f) -> (
      match
        Resilient.run ~policy ~limits (fun ~attempt:_ limits ->
            match f limits with
            | `Sat extra -> Engine.Sat extra
            | `Unsat -> Engine.Unsat
            | `Unknown reason -> Engine.Unknown reason)
      with
      | r ->
        let base =
          match r.Resilient.outcome with
          | Engine.Sat extra -> ("status", Json.String "sat") :: extra
          | Engine.Unsat -> [ ("status", Json.String "unsat") ]
          | Engine.Unknown reason ->
            [
              ("status", Json.String "unknown");
              ("reason", Json.String (Engine.reason_to_string reason));
            ]
        in
        if policy.Resilient.Policy.max_attempts > 1 then
          base @ [ ("attempts", Json.Int r.Resilient.attempts) ]
        else base
      | exception e -> error_fields (describe_exn e))
  in
  row ~idx ~id ~op fields
