module String_map = Map.Make (String)

type t = int String_map.t

let empty = String_map.empty

let add t name arity =
  match String_map.find_opt name t with
  | Some a when a <> arity ->
    invalid_arg
      (Printf.sprintf "Schema.add: %s redeclared with arity %d (was %d)" name
         arity a)
  | _ -> String_map.add name arity t

let of_list l = List.fold_left (fun t (n, a) -> add t n a) empty l
let arity t name = String_map.find_opt name t
let mem t name = String_map.mem name t
let relations t = String_map.bindings t

let union t1 t2 =
  String_map.union
    (fun name a1 a2 ->
      if a1 = a2 then Some a1
      else
        invalid_arg
          (Printf.sprintf "Schema.union: %s has arities %d and %d" name a1 a2))
    t1 t2

let conforms t ~rel ~arity =
  match String_map.find_opt rel t with Some a -> a = arity | None -> false

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (n, a) -> Format.fprintf ppf "%s/%d" n a))
    (relations t)
