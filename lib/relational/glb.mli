(** Greatest lower bounds of naïve databases in the information ordering
    (Prop. 5): the ⊗-product

    {v R ∧ R' = { t ⊗ t' | t ∈ R, t' ∈ R' } v}

    computed relation by relation, where ⊗ merges tuples per equation (1).
    For a finite family [X] of instances, [∧X] always exists and has at
    most [(‖X‖/n)^n] tuples per relation. *)

open Certdb_values

(** [pair d d'] returns the glb together with the two projection
    homomorphisms (witnessing that it is a lower bound). *)
val pair : Instance.t -> Instance.t -> Instance.t * Valuation.t * Valuation.t

(** [glb d d'] is [fst3 (pair d d')]. *)
val glb : Instance.t -> Instance.t -> Instance.t

(** [family xs] folds [glb] over a non-empty list.
    @raise Invalid_argument on []. *)
val family : Instance.t list -> Instance.t

(** [certain_information xs] is [family xs] reduced to its core — the
    canonical representative of the certain information in [xs]
    (max-description, by Theorem 1). *)
val certain_information : Instance.t list -> Instance.t
