open Certdb_values
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Engine = Certdb_csp.Engine

let searches = Obs.counter "rel.hom.searches"
let nodes = Obs.counter "rel.hom.nodes"
let candidate_checks = Obs.counter "rel.hom.candidate_checks"
let solutions = Obs.counter "rel.hom.solutions"

let is_hom h d d' =
  List.for_all
    (fun (f : Instance.fact) ->
      Instance.mem d' { f with args = Valuation.apply_array h f.args })
    (Instance.facts d)

(* Backtracking over source facts with dynamic fewest-candidates-first
   ordering.  [init] seeds the valuation (used by core computation and by
   tests that pin specific bindings). *)
let search ?(budget = Engine.Budget.unlimited) ?(init = Valuation.empty)
    ?(onto = false) d d' on_solution =
  let source_facts = Instance.facts d in
  let target_facts = Instance.facts d' in
  (* index the target by relation once: the candidate computation runs at
     every node of the search tree *)
  let by_rel = Hashtbl.create 8 in
  List.iter
    (fun (g : Instance.fact) ->
      Hashtbl.replace by_rel g.rel
        (g :: (Option.value ~default:[] (Hashtbl.find_opt by_rel g.rel))))
    (List.rev target_facts);
  let candidates h (f : Instance.fact) =
    List.filter_map
      (fun (g : Instance.fact) ->
        Obs.incr candidate_checks;
        Option.map
          (fun h' -> (g, h'))
          (Valuation.extend_match h f.args g.args))
      (Option.value ~default:[] (Hashtbl.find_opt by_rel f.rel))
  in
  let exception Stop in
  let check_onto covered =
    (not onto)
    || List.for_all (fun g -> List.mem g covered) target_facts
  in
  let rec go h remaining covered =
    Obs.incr nodes;
    Engine.Budget.tick_node budget;
    match remaining with
    | [] ->
      Obs.incr solutions;
      if check_onto covered && on_solution h = `Stop then raise Stop
    | _ ->
      (* pick the remaining fact with fewest unifiable targets *)
      let scored =
        List.map (fun f -> (f, candidates h f)) remaining
      in
      let best, cands =
        List.fold_left
          (fun (bf, bc) (f, c) ->
            if List.length c < List.length bc then (f, c) else (bf, bc))
          (List.hd scored) (List.tl scored)
      in
      let rest = List.filter (fun f -> Instance.compare_fact f best <> 0) remaining in
      if cands = [] then Engine.Budget.tick_backtrack budget;
      List.iter
        (fun ((g : Instance.fact), h') -> go h' rest (g :: covered))
        cands
  in
  Obs.incr searches;
  Trace.with_span "rel.hom.search" (fun () ->
      try go init source_facts [] with Stop -> ())

let restrict_to_nulls d h =
  let ns = Instance.nulls d in
  List.fold_left
    (fun acc (n, v) ->
      if Value.Set.mem n ns then Valuation.bind acc n v else acc)
    Valuation.empty (Valuation.bindings h)

let find_seeded ?init d d' =
  let found = ref None in
  search ?init d d' (fun h ->
      found := Some (restrict_to_nulls d h);
      `Stop);
  !found

let find d d' = find_seeded d d'
let exists d d' = Option.is_some (find d d')

let find_b ?(limits = Engine.Limits.unlimited) d d' =
  Engine.Budget.run limits (fun budget ->
      let found = ref None in
      search ~budget d d' (fun h ->
          found := Some (restrict_to_nulls d h);
          `Stop);
      !found)

let exists_b ?limits d d' =
  Engine.decision_of_outcome (find_b ?limits d d')

let find_onto d d' =
  let found = ref None in
  search ~onto:true d d' (fun h ->
      found := Some (restrict_to_nulls d h);
      `Stop);
  !found

let exists_onto d d' = Option.is_some (find_onto d d')

let find_onto_b ?(limits = Engine.Limits.unlimited) d d' =
  Engine.Budget.run limits (fun budget ->
      let found = ref None in
      search ~budget ~onto:true d d' (fun h ->
          found := Some (restrict_to_nulls d h);
          `Stop);
      !found)

let exists_onto_b ?limits d d' =
  Engine.decision_of_outcome (find_onto_b ?limits d d')

let iter d d' f = search d d' (fun h -> f (restrict_to_nulls d h))

let iter_seeded ?init d d' f =
  search ?init d d' (fun h -> f (restrict_to_nulls d h))

let count d d' =
  (* distinct homomorphisms on the nulls of [d]; the fact-indexed search can
     reach the same valuation along different fact orders, so deduplicate *)
  let seen = Hashtbl.create 16 in
  iter d d' (fun h ->
      let key = List.map (fun (n, v) -> (n, v)) (Valuation.bindings h) in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key ();
      `Continue);
  Hashtbl.length seen

(* An endomorphism that identifies some fact [f] with a different fact [g]:
   seeds for core folding. *)
let endomorphism_folding d =
  let fs = Instance.facts d in
  let rec pairs = function
    | [] -> None
    | (f : Instance.fact) :: rest ->
      let attempt (g : Instance.fact) =
        if
          String.equal f.rel g.rel
          && Instance.compare_fact f g <> 0
        then
          match Valuation.unify_arrays Valuation.empty f.args g.args with
          | Some seed ->
            let found = ref None in
            search ~init:seed d d (fun h ->
                found := Some (restrict_to_nulls d h);
                `Stop);
            !found
          | None -> None
        else None
      in
      (match List.find_map attempt fs with
      | Some h -> Some h
      | None -> pairs rest)
  in
  pairs fs
