open Certdb_values

let pair d d' =
  let avoid = Value.Set.union (Instance.nulls d) (Instance.nulls d') in
  let renamed, _ = Instance.rename_apart ~avoid d' in
  Instance.union d renamed

let family = List.fold_left pair Instance.empty
let canonical xs = Core_instance.core (family xs)
