open Certdb_values
module Obs = Certdb_obs.Obs

let pairs = Obs.counter "rel.lub.pairs"

let pair d d' =
  Obs.incr pairs;
  Obs.with_span "rel.lub.pair" @@ fun () ->
  let avoid = Value.Set.union (Instance.nulls d) (Instance.nulls d') in
  let renamed, _ = Instance.rename_apart ~avoid d' in
  Instance.union d renamed

let family = List.fold_left pair Instance.empty
let canonical xs = Core_instance.core (family xs)
