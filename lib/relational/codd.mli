(** Codd databases: naïve databases in which every null occurs at most
    once.  On them [⊑] collapses to the polynomial-time ordering [⪯]
    (Prop. 4) and CWA comparison is [⪯] + Hall (Prop. 8). *)

val is_codd : Instance.t -> bool

(** [coddify d] replaces repeated null occurrences by fresh nulls, yielding
    the "Codd approximation" of [d] (strictly less informative when [d]
    reuses nulls). *)
val coddify : Instance.t -> Instance.t

(** [leq d d'] decides [d ⊑ d'] in polynomial time.
    @raise Invalid_argument when [d] is not Codd. *)
val leq : Instance.t -> Instance.t -> bool

(** [random ~seed ~schema ~facts ~null_prob ~domain ()] generates a random
    Codd instance: constants drawn from [0..domain-1], fresh nulls with
    probability [null_prob]. *)
val random :
  seed:int ->
  schema:(string * int) list ->
  facts:int ->
  null_prob:float ->
  domain:int ->
  unit ->
  Instance.t

(** [random_naive] — same, but nulls are drawn from a small pool and may
    repeat (naïve instance). *)
val random_naive :
  seed:int ->
  schema:(string * int) list ->
  facts:int ->
  null_prob:float ->
  domain:int ->
  null_pool:int ->
  unit ->
  Instance.t
