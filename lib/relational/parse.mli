(** A small concrete syntax for naïve databases and facts, used by the
    [certdb] command-line tool and handy in tests:

    {v
      R(1, 2, _x); R(_y, _x, 3); S("ann", _z)
    v}

    Values: integers, double-quoted strings, and nulls written [_name]
    (each distinct name denotes a distinct null; names are scoped to one
    parse). *)

open Certdb_values

(** [instance ?bindings s] parses a semicolon-separated list of facts.
    Returns the instance and the name→null bindings used; [bindings] seeds
    the table so that several fragments can share nulls by name (e.g. the
    two sides of a tgd).
    @raise Parse_error on malformed input. *)
val instance :
  ?bindings:(string * Value.t) list ->
  string ->
  Instance.t * (string * Value.t) list

exception Parse_error of string

(** [value s] parses a single value ([42], ["str"], [_x] — the null name is
    fresh). *)
val value : string -> Value.t

(** [to_string d] prints an instance back in the concrete syntax (null
    names are [_n<id>]). *)
val to_string : Instance.t -> string
