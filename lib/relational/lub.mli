(** Least upper bounds of naïve databases: disjoint union after renaming
    nulls apart (Section 4, "the lattice of cores"; used by Theorem 5 where
    [∨M(D)] is the canonical universal solution and its core is the core
    solution). *)

(** [pair d d'] is [d ⊔ d'] with the nulls of [d'] renamed apart from
    those of [d]; the result is a least upper bound of [{d, d'}] in [⊑]. *)
val pair : Instance.t -> Instance.t -> Instance.t

(** [family xs] folds [pair]; [Instance.empty] for []. *)
val family : Instance.t list -> Instance.t

(** [canonical xs] is [core (family xs)] — the canonical representative of
    [∨X]. *)
val canonical : Instance.t list -> Instance.t
