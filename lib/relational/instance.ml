open Certdb_values

type fact = { rel : string; args : Value.t array }

let fact rel args = { rel; args = Array.of_list args }

let compare_fact f1 f2 =
  match String.compare f1.rel f2.rel with
  | 0 ->
    let c = Int.compare (Array.length f1.args) (Array.length f2.args) in
    if c <> 0 then c
    else
      let rec go i =
        if i = Array.length f1.args then 0
        else
          match Value.compare f1.args.(i) f2.args.(i) with
          | 0 -> go (i + 1)
          | c -> c
      in
      go 0
  | c -> c

let pp_fact ppf f =
  Format.fprintf ppf "%s(%a)" f.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Value.pp)
    (Array.to_list f.args)

module Fact_set = Set.Make (struct
  type t = fact

  let compare = compare_fact
end)

type t = Fact_set.t

let empty = Fact_set.empty
let add t f = Fact_set.add f t
let add_fact t rel args = add t (fact rel args)
let of_facts fs = List.fold_left add empty fs

let of_list l =
  List.fold_left
    (fun t (rel, tuples) ->
      List.fold_left (fun t args -> add_fact t rel args) t tuples)
    empty l

let facts t = Fact_set.elements t

let tuples t rel =
  Fact_set.fold
    (fun f acc -> if String.equal f.rel rel then f.args :: acc else acc)
    t []
  |> List.rev

let relations t =
  Fact_set.fold
    (fun f acc -> if List.mem f.rel acc then acc else f.rel :: acc)
    t []
  |> List.rev

let mem t f = Fact_set.mem f t
let cardinal = Fact_set.cardinal
let is_empty = Fact_set.is_empty
let union = Fact_set.union
let filter = Fact_set.filter
let fold f t init = Fact_set.fold f t init

let schema t =
  fold (fun f s -> Schema.add s f.rel (Array.length f.args)) t Schema.empty

let values_satisfying p t =
  fold
    (fun f acc ->
      Array.fold_left
        (fun acc v -> if p v then Value.Set.add v acc else acc)
        acc f.args)
    t Value.Set.empty

let nulls t = values_satisfying Value.is_null t
let constants t = values_satisfying Value.is_const t
let active_domain t = values_satisfying (fun _ -> true) t
let is_complete t = Value.Set.is_empty (nulls t)

let pi_cpl t =
  filter (fun f -> Array.for_all Value.is_const f.args) t

let apply h t =
  fold
    (fun f acc -> add acc { f with args = Valuation.apply_array h f.args })
    t empty

let rename_apart ~avoid t =
  let renaming =
    Value.Set.fold
      (fun n h ->
        let rec fresh () =
          let n' = Value.fresh_null () in
          if Value.Set.mem n' avoid then fresh () else n'
        in
        Valuation.bind h n (fresh ()))
      (nulls t) Valuation.empty
  in
  (apply renaming t, renaming)

let ground t =
  let grounding =
    Valuation.grounding_of_nulls ~avoid:(constants t) (nulls t)
  in
  apply grounding t

let equal = Fact_set.equal
let compare = Fact_set.compare

let pp ppf t =
  Format.fprintf ppf "@[<v>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_fact)
    (facts t)
