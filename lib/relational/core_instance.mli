(** Cores of naïve databases: the smallest instance hom-equivalent to the
    input.  Used as the canonical representative of a ∼-equivalence class
    (e.g. the core solution in data exchange, the reduced form of ⊗-product
    glbs). *)

val is_core : Instance.t -> bool

val core : Instance.t -> Instance.t

(** [core_with_retraction d] also returns the valuation mapping [d] onto
    the core. *)
val core_with_retraction : Instance.t -> Instance.t * Certdb_values.Valuation.t
