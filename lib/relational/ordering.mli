(** The orderings on naïve databases studied in Sections 2 and 4:

    - the information ordering [⊑] ([D ⊑ D′ ⇔ [[D′]] ⊆ [[D]]]),
      characterized by homomorphisms (Prop. 3);
    - the 1990s ordering [⪯] (tuple-wise dominance lifted by the Hoare
      powerdomain order), which coincides with [⊑] exactly on Codd
      databases (Prop. 4);
    - the CWA ordering [⊑cwa] (onto homomorphisms), which over Codd
      databases is [⪯] plus Hall's condition on [⪯⁻¹] (Prop. 8);
    - the Plotkin lift [≼] used for CWA in the 1990s. *)

open Certdb_values

(** [tuple_leq t t'] — [⪯] on tuples: positionwise, each null is below
    everything, each constant only below itself. *)
val tuple_leq : Value.t array -> Value.t array -> bool

(** [leq d d'] — the information ordering [⊑] via homomorphism existence. *)
val leq : Instance.t -> Instance.t -> bool

(** Budgeted [⊑]: [`Unknown r] when the hom search tripped a limit, so a
    budget can never flip the answer. *)
val leq_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Instance.t ->
  Instance.t ->
  Certdb_csp.Engine.decision

val equiv : Instance.t -> Instance.t -> bool
val strictly_less : Instance.t -> Instance.t -> bool
val incomparable : Instance.t -> Instance.t -> bool

(** [hoare_leq d d'] — [D ⪯ D′]: every fact of [d] is dominated by a fact
    of [d'] (same relation).  Quadratic time. *)
val hoare_leq : Instance.t -> Instance.t -> bool

(** [plotkin_leq d d'] — the Plotkin lift: [hoare_leq d d'] and every fact
    of [d'] dominates some fact of [d]. *)
val plotkin_leq : Instance.t -> Instance.t -> bool

(** [cwa_leq d d'] — [⊑cwa]: existence of an onto homomorphism. *)
val cwa_leq : Instance.t -> Instance.t -> bool

(** Budgeted [⊑cwa]. *)
val cwa_leq_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Instance.t ->
  Instance.t ->
  Certdb_csp.Engine.decision

(** [cwa_leq_codd d d'] — the Prop. 8 characterization, valid when [d] is
    Codd: [d ⪯ d'] and [⪯⁻¹] satisfies Hall's condition (checked with
    Hopcroft–Karp).  Polynomial time. *)
val cwa_leq_codd : Instance.t -> Instance.t -> bool

(** [hall_condition d d'] — does the relation from facts of [d'] to the
    facts of [d] below them admit a matching saturating [d']? *)
val hall_condition : Instance.t -> Instance.t -> bool
