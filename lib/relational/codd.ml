open Certdb_values

let is_codd d =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun (f : Instance.fact) ->
      Array.for_all
        (fun v ->
          if Value.is_null v then
            if Hashtbl.mem seen v then false
            else begin
              Hashtbl.add seen v ();
              true
            end
          else true)
        f.args)
    (Instance.facts d)

let coddify d =
  List.fold_left
    (fun acc (f : Instance.fact) ->
      let args =
        Array.map
          (fun v -> if Value.is_null v then Value.fresh_null () else v)
          f.args
      in
      Instance.add acc { f with args })
    Instance.empty (Instance.facts d)

let leq d d' =
  if not (is_codd d) then invalid_arg "Codd.leq: instance is not Codd";
  Ordering.hoare_leq d d'

let random_naive ~seed ~schema ~facts ~null_prob ~domain ~null_pool () =
  let st = Random.State.make [| seed |] in
  let rels = Array.of_list schema in
  if Array.length rels = 0 then invalid_arg "Codd.random_naive: empty schema";
  let value () =
    if Random.State.float st 1.0 < null_prob then
      Value.null (1_000_000 + Random.State.int st null_pool)
    else Value.int (Random.State.int st domain)
  in
  let rec build acc k =
    if k = 0 then acc
    else
      let rel, arity = rels.(Random.State.int st (Array.length rels)) in
      let args = List.init arity (fun _ -> value ()) in
      build (Instance.add_fact acc rel args) (k - 1)
  in
  build Instance.empty facts

let random ~seed ~schema ~facts ~null_prob ~domain () =
  coddify
    (random_naive ~seed ~schema ~facts ~null_prob ~domain ~null_pool:1 ())
