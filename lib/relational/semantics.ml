open Certdb_values

let mem r d =
  Instance.is_complete r && Hom.exists d r

let mem_b ?limits r d =
  if not (Instance.is_complete r) then `False
  else Hom.exists_b ?limits d r

let sample_valuations ?(extra = Value.Set.empty) d =
  let nulls = Value.Set.elements (Instance.nulls d) in
  let k = List.length nulls in
  (* k+1 fresh constants: every null can be distinct from all others and,
     for any single fresh constant, some valuation avoids it — so spurious
     answer tuples over fresh constants cannot survive the intersection. *)
  let fresh = List.init (k + 1) (fun _ -> Value.fresh_const ()) in
  let candidates =
    Value.Set.elements
      (Value.Set.union (Instance.constants d) extra)
    @ fresh
  in
  let rec assign acc = function
    | [] -> [ acc ]
    | n :: rest ->
      List.concat_map
        (fun c -> assign (Valuation.bind acc n c) rest)
        candidates
  in
  assign Valuation.empty nulls

let sample_completions ?extra d =
  List.map (fun h -> (h, Instance.apply h d)) (sample_valuations ?extra d)

(* OWA worlds beyond plain groundings: each grounding optionally augmented
   with one extra fact per relation over fresh constants.  These catch the
   typical failures of naïve evaluation on non-monotone queries, which are
   insensitive to groundings but break under supersets. *)
let sample_worlds ?extra d =
  let completions = List.map snd (sample_completions ?extra d) in
  let noisy r =
    let sch = Instance.schema r in
    List.fold_left
      (fun acc (rel, arity) ->
        Instance.add_fact acc rel
          (List.init arity (fun _ -> Value.fresh_const ())))
      r (Schema.relations sch)
  in
  completions @ List.map noisy completions

let certain_answers_by_enumeration q d =
  match sample_completions d with
  | [] -> q d
  | (_, r0) :: rest ->
    List.fold_left
      (fun acc (_, r) ->
        Instance.filter (fun f -> Instance.mem (q r) f) acc)
      (q r0) rest
