open Certdb_values

(* h(D) ⊆ D for an endomorphism h, so iterating [apply h] yields a
   decreasing chain of subinstances; its limit is the image of the
   idempotent power of h. *)
let iterate_image h d =
  let rec go d =
    let d' = Instance.apply h d in
    if Instance.equal d' d then d else go d'
  in
  go d

(* Find an endomorphism whose idempotent image is strictly smaller.  For
   every pair of distinct facts (f, g) of the same relation we enumerate
   the endomorphisms extending the unifier of f into g; if D is not a core
   it has a proper retraction r, and r extends such a unifier for any fact
   f outside r(D), so the search is complete. *)
let shrinking_step d =
  let n = Instance.cardinal d in
  let result = ref None in
  let try_seed seed =
    Hom.iter_seeded ~init:seed d d (fun h ->
        let image = iterate_image h d in
        if Instance.cardinal image < n then begin
          result := Some (image, h);
          `Stop
        end
        else `Continue)
  in
  let fs = Instance.facts d in
  List.iter
    (fun (f : Instance.fact) ->
      if !result = None then
        List.iter
          (fun (g : Instance.fact) ->
            if
              !result = None
              && String.equal f.rel g.rel
              && Instance.compare_fact f g <> 0
            then
              match Valuation.unify_arrays Valuation.empty f.args g.args with
              | Some seed -> try_seed seed
              | None -> ())
          fs)
    fs;
  !result

let is_core d = Option.is_none (shrinking_step d)

let core_with_retraction d =
  let rec go d retraction =
    match shrinking_step d with
    | None -> (d, retraction)
    | Some (image, h) -> go image (Valuation.compose retraction h)
  in
  go d Valuation.empty

let core d = fst (core_with_retraction d)
