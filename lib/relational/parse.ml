open Certdb_values

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Tokenizer: identifiers, integers, quoted strings, punctuation. *)
type token =
  | Ident of string
  | Number of int
  | Quoted of string
  | Null_name of string
  | Lparen
  | Rparen
  | Comma
  | Semi

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin
      tokens := Lparen :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := Rparen :: !tokens;
      incr i
    end
    else if c = ',' then begin
      tokens := Comma :: !tokens;
      incr i
    end
    else if c = ';' then begin
      tokens := Semi :: !tokens;
      incr i
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do
        incr j
      done;
      if !j >= n then fail "unterminated string literal";
      tokens := Quoted (String.sub s (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      let lit = String.sub s !i (!j - !i) in
      (match int_of_string_opt lit with
      | Some k -> tokens := Number k :: !tokens
      | None -> fail "bad number %S" lit);
      i := !j
    end
    else if c = '_' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      if !j = !i + 1 then fail "null name expected after '_'";
      tokens := Null_name (String.sub s (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      tokens := Ident (String.sub s !i (!j - !i)) :: !tokens;
      i := !j
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

let instance ?(bindings = []) s =
  let tokens = ref (tokenize s) in
  let nulls = Hashtbl.create 8 in
  List.iter (fun (name, v) -> Hashtbl.replace nulls name v) bindings;
  let null_of name =
    match Hashtbl.find_opt nulls name with
    | Some v -> v
    | None ->
      let v = Value.fresh_null () in
      Hashtbl.add nulls name v;
      v
  in
  let next () =
    match !tokens with
    | [] -> None
    | t :: rest ->
      tokens := rest;
      Some t
  in
  let expect what pred =
    match next () with
    | Some t when pred t -> t
    | _ -> fail "expected %s" what
  in
  let parse_value () =
    match next () with
    | Some (Number k) -> Value.int k
    | Some (Quoted str) -> Value.str str
    | Some (Ident str) -> Value.str str
    | Some (Null_name name) -> null_of name
    | _ -> fail "expected a value"
  in
  let parse_fact rel =
    ignore (expect "'('" (fun t -> t = Lparen));
    let args = ref [] in
    (match !tokens with
    | Rparen :: rest -> tokens := rest
    | _ ->
      let rec loop () =
        args := parse_value () :: !args;
        match next () with
        | Some Comma -> loop ()
        | Some Rparen -> ()
        | _ -> fail "expected ',' or ')'"
      in
      loop ());
    Instance.fact rel (List.rev !args)
  in
  let facts = ref [] in
  let rec loop () =
    match next () with
    | None -> ()
    | Some (Ident rel) ->
      facts := parse_fact rel :: !facts;
      (match next () with
      | Some Semi -> loop ()
      | None -> ()
      | _ -> fail "expected ';' between facts")
    | Some Semi -> loop ()
    | _ -> fail "expected a relation name"
  in
  loop ();
  let bindings =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) nulls []
  in
  (Instance.of_facts (List.rev !facts), bindings)

let value s =
  match tokenize s with
  | [ Number k ] -> Value.int k
  | [ Quoted str ] | [ Ident str ] -> Value.str str
  | [ Null_name _ ] -> Value.fresh_null ()
  | _ -> fail "expected a single value"

let value_to_string v =
  match v with
  | Value.Const (Value.Int k) -> string_of_int k
  | Value.Const (Value.Str s) -> Printf.sprintf "%S" s
  | Value.Null i -> Printf.sprintf "_n%d" i

let to_string d =
  Instance.facts d
  |> List.map (fun (f : Instance.fact) ->
         Printf.sprintf "%s(%s)" f.rel
           (String.concat ", "
              (List.map value_to_string (Array.to_list f.args))))
  |> String.concat "; "
