open Certdb_values
module Obs = Certdb_obs.Obs

let pairs = Obs.counter "rel.glb.pairs"
let merged_facts = Obs.counter "rel.glb.merged_facts"

let pair d d' =
  Obs.incr pairs;
  Obs.with_span "rel.glb.pair" @@ fun () ->
  let reg = Merge.create () in
  let result =
    List.fold_left
      (fun acc (f : Instance.fact) ->
        List.fold_left
          (fun acc (g : Instance.fact) ->
            if
              String.equal f.rel g.rel
              && Array.length f.args = Array.length g.args
            then
              Instance.add acc
                { f with args = Merge.arrays reg f.args g.args }
            else acc)
          acc (Instance.facts d'))
      Instance.empty (Instance.facts d)
  in
  Obs.add merged_facts (Instance.cardinal result);
  (result, Merge.left_valuation reg, Merge.right_valuation reg)

let glb d d' =
  let r, _, _ = pair d d' in
  r

let family = function
  | [] -> invalid_arg "Glb.family: empty family"
  | x :: xs -> List.fold_left glb x xs

let certain_information xs = Core_instance.core (family xs)
