(** The semantics [[D]] of incomplete databases: the complete databases
    admitting a homomorphism from [D] (Section 2.1).

    [[D]] is infinite; for testing and for reference implementations of
    certain answers we use the standard finite-witness sample: valuations
    of the nulls into the active domain of [D] (plus the constants of an
    optional extra set) together with as many fresh constants as there are
    nulls.  For the FO-definable properties exercised in this repository,
    genericity makes this sample adequate (each proof in the paper's
    appendix uses exactly such fresh-constant completions). *)

open Certdb_values

(** [mem r d] — the membership problem: is the complete instance [r] in
    [[d]]?  (NP in general; see {!Codd.leq} and the GDM membership module
    for the PTIME cases.) *)
val mem : Instance.t -> Instance.t -> bool

(** Budgeted membership: [`Unknown r] when the underlying hom search
    tripped a limit of [limits]. *)
val mem_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Instance.t ->
  Instance.t ->
  Certdb_csp.Engine.decision

(** [sample_completions ?extra d] enumerates the grounding valuations of
    [d] into [adom(d) ∪ extra ∪ {fresh constants}], and the corresponding
    completions.  The number of completions is [m^k] for [k] nulls and [m]
    candidate constants — use on small instances only. *)
val sample_completions :
  ?extra:Value.Set.t -> Instance.t -> (Valuation.t * Instance.t) list

(** [sample_valuations ?extra d] — just the grounding valuations. *)
val sample_valuations : ?extra:Value.Set.t -> Instance.t -> Valuation.t list

(** [sample_worlds ?extra d] — a finite OWA sample of [[d]]: all sampled
    completions plus, for each, a strict superset with one extra fact per
    relation over fresh constants.  Unlike plain groundings this can refute
    certainty of non-monotone queries (the failures Prop. 1 is about). *)
val sample_worlds : ?extra:Value.Set.t -> Instance.t -> Instance.t list

(** [certain_answers_by_enumeration q d] — reference implementation of
    [certain(Q, D) = ⋂ { Q(R) | R ∈ [[D]] }] over the finite sample, where
    [q] evaluates the query on a complete instance.  Exponential. *)
val certain_answers_by_enumeration :
  (Instance.t -> Instance.t) -> Instance.t -> Instance.t
