open Certdb_values
open Certdb_csp

let tuple_leq t t' =
  Array.length t = Array.length t'
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v ->
           match v with
           | Value.Null _ -> ()
           | Value.Const _ -> if not (Value.equal v t'.(i)) then ok := false)
         t;
       !ok
     end

let leq d d' = Hom.exists d d'
let leq_b ?limits d d' = Hom.exists_b ?limits d d'
let equiv d d' = leq d d' && leq d' d
let strictly_less d d' = leq d d' && not (leq d' d)
let incomparable d d' = (not (leq d d')) && not (leq d' d)

let fact_leq (f : Instance.fact) (g : Instance.fact) =
  String.equal f.rel g.rel && tuple_leq f.args g.args

let hoare_leq d d' =
  List.for_all
    (fun f -> List.exists (fun g -> fact_leq f g) (Instance.facts d'))
    (Instance.facts d)

let plotkin_leq d d' =
  hoare_leq d d'
  && List.for_all
       (fun g -> List.exists (fun f -> fact_leq f g) (Instance.facts d))
       (Instance.facts d')

let cwa_leq d d' = Hom.exists_onto d d'
let cwa_leq_b ?limits d d' = Hom.exists_onto_b ?limits d d'

let hall_condition d d' =
  (* left vertices: facts of d'; right: facts of d; edge when the d-fact is
     ⪯-below the d'-fact. *)
  let left = Array.of_list (Instance.facts d') in
  let right = Array.of_list (Instance.facts d) in
  let edges = ref [] in
  Array.iteri
    (fun i g ->
      Array.iteri
        (fun j f -> if fact_leq f g then edges := (i, j) :: !edges)
        right)
    left;
  let g =
    Matching.make ~left:(Array.length left) ~right:(Array.length right)
      ~edges:!edges
  in
  Matching.saturates_left g

let cwa_leq_codd d d' = hoare_leq d d' && hall_condition d d'
