(** Database homomorphisms between naïve instances: maps on nulls (identity
    on constants) sending every fact of the source into the target
    (Section 2.1).  [D ⊑ D′] iff such a homomorphism exists (Prop. 3). *)

open Certdb_values
module Engine = Certdb_csp.Engine

(** [is_hom h d d'] checks that the valuation [h] maps every fact of [d]
    into [d']. *)
val is_hom : Valuation.t -> Instance.t -> Instance.t -> bool

(** [find d d'] searches for a homomorphism [d → d']. *)
val find : Instance.t -> Instance.t -> Valuation.t option

val exists : Instance.t -> Instance.t -> bool

(** [find_b ?limits d d'] — the budgeted search.  [Sat h] carries a
    witness, [Unsat] means the search space was exhausted, and
    [Unknown r] reports the limit that tripped ({!Engine.reason}). *)
val find_b :
  ?limits:Engine.Limits.t ->
  Instance.t ->
  Instance.t ->
  Valuation.t Engine.outcome

val exists_b :
  ?limits:Engine.Limits.t -> Instance.t -> Instance.t -> Engine.decision

(** [find_onto d d'] searches for a homomorphism whose fact image is all of
    [d'] — the CWA ordering's witness ([D ⊑cwa D′]). *)
val find_onto : Instance.t -> Instance.t -> Valuation.t option

val exists_onto : Instance.t -> Instance.t -> bool

val find_onto_b :
  ?limits:Engine.Limits.t ->
  Instance.t ->
  Instance.t ->
  Valuation.t Engine.outcome

val exists_onto_b :
  ?limits:Engine.Limits.t -> Instance.t -> Instance.t -> Engine.decision

(** [iter d d' f] enumerates homomorphisms until [f] returns [`Stop].  Only
    bindings of nulls occurring in [d] are reported. *)
val iter :
  Instance.t -> Instance.t -> (Valuation.t -> [ `Continue | `Stop ]) -> unit

val count : Instance.t -> Instance.t -> int

(** [iter_seeded ?init d d' f] is [iter] starting from the partial valuation
    [init]. *)
val iter_seeded :
  ?init:Valuation.t ->
  Instance.t ->
  Instance.t ->
  (Valuation.t -> [ `Continue | `Stop ]) ->
  unit

(** [find_seeded ?init d d'] is [find] starting from the partial valuation
    [init] (pinning chosen null bindings). *)
val find_seeded : ?init:Valuation.t -> Instance.t -> Instance.t -> Valuation.t option

(** [endomorphism_folding d] finds, if any, an endomorphism of [d] that
    identifies two distinct facts (the seed of core folding). *)
val endomorphism_folding : Instance.t -> Valuation.t option
