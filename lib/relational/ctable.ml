open Certdb_values

type cond =
  | CTrue
  | CFalse
  | CEq of Value.t * Value.t
  | CNeq of Value.t * Value.t
  | CAnd of cond * cond
  | COr of cond * cond
  | CNot of cond

let cand = function
  | [] -> CTrue
  | c :: cs -> List.fold_left (fun acc c' -> CAnd (acc, c')) c cs

let cor = function
  | [] -> CFalse
  | c :: cs -> List.fold_left (fun acc c' -> COr (acc, c')) c cs

let rec eval_cond h = function
  | CTrue -> true
  | CFalse -> false
  | CEq (a, b) -> Value.equal (Valuation.apply h a) (Valuation.apply h b)
  | CNeq (a, b) -> not (Value.equal (Valuation.apply h a) (Valuation.apply h b))
  | CAnd (c1, c2) -> eval_cond h c1 && eval_cond h c2
  | COr (c1, c2) -> eval_cond h c1 || eval_cond h c2
  | CNot c -> not (eval_cond h c)

let rec cond_nulls = function
  | CTrue | CFalse -> Value.Set.empty
  | CEq (a, b) | CNeq (a, b) ->
    Value.Set.filter Value.is_null (Value.Set.of_list [ a; b ])
  | CAnd (c1, c2) | COr (c1, c2) ->
    Value.Set.union (cond_nulls c1) (cond_nulls c2)
  | CNot c -> cond_nulls c

let rec simplify = function
  | CTrue -> CTrue
  | CFalse -> CFalse
  | CEq (a, b) when Value.equal a b -> CTrue
  | CEq (a, b) when Value.is_const a && Value.is_const b -> CFalse
  | CEq _ as c -> c
  | CNeq (a, b) when Value.equal a b -> CFalse
  | CNeq (a, b) when Value.is_const a && Value.is_const b -> CTrue
  | CNeq _ as c -> c
  | CAnd (c1, c2) -> (
    match simplify c1, simplify c2 with
    | CFalse, _ | _, CFalse -> CFalse
    | CTrue, c | c, CTrue -> c
    | c1', c2' -> CAnd (c1', c2'))
  | COr (c1, c2) -> (
    match simplify c1, simplify c2 with
    | CTrue, _ | _, CTrue -> CTrue
    | CFalse, c | c, CFalse -> c
    | c1', c2' -> COr (c1', c2'))
  | CNot c -> (
    match simplify c with
    | CTrue -> CFalse
    | CFalse -> CTrue
    | CEq (a, b) -> CNeq (a, b)
    | CNeq (a, b) -> CEq (a, b)
    | c' -> CNot c')

let rec pp_cond ppf = function
  | CTrue -> Format.fprintf ppf "true"
  | CFalse -> Format.fprintf ppf "false"
  | CEq (a, b) -> Format.fprintf ppf "%a = %a" Value.pp a Value.pp b
  | CNeq (a, b) -> Format.fprintf ppf "%a <> %a" Value.pp a Value.pp b
  | CAnd (c1, c2) -> Format.fprintf ppf "(%a /\\ %a)" pp_cond c1 pp_cond c2
  | COr (c1, c2) -> Format.fprintf ppf "(%a \\/ %a)" pp_cond c1 pp_cond c2
  | CNot c -> Format.fprintf ppf "~(%a)" pp_cond c

type row = {
  args : Value.t array;
  guard : cond;
}

type t = {
  arity : int;
  rows : row list;
}

let of_rows ~arity rows =
  List.iter
    (fun r ->
      if Array.length r.args <> arity then
        invalid_arg "Ctable.of_rows: arity mismatch")
    rows;
  { arity; rows = List.map (fun r -> { r with guard = simplify r.guard }) rows }

let of_naive ~arity tuples =
  of_rows ~arity (List.map (fun args -> { args; guard = CTrue }) tuples)

let of_instance_relation d rel =
  let tuples = Instance.tuples d rel in
  match tuples with
  | [] -> { arity = 0; rows = [] }
  | t :: _ -> of_naive ~arity:(Array.length t) tuples

let rows t = t.rows
let arity t = t.arity

let nulls t =
  List.fold_left
    (fun acc r ->
      Array.fold_left
        (fun acc v -> if Value.is_null v then Value.Set.add v acc else acc)
        (Value.Set.union acc (cond_nulls r.guard))
        r.args)
    Value.Set.empty t.rows

let rec cond_constants = function
  | CTrue | CFalse -> Value.Set.empty
  | CEq (a, b) | CNeq (a, b) ->
    Value.Set.filter Value.is_const (Value.Set.of_list [ a; b ])
  | CAnd (c1, c2) | COr (c1, c2) ->
    Value.Set.union (cond_constants c1) (cond_constants c2)
  | CNot c -> cond_constants c

let constants t =
  List.fold_left
    (fun acc r ->
      Array.fold_left
        (fun acc v -> if Value.is_const v then Value.Set.add v acc else acc)
        (Value.Set.union acc (cond_constants r.guard))
        r.args)
    Value.Set.empty t.rows

module Tuple_set = Set.Make (struct
  type t = Value.t array

  let compare (a : Value.t array) b = Stdlib.compare a b
end)

let ground h t =
  List.fold_left
    (fun acc r ->
      if eval_cond h r.guard then
        Tuple_set.add (Valuation.apply_array h r.args) acc
      else acc)
    Tuple_set.empty t.rows
  |> Tuple_set.elements

let sample_valuations t =
  let ns = Value.Set.elements (nulls t) in
  let k = List.length ns in
  let fresh = List.init (k + 1) (fun _ -> Value.fresh_const ()) in
  let candidates = Value.Set.elements (constants t) @ fresh in
  let rec assign acc = function
    | [] -> [ acc ]
    | n :: rest ->
      List.concat_map (fun c -> assign (Valuation.bind acc n c) rest) candidates
  in
  assign Valuation.empty ns

let rep_sample t = List.map (fun h -> ground h t) (sample_valuations t)

let select_eq_col i j t =
  if i < 0 || j < 0 || i >= t.arity || j >= t.arity then
    invalid_arg "Ctable.select_eq_col: column out of range";
  {
    t with
    rows =
      List.map
        (fun r ->
          { r with guard = simplify (CAnd (r.guard, CEq (r.args.(i), r.args.(j)))) })
        t.rows;
  }

let select_eq_const i c t =
  if i < 0 || i >= t.arity then
    invalid_arg "Ctable.select_eq_const: column out of range";
  {
    t with
    rows =
      List.map
        (fun r ->
          { r with guard = simplify (CAnd (r.guard, CEq (r.args.(i), c))) })
        t.rows;
  }

let project cols t =
  List.iter
    (fun c ->
      if c < 0 || c >= t.arity then
        invalid_arg "Ctable.project: column out of range")
    cols;
  {
    arity = List.length cols;
    rows =
      List.map
        (fun r ->
          { r with args = Array.of_list (List.map (fun c -> r.args.(c)) cols) })
        t.rows;
  }

let product t1 t2 =
  {
    arity = t1.arity + t2.arity;
    rows =
      List.concat_map
        (fun r1 ->
          List.map
            (fun r2 ->
              {
                args = Array.append r1.args r2.args;
                guard = simplify (CAnd (r1.guard, r2.guard));
              })
            t2.rows)
        t1.rows;
  }

let join pairs t1 t2 =
  let p = product t1 t2 in
  List.fold_left
    (fun acc (i, j) -> select_eq_col i (t1.arity + j) acc)
    p pairs

let union t1 t2 =
  if t1.arity <> t2.arity then invalid_arg "Ctable.union: arity mismatch";
  { arity = t1.arity; rows = t1.rows @ t2.rows }

(* difference per [26]: a row (ā, γ) of t1 survives when γ holds and for
   every row (b̄, δ) of t2, not (δ ∧ ā = b̄). *)
let difference t1 t2 =
  if t1.arity <> t2.arity then invalid_arg "Ctable.difference: arity mismatch";
  {
    arity = t1.arity;
    rows =
      List.map
        (fun r1 ->
          let blockers =
            List.map
              (fun r2 ->
                let agree =
                  cand
                    (List.init t1.arity (fun i ->
                         CEq (r1.args.(i), r2.args.(i))))
                in
                CNot (CAnd (r2.guard, agree)))
              t2.rows
          in
          { r1 with guard = simplify (cand (r1.guard :: blockers)) })
        t1.rows;
  }

let certain_tuples t =
  match rep_sample t with
  | [] -> []
  | first :: rest ->
    let first_consts =
      List.filter (fun tu -> Array.for_all Value.is_const tu) first
    in
    List.filter
      (fun tu -> List.for_all (fun world -> List.mem tu world) rest)
      first_consts

let possible_tuples t =
  List.sort_uniq compare (List.concat (rep_sample t))

let pp ppf t =
  let pp_row ppf r =
    Format.fprintf ppf "(%a) if %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Value.pp)
      (Array.to_list r.args) pp_cond r.guard
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    t.rows
