(** Conditional tables (c-tables) of Imieliński–Lipski [26] — the strong
    representation system for full relational algebra that naïve tables
    cannot provide.  The paper's Section 1–2 background rests on this
    hierarchy: Codd tables ⊂ naïve tables ⊂ c-tables.

    A c-table row is a tuple over [C ∪ N] guarded by a local condition: a
    boolean combination of (in)equalities between values.  Under a
    grounding valuation [h], the row contributes [h(args)] iff [h]
    satisfies the condition.  The representation is closed-world:
    [rep(T) = { h(T) | h grounds the nulls }].

    The algebra below implements the [26] construction: selection and join
    push conditions into the guards, and difference — impossible on naïve
    tables — produces negated agreement guards. *)

open Certdb_values

(** {1 Conditions} *)

type cond =
  | CTrue
  | CFalse
  | CEq of Value.t * Value.t
  | CNeq of Value.t * Value.t
  | CAnd of cond * cond
  | COr of cond * cond
  | CNot of cond

val cand : cond list -> cond
val cor : cond list -> cond

(** [eval_cond h c] — truth under a grounding (free nulls are compared
    syntactically, as in naïve evaluation). *)
val eval_cond : Valuation.t -> cond -> bool

val cond_nulls : cond -> Value.Set.t
val simplify : cond -> cond
val pp_cond : Format.formatter -> cond -> unit

(** {1 Tables} *)

type row = {
  args : Value.t array;
  guard : cond;
}

type t
(** A single-relation c-table (the algebra is single-relation, as in
    [26]). *)

val of_rows : arity:int -> row list -> t
val of_instance_relation : Instance.t -> string -> t

(** [of_naive tuples] — a naïve table as a c-table (all guards true). *)
val of_naive : arity:int -> Value.t array list -> t

val rows : t -> row list
val arity : t -> int
val nulls : t -> Value.Set.t

(** [ground h t] — the complete relation under a grounding valuation: the
    set of instantiated tuples whose guard holds. *)
val ground : Valuation.t -> t -> Value.t array list

(** [sample_valuations t] — groundings into adom ∪ k+1 fresh constants. *)
val sample_valuations : t -> Valuation.t list

(** [rep_sample t] — the sampled closed-world representation
    [{ h(T) }]. *)
val rep_sample : t -> Value.t array list list

(** {1 Algebra (strong representation system)} *)

val select_eq_col : int -> int -> t -> t
val select_eq_const : int -> Value.t -> t -> t
val project : int list -> t -> t
val product : t -> t -> t
val join : (int * int) list -> t -> t -> t
val union : t -> t -> t

(** [difference t1 t2] — the [26] construction: a row of [t1] survives iff
    its guard holds and no row of [t2] matches it (guards become negated
    agreement conditions). *)
val difference : t -> t -> t

(** {1 Certain answers} *)

(** [certain_tuples t] — tuples of constants present in {e every} sampled
    grounding. *)
val certain_tuples : t -> Value.t array list

(** [possible_tuples t] — tuples present in {e some} sampled grounding. *)
val possible_tuples : t -> Value.t array list

val pp : Format.formatter -> t -> unit
