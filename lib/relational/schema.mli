(** Relational schemas: finite sets of relation names with arities. *)

type t

val empty : t
val add : t -> string -> int -> t
val of_list : (string * int) list -> t
val arity : t -> string -> int option
val mem : t -> string -> bool
val relations : t -> (string * int) list
val union : t -> t -> t

(** [conforms schema ~rel ~arity] iff [rel] is declared with [arity]. *)
val conforms : t -> rel:string -> arity:int -> bool

val pp : Format.formatter -> t -> unit
