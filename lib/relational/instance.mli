(** Incomplete relational instances — naïve databases (Section 2.1): finite
    sets of facts [R(v̄)] with values over [C ∪ N].  A null may occur any
    number of times; instances where each null occurs at most once are Codd
    databases (see {!Codd}). *)

open Certdb_values

type fact = { rel : string; args : Value.t array }

val fact : string -> Value.t list -> fact
val pp_fact : Format.formatter -> fact -> unit
val compare_fact : fact -> fact -> int

type t

val empty : t
val add : t -> fact -> t
val add_fact : t -> string -> Value.t list -> t
val of_facts : fact list -> t

(** [of_list l] builds an instance from [(rel, args)] pairs. *)
val of_list : (string * Value.t list list) list -> t

val facts : t -> fact list
val tuples : t -> string -> Value.t array list
val relations : t -> string list
val mem : t -> fact -> bool
val cardinal : t -> int
val is_empty : t -> bool
val union : t -> t -> t
val filter : (fact -> bool) -> t -> t
val fold : (fact -> 'a -> 'a) -> t -> 'a -> 'a

(** [schema t] is the schema inferred from the facts.
    @raise Invalid_argument if a relation occurs with two arities. *)
val schema : t -> Schema.t

(** {1 Values} *)

val nulls : t -> Value.Set.t
val constants : t -> Value.Set.t
val active_domain : t -> Value.Set.t

(** [is_complete t] iff no null occurs in [t]. *)
val is_complete : t -> bool

(** [pi_cpl t] removes every fact containing a null — the greatest complete
    object below [t] (the retraction [πcpl] of Section 3). *)
val pi_cpl : t -> t

(** [apply h t] is [h(t)]: the image of every fact under the valuation. *)
val apply : Valuation.t -> t -> t

(** [rename_apart ~avoid t] renames the nulls of [t] injectively to fresh
    nulls outside [avoid]; returns the renamed instance and the renaming. *)
val rename_apart : avoid:Value.Set.t -> t -> t * Valuation.t

(** [ground t] replaces each null by a distinct fresh constant (the
    canonical completion used throughout the paper's proofs). *)
val ground : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
