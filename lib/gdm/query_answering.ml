open Certdb_values
module Int_map = Certdb_csp.Structure.Int_map
module Engine = Certdb_csp.Engine
module Resilient = Certdb_csp.Resilient
module Obs = Certdb_obs.Obs

let naive_holds db f = Logic.holds db f

(* All set partitions of a list, as representative-choosing maps
   (element -> block representative). *)
let partitions xs =
  let rec go blocks = function
    | [] -> [ blocks ]
    | x :: rest ->
      let with_existing =
        List.concat_map
          (fun b ->
            let others = List.filter (fun b' -> b' != b) blocks in
            go ((x :: b) :: others) rest)
          blocks
      in
      let with_new = go ([ x ] :: blocks) rest in
      with_existing @ with_new
  in
  go [] xs

(* Grounding valuations of the nulls into adom constants plus k+1 fresh
   constants (cf. Semantics.sample_valuations for relations). *)
let groundings db =
  let nulls = Value.Set.elements (Gdb.nulls db) in
  let k = List.length nulls in
  let fresh = List.init (k + 1) (fun _ -> Value.fresh_const ()) in
  let candidates = Value.Set.elements (Gdb.constants db) @ fresh in
  let rec assign acc = function
    | [] -> [ acc ]
    | n :: rest ->
      List.concat_map
        (fun c -> assign (Valuation.bind acc n c) rest)
        candidates
  in
  assign Valuation.empty nulls

(* Node merges legal on a complete database: nodes may be identified when
   they share label and data.  We enumerate all partitions within each
   (label, data) class. *)
let merge_images grounded =
  let classes = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = (Gdb.label grounded v, Gdb.data grounded v) in
      Hashtbl.replace classes key
        (v :: (Option.value ~default:[] (Hashtbl.find_opt classes key))))
    (Gdb.nodes grounded);
  let class_partitions =
    Hashtbl.fold (fun _ vs acc -> partitions vs :: acc) classes []
  in
  (* cartesian product of per-class partition choices *)
  let rec combine = function
    | [] -> [ [] ]
    | choices :: rest ->
      List.concat_map
        (fun blocks -> List.map (fun tail -> blocks @ tail) (combine rest))
        choices
  in
  List.map
    (fun blocks ->
      let repr = Hashtbl.create 16 in
      List.iter
        (fun block ->
          match block with
          | [] -> ()
          | r :: _ -> List.iter (fun v -> Hashtbl.replace repr v r) block)
        blocks;
      Gdb.map_nodes grounded (fun v -> Hashtbl.find repr v))
    (combine class_partitions)

let complete_images db =
  List.concat_map (fun g -> merge_images (Gdb.apply g db)) (groundings db)

let certain_existential db f =
  List.for_all (fun image -> Logic.holds image f) (complete_images db)

(* Budgeted variant: the exponential part is the number of images, so each
   image evaluation is accounted as one engine node. *)
let certain_existential_b ?(limits = Engine.Limits.unlimited) db f =
  Engine.decision_of_outcome
    (Engine.Budget.run limits (fun budget ->
         let ok =
           List.for_all
             (fun image ->
               Engine.Budget.tick_node budget;
               Logic.holds image f)
             (complete_images db)
         in
         if ok then Some () else None))

let certain_by_enumeration = certain_existential

module String_map = Map.Make (String)

let certain_data_answers ~out db f =
  if not (Logic.is_existential_positive f) then
    invalid_arg "Query_answering.certain_data_answers: not existential positive";
  let nodes = Gdb.nodes db in
  let free =
    List.sort_uniq String.compare (List.map fst out)
  in
  let rec assignments env = function
    | [] -> if Logic.eval db env f then [ env ] else []
    | x :: rest ->
      List.concat_map
        (fun v -> assignments (String_map.add x v env) rest)
        nodes
  in
  assignments String_map.empty free
  |> List.filter_map (fun env ->
         let tuple =
           List.map
             (fun (x, i) ->
               let node = String_map.find x env in
               let data = Gdb.data db node in
               if i < 1 || i > Array.length data then None
               else Some data.(i - 1))
             out
         in
         if List.for_all Option.is_some tuple then
           let tuple = List.map Option.get tuple in
           if List.for_all Value.is_const tuple then Some tuple else None
         else None)
  |> List.sort_uniq compare

let default_unsupported _ _ =
  invalid_arg
    "Query_answering.certain: sentence outside the decidable fragments \
     (supply ~on_unsupported)"

let certain ?(on_unsupported = default_unsupported) db f =
  if Logic.is_existential_positive f then naive_holds db f
  else if Logic.is_existential f then certain_existential db f
  else on_unsupported db f

let certain_b ?limits ?(on_unsupported = default_unsupported) db f =
  if Logic.is_existential_positive f then
    if naive_holds db f then `True else `False
  else if Logic.is_existential f then certain_existential_b ?limits db f
  else if on_unsupported db f then `True
  else `False

(* {2 Graceful degradation} *)

let resilient_exact = Obs.counter "gdm.resilient.exact"
let resilient_degraded = Obs.counter "gdm.resilient.degraded"

(* The completion grounding every null to a distinct fresh constant (the
   trivial member of [complete_images]): cheap to build, and any sentence
   false on it is certainly not certain. *)
let fresh_completion db =
  let g =
    Value.Set.fold
      (fun n acc -> Valuation.bind acc n (Value.fresh_const ()))
      (Gdb.nulls db) Valuation.empty
  in
  Gdb.apply g db

let certain_resilient ?policy ?(limits = Engine.Limits.unlimited)
    ?(on_unsupported = default_unsupported) db f =
  if Logic.is_existential_positive f then begin
    (* Theorem 7(a): naïve evaluation is exact here, no search at all *)
    Obs.incr resilient_exact;
    `Exact (naive_holds db f)
  end
  else if Logic.is_existential f then begin
    let r =
      Resilient.run ?policy ~limits (fun ~attempt:_ limits ->
          match certain_existential_b ~limits db f with
          | `True -> Engine.Sat ()
          | `False -> Engine.Unsat
          | `Unknown reason -> Engine.Unknown reason)
    in
    match r.Resilient.outcome with
    | Engine.Sat () ->
      Obs.incr resilient_exact;
      `Exact true
    | Engine.Unsat ->
      Obs.incr resilient_exact;
      `Exact false
    | Engine.Unknown _ ->
      Obs.incr resilient_degraded;
      (* with negation in [f], evaluating one completion certifies only
         refutation: false on a single image settles non-certainty, true
         on it says nothing about the others *)
      if not (Logic.holds (fresh_completion db) f) then `Exact false
      else `Lower_bound false
  end
  else begin
    Obs.incr resilient_exact;
    `Exact (on_unsupported db f)
  end
