open Certdb_values
open Certdb_csp
module String_map = Map.Make (String)

type t =
  | True
  | False
  | Rel of string * string list
  | Label of string * string
  | NodeEq of string * string
  | EqAttr of int * string * int * string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let rec is_existential_positive = function
  | True | False | Rel _ | Label _ | NodeEq _ | EqAttr _ -> true
  | And (f, g) | Or (f, g) ->
    is_existential_positive f && is_existential_positive g
  | Exists (_, f) -> is_existential_positive f
  | Not _ | Implies _ | Forall _ -> false

let rec is_quantifier_free = function
  | True | False | Rel _ | Label _ | NodeEq _ | EqAttr _ -> true
  | Not f -> is_quantifier_free f
  | And (f, g) | Or (f, g) | Implies (f, g) ->
    is_quantifier_free f && is_quantifier_free g
  | Exists _ | Forall _ -> false

let rec is_existential = function
  | True | False | Rel _ | Label _ | NodeEq _ | EqAttr _ -> true
  | And (f, g) | Or (f, g) -> is_existential f && is_existential g
  | Not f -> is_quantifier_free f
  | Implies (f, g) -> is_quantifier_free f && is_quantifier_free g
  | Exists (_, f) -> is_existential f
  | Forall _ -> false

let lookup env x =
  match String_map.find_opt x env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Logic.eval: unbound variable %s" x)

let eval db env f =
  let domain = Gdb.nodes db in
  let rec go env = function
    | True -> true
    | False -> false
    | Rel (rel, xs) ->
      let tup = Array.of_list (List.map (lookup env) xs) in
      Structure.mem_tuple (Gdb.structure db) rel tup
    | Label (a, x) -> String.equal (Gdb.label db (lookup env x)) a
    | NodeEq (x, y) -> lookup env x = lookup env y
    | EqAttr (i, x, j, y) ->
      let dx = Gdb.data db (lookup env x) and dy = Gdb.data db (lookup env y) in
      i >= 1 && j >= 1
      && i <= Array.length dx
      && j <= Array.length dy
      && Value.equal dx.(i - 1) dy.(j - 1)
    | Not g -> not (go env g)
    | And (g1, g2) -> go env g1 && go env g2
    | Or (g1, g2) -> go env g1 || go env g2
    | Implies (g1, g2) -> (not (go env g1)) || go env g2
    | Exists (xs, g) -> quantify env xs g List.exists
    | Forall (xs, g) -> quantify env xs g List.for_all
  and quantify env xs g combine =
    match xs with
    | [] -> go env g
    | x :: rest ->
      combine
        (fun v -> quantify (String_map.add x v env) rest g combine)
        domain
  in
  go env f

let holds db f = eval db String_map.empty f

let rec pp ppf = function
  | True -> Format.fprintf ppf "true"
  | False -> Format.fprintf ppf "false"
  | Rel (r, xs) -> Format.fprintf ppf "%s(%s)" r (String.concat "," xs)
  | Label (a, x) -> Format.fprintf ppf "P_%s(%s)" a x
  | NodeEq (x, y) -> Format.fprintf ppf "%s = %s" x y
  | EqAttr (i, x, j, y) -> Format.fprintf ppf "%s.%d = %s.%d" x i y j
  | Not f -> Format.fprintf ppf "~(%a)" pp f
  | And (f, g) -> Format.fprintf ppf "(%a /\\ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(%a \\/ %a)" pp f pp g
  | Implies (f, g) -> Format.fprintf ppf "(%a -> %a)" pp f pp g
  | Exists (xs, f) ->
    Format.fprintf ppf "exists %s. %a" (String.concat "," xs) pp f
  | Forall (xs, f) ->
    Format.fprintf ppf "forall %s. %a" (String.concat "," xs) pp f
