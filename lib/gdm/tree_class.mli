(** The class K of unranked trees inside the generalized model: a
    structural glb for tree-shaped structures (over a ["child"] relation),
    to be plugged into {!Gglb.glb_in_class} — Theorem 4's [∧K] for XML.

    The construction pairs the two roots when labels agree and recurses by
    pairing equally-labeled children (the standard product-of-trees that
    [16] uses for max-descriptions). *)

open Certdb_csp

(** [is_tree s] — [s] has exactly one root (no incoming ["child"] edge),
    every other node has exactly one parent, and no cycles. *)
val is_tree : Structure.t -> bool

(** [glb s s'] — the tree glb with the two projection node maps.
    @raise Invalid_argument if an operand is not a tree or the roots'
    labels differ (no tree lower bound with a root exists then). *)
val glb : Structure.t -> Structure.t -> Structure.t * (int -> int) * (int -> int)

(** [class_glb] — [glb] in the shape {!Gglb.glb_in_class} expects. *)
val class_glb :
  Structure.t -> Structure.t -> Structure.t * (int -> int) * (int -> int)
