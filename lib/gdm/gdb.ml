open Certdb_values
open Certdb_csp
module Int_map = Structure.Int_map
module Int_set = Structure.Int_set

type t = {
  structure : Structure.t;
  data : Value.t array Int_map.t;
}

let empty = { structure = Structure.empty; data = Int_map.empty }

let add_node db ~node ~label ~data =
  if Structure.mem_node db.structure node then
    invalid_arg "Gdb.add_node: node exists";
  {
    structure = Structure.add_node ~label db.structure node;
    data = Int_map.add node (Array.of_list data) db.data;
  }

let add_tuple db rel nodes =
  { db with structure = Structure.add_tuple db.structure rel (Array.of_list nodes) }

let make ~nodes ~tuples =
  let db =
    List.fold_left
      (fun db (node, label, data) -> add_node db ~node ~label ~data)
      empty nodes
  in
  List.fold_left
    (fun db (rel, ts) -> List.fold_left (fun db t -> add_tuple db rel t) db ts)
    db tuples

let structure db = db.structure
let nodes db = Structure.nodes db.structure
let size db = Structure.size db.structure

let label db v =
  match Structure.label_of db.structure v with
  | Some l -> l
  | None -> invalid_arg "Gdb.label: unlabeled or missing node"

let data db v =
  match Int_map.find_opt v db.data with
  | Some d -> d
  | None -> invalid_arg "Gdb.data: missing node"

let mem_node db v = Structure.mem_node db.structure v

let conforms db schema =
  List.for_all
    (fun v ->
      match Gschema.label_arity schema (label db v) with
      | Some k -> Array.length (data db v) = k
      | None -> false)
    (nodes db)
  && List.for_all
       (fun rel ->
         match Gschema.rel_arity schema rel with
         | Some k ->
           List.for_all
             (fun t -> Array.length t = k)
             (Structure.tuples_of db.structure rel)
         | None -> false)
       (Structure.rel_names db.structure)

let values_satisfying p db =
  Int_map.fold
    (fun _ tuple acc ->
      Array.fold_left
        (fun acc v -> if p v then Value.Set.add v acc else acc)
        acc tuple)
    db.data Value.Set.empty

let nulls db = values_satisfying Value.is_null db
let constants db = values_satisfying Value.is_const db
let is_complete db = Value.Set.is_empty (nulls db)

let apply h db =
  { db with data = Int_map.map (Valuation.apply_array h) db.data }

let ground db =
  let h = Valuation.grounding_of_nulls ~avoid:(constants db) (nulls db) in
  apply h db

let rename_apart ~avoid db =
  let renaming =
    Value.Set.fold
      (fun n h ->
        let rec fresh () =
          let n' = Value.fresh_null () in
          if Value.Set.mem n' avoid then fresh () else n'
        in
        Valuation.bind h n (fresh ()))
      (nulls db) Valuation.empty
  in
  (apply renaming db, renaming)

let map_nodes db f =
  let data =
    Int_map.fold
      (fun v tuple acc ->
        let v' = f v in
        (match Int_map.find_opt v' acc with
        | Some existing when existing <> tuple ->
          invalid_arg "Gdb.map_nodes: merged nodes with different data"
        | _ -> ());
        Int_map.add v' tuple acc)
      db.data Int_map.empty
  in
  (* Structure.map_nodes silently lets the last label win; check agreement
     first. *)
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          if v < w && f v = f w && label db v <> label db w then
            invalid_arg "Gdb.map_nodes: merged nodes with different labels")
        (nodes db))
    (nodes db);
  { structure = Structure.map_nodes db.structure f; data }

let disjoint_union db1 db2 =
  let s, inj1, inj2 = Structure.disjoint_union db1.structure db2.structure in
  let data =
    Int_map.fold
      (fun v tuple acc -> Int_map.add (inj2 v) tuple acc)
      db2.data
      (Int_map.fold
         (fun v tuple acc -> Int_map.add (inj1 v) tuple acc)
         db1.data Int_map.empty)
  in
  ({ structure = s; data }, inj1, inj2)

let restrict db keep =
  {
    structure = Structure.restrict db.structure keep;
    data = Int_map.filter (fun v _ -> Int_set.mem v keep) db.data;
  }

let codd db =
  let seen = Hashtbl.create 16 in
  Int_map.for_all
    (fun _ tuple ->
      Array.for_all
        (fun v ->
          if Value.is_null v then
            if Hashtbl.mem seen v then false
            else begin
              Hashtbl.add seen v ();
              true
            end
          else true)
        tuple)
    db.data

let equal db1 db2 =
  Structure.equal db1.structure db2.structure
  && Int_map.equal ( = ) db1.data db2.data

let pp ppf db =
  let pp_node ppf v =
    Format.fprintf ppf "%d:%s(%a)" v (label db v)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Value.pp)
      (Array.to_list (data db v))
  in
  Format.fprintf ppf "@[<v>nodes: %a@,structure: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       pp_node)
    (nodes db) Structure.pp db.structure
