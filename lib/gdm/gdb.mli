(** Generalized databases D = 〈Mλ, ρ〉 (Section 5.1): a finite labeled
    σ-structure [Mλ] with a tuple [ρ(ν)] of data values (over C ∪ N)
    attached to each node, of length [ar(λ(ν))]. *)

open Certdb_values
open Certdb_csp

type t = private {
  structure : Structure.t; (* carries nodes, labels, σ-relations *)
  data : Value.t array Structure.Int_map.t;
}

val empty : t

(** [add_node db ~node ~label ~data] — @raise Invalid_argument if the node
    exists already. *)
val add_node : t -> node:int -> label:string -> data:Value.t list -> t

(** [add_tuple db rel nodes] adds a σ-fact over existing nodes. *)
val add_tuple : t -> string -> int list -> t

val make :
  nodes:(int * string * Value.t list) list ->
  tuples:(string * int list list) list ->
  t

val structure : t -> Structure.t
val nodes : t -> int list
val size : t -> int
val label : t -> int -> string
val data : t -> int -> Value.t array
val mem_node : t -> int -> bool

(** [conforms db schema] — labels declared, data lengths = [ar(label)],
    σ-facts declared with correct arities. *)
val conforms : t -> Gschema.t -> bool

val nulls : t -> Value.Set.t
val constants : t -> Value.Set.t

(** [is_complete db] iff no data value is a null. *)
val is_complete : t -> bool

(** [apply h db] maps all data tuples through the valuation. *)
val apply : Valuation.t -> t -> t

(** [ground db] replaces nulls by distinct fresh constants. *)
val ground : t -> t

(** [rename_apart ~avoid db] renames nulls injectively to fresh nulls. *)
val rename_apart : avoid:Value.Set.t -> t -> t * Valuation.t

(** [map_nodes db f] renames/merges nodes through [f]; when [f] merges two
    nodes their labels and data tuples must agree.
    @raise Invalid_argument otherwise. *)
val map_nodes : t -> (int -> int) -> t

(** [disjoint_union db1 db2] renames the second operand's nodes (and
    nothing else) apart. *)
val disjoint_union : t -> t -> t * (int -> int) * (int -> int)

(** [restrict db keep] — induced sub-database. *)
val restrict : t -> Structure.Int_set.t -> t

(** [codd db] iff each null occurs at most once across all data tuples. *)
val codd : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
