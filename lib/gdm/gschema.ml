type t = {
  alphabet : (string * int) list;
  sigma : (string * int) list;
}

let make ~alphabet ~sigma =
  let check_dups what l =
    let names = List.map fst l in
    let sorted = List.sort_uniq String.compare names in
    if List.length sorted <> List.length names then
      invalid_arg (Printf.sprintf "Gschema.make: duplicate %s" what)
  in
  check_dups "label" alphabet;
  check_dups "relation" sigma;
  { alphabet; sigma }

let alphabet s = s.alphabet
let sigma s = s.sigma
let label_arity s a = List.assoc_opt a s.alphabet
let rel_arity s r = List.assoc_opt r s.sigma
let max_label_arity s = List.fold_left (fun m (_, k) -> max m k) 0 s.alphabet
let relational rels = make ~alphabet:rels ~sigma:[]
let xml ~alphabet = make ~alphabet ~sigma:[ ("child", 2) ]

let pp ppf s =
  let pp_pair ppf (n, k) = Format.fprintf ppf "%s/%d" n k in
  Format.fprintf ppf "Sigma = {%a}; sigma = {%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_pair)
    s.alphabet
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_pair)
    s.sigma
