(** Generalized schemas S = 〈Σ, σ, ar〉 (Section 5.1): a finite alphabet Σ
    of node labels with attribute arities [ar], and a relational vocabulary
    σ for the structural part. *)

type t

(** [make ~alphabet ~sigma] — [alphabet] pairs each label with its
    attribute arity, [sigma] pairs each structural relation with its
    arity. *)
val make : alphabet:(string * int) list -> sigma:(string * int) list -> t

val alphabet : t -> (string * int) list
val sigma : t -> (string * int) list

(** [label_arity s a] — [ar(a)], or [None] if [a ∉ Σ]. *)
val label_arity : t -> string -> int option

val rel_arity : t -> string -> int option
val max_label_arity : t -> int

(** The schema of plain relational databases coded as generalized
    databases: σ = ∅, one label per relation name (Section 5.1). *)
val relational : (string * int) list -> t

(** The schema of unranked trees with a child relation ["child"]. *)
val xml : alphabet:(string * int) list -> t

val pp : Format.formatter -> t -> unit
