open Certdb_csp
module Int_set = Structure.Int_set
module Int_map = Structure.Int_map

let child_rel = "child"

let parents s v =
  List.filter_map
    (fun t -> if t.(1) = v then Some t.(0) else None)
    (Structure.tuples_of s child_rel)

let children s v =
  List.filter_map
    (fun t -> if t.(0) = v then Some t.(1) else None)
    (Structure.tuples_of s child_rel)

let roots s =
  List.filter (fun v -> parents s v = []) (Structure.nodes s)

let is_tree s =
  match Structure.nodes s with
  | [] -> false
  | nodes -> (
    match roots s with
    | [ root ] ->
      List.for_all
        (fun v -> v = root || List.length (parents s v) = 1)
        nodes
      &&
      (* connectivity (which, with the parent counts, excludes cycles) *)
      let reached = Hashtbl.create 16 in
      let rec visit v =
        if not (Hashtbl.mem reached v) then begin
          Hashtbl.add reached v ();
          List.iter visit (children s v)
        end
      in
      visit root;
      List.for_all (Hashtbl.mem reached) nodes
    | _ -> false)

let glb s s' =
  if not (is_tree s && is_tree s') then
    invalid_arg "Tree_class.glb: operand is not a tree";
  let root = List.hd (roots s) and root' = List.hd (roots s') in
  if not (Structure.same_label s root s' root') then
    invalid_arg "Tree_class.glb: root labels differ";
  let counter = ref 0 in
  let left = Hashtbl.create 16 and right = Hashtbl.create 16 in
  let result = ref Structure.empty in
  let rec pair v v' =
    let id = !counter in
    incr counter;
    Hashtbl.replace left id v;
    Hashtbl.replace right id v';
    result := Structure.add_node ?label:(Structure.label_of s v) !result id;
    List.iter
      (fun c ->
        List.iter
          (fun c' ->
            if Structure.same_label s c s' c' then begin
              let cid = pair c c' in
              result := Structure.add_edge !result child_rel id cid
            end)
          (children s' v'))
      (children s v);
    id
  in
  ignore (pair root root');
  (!result, Hashtbl.find left, Hashtbl.find right)

let class_glb = glb
