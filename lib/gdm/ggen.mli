(** Random generalized-database generators shared by tests and benchmarks:
    tree-shaped structures (treewidth 1), ladders (treewidth 2), and flat
    (σ = ∅) databases. *)

(** [tree ~seed ~nodes ~labels ~null_prob ~domain ()] — random tree over
    the ["child"] relation; each node carries one data value, null with
    probability [null_prob], else a constant below [domain].  Nulls are
    fresh, so the result is Codd. *)
val tree :
  seed:int ->
  nodes:int ->
  labels:string list ->
  null_prob:float ->
  domain:int ->
  unit ->
  Gdb.t

(** [ladder ~seed ~rungs ~null_prob ~domain ()] — 2×[rungs] grid over an
    ["E"] relation (treewidth 2), single label ["a"]. *)
val ladder :
  seed:int -> rungs:int -> null_prob:float -> domain:int -> unit -> Gdb.t

(** [flat ~seed ~nodes ~labels_arities ~null_prob ~domain ()] — σ = ∅
    database with labels drawn from [labels_arities]. *)
val flat :
  seed:int ->
  nodes:int ->
  labels_arities:(string * int) list ->
  null_prob:float ->
  domain:int ->
  unit ->
  Gdb.t
