open Certdb_relational
open Certdb_csp

let of_instance d =
  let _, db =
    List.fold_left
      (fun (i, db) (f : Instance.fact) ->
        ( i + 1,
          Gdb.add_node db ~node:i ~label:f.rel
            ~data:(Array.to_list f.args) ))
      (0, Gdb.empty) (Instance.facts d)
  in
  db

let to_instance db =
  if Structure.rel_names (Gdb.structure db) <> [] then
    invalid_arg "Encode.to_instance: structural relations present";
  List.fold_left
    (fun acc v ->
      Instance.add_fact acc (Gdb.label db v) (Array.to_list (Gdb.data db v)))
    Instance.empty (Gdb.nodes db)

let schema_of d = Gschema.relational (Schema.relations (Instance.schema d))
