let leq d d' = Ghom.exists d d'
let leq_b ?limits d d' = Ghom.exists_b ?limits d d'
let equiv d d' = leq d d' && leq d' d
let strictly_less d d' = leq d d' && not (leq d' d)
let incomparable d d' = (not (leq d d')) && not (leq d' d)
let mem d' d = Gdb.is_complete d' && leq d d'
