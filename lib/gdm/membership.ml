open Certdb_values
open Certdb_csp
module Int_set = Structure.Int_set
module Int_map = Structure.Int_map

let candidates_for d d' v =
  let data_v = Gdb.data d v in
  List.fold_left
    (fun acc w ->
      if
        String.equal (Gdb.label d v) (Gdb.label d' w)
        && Certdb_relational.Ordering.tuple_leq data_v (Gdb.data d' w)
      then Int_set.add w acc
      else acc)
    Int_set.empty (Gdb.nodes d')

(* The R-relation of Theorem 6 as a first-class [Domains.t]: node [v] of
   [d] may map to the nodes of [d'] with the same label and
   information-greater data tuple. *)
let candidate_relation d d' =
  Domains.of_list
    (List.map (fun v -> (v, candidates_for d d' v)) (Gdb.nodes d))

let generic_leq = Gordering.leq
let generic_leq_b = Gordering.leq_b

let require_codd d =
  if not (Gdb.codd d) then
    invalid_arg "Membership.codd_leq: source is not Codd"

(* a width-w DP costs |target|^(w+1), so spending the second elimination
   heuristic up front (Treewidth.estimate) is always worth it *)
let decomposition_for ?decomposition d =
  match decomposition with
  | Some dec -> dec
  | None -> fst (Treewidth.estimate (Gdb.structure d))

let codd_leq ?decomposition d d' =
  require_codd d;
  Bounded_tw.r_hom
    ~decomposition:(decomposition_for ?decomposition d)
    ~source:(Gdb.structure d)
    ~target:(Gdb.structure d')
    ~restrict:(candidate_relation d d')
    ()

let codd_leq_witness ?decomposition d d' =
  require_codd d;
  match
    Bounded_tw.r_hom_witness
      ~decomposition:(decomposition_for ?decomposition d)
      ~source:(Gdb.structure d)
      ~target:(Gdb.structure d')
      ~restrict:(candidate_relation d d')
      ()
  with
  | None -> None
  | Some h1 ->
    (* Codd: each null occurs once, so the per-node data bindings never
       conflict. *)
    let valuation =
      Int_map.fold
        (fun v w acc ->
          match Valuation.extend_match acc (Gdb.data d v) (Gdb.data d' w) with
          | Some acc' -> acc'
          | None -> invalid_arg "Membership: R-relation inconsistent")
        h1 Valuation.empty
    in
    Some { Ghom.node_map = h1; valuation }

let mem d' d =
  Gdb.is_complete d'
  && if Gdb.codd d then codd_leq d d' else generic_leq d d'

let mem_b ?limits d' d =
  if not (Gdb.is_complete d') then `False
  else if Gdb.codd d then if codd_leq d d' then `True else `False
  else generic_leq_b ?limits d d'
