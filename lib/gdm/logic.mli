(** The logic FO(S,∼) of Section 6: first-order logic over the structural
    vocabulary σ, the labeling predicates [P_a], and attribute-equality
    predicates [=_{ij}(x,y)] ("the i-th attribute of x equals the j-th
    attribute of y").  Evaluation is over the relational view [D_EQ] of a
    generalized database, with quantifiers ranging over nodes.

    Attribute indices are 1-based, as in the paper. *)

type t =
  | True
  | False
  | Rel of string * string list (* σ-relation over node variables *)
  | Label of string * string (* P_a(x) *)
  | NodeEq of string * string (* first-order equality on nodes *)
  | EqAttr of int * string * int * string (* =_{ij}(x, y) *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string list * t
  | Forall of string list * t

val conj : t list -> t
val disj : t list -> t

val is_existential_positive : t -> bool
val is_existential : t -> bool

(** [eval db env f] — [env] maps free node variables to nodes.  [=_{ij}]
    is false when either attribute index exceeds the node's arity. *)
val eval : Gdb.t -> int Stdlib.Map.Make(String).t -> t -> bool

val holds : Gdb.t -> t -> bool
val pp : Format.formatter -> t -> unit
