open Certdb_values

let value st ~null_prob ~domain =
  if Random.State.float st 1.0 < null_prob then Value.fresh_null ()
  else Value.int (Random.State.int st domain)

let tree ~seed ~nodes ~labels ~null_prob ~domain () =
  let st = Random.State.make [| seed |] in
  let labels = Array.of_list labels in
  if Array.length labels = 0 then invalid_arg "Ggen.tree: no labels";
  let db = ref Gdb.empty in
  for i = 0 to nodes - 1 do
    let label = labels.(Random.State.int st (Array.length labels)) in
    db := Gdb.add_node !db ~node:i ~label ~data:[ value st ~null_prob ~domain ]
  done;
  for i = 1 to nodes - 1 do
    db := Gdb.add_tuple !db "child" [ Random.State.int st i; i ]
  done;
  !db

let ladder ~seed ~rungs ~null_prob ~domain () =
  let st = Random.State.make [| seed |] in
  let db = ref Gdb.empty in
  let n = 2 * rungs in
  for i = 0 to n - 1 do
    db :=
      Gdb.add_node !db ~node:i ~label:"a"
        ~data:[ value st ~null_prob ~domain ]
  done;
  for r = 0 to rungs - 1 do
    let top = 2 * r and bottom = (2 * r) + 1 in
    db := Gdb.add_tuple !db "E" [ top; bottom ];
    if r > 0 then begin
      db := Gdb.add_tuple !db "E" [ 2 * (r - 1); top ];
      db := Gdb.add_tuple !db "E" [ (2 * (r - 1)) + 1; bottom ]
    end
  done;
  !db

let flat ~seed ~nodes ~labels_arities ~null_prob ~domain () =
  let st = Random.State.make [| seed |] in
  let labels = Array.of_list labels_arities in
  if Array.length labels = 0 then invalid_arg "Ggen.flat: no labels";
  let db = ref Gdb.empty in
  for i = 0 to nodes - 1 do
    let label, arity = labels.(Random.State.int st (Array.length labels)) in
    db :=
      Gdb.add_node !db ~node:i ~label
        ~data:(List.init arity (fun _ -> value st ~null_prob ~domain))
  done;
  !db
