(** Graphviz (DOT) rendering of the library's objects, for debugging and
    documentation: generalized databases (and through them trees and
    graphs), with node labels showing the Σ-label and data tuple. *)

(** [of_gdb ?name db] — a [digraph]; σ-relations become labeled edges. *)
val of_gdb : ?name:string -> Gdb.t -> string

(** [of_structure ?name s] — structural part only. *)
val of_structure : ?name:string -> Certdb_csp.Structure.t -> string
