(** Coding relational databases as generalized databases (Section 5.1):
    σ = ∅, the structural part is a bare set with one node per fact,
    labeled by the fact's relation name; ρ carries the fact's tuple. *)

open Certdb_relational

(** [of_instance d] — node ids are assigned in fact order. *)
val of_instance : Instance.t -> Gdb.t

(** [to_instance db] — inverse direction (requires σ-facts to be absent).
    @raise Invalid_argument if the structural part has relations. *)
val to_instance : Gdb.t -> Instance.t

(** [schema_of d] — the generalized schema of the coded instance. *)
val schema_of : Instance.t -> Gschema.t
