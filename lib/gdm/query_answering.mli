(** Certain answers for FO(S,∼) sentences over generalized databases —
    the three regimes of Theorem 7:

    - existential positive sentences: certain truth coincides with direct
      (naïve) evaluation on [D_EQ] — polynomial time (part a);
    - existential sentences: certain truth is coNP; it is false iff some
      complete homomorphic image of [D] refutes the sentence (part b);
    - full FO(S,∼): undecidable in general (part c) — we expose a
      semi-decision by enumeration over a finite sample of images, which is
      sound for refutation (a found counter-image proves non-certainty) and
      exact on the fragments above. *)

val naive_holds : Gdb.t -> Logic.t -> bool

(** [certain ?on_unsupported db f] — certain truth:
    - existential positive: naïve evaluation (exact);
    - existential: complete-image enumeration (exact — the proof of
      Theorem 7(b) shows images of [D] suffice);
    - otherwise: [on_unsupported] decides; default raises
      [Invalid_argument]. *)
val certain : ?on_unsupported:(Gdb.t -> Logic.t -> bool) -> Gdb.t -> Logic.t -> bool

(** Budgeted [certain]: the existential (coNP) regime accounts one engine
    node per enumerated complete image, so a node budget or deadline in
    [limits] bounds the enumeration and surfaces as [`Unknown].  The
    polynomial existential-positive path never answers [`Unknown]. *)
val certain_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?on_unsupported:(Gdb.t -> Logic.t -> bool) ->
  Gdb.t ->
  Logic.t ->
  Certdb_csp.Engine.decision

(** Budgeted {!certain_existential}. *)
val certain_existential_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Gdb.t ->
  Logic.t ->
  Certdb_csp.Engine.decision

(** [certain_resilient ?policy ?limits ?on_unsupported db f] — certain
    truth that degrades instead of giving up (the gdm analogue of
    [Certain.certain_cq_resilient]):

    - existential positive [f]: [`Exact], by naïve evaluation (Theorem
      7(a) — exact, polynomial, no search to trip);
    - existential [f]: the coNP image enumeration under the
      retry/escalation ladder of {!Certdb_csp.Resilient}; if every
      attempt trips, one cheap completion (all nulls fresh) is checked —
      [f] false there is a sound refutation ([`Exact false]), otherwise
      nothing is certified ([`Lower_bound false]; a sentence with
      negation true on one completion says nothing about the rest);
    - otherwise [on_unsupported] decides, as in {!certain_b}.

    Never returns an [`Unknown]. *)
val certain_resilient :
  ?policy:Certdb_csp.Resilient.Policy.t ->
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?on_unsupported:(Gdb.t -> Logic.t -> bool) ->
  Gdb.t ->
  Logic.t ->
  [ `Exact of bool | `Lower_bound of bool ]

(** [certain_existential db f] — enumerate the complete homomorphic images
    of [db]: groundings of nulls into [adom ∪ fresh] composed with node
    merges among nodes made equal (same label, same grounded data); [f] is
    certainly true iff no image satisfies [¬f]. *)
val certain_existential : Gdb.t -> Logic.t -> bool

(** [complete_images db] — the finite sample of complete homomorphic images
    used by [certain_existential]. *)
val complete_images : Gdb.t -> Gdb.t list

(** [certain_by_enumeration db f] — [f] holds in every sampled image; for
    non-existential [f] this is only an approximation of certainty (OWA
    supersets are not sampled). *)
val certain_by_enumeration : Gdb.t -> Logic.t -> bool

(** [certain_data_answers ~out db f] — certain {e data} answers of an
    existential positive formula with free node variables: the output
    tuples are the designated attributes [out = [(x, i); ...]] (variable,
    1-based attribute index) of satisfying assignments, kept when they
    contain only constants.  The Theorem 7(a) argument lifts to this
    non-Boolean case: naïve evaluation then dropping null tuples is exact.
    @raise Invalid_argument if [f] is not existential positive. *)
val certain_data_answers :
  out:(string * int) list ->
  Gdb.t ->
  Logic.t ->
  Certdb_values.Value.t list list
