open Certdb_csp
module Int_map = Structure.Int_map
module Int_set = Structure.Int_set

let is_onto h d d' =
  let image =
    Int_map.fold (fun _ w s -> Int_set.add w s) h.Ghom.node_map Int_set.empty
  in
  Int_set.subset (Int_set.of_list (Gdb.nodes d')) image
  && Structure.fold_tuples
       (fun rel t ok ->
         ok
         && Structure.fold_tuples
              (fun rel' t' found ->
                found
                || String.equal rel rel'
                   && Array.length t = Array.length t'
                   && Array.for_all2
                        (fun v w -> Int_map.find v h.Ghom.node_map = w)
                        t' t)
              (Gdb.structure d) false)
       (Gdb.structure d') true

let find d d' =
  let found = ref None in
  Ghom.iter d d' (fun h ->
      if is_onto h d d' then begin
        found := Some h;
        `Stop
      end
      else `Continue);
  !found

let leq d d' = Option.is_some (find d d')
let equiv d d' = leq d d' && leq d' d
