(** The membership/ordering problem for generalized databases (Section 6,
    Theorem 6): deciding [D ⊑ D′].

    In general this is a constraint satisfaction problem (NP-complete);
    [generic_leq] solves it with the backtracking search of {!Ghom}.

    Under the Codd interpretation (each null occurs at most once) data
    constraints decouple across nodes: by Lemma 3, [D ⊑ D′] iff there is a
    structural homomorphism whose graph lies inside the relation

    {v R(D,D') = { (ν,ν') | λ(ν) = λ′(ν′) and ρ(ν) ⪯ ρ′(ν′) } v}

    which [codd_leq] decides in polynomial time by the bounded-treewidth
    dynamic program of {!Certdb_csp.Bounded_tw} (Lemma 4).  This subsumes
    the PTIME algorithms of [3] for Codd tables and of [7] for XML, both
    instances of treewidth ≤ 1. *)

open Certdb_csp

(** [candidate_relation d d'] — the relation [R(D,D')] as a first-class
    {!Certdb_csp.Domains.t}. *)
val candidate_relation : Gdb.t -> Gdb.t -> Domains.t

val generic_leq : Gdb.t -> Gdb.t -> bool

(** Budgeted generic ordering, via {!Ghom.exists_b}. *)
val generic_leq_b :
  ?limits:Engine.Limits.t -> Gdb.t -> Gdb.t -> Engine.decision

(** [codd_leq ?decomposition d d'] — PTIME for bounded treewidth.
    @raise Invalid_argument if [d] is not Codd. *)
val codd_leq : ?decomposition:Treewidth.t -> Gdb.t -> Gdb.t -> bool

(** [codd_leq_witness] — also extracts a homomorphism. *)
val codd_leq_witness :
  ?decomposition:Treewidth.t -> Gdb.t -> Gdb.t -> Ghom.t option

(** [mem d' d] — membership [D′ ∈ [[D]]] ([d'] complete), choosing the
    PTIME path automatically when [d] is Codd and the structure has small
    treewidth. *)
val mem : Gdb.t -> Gdb.t -> bool

(** Budgeted membership.  The PTIME Codd path ignores [limits] (it is
    polynomial and never answers [`Unknown]); the generic NP path threads
    them through the {!Ghom} search. *)
val mem_b : ?limits:Engine.Limits.t -> Gdb.t -> Gdb.t -> Engine.decision
