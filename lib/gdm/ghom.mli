(** Homomorphisms between generalized databases (Section 5.1): pairs
    (h₁, h₂) of a structural homomorphism on nodes and a valuation on nulls
    such that [ρ′(h₁(ν)) = h₂(ρ(ν))] for every node. *)

open Certdb_values
open Certdb_csp

type t = {
  node_map : int Structure.Int_map.t; (* h₁ *)
  valuation : Valuation.t; (* h₂ *)
}

val is_hom : t -> Gdb.t -> Gdb.t -> bool

(** [find ?restrict d d'] — [restrict] limits candidate target nodes
    (the shared {!Certdb_csp.Domains.t} representation). *)
val find : ?restrict:Domains.t -> Gdb.t -> Gdb.t -> t option

val exists : ?restrict:Domains.t -> Gdb.t -> Gdb.t -> bool

(** Budgeted search; [Unknown r] reports the tripped limit and is never
    conflated with non-existence. *)
val find_b :
  ?restrict:Domains.t ->
  ?limits:Engine.Limits.t ->
  Gdb.t ->
  Gdb.t ->
  t Engine.outcome

val exists_b :
  ?restrict:Domains.t ->
  ?limits:Engine.Limits.t ->
  Gdb.t ->
  Gdb.t ->
  Engine.decision

val iter :
  ?restrict:Domains.t ->
  Gdb.t ->
  Gdb.t ->
  (t -> [ `Continue | `Stop ]) ->
  unit

val count : Gdb.t -> Gdb.t -> int
