open Certdb_values
open Certdb_csp
module Int_map = Structure.Int_map
module Int_set = Structure.Int_set
module Obs = Certdb_obs.Obs

let searches = Obs.counter "gdm.ghom.searches"
let nodes_counter = Obs.counter "gdm.ghom.nodes"
let candidate_checks = Obs.counter "gdm.ghom.candidate_checks"
let solutions = Obs.counter "gdm.ghom.solutions"

type t = {
  node_map : int Int_map.t;
  valuation : Valuation.t;
}

let is_hom h d d' =
  let s = Gdb.structure d and s' = Gdb.structure d' in
  Solver.is_hom ~source:s ~target:s' h.node_map
  && List.for_all
       (fun v ->
         let v' = Int_map.find v h.node_map in
         Gdb.data d' v' = Valuation.apply_array h.valuation (Gdb.data d v))
       (Gdb.nodes d)

(* Backtracking on source nodes with dynamic fewest-candidates ordering;
   the valuation is threaded through data unification, the structural
   tuples are checked as soon as fully assigned. *)
let search ?(budget = Engine.Budget.unlimited) ?restrict d d' on_solution =
  let s = Gdb.structure d and s' = Gdb.structure d' in
  let target_nodes = Structure.nodes s' in
  let tuples = Structure.all_tuples s in
  let candidates (_node_map, valuation) v =
    let base =
      List.filter_map
        (fun w ->
          Obs.incr candidate_checks;
          if not (Structure.same_label s v s' w) then None
          else
            match
              Valuation.extend_match valuation (Gdb.data d v) (Gdb.data d' w)
            with
            | Some val' -> Some (w, val')
            | None -> None)
        target_nodes
    in
    match restrict with
    | None -> base
    | Some r -> List.filter (fun (w, _) -> Domains.mem r v w) base
  in
  let structural_ok node_map =
    List.for_all
      (fun (rel, tup) ->
        (not (Array.for_all (fun v -> Int_map.mem v node_map) tup))
        || Structure.mem_tuple s' rel
             (Array.map (fun v -> Int_map.find v node_map) tup))
      tuples
  in
  let exception Stop in
  let rec go state remaining =
    Obs.incr nodes_counter;
    Engine.Budget.tick_node budget;
    match remaining with
    | [] ->
      let node_map, valuation = state in
      Obs.incr solutions;
      if on_solution { node_map; valuation } = `Stop then raise Stop
    | _ ->
      let scored = List.map (fun v -> (v, candidates state v)) remaining in
      let best, cands =
        List.fold_left
          (fun (bv, bc) (v, c) ->
            if List.length c < List.length bc then (v, c) else (bv, bc))
          (List.hd scored) (List.tl scored)
      in
      let rest = List.filter (fun v -> v <> best) remaining in
      if cands = [] then Engine.Budget.tick_backtrack budget;
      List.iter
        (fun (w, val') ->
          let node_map' = Int_map.add best w (fst state) in
          if structural_ok node_map' then go (node_map', val') rest)
        cands
  in
  Obs.incr searches;
  Obs.with_span "gdm.ghom.search" (fun () ->
      try go (Int_map.empty, Valuation.empty) (Gdb.nodes d) with Stop -> ())

let find ?restrict d d' =
  let found = ref None in
  search ?restrict d d' (fun h ->
      found := Some h;
      `Stop);
  !found

let exists ?restrict d d' = Option.is_some (find ?restrict d d')

let find_b ?restrict ?(limits = Engine.Limits.unlimited) d d' =
  Engine.Budget.run limits (fun budget ->
      let found = ref None in
      search ~budget ?restrict d d' (fun h ->
          found := Some h;
          `Stop);
      !found)

let exists_b ?restrict ?limits d d' =
  Engine.decision_of_outcome (find_b ?restrict ?limits d d')

let iter ?restrict d d' f = search ?restrict d d' f

let count d d' =
  let n = ref 0 in
  iter d d' (fun _ ->
      incr n;
      `Continue);
  !n
