(** Greatest lower bounds of generalized databases (Theorem 4).

    [glb_sigma d d'] is [D ∧Σ D′]: the product of the structural parts
    restricted to equal labels, with data merged by ⊗ (equation (2) with
    [K] = all Σ-colored structures).  It is the glb in the class of all
    generalized databases of the schema.

    [glb_in_class ~class_glb d d'] is the parametric [D ∧K D′]: the caller
    supplies the glb of the structural parts within a class [K] together
    with the two homomorphisms [ι, ι′] into the operands (as node maps);
    data is attached by [ρ ⊗ ρ′ (ν) = ρ(ι ν) ⊗ ρ′(ι′ ν)]. *)

open Certdb_csp

(** Returns the glb plus the two witnessing homomorphisms into the
    operands. *)
val glb_sigma_full : Gdb.t -> Gdb.t -> Gdb.t * Ghom.t * Ghom.t

val glb_sigma : Gdb.t -> Gdb.t -> Gdb.t

(** [glb_in_class ~class_glb d d'] where
    [class_glb s s' = (g, iota, iota')] gives the structural glb within K
    and its projections.  Returns the K-glb of the databases. *)
val glb_in_class :
  class_glb:
    (Structure.t -> Structure.t -> Structure.t * (int -> int) * (int -> int)) ->
  Gdb.t ->
  Gdb.t ->
  Gdb.t

(** [family_sigma dbs] folds [glb_sigma] over a non-empty list.
    @raise Invalid_argument on []. *)
val family_sigma : Gdb.t list -> Gdb.t
