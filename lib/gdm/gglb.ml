open Certdb_values
open Certdb_csp
module Int_map = Structure.Int_map

let attach_data ~reg ~iota ~iota' d d' product_structure =
  List.fold_left
    (fun acc v ->
      let data =
        Merge.arrays reg (Gdb.data d (iota v)) (Gdb.data d' (iota' v))
      in
      match Structure.label_of product_structure v with
      | Some l -> Gdb.add_node acc ~node:v ~label:l ~data:(Array.to_list data)
      | None -> invalid_arg "Gglb: unlabeled product node")
    Gdb.empty
    (Structure.nodes product_structure)

let copy_tuples src db =
  Structure.fold_tuples
    (fun rel t acc -> Gdb.add_tuple acc rel (Array.to_list t))
    src db

let glb_sigma_full d d' =
  let s = Gdb.structure d and s' = Gdb.structure d' in
  let product, decode = Structure.product s s' in
  let iota v = fst (decode v) and iota' v = snd (decode v) in
  let reg = Merge.create () in
  let result = copy_tuples product (attach_data ~reg ~iota ~iota' d d' product) in
  let left =
    {
      Ghom.node_map =
        List.fold_left
          (fun m v -> Int_map.add v (iota v) m)
          Int_map.empty (Gdb.nodes result);
      valuation = Merge.left_valuation reg;
    }
  in
  let right =
    {
      Ghom.node_map =
        List.fold_left
          (fun m v -> Int_map.add v (iota' v) m)
          Int_map.empty (Gdb.nodes result);
      valuation = Merge.right_valuation reg;
    }
  in
  (result, left, right)

let glb_sigma d d' =
  let g, _, _ = glb_sigma_full d d' in
  g

let glb_in_class ~class_glb d d' =
  let s = Gdb.structure d and s' = Gdb.structure d' in
  let g, iota, iota' = class_glb s s' in
  let reg = Merge.create () in
  copy_tuples g (attach_data ~reg ~iota ~iota' d d' g)

let family_sigma = function
  | [] -> invalid_arg "Gglb.family_sigma: empty family"
  | d :: ds -> List.fold_left glb_sigma d ds
