open Certdb_values
open Certdb_csp

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let of_gdb ?(name = "gdb") db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v ->
      let data =
        Gdb.data db v |> Array.to_list |> List.map Value.to_string
        |> String.concat ", "
      in
      let label =
        if data = "" then Gdb.label db v
        else Printf.sprintf "%s(%s)" (Gdb.label db v) data
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape label)))
    (Gdb.nodes db);
  Structure.fold_tuples
    (fun rel t () ->
      match Array.length t with
      | 2 ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" t.(0) t.(1)
             (escape rel))
      | _ ->
        (* hyperedges: a small auxiliary node *)
        let hub = Printf.sprintf "h_%s_%s" rel
            (String.concat "_" (List.map string_of_int (Array.to_list t)))
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s [shape=point,label=\"%s\"];\n" hub (escape rel));
        Array.iteri
          (fun i v ->
            Buffer.add_string buf
              (Printf.sprintf "  %s -> n%d [label=\"%d\"];\n" hub v i))
          t)
    (Gdb.structure db) ();
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_structure ?(name = "structure") s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v ->
      let label =
        match Structure.label_of s v with
        | Some l -> Printf.sprintf "%d:%s" v l
        | None -> string_of_int v
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape label)))
    (Structure.nodes s);
  Structure.fold_tuples
    (fun rel t () ->
      if Array.length t = 2 then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" t.(0) t.(1)
             (escape rel)))
    s ();
  Buffer.add_string buf "}\n";
  Buffer.contents buf
