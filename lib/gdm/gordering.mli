(** The information ordering on generalized databases:
    [D ⊑ D′ ⇔ [[D′]] ⊆ [[D]]], characterized by homomorphism existence
    (Prop. 9). *)

val leq : Gdb.t -> Gdb.t -> bool

(** Budgeted [⊑]; [`Unknown r] when the search tripped a limit. *)
val leq_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Gdb.t ->
  Gdb.t ->
  Certdb_csp.Engine.decision
val equiv : Gdb.t -> Gdb.t -> bool
val strictly_less : Gdb.t -> Gdb.t -> bool
val incomparable : Gdb.t -> Gdb.t -> bool

(** [mem d' d] — the membership problem: complete [d'] ∈ [[d]]. *)
val mem : Gdb.t -> Gdb.t -> bool
