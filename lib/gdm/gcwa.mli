(** Closed-world ordering for generalized databases — the §7 future-work
    direction, realized the same way as for relations: [D ⊑cwa D′] iff some
    homomorphism is onto ([h₁] covers every node of [D′] and every σ-fact
    of [D′] is the image of a fact of [D]).  Restricted to the relational
    coding this coincides with {!Certdb_relational.Ordering.cwa_leq}. *)

val leq : Gdb.t -> Gdb.t -> bool
val find : Gdb.t -> Gdb.t -> Ghom.t option

(** [equiv d d'] — mutual [⊑cwa]. *)
val equiv : Gdb.t -> Gdb.t -> bool
