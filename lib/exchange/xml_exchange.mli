(** XML data exchange (Section 5.3, with K = unranked trees): rules map
    tree patterns (incomplete trees) to tree heads; a solution is a tree
    into which every triggered head maps.  Because least upper bounds can
    fail for trees (Prop. 10), there is no canonical solution in general —
    [solutions_m_of_d] exposes M(D), [is_solution] checks candidates, and
    [find_incomparable_solutions] exhibits the loss of canonicity the paper
    explains. *)

open Certdb_xml

type rule = {
  body : Tree.t; (* an incomplete tree acting as a pattern *)
  head : Tree.t;
}

type t = rule list

val rule : body:Tree.t -> head:Tree.t -> rule

(** [m_of_d mapping source] — the instantiated heads, one per trigger
    (homomorphism of the body into the source); frontier nulls shared
    between body and head receive the trigger's values, head-only nulls
    are renamed apart. *)
val m_of_d : t -> Tree.t -> Tree.t list

(** [is_solution mapping ~source candidate] — every instantiated head maps
    homomorphically into [candidate]. *)
val is_solution : t -> source:Tree.t -> Tree.t -> bool

(** [is_universal_vs mapping ~source candidate ~solutions] — a solution
    below every supplied solution. *)
val is_universal_vs :
  t -> source:Tree.t -> Tree.t -> solutions:Tree.t list -> bool

(** [incomparable_solutions mapping ~source s1 s2] — both are solutions and
    neither maps into the other: a certificate that no universal solution
    can dominate the pair canonically (the Prop. 10 phenomenon). *)
val incomparable_solutions : t -> source:Tree.t -> Tree.t -> Tree.t -> bool
