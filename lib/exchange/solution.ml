open Certdb_values
open Certdb_gdm

let is_solution mapping ~source candidate =
  List.for_all
    (fun (r : Mapping.rule) ->
      let fr = Mapping.frontier r in
      List.for_all
        (fun (h : Ghom.t) ->
          (* instantiate the head's frontier nulls with h₂ and ask for a
             homomorphism of the result — this forces g₂ to coincide with
             h₂ on the frontier *)
          let h2_frontier =
            List.fold_left
              (fun acc (n, v) ->
                if Value.Set.mem n fr then Valuation.bind acc n v else acc)
              Valuation.empty
              (Valuation.bindings h.valuation)
          in
          let head' = Gdb.apply h2_frontier r.head in
          Ghom.exists head' candidate)
        (Mapping.triggers r source))
    mapping

let is_universal_vs mapping ~source candidate ~solutions =
  is_solution mapping ~source candidate
  && List.for_all (fun s -> Gordering.leq candidate s) solutions

let random_solutions mapping ~source ~seed ~count =
  let canonical = Universal.canonical_solution mapping source in
  let st = Random.State.make [| seed |] in
  List.init count (fun i ->
      let grounded =
        if i mod 2 = 0 then Gdb.ground canonical else canonical
      in
      (* add a noise node with a label drawn from the existing ones *)
      match Gdb.nodes grounded with
      | [] -> grounded
      | vs ->
        let v = List.nth vs (Random.State.int st (List.length vs)) in
        let fresh_id = 1 + List.fold_left max 0 vs in
        let data =
          Array.to_list
            (Array.map
               (fun _ -> Value.fresh_const ())
               (Gdb.data grounded v))
        in
        Gdb.add_node grounded ~node:fresh_id ~label:(Gdb.label grounded v)
          ~data)
