(** Solutions in data exchange (Section 5.3): [D′] is a solution for
    source [D] under mapping [M] if for every rule I → I′ and every
    homomorphism (h₁,h₂) : I → D there is a homomorphism (g₁,g₂) : I′ → D′
    with g₂ agreeing with h₂ on the frontier nulls. *)

open Certdb_gdm

val is_solution : Mapping.t -> source:Gdb.t -> Gdb.t -> bool

(** [is_universal_vs mapping ~source candidate ~solutions] — [candidate] is
    a solution and maps homomorphically into every supplied solution
    (a finite-sample check of universality). *)
val is_universal_vs :
  Mapping.t -> source:Gdb.t -> Gdb.t -> solutions:Gdb.t list -> bool

(** [random_solutions mapping ~source ~seed ~count] — sample solutions by
    grounding the canonical solution in [count] different ways and adding
    noise nodes; useful to exercise universality checks. *)
val random_solutions :
  Mapping.t -> source:Gdb.t -> seed:int -> count:int -> Gdb.t list
