(** Certain answers in data exchange: the standard consequence of
    universality (Theorem 5 + the naïve-evaluation theorem) — for a union
    of conjunctive queries over the target schema, the certain answers over
    all solutions equal the naïve evaluation of the query on any universal
    solution (e.g. the canonical one produced by the chase). *)

open Certdb_relational

(** [certain_ucq mapping ~source q] — chase, then naïve-evaluate. *)
val certain_ucq :
  Mapping.t -> source:Instance.t -> Certdb_query.Ucq.t -> Instance.t

(** [certain_ucq_via_core mapping ~source q] — same answers through the
    (smaller) core solution; equality with [certain_ucq] is guaranteed
    because hom-equivalent solutions give the same naïve UCQ answers. *)
val certain_ucq_via_core :
  Mapping.t -> source:Instance.t -> Certdb_query.Ucq.t -> Instance.t
