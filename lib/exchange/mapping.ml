open Certdb_values
open Certdb_gdm

type rule = {
  body : Gdb.t;
  head : Gdb.t;
}

type t = rule list

let rule ~body ~head = { body; head }

let relational_rule ~body ~head =
  { body = Encode.of_instance body; head = Encode.of_instance head }

let frontier r = Value.Set.inter (Gdb.nulls r.body) (Gdb.nulls r.head)

let triggers r source =
  let acc = ref [] in
  Ghom.iter r.body source (fun h ->
      acc := h :: !acc;
      `Continue);
  List.rev !acc

let m_of_d mapping source =
  List.concat_map
    (fun r ->
      let fr = frontier r in
      List.map
        (fun (h : Ghom.t) ->
          (* h₂ restricted to the frontier instantiates the head; nulls
             private to the head are renamed apart so that distinct
             triggers do not share them. *)
          let h2_frontier =
            List.fold_left
              (fun acc (n, v) ->
                if Value.Set.mem n fr then Valuation.bind acc n v else acc)
              Valuation.empty
              (Valuation.bindings h.valuation)
          in
          let instantiated = Gdb.apply h2_frontier r.head in
          (* rename apart only the head-invented nulls: values that flowed
             in from the source through the frontier must keep their
             identity across pieces *)
          let preserved =
            Valuation.range h2_frontier
            |> Value.Set.filter Value.is_null
            |> Value.Set.union (Gdb.nulls source)
          in
          let renaming =
            Value.Set.fold
              (fun n acc ->
                if Value.Set.mem n preserved then acc
                else Valuation.bind acc n (Value.fresh_null ()))
              (Gdb.nulls instantiated) Valuation.empty
          in
          Gdb.apply renaming instantiated)
        (triggers r source))
    mapping
