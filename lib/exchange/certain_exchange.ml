
let certain_ucq mapping ~source q =
  let solution = Universal.chase_relational mapping source in
  Certdb_query.Certain.naive_eval_ucq q solution

let certain_ucq_via_core mapping ~source q =
  let core =
    Universal.core_solution_relational mapping
      (Certdb_gdm.Encode.of_instance source)
  in
  Certdb_query.Certain.naive_eval_ucq q core
