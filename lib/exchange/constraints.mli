(** Target constraints and the general chase.  Section 7 of the paper
    points at constraints as the place where least upper bounds (and hence
    canonical solutions) break; this module provides the machinery to
    explore that: equality-generating dependencies (egds), target
    tuple-generating dependencies (tgds), and a bounded fixpoint chase over
    naïve instances.

    A tgd is a pair of instances (body, head) whose shared nulls are
    frontier variables (as in {!Mapping}); an egd is a body instance plus a
    pair of its nulls that must be equal whenever the body matches. *)

open Certdb_values
open Certdb_relational

type tgd = {
  tgd_body : Instance.t;
  tgd_head : Instance.t;
}

type egd = {
  egd_body : Instance.t;
  left : Value.t; (* a null of the body *)
  right : Value.t; (* a null or constant of the body *)
}

type t = {
  tgds : tgd list;
  egds : egd list;
}

val tgd : body:Instance.t -> head:Instance.t -> tgd
val egd : body:Instance.t -> left:Value.t -> right:Value.t -> egd
val make : ?tgds:tgd list -> ?egds:egd list -> unit -> t

(** [satisfies d c] — does [d] (viewed naïvely, nulls as values) satisfy
    every constraint?  A tgd is satisfied when every body match extends to
    a head match agreeing on the frontier; an egd when every body match
    equates the two designated values. *)
val satisfies : Instance.t -> t -> bool

(** Budgeted [satisfies]: each constraint check accounts one engine node
    against [limits]; a tripped limit surfaces as [`Unknown]. *)
val satisfies_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Instance.t ->
  t ->
  Certdb_csp.Engine.decision

exception Chase_failure of string
(** An egd required two distinct constants to be equal. *)

(** [chase ?max_rounds d c] — fixpoint chase: apply unsatisfied tgds
    (inventing fresh nulls for head-only variables) and egds (unifying
    values, preferring constants as representatives).
    @raise Chase_failure on an egd clash.
    @raise Invalid_argument if [max_rounds] (default 100) is exceeded —
    the chase need not terminate for arbitrary tgds. *)
val chase : ?max_rounds:int -> Instance.t -> t -> Instance.t

(** Budgeted chase: one engine node per chase round.  [Sat d'] is the
    chased instance, [Unsat] an egd clash (no solution exists), and
    [Unknown r] a tripped limit — the round cap still raises
    [Invalid_argument] as in {!chase}. *)
val chase_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?max_rounds:int ->
  Instance.t ->
  t ->
  Instance.t Certdb_csp.Engine.outcome

(** [universal_solution_with_constraints mapping ~source ~target_constraints]
    — canonical solution followed by the target chase; [None] when the
    chase fails (no solution exists). *)
val universal_solution_with_constraints :
  Mapping.t -> source:Instance.t -> target_constraints:t -> Instance.t option
