(** Target constraints and the general chase.  Section 7 of the paper
    points at constraints as the place where least upper bounds (and hence
    canonical solutions) break; this module provides the machinery to
    explore that: equality-generating dependencies (egds), target
    tuple-generating dependencies (tgds), and a bounded fixpoint chase over
    naïve instances.

    A tgd is a pair of instances (body, head) whose shared nulls are
    frontier variables (as in {!Mapping}); an egd is a body instance plus a
    pair of its nulls that must be equal whenever the body matches. *)

open Certdb_values
open Certdb_relational

type tgd = {
  tgd_body : Instance.t;
  tgd_head : Instance.t;
}

type egd = {
  egd_body : Instance.t;
  left : Value.t; (* a null of the body *)
  right : Value.t; (* a null or constant of the body *)
}

type t = {
  tgds : tgd list;
  egds : egd list;
}

val tgd : body:Instance.t -> head:Instance.t -> tgd
val egd : body:Instance.t -> left:Value.t -> right:Value.t -> egd
val make : ?tgds:tgd list -> ?egds:egd list -> unit -> t

(** [satisfies d c] — does [d] (viewed naïvely, nulls as values) satisfy
    every constraint?  A tgd is satisfied when every body match extends to
    a head match agreeing on the frontier; an egd when every body match
    equates the two designated values. *)
val satisfies : Instance.t -> t -> bool

(** Budgeted [satisfies]: each constraint check accounts one engine node
    against [limits]; a tripped limit surfaces as [`Unknown]. *)
val satisfies_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  Instance.t ->
  t ->
  Certdb_csp.Engine.decision

exception Chase_failure of string
(** An egd required two distinct constants to be equal. *)

(** {2 Weak acyclicity}

    Static termination analysis of the tgd set via the position dependency
    graph (Fagin et al., data exchange).  A position is a (relation,
    column) pair; regular edges propagate frontier nulls from body to head
    positions, special edges point at positions where a tgd invents an
    existential null.  The set is weakly acyclic — every chase sequence
    terminates — iff no cycle passes through a special edge. *)

type position = string * int

type wa_certificate =
  | Wa_terminates of {
      positions : position list;
      ranks : (position * int) list;
          (** max number of special edges on any path into the position *)
      max_rank : int;
    }
  | Wa_diverges of {
      cycle : position list;
          (** positions along the cycle, starting (and implicitly ending)
              at the source of the special edge *)
      special : position * position;
    }

(** [weak_acyclicity c] classifies the tgd set of [c], with a certificate
    either way: position ranks when weakly acyclic, or a cycle through a
    special edge when not. *)
val weak_acyclicity : t -> wa_certificate

(** [certified_round_bound c d] — a round bound sufficient for any chase
    of [d] by [c] to reach a fixpoint, derived from the rank stratification
    (polynomial in [d] for a fixed weakly acyclic [c]; saturates at 10^9
    rather than overflowing).  [None] when the set is not weakly acyclic. *)
val certified_round_bound : t -> Instance.t -> int option

type termination =
  [ `Auto  (** certified bound when weakly acyclic, legacy cap otherwise *)
  | `Certified  (** derived bound; reject non-weakly-acyclic sets *)
  | `Bounded of int  (** explicit round cap, old behaviour *) ]

(** [chase ?termination ?max_rounds d c] — fixpoint chase: apply
    unsatisfied tgds (inventing fresh nulls for head-only variables) and
    egds (unifying values, preferring constants as representatives).

    Round limit resolution: an explicit [~termination] wins; otherwise an
    explicit [~max_rounds n] means [`Bounded n]; otherwise [`Auto].
    [`Auto] uses the certified bound for weakly acyclic sets (counter
    [exchange.chase.certified]) and falls back to a cap of 100 for the
    rest (counter [exchange.chase.uncertified]).
    @raise Chase_failure on an egd clash.
    @raise Invalid_argument when the resolved round limit is exceeded, or
    with [~termination:`Certified] on a non-weakly-acyclic tgd set. *)
val chase :
  ?termination:termination -> ?max_rounds:int -> Instance.t -> t -> Instance.t

(** Budgeted chase: one engine node per chase round.  [Sat d'] is the
    chased instance, [Unsat] an egd clash (no solution exists), and
    [Unknown r] a tripped limit — the round cap still raises
    [Invalid_argument] as in {!chase}, and termination resolution is the
    same. *)
val chase_b :
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?termination:termination ->
  ?max_rounds:int ->
  Instance.t ->
  t ->
  Instance.t Certdb_csp.Engine.outcome

(** [universal_solution_with_constraints mapping ~source ~target_constraints]
    — canonical solution followed by the target chase; [None] when the
    chase fails (no solution exists). *)
val universal_solution_with_constraints :
  Mapping.t -> source:Instance.t -> target_constraints:t -> Instance.t option
