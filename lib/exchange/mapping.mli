(** Schema mappings for data exchange in the generalized model
    (Section 5.3): rules I → I′ where I, I′ are generalized databases over
    the source and target schemas, and the nulls shared between I and I′
    play the role of frontier variables. *)

open Certdb_values
open Certdb_gdm
open Certdb_relational

type rule = {
  body : Gdb.t; (* I *)
  head : Gdb.t; (* I′ *)
}

type t = rule list

(** [rule ~body ~head] — nulls occurring in both sides are the frontier. *)
val rule : body:Gdb.t -> head:Gdb.t -> rule

(** [relational_rule ~body ~head] — a relational st-tgd given as two naïve
    instances whose shared nulls are the frontier (e.g.
    [S(x,y,u) → T(x,z), T(z,y)] is [body = {S(⊥x,⊥y,⊥u)}],
    [head = {T(⊥x,⊥z), T(⊥z,⊥y)}]). *)
val relational_rule : body:Instance.t -> head:Instance.t -> rule

val frontier : rule -> Value.Set.t

(** [triggers rule source] — all homomorphisms from the rule body into the
    source. *)
val triggers : rule -> Gdb.t -> Ghom.t list

(** [m_of_d mapping source] — the set M(D) of single-rule applications:
    for each rule I → I′ and each trigger (h₁,h₂) ∈ Hom(I, D), the
    instance h₂(I′) (head-only nulls renamed apart per trigger, as in the
    disjoint-union lub). *)
val m_of_d : t -> Gdb.t -> Gdb.t list
