(** Universal solutions as least upper bounds (Theorem 5): the K-universal
    solutions are exactly the ∼-class of [∨K M(D)].  With no structural
    restriction the lub is the disjoint union after renaming nulls apart —
    the canonical universal solution; its core is the core solution. *)

open Certdb_gdm
open Certdb_relational

(** [canonical_solution m d] — [⊔ M(D)], nulls renamed apart. *)
val canonical_solution : Mapping.t -> Gdb.t -> Gdb.t

(** [core_solution_relational m d] — for relational mappings (σ = ∅): the
    core of the canonical solution, computed on the relational instance.
    @raise Invalid_argument if the canonical solution has σ-facts. *)
val core_solution_relational : Mapping.t -> Gdb.t -> Instance.t

(** [chase_relational m d] — the relational chase with st-tgds: apply every
    rule to every trigger in the source instance [d]; one round suffices
    for source-to-target dependencies.  Returns the canonical solution as a
    naïve instance. *)
val chase_relational : Mapping.t -> Instance.t -> Instance.t
