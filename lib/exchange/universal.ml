open Certdb_gdm
open Certdb_relational

let canonical_solution mapping source =
  List.fold_left
    (fun acc piece ->
      let u, _, _ = Gdb.disjoint_union acc piece in
      u)
    Gdb.empty
    (Mapping.m_of_d mapping source)

let core_solution_relational mapping source =
  let canonical = canonical_solution mapping source in
  Core_instance.core (Encode.to_instance canonical)

let chase_relational mapping source =
  let gdm_source = Encode.of_instance source in
  Encode.to_instance (canonical_solution mapping gdm_source)
