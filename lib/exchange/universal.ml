open Certdb_gdm
open Certdb_relational
module Obs = Certdb_obs.Obs

let chase_steps = Obs.counter "exchange.chase.steps"
let chase_facts = Obs.counter "exchange.chase.facts"
let chases = Obs.counter "exchange.chase.runs"

let canonical_solution mapping source =
  Obs.incr chases;
  Obs.with_span "exchange.chase" @@ fun () ->
  List.fold_left
    (fun acc piece ->
      Obs.incr chase_steps;
      let u, _, _ = Gdb.disjoint_union acc piece in
      u)
    Gdb.empty
    (Mapping.m_of_d mapping source)

let core_solution_relational mapping source =
  let canonical = canonical_solution mapping source in
  Core_instance.core (Encode.to_instance canonical)

let chase_relational mapping source =
  let gdm_source = Encode.of_instance source in
  let result = Encode.to_instance (canonical_solution mapping gdm_source) in
  Obs.add chase_facts (Instance.cardinal result);
  result
