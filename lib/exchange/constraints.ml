open Certdb_values
open Certdb_relational
module Engine = Certdb_csp.Engine

type tgd = {
  tgd_body : Instance.t;
  tgd_head : Instance.t;
}

type egd = {
  egd_body : Instance.t;
  left : Value.t;
  right : Value.t;
}

type t = {
  tgds : tgd list;
  egds : egd list;
}

let tgd ~body ~head = { tgd_body = body; tgd_head = head }

let egd ~body ~left ~right =
  if not (Value.is_null left) then
    invalid_arg "Constraints.egd: left side must be a null of the body";
  { egd_body = body; left; right }

let make ?(tgds = []) ?(egds = []) () = { tgds; egds }

let frontier_restriction body head h =
  let fr = Value.Set.inter (Instance.nulls body) (Instance.nulls head) in
  List.fold_left
    (fun acc (n, v) -> if Value.Set.mem n fr then Valuation.bind acc n v else acc)
    Valuation.empty (Valuation.bindings h)

let tgd_violations d (r : tgd) =
  let violations = ref [] in
  Hom.iter r.tgd_body d (fun h ->
      let head' = Instance.apply (frontier_restriction r.tgd_body r.tgd_head h) r.tgd_head in
      if not (Hom.exists head' d) then violations := head' :: !violations;
      `Continue);
  List.rev !violations

let egd_violations d (r : egd) =
  let violations = ref [] in
  Hom.iter r.egd_body d (fun h ->
      let l = Valuation.apply h r.left and rr = Valuation.apply h r.right in
      if not (Value.equal l rr) then violations := (l, rr) :: !violations;
      `Continue);
  List.rev !violations

let satisfies d c =
  List.for_all (fun r -> tgd_violations d r = []) c.tgds
  && List.for_all (fun r -> egd_violations d r = []) c.egds

let satisfies_b ?(limits = Engine.Limits.unlimited) d c =
  Engine.decision_of_outcome
    (Engine.Budget.run limits (fun budget ->
         let check violations rs =
           List.for_all
             (fun r ->
               Engine.Budget.tick_node budget;
               violations d r = [])
             rs
         in
         if check tgd_violations c.tgds && check egd_violations c.egds then
           Some ()
         else None))

exception Chase_failure of string

let unify_step d (l, r) =
  match Value.is_null l, Value.is_null r with
  | false, false ->
    raise
      (Chase_failure
         (Format.asprintf "egd equates distinct constants %a and %a" Value.pp
            l Value.pp r))
  | true, _ ->
    (* prefer the (possibly constant) right-hand side as representative *)
    Instance.apply (Valuation.bind Valuation.empty l r) d
  | false, true -> Instance.apply (Valuation.bind Valuation.empty r l) d

let chase_budgeted ~budget ~max_rounds d c =
  let rec round d n =
    Certdb_obs.Fault.hit "exchange.chase.step";
    Engine.Budget.tick_node budget;
    (* egds first: they only shrink the instance *)
    let step =
      match List.concat_map (egd_violations d) c.egds with
      | (l, r) :: _ -> Some (fun () -> unify_step d (l, r))
      | [] -> (
        match List.concat_map (tgd_violations d) c.tgds with
        | [] -> None
        | head' :: _ ->
          Some
            (fun () ->
              let fresh, _ =
                Instance.rename_apart ~avoid:(Instance.nulls d) head'
              in
              Instance.union d fresh))
    in
    match step with
    | None -> d
    | Some apply ->
      if n >= max_rounds then
        invalid_arg
          "Constraints.chase: round limit exceeded (non-terminating?)";
      round (apply ()) (n + 1)
  in
  round d 0

let chase ?(max_rounds = 100) d c =
  chase_budgeted ~budget:Engine.Budget.unlimited ~max_rounds d c

let chase_b ?(limits = Engine.Limits.unlimited) ?(max_rounds = 100) d c =
  Engine.Budget.run limits (fun budget ->
      match chase_budgeted ~budget ~max_rounds d c with
      | d -> Some d
      | exception Chase_failure _ -> None)

let universal_solution_with_constraints mapping ~source ~target_constraints =
  let canonical = Universal.chase_relational mapping source in
  match chase canonical target_constraints with
  | solution -> Some solution
  | exception Chase_failure _ -> None
