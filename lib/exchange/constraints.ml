open Certdb_values
open Certdb_relational
module Engine = Certdb_csp.Engine

type tgd = {
  tgd_body : Instance.t;
  tgd_head : Instance.t;
}

type egd = {
  egd_body : Instance.t;
  left : Value.t;
  right : Value.t;
}

type t = {
  tgds : tgd list;
  egds : egd list;
}

let tgd ~body ~head = { tgd_body = body; tgd_head = head }

let egd ~body ~left ~right =
  if not (Value.is_null left) then
    invalid_arg "Constraints.egd: left side must be a null of the body";
  { egd_body = body; left; right }

let make ?(tgds = []) ?(egds = []) () = { tgds; egds }

let frontier_restriction body head h =
  let fr = Value.Set.inter (Instance.nulls body) (Instance.nulls head) in
  List.fold_left
    (fun acc (n, v) -> if Value.Set.mem n fr then Valuation.bind acc n v else acc)
    Valuation.empty (Valuation.bindings h)

let tgd_violations d (r : tgd) =
  let violations = ref [] in
  Hom.iter r.tgd_body d (fun h ->
      let head' = Instance.apply (frontier_restriction r.tgd_body r.tgd_head h) r.tgd_head in
      if not (Hom.exists head' d) then violations := head' :: !violations;
      `Continue);
  List.rev !violations

let egd_violations d (r : egd) =
  let violations = ref [] in
  Hom.iter r.egd_body d (fun h ->
      let l = Valuation.apply h r.left and rr = Valuation.apply h r.right in
      if not (Value.equal l rr) then violations := (l, rr) :: !violations;
      `Continue);
  List.rev !violations

let satisfies d c =
  List.for_all (fun r -> tgd_violations d r = []) c.tgds
  && List.for_all (fun r -> egd_violations d r = []) c.egds

let satisfies_b ?(limits = Engine.Limits.unlimited) d c =
  Engine.decision_of_outcome
    (Engine.Budget.run limits (fun budget ->
         let check violations rs =
           List.for_all
             (fun r ->
               Engine.Budget.tick_node budget;
               violations d r = [])
             rs
         in
         if check tgd_violations c.tgds && check egd_violations c.egds then
           Some ()
         else None))

exception Chase_failure of string

(* --- weak acyclicity of the tgd set (Fagin et al., data exchange) ---

   Positions are (relation, column).  For every tgd and every frontier
   null x occurring at body position p: a regular edge from p to every
   head position of x, and a special edge from p to every head position
   holding an existentially invented (head-only) null.  The set is weakly
   acyclic iff no cycle goes through a special edge; then every chase
   sequence terminates, and the rank function (max special edges on a
   path into a position) bounds how many strata of fresh nulls can ever
   be created. *)

type position = string * int

module Pos_set = Set.Make (struct
  type t = position

  let compare = compare
end)

type wa_edge = {
  edge_src : position;
  edge_dst : position;
  special : bool;
}

type wa_certificate =
  | Wa_terminates of {
      positions : position list;
      ranks : (position * int) list;
      max_rank : int;
    }
  | Wa_diverges of {
      cycle : position list;
      special : position * position;
    }

let positions_of_null inst n =
  List.fold_left
    (fun acc (f : Instance.fact) ->
      let acc = ref acc in
      Array.iteri
        (fun i v -> if Value.equal v n then acc := Pos_set.add (f.rel, i) !acc)
        f.args;
      !acc)
    Pos_set.empty (Instance.facts inst)

let all_positions inst acc =
  List.fold_left
    (fun acc (f : Instance.fact) ->
      let acc = ref acc in
      Array.iteri (fun i _ -> acc := Pos_set.add (f.rel, i) !acc) f.args;
      !acc)
    acc (Instance.facts inst)

let wa_edges c =
  List.concat_map
    (fun r ->
      let body_nulls = Instance.nulls r.tgd_body
      and head_nulls = Instance.nulls r.tgd_head in
      let frontier = Value.Set.inter body_nulls head_nulls in
      let existential = Value.Set.diff head_nulls body_nulls in
      let existential_positions =
        Value.Set.fold
          (fun n acc -> Pos_set.union (positions_of_null r.tgd_head n) acc)
          existential Pos_set.empty
      in
      Value.Set.fold
        (fun x acc ->
          let body_ps = Pos_set.elements (positions_of_null r.tgd_body x) in
          let head_ps = Pos_set.elements (positions_of_null r.tgd_head x) in
          List.concat_map
            (fun p ->
              List.map
                (fun q -> { edge_src = p; edge_dst = q; special = false })
                head_ps
              @ List.map
                  (fun q -> { edge_src = p; edge_dst = q; special = true })
                  (Pos_set.elements existential_positions))
            body_ps
          @ acc)
        frontier [])
    c.tgds

(* path from [src] to [dst] over the edge list, as the visited positions
   (inclusive); None when unreachable.  BFS with parent links. *)
let find_path edges src dst =
  let parent = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add src queue;
  Hashtbl.replace parent src src;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun e ->
        if e.edge_src = u && not (Hashtbl.mem parent e.edge_dst) then begin
          Hashtbl.replace parent e.edge_dst u;
          if e.edge_dst = dst then found := true
          else Queue.add e.edge_dst queue
        end)
      edges
  done;
  if not !found then None
  else begin
    let rec walk acc p =
      if p = src then src :: acc else walk (p :: acc) (Hashtbl.find parent p)
    in
    Some (walk [] dst)
  end

let weak_acyclicity c =
  let edges = wa_edges c in
  let positions =
    List.fold_left
      (fun acc r -> all_positions r.tgd_body (all_positions r.tgd_head acc))
      Pos_set.empty c.tgds
  in
  let diverging =
    List.find_map
      (fun e ->
        if not e.special then None
        else
          (* a special edge u -> v on a cycle iff v reaches u *)
          Option.map
            (fun path -> (e, path))
            (find_path edges e.edge_dst e.edge_src))
      edges
  in
  match diverging with
  | Some (e, path) ->
    (* cycle: src --special--> dst --path--> src *)
    Wa_diverges { cycle = e.edge_src :: path; special = (e.edge_src, e.edge_dst) }
  | None ->
    (* ranks by fixpoint: monotone, bounded by the number of special
       edges (a higher value would reuse a special edge on a cycle) *)
    let rank = Hashtbl.create 16 in
    let get p = Option.value ~default:0 (Hashtbl.find_opt rank p) in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun e ->
          let candidate = get e.edge_src + if e.special then 1 else 0 in
          if candidate > get e.edge_dst then begin
            Hashtbl.replace rank e.edge_dst candidate;
            changed := true
          end)
        edges
    done;
    let ranks =
      List.map (fun p -> (p, get p)) (Pos_set.elements positions)
    in
    let max_rank = List.fold_left (fun m (_, r) -> max m r) 0 ranks in
    Wa_terminates { positions = Pos_set.elements positions; ranks; max_rank }

(* Saturating arithmetic for the derived round bound: the bound is a
   termination certificate, not a tight estimate, so overflow clamps to a
   cap instead of wrapping. *)
let sat_cap = 1_000_000_000
let sat_add a b = if a >= sat_cap - b then sat_cap else a + b
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a >= sat_cap / b then sat_cap else a * b

let sat_pow a k =
  let rec go acc k = if k <= 0 then acc else go (sat_mul acc a) (k - 1) in
  go 1 k

let derived_round_bound c ~max_rank d =
  (* Values stratified by rank: rank 0 is the active domain plus every
     constant of the constraints; each higher stratum is created by tgd
     firings over the previous one (at most #tgds * head-nulls per body
     match, with at most V^body-nulls matches).  Rounds: one fact per tgd
     step (bounded by #relations * V^arity) plus one null merged per egd
     step (bounded by V). *)
  let tgd_count = List.length c.tgds in
  let max_head_nulls =
    List.fold_left
      (fun m r ->
        max m
          (Value.Set.cardinal
             (Value.Set.diff (Instance.nulls r.tgd_head)
                (Instance.nulls r.tgd_body))))
      0 c.tgds
  in
  let max_body_nulls =
    List.fold_left
      (fun m r -> max m (Value.Set.cardinal (Instance.nulls r.tgd_body)))
      0 c.tgds
  in
  let constraint_constants =
    List.fold_left
      (fun acc r ->
        Value.Set.union acc
          (Value.Set.union
             (Instance.constants r.tgd_body)
             (Instance.constants r.tgd_head)))
      (List.fold_left
         (fun acc r -> Value.Set.union acc (Instance.constants r.egd_body))
         Value.Set.empty c.egds)
      c.tgds
  in
  let v0 =
    1
    + Value.Set.cardinal
        (Value.Set.union (Instance.active_domain d) constraint_constants)
  in
  let grow v =
    sat_add v
      (sat_mul tgd_count
         (sat_mul (max 1 max_head_nulls) (sat_pow v (max 1 max_body_nulls))))
  in
  let rec strata v i = if i >= max_rank then v else strata (grow v) (i + 1) in
  let values = if tgd_count = 0 then v0 else strata v0 max_rank in
  let rels = Hashtbl.create 8 in
  let max_arity = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun inst ->
          List.iter
            (fun (f : Instance.fact) ->
              Hashtbl.replace rels f.rel ();
              max_arity := max !max_arity (Array.length f.args))
            (Instance.facts inst))
        [ r.tgd_body; r.tgd_head ])
    c.tgds;
  List.iter
    (fun rel ->
      Hashtbl.replace rels rel ();
      List.iter
        (fun t -> max_arity := max !max_arity (Array.length t))
        (Instance.tuples d rel))
    (Instance.relations d);
  let facts = sat_mul (Hashtbl.length rels) (sat_pow values !max_arity) in
  sat_add 1 (sat_add facts values)

let certified_round_bound c d =
  match weak_acyclicity c with
  | Wa_diverges _ -> None
  | Wa_terminates { max_rank; _ } -> Some (derived_round_bound c ~max_rank d)

let unify_step d (l, r) =
  match Value.is_null l, Value.is_null r with
  | false, false ->
    raise
      (Chase_failure
         (Format.asprintf "egd equates distinct constants %a and %a" Value.pp
            l Value.pp r))
  | true, _ ->
    (* prefer the (possibly constant) right-hand side as representative *)
    Instance.apply (Valuation.bind Valuation.empty l r) d
  | false, true -> Instance.apply (Valuation.bind Valuation.empty r l) d

let chase_budgeted ~budget ~max_rounds d c =
  let rec round d n =
    Certdb_obs.Fault.hit "exchange.chase.step";
    Engine.Budget.tick_node budget;
    (* egds first: they only shrink the instance *)
    let step =
      match List.concat_map (egd_violations d) c.egds with
      | (l, r) :: _ -> Some (fun () -> unify_step d (l, r))
      | [] -> (
        match List.concat_map (tgd_violations d) c.tgds with
        | [] -> None
        | head' :: _ ->
          Some
            (fun () ->
              let fresh, _ =
                Instance.rename_apart ~avoid:(Instance.nulls d) head'
              in
              Instance.union d fresh))
    in
    match step with
    | None -> d
    | Some apply ->
      if n >= max_rounds then
        invalid_arg
          "Constraints.chase: round limit exceeded (non-terminating?)";
      round (apply ()) (n + 1)
  in
  round d 0

type termination =
  [ `Auto  (** certified bound when weakly acyclic, legacy cap otherwise *)
  | `Certified  (** derived bound; reject non-weakly-acyclic sets *)
  | `Bounded of int  (** explicit round cap, old behaviour *) ]

let chase_certified_counter = Certdb_obs.Obs.counter "exchange.chase.certified"

let chase_uncertified_counter =
  Certdb_obs.Obs.counter "exchange.chase.uncertified"

let default_round_cap = 100

let resolve_rounds ?termination ?max_rounds d c =
  let termination =
    match (termination, max_rounds) with
    | Some t, _ -> t
    | None, Some n -> `Bounded n
    | None, None -> `Auto
  in
  match termination with
  | `Bounded n -> n
  | `Certified -> (
    match certified_round_bound c d with
    | Some b ->
      Certdb_obs.Obs.incr chase_certified_counter;
      b
    | None ->
      invalid_arg
        "Constraints.chase: ~termination:`Certified but the tgd set is not \
         weakly acyclic")
  | `Auto -> (
    match certified_round_bound c d with
    | Some b ->
      Certdb_obs.Obs.incr chase_certified_counter;
      b
    | None ->
      Certdb_obs.Obs.incr chase_uncertified_counter;
      Option.value max_rounds ~default:default_round_cap)

let chase ?termination ?max_rounds d c =
  let max_rounds = resolve_rounds ?termination ?max_rounds d c in
  chase_budgeted ~budget:Engine.Budget.unlimited ~max_rounds d c

let chase_b ?(limits = Engine.Limits.unlimited) ?termination ?max_rounds d c =
  let max_rounds = resolve_rounds ?termination ?max_rounds d c in
  Engine.Budget.run limits (fun budget ->
      match chase_budgeted ~budget ~max_rounds d c with
      | d -> Some d
      | exception Chase_failure _ -> None)

let universal_solution_with_constraints mapping ~source ~target_constraints =
  let canonical = Universal.chase_relational mapping source in
  match chase canonical target_constraints with
  | solution -> Some solution
  | exception Chase_failure _ -> None
