open Certdb_values
open Certdb_xml

type rule = {
  body : Tree.t;
  head : Tree.t;
}

type t = rule list

let rule ~body ~head = { body; head }

let triggers (r : rule) source =
  (* all homomorphisms of the body into the source: enumerate via the gdm
     coding *)
  let body_db = Tree.to_gdb r.body and source_db = Tree.to_gdb source in
  let homs = ref [] in
  Certdb_gdm.Ghom.iter body_db source_db (fun h ->
      homs := h.Certdb_gdm.Ghom.valuation :: !homs;
      `Continue);
  List.rev !homs

let frontier (r : rule) =
  Value.Set.inter (Tree.nulls r.body) (Tree.nulls r.head)

let m_of_d mapping source =
  List.concat_map
    (fun r ->
      let fr = frontier r in
      List.map
        (fun h ->
          let h_frontier =
            List.fold_left
              (fun acc (n, v) ->
                if Value.Set.mem n fr then Valuation.bind acc n v else acc)
              Valuation.empty (Valuation.bindings h)
          in
          let instantiated = Tree.apply h_frontier r.head in
          (* rename apart only the head-invented nulls; frontier values
             from the source keep their identity *)
          let preserved =
            Valuation.range h_frontier
            |> Value.Set.filter Value.is_null
            |> Value.Set.union (Tree.nulls source)
          in
          let renaming =
            Value.Set.fold
              (fun n acc ->
                if Value.Set.mem n preserved then acc
                else Valuation.bind acc n (Value.fresh_null ()))
              (Tree.nulls instantiated) Valuation.empty
          in
          Tree.apply renaming instantiated)
        (triggers r source))
    mapping

let is_solution mapping ~source candidate =
  List.for_all
    (fun head' -> Tree_hom.leq head' candidate)
    (m_of_d mapping source)

let is_universal_vs mapping ~source candidate ~solutions =
  is_solution mapping ~source candidate
  && List.for_all (fun s -> Tree_hom.leq candidate s) solutions

let incomparable_solutions mapping ~source s1 s2 =
  is_solution mapping ~source s1
  && is_solution mapping ~source s2
  && Tree_hom.incomparable s1 s2
