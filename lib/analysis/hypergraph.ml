open Certdb_query
module Obs = Certdb_obs.Obs
module Structure = Certdb_csp.Structure
module Treewidth = Certdb_csp.Treewidth

let checks = Obs.counter "csp.analysis.hypergraph"

module S = Set.Make (String)

type gyo_step =
  | Remove_vertex of {
      vertex : string;
      edge : int;
    }
  | Absorb of {
      edge : int;
      into : int;
    }

type certificate =
  | Acyclic of { steps : gyo_step list }
  | Cyclic of { residual : (int * string list) list }

type t = {
  atom_count : int;
  var_count : int;
  certificate : certificate;
  width_estimate : int;
  components : int;
}

let atom_vars (a : Cq.atom) =
  S.of_list
    (List.filter_map
       (function Fo.Var x -> Some x | Fo.Val _ -> None)
       a.args)

(* GYO reduction: repeatedly delete an ear vertex (occurring in exactly
   one hyperedge) or a hyperedge contained in another; the hypergraph is
   α-acyclic iff the reduction consumes every hyperedge.  Equal edges are
   broken by absorbing the higher index into the lower. *)
let gyo edges0 =
  let edges = ref edges0 in
  let steps = ref [] in
  let remove_vertex () =
    let occurrences v =
      List.filter (fun (_, vs) -> S.mem v vs) !edges
    in
    List.find_map
      (fun (i, vs) ->
        S.fold
          (fun v acc ->
            match acc with
            | Some _ -> acc
            | None -> (
              match occurrences v with
              | [ (j, _) ] when j = i -> Some (v, i)
              | _ -> None))
          vs None)
      !edges
  in
  let absorb () =
    List.find_map
      (fun (i, vs) ->
        List.find_map
          (fun (j, ws) ->
            if i <> j && S.subset vs ws && (not (S.equal vs ws) || i > j)
            then Some (i, j)
            else None)
          !edges)
      !edges
  in
  let progress = ref true in
  while !progress && !edges <> [] do
    match remove_vertex () with
    | Some (v, i) ->
      steps := Remove_vertex { vertex = v; edge = i } :: !steps;
      (* a fully consumed hyperedge leaves the reduction *)
      edges :=
        List.filter_map
          (fun (j, vs) ->
            if j <> i then Some (j, vs)
            else
              let vs = S.remove v vs in
              if S.is_empty vs then None else Some (j, vs))
          !edges
    | None -> (
      match absorb () with
      | Some (i, j) ->
        steps := Absorb { edge = i; into = j } :: !steps;
        edges := List.filter (fun (k, _) -> k <> i) !edges
      | None -> progress := false)
  done;
  if !edges = [] then Acyclic { steps = List.rev !steps }
  else
    Cyclic
      { residual = List.map (fun (i, vs) -> (i, S.elements vs)) !edges }

let width_estimate vars atoms =
  if S.is_empty vars then 0
  else begin
    let ids = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace ids v i) (S.elements vars);
    (* tuple nodes register implicitly; every variable occurs in an atom *)
    let structure =
      Structure.make ~nodes:[]
        ~tuples:
          (List.filter_map
             (fun a ->
               match S.elements (atom_vars a) with
               | [] -> None
               | vs ->
                 Some
                   ( a.Cq.rel,
                     [
                       Array.of_list
                         (List.map (fun v -> Hashtbl.find ids v) vs);
                     ] ))
             atoms)
    in
    max 0 (snd (Treewidth.estimate structure))
  end

(* Connected components of the atoms-share-a-variable graph: merge the
   variable sets of overlapping hyperedges until a fixpoint.  Variable-free
   atoms connect nothing, so they are already dropped from [edges]. *)
let component_count edges =
  let groups = ref [] in
  List.iter
    (fun (_, vs) ->
      let touching, rest =
        List.partition (fun g -> not (S.is_empty (S.inter g vs))) !groups
      in
      groups := List.fold_left S.union vs touching :: rest)
    edges;
  (* late edges can bridge groups formed earlier: iterate to fixpoint *)
  let rec settle gs =
    let merged =
      List.fold_left
        (fun acc g ->
          let touching, rest =
            List.partition (fun g' -> not (S.is_empty (S.inter g g'))) acc
          in
          List.fold_left S.union g touching :: rest)
        [] gs
    in
    if List.length merged = List.length gs then merged else settle merged
  in
  List.length (settle !groups)

let analyze (q : Cq.t) =
  Obs.incr checks;
  let edges =
    List.mapi (fun i a -> (i, atom_vars a)) q.atoms
    (* variable-free atoms are trivial hyperedges; they never obstruct
       acyclicity, so drop them up front *)
    |> List.filter (fun (_, vs) -> not (S.is_empty vs))
  in
  let vars =
    List.fold_left (fun acc (_, vs) -> S.union acc vs) S.empty edges
  in
  {
    atom_count = List.length q.atoms;
    var_count = S.cardinal vars;
    certificate = gyo edges;
    width_estimate = width_estimate vars q.atoms;
    components = component_count edges;
  }
