module Obs = Certdb_obs.Obs
open Certdb_values
open Certdb_relational

let c_checks = Obs.counter "analysis.independence.checks"

type atom = { rel : string; x : int list; y : int list }

let atom ~rel ~x ~y =
  let norm l = List.sort_uniq compare l in
  List.iter
    (fun p -> if p < 0 then invalid_arg "Independence.atom: negative position")
    (x @ y);
  if x = [] || y = [] then invalid_arg "Independence.atom: empty side";
  { rel; x = norm x; y = norm y }

let parse s =
  match String.index_opt s ':' with
  | None -> Error "expected \"REL: positions | positions\""
  | Some i -> (
      let rel = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if rel = "" then Error "empty relation name"
      else
        match String.index_opt rest '|' with
        | None -> Error "expected \"|\" between the two position sets"
        | Some j -> (
            let l = String.sub rest 0 j in
            let r = String.sub rest (j + 1) (String.length rest - j - 1) in
            match (Fd.positions_of_string l, Fd.positions_of_string r) with
            | Error e, _ | _, Error e -> Error e
            | Ok [], _ | _, Ok [] -> Error "empty side of the atom"
            | Ok x, Ok y -> Ok (atom ~rel ~x ~y)))

let to_string a =
  let ps l = String.concat " " (List.map (fun p -> string_of_int (p + 1)) l) in
  Printf.sprintf "%s: %s | %s" a.rel (ps a.x) (ps a.y)

type certificate =
  | Product_holds of {
      x_blocks : int;
      y_blocks : int;
      rows : int;
      canonical : int;
    }
  | Missing_combination of {
      m_x : Value.t array;
      m_y : Value.t array;
      m_valuation : (Value.t * Value.t) list;
    }

type verdict = certificate Fd.graded

let check_positions a tuples =
  List.iter
    (fun t ->
      List.iter
        (fun p ->
          if p >= Array.length t then
            invalid_arg
              (Printf.sprintf
                 "Independence.check: position %d out of range for %s/%d"
                 (p + 1) a.rel (Array.length t)))
        (a.x @ a.y))
    tuples

let column_values positions sel tuples =
  List.fold_left
    (fun acc t ->
      List.fold_left
        (fun acc p -> if sel t.(p) then Value.Set.add t.(p) acc else acc)
        acc positions)
    Value.Set.empty tuples

let relevant_nulls d a =
  let tuples = Instance.tuples d a.rel in
  check_positions a tuples;
  column_values
    (List.sort_uniq compare (a.x @ a.y))
    Value.is_null tuples

(* Product test on complete rows.  [Ok (x_blocks, y_blocks, rows)] when
   π_XY = π_X × π_Y, [Error (xv, yv)] exhibiting a missing combination. *)
let product_test a (ts : Value.t array array) =
  let proj ps t = Array.of_list (List.map (fun p -> t.(p)) ps) in
  let module Tbl = Hashtbl in
  let xs = Tbl.create 16 and ys = Tbl.create 16 and pairs = Tbl.create 16 in
  Array.iter
    (fun t ->
      let xv = proj a.x t and yv = proj a.y t in
      Tbl.replace xs xv ();
      Tbl.replace ys yv ();
      Tbl.replace pairs (xv, yv) ())
    ts;
  let nx = Tbl.length xs and ny = Tbl.length ys in
  if Tbl.length pairs = nx * ny then Ok (nx, ny, Array.length ts)
  else begin
    let missing = ref None in
    (try
       Tbl.iter
         (fun xv () ->
           Tbl.iter
             (fun yv () ->
               if not (Tbl.mem pairs (xv, yv)) then begin
                 missing := Some (xv, yv);
                 raise Exit
               end)
             ys)
         xs
     with Exit -> ());
    match !missing with
    | Some (xv, yv) -> Error (xv, yv)
    | None -> assert false
  end

let check d a =
  Obs.incr c_checks;
  let tuples = Instance.tuples d a.rel in
  check_positions a tuples;
  let ts = Array.of_list tuples in
  let positions = List.sort_uniq compare (a.x @ a.y) in
  let nulls = column_values positions Value.is_null tuples |> Value.Set.elements in
  let consts = column_values positions Value.is_const tuples in
  let n = List.length nulls in
  let const_arr = Array.of_list (Value.Set.elements consts) in
  let nconsts = Array.length const_arr in
  let fresh = Array.of_list (Fd.fresh_constants ~avoid:consts n) in
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) nulls;
  let value_of code = if code < nconsts then const_arr.(code) else fresh.(code - nconsts) in
  let sat = ref None and falsified = ref None in
  let checked = ref 0 in
  (try
     Certdb_csp.Enumerate.iter_canonical ~n ~consts:nconsts (fun assign ->
         incr checked;
         let complete t =
           (* only the nulls of the X∪Y columns are indexed; a null
              confined to other columns never reaches the product test
              and stays as it is *)
           Array.map
             (fun v ->
               match Hashtbl.find_opt index v with
               | Some i -> value_of assign.(i)
               | None -> v)
             t
         in
         (match product_test a (Array.map complete ts) with
         | Ok (nx, ny, rows) ->
             if !sat = None then
               sat :=
                 Some
                   (Product_holds
                      { x_blocks = nx; y_blocks = ny; rows; canonical = !checked })
         | Error (xv, yv) ->
             if !falsified = None then
               falsified :=
                 Some
                   (Missing_combination
                      {
                        m_x = xv;
                        m_y = yv;
                        m_valuation =
                          List.map (fun nv -> (nv, value_of assign.(Hashtbl.find index nv))) nulls;
                      }));
         if !sat <> None && !falsified <> None then
           raise Certdb_csp.Enumerate.Stop)
   with Certdb_csp.Enumerate.Stop -> ());
  match (!sat, !falsified) with
  | Some s, None ->
      (* every canonical completion passed; stamp the total count *)
      let s =
        match s with
        | Product_holds p -> Product_holds { p with canonical = !checked }
        | c -> c
      in
      Fd.Certainly_satisfies s
  | Some s, Some f -> Fd.Possibly_satisfies { sat = s; falsified = f }
  | None, Some f -> Fd.Certainly_violates f
  | None, None ->
      (* no tuples at all: vacuously independent *)
      Fd.Certainly_satisfies
        (Product_holds { x_blocks = 0; y_blocks = 0; rows = 0; canonical = !checked })

let classical_ok a (ts : Value.t array array) =
  match product_test a ts with Ok _ -> true | Error _ -> false

let brute_force d a =
  let tuples = Instance.tuples d a.rel in
  check_positions a tuples;
  let ts = Array.of_list tuples in
  let nulls =
    List.fold_left
      (fun acc t ->
        Array.fold_left
          (fun acc v -> if Value.is_null v then Value.Set.add v acc else acc)
          acc t)
      Value.Set.empty tuples
    |> Value.Set.elements
  in
  let consts =
    List.fold_left
      (fun acc t ->
        Array.fold_left
          (fun acc v -> if Value.is_const v then Value.Set.add v acc else acc)
          acc t)
      Value.Set.empty tuples
  in
  let n = List.length nulls in
  let candidates =
    Array.of_list (Value.Set.elements consts @ Fd.fresh_constants ~avoid:consts n)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) nulls;
  let sat = ref false and viol = ref false in
  (try
     Certdb_csp.Enumerate.iter_assignments ~n ~choices:(Array.length candidates)
       (fun assign ->
         let complete t =
           Array.map
             (fun v ->
               if Value.is_null v then candidates.(assign.(Hashtbl.find index v))
               else v)
             t
         in
         if classical_ok a (Array.map complete ts) then sat := true
         else viol := true;
         if !sat && !viol then raise Certdb_csp.Enumerate.Stop)
   with Certdb_csp.Enumerate.Stop -> ());
  if not !viol then Fd.Certain else if !sat then Fd.Possible else Fd.Violated
