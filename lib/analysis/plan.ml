open Certdb_query
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Sat_choice = Certdb_sat.Backend

let plan_naive = Obs.counter "query.plan.naive_eval"
let plan_acyclic = Obs.counter "query.plan.acyclic_join"
let plan_bounded = Obs.counter "query.plan.bounded_width"
let plan_components = Obs.counter "query.plan.components"
let plan_hom = Obs.counter "query.plan.hom_ladder"
let plan_fd = Obs.counter "query.plan.fd_naive"
let plan_sat = Obs.counter "query.plan.sat"

type route =
  | Naive_eval
  | Acyclic_join
  | Bounded_width of int
  | Components of int
  | Hom_ladder
  | Fd_naive of Fd.fd
  | Sat_backend of int

type decision = {
  route : route;
  hypergraph : Hypergraph.t option;
}

let route_to_string = function
  | Naive_eval -> "naive-eval"
  | Acyclic_join -> "acyclic-join"
  | Bounded_width w -> Printf.sprintf "bounded-width(%d)" w
  | Components c -> Printf.sprintf "components(%d)" c
  | Hom_ladder -> "hom-ladder"
  | Fd_naive f -> Printf.sprintf "fd-naive(%s)" (Fd.to_string f)
  | Sat_backend k -> Printf.sprintf "sat-backend(%d)" k

let count_route = function
  | Naive_eval -> Obs.incr plan_naive
  | Acyclic_join -> Obs.incr plan_acyclic
  | Bounded_width _ -> Obs.incr plan_bounded
  | Components _ -> Obs.incr plan_components
  | Hom_ladder -> Obs.incr plan_hom
  | Fd_naive _ -> Obs.incr plan_fd
  | Sat_backend _ -> Obs.incr plan_sat

let default_width_threshold = 2

(* A certainly-satisfied key FD on one of the query's relations: that
   relation is key-determined in every completion, so the hom search has
   no freedom there and plain naive evaluation (exact for Boolean CQs by
   Prop. 2) is the cheap route. *)
let key_fd_for (q : Cq.t) fds =
  List.find_opt
    (fun (f : Fd.fd) ->
      List.exists
        (fun (a : Cq.atom) ->
          a.rel = f.rel && Fd.is_key ~arity:(List.length a.args) f)
        q.atoms)
    fds

(* Largest class of query variables that are pairwise interchangeable:
   swapping the two variables everywhere maps the atom multiset to
   itself.  These are the interchangeable fresh nulls of the naïve
   tableau — the permutation symmetry the SAT encoder breaks with
   ordering clauses, and the thing chronological backtracking pays [k!]
   for.  Classes are built greedily against a representative;
   transpositions through a common element generate the symmetric
   group, so membership is mutual. *)
let largest_interchangeable_class (q : Cq.t) =
  let vars =
    List.sort_uniq compare
      (List.concat_map
         (fun (a : Cq.atom) ->
           List.filter_map
             (function Fo.Var v -> Some v | Fo.Val _ -> None)
             a.args)
         q.atoms)
  in
  let canon swap =
    List.sort compare
      (List.map
         (fun (a : Cq.atom) ->
           ( a.rel,
             List.map
               (function Fo.Var v -> Fo.Var (swap v) | t -> t)
               a.args ))
         q.atoms)
  in
  let id = canon (fun v -> v) in
  let swap_ok a b =
    canon (fun v -> if v = a then b else if v = b then a else v) = id
  in
  let rec classes = function
    | [] -> 0
    | rep :: rest ->
      let members, others = List.partition (swap_ok rep) rest in
      max (1 + List.length members) (classes others)
  in
  classes vars

let route_cq ?(width_threshold = default_width_threshold) ?(fds = [])
    ?(backend = Sat_choice.Csp) (q : Cq.t) =
  if q.head <> [] then { route = Naive_eval; hypergraph = None }
  else
    let hg = Hypergraph.analyze q in
    let route =
      match backend with
      | Sat_choice.Sat ->
        (* explicit opt-in: the whole instance goes to the CDCL core *)
        Sat_backend (largest_interchangeable_class q)
      | Sat_choice.Csp | Sat_choice.Auto -> (
        match hg.certificate with
        | Acyclic _ -> Acyclic_join
        | Cyclic _ -> (
          if hg.width_estimate <= width_threshold then
            Bounded_width hg.width_estimate
          else
            match key_fd_for q fds with
            | Some f -> Fd_naive f
            | None ->
              (* [Auto]'s SAT certificate: cyclic and wide (checked
                 above), dense (at least as many atoms as variables),
                 and a rich permutation symmetry for the ordering
                 clauses to cut — the profile where clause learning
                 beats chronological backtracking *)
              let sym =
                if backend = Sat_choice.Auto then
                  largest_interchangeable_class q
                else 0
              in
              if sym >= 3 && hg.atom_count >= hg.var_count then
                Sat_backend sym
              else if hg.components >= 2 then Components hg.components
              else Hom_ladder))
    in
    { route; hypergraph = Some hg }

let certain ?policy ?limits ?(jobs = 1) ?width_threshold ?fds ?backend
    (q : Cq.t) d =
  if q.head <> [] then invalid_arg "Plan.certain: Boolean query only";
  let dec = route_cq ?width_threshold ?fds ?backend q in
  count_route dec.route;
  (* the route label on this span is what [explain:true] surfaces; it
     always matches the query.plan.* counter bumped just above *)
  Trace.with_span "query.plan"
    ~labels:[ ("route", route_to_string dec.route) ]
    (fun () ->
      match dec.route with
      | Naive_eval -> assert false (* Boolean queries never route here *)
      | Acyclic_join | Bounded_width _ ->
        `Exact (Certain.certain_cq_via_btw q d)
      | Components _ -> (
        (* each component is an independent hom instance; a tripped limit
           falls back to the resilient ladder rather than surfacing
           [`Unknown] *)
        match Certain.certain_cq_via_components ~jobs ?limits q d with
        | `True -> `Exact true
        | `False -> `Exact false
        | `Unknown _ -> Certain.certain_cq_resilient ?policy ?limits q d)
      | Hom_ladder -> Certain.certain_cq_resilient ?policy ?limits q d
      | Fd_naive _ -> `Exact (Certain.certain_cq_via_naive q d)
      | Sat_backend _ ->
        (* CDCL primary, CSP fallback rung, naïve degrade — same graded
           contract as the hom ladder, so a SAT route can never weaken
           an answer *)
        Certain.certain_cq_resilient ?policy ?limits
          ~backend:Sat_choice.Sat q d)

let certain_answers u d =
  count_route Naive_eval;
  Trace.with_span "query.plan"
    ~labels:[ ("route", route_to_string Naive_eval) ]
    (fun () -> Certain.certain_ucq u d)
