open Certdb_query
module Obs = Certdb_obs.Obs

let checks = Obs.counter "csp.analysis.monotone"

type certificate =
  | Monotone
  | Not_syntactically_monotone of {
      construct : [ `Negation | `Implication | `Universal ];
      offender : string;
    }

let rec offender (f : Fo.t) =
  match f with
  | True | False | Atom _ | Eq _ -> None
  | Not _ -> Some (`Negation, f)
  | Implies _ -> Some (`Implication, f)
  | Forall _ -> Some (`Universal, f)
  | And (g, h) | Or (g, h) -> (
    match offender g with Some o -> Some o | None -> offender h)
  | Exists (_, g) -> offender g

let analyze f =
  Obs.incr checks;
  match offender f with
  | None -> Monotone
  | Some (construct, sub) ->
    Not_syntactically_monotone
      { construct; offender = Format.asprintf "%a" Fo.pp sub }
