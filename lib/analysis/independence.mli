(** Independence atoms [X ⊥ Y] over tables with nulls (Hannula et al.,
    arXiv 2505.05866) as a certificate-emitting analysis, graded over
    completions with the same verdict type as {!Fd}.

    A complete relation [r] satisfies [X ⊥ Y] when for all tuples
    [t1, t2 ∈ r] some [t3 ∈ r] has [t3[X] = t1[X]] and [t3[Y] = t2[Y]]
    — equivalently, the [XY]-projection of [r] is the full product of
    its [X]- and [Y]-projections.  Over an incomplete table the verdict
    is graded over completions exactly as for FDs: certainly satisfies
    / possibly satisfies / certainly violates.

    Unlike the FD case there is no polynomial certificate chase here
    (certainty for independence is intractable in general); {!check} is
    exact but enumerative.  It is nonetheless far cheaper than the
    naive oracle, because only the nulls {e in the [X ∪ Y] columns of
    the atom's relation} matter, constants outside those columns are
    irrelevant, and completions are enumerated {e canonically} — one
    representative per partition of the relevant nulls into
    known-constant and fresh classes ({!Certdb_csp.Enumerate.iter_canonical})
    — with early exit once a satisfying and a falsifying completion
    have both been seen.

    Checks are counted by [analysis.independence.checks]. *)

open Certdb_values
open Certdb_relational

type atom = {
  rel : string;
  x : int list;  (** left positions, 0-based, sorted *)
  y : int list;  (** right positions, 0-based, sorted *)
}

val atom : rel:string -> x:int list -> y:int list -> atom

(** Concrete syntax ["R: 1 2 | 3"] — positions 1-based, separated by
    spaces or commas, the bar separating [X] from [Y]. *)
val parse : string -> (atom, string) result

val to_string : atom -> string

type certificate =
  | Product_holds of {
      x_blocks : int;  (** |π_X| in the certifying completion *)
      y_blocks : int;  (** |π_Y| in the certifying completion *)
      rows : int;
      canonical : int;
          (** canonical completions checked to reach this verdict *)
    }
      (** the [XY]-projection is the full [π_X × π_Y] product (in every
          canonical completion for a certain verdict, in the exhibited
          one for a possible verdict) *)
  | Missing_combination of {
      m_x : Value.t array;  (** a realised [X]-projection *)
      m_y : Value.t array;  (** a realised [Y]-projection *)
      m_valuation : (Value.t * Value.t) list;
          (** completion of the relevant nulls under which no row joins
              [m_x] with [m_y] *)
    }

type verdict = certificate Fd.graded

(** [check d a] — the exact graded verdict of [a] on [d], by canonical
    enumeration over the nulls in the [X ∪ Y] columns of [a.rel].
    @raise Invalid_argument when a position is out of range. *)
val check : Instance.t -> atom -> verdict

(** [relevant_nulls d a] — the nulls occurring in the [X ∪ Y] columns
    of [a.rel] in [d]; the exponent of {!check}'s enumeration. *)
val relevant_nulls : Instance.t -> atom -> Value.Set.t

(** [brute_force d a] — the grade by raw enumeration of all completions
    of {e all} nulls of [a.rel]'s tuples into its constants plus fresh
    ones.  Exponential and unpruned: oracle for tests and benches. *)
val brute_force : Instance.t -> atom -> Fd.grade
