(** Syntactic monotonicity classification.

    Existential-positive queries are monotone, and for monotone queries
    naïve evaluation on one world is a sound lower bound for the certain
    answers.  The classifier reports either [Monotone] (the query is
    existential-positive, hence monotone) or the first offending
    construct — a negation, implication, or universal quantifier — as a
    counterexample-shaped certificate.  Syntactic only: a logically
    monotone query written with double negation is reported as not
    syntactically monotone. *)

type certificate =
  | Monotone  (** existential-positive *)
  | Not_syntactically_monotone of {
      construct : [ `Negation | `Implication | `Universal ];
      offender : string;  (** pretty-printed offending subformula *)
    }

(** [analyze f] — classify [f].  Counted by [csp.analysis.monotone]. *)
val analyze : Certdb_query.Fo.t -> certificate
