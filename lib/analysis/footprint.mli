(** Dependency footprints — which part of a database a query can see.

    The footprint of a CQ [Q] is, per relation it mentions, the set of
    {e constrained} argument positions: those holding a constant, a
    head variable, or a join variable (a variable with ≥ 2 occurrences
    across the query).  An unconstrained position is read only for
    tuple {e existence}: its values never flow into the answer nor into
    a join, so a column update there cannot change [Q]'s result, while
    a tuple insert or delete — an {!touch_rel} touch, i.e. {!All}
    positions — always can.  The query's constants ride along, so a
    footprint is exactly the "relation names + argument positions +
    constants" key of ISSUE/ROADMAP.

    When target tgds can fire ({!Certdb_exchange.Constraints}), a base
    touch on a tgd's body relations may create tuples in its head
    relations; {!close_under_tgds} therefore adds, for every tgd whose
    head reaches the footprint (reverse reachability over the firing
    graph), the tgd's body relations at the conservative {!All}
    positions.

    {!overlaps} is the cache-invalidation test used by
    {!Certdb_service}'s cache: an update touch that does not overlap a
    cached entry's footprint provably cannot change the cached answer.
    Soundness direction: [overlaps] may err towards [true] (a spurious
    invalidation costs a recomputation), never towards [false].

    Computations are counted by [analysis.footprint.computed]. *)

open Certdb_values
open Certdb_query

type positions =
  | All  (** every position — tuple-level, or unknown columns *)
  | Only of int list  (** exactly these 0-based positions, sorted *)

type t = {
  rels : (string * positions) list;  (** sorted by relation name *)
  constants : Value.t list;  (** constants mentioned, sorted *)
}

val empty : t
val union : t -> t -> t

(** [of_cq q] — the footprint of [q]: constrained positions per
    relation, plus [q]'s constants. *)
val of_cq : Cq.t -> t

(** [close_under_tgds c fp] — least fixpoint adding [All]-position
    entries for the body relations of every tgd whose head relation
    already appears (tgd firing can feed the footprint). *)
val close_under_tgds : Certdb_exchange.Constraints.t -> t -> t

(** {1 Touches and overlap} *)

type touch = { t_rel : string; t_cols : positions }

(** [touch_rel r] — a tuple-level touch (insert/delete): all positions. *)
val touch_rel : string -> touch

(** [touch_cols r cols] — a column update confined to [cols] (0-based). *)
val touch_cols : string -> int list -> touch

(** [overlaps fp touch] — could the touch change a query with footprint
    [fp]?  True iff the relation appears and the position sets meet
    ([All] meets everything, including [Only []]). *)
val overlaps : t -> touch -> bool

(** {1 Keys and display} *)

(** [to_key fp] — stable, injective-enough serialization for cache keys,
    e.g. ["R[1 3] S[*] # 'a' 7"] (positions 1-based). *)
val to_key : t -> string

val to_string : t -> string
val pp : Format.formatter -> t -> unit
