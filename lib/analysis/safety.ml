open Certdb_query
module Obs = Certdb_obs.Obs

let checks = Obs.counter "csp.analysis.safety"

module S = Set.Make (String)

type step = {
  formula : string;
  range_restricted : string list;
}

type certificate =
  | Safe of {
      range_restricted : string list;
      derivation : step list;
    }
  | Unsafe of {
      variable : string;
      context : string;
    }

exception Escape of {
  variable : string;
  context : string;
}

let pp_fo f = Format.asprintf "%a" Fo.pp f

let rec srnf (f : Fo.t) : Fo.t =
  match f with
  | True | False | Atom _ | Eq _ -> f
  | Not g -> Not (srnf g)
  | And (g, h) -> And (srnf g, srnf h)
  | Or (g, h) -> Or (srnf g, srnf h)
  | Implies (g, h) -> Or (Not (srnf g), srnf h)
  | Exists (xs, g) -> Exists (xs, srnf g)
  | Forall (xs, g) -> Not (Exists (xs, Not (srnf g)))

let rec conjuncts = function
  | Fo.And (g, h) -> conjuncts g @ conjuncts h
  | f -> [ f ]

(* Bottom-up range-restricted set.  Conjunctions are flattened so that
   [x = y] conjuncts propagate restriction sideways (eq-closure);
   disjunction intersects; negation contributes nothing (its guard must
   come from sibling conjuncts); a quantifier whose variable is not
   restricted by its scope aborts the derivation with the culprit. *)
let rec rr ~steps (f : Fo.t) : S.t =
  let record set =
    steps := { formula = pp_fo f; range_restricted = S.elements set } :: !steps;
    set
  in
  match f with
  | True | False -> record S.empty
  | Atom (_, ts) ->
    record
      (S.of_list
         (List.filter_map
            (function Fo.Var x -> Some x | Fo.Val _ -> None)
            ts))
  | Eq (Var x, Val _) | Eq (Val _, Var x) -> record (S.singleton x)
  | Eq _ -> record S.empty
  | And _ ->
    let cs = conjuncts f in
    let base =
      List.fold_left (fun acc c -> S.union acc (rr ~steps c)) S.empty cs
    in
    let eqs =
      List.filter_map
        (function Fo.Eq (Var x, Var y) -> Some (x, y) | _ -> None)
        cs
    in
    let rec close set =
      let grown =
        List.fold_left
          (fun acc (x, y) ->
            if S.mem x acc || S.mem y acc then S.add x (S.add y acc) else acc)
          set eqs
      in
      if S.equal grown set then set else close grown
    in
    record (close base)
  | Or (g, h) ->
    let sg = rr ~steps g in
    let sh = rr ~steps h in
    record (S.inter sg sh)
  | Not g ->
    let (_ : S.t) = rr ~steps g in
    record S.empty
  | Exists (xs, g) -> (
    let sg = rr ~steps g in
    match List.find_opt (fun x -> not (S.mem x sg)) xs with
    | Some x -> raise (Escape { variable = x; context = pp_fo f })
    | None -> record (S.diff sg (S.of_list xs)))
  | Implies _ | Forall _ ->
    invalid_arg "Safety.rr: formula not in safe-range normal form"

let analyze f =
  Obs.incr checks;
  let f = srnf f in
  let steps = ref [] in
  match rr ~steps f with
  | exception Escape { variable; context } -> Unsafe { variable; context }
  | set -> (
    let free = Fo.free_vars f in
    match List.find_opt (fun x -> not (S.mem x set)) free with
    | Some x -> Unsafe { variable = x; context = pp_fo f }
    | None ->
      Safe { range_restricted = S.elements set; derivation = List.rev !steps })
