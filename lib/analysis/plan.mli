(** The certificate-driven planner: route a (query, instance) pair to the
    cheapest provably sound certain-answer algorithm.

    Decision table for a Boolean CQ (the only shape with a genuine
    choice — non-Boolean CQs/UCQs go to naïve evaluation, which is sound
    and complete for the whole class by Theorem 4):

    - GYO-acyclic hypergraph → [Acyclic_join]: the Theorem 6 dynamic
      program over a join-tree-shaped decomposition (polynomial);
    - cyclic but width estimate ≤ threshold → [Bounded_width w]: same DP,
      cost [O(bags · |adom|^(w+1))];
    - cyclic, wide, but ≥ 2 connected components in the atoms-share-a-
      variable graph → [Components c]: split the tableau into independent
      hom instances, solve each (in parallel on [jobs] domains when
      asked) and conjoin ({!Certdb_csp.Engine.Components});
    - cyclic, wide, but some query relation carries a {e certainly
      satisfied key FD} (checked by the caller with {!Fd.check} and
      passed via [?fds]) → [Fd_naive]: that relation is key-determined
      in every completion, so plain naïve evaluation — exact for
      Boolean CQs by Prop. 2 — is preferred over the hom machinery;
    - under [~backend:Auto], cyclic + wide + dense (at least as many
      atoms as variables) + a class of ≥ 3 pairwise-interchangeable
      variables → [Sat_backend k]: encode to CNF and give it to
      {!Certdb_sat}'s CDCL core, whose symmetry-breaking ordering
      clauses collapse the [k!] permutations of interchangeable fresh
      nulls that chronological backtracking enumerates (counted by
      [query.plan.sat]); [~backend:Sat] forces this route, and the
      default [~backend:Csp] never picks it;
    - everything else → [Hom_ladder]: the budgeted Prop. 2 hom check
      under the {!Certdb_csp.Resilient} retry/escalation ladder.

    Routing never changes an answer, only its cost: every route decides
    [D_Q ⊑ D] exactly (the ladder degrades to a sound lower bound only
    when budgets are imposed and exhausted).  Chosen routes are counted
    by [query.plan.naive_eval] / [query.plan.acyclic_join] /
    [query.plan.bounded_width] / [query.plan.components] /
    [query.plan.hom_ladder] / [query.plan.fd_naive]. *)

type route =
  | Naive_eval
  | Acyclic_join
  | Bounded_width of int
  | Components of int
  | Hom_ladder
  | Fd_naive of Fd.fd
      (** the certainly-satisfied key FD that licensed the route *)
  | Sat_backend of int
      (** the size of the largest interchangeable-variable class that
          licensed (or was measured when forcing) the SAT route *)

type decision = {
  route : route;
  hypergraph : Hypergraph.t option;
      (** the certificate behind the choice; [None] for non-Boolean
          queries, which are routed on their shape alone *)
}

val route_to_string : route -> string

(** [route_cq ?width_threshold ?fds q] — the route only, no evaluation
    and no counter update.  [width_threshold] defaults to 2.  [fds]
    (default [[]]) are FDs the caller has certified as {e certainly
    satisfied} by the instance at hand; a key FD among them on a query
    relation enables the [Fd_naive] route for wide cyclic queries.
    Soundness does not depend on the certification — every route is
    exact — only route quality does. *)
val route_cq :
  ?width_threshold:int ->
  ?fds:Fd.fd list ->
  ?backend:Certdb_sat.Backend.choice ->
  Certdb_query.Cq.t ->
  decision

(** [certain ?policy ?limits ?jobs ?width_threshold q d] — Boolean CQ
    certainty through the planner.  Acyclic and bounded-width routes
    answer [`Exact] directly; the components route solves the tableau's
    connected components independently on [jobs] domains (default 1) and
    falls back to the resilient ladder if a budget trips; the hom ladder
    behaves exactly like {!Certdb_query.Certain.certain_cq_resilient}
    (unlimited [limits] always yield [`Exact]); a [Sat_backend] route
    runs the CDCL backend under the same ladder with a CSP fallback
    rung, so crossing backends never weakens an answer.
    @raise Invalid_argument on a non-Boolean query. *)
val certain :
  ?policy:Certdb_csp.Resilient.Policy.t ->
  ?limits:Certdb_csp.Engine.Limits.t ->
  ?jobs:int ->
  ?width_threshold:int ->
  ?fds:Fd.fd list ->
  ?backend:Certdb_sat.Backend.choice ->
  Certdb_query.Cq.t ->
  Certdb_relational.Instance.t ->
  [ `Exact of bool | `Lower_bound of bool ]

(** [certain_answers u d] — certain answers of a UCQ by naïve evaluation
    (Theorem 4); recorded as a [Naive_eval] route. *)
val certain_answers :
  Certdb_query.Ucq.t ->
  Certdb_relational.Instance.t ->
  Certdb_relational.Instance.t
