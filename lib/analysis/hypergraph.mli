(** Hypergraph analysis of conjunctive queries: GYO acyclicity reduction
    and a treewidth estimate of the variable-interaction (Gaifman) graph.

    α-acyclic CQs admit join-tree evaluation; bounded-treewidth CQs admit
    the Theorem 6 dynamic program.  The GYO certificate is the reduction
    trace (replayable step by step); the cyclicity certificate is the
    irreducible residual hypergraph. *)

type gyo_step =
  | Remove_vertex of {
      vertex : string;
      edge : int;  (** the unique hyperedge (atom index) containing it *)
    }
  | Absorb of {
      edge : int;  (** removed hyperedge (atom index) *)
      into : int;  (** hyperedge that contains it *)
    }

type certificate =
  | Acyclic of { steps : gyo_step list }
  | Cyclic of {
      residual : (int * string list) list;
          (** irreducible hyperedges: atom index + remaining variables *)
    }

type t = {
  atom_count : int;
  var_count : int;
  certificate : certificate;
  width_estimate : int;
      (** treewidth upper bound of the variable graph, best of the
          {!Certdb_csp.Treewidth} heuristics; 0 for variable-free queries *)
  components : int;
      (** connected components of the atoms-share-a-variable graph
          (variable-free atoms excluded); ≥ 2 means the query is a
          cartesian product of independent subqueries *)
}

(** [analyze q] — classify the hypergraph of [q] (hyperedges are the
    atoms' variable sets; constants are ignored).  Counted by
    [csp.analysis.hypergraph]. *)
val analyze : Certdb_query.Cq.t -> t
