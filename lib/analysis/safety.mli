(** Range restriction (safe-range) analysis of FO queries.

    Naïve evaluation only makes sense for queries whose answers are
    confined to the active domain; the safe-range syntactic class
    guarantees this (domain independence).  The classifier normalizes the
    query (implications unfolded, universals rewritten to ¬∃¬) and
    computes the range-restricted variable set bottom-up, producing a
    machine-checkable certificate either way: the full derivation for a
    safe query, or a concrete unrestricted variable with the subformula
    where the restriction fails. *)

type step = {
  formula : string;  (** pretty-printed subformula *)
  range_restricted : string list;
      (** its range-restricted variables, bottom-up order *)
}

type certificate =
  | Safe of {
      range_restricted : string list;
      derivation : step list;
    }
  | Unsafe of {
      variable : string;  (** a free or quantified variable with no range *)
      context : string;  (** the subformula where it escapes *)
    }

(** [analyze f] — classify [f].  Counted by [csp.analysis.safety]. *)
val analyze : Certdb_query.Fo.t -> certificate

(** The safe-range normal form used by the analysis ([Implies] and
    [Forall] rewritten away); exposed so certificates can be re-checked
    against the exact formula the derivation talks about. *)
val srnf : Certdb_query.Fo.t -> Certdb_query.Fo.t
