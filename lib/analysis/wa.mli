(** Weak-acyclicity classification of TGD sets, re-exposed from
    {!Certdb_exchange.Constraints} with the planner-facing certificate:
    a terminating set carries the derived chase round bound for a given
    instance (the bound {!Certdb_exchange.Constraints.chase} runs with in
    [`Auto]/[`Certified] mode), a diverging set carries the cycle through
    a special edge. *)

open Certdb_exchange

type certificate =
  | Terminates of {
      round_bound : int;
          (** rounds sufficient for any chase of [instance] to fixpoint *)
      max_rank : int;
      ranks : (Constraints.position * int) list;
    }
  | Diverges of {
      cycle : Constraints.position list;
      special : Constraints.position * Constraints.position;
    }

(** [analyze ?instance c] — classify the tgd set of [c]; the round bound
    is derived against [instance] (default empty).  Counted by
    [csp.analysis.weak_acyclicity]. *)
val analyze :
  ?instance:Certdb_relational.Instance.t -> Constraints.t -> certificate

val pp_position : Format.formatter -> Constraints.position -> unit
