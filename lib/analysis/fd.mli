(** Functional dependencies over tables with nulls — the Badia–Lemire
    (arXiv 1703.08198) strong/weak satisfaction semantics as a
    certificate-emitting analysis.

    An FD [σ : X → Y] over a relation [R] of a naïve (or Codd) table
    [D] has, per completion [v ∈ [[D]]], the classical meaning: any two
    tuples of [v(D)] agreeing on the [X] positions agree on the [Y]
    positions.  Over the incomplete table itself two graded notions
    arise:

    - {e strong satisfaction}: every completion satisfies [σ];
    - {e weak satisfaction}: some completion satisfies [σ].

    Both are decided in polynomial time, with a machine-checkable
    witness either way:

    - strong satisfaction fails iff some tuple pair can be made
      [X]-equal by a valuation (null unification without a constant
      clash) while some [Y] position is not {e forced} equal by that
      unification — the freest such valuation violates [σ].  The
      witness is the pair, the diverging position and the unifier.
    - weak satisfaction is decided by a unification chase: whenever two
      tuples are [X]-identical {e as terms} (up to the equalities
      already forced), every satisfying completion must equate their
      [Y] values, so they are unified; a fixpoint without a constant
      clash yields a satisfying completion (fresh distinct constants
      per remaining null class), a clash is a proof that no completion
      satisfies [σ].  The witness is the forced-equality chain.

    The three-valued verdict combines them into the lattice
    [Certain ⇒ Possible ⇒ ¬Violated]: strongly satisfied tables are
    {!Certainly_satisfies}, weakly-but-not-strongly
    {!Possibly_satisfies} (with witnesses both ways), and tables with
    no satisfying completion {!Certainly_violates}.  {!brute_force}
    re-derives the grade by completion enumeration
    ({!Certdb_csp.Enumerate}) — exponential, oracle use only.

    Checks are counted by [analysis.fd.checks]. *)

open Certdb_values
open Certdb_relational

type fd = {
  rel : string;
  lhs : int list;  (** determinant positions, 0-based, sorted *)
  rhs : int list;  (** determined positions, 0-based, sorted *)
}

val fd : rel:string -> lhs:int list -> rhs:int list -> fd

(** [is_key ~arity f] — does [f] mention every position of a relation of
    [arity] (so a certain [f] pins whole tuples by their determinant)? *)
val is_key : arity:int -> fd -> bool

(** Concrete syntax ["R: 1 2 -> 3"] — positions 1-based, separated by
    spaces or commas. *)
val parse : string -> (fd, string) result

val to_string : fd -> string

(** [positions_of_string "1 2 3"] — a 1-based, space- or comma-separated
    position list as 0-based positions (order unspecified); shared by
    the {!Independence} parser. *)
val positions_of_string : string -> (int list, string) result

(** {1 Certificates} *)

type violation = {
  v_tuple1 : Value.t array;
  v_tuple2 : Value.t array;
  v_position : int;
      (** [Y] position left unforced by the [X]-unifier: the freest
          unifying completion makes the tuples [X]-equal yet differ
          here *)
  v_unifier : (Value.t * Value.t) list;
      (** null bindings (value, representative) making the [X] parts
          equal *)
}

type forced_step = {
  f_tuple1 : Value.t array;
  f_tuple2 : Value.t array;  (** pair that was [X]-identical as terms *)
  f_position : int;  (** the [Y] position whose values were unified *)
  f_left : Value.t;
  f_right : Value.t;  (** class representatives merged by the step *)
}

type certificate =
  | All_pairs_safe of { pairs : int; x_incompatible : int; y_forced : int }
      (** strong satisfaction: every tuple pair either cannot be made
          [X]-equal (distinct constants clash in the unifier) or has
          every [Y] position forced equal by it *)
  | Completion_exists of { merges : (Value.t * Value.t) list }
      (** weak satisfaction: assigning each remaining null class a
          distinct fresh constant after these forced merges satisfies
          the FD *)
  | Violating_pair of violation  (** some completion violates *)
  | Forced_clash of {
      chain : forced_step list;
      left : Value.t;
      right : Value.t;
    }
      (** no completion satisfies: the chain of forced equalities ends
          by equating the two distinct constants [left] and [right] *)

(** {1 The graded verdict}

    Shared with {!Independence} (and any future constraint family):
    certainty implies possibility, so the three verdicts are mutually
    exclusive and exhaustive. *)

type 'cert graded =
  | Certainly_satisfies of 'cert  (** every completion satisfies *)
  | Possibly_satisfies of { sat : 'cert; falsified : 'cert }
      (** some completion satisfies, some completion does not *)
  | Certainly_violates of 'cert  (** no completion satisfies *)

type grade = Certain | Possible | Violated

val grade : 'cert graded -> grade
val grade_name : grade -> string

type verdict = certificate graded

(** [check d f] — the verdict of [f] on [d], polynomial time.
    @raise Invalid_argument when a position of [f] is out of range for
    a tuple of [f.rel] (a relation absent from [d] is trivially
    certainly satisfied). *)
val check : Instance.t -> fd -> verdict

(** [strong d f] / [weak d f] — the two Badia–Lemire satisfaction
    relations, derived from {!check}. *)
val strong : Instance.t -> fd -> bool

val weak : Instance.t -> fd -> bool

(** [to_egds ~arity f] — [f] as equality-generating dependencies (one
    per [Y] position), so {!Certdb_exchange.Constraints.chase} can
    enforce it. *)
val to_egds : arity:int -> fd -> Certdb_exchange.Constraints.egd list

(** {1 The oracle} *)

(** [fresh_constants ~avoid n] — [n] pairwise-distinct constants outside
    [avoid], deterministic. *)
val fresh_constants : avoid:Value.Set.t -> int -> Value.t list

(** [brute_force d f] — the grade by enumeration of all completions
    into the active domain plus as many fresh constants as there are
    nulls (sufficient by genericity).  Exponential: oracle for tests,
    self-tests and benches only. *)
val brute_force : Instance.t -> fd -> grade
