module Obs = Certdb_obs.Obs
open Certdb_values
open Certdb_relational

let c_checks = Obs.counter "analysis.fd.checks"

type fd = { rel : string; lhs : int list; rhs : int list }

let fd ~rel ~lhs ~rhs =
  let norm l = List.sort_uniq compare l in
  List.iter
    (fun p -> if p < 0 then invalid_arg "Fd.fd: negative position")
    (lhs @ rhs);
  { rel; lhs = norm lhs; rhs = norm rhs }

let is_key ~arity f =
  let mentioned = List.sort_uniq compare (f.lhs @ f.rhs) in
  List.length mentioned = arity && List.for_all (fun p -> p < arity) mentioned

let positions_of_string s =
  let parts =
    String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) s)
    |> List.filter (fun t -> t <> "")
  in
  List.fold_left
    (fun acc tok ->
      match acc with
      | Error _ -> acc
      | Ok ps -> (
          match int_of_string_opt tok with
          | Some p when p >= 1 -> Ok (p - 1 :: ps)
          | _ -> Error (Printf.sprintf "bad position %S (want 1-based int)" tok)))
    (Ok []) parts

let parse s =
  match String.index_opt s ':' with
  | None -> Error "expected \"REL: positions -> positions\""
  | Some i -> (
      let rel = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      if rel = "" then Error "empty relation name"
      else
        match
          let arrow = "->" in
          let rec find j =
            if j + 2 > String.length rest then None
            else if String.sub rest j 2 = arrow then Some j
            else find (j + 1)
          in
          find 0
        with
        | None -> Error "expected \"->\" between determinant and determined"
        | Some j -> (
            let l = String.sub rest 0 j in
            let r = String.sub rest (j + 2) (String.length rest - j - 2) in
            match (positions_of_string l, positions_of_string r) with
            | Error e, _ | _, Error e -> Error e
            | Ok _, Ok [] -> Error "empty determined side"
            | Ok lhs, Ok rhs -> Ok (fd ~rel ~lhs ~rhs)))

let to_string f =
  let ps l = String.concat " " (List.map (fun p -> string_of_int (p + 1)) l) in
  Printf.sprintf "%s: %s -> %s" f.rel (ps f.lhs) (ps f.rhs)

(* ------------------------------------------------------------------ *)
(* Union-find over values, constants preferred as representatives.    *)

module Uf = struct
  type t = (Value.t, Value.t) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let rec find t v =
    match Hashtbl.find_opt t v with
    | None -> v
    | Some p ->
        let r = find t p in
        if not (Value.equal r p) then Hashtbl.replace t v r;
        r

  (* [Ok changed] or [Error (c1, c2)] when two distinct constants meet. *)
  let union t a b =
    let ra = find t a and rb = find t b in
    if Value.equal ra rb then Ok false
    else
      match (ra, rb) with
      | Value.Const _, Value.Const _ -> Error (ra, rb)
      | Value.Const _, _ ->
          Hashtbl.replace t rb ra;
          Ok true
      | _, _ ->
          Hashtbl.replace t ra rb;
          Ok true
end

(* ------------------------------------------------------------------ *)

type violation = {
  v_tuple1 : Value.t array;
  v_tuple2 : Value.t array;
  v_position : int;
  v_unifier : (Value.t * Value.t) list;
}

type forced_step = {
  f_tuple1 : Value.t array;
  f_tuple2 : Value.t array;
  f_position : int;
  f_left : Value.t;
  f_right : Value.t;
}

type certificate =
  | All_pairs_safe of { pairs : int; x_incompatible : int; y_forced : int }
  | Completion_exists of { merges : (Value.t * Value.t) list }
  | Violating_pair of violation
  | Forced_clash of {
      chain : forced_step list;
      left : Value.t;
      right : Value.t;
    }

type 'cert graded =
  | Certainly_satisfies of 'cert
  | Possibly_satisfies of { sat : 'cert; falsified : 'cert }
  | Certainly_violates of 'cert

type grade = Certain | Possible | Violated

let grade = function
  | Certainly_satisfies _ -> Certain
  | Possibly_satisfies _ -> Possible
  | Certainly_violates _ -> Violated

let grade_name = function
  | Certain -> "certain"
  | Possible -> "possible"
  | Violated -> "violated"

type verdict = certificate graded

let check_positions f tuples =
  List.iter
    (fun t ->
      List.iter
        (fun p ->
          if p >= Array.length t then
            invalid_arg
              (Printf.sprintf "Fd.check: position %d out of range for %s/%d"
                 (p + 1) f.rel (Array.length t)))
        (f.lhs @ f.rhs))
    tuples

(* Strong satisfaction: a pair violates in some completion iff its lhs
   positions unify without a constant clash while some rhs position is
   left with distinct representatives — the freest unifier then assigns
   any unforced null a fresh constant, making the tuples X-equal and
   Y-different. *)
let strong_scan f (ts : Value.t array array) =
  let n = Array.length ts in
  let pairs = ref 0 and x_incompatible = ref 0 in
  let violation = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         incr pairs;
         let t1 = ts.(i) and t2 = ts.(j) in
         let uf = Uf.create () in
         let clash =
           List.exists
             (fun x ->
               match Uf.union uf t1.(x) t2.(x) with
               | Ok _ -> false
               | Error _ -> true)
             f.lhs
         in
         if clash then incr x_incompatible
         else
           match
             List.find_opt
               (fun y -> not (Value.equal (Uf.find uf t1.(y)) (Uf.find uf t2.(y))))
               f.rhs
           with
           | None -> ()
           | Some y ->
               let unifier =
                 List.concat_map
                   (fun x ->
                     List.filter_map
                       (fun v ->
                         if Value.is_null v then Some (v, Uf.find uf v)
                         else None)
                       [ t1.(x); t2.(x) ])
                   f.lhs
                 |> List.sort_uniq compare
               in
               violation :=
                 Some
                   {
                     v_tuple1 = t1;
                     v_tuple2 = t2;
                     v_position = y;
                     v_unifier = unifier;
                   };
               raise Exit
       done
     done
   with Exit -> ());
  match !violation with
  | Some v -> Error v
  | None ->
      Ok
        (All_pairs_safe
           {
             pairs = !pairs;
             x_incompatible = !x_incompatible;
             y_forced = !pairs - !x_incompatible;
           })

(* Weak satisfaction: the unification chase.  Whenever two tuples are
   X-identical up to the equalities already forced, every satisfying
   completion equates their Y values, so we merge them; a fixpoint
   without a clash yields a satisfying completion (distinct fresh
   constants per remaining null-only class), a clash refutes all. *)
let weak_chase f (ts : Value.t array array) =
  let n = Array.length ts in
  let uf = Uf.create () in
  let chain = ref [] in
  let clash = ref None in
  let changed = ref true in
  while !changed && !clash = None do
    changed := false;
    (try
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           let t1 = ts.(i) and t2 = ts.(j) in
           let x_equal =
             List.for_all
               (fun x -> Value.equal (Uf.find uf t1.(x)) (Uf.find uf t2.(x)))
               f.lhs
           in
           if x_equal then
             List.iter
               (fun y ->
                 let l = Uf.find uf t1.(y) and r = Uf.find uf t2.(y) in
                 match Uf.union uf t1.(y) t2.(y) with
                 | Ok false -> ()
                 | Ok true ->
                     changed := true;
                     chain :=
                       {
                         f_tuple1 = t1;
                         f_tuple2 = t2;
                         f_position = y;
                         f_left = l;
                         f_right = r;
                       }
                       :: !chain
                 | Error (c1, c2) ->
                     chain :=
                       {
                         f_tuple1 = t1;
                         f_tuple2 = t2;
                         f_position = y;
                         f_left = l;
                         f_right = r;
                       }
                       :: !chain;
                     clash := Some (c1, c2);
                     raise Exit)
               f.rhs
         done
       done
     with Exit -> ())
  done;
  match !clash with
  | Some (left, right) -> Error (Forced_clash { chain = List.rev !chain; left; right })
  | None ->
      Ok
        (Completion_exists
           { merges = List.rev_map (fun s -> (s.f_left, s.f_right)) !chain })

let check d f =
  Obs.incr c_checks;
  let tuples = Instance.tuples d f.rel in
  check_positions f tuples;
  let ts = Array.of_list tuples in
  match strong_scan f ts with
  | Ok safe -> Certainly_satisfies safe
  | Error violation -> (
      match weak_chase f ts with
      | Ok sat -> Possibly_satisfies { sat; falsified = Violating_pair violation }
      | Error clash -> Certainly_violates clash)

let strong d f = grade (check d f) = Certain

let weak d f = grade (check d f) <> Violated

(* ------------------------------------------------------------------ *)

let to_egds ~arity f =
  List.iter
    (fun p ->
      if p >= arity then invalid_arg "Fd.to_egds: position out of range")
    (f.lhs @ f.rhs);
  let t1 = Array.init arity Value.null in
  let t2 =
    Array.init arity (fun i ->
        if List.mem i f.lhs then Value.null i else Value.null (arity + i))
  in
  let body =
    Instance.of_list
      [ (f.rel, [ Array.to_list t1; Array.to_list t2 ]) ]
  in
  List.map
    (fun y ->
      Certdb_exchange.Constraints.egd ~body ~left:t1.(y) ~right:t2.(y))
    f.rhs

(* ------------------------------------------------------------------ *)

let fresh_constants ~avoid n =
  let out = ref [] and found = ref 0 and i = ref 0 in
  while !found < n do
    let c = Value.str (Printf.sprintf "'f%d" !i) in
    incr i;
    if not (Value.Set.mem c avoid) then begin
      out := c :: !out;
      incr found
    end
  done;
  List.rev !out

let classical_ok f (ts : Value.t array array) =
  let n = Array.length ts in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         let t1 = ts.(i) and t2 = ts.(j) in
         if
           List.for_all (fun x -> Value.equal t1.(x) t2.(x)) f.lhs
           && not (List.for_all (fun y -> Value.equal t1.(y) t2.(y)) f.rhs)
         then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let relation_values rel sel d =
  List.fold_left
    (fun acc t -> Array.fold_left (fun acc v -> if sel v then Value.Set.add v acc else acc) acc t)
    Value.Set.empty (Instance.tuples d rel)

let brute_force d f =
  let tuples = Instance.tuples d f.rel in
  check_positions f tuples;
  let ts = Array.of_list tuples in
  let nulls = relation_values f.rel Value.is_null d |> Value.Set.elements in
  let consts = relation_values f.rel Value.is_const d in
  let n = List.length nulls in
  let candidates =
    Array.of_list (Value.Set.elements consts @ fresh_constants ~avoid:consts n)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) nulls;
  let sat = ref false and viol = ref false in
  (try
     Certdb_csp.Enumerate.iter_assignments ~n ~choices:(Array.length candidates)
       (fun a ->
         let complete t =
           Array.map
             (fun v ->
               if Value.is_null v then candidates.(a.(Hashtbl.find index v))
               else v)
             t
         in
         if classical_ok f (Array.map complete ts) then sat := true
         else viol := true;
         if !sat && !viol then raise Certdb_csp.Enumerate.Stop)
   with Certdb_csp.Enumerate.Stop -> ());
  if not !viol then Certain else if !sat then Possible else Violated
