open Certdb_exchange
module Obs = Certdb_obs.Obs
module Instance = Certdb_relational.Instance

let checks = Obs.counter "csp.analysis.weak_acyclicity"

type certificate =
  | Terminates of {
      round_bound : int;
      max_rank : int;
      ranks : (Constraints.position * int) list;
    }
  | Diverges of {
      cycle : Constraints.position list;
      special : Constraints.position * Constraints.position;
    }

let analyze ?(instance = Instance.empty) c =
  Obs.incr checks;
  match Constraints.weak_acyclicity c with
  | Wa_diverges { cycle; special } -> Diverges { cycle; special }
  | Wa_terminates { ranks; max_rank; _ } ->
    let round_bound =
      match Constraints.certified_round_bound c instance with
      | Some b -> b
      | None -> assert false (* weakly acyclic by the match above *)
    in
    Terminates { round_bound; max_rank; ranks }

let pp_position ppf (rel, i) = Format.fprintf ppf "%s.%d" rel i
