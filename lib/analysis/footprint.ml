module Obs = Certdb_obs.Obs
open Certdb_values
open Certdb_query
module SMap = Map.Make (String)

let c_computed = Obs.counter "analysis.footprint.computed"

type positions = All | Only of int list

type t = { rels : (string * positions) list; constants : Value.t list }

let empty = { rels = []; constants = [] }

let merge_positions a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Only x, Only y -> Only (List.sort_uniq compare (x @ y))

let of_map m consts =
  {
    rels = SMap.bindings m;
    constants = Value.Set.elements consts;
  }

let to_map fp =
  List.fold_left (fun m (r, p) -> SMap.add r p m) SMap.empty fp.rels

let union a b =
  let m =
    List.fold_left
      (fun m (r, p) ->
        SMap.update r
          (function None -> Some p | Some q -> Some (merge_positions p q))
          m)
      (to_map a) b.rels
  in
  of_map m
    (Value.Set.union
       (Value.Set.of_list a.constants)
       (Value.Set.of_list b.constants))

let of_cq (q : Cq.t) =
  Obs.incr c_computed;
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (a : Cq.atom) ->
      List.iter
        (function
          | Fo.Var v ->
              Hashtbl.replace counts v
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
          | Fo.Val _ -> ())
        a.args)
    q.atoms;
  let head_vars =
    List.fold_left (fun s v -> SMap.add v () s) SMap.empty q.head
  in
  let constrained = function
    | Fo.Val _ -> true
    | Fo.Var v ->
        SMap.mem v head_vars
        || Option.value ~default:0 (Hashtbl.find_opt counts v) >= 2
  in
  let m, consts =
    List.fold_left
      (fun (m, consts) (a : Cq.atom) ->
        let ps =
          List.mapi (fun i t -> (i, t)) a.args
          |> List.filter_map (fun (i, t) -> if constrained t then Some i else None)
        in
        let m =
          SMap.update a.rel
            (function
              | None -> Some (Only (List.sort_uniq compare ps))
              | Some q -> Some (merge_positions q (Only ps)))
            m
        in
        let consts =
          List.fold_left
            (fun cs t ->
              match t with Fo.Val v -> Value.Set.add v cs | Fo.Var _ -> cs)
            consts a.args
        in
        (m, consts))
      (SMap.empty, Value.Set.empty)
      q.atoms
  in
  of_map m consts

let close_under_tgds (c : Certdb_exchange.Constraints.t) fp =
  let module I = Certdb_relational.Instance in
  let rec go m =
    let m' =
      List.fold_left
        (fun m (tgd : Certdb_exchange.Constraints.tgd) ->
          let feeds =
            List.exists (fun r -> SMap.mem r m) (I.relations tgd.tgd_head)
          in
          if not feeds then m
          else
            List.fold_left
              (fun m r ->
                SMap.update r
                  (function None | Some _ -> Some All)
                  m)
              m
              (I.relations tgd.tgd_body))
        m c.tgds
    in
    if SMap.equal (fun a b -> a = b) m m' then m else go m'
  in
  let m = go (to_map fp) in
  of_map m (Value.Set.of_list fp.constants)

type touch = { t_rel : string; t_cols : positions }

let touch_rel r = { t_rel = r; t_cols = All }
let touch_cols r cols = { t_rel = r; t_cols = Only (List.sort_uniq compare cols) }

let positions_meet a b =
  match (a, b) with
  | All, _ | _, All -> true
  | Only x, Only y -> List.exists (fun p -> List.mem p y) x

let overlaps fp touch =
  List.exists
    (fun (r, p) -> r = touch.t_rel && positions_meet p touch.t_cols)
    fp.rels

let positions_string = function
  | All -> "*"
  | Only ps -> String.concat " " (List.map (fun p -> string_of_int (p + 1)) ps)

let to_key fp =
  let rels =
    List.map (fun (r, p) -> Printf.sprintf "%s[%s]" r (positions_string p)) fp.rels
  in
  let consts = List.map Value.to_string fp.constants in
  String.concat " " rels
  ^ (if consts = [] then "" else " # " ^ String.concat " " consts)

let to_string = to_key

let pp ppf fp = Format.pp_print_string ppf (to_key fp)
