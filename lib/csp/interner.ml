(* String interning: the columnar structure view and the engine's compiled
   instances key relations and labels by dense ints, not strings.  Ids are
   process-global so two structures compiled independently agree on them —
   a structure compiled before a server request and one compiled inside it
   can be joined without a translation step. *)

type t = {
  mutable names : string array; (* id -> name; grows by doubling *)
  mutable size : int;
  tbl : (string, int) Hashtbl.t;
  mu : Mutex.t;
}

let create () =
  { names = Array.make 16 ""; size = 0; tbl = Hashtbl.create 16; mu = Mutex.create () }

let intern t name =
  Mutex.lock t.mu;
  let id =
    match Hashtbl.find_opt t.tbl name with
    | Some id -> id
    | None ->
      let id = t.size in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- name;
      t.size <- id + 1;
      Hashtbl.replace t.tbl name id;
      id
  in
  Mutex.unlock t.mu;
  id

let find_opt t name =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.tbl name in
  Mutex.unlock t.mu;
  r

let name t id =
  Mutex.lock t.mu;
  if id < 0 || id >= t.size then begin
    Mutex.unlock t.mu;
    invalid_arg "Interner.name: unknown id"
  end
  else begin
    let n = t.names.(id) in
    Mutex.unlock t.mu;
    n
  end

let size t =
  Mutex.lock t.mu;
  let n = t.size in
  Mutex.unlock t.mu;
  n

(* The two process-global pools. *)
let rels = create ()
let labels = create ()
let rel_id r = intern rels r
let rel_name id = name rels id
let label_id l = intern labels l
let label_name id = name labels id
