(** Dense string interning for the columnar data layer.

    {!Structure.columnar} and the engine's compiled CSP instances replace
    string relation names and node labels by small ints so the hot loops
    compare and index by integer.  Ids are dense ([0..size-1], in first-
    intern order) and process-global: structures compiled at different
    times agree on them without translation.  All operations are
    thread-safe (the pools are shared across domains). *)

type t

val create : unit -> t

(** [intern t s] returns the id of [s], allocating the next dense id on
    first sight. *)
val intern : t -> string -> int

(** [find_opt t s] — the id of [s] if it was ever interned (never
    allocates). *)
val find_opt : t -> string -> int option

(** [name t id] — inverse of {!intern}.
    @raise Invalid_argument on an unknown id. *)
val name : t -> int -> string

val size : t -> int

(** {1 Process-global pools} *)

(** Relation names. *)
val rels : t

(** Node labels. *)
val labels : t

val rel_id : string -> int
val rel_name : int -> string
val label_id : string -> int
val label_name : int -> string
