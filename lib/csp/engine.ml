module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Fault = Certdb_obs.Fault

type hom = int Int_map.t

(* Observability: the engine owns the solver-side hot-path counters (the
   legacy csp.solver.* names are kept so dashboards and the certdb stats
   self-test keep working across the Solver -> Engine migration). *)
let decisions = Obs.counter "csp.solver.decisions"
let backtracks_c = Obs.counter "csp.solver.backtracks"
let fc_prunes = Obs.counter "csp.solver.fc_prunes"
let wipeouts = Obs.counter "csp.solver.wipeouts"
let mrv_selects = Obs.counter "csp.solver.mrv_selects"
let solutions = Obs.counter "csp.solver.solutions"
let searches = Obs.counter "csp.solver.searches"
let unknowns = Obs.counter "csp.engine.unknowns"
let exists_skipped_vars = Obs.counter "csp.engine.exists_skipped_vars"

type reason =
  | Node_budget
  | Backtrack_budget
  | Deadline
  | Cancelled
  | Crashed of string

let reason_to_string = function
  | Node_budget -> "node-budget"
  | Backtrack_budget -> "backtrack-budget"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Crashed point -> "crashed:" ^ point

type 'a outcome = Sat of 'a | Unsat | Unknown of reason

let map_outcome f = function
  | Sat x -> Sat (f x)
  | Unsat -> Unsat
  | Unknown r -> Unknown r

type decision = [ `True | `False | `Unknown of reason ]

let decision_of_outcome = function
  | Sat _ -> `True
  | Unsat -> `False
  | Unknown r -> `Unknown r

module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled t = Atomic.get t
end

module Limits = struct
  type t = {
    nodes : int option;
    backtracks : int option;
    timeout_ms : float option;
    cancel : Cancel.t option;
  }

  let unlimited = { nodes = None; backtracks = None; timeout_ms = None; cancel = None }

  let make ?nodes ?backtracks ?timeout_ms ?cancel () =
    { nodes; backtracks; timeout_ms; cancel }

  let is_unlimited l =
    l.nodes = None && l.backtracks = None && l.timeout_ms = None
    && l.cancel = None
end

module Budget = struct
  exception Interrupted of reason

  (* How many node ticks between wall-clock polls: [Obs.now_ms] costs a
     syscall, an atomic cancellation probe does not, so the cancel token
     is checked at every tick and the clock only periodically. *)
  let clock_interval = 64

  type t = {
    mutable nodes_left : int; (* max_int encodes "unlimited" *)
    mutable backtracks_left : int;
    timeout_ms : float; (* relative ms allowance; infinity = none *)
    (* The wall clock ([Obs.now_ms], normally [Unix.gettimeofday]) is not
       monotone: an NTP step backwards would disarm an absolute deadline
       for as long as the step was large.  Instead the tracker accumulates
       only the positive deltas between successive polls, so elapsed time
       never decreases and forward progress after a backward step still
       counts against the allowance. *)
    mutable last_now_ms : float;
    mutable elapsed_ms : float;
    cancel : Cancel.t option;
    mutable until_clock_check : int;
  }

  let start (l : Limits.t) =
    let timeout_ms = Option.value ~default:infinity l.timeout_ms in
    {
      nodes_left = Option.value ~default:max_int l.nodes;
      backtracks_left = Option.value ~default:max_int l.backtracks;
      timeout_ms;
      last_now_ms = (if timeout_ms < infinity then Obs.now_ms () else 0.);
      elapsed_ms = 0.;
      cancel = l.cancel;
      until_clock_check = clock_interval;
    }

  (* A tracker for unlimited limits never mutates (nodes_left stays at
     max_int, the clock is never polled), so this shared one is safe to
     use from any number of domains at once. *)
  let unlimited = start Limits.unlimited

  let check_clocks b =
    (match b.cancel with
    | Some c when Cancel.cancelled c -> raise (Interrupted Cancelled)
    | _ -> ());
    if b.timeout_ms < infinity then begin
      b.until_clock_check <- b.until_clock_check - 1;
      if b.until_clock_check <= 0 then begin
        b.until_clock_check <- clock_interval;
        let now = Obs.now_ms () in
        if now > b.last_now_ms then
          b.elapsed_ms <- b.elapsed_ms +. (now -. b.last_now_ms);
        b.last_now_ms <- now;
        if b.elapsed_ms > b.timeout_ms then raise (Interrupted Deadline)
      end
    end

  let tick_node b =
    Fault.hit "csp.search.node";
    if b.nodes_left <> max_int then begin
      if b.nodes_left <= 0 then raise (Interrupted Node_budget);
      b.nodes_left <- b.nodes_left - 1
    end;
    check_clocks b

  let tick_backtrack b =
    Obs.incr backtracks_c;
    if b.backtracks_left <> max_int then begin
      if b.backtracks_left <= 0 then raise (Interrupted Backtrack_budget);
      b.backtracks_left <- b.backtracks_left - 1
    end

  let run limits f =
    let b = start limits in
    match f b with
    | Some x -> Sat x
    | None -> Unsat
    | exception Interrupted r ->
      Obs.incr unknowns;
      Unknown r
    | exception Fault.Injected point ->
      (* an injected crash inside a budgeted search degrades to Unknown:
         the search died, but that is still not evidence of Unsat *)
      Obs.incr unknowns;
      Unknown (Crashed point)
end

module Config = struct
  type var_order = Mrv | Lex | Seeded of int
  type propagation = Forward_check | No_propagation

  type t = {
    limits : Limits.t;
    var_order : var_order;
    propagation : propagation;
    restrict : Structure.candidates option;
  }

  let default =
    {
      limits = Limits.unlimited;
      var_order = Mrv;
      propagation = Forward_check;
      restrict = None;
    }

  let make ?(limits = Limits.unlimited) ?(var_order = Mrv)
      ?(propagation = Forward_check) ?restrict () =
    { limits; var_order; propagation; restrict }

  let with_restrict restrict t = { t with restrict = Some restrict }
end

let is_hom ~source ~target h =
  List.for_all
    (fun v ->
      match Int_map.find_opt v h with
      | None -> false
      | Some w ->
        Structure.mem_node target w && Structure.same_label source v target w)
    (Structure.nodes source)
  && Structure.fold_tuples
       (fun rel t ok ->
         ok
         && Structure.mem_tuple target rel
              (Array.map (fun v -> Int_map.find v h) t))
       source true

(* Constraints of the CSP: one per source fact. *)
type cstr = { rel : string; vars : int array }

let constraints_of source =
  Structure.fold_tuples
    (fun rel t acc -> { rel; vars = t } :: acc)
    source []

let constraints_by_var cstrs =
  List.fold_left
    (fun m c ->
      Array.fold_left
        (fun m v ->
          Int_map.update v
            (function Some cs -> Some (c :: cs) | None -> Some [ c ])
            m)
        m c.vars)
    Int_map.empty cstrs

let initial_candidates ?restrict ~source ~target () =
  List.fold_left
    (fun m v ->
      let base =
        List.fold_left
          (fun s w ->
            if Structure.same_label source v target w then Int_set.add w s
            else s)
          Int_set.empty (Structure.nodes target)
      in
      let cands =
        match restrict with
        | None -> base
        | Some r -> Int_set.inter base (r v)
      in
      Int_map.add v cands m)
    Int_map.empty (Structure.nodes source)

(* [supports target assignment c w b] iff some target tuple of [c.rel] is
   consistent with [assignment] extended by [w ↦ b] on the variables of
   [c]. *)
let supports target assignment c w b =
  List.exists
    (fun tt ->
      Array.length tt = Array.length c.vars
      && (let ok = ref true in
          Array.iteri
            (fun i v ->
              if !ok then
                if v = w then (if tt.(i) <> b then ok := false)
                else
                  match Int_map.find_opt v assignment with
                  | Some img -> if tt.(i) <> img then ok := false
                  | None -> ())
            c.vars;
          !ok))
    (Structure.tuples_of target c.rel)

(* The budgeted backtracking core.  When [skip_free] is set, variables
   occurring in no constraint are excluded from branching (their only
   obligation is a non-empty candidate set, checked up front) and reported
   to [on_solution], which receives the assignment over the branching
   variables, the live candidate map, and the skipped variables — so
   solve-mode can extend the assignment greedily while exists-mode skips
   the work entirely.  Raises [Budget.Interrupted] when a limit trips. *)
exception Stop

(* Fisher–Yates with an explicit PRNG state: restart policies rely on the
   permutation being a pure function of the seed. *)
let seeded_shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let run_search ~(config : Config.t) ~budget ~skip_free ~source ~target
    on_solution =
  Obs.incr searches;
  let cstrs = constraints_of source in
  let by_var = constraints_by_var cstrs in
  let cstrs_of v =
    match Int_map.find_opt v by_var with Some cs -> cs | None -> []
  in
  let all_vars = Structure.nodes source in
  let branch_vars, free_vars =
    if skip_free then List.partition (fun v -> Int_map.mem v by_var) all_vars
    else (all_vars, [])
  in
  let branch_vars =
    match config.var_order with
    | Config.Seeded s ->
      seeded_shuffle (Random.State.make [| s; 0x5eed |]) branch_vars
    | Config.Mrv | Config.Lex -> branch_vars
  in
  (* Seeded also perturbs the value order per variable, deterministically
     in (seed, var), so two attempts with different seeds explore
     genuinely different prefixes of the search tree. *)
  let iter_values v f dom =
    match config.var_order with
    | Config.Seeded s ->
      List.iter f
        (seeded_shuffle
           (Random.State.make [| s; v; 0x5eed |])
           (Int_set.elements dom))
    | Config.Mrv | Config.Lex -> Int_set.iter f dom
  in
  let fc = config.propagation = Config.Forward_check in
  let mrv = config.var_order = Config.Mrv in
  let rec go assignment candidates unassigned =
    match unassigned with
    | [] ->
      Obs.incr solutions;
      if on_solution assignment candidates free_vars = `Stop then raise Stop
    | _ ->
      let v =
        if mrv then begin
          Obs.incr mrv_selects;
          List.fold_left
            (fun best v ->
              let card v = Int_set.cardinal (Int_map.find v candidates) in
              match best with
              | None -> Some v
              | Some b -> if card v < card b then Some v else best)
            None unassigned
          |> Option.get
        end
        else List.hd unassigned
      in
      let rest = List.filter (fun w -> w <> v) unassigned in
      iter_values v
        (fun b ->
          Budget.tick_node budget;
          Obs.incr decisions;
          let assignment' = Int_map.add v b assignment in
          (* prune the domains of neighbors through constraints on v *)
          let ok = ref true in
          let candidates' =
            List.fold_left
              (fun cands c ->
                if not !ok then cands
                else if
                  (* fully assigned constraint: check directly *)
                  Array.for_all (fun u -> Int_map.mem u assignment') c.vars
                then
                  if
                    Structure.mem_tuple target c.rel
                      (Array.map (fun u -> Int_map.find u assignment') c.vars)
                  then cands
                  else begin
                    ok := false;
                    cands
                  end
                else if not fc then cands
                else
                  Array.fold_left
                    (fun cands u ->
                      if Int_map.mem u assignment' then cands
                      else
                        let dom = Int_map.find u cands in
                        let dom' =
                          Int_set.filter
                            (fun b' -> supports target assignment' c u b')
                            dom
                        in
                        Obs.add fc_prunes
                          (Int_set.cardinal dom - Int_set.cardinal dom');
                        if Int_set.is_empty dom' then begin
                          Obs.incr wipeouts;
                          ok := false
                        end;
                        Int_map.add u dom' cands)
                    cands c.vars)
              candidates (cstrs_of v)
          in
          if !ok then go assignment' candidates' rest
          else Budget.tick_backtrack budget)
        (Int_map.find v candidates)
  in
  let candidates =
    initial_candidates ?restrict:config.restrict ~source ~target ()
  in
  if Int_map.for_all (fun _ d -> not (Int_set.is_empty d)) candidates then (
    try
      go Int_map.empty candidates branch_vars;
      `Exhausted
    with Stop -> `Stopped)
  else `Exhausted

(* {1 Public entry points} *)

let solve ?(config = Config.default) ~source ~target () =
  Trace.with_span "csp.engine.solve" @@ fun () ->
  Budget.run config.limits (fun budget ->
      let found = ref None in
      (match
         run_search ~config ~budget ~skip_free:true ~source ~target
           (fun assignment candidates free_vars ->
             (* unconstrained variables: any label-compatible candidate
                works, so extend greedily without search *)
             let h =
               List.fold_left
                 (fun h v ->
                   Obs.incr decisions;
                   Int_map.add v (Int_set.min_elt (Int_map.find v candidates)) h)
                 assignment free_vars
             in
             found := Some h;
             `Stop)
       with
      | `Exhausted | `Stopped -> ());
      !found)

let satisfiable ?(config = Config.default) ~source ~target () =
  Trace.with_span "csp.engine.satisfiable" @@ fun () ->
  Budget.run config.limits (fun budget ->
      let found = ref false in
      (match
         run_search ~config ~budget ~skip_free:true ~source ~target
           (fun _ _ free_vars ->
             Obs.add exists_skipped_vars (List.length free_vars);
             found := true;
             `Stop)
       with
      | `Exhausted | `Stopped -> ());
      if !found then Some () else None)

let iter ?(config = Config.default) ~source ~target f =
  Trace.with_span "csp.engine.iter" @@ fun () ->
  let budget = Budget.start config.limits in
  match
    run_search ~config ~budget ~skip_free:false ~source ~target
      (fun assignment _ _ -> f assignment)
  with
  | `Exhausted -> `Exhausted
  | `Stopped -> `Stopped
  | exception Budget.Interrupted r ->
    Obs.incr unknowns;
    `Interrupted r
  | exception Fault.Injected point ->
    Obs.incr unknowns;
    `Interrupted (Crashed point)

let count ?(config = Config.default) ~source ~target () =
  let n = ref 0 in
  match
    iter ~config ~source ~target (fun _ ->
        incr n;
        `Continue)
  with
  | `Exhausted | `Stopped -> Sat !n
  | `Interrupted r -> Unknown r

(* {1 The domain-parallel batch layer} *)

module Batch = struct
  let runs = Obs.counter "csp.batch.runs"
  let tasks_total = Obs.counter "csp.batch.tasks"
  let errors_total = Obs.counter "csp.batch.errors"
  let skipped_total = Obs.counter "csp.batch.skipped"
  let worker_tasks wid = Obs.counter (Printf.sprintf "csp.batch.worker%d.tasks" wid)

  let default_jobs () = max 1 (Domain.recommended_domain_count ())

  type error =
    | Raised of { exn : exn; backtrace : Printexc.raw_backtrace }
    | Skipped

  type failure_policy = Continue | Fail_fast of Cancel.t

  let map_result ?jobs ?(on_error = Continue) f xs =
    let n = List.length xs in
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let jobs = min jobs (max 1 n) in
    Obs.incr runs;
    let input = Array.of_list xs in
    (* each slot is written by exactly one worker; Domain.join publishes
       the writes to the coordinating domain *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let stop = match on_error with Continue -> None | Fail_fast c -> Some c in
    let stopped () =
      match stop with Some c -> Cancel.cancelled c | None -> false
    in
    (* capture the coordinator's trace context before spawning: each task
       span joins the submitting request's trace (worker domains have a
       fresh span stack, so without this the nesting would silently drop);
       with no enclosing trace every task roots its own. *)
    let ctx = Trace.capture () in
    let work wid () =
      let mine = worker_tasks wid in
      let rec loop () =
        if not (stopped ()) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let r =
              try
                (* deterministic fault point: keyed to the task index, not
                   the pop order, so a schedule poisons the same tasks at
                   any [jobs] *)
                Trace.with_context ctx (fun () ->
                    Trace.with_span "csp.batch.task"
                      ~labels:
                        [
                          ("worker", string_of_int wid);
                          ("task", string_of_int i);
                        ]
                      (fun () ->
                        Fault.hit_k "csp.batch.task" (i + 1);
                        Ok (f input.(i))))
              with e ->
                Error (Raised { exn = e; backtrace = Printexc.get_raw_backtrace () })
            in
            (match (r, stop) with
            | Error _, Some c ->
              Obs.incr errors_total;
              Cancel.cancel c
            | Error _, None -> Obs.incr errors_total
            | Ok _, _ -> ());
            results.(i) <- Some r;
            Obs.incr mine;
            Obs.incr tasks_total;
            loop ()
          end
        end
      in
      loop ()
    in
    if jobs = 1 then work 0 ()
    else begin
      let workers =
        List.init (jobs - 1) (fun k -> Domain.spawn (work (k + 1)))
      in
      work 0 ();
      List.iter Domain.join workers
    end;
    (* under Fail_fast, tasks never popped after the trip are reported as
       Skipped — slots already claimed keep their real result *)
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None ->
           Obs.incr skipped_total;
           Error Skipped)

  let map ?jobs f xs =
    map_result ?jobs ~on_error:Continue f xs
    |> List.map (function
         | Ok r -> r
         | Error (Raised { exn; backtrace }) ->
           Printexc.raise_with_backtrace exn backtrace
         | Error Skipped -> assert false (* Continue never skips *))

  type task = {
    config : Config.t;
    source : Structure.t;
    target : Structure.t;
  }

  let solve_all ?jobs tasks =
    map ?jobs
      (fun t -> solve ~config:t.config ~source:t.source ~target:t.target ())
      tasks
end
