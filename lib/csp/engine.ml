module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Fault = Certdb_obs.Fault

type hom = int Int_map.t

(* Observability: the engine owns the solver-side hot-path counters (the
   legacy csp.solver.* names are kept so dashboards and the certdb stats
   self-test keep working across the Solver -> Engine migration). *)
let decisions = Obs.counter "csp.solver.decisions"
let backtracks_c = Obs.counter "csp.solver.backtracks"
let fc_prunes = Obs.counter "csp.solver.fc_prunes"
let wipeouts = Obs.counter "csp.solver.wipeouts"
let mrv_selects = Obs.counter "csp.solver.mrv_selects"
let solutions = Obs.counter "csp.solver.solutions"
let searches = Obs.counter "csp.solver.searches"
let unknowns = Obs.counter "csp.engine.unknowns"
let exists_skipped_vars = Obs.counter "csp.engine.exists_skipped_vars"

type reason =
  | Node_budget
  | Backtrack_budget
  | Deadline
  | Cancelled
  | Crashed of string

let reason_to_string = function
  | Node_budget -> "node-budget"
  | Backtrack_budget -> "backtrack-budget"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"
  | Crashed point -> "crashed:" ^ point

type 'a outcome = Sat of 'a | Unsat | Unknown of reason

let map_outcome f = function
  | Sat x -> Sat (f x)
  | Unsat -> Unsat
  | Unknown r -> Unknown r

type decision = [ `True | `False | `Unknown of reason ]

let decision_of_outcome = function
  | Sat _ -> `True
  | Unsat -> `False
  | Unknown r -> `Unknown r

module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let cancel t = Atomic.set t true
  let cancelled t = Atomic.get t
end

module Limits = struct
  type t = {
    nodes : int option;
    backtracks : int option;
    timeout_ms : float option;
    cancel : Cancel.t option;
  }

  let unlimited = { nodes = None; backtracks = None; timeout_ms = None; cancel = None }

  let make ?nodes ?backtracks ?timeout_ms ?cancel () =
    { nodes; backtracks; timeout_ms; cancel }

  let is_unlimited l =
    l.nodes = None && l.backtracks = None && l.timeout_ms = None
    && l.cancel = None
end

module Budget = struct
  exception Interrupted of reason

  (* How many node ticks between wall-clock polls: [Obs.now_ms] costs a
     syscall, an atomic cancellation probe does not, so the cancel token
     is checked at every tick and the clock only periodically. *)
  let clock_interval = 64

  type t = {
    mutable nodes_left : int; (* max_int encodes "unlimited" *)
    mutable backtracks_left : int;
    timeout_ms : float; (* relative ms allowance; infinity = none *)
    (* The wall clock ([Obs.now_ms], normally [Unix.gettimeofday]) is not
       monotone: an NTP step backwards would disarm an absolute deadline
       for as long as the step was large.  Instead the tracker accumulates
       only the positive deltas between successive polls, so elapsed time
       never decreases and forward progress after a backward step still
       counts against the allowance. *)
    mutable last_now_ms : float;
    mutable elapsed_ms : float;
    cancel : Cancel.t option;
    mutable until_clock_check : int;
  }

  let start (l : Limits.t) =
    let timeout_ms = Option.value ~default:infinity l.timeout_ms in
    {
      nodes_left = Option.value ~default:max_int l.nodes;
      backtracks_left = Option.value ~default:max_int l.backtracks;
      timeout_ms;
      last_now_ms = (if timeout_ms < infinity then Obs.now_ms () else 0.);
      elapsed_ms = 0.;
      cancel = l.cancel;
      until_clock_check = clock_interval;
    }

  (* A tracker for unlimited limits never mutates (nodes_left stays at
     max_int, the clock is never polled), so this shared one is safe to
     use from any number of domains at once. *)
  let unlimited = start Limits.unlimited

  let check_clocks b =
    (match b.cancel with
    | Some c when Cancel.cancelled c -> raise (Interrupted Cancelled)
    | _ -> ());
    if b.timeout_ms < infinity then begin
      b.until_clock_check <- b.until_clock_check - 1;
      if b.until_clock_check <= 0 then begin
        b.until_clock_check <- clock_interval;
        let now = Obs.now_ms () in
        if now > b.last_now_ms then
          b.elapsed_ms <- b.elapsed_ms +. (now -. b.last_now_ms);
        b.last_now_ms <- now;
        if b.elapsed_ms > b.timeout_ms then raise (Interrupted Deadline)
      end
    end

  let tick_node b =
    Fault.hit "csp.search.node";
    if b.nodes_left <> max_int then begin
      if b.nodes_left <= 0 then raise (Interrupted Node_budget);
      b.nodes_left <- b.nodes_left - 1
    end;
    check_clocks b

  let tick_backtrack b =
    Obs.incr backtracks_c;
    if b.backtracks_left <> max_int then begin
      if b.backtracks_left <= 0 then raise (Interrupted Backtrack_budget);
      b.backtracks_left <- b.backtracks_left - 1
    end

  let run limits f =
    let b = start limits in
    match f b with
    | Some x -> Sat x
    | None -> Unsat
    | exception Interrupted r ->
      Obs.incr unknowns;
      Unknown r
    | exception Fault.Injected point ->
      (* an injected crash inside a budgeted search degrades to Unknown:
         the search died, but that is still not evidence of Unsat *)
      Obs.incr unknowns;
      Unknown (Crashed point)
end

module Config = struct
  type var_order = Mrv | Lex | Seeded of int
  type propagation = Forward_check | No_propagation

  type t = {
    limits : Limits.t;
    var_order : var_order;
    propagation : propagation;
    restrict : Domains.t option;
  }

  let default =
    {
      limits = Limits.unlimited;
      var_order = Mrv;
      propagation = Forward_check;
      restrict = None;
    }

  let make ?(limits = Limits.unlimited) ?(var_order = Mrv)
      ?(propagation = Forward_check) ?restrict () =
    { limits; var_order; propagation; restrict }

  let with_restrict restrict t = { t with restrict = Some restrict }
end

let is_hom ~source ~target h =
  List.for_all
    (fun v ->
      match Int_map.find_opt v h with
      | None -> false
      | Some w ->
        Structure.mem_node target w && Structure.same_label source v target w)
    (Structure.nodes source)
  && Structure.fold_tuples
       (fun rel t ok ->
         ok
         && Structure.mem_tuple target rel
              (Array.map (fun v -> Int_map.find v h) t))
       source true

(* Constraints of the CSP: one per source fact. *)
type cstr = { rel : string; vars : int array }

let constraints_of source =
  Structure.fold_tuples
    (fun rel t acc -> { rel; vars = t } :: acc)
    source []

let constraints_by_var cstrs =
  List.fold_left
    (fun m c ->
      Array.fold_left
        (fun m v ->
          Int_map.update v
            (function Some cs -> Some (c :: cs) | None -> Some [ c ])
            m)
        m c.vars)
    Int_map.empty cstrs

let initial_candidates ?restrict ~source ~target () =
  List.fold_left
    (fun m v ->
      let base =
        List.fold_left
          (fun s w ->
            if Structure.same_label source v target w then Int_set.add w s
            else s)
          Int_set.empty (Structure.nodes target)
      in
      let cands =
        match restrict with
        | None -> base
        | Some r -> (
          match Domains.find r v with
          | None -> base
          | Some s -> Int_set.inter base s)
      in
      Int_map.add v cands m)
    Int_map.empty (Structure.nodes source)

exception Stop

(* Fisher–Yates with an explicit PRNG state: restart policies rely on the
   permutation being a pure function of the seed. *)
let seeded_shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* {1 The compiled instance}

   One compile per (source, target, restrict) triple: both structures'
   columnar views ({!Structure.columnar}), dense variable and value ids,
   per-variable initial candidate bitsets (label-compatible targets
   intersected with the restriction), and the constraint list with its
   per-variable index and the matching target relation resolved by
   interned (rel_id, arity).  Shared by the search core and AC-3. *)

module Compiled = struct
  module Bitset = Domains.Bitset

  type ccstr = {
    cvars : int array; (* dense source vars, one per position *)
    tgt : Structure.crel option; (* target tuples of the same (rel, arity) *)
  }

  type t = {
    csrc : Structure.columnar;
    ctgt : Structure.columnar;
    nvars : int;
    cap : int; (* number of target nodes *)
    words : int;
    init : Bitset.bs array; (* per dense var *)
    cstrs : ccstr array;
    by_var : ccstr list array;
    zero_ok : bool; (* every 0-ary source fact occurs in the target *)
    max_arity : int;
  }

  let find_crel (c : Structure.columnar) rel_id arity =
    let n = Array.length c.Structure.crels in
    let rec go i =
      if i >= n then None
      else
        let cr = c.Structure.crels.(i) in
        if cr.Structure.rel_id = rel_id && cr.Structure.arity = arity then
          Some cr
        else go (i + 1)
    in
    go 0

  let make ?restrict ~source ~target () =
    let csrc = Structure.columnar source in
    let ctgt = Structure.columnar target in
    let nvars = Array.length csrc.Structure.node_ids in
    let cap = Array.length ctgt.Structure.node_ids in
    let words = max 1 (Bitset.words_for cap) in
    (* targets grouped by label id, as bitsets *)
    let by_label = Hashtbl.create 8 in
    Array.iteri
      (fun w l ->
        let bs =
          match Hashtbl.find_opt by_label l with
          | Some bs -> bs
          | None ->
            let bs = Bitset.create cap in
            Hashtbl.replace by_label l bs;
            bs
        in
        Bitset.set bs w)
      ctgt.Structure.node_labels;
    let empty_row = Bitset.create cap in
    let init =
      Array.init nvars (fun v ->
          let base =
            match Hashtbl.find_opt by_label csrc.Structure.node_labels.(v) with
            | Some bs -> Bitset.copy bs
            | None -> Bitset.copy empty_row
          in
          (match restrict with
          | None -> ()
          | Some r -> (
            match Domains.find r csrc.Structure.node_ids.(v) with
            | None -> ()
            | Some s ->
              let mask = Bitset.create cap in
              Int_set.iter
                (fun raw ->
                  match Hashtbl.find_opt ctgt.Structure.dense_of raw with
                  | Some w -> Bitset.set mask w
                  | None -> ())
                s;
              ignore (Bitset.inter_into ~dst:base mask)));
          base)
    in
    let cstrs = ref [] in
    let zero_ok = ref true in
    let max_arity = ref 1 in
    Array.iter
      (fun (cr : Structure.crel) ->
        if cr.Structure.arity = 0 then begin
          if
            cr.Structure.count > 0
            && not
                 (match find_crel ctgt cr.Structure.rel_id 0 with
                 | Some tr -> tr.Structure.count > 0
                 | None -> false)
          then zero_ok := false
        end
        else begin
          if cr.Structure.arity > !max_arity then max_arity := cr.Structure.arity;
          let tgt = find_crel ctgt cr.Structure.rel_id cr.Structure.arity in
          for i = cr.Structure.count - 1 downto 0 do
            let cvars =
              Array.sub cr.Structure.flat (i * cr.Structure.arity)
                cr.Structure.arity
            in
            cstrs := { cvars; tgt } :: !cstrs
          done
        end)
      csrc.Structure.crels;
    let cstrs = Array.of_list !cstrs in
    let by_var = Array.make (max 1 nvars) [] in
    for i = Array.length cstrs - 1 downto 0 do
      let c = cstrs.(i) in
      let seen = ref [] in
      Array.iter
        (fun v ->
          if not (List.mem v !seen) then begin
            seen := v :: !seen;
            by_var.(v) <- c :: by_var.(v)
          end)
        c.cvars
    done;
    {
      csrc;
      ctgt;
      nvars;
      cap;
      words;
      init;
      cstrs;
      by_var;
      zero_ok = !zero_ok;
      max_arity = !max_arity;
    }
end

(* The budgeted backtracking core over the compiled instance.  Semantics
   (variable/value order, MRV tie-breaking, forward-check pruning, budget
   ticks) mirror {!Reference.run_search} exactly — the search tree and
   the csp.solver.* counters it drives are preserved — but domains are
   bitset rows with trail-based undo and support scans run over the
   target's per-position tuple index instead of [Tuple_set] traversals.

   When [skip_free] is set, variables occurring in no constraint are
   excluded from branching (their only obligation is a non-empty
   candidate set, checked up front) and reported to [on_solution]. *)
let run_search_compiled ~(config : Config.t) ~budget ~skip_free
    (cp : Compiled.t) on_solution =
  let module Bitset = Domains.Bitset in
  let module Dense = Domains.Dense in
  Obs.incr searches;
  let nvars = cp.Compiled.nvars in
  let raw v = cp.Compiled.csrc.Structure.node_ids.(v) in
  if not cp.Compiled.zero_ok then `Exhausted
  else if
    Array.exists (fun row -> Bitset.is_empty row) cp.Compiled.init
  then `Exhausted
  else begin
    let branch, free =
      let b = ref [] and f = ref [] in
      for v = nvars - 1 downto 0 do
        if (not skip_free) || cp.Compiled.by_var.(v) <> [] then b := v :: !b
        else f := v :: !f
      done;
      (!b, !f)
    in
    let branch =
      match config.var_order with
      | Config.Seeded s ->
        seeded_shuffle (Random.State.make [| s; 0x5eed |]) branch
      | Config.Mrv | Config.Lex -> branch
    in
    let order = Array.of_list branch in
    let n_branch = Array.length order in
    let m = Dense.create ~vars:(max 1 nvars) ~cap:cp.Compiled.cap in
    Array.iteri (fun v row -> Dense.set_row m v row) cp.Compiled.init;
    let assignment = Array.make (max 1 nvars) (-1) in
    (* Seeded also perturbs the value order per variable, deterministically
       in (seed, var), so two attempts with different seeds explore
       genuinely different prefixes of the search tree. *)
    let values_of v =
      let vals = Dense.row_to_list m v in
      match config.var_order with
      | Config.Seeded s ->
        seeded_shuffle (Random.State.make [| s; raw v; 0x5eed |]) vals
      | Config.Mrv | Config.Lex -> vals
    in
    let fc = config.propagation = Config.Forward_check in
    let mrv = config.var_order = Config.Mrv in
    (* trail bookkeeping: each decision saves a modified row at most once *)
    let stamp = ref 0 in
    let saved_stamp = Array.make (max 1 nvars) (-1) in
    let scratch =
      Array.init (max 1 cp.Compiled.max_arity) (fun _ ->
          Array.make cp.Compiled.words 0)
    in
    let slot_val = Array.make (max 1 cp.Compiled.max_arity) (-1) in
    (* does the fully-assigned constraint [c] hold? *)
    let check_full (c : Compiled.ccstr) =
      match c.Compiled.tgt with
      | None -> false
      | Some tr ->
        let arity = tr.Structure.arity in
        let w0 = assignment.(c.Compiled.cvars.(0)) in
        let cands = tr.Structure.by_pos.(0).(w0) in
        let ok = ref false in
        let k = ref 0 in
        let nc = Array.length cands in
        while (not !ok) && !k < nc do
          let idx = cands.(!k) in
          let all = ref true in
          for p = 1 to arity - 1 do
            if
              !all
              && tr.Structure.flat.((idx * arity) + p)
                 <> assignment.(c.Compiled.cvars.(p))
            then all := false
          done;
          if !all then ok := true;
          incr k
        done;
        !ok
    in
    (* forward-check [c] after assigning [v <- b]: one scan over the
       target tuples matching [b] at [v]'s position, accumulating
       per-slot support bitsets, then a row-wise [land] per unassigned
       variable.  Prunes exactly what per-value support probing would. *)
    let propagate_cstr trail (c : Compiled.ccstr) v b =
      let arity = Array.length c.Compiled.cvars in
      (* slot k <-> k-th distinct unassigned variable of c *)
      let nslots = ref 0 in
      let slots = Array.make arity (-1) in
      (* slots.(p) = slot of the variable at position p, or -1 if assigned *)
      let slot_vars = Array.make arity (-1) in
      for p = 0 to arity - 1 do
        let u = c.Compiled.cvars.(p) in
        if assignment.(u) >= 0 then slots.(p) <- -1
        else begin
          (* first occurrence of u? *)
          let rec first q =
            if q >= p then -1
            else if c.Compiled.cvars.(q) = u then slots.(q)
            else first (q + 1)
          in
          match first 0 with
          | -1 ->
            let k = !nslots in
            incr nslots;
            slots.(p) <- k;
            slot_vars.(k) <- u;
            Bitset.clear scratch.(k)
          | k -> slots.(p) <- k
        end
      done;
      let nslots = !nslots in
      (match c.Compiled.tgt with
      | None -> ()
      | Some tr ->
        (* position of v in c (first occurrence) to narrow the scan *)
        let rec pos_of p =
          if c.Compiled.cvars.(p) = v then p else pos_of (p + 1)
        in
        let pv = pos_of 0 in
        let cands = tr.Structure.by_pos.(pv).(b) in
        Array.iter
          (fun idx ->
            for k = 0 to nslots - 1 do
              slot_val.(k) <- -1
            done;
            let consistent = ref true in
            let p = ref 0 in
            while !consistent && !p < arity do
              let u = c.Compiled.cvars.(!p) in
              let tv = tr.Structure.flat.((idx * arity) + !p) in
              (if assignment.(u) >= 0 then begin
                 if tv <> assignment.(u) then consistent := false
               end
               else
                 let k = slots.(!p) in
                 if slot_val.(k) = -1 then slot_val.(k) <- tv
                 else if slot_val.(k) <> tv then consistent := false);
              incr p
            done;
            if !consistent then
              for k = 0 to nslots - 1 do
                Bitset.set scratch.(k) slot_val.(k)
              done)
          cands);
      let ok = ref true in
      for k = 0 to nslots - 1 do
        let u = slot_vars.(k) in
        if saved_stamp.(u) <> !stamp then begin
          saved_stamp.(u) <- !stamp;
          trail := (u, Dense.save_row m u, Dense.count m u) :: !trail
        end;
        let cleared = Dense.inter_row m u scratch.(k) in
        Obs.add fc_prunes cleared;
        if Dense.count m u = 0 then begin
          Obs.incr wipeouts;
          ok := false
        end
      done;
      !ok
    in
    let n_assigned = ref 0 in
    let rec go () =
      if !n_assigned = n_branch then begin
        Obs.incr solutions;
        if on_solution assignment m free = `Stop then raise Stop
      end
      else begin
        let v =
          if mrv then begin
            Obs.incr mrv_selects;
            let best = ref (-1) in
            Array.iter
              (fun v ->
                if assignment.(v) < 0 then
                  if !best < 0 || Dense.count m v < Dense.count m !best then
                    best := v)
              order;
            !best
          end
          else begin
            let rec first i =
              if assignment.(order.(i)) < 0 then order.(i) else first (i + 1)
            in
            first 0
          end
        in
        List.iter
          (fun b ->
            Budget.tick_node budget;
            Obs.incr decisions;
            assignment.(v) <- b;
            incr n_assigned;
            incr stamp;
            let trail = ref [] in
            let ok = ref true in
            List.iter
              (fun (c : Compiled.ccstr) ->
                if !ok then
                  if
                    Array.for_all
                      (fun u -> assignment.(u) >= 0)
                      c.Compiled.cvars
                  then begin
                    if not (check_full c) then ok := false
                  end
                  else if fc then
                    if not (propagate_cstr trail c v b) then ok := false)
              cp.Compiled.by_var.(v);
            (try
               if !ok then go ()
               else Budget.tick_backtrack budget
             with e ->
               (* unwind the trail even on Stop/Interrupted so sibling
                  state stays coherent for enumerating callers *)
               List.iter
                 (fun (u, row, cnt) -> Dense.restore_row m u row cnt)
                 !trail;
               assignment.(v) <- -1;
               decr n_assigned;
               raise e);
            List.iter
              (fun (u, row, cnt) -> Dense.restore_row m u row cnt)
              !trail;
            assignment.(v) <- -1;
            decr n_assigned)
          (values_of v)
      end
    in
    try
      go ();
      `Exhausted
    with Stop -> `Stopped
  end

(* {1 Public entry points} *)

let compile ?restrict ~source ~target () =
  Compiled.make ?restrict ~source ~target ()

let hom_of_assignment (cp : Compiled.t) assignment =
  let h = ref Int_map.empty in
  Array.iteri
    (fun v b ->
      if b >= 0 then
        h :=
          Int_map.add
            cp.Compiled.csrc.Structure.node_ids.(v)
            cp.Compiled.ctgt.Structure.node_ids.(b)
            !h)
    assignment;
  !h

let solve ?(config = Config.default) ~source ~target () =
  Trace.with_span "csp.engine.solve" @@ fun () ->
  let cp = Compiled.make ?restrict:config.restrict ~source ~target () in
  Budget.run config.limits (fun budget ->
      let found = ref None in
      (match
         run_search_compiled ~config ~budget ~skip_free:true cp
           (fun assignment m free_vars ->
             (* unconstrained variables: any label-compatible candidate
                works, so extend greedily without search *)
             let h = hom_of_assignment cp assignment in
             let h =
               List.fold_left
                 (fun h v ->
                   Obs.incr decisions;
                   let b = List.hd (Domains.Dense.row_to_list m v) in
                   Int_map.add
                     cp.Compiled.csrc.Structure.node_ids.(v)
                     cp.Compiled.ctgt.Structure.node_ids.(b)
                     h)
                 h free_vars
             in
             found := Some h;
             `Stop)
       with
      | `Exhausted | `Stopped -> ());
      !found)

let satisfiable ?(config = Config.default) ~source ~target () =
  Trace.with_span "csp.engine.satisfiable" @@ fun () ->
  let cp = Compiled.make ?restrict:config.restrict ~source ~target () in
  Budget.run config.limits (fun budget ->
      let found = ref false in
      (match
         run_search_compiled ~config ~budget ~skip_free:true cp
           (fun _ _ free_vars ->
             Obs.add exists_skipped_vars (List.length free_vars);
             found := true;
             `Stop)
       with
      | `Exhausted | `Stopped -> ());
      if !found then Some () else None)

let iter ?(config = Config.default) ~source ~target f =
  Trace.with_span "csp.engine.iter" @@ fun () ->
  let cp = Compiled.make ?restrict:config.restrict ~source ~target () in
  let budget = Budget.start config.limits in
  match
    run_search_compiled ~config ~budget ~skip_free:false cp
      (fun assignment _ _ -> f (hom_of_assignment cp assignment))
  with
  | `Exhausted -> `Exhausted
  | `Stopped -> `Stopped
  | exception Budget.Interrupted r ->
    Obs.incr unknowns;
    `Interrupted r
  | exception Fault.Injected point ->
    Obs.incr unknowns;
    `Interrupted (Crashed point)

let count ?(config = Config.default) ~source ~target () =
  let n = ref 0 in
  match
    iter ~config ~source ~target (fun _ ->
        incr n;
        `Continue)
  with
  | `Exhausted | `Stopped -> Sat !n
  | `Interrupted r -> Unknown r

(* {1 The reference core}

   The pre-columnar map/set implementation, preserved verbatim: it is the
   ablation baseline of bench e24, and the independent oracle the
   property tests compare the bitset core against.  Same [Config.t], same
   budget semantics, same counters. *)

module Reference = struct
  (* [supports target assignment c w b] iff some target tuple of [c.rel]
     is consistent with [assignment] extended by [w ↦ b] on the variables
     of [c]. *)
  let supports target assignment c w b =
    List.exists
      (fun tt ->
        Array.length tt = Array.length c.vars
        && (let ok = ref true in
            Array.iteri
              (fun i v ->
                if !ok then
                  if v = w then (if tt.(i) <> b then ok := false)
                  else
                    match Int_map.find_opt v assignment with
                    | Some img -> if tt.(i) <> img then ok := false
                    | None -> ())
              c.vars;
            !ok))
      (Structure.tuples_of target c.rel)

  let run_search ~(config : Config.t) ~budget ~skip_free ~source ~target
      on_solution =
    Obs.incr searches;
    let cstrs = constraints_of source in
    let by_var = constraints_by_var cstrs in
    let cstrs_of v =
      match Int_map.find_opt v by_var with Some cs -> cs | None -> []
    in
    let all_vars = Structure.nodes source in
    let branch_vars, free_vars =
      if skip_free then
        List.partition (fun v -> Int_map.mem v by_var) all_vars
      else (all_vars, [])
    in
    let branch_vars =
      match config.var_order with
      | Config.Seeded s ->
        seeded_shuffle (Random.State.make [| s; 0x5eed |]) branch_vars
      | Config.Mrv | Config.Lex -> branch_vars
    in
    let iter_values v f dom =
      match config.var_order with
      | Config.Seeded s ->
        List.iter f
          (seeded_shuffle
             (Random.State.make [| s; v; 0x5eed |])
             (Int_set.elements dom))
      | Config.Mrv | Config.Lex -> Int_set.iter f dom
    in
    let fc = config.propagation = Config.Forward_check in
    let mrv = config.var_order = Config.Mrv in
    let rec go assignment candidates unassigned =
      match unassigned with
      | [] ->
        Obs.incr solutions;
        if on_solution assignment candidates free_vars = `Stop then raise Stop
      | _ ->
        let v =
          if mrv then begin
            Obs.incr mrv_selects;
            List.fold_left
              (fun best v ->
                let card v = Int_set.cardinal (Int_map.find v candidates) in
                match best with
                | None -> Some v
                | Some b -> if card v < card b then Some v else best)
              None unassigned
            |> Option.get
          end
          else List.hd unassigned
        in
        let rest = List.filter (fun w -> w <> v) unassigned in
        iter_values v
          (fun b ->
            Budget.tick_node budget;
            Obs.incr decisions;
            let assignment' = Int_map.add v b assignment in
            (* prune the domains of neighbors through constraints on v *)
            let ok = ref true in
            let candidates' =
              List.fold_left
                (fun cands c ->
                  if not !ok then cands
                  else if
                    (* fully assigned constraint: check directly *)
                    Array.for_all (fun u -> Int_map.mem u assignment') c.vars
                  then
                    if
                      Structure.mem_tuple target c.rel
                        (Array.map
                           (fun u -> Int_map.find u assignment')
                           c.vars)
                    then cands
                    else begin
                      ok := false;
                      cands
                    end
                  else if not fc then cands
                  else
                    Array.fold_left
                      (fun cands u ->
                        if Int_map.mem u assignment' then cands
                        else
                          let dom = Int_map.find u cands in
                          let dom' =
                            Int_set.filter
                              (fun b' -> supports target assignment' c u b')
                              dom
                          in
                          Obs.add fc_prunes
                            (Int_set.cardinal dom - Int_set.cardinal dom');
                          if Int_set.is_empty dom' then begin
                            Obs.incr wipeouts;
                            ok := false
                          end;
                          Int_map.add u dom' cands)
                      cands c.vars)
                candidates (cstrs_of v)
            in
            if !ok then go assignment' candidates' rest
            else Budget.tick_backtrack budget)
          (Int_map.find v candidates)
    in
    let candidates =
      initial_candidates ?restrict:config.restrict ~source ~target ()
    in
    if Int_map.for_all (fun _ d -> not (Int_set.is_empty d)) candidates then (
      try
        go Int_map.empty candidates branch_vars;
        `Exhausted
      with Stop -> `Stopped)
    else `Exhausted

  let solve ?(config = Config.default) ~source ~target () =
    Trace.with_span "csp.engine.reference.solve" @@ fun () ->
    Budget.run config.limits (fun budget ->
        let found = ref None in
        (match
           run_search ~config ~budget ~skip_free:true ~source ~target
             (fun assignment candidates free_vars ->
               let h =
                 List.fold_left
                   (fun h v ->
                     Obs.incr decisions;
                     Int_map.add v
                       (Int_set.min_elt (Int_map.find v candidates))
                       h)
                   assignment free_vars
               in
               found := Some h;
               `Stop)
         with
        | `Exhausted | `Stopped -> ());
        !found)

  let satisfiable ?(config = Config.default) ~source ~target () =
    Trace.with_span "csp.engine.reference.satisfiable" @@ fun () ->
    Budget.run config.limits (fun budget ->
        let found = ref false in
        (match
           run_search ~config ~budget ~skip_free:true ~source ~target
             (fun _ _ free_vars ->
               Obs.add exists_skipped_vars (List.length free_vars);
               found := true;
               `Stop)
         with
        | `Exhausted | `Stopped -> ());
        if !found then Some () else None)
end

(* {1 The domain-parallel batch layer} *)

module Batch = struct
  let runs = Obs.counter "csp.batch.runs"
  let tasks_total = Obs.counter "csp.batch.tasks"
  let errors_total = Obs.counter "csp.batch.errors"
  let skipped_total = Obs.counter "csp.batch.skipped"
  let worker_tasks wid = Obs.counter (Printf.sprintf "csp.batch.worker%d.tasks" wid)

  let default_jobs () = max 1 (Domain.recommended_domain_count ())

  type error =
    | Raised of { exn : exn; backtrace : Printexc.raw_backtrace }
    | Skipped

  type failure_policy = Continue | Fail_fast of Cancel.t

  let map_result ?jobs ?(on_error = Continue) f xs =
    let n = List.length xs in
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let jobs = min jobs (max 1 n) in
    Obs.incr runs;
    let input = Array.of_list xs in
    (* each slot is written by exactly one worker; Domain.join publishes
       the writes to the coordinating domain *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let stop = match on_error with Continue -> None | Fail_fast c -> Some c in
    let stopped () =
      match stop with Some c -> Cancel.cancelled c | None -> false
    in
    (* capture the coordinator's trace context before spawning: each task
       span joins the submitting request's trace (worker domains have a
       fresh span stack, so without this the nesting would silently drop);
       with no enclosing trace every task roots its own. *)
    let ctx = Trace.capture () in
    let work wid () =
      let mine = worker_tasks wid in
      let rec loop () =
        if not (stopped ()) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let r =
              try
                (* deterministic fault point: keyed to the task index, not
                   the pop order, so a schedule poisons the same tasks at
                   any [jobs] *)
                Trace.with_context ctx (fun () ->
                    Trace.with_span "csp.batch.task"
                      ~labels:
                        [
                          ("worker", string_of_int wid);
                          ("task", string_of_int i);
                        ]
                      (fun () ->
                        Fault.hit_k "csp.batch.task" (i + 1);
                        Ok (f input.(i))))
              with e ->
                Error (Raised { exn = e; backtrace = Printexc.get_raw_backtrace () })
            in
            (match (r, stop) with
            | Error _, Some c ->
              Obs.incr errors_total;
              Cancel.cancel c
            | Error _, None -> Obs.incr errors_total
            | Ok _, _ -> ());
            results.(i) <- Some r;
            Obs.incr mine;
            Obs.incr tasks_total;
            loop ()
          end
        end
      in
      loop ()
    in
    if jobs = 1 then work 0 ()
    else begin
      let workers =
        List.init (jobs - 1) (fun k -> Domain.spawn (work (k + 1)))
      in
      work 0 ();
      List.iter Domain.join workers
    end;
    (* under Fail_fast, tasks never popped after the trip are reported as
       Skipped — slots already claimed keep their real result *)
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None ->
           Obs.incr skipped_total;
           Error Skipped)

  let map ?jobs f xs =
    map_result ?jobs ~on_error:Continue f xs
    |> List.map (function
         | Ok r -> r
         | Error (Raised { exn; backtrace }) ->
           Printexc.raise_with_backtrace exn backtrace
         | Error Skipped -> assert false (* Continue never skips *))

  type task = {
    config : Config.t;
    source : Structure.t;
    target : Structure.t;
  }

  let solve_all ?jobs tasks =
    map ?jobs
      (fun t -> solve ~config:t.config ~source:t.source ~target:t.target ())
      tasks
end

(* {1 Component decomposition}

   A hom instance whose source splits into connected components (of the
   Gaifman graph) decomposes: the components share no constraint, so a
   homomorphism exists iff one exists per component, and the witnesses
   stitch together over the disjoint node sets.  Components are solved
   independently — optionally in parallel on {!Batch}'s domain pool —
   and the outcomes conjoined: any [Unsat] wins, else any [Unknown]
   wins (the first, in component order), else [Sat]. *)

module Components = struct
  let splits = Obs.counter "csp.components.splits"
  let solved = Obs.counter "csp.components.solved"
  let components_gauge = Obs.gauge "csp.components.count"

  let split = Structure.components
  let count = Structure.component_count

  (* [conjoin outcomes] — [merge] stitches the per-component witnesses
     (their domains are disjoint). *)
  let conjoin ~merge outcomes =
    if List.exists (function Unsat -> true | _ -> false) outcomes then Unsat
    else
      match
        List.find_opt (function Unknown _ -> true | _ -> false) outcomes
      with
      | Some (Unknown r) -> Unknown r
      | Some _ | None ->
        Sat
          (merge
             (List.map
                (function Sat x -> x | Unsat | Unknown _ -> assert false)
                outcomes))

  let run ~each ~merge ?(config = Config.default) ?(jobs = 1) ~source
      ~target () =
    match Structure.components source with
    | [] | [ _ ] -> each ~config ~source ~target ()
    | comps ->
      Trace.with_span "csp.components.run"
        ~labels:[ ("components", string_of_int (List.length comps)) ]
      @@ fun () ->
      Obs.incr splits;
      Obs.set_int components_gauge (List.length comps);
      (* every component runs under the caller's full limits — the
         conjunction is still sound: a definitive per-component answer is
         definitive for the whole, and budgets only add Unknowns *)
      let outcomes =
        Batch.map ~jobs
          (fun comp ->
            let o = each ~config ~source:comp ~target () in
            Obs.incr solved;
            o)
          comps
      in
      conjoin ~merge outcomes

  let solve ?config ?jobs ~source ~target () =
    run
      ~each:(fun ~config ~source ~target () ->
        solve ~config ~source ~target ())
      ~merge:(fun homs ->
        List.fold_left
          (Int_map.union (fun _ w _ -> Some w))
          Int_map.empty homs)
      ?config ?jobs ~source ~target ()

  let satisfiable ?config ?jobs ~source ~target () =
    run
      ~each:(fun ~config ~source ~target () ->
        satisfiable ~config ~source ~target ())
      ~merge:(fun _ -> ())
      ?config ?jobs ~source ~target ()
end
