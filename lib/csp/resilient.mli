(** Policy-driven resilience around the budgeted engine: retry and
    escalation for [Unknown] outcomes.

    A budgeted search that trips a limit returns
    [Unknown r] — honest, but terminal.  This module turns it into a
    {e ladder}:

    + {b propagation} — an unbudgeted AC-3 pass
      ({!Arc_consistency.prune}); a domain wipeout is a polynomial-time
      [Unsat] certificate, no search needed, and otherwise the pruned
      domains are fed to the search as its restriction;
    + {b budgeted search} — the caller's configuration as given;
    + {b escalated retries} — on [Unknown], re-run with the node and
      backtrack budgets multiplied by [escalation^(attempt-1)] and, when
      [restart_seed] is set, a fresh [Engine.Config.Seeded] variable
      order per attempt (a deterministic randomized restart: a different
      seed explores a different prefix of the search tree, so an attempt
      that got stuck under one ordering may finish instantly under
      another);
    + {b cross-backend fallback} — when every attempt trips and a
      [?fallback] backend was supplied (e.g. the SAT backend of
      [Certdb_sat], or the CSP engine when SAT was primary), run it
      once under the fully escalated limits; a definitive answer gets
      rung [Fallback name], an [Unknown] keeps the primary's outcome;
    + {b degrade} — if every attempt trips, the final [Unknown] is
      reported with rung {!Exhausted}; domain layers (certain answers)
      then fall back to a sound under-approximation — see
      [Certain.certain_cq_resilient] and friends.

    Invariant (qcheck-checked in [test_resilient.ml]): no policy ever
    converts a definitive [Sat]/[Unsat] into anything else — a
    definitive outcome stops the ladder at once, and retries can only
    turn [Unknown] into a definitive answer, never the reverse.

    Cancellation is special-cased: a tripped {!Engine.Cancel.t} stays
    tripped, so retrying after [Unknown Cancelled] would spin — the
    ladder stops immediately instead. *)

module Policy : sig
  type t = {
    max_attempts : int;  (** total budgeted attempts, [>= 1] *)
    escalation : float;
        (** per-retry budget multiplier ([>= 1.0]): attempt [i] runs
            under [nodes × escalation^(i-1)] (likewise backtracks; the
            wall-clock deadline and cancel token are {e not} scaled) *)
    restart_seed : int option;
        (** when set, attempt [i > 1] uses variable order
            [Seeded (seed + i)]; [None] keeps the caller's ordering on
            every attempt *)
    propagate_first : bool;
        (** run the AC-3 certificate rung before any search
            (only meaningful for {!solve}/{!satisfiable}) *)
  }

  (** Defaults: 3 attempts, ×4 escalation, seeded restarts,
      propagation rung on.
      @raise Invalid_argument on [max_attempts < 1] or
      [escalation < 1.0]. *)
  val make :
    ?max_attempts:int ->
    ?escalation:float ->
    ?restart_seed:int option ->
    ?propagate_first:bool ->
    unit ->
    t

  val default : t

  (** One attempt, no propagation rung: behaves exactly like the bare
      engine call. *)
  val no_retry : t
end

(** Which rung of the ladder produced the outcome. *)
type rung =
  | Propagation  (** settled by the AC-3 certificate; no search ran *)
  | Search of int  (** settled by budgeted attempt [n] (1-based) *)
  | Fallback of string
      (** every primary attempt tripped and the named fallback backend
          settled it definitively *)
  | Exhausted
      (** every attempt tripped (or the cancel token fired); the
          outcome is the last [Unknown] *)

val rung_to_string : rung -> string

type 'a run = {
  outcome : 'a Engine.outcome;
  attempts : int;  (** budgeted searches actually run (0 = propagation) *)
  rung : rung;
}

val decision : 'a run -> Engine.decision

(** [scale_limits policy ~attempt l] — the limits attempt [attempt]
    (1-based) runs under; the identity for [attempt <= 1]. *)
val scale_limits : Policy.t -> attempt:int -> Engine.Limits.t -> Engine.Limits.t

(** [run ?policy ?fallback ~limits f] — the generic retry core, for
    budgeted procedures that are not a bare engine call (orderings,
    membership, certain answers): attempt [i] calls
    [f ~attempt:i (scale_limits policy ~attempt:i limits)] and the
    ladder logic of the module applies to its outcome.  [f] is
    responsible for honoring the limits it is given.  The propagation
    rung and seeded restarts do not apply ([f] owns its own search).

    [fallback] is [(name, call)]: when every attempt of [f] trips (and
    the cancel token did not fire), [call] runs once under the fully
    escalated limits.  A definitive answer is returned with rung
    [Fallback name]; an [Unknown] keeps [f]'s final outcome.  The
    no-flip invariant is preserved by construction: the fallback only
    ever runs on [Unknown].  Counted under [csp.resilient.crossed] /
    [csp.resilient.crossed_recovered]. *)
val run :
  ?policy:Policy.t ->
  ?fallback:string * (Engine.Limits.t -> 'a Engine.outcome) ->
  limits:Engine.Limits.t ->
  (attempt:int -> Engine.Limits.t -> 'a Engine.outcome) ->
  'a run

(** [solve ?policy ?fallback ?config ~source ~target ()] — the full
    ladder over {!Engine.solve}.  [config.limits] is the attempt-1
    budget.  The [fallback] backend receives the config it should run
    under — escalated limits plus the AC-3-pruned restriction from the
    propagation rung, so certificate work transfers across backends. *)
val solve :
  ?policy:Policy.t ->
  ?fallback:string * (config:Engine.Config.t -> Engine.hom Engine.outcome) ->
  ?config:Engine.Config.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Engine.hom run

(** Ladder over {!Engine.satisfiable}. *)
val satisfiable :
  ?policy:Policy.t ->
  ?fallback:string * (config:Engine.Config.t -> unit Engine.outcome) ->
  ?config:Engine.Config.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  unit run
