module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs

type hom = Engine.hom

let naive_decisions = Obs.counter "csp.solver.naive.decisions"
let is_hom = Engine.is_hom

let config_of restrict =
  match restrict with
  | None -> Engine.Config.default
  | Some r -> Engine.Config.with_restrict r Engine.Config.default

(* The unlimited-budget shims never see [Unknown]: no limit is set, so
   nothing can trip. *)
let definitive = function
  | Engine.Sat x -> Some x
  | Engine.Unsat -> None
  | Engine.Unknown _ -> assert false

let find_hom ?restrict ~source ~target () =
  definitive (Engine.solve ~config:(config_of restrict) ~source ~target ())

let exists_hom ?restrict ~source ~target () =
  Option.is_some
    (definitive
       (Engine.satisfiable ~config:(config_of restrict) ~source ~target ()))

(* Naive lexicographic backtracking without propagation, kept as the
   ablation baseline and as an independent oracle for the engine's
   property tests. *)
let find_hom_naive ?restrict ~source ~target () =
  let cstrs = Engine.constraints_of source in
  let vars = Array.of_list (Structure.nodes source) in
  let candidates = Engine.initial_candidates ?restrict ~source ~target () in
  let consistent assignment =
    List.for_all
      (fun (c : Engine.cstr) ->
        (not (Array.for_all (fun u -> Int_map.mem u assignment) c.vars))
        || Structure.mem_tuple target c.rel
             (Array.map (fun u -> Int_map.find u assignment) c.vars))
      cstrs
  in
  let n = Array.length vars in
  let rec go i assignment =
    if i = n then Some assignment
    else
      Int_set.fold
        (fun b acc ->
          match acc with
          | Some _ -> acc
          | None ->
            Obs.incr naive_decisions;
            let assignment' = Int_map.add vars.(i) b assignment in
            if consistent assignment' then go (i + 1) assignment' else None)
        (Int_map.find vars.(i) candidates)
        None
  in
  go 0 Int_map.empty

let iter_homs ?restrict ~source ~target f =
  match Engine.iter ~config:(config_of restrict) ~source ~target f with
  | `Exhausted | `Stopped -> ()
  | `Interrupted _ -> assert false

let count_homs ?restrict ~source ~target () =
  definitive (Engine.count ~config:(config_of restrict) ~source ~target ())
  |> Option.get

let find_onto_hom ~source ~target () =
  let found = ref None in
  let target_nodes = Int_set.of_list (Structure.nodes target) in
  iter_homs ~source ~target (fun h ->
      let image =
        Int_map.fold (fun _ w s -> Int_set.add w s) h Int_set.empty
      in
      let facts_covered =
        Structure.fold_tuples
          (fun rel t ok ->
            ok
            && Structure.fold_tuples
                 (fun rel' t' found ->
                   found
                   || String.equal rel rel'
                      && Array.length t = Array.length t'
                      && Array.for_all2
                           (fun v w -> Int_map.find v h = w)
                           t' t)
                 source false)
          target true
      in
      if Int_set.subset target_nodes image && facts_covered then begin
        found := Some h;
        `Stop
      end
      else `Continue);
  !found
