module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs

type hom = int Int_map.t

(* Observability: every branching decision, forward-checking prune and MRV
   variable selection feeds the process-wide metric registry. *)
let decisions = Obs.counter "csp.solver.decisions"
let naive_decisions = Obs.counter "csp.solver.naive.decisions"
let fc_prunes = Obs.counter "csp.solver.fc_prunes"
let wipeouts = Obs.counter "csp.solver.wipeouts"
let mrv_selects = Obs.counter "csp.solver.mrv_selects"
let solutions = Obs.counter "csp.solver.solutions"
let searches = Obs.counter "csp.solver.searches"

(* Deprecated [last_stats] shim: the decision count of the most recent
   search, re-expressed as a delta of the obs counters. *)
let last = ref (fun () -> 0)
let last_stats () = max 0 (!last ())

let track_last counter =
  let mark = Obs.counter_value counter in
  last := fun () -> Obs.counter_value counter - mark

let is_hom ~source ~target h =
  List.for_all
    (fun v ->
      match Int_map.find_opt v h with
      | None -> false
      | Some w ->
        Structure.mem_node target w && Structure.same_label source v target w)
    (Structure.nodes source)
  && Structure.fold_tuples
       (fun rel t ok ->
         ok
         && Structure.mem_tuple target rel
              (Array.map (fun v -> Int_map.find v h) t))
       source true

(* Constraints of the CSP: one per source fact. *)
type cstr = { rel : string; vars : int array }

let constraints_of source =
  Structure.fold_tuples
    (fun rel t acc -> { rel; vars = t } :: acc)
    source []

let constraints_by_var cstrs =
  List.fold_left
    (fun m c ->
      Array.fold_left
        (fun m v ->
          Int_map.update v
            (function Some cs -> Some (c :: cs) | None -> Some [ c ])
            m)
        m c.vars)
    Int_map.empty cstrs

let initial_candidates ?restrict ~source ~target () =
  List.fold_left
    (fun m v ->
      let base =
        List.fold_left
          (fun s w ->
            if Structure.same_label source v target w then Int_set.add w s
            else s)
          Int_set.empty (Structure.nodes target)
      in
      let cands =
        match restrict with
        | None -> base
        | Some r -> Int_set.inter base (r v)
      in
      Int_map.add v cands m)
    Int_map.empty (Structure.nodes source)

(* [supports target assignment c w b] iff some target tuple of [c.rel] is
   consistent with [assignment] extended by [w ↦ b] on the variables of
   [c]. *)
let supports target assignment c w b =
  List.exists
    (fun tt ->
      Array.length tt = Array.length c.vars
      && (let ok = ref true in
          Array.iteri
            (fun i v ->
              if !ok then
                if v = w then (if tt.(i) <> b then ok := false)
                else
                  match Int_map.find_opt v assignment with
                  | Some img -> if tt.(i) <> img then ok := false
                  | None -> ())
            c.vars;
          !ok))
    (Structure.tuples_of target c.rel)

let search ?restrict ~source ~target ~mrv on_solution =
  let cstrs = constraints_of source in
  let by_var = constraints_by_var cstrs in
  let cstrs_of v =
    match Int_map.find_opt v by_var with Some cs -> cs | None -> []
  in
  let vars = Structure.nodes source in
  Obs.incr searches;
  track_last decisions;
  let exception Stop in
  (* candidates: remaining domain for unassigned vars. *)
  let rec go assignment candidates unassigned =
    match unassigned with
    | [] ->
      Obs.incr solutions;
      if on_solution assignment = `Stop then raise Stop
    | _ ->
      let v =
        if mrv then begin
          Obs.incr mrv_selects;
          List.fold_left
            (fun best v ->
              let card v = Int_set.cardinal (Int_map.find v candidates) in
              match best with
              | None -> Some v
              | Some b -> if card v < card b then Some v else best)
            None unassigned
          |> Option.get
        end
        else List.hd unassigned
      in
      let rest = List.filter (fun w -> w <> v) unassigned in
      Int_set.iter
        (fun b ->
          Obs.incr decisions;
          let assignment' = Int_map.add v b assignment in
          (* prune the domains of neighbors through constraints on v *)
          let ok = ref true in
          let candidates' =
            List.fold_left
              (fun cands c ->
                if not !ok then cands
                else if
                  (* fully assigned constraint: check directly *)
                  Array.for_all (fun u -> Int_map.mem u assignment') c.vars
                then
                  if
                    Structure.mem_tuple target c.rel
                      (Array.map (fun u -> Int_map.find u assignment') c.vars)
                  then cands
                  else begin
                    ok := false;
                    cands
                  end
                else
                  Array.fold_left
                    (fun cands u ->
                      if Int_map.mem u assignment' then cands
                      else
                        let dom = Int_map.find u cands in
                        let dom' =
                          Int_set.filter
                            (fun b' -> supports target assignment' c u b')
                            dom
                        in
                        Obs.add fc_prunes
                          (Int_set.cardinal dom - Int_set.cardinal dom');
                        if Int_set.is_empty dom' then begin
                          Obs.incr wipeouts;
                          ok := false
                        end;
                        Int_map.add u dom' cands)
                    cands c.vars)
              candidates (cstrs_of v)
          in
          if !ok then go assignment' candidates' rest)
        (Int_map.find v candidates)
  in
  let candidates = initial_candidates ?restrict ~source ~target () in
  if Int_map.for_all (fun _ d -> not (Int_set.is_empty d)) candidates then (
    try go Int_map.empty candidates vars with Stop -> ())

let find_hom ?restrict ~source ~target () =
  Obs.with_span "csp.solver.find_hom" (fun () ->
      let found = ref None in
      search ?restrict ~source ~target ~mrv:true (fun h ->
          found := Some h;
          `Stop);
      !found)

let exists_hom ?restrict ~source ~target () =
  Option.is_some (find_hom ?restrict ~source ~target ())

(* Naive lexicographic backtracking without propagation, for the ablation
   benchmark. *)
let find_hom_naive ?restrict ~source ~target () =
  let cstrs = constraints_of source in
  let vars = Array.of_list (Structure.nodes source) in
  let candidates = initial_candidates ?restrict ~source ~target () in
  track_last naive_decisions;
  let consistent assignment =
    List.for_all
      (fun c ->
        (not (Array.for_all (fun u -> Int_map.mem u assignment) c.vars))
        || Structure.mem_tuple target c.rel
             (Array.map (fun u -> Int_map.find u assignment) c.vars))
      cstrs
  in
  let n = Array.length vars in
  let rec go i assignment =
    if i = n then Some assignment
    else
      Int_set.fold
        (fun b acc ->
          match acc with
          | Some _ -> acc
          | None ->
            Obs.incr naive_decisions;
            let assignment' = Int_map.add vars.(i) b assignment in
            if consistent assignment' then go (i + 1) assignment' else None)
        (Int_map.find vars.(i) candidates)
        None
  in
  go 0 Int_map.empty

let iter_homs ?restrict ~source ~target f =
  search ?restrict ~source ~target ~mrv:true f

let count_homs ?restrict ~source ~target () =
  let n = ref 0 in
  iter_homs ?restrict ~source ~target (fun _ ->
      incr n;
      `Continue);
  !n

let find_onto_hom ~source ~target () =
  let found = ref None in
  let target_nodes = Int_set.of_list (Structure.nodes target) in
  iter_homs ~source ~target (fun h ->
      let image =
        Int_map.fold (fun _ w s -> Int_set.add w s) h Int_set.empty
      in
      let facts_covered =
        Structure.fold_tuples
          (fun rel t ok ->
            ok
            && Structure.fold_tuples
                 (fun rel' t' found ->
                   found
                   || String.equal rel rel'
                      && Array.length t = Array.length t'
                      && Array.for_all2
                           (fun v w -> Int_map.find v h = w)
                           t' t)
                 source false)
          target true
      in
      if Int_set.subset target_nodes image && facts_covered then begin
        found := Some h;
        `Stop
      end
      else `Continue);
  !found
