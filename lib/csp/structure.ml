module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)
module String_map = Map.Make (String)

type tuple = int array

module Tuple_set = Set.Make (struct
  type t = tuple

  let compare (a : tuple) (b : tuple) = Stdlib.compare a b
end)

(* {1 The columnar compiled view}

   Every hom search bottoms out in scans over the tuples of one relation,
   filtered by the value at one position.  The columnar view interns
   relation names and labels ({!Interner}), renumbers nodes densely, and
   stores each relation's tuples flat with a per-position inverted index,
   so the engine's support checks become array reads instead of
   [Tuple_set] traversals. *)

type crel = {
  rel : string;
  rel_id : int; (* Interner.rel_id rel *)
  arity : int;
  count : int;
  flat : int array; (* count * arity dense node ids, row-major *)
  by_pos : int array array array;
      (* by_pos.(p).(w) = ascending indices of tuples with dense node [w]
         at position [p] *)
}

type columnar = {
  node_ids : int array; (* dense -> raw node id, ascending *)
  dense_of : (int, int) Hashtbl.t; (* raw -> dense *)
  node_labels : int array; (* dense -> interned label id; -1 = unlabeled *)
  crels : crel array;
}

type t = {
  nodes : Int_set.t;
  label : string Int_map.t;
  rels : Tuple_set.t String_map.t;
  mutable cview : columnar option;
      (* memoized compiled view; the record is otherwise persistent, so
         the cache is write-once per value (a benign race: two domains
         may both compile, the results are equal and one pointer write
         wins) *)
}

let empty =
  { nodes = Int_set.empty; label = Int_map.empty; rels = String_map.empty;
    cview = None }

let add_node ?label s v =
  let labels =
    match label with None -> s.label | Some l -> Int_map.add v l s.label
  in
  { s with nodes = Int_set.add v s.nodes; label = labels; cview = None }

(* Nodes of the tuple not yet in the structure are registered on the fly
   (unlabeled) — the pre-declare-nodes boilerplate this used to force on
   every caller bought nothing, since an unregistered node can only ever
   be an unlabeled one. *)
let add_tuple s rel tup =
  let nodes =
    Array.fold_left (fun ns v -> Int_set.add v ns) s.nodes tup
  in
  let existing =
    match String_map.find_opt rel s.rels with
    | Some ts -> ts
    | None -> Tuple_set.empty
  in
  { s with nodes;
    rels = String_map.add rel (Tuple_set.add tup existing) s.rels;
    cview = None }

let add_edge s rel x y = add_tuple s rel [| x; y |]

let make ~nodes ~tuples =
  let s =
    List.fold_left (fun s (v, l) -> add_node ?label:l s v) empty nodes
  in
  List.fold_left
    (fun s (rel, ts) -> List.fold_left (fun s t -> add_tuple s rel t) s ts)
    s tuples

let nodes s = Int_set.elements s.nodes
let size s = Int_set.cardinal s.nodes
let label_of s v = Int_map.find_opt v s.label
let mem_node s v = Int_set.mem v s.nodes

let mem_tuple s rel tup =
  match String_map.find_opt rel s.rels with
  | Some ts -> Tuple_set.mem tup ts
  | None -> false

let tuples_of s rel =
  match String_map.find_opt rel s.rels with
  | Some ts -> Tuple_set.elements ts
  | None -> []

let rel_names s = List.map fst (String_map.bindings s.rels)

let all_tuples s =
  String_map.fold
    (fun rel ts acc ->
      Tuple_set.fold (fun t acc -> (rel, t) :: acc) ts acc)
    s.rels []

let tuple_count s =
  String_map.fold (fun _ ts n -> n + Tuple_set.cardinal ts) s.rels 0

let fold_tuples f s init =
  String_map.fold
    (fun rel ts acc -> Tuple_set.fold (fun t acc -> f rel t acc) ts acc)
    s.rels init

let compile s =
  let node_ids = Array.of_list (Int_set.elements s.nodes) in
  let n = Array.length node_ids in
  let dense_of = Hashtbl.create (max 16 n) in
  Array.iteri (fun d raw -> Hashtbl.replace dense_of raw d) node_ids;
  let node_labels =
    Array.map
      (fun raw ->
        match Int_map.find_opt raw s.label with
        | None -> -1
        | Some l -> Interner.label_id l)
      node_ids
  in
  let crels =
    String_map.fold
      (fun rel ts acc ->
        let rel_id = Interner.rel_id rel in
        (* group by arity, preserving Tuple_set order within each group *)
        let by_arity = Hashtbl.create 4 in
        let arities = ref [] in
        Tuple_set.iter
          (fun t ->
            let a = Array.length t in
            match Hashtbl.find_opt by_arity a with
            | Some l -> Hashtbl.replace by_arity a (t :: l)
            | None ->
              arities := a :: !arities;
              Hashtbl.replace by_arity a [ t ])
          ts;
        List.fold_left
          (fun acc arity ->
            let tuples = Array.of_list (List.rev (Hashtbl.find by_arity arity)) in
            let count = Array.length tuples in
            let flat = Array.make (max 1 (count * arity)) 0 in
            Array.iteri
              (fun i t ->
                Array.iteri
                  (fun p raw ->
                    flat.((i * arity) + p) <- Hashtbl.find dense_of raw)
                  t)
              tuples;
            let by_pos =
              Array.init arity (fun p ->
                  let buckets = Array.make (max 1 n) [] in
                  (* reverse iteration leaves each bucket ascending *)
                  for i = count - 1 downto 0 do
                    let w = flat.((i * arity) + p) in
                    buckets.(w) <- i :: buckets.(w)
                  done;
                  Array.map Array.of_list buckets)
            in
            { rel; rel_id; arity; count; flat; by_pos } :: acc)
          acc (List.sort compare !arities))
      s.rels []
  in
  { node_ids; dense_of; node_labels; crels = Array.of_list (List.rev crels) }

let columnar s =
  match s.cview with
  | Some c -> c
  | None ->
    let c = compile s in
    s.cview <- Some c;
    c

let same_label s1 v1 s2 v2 =
  match label_of s1 v1, label_of s2 v2 with
  | None, None -> true
  | Some l1, Some l2 -> String.equal l1 l2
  | _ -> false

(* Pairs (v1, v2) with matching labels are encoded as v1 * k + v2 where k
   exceeds every node id of s2. *)
let product s1 s2 =
  let k = (match Int_set.max_elt_opt s2.nodes with Some m -> m | None -> 0) + 1 in
  let encode v1 v2 = (v1 * k) + v2 in
  let decode v = (v / k, v mod k) in
  let base =
    Int_set.fold
      (fun v1 acc ->
        Int_set.fold
          (fun v2 acc ->
            if same_label s1 v1 s2 v2 then
              add_node ?label:(label_of s1 v1) acc (encode v1 v2)
            else acc)
          s2.nodes acc)
      s1.nodes empty
  in
  let result =
    String_map.fold
      (fun rel ts1 acc ->
        match String_map.find_opt rel s2.rels with
        | None -> acc
        | Some ts2 ->
          Tuple_set.fold
            (fun t1 acc ->
              Tuple_set.fold
                (fun t2 acc ->
                  if Array.length t1 <> Array.length t2 then acc
                  else
                    let tup = Array.map2 encode t1 t2 in
                    if Array.for_all (fun v -> Int_set.mem v base.nodes) tup
                    then add_tuple acc rel tup
                    else acc)
                ts2 acc)
            ts1 acc)
      s1.rels base
  in
  (result, decode)

let disjoint_union s1 s2 =
  let k = (match Int_set.max_elt_opt s1.nodes with Some m -> m | None -> -1) + 1 in
  let inj1 v = v in
  let inj2 v = v + k in
  let base =
    Int_set.fold
      (fun v acc -> add_node ?label:(label_of s2 v) acc (inj2 v))
      s2.nodes
      (Int_set.fold
         (fun v acc -> add_node ?label:(label_of s1 v) acc v)
         s1.nodes empty)
  in
  let with1 =
    fold_tuples (fun rel t acc -> add_tuple acc rel t) s1 base
  in
  let with2 =
    fold_tuples
      (fun rel t acc -> add_tuple acc rel (Array.map inj2 t))
      s2 with1
  in
  (with2, inj1, inj2)

let restrict s keep =
  let nodes = Int_set.inter s.nodes keep in
  let label = Int_map.filter (fun v _ -> Int_set.mem v nodes) s.label in
  let rels =
    String_map.filter_map
      (fun _ ts ->
        let ts' =
          Tuple_set.filter
            (fun t -> Array.for_all (fun v -> Int_set.mem v nodes) t)
            ts
        in
        if Tuple_set.is_empty ts' then None else Some ts')
      s.rels
  in
  { nodes; label; rels; cview = None }

let map_nodes s f =
  let base =
    Int_set.fold
      (fun v acc -> add_node ?label:(label_of s v) acc (f v))
      s.nodes empty
  in
  fold_tuples (fun rel t acc -> add_tuple acc rel (Array.map f t)) s base

let gaifman s =
  let init =
    Int_set.fold (fun v m -> Int_map.add v Int_set.empty m) s.nodes
      Int_map.empty
  in
  fold_tuples
    (fun _ t adj ->
      Array.fold_left
        (fun adj v ->
          Array.fold_left
            (fun adj w ->
              if v = w then adj
              else
                Int_map.update v
                  (function
                    | Some ns -> Some (Int_set.add w ns)
                    | None -> Some (Int_set.singleton w))
                  adj)
            adj t)
        adj t)
    s init

(* {1 Connected components}

   Union-find over the nodes, merging along every tuple.  The returned
   classes drive [Engine.Components]: disjoint classes share no
   constraint, so hom instances decompose over them. *)

let component_classes s =
  let c = columnar s in
  let n = Array.length c.node_ids in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else begin
    let r = find parent.(i) in
    parent.(i) <- r;
    r
  end in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  Array.iter
    (fun cr ->
      if cr.arity > 0 then
        for i = 0 to cr.count - 1 do
          let first = cr.flat.(i * cr.arity) in
          for p = 1 to cr.arity - 1 do
            union first cr.flat.((i * cr.arity) + p)
          done
        done)
    c.crels;
  (* group by root, classes ordered by their minimal (dense = raw-order)
     member *)
  let classes = Hashtbl.create 16 in
  let order = ref [] in
  for i = n - 1 downto 0 do
    let r = find i in
    (match Hashtbl.find_opt classes r with
    | Some l -> Hashtbl.replace classes r (c.node_ids.(i) :: l)
    | None ->
      Hashtbl.replace classes r [ c.node_ids.(i) ]);
    if i = r then order := r :: !order
  done;
  List.map (fun r -> Int_set.of_list (Hashtbl.find classes r)) !order

let component_count s = List.length (component_classes s)

let components s =
  match component_classes s with
  | [] | [ _ ] -> [ s ]
  | classes -> List.map (fun keep -> restrict s keep) classes

let is_substructure s1 s2 =
  Int_set.for_all
    (fun v -> Int_set.mem v s2.nodes && same_label s1 v s2 v)
    s1.nodes
  && String_map.for_all
       (fun rel ts ->
         Tuple_set.for_all (fun t -> mem_tuple s2 rel t) ts)
       s1.rels

let compare s1 s2 =
  let c = Int_set.compare s1.nodes s2.nodes in
  if c <> 0 then c
  else
    let c = Int_map.compare String.compare s1.label s2.label in
    if c <> 0 then c
    else String_map.compare Tuple_set.compare s1.rels s2.rels

let equal s1 s2 = compare s1 s2 = 0

let pp ppf s =
  let pp_node ppf v =
    match label_of s v with
    | Some l -> Format.fprintf ppf "%d:%s" v l
    | None -> Format.fprintf ppf "%d" v
  in
  let pp_tuple ppf (rel, t) =
    Format.fprintf ppf "%s(%a)" rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      (Array.to_list t)
  in
  Format.fprintf ppf "@[<v>nodes: %a@,facts: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       pp_node)
    (nodes s)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       pp_tuple)
    (all_tuples s)
