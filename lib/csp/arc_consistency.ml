module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace

let revisions = Obs.counter "csp.ac3.revisions"
let prunes = Obs.counter "csp.ac3.prunes"
let wipeouts = Obs.counter "csp.ac3.wipeouts"

(* A candidate b for node v is supported by constraint (rel, tup) at
   position i (tup.(i) = v) if some target tuple tt of rel has tt.(i) = b
   and tt.(j) in candidates(tup.(j)) for every j. *)
let supported target candidates rel tup i b =
  List.exists
    (fun tt ->
      Array.length tt = Array.length tup
      && tt.(i) = b
      && begin
           let ok = ref true in
           Array.iteri
             (fun j u ->
               if not (Int_set.mem tt.(j) (Int_map.find u candidates)) then
                 ok := false)
             tup;
           !ok
         end)
    (Structure.tuples_of target rel)

let prune ?restrict ~source ~target () =
  Trace.with_span "csp.ac3.prune" @@ fun () ->
  let initial =
    List.fold_left
      (fun m v ->
        let base =
          List.fold_left
            (fun s w ->
              if Structure.same_label source v target w then Int_set.add w s
              else s)
            Int_set.empty (Structure.nodes target)
        in
        let cands =
          match restrict with
          | None -> base
          | Some r -> Int_set.inter base (r v)
        in
        Int_map.add v cands m)
      Int_map.empty (Structure.nodes source)
  in
  let constraints = Structure.all_tuples source in
  let candidates = ref initial in
  let changed = ref true in
  (* a domain empty at initialization (label mismatch, or an empty
     restriction) is already a wipeout — certify it rather than letting
     revision terminate quietly around it *)
  let failed = ref (Int_map.exists (fun _ s -> Int_set.is_empty s) initial) in
  if !failed then Obs.incr wipeouts;
  while !changed && not !failed do
    changed := false;
    List.iter
      (fun (rel, tup) ->
        Array.iteri
          (fun i v ->
            Obs.incr revisions;
            let dom = Int_map.find v !candidates in
            let dom' =
              Int_set.filter (fun b -> supported target !candidates rel tup i b) dom
            in
            if not (Int_set.equal dom dom') then begin
              changed := true;
              Obs.add prunes (Int_set.cardinal dom - Int_set.cardinal dom');
              candidates := Int_map.add v dom' !candidates;
              if Int_set.is_empty dom' then begin
                Obs.incr wipeouts;
                failed := true
              end
            end)
          tup)
      constraints
  done;
  if !failed then None else Some !candidates

let find_hom ?restrict ~source ~target () =
  match prune ?restrict ~source ~target () with
  | None -> None
  | Some candidates ->
    Solver.find_hom
      ~restrict:(fun v -> Int_map.find v candidates)
      ~source ~target ()

let find_hom_b ?restrict ?(limits = Engine.Limits.unlimited) ~source ~target
    () =
  match prune ?restrict ~source ~target () with
  | None -> Engine.Unsat
  | Some candidates ->
    let config =
      Engine.Config.make ~limits
        ~restrict:(fun v -> Int_map.find v candidates)
        ()
    in
    Engine.solve ~config ~source ~target ()
