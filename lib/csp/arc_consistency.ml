module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Bitset = Domains.Bitset
module Dense = Domains.Dense
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace

let revisions = Obs.counter "csp.ac3.revisions"
let prunes = Obs.counter "csp.ac3.prunes"
let wipeouts = Obs.counter "csp.ac3.wipeouts"

(* AC-3 over the compiled instance ({!Engine.Compiled}): candidate
   domains are bitset rows, and one revision pass over a constraint is a
   single scan of the target relation's tuples — a tuple is alive iff the
   value at every position lies in that position's variable domain
   (word-indexed bit tests), and the alive tuples' values accumulate into
   per-position support bitsets that are then [land]ed into the rows.
   Fixpoint iteration stops when a full pass over the constraints changes
   nothing.

   The arc-consistent fixpoint is unique (the greatest one), so despite
   the different revision order this computes exactly what the old
   per-value set-based revision did — the property tests pin that
   equality against a reimplementation of the set-based oracle. *)
let prune ?restrict ~source ~target () =
  Trace.with_span "csp.ac3.prune" @@ fun () ->
  let cp = Engine.compile ?restrict ~source ~target () in
  let nvars = cp.Engine.Compiled.nvars in
  let m = Dense.create ~vars:(max 1 nvars) ~cap:cp.Engine.Compiled.cap in
  Array.iteri (fun v row -> Dense.set_row m v row) cp.Engine.Compiled.init;
  (* a domain empty at initialization (label mismatch, or an empty
     restriction) is already a wipeout — certify it rather than letting
     revision terminate quietly around it *)
  let failed = ref false in
  for v = 0 to nvars - 1 do
    if Dense.count m v = 0 then failed := true
  done;
  if !failed then Obs.incr wipeouts;
  let scratch =
    Array.init
      (max 1 cp.Engine.Compiled.max_arity)
      (fun _ -> Array.make cp.Engine.Compiled.words 0)
  in
  let changed = ref true in
  while !changed && not !failed do
    changed := false;
    Array.iter
      (fun (c : Engine.Compiled.ccstr) ->
        if not !failed then begin
          let arity = Array.length c.Engine.Compiled.cvars in
          for p = 0 to arity - 1 do
            Obs.incr revisions;
            Bitset.clear scratch.(p)
          done;
          (match c.Engine.Compiled.tgt with
          | None -> ()
          | Some tr ->
            for idx = 0 to tr.Structure.count - 1 do
              let alive = ref true in
              let p = ref 0 in
              while !alive && !p < arity do
                if
                  not
                    (Dense.mem m
                       c.Engine.Compiled.cvars.(!p)
                       tr.Structure.flat.((idx * arity) + !p))
                then alive := false;
                incr p
              done;
              if !alive then
                for p = 0 to arity - 1 do
                  Bitset.set scratch.(p) tr.Structure.flat.((idx * arity) + p)
                done
            done);
          for p = 0 to arity - 1 do
            if not !failed then begin
              let v = c.Engine.Compiled.cvars.(p) in
              let cleared = Dense.inter_row m v scratch.(p) in
              if cleared > 0 then begin
                changed := true;
                Obs.add prunes cleared;
                if Dense.count m v = 0 then begin
                  Obs.incr wipeouts;
                  failed := true
                end
              end
            end
          done
        end)
      cp.Engine.Compiled.cstrs
  done;
  (* 0-ary source facts have no variable to wipe out; absent ones are an
     immediate inconsistency *)
  if not cp.Engine.Compiled.zero_ok then failed := true;
  if !failed then None
  else begin
    let raw_src = cp.Engine.Compiled.csrc.Structure.node_ids in
    let raw_tgt = cp.Engine.Compiled.ctgt.Structure.node_ids in
    let out = ref Int_map.empty in
    for v = 0 to nvars - 1 do
      let s = ref Int_set.empty in
      Dense.iter_row (fun w -> s := Int_set.add raw_tgt.(w) !s) m v;
      out := Int_map.add raw_src.(v) !s !out
    done;
    Some !out
  end

let find_hom ?restrict ~source ~target () =
  match prune ?restrict ~source ~target () with
  | None -> None
  | Some candidates ->
    Solver.find_hom ~restrict:(Domains.of_map candidates) ~source ~target ()

let find_hom_b ?restrict ?(limits = Engine.Limits.unlimited) ~source ~target
    () =
  match prune ?restrict ~source ~target () with
  | None -> Engine.Unsat
  | Some candidates ->
    let config =
      Engine.Config.make ~limits ~restrict:(Domains.of_map candidates) ()
    in
    Engine.solve ~config ~source ~target ()
