(** Candidate domains for hom searches — the successor of the retired
    [Structure.candidates = int -> Int_set.t] closures.

    A {!t} is the relation [R ⊆ A × B] of Theorem 6's R-compatible
    homomorphisms, represented as a partial map from source nodes to
    admissible target-node sets.  Two conventions make composition cheap:
    a node {e absent} from the map is unconstrained, and
    {!unconstrained} itself is a distinguished whole-map value so that
    passing "no restriction" costs nothing.  Unlike the old closures a
    {!t} can be inspected, intersected structurally ({!inter}), and
    compiled to the engine's dense bitsets.

    The {!Bitset} and {!Dense} submodules are the word-parallel machinery
    the engine and AC-3 compile domains into: support checks and
    intersections become [land]/[lor] over int arrays. *)

module Int_set = Structure.Int_set
module Int_map = Structure.Int_map

type t

(** No restriction anywhere ([R = A × B]). *)
val unconstrained : t

val of_map : Int_set.t Int_map.t -> t
val of_list : (int * Int_set.t) list -> t

(** [singleton v w] pins node [v] to exactly [w]. *)
val singleton : int -> int -> t

(** [find d v] — [None] means unconstrained (every target node is
    admissible), [Some s] restricts [v] to [s]. *)
val find : t -> int -> Int_set.t option

(** [mem d v w] — is [w] admissible for [v]?  [true] when [v] is
    unconstrained. *)
val mem : t -> int -> int -> bool

(** Pointwise intersection of the two relations. *)
val inter : t -> t -> t

val is_unconstrained : t -> bool

(** The underlying partial map, [None] when {!unconstrained}. *)
val to_map : t -> Int_set.t Int_map.t option

val pp : Format.formatter -> t -> unit

(** Word-parallel bitsets over dense ids [0..cap-1]. *)
module Bitset : sig
  type bs = int array

  val bits_per_word : int
  val words_for : int -> int

  (** All-zero bitset with capacity [cap]. *)
  val create : int -> bs

  (** All bits of [0..cap-1] set. *)
  val full : int -> bs

  val set : bs -> int -> unit
  val mem : bs -> int -> bool
  val popcount_word : int -> int
  val count : bs -> int
  val is_empty : bs -> bool

  (** [inter_into ~dst src] — [dst := dst land src]; returns the number
      of bits cleared. *)
  val inter_into : dst:bs -> bs -> int

  val clear : bs -> unit
  val blit : src:bs -> dst:bs -> unit
  val copy : bs -> bs

  (** Ascending iteration over set bits. *)
  val iter : (int -> unit) -> bs -> unit

  val min_elt_opt : bs -> int option
  val to_list : bs -> int list
end

(** The mutable domain matrix of the backtracking search: one bitset row
    per variable plus a cardinality cache, so MRV reads an int and
    forward checking is row-wise [land]. *)
module Dense : sig
  type matrix = private {
    vars : int;
    cap : int;
    words : int;
    bits : int array; (* vars * words, row-major *)
    counts : int array;
  }

  val create : vars:int -> cap:int -> matrix
  val set : matrix -> int -> int -> unit
  val mem : matrix -> int -> int -> bool
  val count : matrix -> int -> int

  (** [inter_row m v mask] — row [v] &= [mask]; returns bits cleared and
      refreshes the cached count. *)
  val inter_row : matrix -> int -> Bitset.bs -> int

  (** Trail support: a saved row is an opaque word array restored
      verbatim. *)
  val save_row : matrix -> int -> int array

  val restore_row : matrix -> int -> int array -> int -> unit
  val blit_row_to : matrix -> int -> Bitset.bs -> unit

  (** [set_row m v src] overwrites row [v] and recomputes its count. *)
  val set_row : matrix -> int -> Bitset.bs -> unit

  val iter_row : (int -> unit) -> matrix -> int -> unit
  val row_to_list : matrix -> int -> int list
  val row_is_empty : matrix -> int -> bool
end
