module Int_set = Structure.Int_set
module Int_map = Structure.Int_map

(* The public restrict representation: a partial map from source nodes to
   admissible target-node sets.  Absent node = unconstrained; [None] as a
   whole = the everywhere-unconstrained restriction, so composing with it
   is free.  This replaces the old [Structure.candidates = int -> Int_set.t]
   closures, which could be neither inspected, intersected structurally,
   nor compiled to bitsets without knowing the variable set. *)
type t = Int_set.t Int_map.t option

let unconstrained : t = None
let of_map m : t = Some m
let of_list l : t = Some (List.fold_left (fun m (v, s) -> Int_map.add v s m) Int_map.empty l)

let singleton v w : t = Some (Int_map.singleton v (Int_set.singleton w))

let is_unconstrained (d : t) = d = None
let to_map (d : t) = d

let find (d : t) v =
  match d with None -> None | Some m -> Int_map.find_opt v m

let mem (d : t) v w =
  match find d v with None -> true | Some s -> Int_set.mem w s

(* Pointwise intersection; a node absent on one side keeps the other
   side's constraint (absent = everything). *)
let inter (d1 : t) (d2 : t) : t =
  match (d1, d2) with
  | None, d | d, None -> d
  | Some m1, Some m2 ->
    Some
      (Int_map.union (fun _ s1 s2 -> Some (Int_set.inter s1 s2)) m1 m2)

let pp ppf (d : t) =
  match d with
  | None -> Format.fprintf ppf "unconstrained"
  | Some m ->
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (v, s) ->
           Format.fprintf ppf "%d -> {%a}" v
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
                Format.pp_print_int)
             (Int_set.elements s)))
      (Int_map.bindings m)

(* {1 Word-parallel bitsets}

   The engine and AC-3 run over dense node ids in [0, cap); a domain is a
   bitset of [cap] bits packed into an int array, so support checks and
   intersections are [land]/[lor] over words. *)

module Bitset = struct
  type bs = int array

  let bits_per_word = Sys.int_size
  let words_for cap = (cap + bits_per_word - 1) / bits_per_word
  let create cap : bs = Array.make (max 1 (words_for cap)) 0

  let full cap : bs =
    let w = max 1 (words_for cap) in
    let a = Array.make w 0 in
    for i = 0 to cap - 1 do
      a.(i / bits_per_word) <- a.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))
    done;
    a

  let set (a : bs) i =
    a.(i / bits_per_word) <- a.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

  let mem (a : bs) i = a.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

  let popcount_word w =
    let rec go n w = if w = 0 then n else go (n + 1) (w land (w - 1)) in
    go 0 w

  let count (a : bs) =
    let n = ref 0 in
    Array.iter (fun w -> n := !n + popcount_word w) a;
    !n

  let is_empty (a : bs) = Array.for_all (fun w -> w = 0) a

  (* dst := dst land src; returns the number of bits cleared. *)
  let inter_into ~(dst : bs) (src : bs) =
    let cleared = ref 0 in
    for k = 0 to Array.length dst - 1 do
      let before = dst.(k) in
      let after = before land src.(k) in
      if after <> before then begin
        cleared := !cleared + popcount_word (before lxor after);
        dst.(k) <- after
      end
    done;
    !cleared

  let clear (a : bs) = Array.fill a 0 (Array.length a) 0
  let blit ~(src : bs) ~(dst : bs) = Array.blit src 0 dst 0 (Array.length src)
  let copy (a : bs) = Array.copy a

  let iter f (a : bs) =
    for k = 0 to Array.length a - 1 do
      let w = ref a.(k) in
      while !w <> 0 do
        let b = !w land - !w in
        let rec log2 i x = if x = 1 then i else log2 (i + 1) (x lsr 1) in
        f ((k * bits_per_word) + log2 0 b);
        w := !w land (!w - 1)
      done
    done

  let min_elt_opt (a : bs) =
    let exception Found of int in
    try
      iter (fun i -> raise (Found i)) a;
      None
    with Found i -> Some i

  let to_list (a : bs) =
    let l = ref [] in
    iter (fun i -> l := i :: !l) a;
    List.rev !l
end

(* {1 The mutable domain matrix of the search}

   One bitset row per variable, stored flat, with a cardinality cache per
   row — MRV reads [counts] and never touches the bits. *)

module Dense = struct
  type matrix = {
    vars : int;
    cap : int;
    words : int;
    bits : int array; (* vars * words, row-major *)
    counts : int array;
  }

  let create ~vars ~cap =
    let words = max 1 (Bitset.words_for cap) in
    {
      vars;
      cap;
      words;
      bits = Array.make (max 1 (vars * words)) 0;
      counts = Array.make (max 1 vars) 0;
    }

  let row_off m v = v * m.words

  let set m v i =
    let off = row_off m v in
    let k = off + (i / Bitset.bits_per_word) in
    let b = 1 lsl (i mod Bitset.bits_per_word) in
    if m.bits.(k) land b = 0 then begin
      m.bits.(k) <- m.bits.(k) lor b;
      m.counts.(v) <- m.counts.(v) + 1
    end

  let mem m v i =
    m.bits.(row_off m v + (i / Bitset.bits_per_word))
    land (1 lsl (i mod Bitset.bits_per_word))
    <> 0

  let count m v = m.counts.(v)

  (* row v := row v land mask; returns bits cleared and refreshes the
     cached count. *)
  let inter_row m v (mask : Bitset.bs) =
    let off = row_off m v in
    let cleared = ref 0 in
    for k = 0 to m.words - 1 do
      let before = m.bits.(off + k) in
      let after = before land mask.(k) in
      if after <> before then begin
        cleared := !cleared + Bitset.popcount_word (before lxor after);
        m.bits.(off + k) <- after
      end
    done;
    m.counts.(v) <- m.counts.(v) - !cleared;
    !cleared

  let save_row m v =
    Array.sub m.bits (row_off m v) m.words

  let restore_row m v (saved : int array) count =
    Array.blit saved 0 m.bits (row_off m v) m.words;
    m.counts.(v) <- count

  let blit_row_to m v (dst : Bitset.bs) =
    Array.blit m.bits (row_off m v) dst 0 m.words

  let set_row m v (src : Bitset.bs) =
    Array.blit src 0 m.bits (row_off m v) m.words;
    m.counts.(v) <- Bitset.count src

  let iter_row f m v =
    let off = row_off m v in
    for k = 0 to m.words - 1 do
      let w = ref m.bits.(off + k) in
      while !w <> 0 do
        let b = !w land - !w in
        let rec log2 i x = if x = 1 then i else log2 (i + 1) (x lsr 1) in
        f ((k * Bitset.bits_per_word) + log2 0 b);
        w := !w land (!w - 1)
      done
    done

  let row_to_list m v =
    let l = ref [] in
    iter_row (fun i -> l := i :: !l) m v;
    List.rev !l

  let row_is_empty m v = m.counts.(v) = 0
end
