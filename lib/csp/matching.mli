(** Maximum bipartite matching (Hopcroft–Karp) and Hall's condition, used by
    Prop. 8: over Codd databases, [D ⊑cwa D′] iff [D ⪯ D′] and [⪯⁻¹]
    satisfies Hall's condition — i.e. the bipartite relation from tuples of
    [D′] to the tuples of [D] below them admits a matching saturating
    [D′]. *)

type graph = {
  left : int; (* left vertices are 0..left-1 *)
  right : int; (* right vertices are 0..right-1 *)
  adj : int list array; (* adjacency from left vertices *)
}

val make : left:int -> right:int -> edges:(int * int) list -> graph

(** [max_matching g] returns the size of a maximum matching together with
    the partial map left→right. *)
val max_matching : graph -> int * int option array

(** [saturates_left g] iff a maximum matching covers every left vertex —
    equivalently (König/Hall) the relation satisfies Hall's condition
    [|N(U)| ≥ |U|] for all [U ⊆ left]. *)
val saturates_left : graph -> bool

(** [hall_violation g] returns a witness set [U] with [|N(U)| < |U|] when
    Hall's condition fails ([None] otherwise).  Computed from the
    alternating-reachability certificate of an unmatched vertex. *)
val hall_violation : graph -> int list option
