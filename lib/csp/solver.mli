(** Homomorphism search between finite labeled structures — the constraint
    satisfaction problem of Section 6 ([Membership] reduces to it, Prop. 9
    characterizes the information ordering by it).

    A homomorphism [h : A → B] maps nodes to nodes, preserves labels, and
    maps every tuple of [A] to a tuple of [B].  The optional [restrict]
    argument constrains the graph of [h] to a relation [R ⊆ A × B]
    (the R-compatible homomorphisms of Theorem 6's proof).

    These entry points are thin unlimited-budget shims over {!Engine};
    callers that want node/backtrack budgets, deadlines, cancellation, or
    a three-valued result use {!Engine.solve} and friends directly.
    [find_hom_naive] is a lexicographic backtracker kept for the ablation
    benchmark and as an independent test oracle. *)

type hom = Engine.hom

(** [is_hom ~source ~target h] checks that [h] is a total label-preserving
    homomorphism. *)
val is_hom : source:Structure.t -> target:Structure.t -> hom -> bool

(** [find_hom ?restrict ~source ~target ()] returns a homomorphism if one
    exists.  [restrict v] limits the candidates for source node [v]. *)
val find_hom :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  hom option

(** [exists_hom] decides existence through {!Engine.satisfiable}: it
    short-circuits over unconstrained nodes and never materializes the
    witness map. *)
val exists_hom :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  bool

(** [find_hom_naive] — no variable-ordering heuristic, no propagation. *)
val find_hom_naive :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  hom option

(** [iter_homs ~source ~target f] calls [f] on every homomorphism; [f]
    returning [`Stop] aborts the enumeration. *)
val iter_homs :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  (hom -> [ `Continue | `Stop ]) ->
  unit

val count_homs :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  int

(** [find_onto_hom ~source ~target ()] searches for a homomorphism whose
    node image covers all of [target]'s nodes and whose fact image covers
    all of [target]'s facts (the onto homomorphisms of the CWA ordering). *)
val find_onto_hom :
  source:Structure.t -> target:Structure.t -> unit -> hom option
