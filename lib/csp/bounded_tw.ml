module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace

let bag_assignments = Obs.counter "csp.btw.bag_assignments"
let solves = Obs.counter "csp.btw.solves"
let bags_gauge = Obs.gauge "csp.btw.bags"

let base_candidates ~source ~target ~restrict v =
  let labelled =
    List.fold_left
      (fun s w ->
        if Structure.same_label source v target w then Int_set.add w s else s)
      Int_set.empty (Structure.nodes target)
  in
  match Domains.find restrict v with
  | None -> labelled
  | Some s -> Int_set.inter labelled s

(* Assign each fact of [source] to the first bag containing all its
   variables; a valid decomposition always has one. *)
let facts_per_bag decomposition source =
  let nbags = Array.length decomposition.Treewidth.bags in
  let per_bag = Array.make (max nbags 1) [] in
  Structure.fold_tuples
    (fun rel t () ->
      let rec find i =
        if i >= nbags then
          invalid_arg "Bounded_tw: decomposition does not cover a fact"
        else if
          Array.for_all
            (fun v -> Int_set.mem v decomposition.Treewidth.bags.(i))
            t
        then i
        else find (i + 1)
      in
      if Array.length t > 0 then begin
        let i = find 0 in
        per_bag.(i) <- (rel, t) :: per_bag.(i)
      end)
    source ();
  per_bag

(* Post-order traversal of the decomposition forest. *)
let post_order decomposition =
  let children = Treewidth.children decomposition in
  let order = ref [] in
  let rec visit i =
    List.iter visit children.(i);
    order := i :: !order
  in
  List.iter visit (Treewidth.roots decomposition);
  List.rev !order

type tables = {
  decomposition : Treewidth.t;
  (* per bag: sorted variables of the bag *)
  bag_vars : int array array;
  (* per bag: key (projection onto parent intersection) → representative
     full assignment of the bag (parallel to bag_vars) *)
  table : (int array, int array) Hashtbl.t array;
  (* per bag: positions in bag_vars that project onto the parent key *)
  proj_positions : int array array;
}

let solve ?decomposition ?(restrict = Domains.unconstrained) ~source ~target
    () =
  Trace.with_span "csp.btw.solve" @@ fun () ->
  let decomposition =
    match decomposition with
    | Some d -> d
    | None -> Treewidth.of_structure source
  in
  let nbags = Array.length decomposition.Treewidth.bags in
  if nbags = 0 then
    Some
      {
        decomposition;
        bag_vars = [||];
        table = [||];
        proj_positions = [||];
      }
  else begin
    Obs.incr solves;
    Obs.set_int bags_gauge nbags;
    let bag_vars =
      Array.map (fun b -> Array.of_list (Int_set.elements b))
        decomposition.Treewidth.bags
    in
    let facts = facts_per_bag decomposition source in
    let children = Treewidth.children decomposition in
    let cands = Hashtbl.create 16 in
    let candidates_of v =
      match Hashtbl.find_opt cands v with
      | Some c -> c
      | None ->
        let c = base_candidates ~source ~target ~restrict v in
        Hashtbl.add cands v c;
        c
    in
    (* positions of bag i's variables that lie in the parent's bag *)
    let proj_positions =
      Array.mapi
        (fun i vars ->
          let p = decomposition.Treewidth.parent.(i) in
          if p < 0 then [||]
          else
            let pbag = decomposition.Treewidth.bags.(p) in
            let ps = ref [] in
            Array.iteri
              (fun j v -> if Int_set.mem v pbag then ps := j :: !ps)
              vars;
            Array.of_list (List.rev !ps))
        bag_vars
    in
    let table = Array.init nbags (fun _ -> Hashtbl.create 64) in
    (* child's positions that lie in bag i, and the corresponding values of
       a bag-i assignment: to query child tables we need, for child j, the
       projection of j's variables onto bag i = exactly j's
       proj_positions. We must compute the key from the parent assignment:
       for each position jp in proj_positions.(j), the variable
       bag_vars.(j).(jp) also occurs in bag i at some position. *)
    let parent_positions_for_child i j =
      Array.map
        (fun jp ->
          let v = bag_vars.(j).(jp) in
          let rec find k =
            if bag_vars.(i).(k) = v then k else find (k + 1)
          in
          find 0)
        proj_positions.(j)
    in
    let ok = ref true in
    List.iter
      (fun i ->
        if !ok then begin
          let vars = bag_vars.(i) in
          let n = Array.length vars in
          let assignment = Array.make n 0 in
          let child_pos =
            List.map
              (fun j -> (j, parent_positions_for_child i j))
              children.(i)
          in
          let local_facts = facts.(i) in
          let var_pos = Hashtbl.create 8 in
          Array.iteri (fun k v -> Hashtbl.replace var_pos v k) vars;
          let fact_ok () =
            List.for_all
              (fun (rel, t) ->
                Structure.mem_tuple target rel
                  (Array.map
                     (fun v -> assignment.(Hashtbl.find var_pos v))
                     t))
              local_facts
          in
          let children_ok () =
            List.for_all
              (fun (j, pos) ->
                let key = Array.map (fun k -> assignment.(k)) pos in
                Hashtbl.mem table.(j) key)
              child_pos
          in
          let record () =
            let key =
              Array.map (fun k -> assignment.(k)) proj_positions.(i)
            in
            if not (Hashtbl.mem table.(i) key) then
              Hashtbl.add table.(i) key (Array.copy assignment)
          in
          let rec enumerate k =
            if k = n then begin
              Obs.incr bag_assignments;
              if fact_ok () && children_ok () then record ()
            end
            else
              Int_set.iter
                (fun b ->
                  assignment.(k) <- b;
                  enumerate (k + 1))
                (candidates_of vars.(k))
          in
          enumerate 0;
          if Hashtbl.length table.(i) = 0 then ok := false
        end)
      (post_order decomposition);
    if !ok then Some { decomposition; bag_vars; table; proj_positions }
    else None
  end

let r_hom ?decomposition ?restrict ~source ~target () =
  Option.is_some (solve ?decomposition ?restrict ~source ~target ())

let r_hom_witness ?decomposition ?restrict ~source ~target () =
  match solve ?decomposition ?restrict ~source ~target () with
  | None -> None
  | Some t ->
    let hom = ref Int_map.empty in
    let children = Treewidth.children t.decomposition in
    let rec fill i (key : int array) =
      let assignment = Hashtbl.find t.table.(i) key in
      Array.iteri
        (fun k b -> hom := Int_map.add t.bag_vars.(i).(k) b !hom)
        assignment;
      List.iter
        (fun j ->
          let key_j =
            Array.map
              (fun jp ->
                Int_map.find t.bag_vars.(j).(jp) !hom)
              t.proj_positions.(j)
          in
          fill j key_j)
        children.(i)
    in
    List.iter (fun r -> fill r [||]) (Treewidth.roots t.decomposition);
    Some !hom

let hom ?decomposition ~source ~target () =
  r_hom ?decomposition ~source ~target ()
