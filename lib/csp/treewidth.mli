(** Tree decompositions of the Gaifman graph of a structure, built from
    elimination orders (min-degree / min-fill heuristics).  Theorem 6
    evaluates Codd membership in polynomial time when the structural part
    has bounded treewidth; the decompositions produced here drive the
    dynamic program of {!Bounded_tw}. *)

type t = {
  bags : Structure.Int_set.t array;
  parent : int array; (* parent.(i) = -1 for roots; forest allowed *)
}

val width : t -> int

(** [is_valid s d] checks the three tree-decomposition conditions against
    the Gaifman graph of [s]: every node in some bag, every Gaifman edge
    inside some bag, and for each node the bags containing it form a
    connected subtree. *)
val is_valid : Structure.t -> t -> bool

(** [of_structure ?heuristic s] builds a decomposition of [s]'s Gaifman
    graph.  [`Min_degree] (default) or [`Min_fill]. *)
val of_structure : ?heuristic:[ `Min_degree | `Min_fill ] -> Structure.t -> t

(** [of_elimination_order s order] builds the decomposition induced by an
    explicit elimination order (fill-in construction). *)
val of_elimination_order : Structure.t -> int list -> t

(** [estimate s] runs both heuristics and returns the narrower
    decomposition together with its width — the width estimate used by the
    static-analysis planner ({!Bounded_tw} cost grows with the width, so
    spending two heuristic passes before a DP is always worth it). *)
val estimate : Structure.t -> t * int

(** [exact s] — an optimal-width decomposition by branch-and-bound over
    elimination orders.  Exponential; intended for ≤ 10 nodes (validates
    the heuristics in tests).
    @raise Invalid_argument beyond 12 nodes. *)
val exact : Structure.t -> t

(** Children lists derived from [parent]; roots of the forest. *)
val children : t -> int list array

val roots : t -> int list

val pp : Format.formatter -> t -> unit
