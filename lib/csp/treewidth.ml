module Int_set = Structure.Int_set
module Int_map = Structure.Int_map

type t = { bags : Int_set.t array; parent : int array }

let width d =
  Array.fold_left (fun w b -> max w (Int_set.cardinal b - 1)) (-1) d.bags

let children d =
  let cs = Array.make (Array.length d.parent) [] in
  Array.iteri (fun i p -> if p >= 0 then cs.(p) <- i :: cs.(p)) d.parent;
  cs

let roots d =
  let rs = ref [] in
  Array.iteri (fun i p -> if p < 0 then rs := i :: !rs) d.parent;
  List.rev !rs

let is_valid s d =
  let adj = Structure.gaifman s in
  let all_nodes = Structure.nodes s in
  let node_covered v = Array.exists (fun b -> Int_set.mem v b) d.bags in
  let edge_covered v w =
    Array.exists (fun b -> Int_set.mem v b && Int_set.mem w b) d.bags
  in
  let connected v =
    (* bags containing v must form a connected subforest: count the bags
       containing v whose parent does not contain v; must be ≤ 1. *)
    let count = ref 0 in
    Array.iteri
      (fun i b ->
        if Int_set.mem v b then
          let p = d.parent.(i) in
          if p < 0 || not (Int_set.mem v d.bags.(p)) then incr count)
      d.bags;
    !count <= 1
  in
  List.for_all node_covered all_nodes
  && Int_map.for_all
       (fun v ns -> Int_set.for_all (fun w -> edge_covered v w) ns)
       adj
  && List.for_all connected all_nodes

let of_elimination_order s order =
  let adj0 = Structure.gaifman s in
  let adj = Hashtbl.create 16 in
  Int_map.iter (fun v ns -> Hashtbl.replace adj v ns) adj0;
  let neighbors v =
    match Hashtbl.find_opt adj v with Some ns -> ns | None -> Int_set.empty
  in
  let n = List.length order in
  let bags = Array.make (max n 1) Int_set.empty in
  let position = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace position v i) order;
  (* eliminate in order, recording bags and filling neighborhoods *)
  List.iteri
    (fun i v ->
      let ns = neighbors v in
      bags.(i) <- Int_set.add v ns;
      (* connect neighbors pairwise, remove v *)
      Int_set.iter
        (fun u ->
          let nu = Int_set.remove v (neighbors u) in
          let nu = Int_set.union nu (Int_set.remove u ns) in
          Hashtbl.replace adj u nu)
        ns;
      Hashtbl.remove adj v)
    order;
  let parent = Array.make (max n 1) (-1) in
  Array.iteri
    (fun i b ->
      let later =
        Int_set.filter
          (fun u -> Hashtbl.find position u > i)
          b
      in
      match Int_set.elements later with
      | [] -> ()
      | us ->
        let first =
          List.fold_left
            (fun best u ->
              if Hashtbl.find position u < Hashtbl.find position best then u
              else best)
            (List.hd us) us
        in
        parent.(i) <- Hashtbl.find position first)
    bags;
  if n = 0 then { bags = [||]; parent = [||] } else { bags; parent }

let order_by_heuristic heuristic s =
  let adj0 = Structure.gaifman s in
  let adj = Hashtbl.create 16 in
  Int_map.iter (fun v ns -> Hashtbl.replace adj v ns) adj0;
  let neighbors v =
    match Hashtbl.find_opt adj v with Some ns -> ns | None -> Int_set.empty
  in
  let remaining = ref (Int_set.of_list (Structure.nodes s)) in
  let fill_cost v =
    let ns = neighbors v in
    let missing = ref 0 in
    Int_set.iter
      (fun u ->
        Int_set.iter
          (fun w ->
            if u < w && not (Int_set.mem w (neighbors u)) then incr missing)
          ns)
      ns;
    !missing
  in
  let cost v =
    match heuristic with
    | `Min_degree -> Int_set.cardinal (neighbors v)
    | `Min_fill -> fill_cost v
  in
  let order = ref [] in
  while not (Int_set.is_empty !remaining) do
    let v =
      Int_set.fold
        (fun v best ->
          match best with
          | None -> Some v
          | Some b -> if cost v < cost b then Some v else best)
        !remaining None
      |> Option.get
    in
    order := v :: !order;
    let ns = neighbors v in
    Int_set.iter
      (fun u ->
        let nu = Int_set.remove v (neighbors u) in
        let nu = Int_set.union nu (Int_set.remove u ns) in
        Hashtbl.replace adj u nu)
      ns;
    Hashtbl.remove adj v;
    remaining := Int_set.remove v !remaining
  done;
  List.rev !order

let of_structure ?(heuristic = `Min_degree) s =
  of_elimination_order s (order_by_heuristic heuristic s)

let estimate s =
  let md = of_structure ~heuristic:`Min_degree s in
  let mf = of_structure ~heuristic:`Min_fill s in
  let best = if width mf < width md then mf else md in
  (best, width best)

(* Branch-and-bound over elimination orders: the width of an order is the
   maximum neighborhood size at elimination time; prune branches whose
   running width already reaches the best found. *)
let exact s =
  let nodes = Structure.nodes s in
  if List.length nodes > 12 then
    invalid_arg "Treewidth.exact: too many nodes (max 12)";
  let adj0 = Structure.gaifman s in
  let best_width = ref max_int in
  let best_order = ref nodes in
  let rec search adj remaining order width_so_far =
    if width_so_far >= !best_width then ()
    else if Int_set.is_empty remaining then begin
      best_width := width_so_far;
      best_order := List.rev order
    end
    else
      Int_set.iter
        (fun v ->
          let ns =
            match Int_map.find_opt v adj with
            | Some ns -> ns
            | None -> Int_set.empty
          in
          let degree = Int_set.cardinal ns in
          let width' = max width_so_far degree in
          if width' < !best_width then begin
            (* eliminate v: connect its neighbors pairwise *)
            let adj' =
              Int_set.fold
                (fun u acc ->
                  let nu =
                    match Int_map.find_opt u acc with
                    | Some nu -> nu
                    | None -> Int_set.empty
                  in
                  let nu = Int_set.remove v (Int_set.union nu (Int_set.remove u ns)) in
                  Int_map.add u nu acc)
                ns (Int_map.remove v adj)
            in
            search adj' (Int_set.remove v remaining) (v :: order) width'
          end)
        remaining
  in
  search adj0 (Int_set.of_list nodes) [] 0;
  of_elimination_order s !best_order

let pp ppf d =
  Array.iteri
    (fun i b ->
      Format.fprintf ppf "bag %d (parent %d): {%a}@," i d.parent.(i)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Int_set.elements b))
    d.bags
