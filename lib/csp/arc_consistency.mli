(** AC-3 arc consistency for homomorphism problems: prunes per-node
    candidate sets until every candidate has a support in every constraint
    (tuple of the source structure).  Useful as a preprocessing step before
    backtracking — exercised by the solver ablation. *)

(** [prune ?restrict ~source ~target ()] — the largest arc-consistent
    candidate assignment, or [None] if some node's candidates become empty
    (in which case no homomorphism exists). *)
val prune :
  ?restrict:(int -> Structure.Int_set.t) ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Structure.Int_set.t Structure.Int_map.t option

(** [find_hom ?restrict ~source ~target ()] — AC-3 preprocessing followed
    by the MRV backtracking solver on the pruned domains. *)
val find_hom :
  ?restrict:(int -> Structure.Int_set.t) ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Solver.hom option

(** Revision count of the last [prune] (for the ablation bench). *)
val last_stats : unit -> int
