(** AC-3 arc consistency for homomorphism problems: prunes per-node
    candidate sets until every candidate has a support in every constraint
    (tuple of the source structure).  Useful as a preprocessing step before
    backtracking — exercised by the solver ablation. *)

(** [prune ?restrict ~source ~target ()] — the largest arc-consistent
    candidate assignment, or [None] if some node's candidates become empty
    (in which case no homomorphism exists). *)
val prune :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Structure.Int_set.t Structure.Int_map.t option

(** [find_hom ?restrict ?limits ~source ~target ()] — AC-3 preprocessing
    followed by the MRV backtracking engine on the pruned domains.
    [limits] bounds only the backtracking phase; an unlimited search never
    returns [None] spuriously, and a budgeted one is available through
    [find_hom_b]. *)
val find_hom :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Solver.hom option

(** Budgeted variant: AC-3 preprocessing, then {!Engine.solve} under
    [limits]. *)
val find_hom_b :
  ?restrict:Domains.t ->
  ?limits:Engine.Limits.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Solver.hom Engine.outcome
