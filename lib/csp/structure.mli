(** Finite relational structures over integer nodes, optionally colored by
    string labels.  These are the structural parts [Mλ] of generalized
    databases (Section 5), the carriers of graph-theoretic constructions
    (Section 4), and the instances of the constraint-satisfaction problems
    of Section 6. *)

module Int_set : Set.S with type elt = int
module Int_map : Map.S with type key = int

type tuple = int array

module Tuple_set : Set.S with type elt = tuple

(** {1 The columnar compiled view}

    Relation names and labels interned to dense ints ({!Interner}), nodes
    renumbered densely (ascending in the raw ids), and each relation's
    tuples stored flat with a per-position inverted index.  This is the
    layout the engine, AC-3, and the bounded-treewidth DP scan; it is
    computed once per structure value and memoized. *)

type crel = {
  rel : string;
  rel_id : int;  (** [Interner.rel_id rel] *)
  arity : int;
  count : int;
  flat : int array;  (** [count * arity] dense node ids, row-major *)
  by_pos : int array array array;
      (** [by_pos.(p).(w)] = ascending indices of tuples with dense node
          [w] at position [p] *)
}

type columnar = {
  node_ids : int array;  (** dense -> raw node id, ascending *)
  dense_of : (int, int) Hashtbl.t;  (** raw -> dense *)
  node_labels : int array;  (** dense -> label id; [-1] = unlabeled *)
  crels : crel array;
}

type t = private {
  nodes : Int_set.t;
  label : string Int_map.t; (* partial: unlabeled nodes allowed *)
  rels : Tuple_set.t Stdlib.Map.Make(String).t;
  mutable cview : columnar option; (* memoized compiled view *)
}

(** [columnar s] — the compiled view, memoized on first use.  Safe to call
    from any domain (the memo write is a benign race between equal
    values). *)
val columnar : t -> columnar

val empty : t
val add_node : ?label:string -> t -> int -> t

(** [add_tuple s rel tup] adds the fact [rel(tup)]; nodes of [tup] not yet
    in the structure are registered on the fly (unlabeled). *)
val add_tuple : t -> string -> tuple -> t

val add_edge : t -> string -> int -> int -> t

(** [make ~nodes ~tuples] builds a structure; [nodes] pairs each node with
    an optional label, [tuples] pairs a relation name with its tuples.
    Nodes occurring only in tuples need not be listed. *)
val make : nodes:(int * string option) list -> tuples:(string * tuple list) list -> t

val nodes : t -> int list
val size : t -> int
val label_of : t -> int -> string option
val mem_node : t -> int -> bool
val mem_tuple : t -> string -> tuple -> bool
val tuples_of : t -> string -> tuple list
val rel_names : t -> string list
val all_tuples : t -> (string * tuple) list
val tuple_count : t -> int
val fold_tuples : (string -> tuple -> 'a -> 'a) -> t -> 'a -> 'a

(** [same_label s1 v1 s2 v2] iff the (possibly absent) labels agree. *)
val same_label : t -> int -> t -> int -> bool

(** {1 Constructions} *)

(** [product s1 s2] is the categorical product restricted to pairs of nodes
    with equal labels (the structure [Mλ ⊓Σ M′λ′] of Theorem 4's proof);
    the returned map sends each product node to its (left, right) pair of
    origins. *)
val product : t -> t -> t * (int -> int * int)

(** [disjoint_union s1 s2] renames [s2] apart and unions; returns injections
    from each operand's nodes into the result. *)
val disjoint_union : t -> t -> t * (int -> int) * (int -> int)

(** [restrict s keep] is the induced substructure on [keep]. *)
val restrict : t -> Int_set.t -> t

(** [map_nodes s f] renames nodes through [f]; tuples are mapped pointwise.
    [f] need not be injective (this computes homomorphic images). *)
val map_nodes : t -> (int -> int) -> t

(** [gaifman s] is the Gaifman graph: the undirected adjacency between
    nodes co-occurring in some tuple, as a map node → neighbor set. *)
val gaifman : t -> Int_set.t Int_map.t

(** {1 Connected components} *)

(** [component_classes s] — the node classes of the connected components
    of the Gaifman graph, ordered by minimal member.  Isolated nodes form
    singleton classes.  0-ary facts belong to no class. *)
val component_classes : t -> Int_set.t list

val component_count : t -> int

(** [components s] — the induced substructures on the component classes
    (raw node ids are preserved); [[s]] when connected or empty.  Every
    component keeps the 0-ary facts of [s]. *)
val components : t -> t list

(** [is_substructure s1 s2] iff every node (with matching label) and tuple
    of [s1] occurs in [s2]. *)
val is_substructure : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
