module Int_set = Structure.Int_set
module Int_map = Structure.Int_map
module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Config = Engine.Config

let runs = Obs.counter "csp.resilient.runs"
let attempts_total = Obs.counter "csp.resilient.attempts"
let retries = Obs.counter "csp.resilient.retries"
let recovered = Obs.counter "csp.resilient.recovered"
let propagation_unsats = Obs.counter "csp.resilient.propagation_unsat"
let exhausted_c = Obs.counter "csp.resilient.exhausted"
let crossed = Obs.counter "csp.resilient.crossed"
let crossed_recovered = Obs.counter "csp.resilient.crossed_recovered"

module Policy = struct
  type t = {
    max_attempts : int;
    escalation : float;
    restart_seed : int option;
    propagate_first : bool;
  }

  let make ?(max_attempts = 3) ?(escalation = 4.0) ?(restart_seed = Some 0x5eed)
      ?(propagate_first = true) () =
    if max_attempts < 1 then
      invalid_arg "Resilient.Policy.make: max_attempts must be >= 1";
    if escalation < 1.0 then
      invalid_arg "Resilient.Policy.make: escalation must be >= 1.0";
    { max_attempts; escalation; restart_seed; propagate_first }

  let default = make ()
  let no_retry = make ~max_attempts:1 ~propagate_first:false ()
end

type rung = Propagation | Search of int | Fallback of string | Exhausted

let rung_to_string = function
  | Propagation -> "propagation"
  | Search n -> Printf.sprintf "search[%d]" n
  | Fallback name -> Printf.sprintf "fallback[%s]" name
  | Exhausted -> "exhausted"

type 'a run = { outcome : 'a Engine.outcome; attempts : int; rung : rung }

let decision r = Engine.decision_of_outcome r.outcome

let scale_limits (policy : Policy.t) ~attempt (l : Engine.Limits.t) =
  if attempt <= 1 then l
  else
    let factor = policy.escalation ** float_of_int (attempt - 1) in
    let scale =
      Option.map (fun n ->
          max 1 (int_of_float (ceil (float_of_int n *. factor))))
    in
    { l with nodes = scale l.nodes; backtracks = scale l.backtracks }

(* When every rung of one backend tripped, cross to the other one: run
   the fallback once, under the last attempt's (fully escalated) limits.
   A definitive fallback answer cannot flip anything — the primary only
   ever said Unknown here — and a fallback Unknown keeps the primary's
   reason. *)
let cross_backend ?fallback (policy : Policy.t) ~limits ~attempts
    (exhausted : 'a Engine.outcome) =
  match fallback with
  | None ->
    Obs.incr exhausted_c;
    { outcome = exhausted; attempts; rung = Exhausted }
  | Some (name, call) -> (
    Obs.incr crossed;
    let limits = scale_limits policy ~attempt:policy.max_attempts limits in
    match
      Trace.with_span "csp.resilient.fallback"
        ~labels:[ ("backend", name) ]
        (fun () -> call limits)
    with
    | (Engine.Sat _ | Engine.Unsat) as outcome ->
      Obs.incr crossed_recovered;
      { outcome; attempts; rung = Fallback name }
    | Engine.Unknown _ ->
      Obs.incr exhausted_c;
      { outcome = exhausted; attempts; rung = Exhausted })

(* The retry core: attempt [i] runs [f] under the policy-scaled limits;
   a definitive outcome stops the ladder (nothing can override it), a
   cancellation stops it too (the token stays tripped, so retrying would
   spin), every other Unknown escalates until the attempts run out —
   and then crosses to the fallback backend, if one was given. *)
let retry ?fallback (policy : Policy.t) ~limits f =
  let rec attempt i =
    Obs.incr attempts_total;
    if i > 1 then Obs.incr retries;
    match
      Trace.with_span "csp.resilient.attempt"
        ~labels:[ ("attempt", string_of_int i) ]
        (fun () -> f ~attempt:i (scale_limits policy ~attempt:i limits))
    with
    | (Engine.Sat _ | Engine.Unsat) as outcome ->
      if i > 1 then Obs.incr recovered;
      { outcome; attempts = i; rung = Search i }
    | Engine.Unknown Engine.Cancelled ->
      Obs.incr exhausted_c;
      { outcome = Engine.Unknown Engine.Cancelled; attempts = i; rung = Exhausted }
    | Engine.Unknown r ->
      if i >= policy.max_attempts then
        cross_backend ?fallback policy ~limits ~attempts:i (Engine.Unknown r)
      else attempt (i + 1)
  in
  attempt 1

(* expose the ladder's verdict on the enclosing span, so an explained
   request reports which rung answered and how many attempts it took *)
let annotated r =
  Trace.annotate "rung" (rung_to_string r.rung);
  Trace.annotate "attempts" (string_of_int r.attempts);
  r

let run ?(policy = Policy.default) ?fallback ~limits f =
  Obs.incr runs;
  Trace.with_span "csp.resilient.run" (fun () ->
      annotated (retry ?fallback policy ~limits f))

(* Perturb the engine configuration for retry [attempt]: the first
   attempt keeps the caller's ordering, later ones switch to a seeded
   permutation so each restart explores a different tree prefix. *)
let attempt_config (policy : Policy.t) ~attempt ~limits (config : Config.t) =
  let var_order =
    match policy.restart_seed with
    | Some seed when attempt > 1 -> Config.Seeded (seed + attempt)
    | _ -> config.var_order
  in
  { config with limits; var_order }

let propagation_certificate (config : Config.t) ~source ~target =
  match
    Arc_consistency.prune ?restrict:config.restrict ~source ~target ()
  with
  | None -> `Unsat
  | Some pruned ->
    (* feed the arc-consistent domains back into the search as the
       restriction, so the work done on rung one is not thrown away *)
    `Restrict (Domains.of_map pruned)

let ladder ~engine_call ?(policy = Policy.default) ?fallback
    ?(config = Config.default) ~source ~target () =
  Obs.incr runs;
  Trace.with_span "csp.resilient.ladder" (fun () ->
      annotated
        (match
           if policy.propagate_first then
             propagation_certificate config ~source ~target
           else `Restrict_unchanged
         with
        | `Unsat ->
          Obs.incr propagation_unsats;
          { outcome = Engine.Unsat; attempts = 0; rung = Propagation }
        | (`Restrict _ | `Restrict_unchanged) as r ->
          let config =
            match r with
            | `Restrict restrict ->
              { config with Config.restrict = Some restrict }
            | `Restrict_unchanged -> config
          in
          (* the fallback inherits the AC-3-pruned restriction: rung
             one's certificate work transfers across backends *)
          let fallback =
            Option.map
              (fun (name, call) ->
                (name, fun limits -> call ~config:{ config with limits }))
              fallback
          in
          retry ?fallback policy ~limits:config.Config.limits
            (fun ~attempt limits ->
              let config = attempt_config policy ~attempt ~limits config in
              engine_call ~config ~source ~target ())))

let solve ?policy ?fallback ?config ~source ~target () =
  ladder ~engine_call:(fun ~config ~source ~target () ->
      Engine.solve ~config ~source ~target ())
    ?policy ?fallback ?config ~source ~target ()

let satisfiable ?policy ?fallback ?config ~source ~target () =
  ladder ~engine_call:(fun ~config ~source ~target () ->
      Engine.satisfiable ~config ~source ~target ())
    ?policy ?fallback ?config ~source ~target ()
