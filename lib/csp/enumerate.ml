module Obs = Certdb_obs.Obs

let c_visited = Obs.counter "csp.enumerate.visited"

exception Stop

let cardinal ~n ~choices =
  if n = 0 then 1
  else if choices = 0 then 0
  else begin
    let rec go acc i =
      if i = 0 then acc
      else if acc > max_int / choices then max_int
      else go (acc * choices) (i - 1)
    in
    go 1 n
  end

let iter_assignments ~n ~choices f =
  if n = 0 then begin
    Obs.incr c_visited;
    f [||]
  end
  else if choices > 0 then begin
    let a = Array.make n 0 in
    let rec go i =
      if i = n then begin
        Obs.incr c_visited;
        f a
      end
      else
        for v = 0 to choices - 1 do
          a.(i) <- v;
          go (i + 1)
        done
    in
    go 0
  end

let exists_assignment ~n ~choices p =
  let found = ref false in
  (try
     iter_assignments ~n ~choices (fun a ->
         if p a then begin
           found := true;
           raise Stop
         end)
   with Stop -> ());
  !found

let for_all_assignments ~n ~choices p =
  not (exists_assignment ~n ~choices (fun a -> not (p a)))

(* Restricted growth on the fresh part: fresh class [consts + j] may
   only appear after classes [consts .. consts + j - 1] have appeared,
   so each partition-with-constants is visited exactly once. *)
let iter_canonical ~n ~consts f =
  let a = Array.make n 0 in
  let rec go i fresh_used =
    if i = n then begin
      Obs.incr c_visited;
      f a
    end
    else begin
      for v = 0 to consts - 1 do
        a.(i) <- v;
        go (i + 1) fresh_used
      done;
      for j = 0 to fresh_used do
        a.(i) <- consts + j;
        go (i + 1) (max fresh_used (j + 1))
      done
    end
  in
  go 0 0
