(** Exhaustive enumeration of small assignment spaces — the brute-force
    completion oracles behind the constraint certificates of
    [Certdb_analysis] ([Fd]/[Independence]) and their self-tests.

    An {e assignment} maps [n] items (null ids, say) to values
    [0..choices-1]; a completion of an incomplete table is exactly such
    an assignment once the candidate values are fixed.  Two walks are
    provided:

    - {!iter_assignments} visits all [choices^n] raw assignments — the
      naive oracle a certificate-emitting analysis must agree with;
    - {!iter_canonical} visits only canonical representatives modulo
      renaming of "fresh" values: position values [< consts] denote
      fixed constants, values [consts + j] denote the [j]-th fresh
      class, and fresh classes appear in first-use order (restricted
      growth), so two assignments differing only by a permutation of
      fresh classes are visited once.  Any property invariant under
      renaming of constants outside the instance (FD or independence
      satisfaction is) can be decided on this smaller space.

    Visited assignments are counted by [csp.enumerate.visited].  The
    callback receives a {e shared} array that is mutated in place;
    copy it before storing a witness. *)

(** [cardinal ~n ~choices] — [choices^n], saturating at [max_int]. *)
val cardinal : n:int -> choices:int -> int

(** [iter_assignments ~n ~choices f] calls [f] on every total map from
    [0..n-1] to [0..choices-1], in lexicographic order.  [n = 0] visits
    the single empty assignment; [choices = 0] with [n > 0] visits
    nothing. *)
val iter_assignments : n:int -> choices:int -> (int array -> unit) -> unit

(** [exists_assignment ~n ~choices p] — does some assignment satisfy
    [p]?  Stops at the first witness. *)
val exists_assignment : n:int -> choices:int -> (int array -> bool) -> bool

(** [for_all_assignments ~n ~choices p] — do all assignments satisfy
    [p]?  Stops at the first counterexample. *)
val for_all_assignments : n:int -> choices:int -> (int array -> bool) -> bool

(** [iter_canonical ~n ~consts f] — canonical assignments over [consts]
    fixed constants plus up to [n] fresh classes (values [consts + j] in
    restricted-growth order). *)
val iter_canonical : n:int -> consts:int -> (int array -> unit) -> unit

exception Stop
(** Raise from a callback to abort an iteration early; the [iter_*]
    functions let it escape (callers catch it). *)
