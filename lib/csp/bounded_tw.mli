(** The polynomial-time R-compatible homomorphism test of Theorem 6
    (Lemma 4): given structures [A], [B], a candidate relation
    [R ⊆ A × B], and a tree decomposition of [A] of width [k], decide by
    dynamic programming over the decomposition whether there is a
    homomorphism [A → B] whose graph is contained in [R].  Runtime is
    [O(#bags · |B|^(k+1) · cost)] — polynomial for fixed [k].

    The paper proves this via an encoding into conjunctive queries with
    [k+1] variables [29, 42]; the join-tree dynamic program below is the
    standard operational counterpart of that argument. *)

(** [r_hom ?decomposition ?restrict ~source ~target ()] decides the
    existence of an R-compatible homomorphism, where [restrict] is the
    relation [R] (default {!Domains.unconstrained}).  Labels are enforced
    in addition to [restrict].  A decomposition of [source] is computed
    with the min-degree heuristic when not supplied. *)
val r_hom :
  ?decomposition:Treewidth.t ->
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  bool

(** Same, returning a witness homomorphism extracted from the DP tables. *)
val r_hom_witness :
  ?decomposition:Treewidth.t ->
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Solver.hom option

(** [hom ~source ~target ()] — unrestricted bounded-treewidth homomorphism
    test ([R = A × B] modulo labels). *)
val hom :
  ?decomposition:Treewidth.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  bool
