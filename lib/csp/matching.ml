type graph = { left : int; right : int; adj : int list array }

let make ~left ~right ~edges =
  let adj = Array.make (max left 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= left || v < 0 || v >= right then
        invalid_arg "Matching.make: vertex out of range";
      adj.(u) <- v :: adj.(u))
    edges;
  { left; right; adj }

let inf = max_int

(* Hopcroft–Karp.  match_l.(u) = matched right vertex of left u (or None);
   match_r.(v) likewise. *)
let max_matching g =
  let match_l = Array.make (max g.left 1) None in
  let match_r = Array.make (max g.right 1) None in
  let dist = Array.make (max g.left 1) inf in
  let bfs () =
    let q = Queue.create () in
    for u = 0 to g.left - 1 do
      if match_l.(u) = None then begin
        dist.(u) <- 0;
        Queue.add u q
      end
      else dist.(u) <- inf
    done;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          match match_r.(v) with
          | None -> found := true
          | Some u' ->
            if dist.(u') = inf then begin
              dist.(u') <- dist.(u) + 1;
              Queue.add u' q
            end)
        g.adj.(u)
    done;
    !found
  in
  let rec dfs u =
    List.exists
      (fun v ->
        match match_r.(v) with
        | None ->
          match_l.(u) <- Some v;
          match_r.(v) <- Some u;
          true
        | Some u' ->
          if dist.(u') = dist.(u) + 1 && dfs u' then begin
            match_l.(u) <- Some v;
            match_r.(v) <- Some u;
            true
          end
          else false)
      g.adj.(u)
    ||
    begin
      dist.(u) <- inf;
      false
    end
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to g.left - 1 do
      if match_l.(u) = None && dfs u then incr size
    done
  done;
  (!size, match_l)

let saturates_left g =
  let size, _ = max_matching g in
  size = g.left

(* Hall violator: from an unmatched left vertex, the left vertices reachable
   by alternating paths form a set U with |N(U)| = |U| - 1. *)
let hall_violation g =
  let size, match_l = max_matching g in
  if size = g.left then None
  else begin
    let match_r = Array.make (max g.right 1) None in
    Array.iteri
      (fun u v -> match v with Some v -> match_r.(v) <- Some u | None -> ())
      match_l;
    let u0 = ref (-1) in
    Array.iteri (fun u v -> if v = None && !u0 < 0 && u < g.left then u0 := u) match_l;
    let seen_l = Array.make (max g.left 1) false in
    let seen_r = Array.make (max g.right 1) false in
    let rec explore u =
      if not seen_l.(u) then begin
        seen_l.(u) <- true;
        List.iter
          (fun v ->
            if not seen_r.(v) then begin
              seen_r.(v) <- true;
              match match_r.(v) with Some u' -> explore u' | None -> ()
            end)
          g.adj.(u)
      end
    in
    explore !u0;
    let witness = ref [] in
    Array.iteri (fun u b -> if b && u < g.left then witness := u :: !witness) seen_l;
    Some (List.rev !witness)
  end
