(** The hom-search engine: budgeted, cancellable homomorphism search
    between finite labeled structures.

    Every decision procedure of the paper — the information orderings of
    Prop. 9, membership (Prop. 8 / Theorem 6 via R-compatible
    homomorphisms), certain answers by naïve tableaux — bottoms out in
    this search, so it is exposed as a configurable engine in the style
    of CSP practice: a {!Config.t} bundles resource limits
    ({!Limits.t}: node and backtrack budgets, a wall-clock deadline, a
    {!Cancel.t} token another domain may trip), a variable-ordering
    choice and a propagation level, and every search returns a
    three-valued {!outcome} so that budget exhaustion is never conflated
    with non-existence: [Sat h] carries a verified witness, [Unsat] is
    only reported after the search space is exhausted, and [Unknown r]
    says which limit tripped.

    The search core runs over compiled instances: both structures'
    columnar views ({!Structure.columnar}), interned relation and label
    ids ({!Interner}), and candidate domains as word-parallel bitset
    rows ({!Domains.Dense}) with trail-based undo — support checks are
    [land]s over int arrays driven by the target's per-position tuple
    index.  {!Reference} preserves the pre-columnar map/set core as the
    ablation baseline and test oracle.  {!Components} splits an instance
    into connected components and conjoins per-component outcomes,
    optionally in parallel on {!Batch}'s domain pool.

    One semantic fix over {!Reference}: a 0-ary source fact [R()] absent
    from the target makes the instance [Unsat] (the old core ignored
    0-ary constraints, which belong to no variable).

    {!Solver.find_hom} and friends remain as thin unlimited-budget shims
    over this module.  {!Batch} fans independent searches out across
    OCaml domains with deterministic result ordering. *)

type hom = int Structure.Int_map.t

(** Why a search stopped early. *)
type reason =
  | Node_budget  (** the branching-decision budget ran out *)
  | Backtrack_budget  (** the dead-end budget ran out *)
  | Deadline  (** the wall-clock deadline passed *)
  | Cancelled  (** the {!Cancel.t} token was tripped *)
  | Crashed of string
      (** the search died mid-flight (an injected fault or other crash
          converted by {!Budget.run}); the payload names the fault
          point.  Like every [Unknown], this carries no evidence either
          way. *)

val reason_to_string : reason -> string

(** Three-valued search result.  [Sat] and [Unsat] are definitive under
    any budget; a tripped limit always surfaces as [Unknown]. *)
type 'a outcome = Sat of 'a | Unsat | Unknown of reason

val map_outcome : ('a -> 'b) -> 'a outcome -> 'b outcome

(** Three-valued verdict for budgeted decision procedures built on the
    engine (orderings, membership, certainty). *)
type decision = [ `True | `False | `Unknown of reason ]

val decision_of_outcome : 'a outcome -> decision

(** Cancellation tokens: an atomic flag safe to trip from any domain. *)
module Cancel : sig
  type t

  val create : unit -> t
  val cancel : t -> unit
  val cancelled : t -> bool
end

(** Resource limits, all off by default. *)
module Limits : sig
  type t = {
    nodes : int option;  (** max branching decisions *)
    backtracks : int option;  (** max dead ends *)
    timeout_ms : float option;  (** wall-clock, relative to search start *)
    cancel : Cancel.t option;
  }

  val unlimited : t

  val make :
    ?nodes:int ->
    ?backtracks:int ->
    ?timeout_ms:float ->
    ?cancel:Cancel.t ->
    unit ->
    t

  val is_unlimited : t -> bool
end

(** The runtime counterpart of {!Limits.t}: a mutable tracker that other
    search procedures (the relational fact-based search, [Gdm.Ghom], the
    enumeration loops of query answering) thread through their own hot
    loops so every budget has one semantics. *)
module Budget : sig
  exception Interrupted of reason

  type t

  val start : Limits.t -> t

  (** A shared tracker for {!Limits.unlimited}: it never mutates, so it
      is safe to use concurrently from any number of domains. *)
  val unlimited : t

  (** [tick_node b] accounts one search node / branching decision.
      @raise Interrupted when a limit trips. *)
  val tick_node : t -> unit

  (** [tick_backtrack b] accounts one dead end.
      @raise Interrupted when the backtrack budget trips. *)
  val tick_backtrack : t -> unit

  (** [run limits f] starts a tracker, runs [f], and converts its
      [Some]/[None] result to [Sat]/[Unsat], mapping an [Interrupted]
      escape to [Unknown] and an injected fault
      ([Certdb_obs.Fault.Injected]) to [Unknown (Crashed _)].

      Deadlines are robust to a non-monotone wall clock: the tracker
      accumulates only positive deltas between clock polls, so a clock
      stepped backwards (NTP) can delay the deadline by at most one poll
      interval and can never disarm it. *)
  val run : Limits.t -> (t -> 'a option) -> 'a outcome
end

(** Search configuration. *)
module Config : sig
  type var_order =
    | Mrv  (** fewest remaining candidates first *)
    | Lex
    | Seeded of int
        (** deterministic seeded permutation of the variable order and of
            each variable's value order — the randomized-restart knob:
            retrying an [Unknown] search under a fresh seed explores a
            different prefix of the tree (see {!Resilient}) *)

  type propagation =
    | Forward_check  (** prune neighbor domains at every assignment *)
    | No_propagation  (** check constraints only when fully assigned *)

  type t = {
    limits : Limits.t;
    var_order : var_order;
    propagation : propagation;
    restrict : Domains.t option;
        (** constrain the graph of the hom to a relation [R ⊆ A × B]
            (Theorem 6's R-compatible homomorphisms) *)
  }

  (** MRV + forward checking, unlimited budget, no restriction. *)
  val default : t

  val make :
    ?limits:Limits.t ->
    ?var_order:var_order ->
    ?propagation:propagation ->
    ?restrict:Domains.t ->
    unit ->
    t

  val with_restrict : Domains.t -> t -> t
end

(** [is_hom ~source ~target h] checks that [h] is a total
    label-preserving homomorphism. *)
val is_hom : source:Structure.t -> target:Structure.t -> hom -> bool

(**/**)

(* Internal plumbing shared with [Solver]'s naive ablation baseline and
   [Arc_consistency]'s bitset propagator. *)

type cstr = { rel : string; vars : int array }

val constraints_of : Structure.t -> cstr list

val initial_candidates :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Structure.Int_set.t Structure.Int_map.t

(** A compiled hom instance: dense variable/value ids, per-variable
    initial candidate bitsets, and constraints with their matching
    target relation resolved by interned (rel_id, arity). *)
module Compiled : sig
  type ccstr = {
    cvars : int array;  (** dense source vars, one per position *)
    tgt : Structure.crel option;
        (** target tuples of the same (rel, arity), if any *)
  }

  type t = {
    csrc : Structure.columnar;
    ctgt : Structure.columnar;
    nvars : int;
    cap : int;  (** number of target nodes *)
    words : int;
    init : Domains.Bitset.bs array;  (** per dense var *)
    cstrs : ccstr array;
    by_var : ccstr list array;
    zero_ok : bool;  (** every 0-ary source fact occurs in the target *)
    max_arity : int;
  }

  val make :
    ?restrict:Domains.t ->
    source:Structure.t ->
    target:Structure.t ->
    unit ->
    t
end

val compile :
  ?restrict:Domains.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  Compiled.t

(**/**)

(** [solve ?config ~source ~target ()] searches for one homomorphism.
    [Sat h] is a verified witness; [Unsat] means none exists. *)
val solve :
  ?config:Config.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  hom outcome

(** [satisfiable ?config ~source ~target ()] decides existence without
    materializing a witness: variables occurring in no constraint are
    never branched on (their candidate sets are only checked non-empty),
    so it explores no more — and on instances with unconstrained nodes
    strictly fewer — nodes than [solve]. *)
val satisfiable :
  ?config:Config.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  unit outcome

(** [iter ?config ~source ~target f] enumerates homomorphisms until [f]
    answers [`Stop], the space is exhausted, or a limit trips. *)
val iter :
  ?config:Config.t ->
  source:Structure.t ->
  target:Structure.t ->
  (hom -> [ `Continue | `Stop ]) ->
  [ `Exhausted | `Stopped | `Interrupted of reason ]

(** [count ?config ~source ~target ()] — [Sat n] only when the full
    space was enumerated. *)
val count :
  ?config:Config.t ->
  source:Structure.t ->
  target:Structure.t ->
  unit ->
  int outcome

(** The pre-columnar map/set search core, preserved verbatim: the
    ablation baseline of bench e24 and the independent oracle of the
    engine's property tests.  Same {!Config.t}, same budget semantics,
    same counters — but persistent [Int_set] domains and [Tuple_set]
    support scans instead of bitsets, and 0-ary constraints are (still)
    silently ignored. *)
module Reference : sig
  val solve :
    ?config:Config.t ->
    source:Structure.t ->
    target:Structure.t ->
    unit ->
    hom outcome

  val satisfiable :
    ?config:Config.t ->
    source:Structure.t ->
    target:Structure.t ->
    unit ->
    unit outcome
end

(** Domain-parallel batch solving: a hand-rolled worker pool (OCaml
    domains, no dependencies) that solves independent instances in
    parallel.  Work is distributed by an atomic task index; results are
    reported in input order regardless of [jobs]; per-worker task counts
    land in the [csp.batch.worker<i>.tasks] counters and always sum to
    [csp.batch.tasks]. *)
module Batch : sig
  (** [Domain.recommended_domain_count], at least 1. *)
  val default_jobs : unit -> int

  (** Per-task failure. *)
  type error =
    | Raised of { exn : exn; backtrace : Printexc.raw_backtrace }
        (** the task itself raised *)
    | Skipped
        (** never started: {!Fail_fast} tripped before this task was
            popped from the queue *)

  (** What a raising task does to the rest of the batch. *)
  type failure_policy =
    | Continue  (** isolate the failure; every other task still runs *)
    | Fail_fast of Cancel.t
        (** trip the token on the first failure: workers stop popping new
            tasks, and in-flight searches whose {!Limits.t} carry the
            same token abort with [Unknown Cancelled] *)

  (** [map_result ?jobs ?on_error f xs] applies [f] to every element on
      a pool of [jobs] domains (default {!default_jobs}; the calling
      domain is one of the workers), isolating failures per task: slot
      [i] of the result (input order, regardless of [jobs]) is [Ok y],
      [Error (Raised _)] if [f xs_i] raised, or [Error Skipped] if a
      {!Fail_fast} trip stopped the queue first.  A poisoned task never
      destroys completed work.  Default policy {!Continue}. *)
  val map_result :
    ?jobs:int ->
    ?on_error:failure_policy ->
    ('a -> 'b) ->
    'a list ->
    ('b, error) result list

  (** [map ?jobs f xs] = {!map_result} with {!Continue}, unwrapped.  The
      result list is in input order.  If [f] raises, every remaining task
      still runs to completion and the first (by {e input} order, not
      failure order) exception is re-raised only after all workers have
      drained — completed results are computed and then discarded.
      Callers that need those results, or early shutdown, should use
      {!map_result} directly. *)
  val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

  type task = {
    config : Config.t;
    source : Structure.t;
    target : Structure.t;
  }

  (** [solve_all ?jobs tasks] = [map ?jobs] of {!solve}, with each
      task's own budget. *)
  val solve_all : ?jobs:int -> task list -> hom outcome list
end

(** Component-parallel solving.  The source splits into the connected
    components of its Gaifman graph ({!Structure.components}); the
    components share no constraint, so the instance decomposes: solve
    each against the full target and conjoin — any [Unsat] ⇒ [Unsat],
    else any [Unknown] ⇒ [Unknown] (the first, in component order), else
    [Sat] with the witnesses stitched over the disjoint node sets.

    Each component runs under the caller's full {!Limits.t} (budgets are
    not divided; a shared {!Cancel.t} still cancels everything), and
    [jobs > 1] fans components out on {!Batch}'s domain pool.  With one
    component this is exactly {!solve}/{!satisfiable}. *)
module Components : sig
  (** {!Structure.components} of the source. *)
  val split : Structure.t -> Structure.t list

  (** {!Structure.component_count} of the source. *)
  val count : Structure.t -> int

  val solve :
    ?config:Config.t ->
    ?jobs:int ->
    source:Structure.t ->
    target:Structure.t ->
    unit ->
    hom outcome

  val satisfiable :
    ?config:Config.t ->
    ?jobs:int ->
    source:Structure.t ->
    target:Structure.t ->
    unit ->
    unit outcome
end
