open Certdb_values
open Certdb_csp
open Certdb_gdm
module Int_map = Structure.Int_map

let rec is_structural = function
  | Logic.True | Logic.False | Logic.Rel _ | Logic.Label _ | Logic.NodeEq _ ->
    true
  | Logic.EqAttr _ -> false
  | Logic.Not f -> is_structural f
  | Logic.And (f, g) | Logic.Or (f, g) | Logic.Implies (f, g) ->
    is_structural f && is_structural g
  | Logic.Exists (_, f) | Logic.Forall (_, f) -> is_structural f

let rec is_quantifier_free = function
  | Logic.True | Logic.False | Logic.Rel _ | Logic.Label _ | Logic.NodeEq _
  | Logic.EqAttr _ ->
    true
  | Logic.Not f -> is_quantifier_free f
  | Logic.And (f, g) | Logic.Or (f, g) | Logic.Implies (f, g) ->
    is_quantifier_free f && is_quantifier_free g
  | Logic.Exists _ | Logic.Forall _ -> false

let classify f =
  let rec strip_exists = function
    | Logic.Exists (_, g) -> strip_exists g
    | g -> g
  in
  let rec strip_forall = function
    | Logic.Forall (_, g) -> strip_forall g
    | g -> g
  in
  let after_exists = strip_exists f in
  if is_quantifier_free after_exists then `Existential
  else if is_quantifier_free (strip_forall after_exists) then `Exists_forall
  else `Other

let rec count_exists = function
  | Logic.Exists (xs, g) -> List.length xs + count_exists g
  | _ -> 0

(* All labeled structures with nodes 0..n-1 over the schema, wrapped as
   generalized databases with fresh-constant data (structural conditions
   ignore data). *)
let enumerate_structures ~schema ~size () =
  let alphabet = Gschema.alphabet schema in
  let rels = Gschema.sigma schema in
  let rec labelings n =
    if n = 0 then Seq.return []
    else
      Seq.concat_map
        (fun rest -> Seq.map (fun l -> l :: rest) (List.to_seq alphabet))
        (labelings (n - 1))
  in
  let rec tuples_of_arity n k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.init n (fun v -> v :: rest))
        (tuples_of_arity n (k - 1))
  in
  let rec subsets = function
    | [] -> Seq.return []
    | t :: rest ->
      Seq.concat_map
        (fun s -> List.to_seq [ s; t :: s ])
        (subsets rest)
  in
  let structures_of_size n =
    Seq.concat_map
      (fun labeling ->
        let base =
          List.fold_left
            (fun (i, db) (label, arity) ->
              ( i + 1,
                Gdb.add_node db ~node:i ~label
                  ~data:(List.init arity (fun _ -> Value.fresh_const ())) ))
            (0, Gdb.empty) labeling
          |> snd
        in
        let rec add_rels db = function
          | [] -> Seq.return db
          | (rel, arity) :: rest ->
            Seq.concat_map
              (fun chosen ->
                add_rels
                  (List.fold_left (fun db t -> Gdb.add_tuple db rel t) db chosen)
                  rest)
              (subsets (tuples_of_arity n arity))
        in
        add_rels base rels)
      (labelings n)
  in
  Seq.concat_map structures_of_size
    (Seq.init size (fun i -> i + 1))

let cons_existential ~schema f =
  let bound = max 1 (count_exists f) in
  Seq.exists (fun db -> Logic.holds db f) (enumerate_structures ~schema ~size:bound ())

(* Global unifiability of the data constraints induced by a structural
   homomorphism: every fiber's tuples must be mapped to a common complete
   tuple by a single valuation.  Union-find over values; a class with two
   distinct constants is a clash. *)
let fibers_unifiable d h =
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
      let r = find p in
      Hashtbl.replace parent v r;
      r
  in
  let union u v =
    let ru = find u and rv = find v in
    if not (Value.equal ru rv) then
      (* keep constants as representatives *)
      if Value.is_const ru then Hashtbl.replace parent rv ru
      else Hashtbl.replace parent ru rv
  in
  let ok = ref true in
  let fibers = Hashtbl.create 16 in
  Int_map.iter
    (fun v w ->
      Hashtbl.replace fibers w
        (v :: Option.value ~default:[] (Hashtbl.find_opt fibers w)))
    h;
  Hashtbl.iter
    (fun _ vs ->
      match vs with
      | [] -> ()
      | v0 :: rest ->
        let t0 = Gdb.data d v0 in
        List.iter
          (fun v ->
            let t = Gdb.data d v in
            if Array.length t <> Array.length t0 then ok := false
            else Array.iteri (fun i x -> union x t0.(i)) t)
          rest)
    fibers;
  (* check classes: two distinct constants in one class make find map one
     constant to another *)
  Hashtbl.iter
    (fun v _ ->
      if Value.is_const v then
        let r = find v in
        if Value.is_const r && not (Value.equal r v) then ok := false)
    parent;
  !ok

let cons_hom_into ~target d =
  let found = ref false in
  Solver.iter_homs ~source:(Gdb.structure d) ~target (fun h ->
      if fibers_unifiable d h then begin
        found := true;
        `Stop
      end
      else `Continue);
  !found

let cons_bounded ~schema ~size_bound f d =
  Seq.exists
    (fun candidate ->
      Logic.holds candidate f
      && cons_hom_into ~target:(Gdb.structure candidate) d)
    (enumerate_structures ~schema ~size:size_bound ())

let three_colorability_condition () =
  Logic.Exists
    ( [ "x1"; "x2"; "x3" ],
      Logic.Forall
        ( [ "y" ],
          Logic.And
            ( Logic.disj
                [
                  Logic.NodeEq ("y", "x1");
                  Logic.NodeEq ("y", "x2");
                  Logic.NodeEq ("y", "x3");
                ],
              Logic.Not (Logic.Rel ("E", [ "y"; "y" ])) ) ) )
