(** The consistency problem Cons(ϕ) of Section 6: given a generalized
    database D = 〈Mλ, ρ〉 and a structural condition ϕ on labeled
    structures, is there a completion D′ ∈ [[D]] whose structural part
    satisfies ϕ?

    Prop. 11: for ∃*∀* conditions (Bernays–Schönfinkel) the problem is in
    NP — a witness of size |M| + #∃-quantifiers suffices; there is an ∃*∀
    condition making it NP-complete (via homomorphism into K₃, i.e.
    3-colorability); for ∃* conditions it is PTIME (indeed constant per
    fixed ϕ: satisfiability of ϕ alone decides it, by disjoint union).

    Structural conditions are {!Certdb_gdm.Logic} sentences mentioning only
    σ-relations, labels and node equality (no attribute atoms). *)

open Certdb_csp
open Certdb_gdm

(** [is_structural f] — no [EqAttr] atoms. *)
val is_structural : Logic.t -> bool

(** Quantifier-prefix classification after implication elimination:
    [`Existential] (exists-star), [`Exists_forall] (exists-forall), or [`Other]. *)
val classify : Logic.t -> [ `Existential | `Exists_forall | `Other ]

(** [cons_existential ~schema f] — Cons(ϕ) for ∃* conditions, independent
    of the input database: true iff ϕ is satisfiable over the schema's
    labels, decided by small-model search (models of size ≤ number of
    variables). *)
val cons_existential : schema:Gschema.t -> Logic.t -> bool

(** [cons_hom_into ~target d] — consistency with "the completion maps
    homomorphically into the fixed structure [target]" (the shape of the
    NP-hard ∃*∀ instances): decides whether some completion's structural
    part admits it, i.e. whether there is a structural homomorphism
    [Mλ → target] whose node fibers have unifiable data. *)
val cons_hom_into : target:Structure.t -> Gdb.t -> bool

(** [cons_bounded ~schema ~size_bound f d] — generic bounded-model search
    for ∃*∀* conditions: enumerate labeled structures up to [size_bound]
    nodes over the schema, keep those satisfying [f], and test whether [d]
    maps into one of them with unifiable fibers.  Exponential in
    [size_bound]; for small inputs only. *)
val cons_bounded : schema:Gschema.t -> size_bound:int -> Logic.t -> Gdb.t -> bool

(** [three_colorability_condition ()] — the ∃*∀ sentence over graphs
    (σ = {E}, single label "v") describing "the structure is K₃-like":
    three nodes covering the universe with no monochrome edge.  Used by the
    NP-hardness experiment. *)
val three_colorability_condition : unit -> Logic.t
