(** Request-scoped tracing on top of {!Obs}: trace/span identifiers with a
    domain-local context, a bounded lock-free ring buffer of completed
    events, and exporters (Chrome trace-event JSON for
    [about:tracing]/Perfetto, per-trace summaries for [explain:true]
    responses).

    {1 Model}

    A {e trace} is a tree of spans sharing one [trace_id]; the root span's
    id {e is} the trace id.  [with_span] opens a child of the innermost
    open span on the current domain; with no open span it consults the
    ambient context installed by [with_context] (how [Engine.Batch] worker
    domains inherit the coordinator's trace), and failing that it starts a
    fresh trace.  Every completed span {e also} feeds the plain {!Obs}
    timer of the same name, so aggregate timer statistics are identical
    whether tracing is enabled or not — per-request labels (worker index,
    ladder rung, plan route, ...) live only on the ring-buffer events, not
    in timer names.

    {1 Ring buffer}

    Completed spans land in a fixed-capacity ring: writers claim slots
    with one atomic fetch-and-add and never block, so a hot path never
    waits on a reader; once the ring wraps, the oldest events are
    overwritten ([dropped] counts them).  [events] is a snapshot, not a
    linearizable read — an event completing concurrently with the read
    may or may not appear, which is fine for a diagnostic stream.

    [set_enabled false] stops context bookkeeping and ring writes;
    [with_span] degrades to [Obs.time] on the same timer, so the
    aggregate metrics keep flowing. *)

module Json = Obs.Json

(** {1 Switch and capacity} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [set_capacity n] resizes the ring to [max 1 n] slots and clears it. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** {1 Spans} *)

(** [with_span ?labels name f]: run [f] in a span.  Duration is recorded
    in the {!Obs} timer named [name] (labels are {e not} appended to the
    timer name) and, when enabled, as a ring event carrying [labels]. *)
val with_span : ?labels:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [with_trace ?labels name f]: like [with_span] but always roots a new
    trace, even under an open span; [f] receives the fresh trace id. *)
val with_trace : ?labels:(string * string) list -> string -> (int -> 'a) -> 'a

(** [annotate k v] sets label [k] on the innermost open span of this
    domain (replacing any previous value); no-op outside a span or when
    disabled. *)
val annotate : string -> string -> unit

(** [label k] reads label [k] back from the innermost open span. *)
val label : string -> string option

(** [instant ?labels name] records a zero-duration event (e.g. a fault
    injection) under the current context. *)
val instant : ?labels:(string * string) list -> string -> unit

val current_trace : unit -> int option
val current_span : unit -> int option

(** {1 Cross-domain inheritance} *)

type context

(** [capture ()] is the current trace context, to be shipped to another
    domain; [None] when no span is open (and no ambient context is
    installed) or tracing is disabled. *)
val capture : unit -> context option

(** [with_context ctx f] installs [ctx] as the ambient parent for root
    spans opened by [f] on this domain.  [with_context None f] is [f ()]. *)
val with_context : context option -> (unit -> 'a) -> 'a

(** {1 The event log} *)

type kind = Span | Instant

type event = {
  trace_id : int;
  span_id : int;
  parent : int option;  (** [None] for a trace's root span *)
  name : string;
  labels : (string * string) list;
  start_ms : float;
  dur_ms : float;
  domain : int;  (** {!Domain.self} of the recording domain *)
  kind : kind;
}

(** Buffered events, oldest first. *)
val events : unit -> event list

(** Events of one trace, oldest first. *)
val events_of : int -> event list

(** Events overwritten since the last [clear]/[set_capacity]. *)
val dropped : unit -> int

val clear : unit -> unit

(** {1 Exporters} *)

(** Chrome trace-event JSON (["traceEvents"] with complete ["X"] events,
    microsecond timestamps rebased to the earliest event) — loads in
    Perfetto and [about:tracing].  Span labels and ids ride in [args]. *)
val chrome : event list -> Json.t

(** [summary ?root tid] is the [explain:true] object for trace [tid]:
    trace id, root span name, wall-clock, hoisted headline labels (route,
    rung, attempts, cache, nodes, backtracks — taken from the first span
    carrying each), and the span tree as a flat list with [parent] links
    and start offsets relative to the root.  [root] restricts to the
    subtree under that span id.  Call it {e after} the root span closed:
    only completed spans are in the ring. *)
val summary : ?root:int -> int -> Json.t
