let content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

(* Name mapping: registry names are dot-separated paths, possibly with a
   span-label decoration ({k=v,...}); OpenMetrics names are
   [a-zA-Z_:][a-zA-Z0-9_:]* and labels are separate.  *)

let valid_name_char first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

let valid_label_char first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_'
  || ((not first) && c >= '0' && c <= '9')

let valid_name s =
  s <> "" && String.length s > 0
  && valid_name_char true s.[0]
  && (let ok = ref true in
      String.iteri (fun i c -> if i > 0 && not (valid_name_char false c) then ok := false) s;
      !ok)

let valid_label s =
  s <> ""
  && valid_label_char true s.[0]
  && (let ok = ref true in
      String.iteri (fun i c -> if i > 0 && not (valid_label_char false c) then ok := false) s;
      !ok)

(* "base{k=v,k2=v2}" -> base, [(k, v); ...]; names without a decoration
   pass through with no labels *)
let split_decoration name =
  match String.index_opt name '{' with
  | Some i when String.length name > 0 && name.[String.length name - 1] = '}' ->
    let base = String.sub name 0 i in
    let body = String.sub name (i + 1) (String.length name - i - 2) in
    let labels =
      if body = "" then []
      else
        String.split_on_char ',' body
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                 ( String.sub kv 0 j,
                   String.sub kv (j + 1) (String.length kv - j - 1) )
               | None -> (kv, ""))
    in
    (base, labels)
  | _ -> (name, [])

let sanitize_name base =
  let buf = Buffer.create (String.length base + 8) in
  Buffer.add_string buf "certdb_";
  String.iter
    (fun c -> Buffer.add_char buf (if valid_name_char false c then c else '_'))
    base;
  Buffer.contents buf

let sanitize_label k =
  let buf = Buffer.create (String.length k) in
  String.iteri
    (fun i c ->
      Buffer.add_char buf (if valid_label_char (i = 0) c then c else '_'))
    (if k = "" then "_" else k);
  Buffer.contents buf

let escape_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_label k) (escape_value v))
           kvs)
    ^ "}"

let float_str f = Printf.sprintf "%.12g" f

(* group registry entries into OpenMetrics families keyed by sanitized
   base name (label decorations collapse into one family), preserving the
   snapshot's sorted order *)
let families entries =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (name, v) ->
      let base, labels = split_decoration name in
      let fam = sanitize_name base in
      (match Hashtbl.find_opt tbl fam with
      | None ->
        Hashtbl.add tbl fam [ (labels, v) ];
        order := fam :: !order
      | Some xs -> Hashtbl.replace tbl fam ((labels, v) :: xs)))
    entries;
  List.rev_map (fun fam -> (fam, List.rev (Hashtbl.find tbl fam))) !order
  |> List.rev

let expose (m : Obs.metrics) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (fam, samples) ->
      line "# TYPE %s counter" fam;
      List.iter
        (fun (labels, v) -> line "%s_total%s %d" fam (render_labels labels) v)
        samples)
    (families m.Obs.counters);
  List.iter
    (fun (fam, samples) ->
      line "# TYPE %s gauge" fam;
      List.iter
        (fun (labels, v) -> line "%s%s %s" fam (render_labels labels) (float_str v))
        samples)
    (families m.Obs.gauges);
  List.iter
    (fun (fam, samples) ->
      line "# TYPE %s summary" fam;
      line "# UNIT %s ms" fam;
      List.iter
        (fun (labels, (s : Obs.timer_stats)) ->
          let q v est =
            line "%s%s %s" fam
              (render_labels (labels @ [ ("quantile", v) ]))
              (float_str est)
          in
          q "0.5" s.Obs.p50_ms;
          q "0.95" s.Obs.p95_ms;
          q "0.99" s.Obs.p99_ms;
          line "%s_count%s %d" fam (render_labels labels) s.Obs.count;
          line "%s_sum%s %s" fam (render_labels labels) (float_str s.Obs.total_ms))
        samples)
    (families m.Obs.timers);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ---- lint ---- *)

let known_suffixes = [ "_total"; "_count"; "_sum"; "_created"; "_bucket" ]

let strip_suffix name =
  List.find_map
    (fun suf ->
      let n = String.length name and m = String.length suf in
      if n > m && String.sub name (n - m) m = suf then
        Some (String.sub name 0 (n - m))
      else None)
    known_suffixes

let lint s =
  let err line_no msg line =
    Error (Printf.sprintf "line %d: %s: %s" line_no msg line)
  in
  let types : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let sampled : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen_eof = ref false in
  let lines = String.split_on_char '\n' s in
  let check_sample line_no line =
    (* name[{labels}] value [timestamp] *)
    let n = String.length line in
    let i = ref 0 in
    while !i < n && valid_name_char (!i = 0) line.[!i] do incr i done;
    let name = String.sub line 0 !i in
    if not (valid_name name) then err line_no "invalid metric name" line
    else begin
      let labels_ok = ref (Ok ()) in
      (if !i < n && line.[!i] = '{' then begin
         (* scan label pairs: name="value" with \-escapes *)
         incr i;
         let fine = ref true in
         let rec pairs () =
           if !i < n && line.[!i] = '}' then incr i
           else begin
             let j = ref !i in
             while !j < n && valid_label_char (!j = !i) line.[!j] do incr j done;
             let lname = String.sub line !i (!j - !i) in
             if not (valid_label lname) then fine := false
             else begin
               i := !j;
               if !i < n && line.[!i] = '=' then begin
                 incr i;
                 if !i < n && line.[!i] = '"' then begin
                   incr i;
                   let rec value () =
                     if !i >= n then fine := false
                     else
                       match line.[!i] with
                       | '"' -> incr i
                       | '\\' ->
                         i := !i + 2;
                         value ()
                       | _ ->
                         incr i;
                         value ()
                   in
                   value ();
                   if !fine then
                     if !i < n && line.[!i] = ',' then begin
                       incr i;
                       pairs ()
                     end
                     else if !i < n && line.[!i] = '}' then incr i
                     else fine := false
                 end
                 else fine := false
               end
               else fine := false
             end
           end
         in
         pairs ();
         if not !fine then labels_ok := err line_no "malformed labels" line
       end);
      match !labels_ok with
      | Error _ as e -> e
      | Ok () ->
        if !i >= n || line.[!i] <> ' ' then
          err line_no "expected space before value" line
        else begin
          let rest = String.sub line (!i + 1) (n - !i - 1) in
          let value = match String.index_opt rest ' ' with
            | Some j -> String.sub rest 0 j
            | None -> rest
          in
          match float_of_string_opt value with
          | None -> err line_no "unparseable sample value" line
          | Some _ ->
            let fam =
              match strip_suffix name with
              | Some base when Hashtbl.mem types base -> Some base
              | _ -> if Hashtbl.mem types name then Some name else None
            in
            (match fam with
            | None -> err line_no "sample without a # TYPE declaration" line
            | Some fam ->
              Hashtbl.replace sampled fam ();
              if
                Hashtbl.find types fam = "counter"
                && name <> fam ^ "_total"
                && name <> fam ^ "_created"
              then err line_no "counter sample must end in _total" line
              else Ok ())
        end
    end
  in
  let check_meta line_no line keyword =
    (* "# TYPE name type" / "# UNIT name unit" *)
    let body =
      String.sub line (String.length keyword) (String.length line - String.length keyword)
    in
    match String.split_on_char ' ' body with
    | [ name; info ] when valid_name name ->
      if keyword = "# TYPE " then begin
        if Hashtbl.mem types name then err line_no "duplicate # TYPE" line
        else if Hashtbl.mem sampled name then
          err line_no "# TYPE after samples" line
        else if
          not
            (List.mem info
               [ "counter"; "gauge"; "summary"; "histogram"; "info";
                 "stateset"; "unknown" ])
        then err line_no "unknown metric type" line
        else begin
          Hashtbl.add types name info;
          Ok ()
        end
      end
      else Ok ()
    | _ -> err line_no "malformed metadata line" line
  in
  let rec go line_no = function
    | [] -> if !seen_eof then Ok () else Error "missing # EOF terminator"
    | [ "" ] when !seen_eof -> Ok ()
    | line :: rest ->
      let r =
        if !seen_eof then err line_no "content after # EOF" line
        else if line = "# EOF" then begin
          seen_eof := true;
          Ok ()
        end
        else if line = "" then err line_no "empty line" line
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then
          check_meta line_no line "# TYPE "
        else if String.length line >= 7 && String.sub line 0 7 = "# UNIT " then
          check_meta line_no line "# UNIT "
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then
          Ok ()
        else if String.length line >= 1 && line.[0] = '#' then
          err line_no "unknown comment line" line
        else check_sample line_no line
      in
      (match r with Error _ as e -> e | Ok () -> go (line_no + 1) rest)
  in
  go 1 lines
