exception Injected of string

type trigger =
  | Nth of int
  | Every of int
  | Seeded of { seed : int; per_mille : int }

type entry = { point : string; trigger : trigger; hits : int Atomic.t }

(* The whole schedule is one immutable array behind an atomic: [hit] on
   worker domains only reads the array and bumps per-entry counters, and
   the atomic store publishes a consistent schedule even when arming
   happens after the workers were spawned (the service supervisor's
   pool outlives many arm/disarm cycles). *)
let schedule : entry array Atomic.t = Atomic.make [||]

let injected_total = Obs.counter "fault.injected"

let armed () = Array.length (Atomic.get schedule) > 0

let arm entries =
  Atomic.set schedule
    (Array.of_list
       (List.map
          (fun (point, trigger) -> { point; trigger; hits = Atomic.make 0 })
          entries))

let disarm () = Atomic.set schedule [||]

(* splitmix64 finalizer: a high-quality deterministic hash for the seeded
   trigger, so firing depends only on (seed, point, hit index). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let seeded_fires ~seed ~point ~n ~per_mille =
  let h =
    mix64
      (Int64.of_int
         ((seed * 0x9e3779b1) lxor (Hashtbl.hash point * 0x85ebca6b) lxor n))
  in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) 1000L) < per_mille

let account e =
  Obs.incr injected_total;
  Obs.incr (Obs.counter ("fault." ^ e.point ^ ".injected"));
  Trace.instant "fault.injected" ~labels:[ ("point", e.point) ]

let fire e =
  account e;
  raise (Injected e.point)

let selects e n =
  match e.trigger with
  | Nth k -> n = k
  | Every k -> k > 0 && n mod k = 0
  | Seeded { seed; per_mille } ->
    seeded_fires ~seed ~point:e.point ~n ~per_mille

let hit point =
  let entries = Atomic.get schedule in
  if Array.length entries > 0 then
    Array.iter
      (fun e ->
        if String.equal e.point point then begin
          let n = 1 + Atomic.fetch_and_add e.hits 1 in
          if selects e n then fire e
        end)
      entries

(* Non-raising variant for wire-level points: the site decides what a
   selected hit does (drop a line, delay it, tear the connection), so the
   point must report selection instead of simulating a crash.  Entries
   are scanned like [hit]; the first selecting entry wins and its hit
   index is returned (accounted like a raised injection). *)
let check point =
  let entries = Atomic.get schedule in
  let selected = ref None in
  if Array.length entries > 0 then
    Array.iter
      (fun e ->
        if String.equal e.point point then begin
          let n = 1 + Atomic.fetch_and_add e.hits 1 in
          if !selected = None && selects e n then begin
            account e;
            selected := Some n
          end
        end)
      entries;
  !selected

let hit_k point k =
  let entries = Atomic.get schedule in
  if Array.length entries > 0 then
    Array.iter
      (fun e -> if String.equal e.point point && selects e k then fire e)
      entries

let parse_entry s =
  let trigger_of ~sep ~make rest =
    match int_of_string_opt rest with
    | Some n when n > 0 -> Ok (make n)
    | _ -> Error (Printf.sprintf "bad count after '%c' in %S" sep s)
  in
  match String.index_opt s '@' with
  | Some i ->
    let point = String.sub s 0 i in
    trigger_of ~sep:'@'
      ~make:(fun n -> (point, Nth n))
      (String.sub s (i + 1) (String.length s - i - 1))
  | None -> (
    match String.index_opt s '%' with
    | Some i ->
      let point = String.sub s 0 i in
      trigger_of ~sep:'%'
        ~make:(fun n -> (point, Every n))
        (String.sub s (i + 1) (String.length s - i - 1))
    | None -> (
      match String.index_opt s '~' with
      | Some i -> (
        let point = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match String.index_opt rest ':' with
        | None -> Error (Printf.sprintf "expected SEED:PER_MILLE in %S" s)
        | Some j -> (
          let seed = int_of_string_opt (String.sub rest 0 j) in
          let pm =
            int_of_string_opt
              (String.sub rest (j + 1) (String.length rest - j - 1))
          in
          match (seed, pm) with
          | Some seed, Some per_mille when per_mille >= 0 ->
            Ok (point, Seeded { seed; per_mille })
          | _ -> Error (Printf.sprintf "bad SEED:PER_MILLE in %S" s)))
      | None ->
        Error
          (Printf.sprintf
             "entry %S: expected point@N, point%%N or point~SEED:PM" s)))

let arm_from_string spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match parse_entry e with
      | Ok entry -> go (entry :: acc) rest
      | Error _ as err -> err)
  in
  match go [] entries with
  | Ok entries ->
    arm entries;
    Ok ()
  | Error msg -> Error msg

let with_armed entries f =
  let saved = Atomic.get schedule in
  arm entries;
  Fun.protect ~finally:(fun () -> Atomic.set schedule saved) f

(* Arm from the environment at program start (module initialization runs
   before any domain is spawned).  A malformed spec is a hard error: a
   fault schedule that silently fails to arm would let a fault-injection
   CI job pass without testing anything. *)
let () =
  match Sys.getenv_opt "CERTDB_FAULT" with
  | None | Some "" -> ()
  | Some spec -> (
    match arm_from_string spec with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("CERTDB_FAULT: " ^ msg);
      exit 2)
