module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        (* shortest representation that survives a JSON round-trip and is
           a valid JSON number (no trailing '.', no 'inf'/'nan') *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  let pp ppf j = Format.pp_print_string ppf (to_string j)

  exception Parse_error of string

  (* Recursive-descent parser for the same document model; accepts any
     JSON text produced by [to_string] plus arbitrary whitespace.  Numbers
     parse as [Int] when they contain no '.', 'e' or 'E'. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      if
        !pos + String.length word <= n
        && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected '%s'" word)
    in
    let utf8_of_code buf u =
      (* encode a BMP code point as UTF-8 *)
      if u < 0x80 then Buffer.add_char buf (Char.chr u)
      else if u < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                 advance ();
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 let u =
                   try int_of_string ("0x" ^ hex)
                   with _ -> fail "bad \\u escape"
                 in
                 pos := !pos + 4;
                 utf8_of_code buf u
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
        | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '"' -> String (parse_string ())
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let clock_ms = ref (fun () -> Unix.gettimeofday () *. 1000.)
let set_clock_ms f = clock_ms := f
let now_ms () = !clock_ms ()

(* The registry: one hashtable per metric kind, keyed by name.  Metric
   handles are the mutable cells themselves, so recording an event after
   the handle is obtained touches no hashtable.

   Domain safety (the Csp.Engine.Batch worker pool runs hom searches on
   several domains at once): counters are [Atomic.t], so concurrent
   increments from worker domains never lose events and per-domain counts
   add up; registry creation, timer samples and resets take a global
   mutex (they are rare compared to counter bumps); the span stack is
   domain-local storage, so spans opened on one domain never interleave
   with another domain's stack. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; mutable g_value : float }

(* Quantiles come from fixed log-scale buckets: bucket 0 holds samples up
   to [bucket_lo] ms, bucket [i >= 1] holds samples in
   [bucket_lo * ratio^(i-1), bucket_lo * ratio^i), and the last bucket is
   unbounded.  With ratio sqrt(2) and 64 buckets the range covers 1 µs to
   ~2.5 days with a worst-case relative error of sqrt(2) per estimate —
   bounded memory (one int array per timer), no reservoir, no sample
   retention, domain-safe under the registry mutex like every other
   timer field. *)
let n_buckets = 64
let bucket_lo = 0.001 (* ms *)
let bucket_log_ratio = 0.5 *. Float.log 2.

let bucket_of_ms ms =
  if ms <= bucket_lo then 0
  else
    let i = 1 + int_of_float (Float.log (ms /. bucket_lo) /. bucket_log_ratio) in
    if i >= n_buckets then n_buckets - 1 else i

(* geometric midpoint of bucket [i]'s bounds — the value reported for a
   quantile landing in that bucket *)
let bucket_mid i =
  if i = 0 then bucket_lo
  else bucket_lo *. Float.exp ((float_of_int i -. 0.5) *. bucket_log_ratio)

type timer = {
  t_name : string;
  mutable t_count : int;
  mutable t_total : float;
  mutable t_min : float;
  mutable t_max : float;
  t_buckets : int array;
}

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = Atomic.make 0 } in
    Hashtbl.add counters name c;
    c

let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.add gauges name g;
    g

let set g v = if !enabled_flag then g.g_value <- v
let set_int g n = set g (float_of_int n)
let gauge_value g = g.g_value

let timer name =
  locked @@ fun () ->
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t =
      { t_name = name; t_count = 0; t_total = 0.; t_min = infinity;
        t_max = neg_infinity; t_buckets = Array.make n_buckets 0 }
    in
    Hashtbl.add timers name t;
    t

let record_ms t ms =
  if !enabled_flag then
    locked @@ fun () ->
    t.t_count <- t.t_count + 1;
    t.t_total <- t.t_total +. ms;
    if ms < t.t_min then t.t_min <- ms;
    if ms > t.t_max then t.t_max <- ms;
    let b = bucket_of_ms ms in
    t.t_buckets.(b) <- t.t_buckets.(b) + 1

let time t f =
  let t0 = now_ms () in
  Fun.protect ~finally:(fun () -> record_ms t (now_ms () -. t0)) f

type timer_stats = {
  count : int;
  total_ms : float;
  min_ms : float;
  max_ms : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

(* Spans: a domain-local stack of open intervals.  Completing a span feeds
   the timer registered under the span's (label-decorated) name. *)

type span = { sp_timer : timer; sp_start : float; sp_id : int }

let span_stack : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span_ids = Atomic.make 0
let span_depth () = List.length !(Domain.DLS.get span_stack)

let span_name name labels =
  match labels with
  | None | Some [] -> name
  | Some kvs ->
    let rendered =
      String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
    in
    name ^ "{" ^ rendered ^ "}"

let enter_span ?labels name =
  let sp =
    { sp_timer = timer (span_name name labels); sp_start = now_ms ();
      sp_id = Atomic.fetch_and_add span_ids 1 }
  in
  let stack = Domain.DLS.get span_stack in
  stack := sp :: !stack;
  sp

let exit_span sp =
  record_ms sp.sp_timer (now_ms () -. sp.sp_start);
  (* tolerate mis-paired exits: pop up to and including this span if it is
     still open, leave the stack alone otherwise *)
  let rec drop = function
    | s :: rest when s.sp_id = sp.sp_id -> Some rest
    | _ :: rest -> drop rest
    | [] -> None
  in
  let stack = Domain.DLS.get span_stack in
  match drop !stack with
  | Some rest -> stack := rest
  | None -> ()

let with_span ?labels name f =
  let sp = enter_span ?labels name in
  Fun.protect ~finally:(fun () -> exit_span sp) f

(* Snapshots *)

type metrics = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stats) list;
}

let sorted_of_tbl tbl value =
  Hashtbl.fold (fun name x acc -> (name, value x) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* quantile q (0 < q <= 1) from the log buckets: the geometric midpoint
   of the bucket holding the sample of rank ceil(q * count), clamped into
   the exact observed [min, max] range *)
let quantile_of_buckets t q =
  if t.t_count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.t_count))) in
    let rec find i seen =
      if i >= n_buckets then t.t_max
      else
        let seen = seen + t.t_buckets.(i) in
        if seen >= rank then bucket_mid i else find (i + 1) seen
    in
    Float.min t.t_max (Float.max t.t_min (find 0 0))
  end

let stats_of_timer t =
  {
    count = t.t_count;
    total_ms = t.t_total;
    min_ms = (if t.t_count = 0 then 0. else t.t_min);
    max_ms = (if t.t_count = 0 then 0. else t.t_max);
    mean_ms = (if t.t_count = 0 then 0. else t.t_total /. float_of_int t.t_count);
    p50_ms = quantile_of_buckets t 0.5;
    p95_ms = quantile_of_buckets t 0.95;
    p99_ms = quantile_of_buckets t 0.99;
  }

let snapshot () =
  locked @@ fun () ->
  {
    counters = sorted_of_tbl counters (fun c -> Atomic.get c.c_value);
    gauges = sorted_of_tbl gauges (fun g -> g.g_value);
    timers = sorted_of_tbl timers stats_of_timer;
  }

let reset () =
  (locked @@ fun () ->
   Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
   Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
   Hashtbl.iter
     (fun _ t ->
       t.t_count <- 0;
       t.t_total <- 0.;
       t.t_min <- infinity;
       t.t_max <- neg_infinity;
       Array.fill t.t_buckets 0 n_buckets 0)
     timers);
  Domain.DLS.get span_stack := []

let find_counter m name = List.assoc_opt name m.counters
let find_gauge m name = List.assoc_opt name m.gauges
let find_timer m name = List.assoc_opt name m.timers

let pp_metrics ppf m =
  let width =
    List.fold_left
      (fun w (name, _) -> max w (String.length name))
      0
      (m.counters @ List.map (fun (n, _) -> (n, 0)) m.gauges
      @ List.map (fun (n, _) -> (n, 0)) m.timers)
  in
  Format.fprintf ppf "== metrics ==@.";
  if m.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-*s %d@." width name v)
      m.counters
  end;
  if m.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-*s %g@." width name v)
      m.gauges
  end;
  if m.timers <> [] then begin
    Format.fprintf ppf "timers (ms):@.";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf
          "  %-*s count=%d total=%.3f mean=%.3f min=%.3f max=%.3f p50=%.3f \
           p95=%.3f p99=%.3f@."
          width name s.count s.total_ms s.mean_ms s.min_ms s.max_ms s.p50_ms
          s.p95_ms s.p99_ms)
      m.timers
  end

let to_json m =
  let timer_json s =
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("total_ms", Json.Float s.total_ms);
        ("mean_ms", Json.Float s.mean_ms);
        ("min_ms", Json.Float s.min_ms);
        ("max_ms", Json.Float s.max_ms);
        ("p50_ms", Json.Float s.p50_ms);
        ("p95_ms", Json.Float s.p95_ms);
        ("p99_ms", Json.Float s.p99_ms);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) m.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) m.gauges));
      ("timers", Json.Obj (List.map (fun (n, s) -> (n, timer_json s)) m.timers));
    ]

let json_string m = Json.to_string (to_json m)
