module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        (* shortest representation that survives a JSON round-trip and is
           a valid JSON number (no trailing '.', no 'inf'/'nan') *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    write buf j;
    Buffer.contents buf

  let pp ppf j = Format.pp_print_string ppf (to_string j)
end

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let clock_ms = ref (fun () -> Unix.gettimeofday () *. 1000.)
let set_clock_ms f = clock_ms := f
let now_ms () = !clock_ms ()

(* The registry: one hashtable per metric kind, keyed by name.  Metric
   handles are the mutable cells themselves, so recording an event after
   the handle is obtained touches no hashtable. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type timer = {
  t_name : string;
  mutable t_count : int;
  mutable t_total : float;
  mutable t_min : float;
  mutable t_max : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters name c;
    c

let incr c = if !enabled_flag then c.c_value <- c.c_value + 1
let add c n = if !enabled_flag then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.add gauges name g;
    g

let set g v = if !enabled_flag then g.g_value <- v
let set_int g n = set g (float_of_int n)
let gauge_value g = g.g_value

let timer name =
  match Hashtbl.find_opt timers name with
  | Some t -> t
  | None ->
    let t =
      { t_name = name; t_count = 0; t_total = 0.; t_min = infinity;
        t_max = neg_infinity }
    in
    Hashtbl.add timers name t;
    t

let record_ms t ms =
  if !enabled_flag then begin
    t.t_count <- t.t_count + 1;
    t.t_total <- t.t_total +. ms;
    if ms < t.t_min then t.t_min <- ms;
    if ms > t.t_max then t.t_max <- ms
  end

let time t f =
  let t0 = now_ms () in
  Fun.protect ~finally:(fun () -> record_ms t (now_ms () -. t0)) f

type timer_stats = {
  count : int;
  total_ms : float;
  min_ms : float;
  max_ms : float;
  mean_ms : float;
}

(* Spans: a stack of open intervals.  Completing a span feeds the timer
   registered under the span's (label-decorated) name. *)

type span = { sp_timer : timer; sp_start : float; sp_id : int }

let span_stack : span list ref = ref []
let span_ids = ref 0
let span_depth () = List.length !span_stack

let span_name name labels =
  match labels with
  | None | Some [] -> name
  | Some kvs ->
    let rendered =
      String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
    in
    name ^ "{" ^ rendered ^ "}"

let enter_span ?labels name =
  Stdlib.incr span_ids;
  let sp =
    { sp_timer = timer (span_name name labels); sp_start = now_ms ();
      sp_id = !span_ids }
  in
  span_stack := sp :: !span_stack;
  sp

let exit_span sp =
  record_ms sp.sp_timer (now_ms () -. sp.sp_start);
  (* tolerate mis-paired exits: pop up to and including this span if it is
     still open, leave the stack alone otherwise *)
  let rec drop = function
    | s :: rest when s.sp_id = sp.sp_id -> Some rest
    | _ :: rest -> drop rest
    | [] -> None
  in
  match drop !span_stack with
  | Some rest -> span_stack := rest
  | None -> ()

let with_span ?labels name f =
  let sp = enter_span ?labels name in
  Fun.protect ~finally:(fun () -> exit_span sp) f

(* Snapshots *)

type metrics = {
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer_stats) list;
}

let sorted_of_tbl tbl value =
  Hashtbl.fold (fun name x acc -> (name, value x) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let stats_of_timer t =
  {
    count = t.t_count;
    total_ms = t.t_total;
    min_ms = (if t.t_count = 0 then 0. else t.t_min);
    max_ms = (if t.t_count = 0 then 0. else t.t_max);
    mean_ms = (if t.t_count = 0 then 0. else t.t_total /. float_of_int t.t_count);
  }

let snapshot () =
  {
    counters = sorted_of_tbl counters (fun c -> c.c_value);
    gauges = sorted_of_tbl gauges (fun g -> g.g_value);
    timers = sorted_of_tbl timers stats_of_timer;
  }

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ t ->
      t.t_count <- 0;
      t.t_total <- 0.;
      t.t_min <- infinity;
      t.t_max <- neg_infinity)
    timers;
  span_stack := []

let find_counter m name = List.assoc_opt name m.counters
let find_gauge m name = List.assoc_opt name m.gauges
let find_timer m name = List.assoc_opt name m.timers

let pp_metrics ppf m =
  let width =
    List.fold_left
      (fun w (name, _) -> max w (String.length name))
      0
      (m.counters @ List.map (fun (n, _) -> (n, 0)) m.gauges
      @ List.map (fun (n, _) -> (n, 0)) m.timers)
  in
  Format.fprintf ppf "== metrics ==@.";
  if m.counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-*s %d@." width name v)
      m.counters
  end;
  if m.gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-*s %g@." width name v)
      m.gauges
  end;
  if m.timers <> [] then begin
    Format.fprintf ppf "timers (ms):@.";
    List.iter
      (fun (name, s) ->
        Format.fprintf ppf "  %-*s count=%d total=%.3f mean=%.3f min=%.3f max=%.3f@."
          width name s.count s.total_ms s.mean_ms s.min_ms s.max_ms)
      m.timers
  end

let to_json m =
  let timer_json s =
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("total_ms", Json.Float s.total_ms);
        ("mean_ms", Json.Float s.mean_ms);
        ("min_ms", Json.Float s.min_ms);
        ("max_ms", Json.Float s.max_ms);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) m.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) m.gauges));
      ("timers", Json.Obj (List.map (fun (n, s) -> (n, timer_json s)) m.timers));
    ]

let json_string m = Json.to_string (to_json m)
