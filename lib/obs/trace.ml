module Json = Obs.Json

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* ids are process-unique across domains; a trace id is its root span's id *)
let next_id = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add next_id 1

type kind = Span | Instant

type event = {
  trace_id : int;
  span_id : int;
  parent : int option;
  name : string;
  labels : (string * string) list;
  start_ms : float;
  dur_ms : float;
  domain : int;
  kind : kind;
}

(* The ring: writers claim a slot index with one fetch-and-add and store an
   immutable event behind an option pointer — no locks on the record path.
   Readers copy the array; a racing write can make the copy miss (or see a
   newer event in) a slot, which is acceptable for a diagnostic stream.
   [set_capacity]/[clear] swap the whole ring and are not meant to race
   with writers. *)
type ring = { slots : event option array; widx : int Atomic.t }

let make_ring n = { slots = Array.make (max 1 n) None; widx = Atomic.make 0 }
let ring = ref (make_ring 8192)
let capacity () = Array.length !ring.slots
let set_capacity n = ring := make_ring n
let clear () = set_capacity (capacity ())

let record_event ev =
  let r = !ring in
  let i = Atomic.fetch_and_add r.widx 1 in
  r.slots.(i mod Array.length r.slots) <- Some ev

let dropped () =
  let r = !ring in
  max 0 (Atomic.get r.widx - Array.length r.slots)

let events () =
  let r = !ring in
  let cap = Array.length r.slots in
  let w = Atomic.get r.widx in
  let copy = Array.copy r.slots in
  let first = if w <= cap then 0 else w - cap in
  let acc = ref [] in
  for i = w - 1 downto first do
    match copy.(i mod cap) with None -> () | Some ev -> acc := ev :: !acc
  done;
  !acc

let events_of tid = List.filter (fun ev -> ev.trace_id = tid) (events ())

(* Domain-local state: the stack of open frames, plus an ambient
   (trace, parent span) installed by [with_context] that seeds root spans
   opened on this domain — how Batch worker domains join the
   coordinator's trace. *)

type frame = {
  f_id : int;
  f_trace : int;
  f_parent : int option;
  f_name : string;
  f_start : float;
  mutable f_labels : (string * string) list;
}

type context = int * int option (* trace id, parent span id *)

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let ambient_key : context option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let head () = match !(Domain.DLS.get stack_key) with [] -> None | f :: _ -> Some f
let current_trace () = Option.map (fun f -> f.f_trace) (head ())
let current_span () = Option.map (fun f -> f.f_id) (head ())

let capture () =
  if not !enabled_flag then None
  else
    match head () with
    | Some f -> Some (f.f_trace, Some f.f_id)
    | None -> !(Domain.DLS.get ambient_key)

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some _ when not !enabled_flag -> f ()
  | Some _ ->
    let cell = Domain.DLS.get ambient_key in
    let saved = !cell in
    cell := ctx;
    Fun.protect ~finally:(fun () -> cell := saved) f

let annotate k v =
  if !enabled_flag then
    match head () with
    | None -> ()
    | Some f -> f.f_labels <- (k, v) :: List.remove_assoc k f.f_labels

let label k = Option.bind (head ()) (fun f -> List.assoc_opt k f.f_labels)

let close_frame fr stack =
  let now = Obs.now_ms () in
  record_event
    {
      trace_id = fr.f_trace;
      span_id = fr.f_id;
      parent = fr.f_parent;
      name = fr.f_name;
      labels = List.rev fr.f_labels;
      start_ms = fr.f_start;
      dur_ms = now -. fr.f_start;
      domain = (Domain.self () :> int);
      kind = Span;
    };
  (* tolerate mis-paired exits, like Obs.exit_span *)
  let rec drop = function
    | f :: rest when f.f_id = fr.f_id -> Some rest
    | _ :: rest -> drop rest
    | [] -> None
  in
  match drop !stack with Some rest -> stack := rest | None -> ()

let run_frame ~trace ~parent ?(labels = []) name f =
  let stack = Domain.DLS.get stack_key in
  let fr =
    { f_id = (match trace with `Root id -> id | `Child _ -> fresh_id ());
      f_trace = (match trace with `Root id -> id | `Child t -> t);
      f_parent = parent; f_name = name; f_start = Obs.now_ms ();
      f_labels = labels }
  in
  stack := fr :: !stack;
  Fun.protect ~finally:(fun () -> close_frame fr stack) (fun () -> f fr)

let with_span ?labels name f =
  let timer = Obs.timer name in
  if not !enabled_flag then Obs.time timer f
  else
    Obs.time timer (fun () ->
        match head () with
        | Some parent ->
          run_frame ~trace:(`Child parent.f_trace) ~parent:(Some parent.f_id)
            ?labels name (fun _ -> f ())
        | None -> (
          match !(Domain.DLS.get ambient_key) with
          | Some (tid, psp) ->
            run_frame ~trace:(`Child tid) ~parent:psp ?labels name (fun _ ->
                f ())
          | None ->
            run_frame ~trace:(`Root (fresh_id ())) ~parent:None ?labels name
              (fun _ -> f ())))

let with_trace ?labels name f =
  let timer = Obs.timer name in
  if not !enabled_flag then Obs.time timer (fun () -> f (fresh_id ()))
  else
    Obs.time timer (fun () ->
        run_frame ~trace:(`Root (fresh_id ())) ~parent:None ?labels name
          (fun fr -> f fr.f_id))

let instant ?(labels = []) name =
  if !enabled_flag then begin
    let trace_id, parent =
      match capture () with
      | Some (tid, psp) -> (tid, psp)
      | None -> (fresh_id (), None)
    in
    record_event
      {
        trace_id;
        span_id = fresh_id ();
        parent;
        name;
        labels;
        start_ms = Obs.now_ms ();
        dur_ms = 0.;
        domain = (Domain.self () :> int);
        kind = Instant;
      }
  end

(* Exporters *)

let by_start evs =
  List.stable_sort (fun a b -> Float.compare a.start_ms b.start_ms) evs

let chrome evs =
  let t0 =
    List.fold_left (fun m ev -> Float.min m ev.start_ms) infinity evs
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let event_json ev =
    let args =
      ("trace_id", Json.Int ev.trace_id)
      :: ("span_id", Json.Int ev.span_id)
      :: (match ev.parent with
         | None -> []
         | Some p -> [ ("parent", Json.Int p) ])
      @ List.map (fun (k, v) -> (k, Json.String v)) ev.labels
    in
    Json.Obj
      ([
         ("name", Json.String ev.name);
         ("cat", Json.String "certdb");
         ("ph", Json.String (match ev.kind with Span -> "X" | Instant -> "i"));
         ("ts", Json.Float ((ev.start_ms -. t0) *. 1000.));
       ]
      @ (match ev.kind with
        | Span -> [ ("dur", Json.Float (ev.dur_ms *. 1000.)) ]
        | Instant -> [ ("s", Json.String "t") ])
      @ [
          ("pid", Json.Int 1);
          ("tid", Json.Int ev.domain);
          ("args", Json.Obj args);
        ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json (by_start evs)));
      ("displayTimeUnit", Json.String "ms");
    ]

(* headline labels hoisted to the top of a summary; numeric ones are
   rendered as JSON numbers when they parse *)
let headline_keys = [ "route"; "rung"; "attempts"; "cache"; "nodes"; "backtracks" ]
let numeric_keys = [ "attempts"; "nodes"; "backtracks" ]

let summary ?root tid =
  let evs = by_start (events_of tid) in
  let evs =
    match root with
    | None -> evs
    | Some rid ->
      (* subtree of [rid]: close over parent links *)
      let keep = Hashtbl.create 16 in
      Hashtbl.replace keep rid ();
      (* events are sorted by start; a parent starts before its children,
         so one forward pass reaches the whole subtree *)
      List.filter
        (fun ev ->
          ev.span_id = rid
          || match ev.parent with
             | Some p when Hashtbl.mem keep p ->
               Hashtbl.replace keep ev.span_id ();
               true
             | _ -> false)
        evs
  in
  let ids = Hashtbl.create 16 in
  List.iter (fun ev -> Hashtbl.replace ids ev.span_id ()) evs;
  let is_root ev =
    match ev.parent with None -> true | Some p -> not (Hashtbl.mem ids p)
  in
  let root_ev = List.find_opt is_root evs in
  let t0 = match root_ev with Some ev -> ev.start_ms | None -> 0. in
  let hoisted =
    List.filter_map
      (fun k ->
        List.find_map
          (fun ev ->
            Option.map
              (fun v ->
                let j =
                  if List.mem k numeric_keys then
                    match int_of_string_opt v with
                    | Some i -> Json.Int i
                    | None -> Json.String v
                  else Json.String v
                in
                (k, j))
              (List.assoc_opt k ev.labels))
          evs)
      headline_keys
  in
  let span_json ev =
    Json.Obj
      ([
         ("name", Json.String ev.name);
         ("id", Json.Int ev.span_id);
       ]
      @ (match ev.parent with
        | None -> []
        | Some p -> [ ("parent", Json.Int p) ])
      @ [
          ("start_ms", Json.Float (ev.start_ms -. t0));
          ("dur_ms", Json.Float ev.dur_ms);
        ]
      @
      match ev.labels with
      | [] -> []
      | kvs ->
        [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ])
  in
  Json.Obj
    ([ ("trace_id", Json.Int tid) ]
    @ (match root_ev with
      | None -> []
      | Some ev ->
        [ ("root", Json.String ev.name); ("wall_ms", Json.Float ev.dur_ms) ])
    @ hoisted
    @ [ ("spans", Json.List (List.map span_json evs)) ])
