(** Deterministic fault injection for resilience testing.

    A {e fault point} is a named site in a hot path ([Fault.hit "point"])
    that normally does nothing.  When a schedule is {e armed} — either
    programmatically with {!arm} or through the [CERTDB_FAULT] environment
    variable read at program start — the point raises {!Injected} on the
    hits selected by its trigger, simulating a crash exactly where the
    schedule says.  Everything is deterministic: triggers fire on hit
    indices (per-point counters), and the randomized trigger is a pure
    hash of [(seed, point, hit index)], so the same schedule always
    poisons the same operations.

    Points currently wired in:
    - ["csp.search.node"] — every {!Engine.Budget.tick_node}, i.e. each
      node of every hom search (the CSP engine, the relational fact
      search, [Gdm.Ghom], the enumeration loops of query answering).
      Budgeted searches convert the injected crash into
      [Unknown (Crashed _)]; unbudgeted shims let it escape.
    - ["csp.sat.conflict"] — every conflict of the CDCL SAT backend
      ([Certdb_sat.Solver.Cdcl]); the solver's budget wrapper converts
      the crash into [Unknown (Crashed "csp.sat.conflict")], which is
      what lets the resilient ladder cross to the CSP backend.
    - ["exchange.chase.step"] — each chase round of
      [Constraints.chase_budgeted].
    - ["csp.batch.task"] — before each task of an [Engine.Batch] worker;
      surfaces as a per-task [Error] through [Batch.map_result].
    - ["service.handler"] — before each request handled by a
      [Service.Supervisor] connection worker; the supervisor converts
      the crash into a structured [error] row
      ([service.server.crashed]), never a dead worker.
    - ["service.read"] / ["service.write"] — {e non-raising} wire
      points consulted through {!check} by the supervisor around each
      request read / response write; a selected hit perturbs the wire
      (drop / delay / truncate, cycling with the hit index) instead of
      crashing.

    [CERTDB_FAULT] grammar: comma-separated entries, each one of
    - [point@N] — fire on exactly the N-th hit of [point] (1-based, once);
    - [point%N] — fire on every N-th hit;
    - [point~SEED:PM] — seeded Bernoulli: fire a hit with probability
      PM/1000, decided by a hash of [(SEED, point, hit index)].

    Example: [CERTDB_FAULT="csp.batch.task@2,csp.search.node~7:25"]. *)

(** Raised by {!hit} when the armed schedule selects the current hit.
    The payload is the point name. *)
exception Injected of string

type trigger =
  | Nth of int  (** fire on exactly the n-th hit (1-based), once *)
  | Every of int  (** fire on every n-th hit *)
  | Seeded of { seed : int; per_mille : int }
      (** fire a given hit with probability [per_mille/1000], decided
          deterministically by hashing [(seed, point, hit index)] *)

(** [arm schedule] replaces the active schedule and zeroes every per-point
    hit count.  Arming with [[]] is {!disarm}. *)
val arm : (string * trigger) list -> unit

(** Parse the [CERTDB_FAULT] grammar and {!arm} the result. *)
val arm_from_string : string -> (unit, string) result

val disarm : unit -> unit
val armed : unit -> bool

(** [hit point] accounts one hit of [point].
    @raise Injected when the armed schedule selects this hit.  A no-op
    (one branch) when nothing is armed. *)
val hit : string -> unit

(** [check point] accounts one hit of [point] like {!hit} but never
    raises: it returns the 1-based hit index when the armed schedule
    selects this hit (accounted as an injection), [None] otherwise.
    For sites where the reaction to a fault is something other than a
    crash — the service wire layer drops, delays or truncates instead
    of raising. *)
val check : string -> int option

(** [hit_k point k] evaluates the schedule against the explicit hit
    index [k] (1-based) instead of the per-point counter.  Use at points
    where work is distributed across domains — keyed to the work item,
    the schedule poisons the same items under any parallelism, where the
    shared counter of {!hit} would depend on scheduling order.
    @raise Injected when the schedule selects index [k]. *)
val hit_k : string -> int -> unit

(** [with_armed schedule f] runs [f] under [schedule] and restores the
    previously armed schedule afterwards, even if [f] raises. *)
val with_armed : (string * trigger) list -> (unit -> 'a) -> 'a
