(** Zero-dependency observability: a process-wide registry of named
    counters, gauges and histogram timers, plus lightweight nested spans
    (clock start/stop with labels).  Everything the solver, hom-search,
    chase and query-evaluation hot paths want to count lives here, and
    [snapshot] turns the registry into an immutable value with
    pretty-printing and hand-rolled JSON rendering (no opam deps beyond
    the [unix] library shipped with the compiler, used for the clock).

    Conventions: metric names are dot-separated lowercase paths grouped
    by subsystem ([csp.solver.decisions], [rel.hom.search_nodes],
    [exchange.chase.steps], ...).  Counters count discrete events, gauges
    record the last observed size, timers aggregate span durations in
    milliseconds.  Instrumentation is on by default and costs one
    hashtable-free atomic increment per event; [set_enabled false] turns
    every recording operation into a no-op.

    The registry is domain-safe: counters are atomic (increments from the
    [Csp.Engine.Batch] worker domains never lose events, so per-domain
    counters add up in the final snapshot), registry creation and timer
    samples are mutex-guarded, and the span stack is domain-local. *)

(** Minimal JSON document model with rendering and parsing — enough for
    the metrics snapshot, the bench trajectory files and the [certdb
    batch] JSONL task format. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (** non-finite floats render as [null] *)
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  exception Parse_error of string

  (** [of_string s] parses one JSON document.  Numbers without a fraction
      or exponent become [Int], all others [Float].
      @raise Parse_error on malformed input. *)
  val of_string : string -> t

  (** [member key j] is the value of field [key] when [j] is an [Obj]
      containing it. *)
  val member : string -> t -> t option
end

(** {1 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters} *)

type counter

(** [counter name] returns the registered counter for [name], creating it
    at zero on first use.  The registry is memoized: the same name always
    yields the same counter. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit

(** [set_int g n] is [set g (float_of_int n)]. *)
val set_int : gauge -> int -> unit

val gauge_value : gauge -> float

(** {1 Timers} *)

type timer

val timer : string -> timer

(** [record_ms t ms] adds one sample of [ms] milliseconds to [t]. *)
val record_ms : timer -> float -> unit

(** [time t f] runs [f ()] and records its wall-clock duration in [t].
    The sample is recorded even when [f] raises. *)
val time : timer -> (unit -> 'a) -> 'a

type timer_stats = {
  count : int;
  total_ms : float;
  min_ms : float;
  max_ms : float;
  mean_ms : float;
  p50_ms : float;
      (** median estimate from fixed log-scale buckets (64 buckets, ratio
          [sqrt 2] from 1 µs): bounded memory, worst-case relative error
          [sqrt 2], clamped into the exact observed [min, max] *)
  p95_ms : float;  (** 95th-percentile estimate, same construction *)
  p99_ms : float;  (** 99th-percentile estimate, same construction *)
}

(** {1 Spans}

    A span is a named clock interval; spans nest, and each completed span
    records its duration into the timer registered under the span's name
    (with rendered [labels] appended as [name{k=v,...}]). *)

type span

val enter_span : ?labels:(string * string) list -> string -> span
val exit_span : span -> unit

(** [with_span name f] wraps [f] in a span; the duration is recorded even
    when [f] raises. *)
val with_span : ?labels:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Current nesting depth of open spans (0 outside any span). *)
val span_depth : unit -> int

(** {1 Snapshots} *)

type metrics = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  timers : (string * timer_stats) list;  (** sorted by name *)
}

(** Immutable copy of the whole registry. *)
val snapshot : unit -> metrics

(** Zero every counter and gauge and clear every timer (registered names
    survive, so a later [snapshot] reports them at zero). *)
val reset : unit -> unit

val find_counter : metrics -> string -> int option
val find_gauge : metrics -> string -> float option
val find_timer : metrics -> string -> timer_stats option

(** Human-readable snapshot (one metric per line, aligned). *)
val pp_metrics : Format.formatter -> metrics -> unit

val to_json : metrics -> Json.t
val json_string : metrics -> string

(** The clock used by timers and spans, as milliseconds since some epoch.
    Defaults to [Unix.gettimeofday]-based wall clock; tests may install a
    deterministic one. *)
val set_clock_ms : (unit -> float) -> unit

val now_ms : unit -> float
