(** OpenMetrics text exposition of an {!Obs} snapshot, plus a lint used
    by tests and CI to keep the exposition valid.

    Name mapping: dots become underscores and every metric is prefixed
    [certdb_] ([csp.solver.decisions] → [certdb_csp_solver_decisions]);
    span-label decorations in registry names ([name{k=v,...}]) become
    OpenMetrics labels.  Counters expose as [counter] families with the
    mandatory [_total] suffix, gauges as [gauge], timers as [summary]
    families in milliseconds ([quantile="0.5"|"0.95"|"0.99"] plus
    [_count]/[_sum]).  The exposition ends with [# EOF] as the standard
    requires. *)

val content_type : string

(** Render a snapshot as an OpenMetrics text exposition. *)
val expose : Obs.metrics -> string

(** [lint s] checks that [s] is a plausible OpenMetrics exposition:
    valid metric and label names, one [# TYPE] per family declared before
    its samples, no duplicate family declarations, counter samples ending
    in [_total], parseable sample values, and a final [# EOF].  Returns
    [Error msg] naming the first offending line. *)
val lint : string -> (unit, string) result
