(* Tests for the Theorem 4/7 extensions: the tree-class structural glb
   plugged into ∧K, certain data answers, the relational existential
   bridge, and DOT rendering. *)

open Certdb_values
open Certdb_csp
open Certdb_gdm

let check = Alcotest.(check bool)
let c i = Value.int i

(* --- tree class --- *)
let tree_structure edges labels =
  let s =
    List.fold_left
      (fun s (v, l) -> Structure.add_node ~label:l s v)
      Structure.empty labels
  in
  List.fold_left (fun s (x, y) -> Structure.add_edge s "child" x y) s edges

let test_is_tree () =
  let t = tree_structure [ (0, 1); (0, 2) ] [ (0, "r"); (1, "a"); (2, "b") ] in
  check "star is a tree" true (Tree_class.is_tree t);
  let cycle = tree_structure [ (0, 1); (1, 0) ] [ (0, "r"); (1, "a") ] in
  check "cycle is not" false (Tree_class.is_tree cycle);
  let forest =
    tree_structure [] [ (0, "r"); (1, "a") ]
  in
  check "forest is not" false (Tree_class.is_tree forest);
  check "empty is not" false (Tree_class.is_tree Structure.empty)

let test_tree_class_glb_matches_tree_glb () =
  let open Certdb_xml in
  for seed = 0 to 9 do
    let mk s =
      let t =
        Tree.random ~seed:s
          ~labels:[ ("r", 1); ("a", 1); ("b", 1) ]
          ~max_depth:3 ~max_children:2 ~null_prob:0.3 ~domain:2 ()
      in
      { t with Tree.label = "r" }
    in
    let t1 = mk seed and t2 = mk (seed + 800) in
    (* ∧K through the generalized construction *)
    let via_gdm =
      Gglb.glb_in_class ~class_glb:Tree_class.class_glb (Tree.to_gdb t1)
        (Tree.to_gdb t2)
    in
    (* direct tree construction *)
    match Tree_glb.glb t1 t2 with
    | None -> Alcotest.fail "tree glb must exist (equal root labels)"
    | Some g ->
      check
        (Printf.sprintf "seed %d: ∧K ~ tree glb" seed)
        true
        (Gordering.equiv via_gdm (Tree.to_gdb g))
  done

let test_tree_class_glb_errors () =
  let t1 = tree_structure [] [ (0, "a") ] in
  let t2 = tree_structure [] [ (0, "b") ] in
  Alcotest.check_raises "root labels differ"
    (Invalid_argument "Tree_class.glb: root labels differ") (fun () ->
      ignore (Tree_class.glb t1 t2))

(* --- certain data answers --- *)
let test_certain_data_answers () =
  let n = Value.fresh_null () in
  let db =
    Gdb.make
      ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ n ]); (2, "b", [ c 1 ]) ]
      ~tuples:[ ("E", [ [ 0; 2 ]; [ 1; 2 ] ]) ]
  in
  let f = Logic.Rel ("E", [ "x"; "y" ]) in
  let answers =
    Query_answering.certain_data_answers ~out:[ ("x", 1); ("y", 1) ] db f
  in
  (* (1,1) is certain; (⊥,1) is dropped *)
  check "constant pair kept" true (List.mem [ c 1; c 1 ] answers);
  Alcotest.(check int) "only one" 1 (List.length answers)

let test_certain_data_answers_rejects_negation () =
  let db = Gdb.make ~nodes:[ (0, "a", [ c 1 ]) ] ~tuples:[] in
  Alcotest.check_raises "not ep"
    (Invalid_argument
       "Query_answering.certain_data_answers: not existential positive")
    (fun () ->
      ignore
        (Query_answering.certain_data_answers ~out:[ ("x", 1) ] db
           (Logic.Not (Logic.Label ("a", "x")))))

(* --- relational existential bridge --- *)
let test_relational_certain_existential () =
  let open Certdb_relational in
  let open Certdb_query in
  let v = Fo.var in
  let n1 = Value.fresh_null () and n2 = Value.fresh_null () in
  (* the inequality query of Prop. 1: not certain on {R(⊥1), R(⊥2)} *)
  let d = Instance.of_list [ ("R", [ [ n1 ]; [ n2 ] ]) ] in
  let q =
    Fo.Exists
      ( [ "x"; "y" ],
        Fo.conj
          [ Fo.atom "R" [ v "x" ]; Fo.atom "R" [ v "y" ];
            Fo.Not (Fo.Eq (v "x", v "y")) ] )
  in
  check "not certain" false (Certain.certain_existential q d);
  (* but certain on {R(1), R(⊥)} where ⊥ could still equal 1... no:
     h(⊥)=1 collapses both facts — still refuted *)
  let d2 = Instance.of_list [ ("R", [ [ Value.int 1 ]; [ n1 ] ]) ] in
  check "still not certain" false (Certain.certain_existential q d2);
  (* with two distinct constants it is certain *)
  let d3 = Instance.of_list [ ("R", [ [ Value.int 1 ]; [ Value.int 2 ] ]) ] in
  check "certain on constants" true (Certain.certain_existential q d3);
  Alcotest.check_raises "universal rejected"
    (Invalid_argument "Certain.certain_existential: not an existential sentence")
    (fun () ->
      ignore
        (Certain.certain_existential
           (Fo.Forall ([ "x" ], Fo.atom "R" [ v "x" ]))
           d))

(* --- dot --- *)
let test_dot_rendering () =
  let db =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "b", []) ]
      ~tuples:[ ("E", [ [ 0; 1 ] ]) ]
  in
  let dot = Dot.of_gdb db in
  check "digraph header" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check "node with data" true (contains "a(1)" dot);
  check "edge" true (contains "n0 -> n1" dot);
  let sdot = Dot.of_structure (Gdb.structure db) in
  check "structure render" true (contains "n0 -> n1" sdot)

let () =
  Alcotest.run "theorem7-extras"
    [
      ( "tree-class",
        [
          Alcotest.test_case "is_tree" `Quick test_is_tree;
          Alcotest.test_case "∧K = tree glb" `Quick
            test_tree_class_glb_matches_tree_glb;
          Alcotest.test_case "errors" `Quick test_tree_class_glb_errors;
        ] );
      ( "data-answers",
        [
          Alcotest.test_case "certain data" `Quick test_certain_data_answers;
          Alcotest.test_case "rejects negation" `Quick
            test_certain_data_answers_rejects_negation;
        ] );
      ( "relational-existential",
        [
          Alcotest.test_case "bridge" `Quick test_relational_certain_existential;
        ] );
      ( "dot",
        [ Alcotest.test_case "rendering" `Quick test_dot_rendering ] );
    ]
