(* The Galois-connection laws behind Theorem 1, the Prop. 2 corollary
   certain(Q,D) = ∧{Q(D') | D ⊑ D'}, and the Prop. 8 remark about the
   equivalent CWA characterizations. *)

open Certdb_values
open Certdb_relational
open Certdb_query

let check = Alcotest.(check bool)
let c i = Value.int i

module Rel = struct
  type t = Instance.t

  let leq = Ordering.leq
end

module G = Certdb_order.Galois.Make (Rel)

let random_pool ~seed ~size =
  List.init size (fun i ->
      Codd.random_naive ~seed:(seed + i) ~schema:[ ("R", 2) ] ~facts:2
        ~null_prob:0.4 ~domain:2 ~null_pool:1 ())

let test_galois_laws () =
  List.iter
    (fun seed ->
      let pool = random_pool ~seed ~size:7 in
      check (Printf.sprintf "seed %d" seed) true (G.laws_hold ~pool))
    [ 0; 40; 80 ]

let test_closure_vs_glb () =
  (* Theorem 1 through the Galois view: the glb of a pair is a
     max-description *)
  for seed = 0 to 5 do
    let pool = random_pool ~seed:(seed * 17) ~size:6 in
    match pool with
    | x :: y :: _ ->
      let g = Glb.glb x y in
      let pool = g :: pool in
      check
        (Printf.sprintf "seed %d: glb is max-description" seed)
        true
        (G.is_max_description g [ x; y ] ~pool)
    | _ -> ()
  done

let test_model_classes_closed () =
  let pool = random_pool ~seed:300 ~size:6 in
  List.iter
    (fun x ->
      check "Mod(x) is closed" true (G.closed (G.models [ x ] ~pool) ~pool))
    pool

(* certain(Q,D) = ∧ { Q(D') | D ⊑ D' } — the observation after Prop. 2:
   running Q naively over all more-informative *incomplete* databases and
   intersecting their complete parts gives certain answers *)
let test_certain_via_extensions () =
  let v = Fo.var in
  let q = Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ] in
  let u = Ucq.make [ q ] in
  for seed = 0 to 5 do
    let d =
      Codd.random_naive ~seed:(seed + 900) ~schema:[ ("R", 2) ] ~facts:2
        ~null_prob:0.5 ~domain:2 ~null_pool:1 ()
    in
    (* sample of ↑d: d itself, its completions, a superset *)
    let ups =
      d
      :: List.map snd (Semantics.sample_completions d)
      @ [ Instance.union d (Instance.of_list [ ("R", [ [ c 77; c 78 ] ]) ]) ]
    in
    let answers = List.map (fun d' -> Ucq.answers u d') ups in
    (* intersect the complete tuples across all answers *)
    let meet =
      match List.map Certain.drop_null_tuples answers with
      | [] -> Instance.empty
      | a :: rest ->
        List.fold_left
          (fun acc a' -> Instance.filter (fun f -> Instance.mem a' f) acc)
          a rest
    in
    check
      (Printf.sprintf "seed %d: certain = meet over extensions" seed)
      true
      (Instance.equal meet (Certain.naive_eval_ucq u d))
  done

(* Prop. 8 remark: over Codd databases with Hall's condition on ⪯⁻¹, the
   hoare direction alone already gives ⊑cwa; so (hoare + Hall) and
   (plotkin + Hall) coincide *)
let test_prop8_remark () =
  for seed = 0 to 30 do
    let d =
      Codd.random ~seed:(seed * 7) ~schema:[ ("R", 2) ] ~facts:3
        ~null_prob:0.5 ~domain:2 ()
    in
    let d' =
      Codd.random ~seed:((seed * 7) + 1) ~schema:[ ("R", 2) ] ~facts:3
        ~null_prob:0.0 ~domain:2 ()
    in
    let hall = Ordering.hall_condition d d' in
    let hoare = Ordering.hoare_leq d d' in
    let plotkin = Ordering.plotkin_leq d d' in
    if hall then
      check
        (Printf.sprintf "seed %d: under Hall, hoare = plotkin as CWA tests" seed)
        (hoare && hall = Ordering.cwa_leq d d')
        (plotkin && hall = Ordering.cwa_leq d d')
  done

(* parser roundtrips as properties *)
let prop_instance_roundtrip =
  QCheck.Test.make ~count:40 ~name:"instance print/parse roundtrip"
    (QCheck.int_range 0 5000) (fun seed ->
      let d =
        Codd.random_naive ~seed ~schema:[ ("R", 2); ("S", 1) ] ~facts:4
          ~null_prob:0.4 ~domain:3 ~null_pool:2 ()
      in
      let d', _ = Parse.instance (Parse.to_string d) in
      Ordering.equiv d d')

let prop_tree_roundtrip =
  QCheck.Test.make ~count:40 ~name:"tree print/parse roundtrip"
    (QCheck.int_range 0 5000) (fun seed ->
      let t =
        Certdb_xml.Tree.random ~seed
          ~labels:[ ("r", 0); ("a", 1); ("b", 2) ]
          ~max_depth:3 ~max_children:3 ~null_prob:0.3 ~domain:3 ()
      in
      let t', _ =
        Certdb_xml.Tree_parse.tree (Certdb_xml.Tree_parse.to_string t)
      in
      Certdb_xml.Tree_hom.equiv t t')

let () =
  Alcotest.run "galois-remarks"
    [
      ( "galois",
        [
          Alcotest.test_case "laws" `Quick test_galois_laws;
          Alcotest.test_case "glb = max-description" `Quick test_closure_vs_glb;
          Alcotest.test_case "model classes closed" `Quick
            test_model_classes_closed;
        ] );
      ( "remarks",
        [
          Alcotest.test_case "certain via extensions" `Quick
            test_certain_via_extensions;
          Alcotest.test_case "prop8 remark" `Quick test_prop8_remark;
        ] );
      ( "roundtrips",
        List.map QCheck_alcotest.to_alcotest
          [ prop_instance_roundtrip; prop_tree_roundtrip ] );
    ]
