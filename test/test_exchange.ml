(* Tests for data exchange (Section 5.3, Theorem 5): mappings, solutions,
   canonical universal solutions as lubs, core solutions. *)

open Certdb_values
open Certdb_relational
open Certdb_gdm
open Certdb_exchange

let check = Alcotest.(check bool)
let c i = Value.int i
let nx = Value.null 5001
let ny = Value.null 5002
let nu = Value.null 5003
let nz = Value.null 5004

(* The paper's rule: S(x,y,u) → T(x,z), T(z,y). *)
let paper_rule =
  Mapping.relational_rule
    ~body:(Instance.of_list [ ("S", [ [ nx; ny; nu ] ]) ])
    ~head:(Instance.of_list [ ("T", [ [ nx; nz ]; [ nz; ny ] ]) ])

let source =
  Instance.of_list [ ("S", [ [ c 1; c 2; c 3 ]; [ c 4; c 5; c 6 ] ]) ]

let gdm_source = Encode.of_instance source

let test_triggers () =
  Alcotest.(check int) "two triggers" 2
    (List.length (Mapping.triggers paper_rule gdm_source))

let test_m_of_d () =
  let pieces = Mapping.m_of_d [ paper_rule ] gdm_source in
  Alcotest.(check int) "two pieces" 2 (List.length pieces);
  List.iter
    (fun p ->
      Alcotest.(check int) "piece has two facts" 2 (Gdb.size p);
      (* each piece has exactly one null (its own z) *)
      Alcotest.(check int) "one fresh null" 1
        (Value.Set.cardinal (Gdb.nulls p)))
    pieces;
  (* nulls are renamed apart between pieces *)
  match pieces with
  | [ p1; p2 ] ->
    check "disjoint nulls" true
      (Value.Set.is_empty (Value.Set.inter (Gdb.nulls p1) (Gdb.nulls p2)))
  | _ -> Alcotest.fail "expected two pieces"

let test_canonical_is_solution () =
  let canonical = Universal.canonical_solution [ paper_rule ] gdm_source in
  check "solution" true
    (Solution.is_solution [ paper_rule ] ~source:gdm_source canonical);
  Alcotest.(check int) "four facts" 4 (Gdb.size canonical)

let test_canonical_is_universal () =
  let canonical = Universal.canonical_solution [ paper_rule ] gdm_source in
  let solutions =
    Solution.random_solutions [ paper_rule ] ~source:gdm_source ~seed:5
      ~count:4
  in
  List.iter
    (fun s ->
      check "sampled solutions really solve" true
        (Solution.is_solution [ paper_rule ] ~source:gdm_source s))
    solutions;
  check "universal vs sample" true
    (Solution.is_universal_vs [ paper_rule ] ~source:gdm_source canonical
       ~solutions)

let test_non_solution_detected () =
  let junk = Encode.of_instance (Instance.of_list [ ("T", [ [ c 1; c 1 ] ]) ]) in
  check "junk is not a solution" false
    (Solution.is_solution [ paper_rule ] ~source:gdm_source junk);
  check "empty is not a solution" false
    (Solution.is_solution [ paper_rule ] ~source:gdm_source Gdb.empty)

let test_frontier_constrains_solution () =
  (* a candidate where T-chains don't respect the frontier values is not a
     solution *)
  let bad =
    Encode.of_instance
      (Instance.of_list [ ("T", [ [ c 1; c 9 ]; [ c 9; c 9 ] ]) ])
  in
  check "wrong endpoints rejected" false
    (Solution.is_solution [ paper_rule ] ~source:gdm_source bad);
  let good =
    Encode.of_instance
      (Instance.of_list
         [ ("T", [ [ c 1; c 9 ]; [ c 9; c 2 ]; [ c 4; c 9 ]; [ c 9; c 5 ] ]) ])
  in
  check "correct chains accepted" true
    (Solution.is_solution [ paper_rule ] ~source:gdm_source good)

let test_chase_relational () =
  let solution = Universal.chase_relational [ paper_rule ] source in
  Alcotest.(check int) "chase emits 4 facts" 4 (Instance.cardinal solution);
  (* certain answers over the exchanged data: T(1,z) ∧ T(z,2) certain *)
  let q =
    Certdb_query.Cq.boolean
      [ ("T", [ Certdb_query.Fo.Val (c 1); Certdb_query.Fo.Var "z" ]);
        ("T", [ Certdb_query.Fo.Var "z"; Certdb_query.Fo.Val (c 2) ]) ]
  in
  check "certain over solution" true
    (Certdb_query.Certain.certain_cq_via_naive q solution)

let test_core_solution () =
  (* duplicate source facts yield a redundant canonical solution; the core
     solution folds the duplicates *)
  let src =
    Instance.of_list [ ("S", [ [ c 1; c 2; c 3 ]; [ c 1; c 2; c 9 ] ]) ]
  in
  let canonical = Universal.chase_relational [ paper_rule ] src in
  Alcotest.(check int) "canonical has 4 facts" 4 (Instance.cardinal canonical);
  let core = Universal.core_solution_relational [ paper_rule ] (Encode.of_instance src) in
  Alcotest.(check int) "core has 2 facts" 2 (Instance.cardinal core);
  check "core equivalent to canonical" true (Ordering.equiv core canonical)

let test_multi_rule_mapping () =
  let copy_rule =
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("S", [ [ nx; ny; nu ] ]) ])
      ~head:(Instance.of_list [ ("U", [ [ nx ] ]) ])
  in
  let m = [ paper_rule; copy_rule ] in
  let solution = Universal.chase_relational m source in
  check "has U fact" true
    (Instance.mem solution (Instance.fact "U" [ c 1 ]));
  check "is solution" true
    (Solution.is_solution m ~source:gdm_source (Encode.of_instance solution))

let test_incomplete_source () =
  (* sources with nulls also chase correctly: frontier nulls flow through *)
  let src = Instance.of_list [ ("S", [ [ nx; c 2; c 3 ] ]) ] in
  let solution = Universal.chase_relational [ paper_rule ] src in
  Alcotest.(check int) "two facts" 2 (Instance.cardinal solution);
  (* the null from the source survives in the target *)
  check "source null present" true
    (not (Value.Set.is_empty (Instance.nulls solution)))

let () =
  Alcotest.run "exchange"
    [
      ( "mapping",
        [
          Alcotest.test_case "triggers" `Quick test_triggers;
          Alcotest.test_case "m_of_d" `Quick test_m_of_d;
        ] );
      ( "solutions",
        [
          Alcotest.test_case "canonical solves" `Quick test_canonical_is_solution;
          Alcotest.test_case "canonical universal" `Quick test_canonical_is_universal;
          Alcotest.test_case "non-solutions" `Quick test_non_solution_detected;
          Alcotest.test_case "frontier" `Quick test_frontier_constrains_solution;
        ] );
      ( "chase",
        [
          Alcotest.test_case "relational chase" `Quick test_chase_relational;
          Alcotest.test_case "core solution" `Quick test_core_solution;
          Alcotest.test_case "multi-rule" `Quick test_multi_rule_mapping;
          Alcotest.test_case "incomplete source" `Quick test_incomplete_source;
        ] );
    ]
