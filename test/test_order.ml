(* Tests for the abstract ordered framework of Section 3, instantiated on a
   small hand-built domain and on divisibility, where glbs are gcds. *)

module Div = struct
  type t = int

  (* x ⊑ y iff x divides y: "less informative" = more divisors possible *)
  let leq x y = y mod x = 0
end

module P = Certdb_order.Preorder.Make (Div)

let pool_60 = [ 1; 2; 3; 4; 5; 6; 10; 12; 15; 20; 30; 60 ]
let check = Alcotest.(check bool)

let test_equiv () =
  check "reflexive" true (P.equiv 6 6);
  check "2 and 3 not equiv" false (P.equiv 2 3)

let test_bounds () =
  check "2 lower bound of {4,6}" true (P.is_lower_bound 2 [ 4; 6 ]);
  check "4 not lower bound of {4,6}" false (P.is_lower_bound 4 [ 4; 6 ]);
  check "12 upper bound of {4,6}" true (P.is_upper_bound 12 [ 4; 6 ]);
  Alcotest.(check (list int))
    "lower bounds of {12, 20} in pool" [ 1; 2; 4 ]
    (List.sort compare (P.lower_bounds_in_pool [ 12; 20 ] ~pool:pool_60))

let test_glb () =
  check "gcd(12,20)=4 is glb" true (P.is_glb 4 [ 12; 20 ] ~pool:pool_60);
  check "2 is not glb" false (P.is_glb 2 [ 12; 20 ] ~pool:pool_60);
  Alcotest.(check (option int))
    "glb found" (Some 4)
    (P.glb_in_pool [ 12; 20 ] ~pool:pool_60);
  Alcotest.(check (option int))
    "lub found" (Some 60)
    (P.lub_in_pool [ 12; 20 ] ~pool:pool_60)

let test_no_glb_in_pool () =
  (* pool without 4: {12,20} has lower bounds 1,2 — 2 is greatest *)
  let pool = List.filter (fun x -> x <> 4) pool_60 in
  Alcotest.(check (option int))
    "glb degrades" (Some 2)
    (P.glb_in_pool [ 12; 20 ] ~pool);
  (* remove comparability: lower bounds {2,3} of {6} in a tiny pool with no
     top element below 6 — construct antichain case with {12,18}: divisors
     here are 2,3 only -> no glb *)
  let pool' = [ 2; 3; 12; 18 ] in
  Alcotest.(check (option int))
    "no glb with incomparable maximal lower bounds" None
    (P.glb_in_pool [ 12; 18 ] ~pool:pool')

let test_chains_antichains () =
  check "chain" true (P.is_chain [ 1; 2; 4; 12; 60 ]);
  check "not chain" false (P.is_chain [ 2; 3 ]);
  check "antichain" true (P.is_antichain [ 4; 6; 10 ]);
  check "not antichain" false (P.is_antichain [ 2; 4 ])

let test_maximal_minimal () =
  Alcotest.(check (list int))
    "maximal" [ 12; 20 ]
    (List.sort compare (P.maximal [ 2; 4; 12; 20 ]));
  Alcotest.(check (list int))
    "minimal" [ 2 ]
    (List.sort compare (P.minimal [ 2; 4; 12; 20 ]))

let test_basis () =
  (* {2} is a basis of {2,4,8}: ↑{2} = ↑{2,4,8}? No: ↑{2,4,8} ∋ 4 but from
     basis def in the paper B ⊆ X with ↑B = ↑X — here ↑{2} ⊇ ↑{2,4,8};
     equality needs every element of ↑2 to dominate some element of X,
     which holds as 2 ∈ X.  So yes. *)
  check "basis" true (P.is_basis [ 2 ] [ 2; 4; 8 ]);
  check "not basis" false (P.is_basis [ 4 ] [ 2; 4; 8 ])

let test_monotone () =
  check "times 2 monotone" true
    (P.monotone (fun x -> x * 2) ~leq':Div.leq ~on:pool_60);
  check "61 - x not monotone" false
    (P.monotone (fun x -> 61 - x) ~leq':Div.leq ~on:pool_60)

(* Database domain with complete objects: integers paired with a
   completeness flag is artificial; instead use finite sets of ints where
   "complete" means only even numbers — πcpl keeps the evens.  Ordering:
   superset inclusion on the evens and subset on odds is contrived; simpler:
   model naïve-table-like behaviour with (complete elements, null count). *)
module Toy = struct
  (* (s, k): s = set of certain facts, k = number of unresolved nulls.
     (s,k) ⊑ (t,l) iff s ⊆ t and (k = 0 implies l = 0 and s = t)...
     keep it simple: ⊑ is s ⊆ t; complete = k = 0; πcpl = (s, 0). *)
  type t = int list * int

  let leq (s, _) (t, _) = List.for_all (fun x -> List.mem x t) s
  let is_complete (_, k) = k = 0
  let pi_cpl (s, _) = (s, 0)
end

module D = Certdb_order.Domain.Make (Toy)

let toy_pool : Toy.t list =
  [ ([], 0); ([ 1 ], 0); ([ 2 ], 0); ([ 1; 2 ], 0); ([ 1 ], 1); ([ 1; 2 ], 1) ]

let test_retraction_laws () =
  check "laws hold" true (D.retraction_laws ~pool:toy_pool)

let test_models_theory () =
  let m = D.models ([ 1 ], 0) ~pool:toy_pool in
  check "models include supersets" true
    (List.exists (fun (s, _) -> List.mem 2 s && List.mem 1 s) m);
  let th = D.theory ([ 1 ], 0) ~pool:toy_pool in
  check "theory includes empty" true (List.exists (fun (s, _) -> s = []) th)

(* Theorem 1 on the toy pool: max-descriptions coincide with glbs. *)
let test_theorem1 () =
  check "theorem 1" true
    (D.theorem1_agrees [ ([ 1 ], 0); ([ 1; 2 ], 0) ] ~pool:toy_pool);
  check "theorem 1 (pair 2)" true
    (D.theorem1_agrees [ ([ 1 ], 1); ([ 2 ], 0) ] ~pool:toy_pool)

let test_certain_cpl () =
  (* query: identity; completions of ([1],1) sampled as complete supersets *)
  let completions = [ ([ 1 ], 0); ([ 1; 2 ], 0) ] in
  match
    D.certain_cpl (fun x -> x) ([ 1 ], 1) ~completions ~pool:toy_pool
  with
  | Some (s, _) -> Alcotest.(check (list int)) "glb of completions" [ 1 ] s
  | None -> Alcotest.fail "expected a glb"

let test_naive_evaluation_ok () =
  let completions = [ ([ 1 ], 0); ([ 1; 2 ], 0) ] in
  check "identity query naive-evaluates" true
    (D.naive_evaluation_ok (fun x -> x) ([ 1 ], 1) ~completions ~pool:toy_pool)

let test_corollary1 () =
  check "corollary 1 for identity" true
    (D.corollary1 (fun x -> x) ([ 1 ], 0) ~pool:toy_pool)

let () =
  Alcotest.run "order"
    [
      ( "preorder",
        [
          Alcotest.test_case "equiv" `Quick test_equiv;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "glb/lub" `Quick test_glb;
          Alcotest.test_case "missing glb" `Quick test_no_glb_in_pool;
          Alcotest.test_case "chains" `Quick test_chains_antichains;
          Alcotest.test_case "maximal/minimal" `Quick test_maximal_minimal;
          Alcotest.test_case "basis" `Quick test_basis;
          Alcotest.test_case "monotone" `Quick test_monotone;
        ] );
      ( "domain",
        [
          Alcotest.test_case "retraction laws" `Quick test_retraction_laws;
          Alcotest.test_case "models/theory" `Quick test_models_theory;
          Alcotest.test_case "theorem 1" `Quick test_theorem1;
          Alcotest.test_case "certain_cpl" `Quick test_certain_cpl;
          Alcotest.test_case "naive evaluation" `Quick test_naive_evaluation_ok;
          Alcotest.test_case "corollary 1" `Quick test_corollary1;
        ] );
    ]
