(* Csp.Resilient: the retry/escalation ladder never corrupts definitive
   answers, recovers from every Unknown reason it can (budget, crash),
   stops where it must (cancel), and the graded certain-answer layers
   built on it degrade soundly against the unlimited oracles. *)

open Certdb_csp
open Certdb_values
module Obs = Certdb_obs.Obs
module Fault = Certdb_obs.Fault

let check = Alcotest.(check bool)

let triangle =
  Structure.make
    ~nodes:[ (0, None); (1, None); (2, None) ]
    ~tuples:[ ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ]) ]

let clique n =
  let nodes = List.init n (fun v -> (v, None)) in
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a <> b then Some [| a; b |] else None)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  Structure.make ~nodes ~tuples:[ ("E", edges) ]

let random_structure seed =
  let st = Random.State.make [| seed |] in
  let n = 2 + Random.State.int st 4 in
  let nodes = List.init n (fun v -> (v, None)) in
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Random.State.float st 1.0 < 0.35 then edges := [| a; b |] :: !edges
    done
  done;
  Structure.make ~nodes ~tuples:[ ("E", !edges) ]

(* --- the ladder invariant: definitive answers agree with the naive
   oracle under any (tight) budget and any escalation policy --- *)

let qcheck_ladder_sound =
  QCheck.Test.make ~count:200
    ~name:"Resilient.solve definitive answers agree with find_hom_naive"
    QCheck.(triple (int_range 0 5000) (int_range 0 5000) (int_range 1 8))
    (fun (s1, s2, nodes) ->
      let source = random_structure s1 and target = random_structure s2 in
      let naive = Solver.find_hom_naive ~source ~target () in
      let config =
        Engine.Config.make ~limits:(Engine.Limits.make ~nodes ()) ()
      in
      let r = Resilient.solve ~config ~source ~target () in
      match r.Resilient.outcome with
      | Engine.Sat h ->
        Engine.is_hom ~source ~target h && Option.is_some naive
      | Engine.Unsat -> Option.is_none naive
      | Engine.Unknown _ -> r.Resilient.rung = Resilient.Exhausted)

let qcheck_seeded_order_sound =
  QCheck.Test.make ~count:200
    ~name:"Seeded variable order agrees with find_hom_naive"
    QCheck.(triple (int_range 0 5000) (int_range 0 5000) (int_range 0 100))
    (fun (s1, s2, seed) ->
      let source = random_structure s1 and target = random_structure s2 in
      let naive = Solver.find_hom_naive ~source ~target () in
      let config =
        Engine.Config.make ~var_order:(Engine.Config.Seeded seed) ()
      in
      match Engine.solve ~config ~source ~target () with
      | Engine.Unknown _ ->
        QCheck.Test.fail_report "Unknown under an unlimited budget"
      | Engine.Sat h ->
        Engine.is_hom ~source ~target h && Option.is_some naive
      | Engine.Unsat -> Option.is_none naive)

(* --- one unit test per Unknown reason x ladder rung --- *)

(* node budget trips attempt 1; x10 escalation recovers *)
let test_recover_from_node_budget () =
  let policy =
    Resilient.Policy.make ~max_attempts:3 ~escalation:10.0 ()
  in
  let config =
    Engine.Config.make
      ~limits:(Engine.Limits.make ~nodes:1 ())
      ~propagation:Engine.Config.No_propagation ()
  in
  let r =
    Resilient.solve ~policy ~config ~source:triangle ~target:triangle ()
  in
  (match r.Resilient.outcome with
  | Engine.Sat h ->
    check "witness verifies" true
      (Engine.is_hom ~source:triangle ~target:triangle h)
  | _ -> Alcotest.fail "expected Sat after escalation");
  check "settled by a retry" true
    (match r.Resilient.rung with Resilient.Search n -> n > 1 | _ -> false)

(* backtrack budget trips attempt 1 on an Unsat instance; escalation
   recovers the definitive Unsat *)
let test_recover_from_backtrack_budget () =
  let policy =
    Resilient.Policy.make ~max_attempts:4 ~escalation:50.0
      ~propagate_first:false ()
  in
  let config =
    Engine.Config.make
      ~limits:(Engine.Limits.make ~backtracks:1 ())
      ~propagation:Engine.Config.No_propagation ()
  in
  let r =
    Resilient.solve ~policy ~config ~source:(clique 4) ~target:(clique 3) ()
  in
  check "Unsat recovered" true (r.Resilient.outcome = Engine.Unsat);
  check "by a search rung" true
    (match r.Resilient.rung with Resilient.Search _ -> true | _ -> false)

(* the deadline is not escalated, so a hopeless timeout exhausts *)
let test_deadline_exhausts () =
  let now = ref 0. in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock_ms (fun () -> Unix.gettimeofday () *. 1000.))
  @@ fun () ->
  (* every clock poll advances fake time by a minute: any deadline has
     already passed whenever the budget looks *)
  Obs.set_clock_ms (fun () ->
      now := !now +. 60_000.;
      !now);
  let policy =
    Resilient.Policy.make ~max_attempts:3 ~propagate_first:false ()
  in
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~timeout_ms:1.0 ()) ()
  in
  let r =
    Resilient.solve ~policy ~config ~source:(clique 7) ~target:(clique 6) ()
  in
  check "outcome is Unknown Deadline" true
    (r.Resilient.outcome = Engine.Unknown Engine.Deadline);
  check "rung Exhausted" true (r.Resilient.rung = Resilient.Exhausted);
  Alcotest.(check int) "all attempts consumed" 3 r.Resilient.attempts

(* a tripped cancel token stays tripped: no retry, Exhausted at once *)
let test_cancelled_never_retries () =
  let cancel = Engine.Cancel.create () in
  Engine.Cancel.cancel cancel;
  let policy =
    Resilient.Policy.make ~max_attempts:5 ~propagate_first:false ()
  in
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~cancel ()) ()
  in
  let r =
    Resilient.solve ~policy ~config ~source:triangle ~target:triangle ()
  in
  check "outcome is Unknown Cancelled" true
    (r.Resilient.outcome = Engine.Unknown Engine.Cancelled);
  check "rung Exhausted" true (r.Resilient.rung = Resilient.Exhausted);
  Alcotest.(check int) "exactly one attempt" 1 r.Resilient.attempts

(* a one-shot injected crash on the first search node is absorbed by the
   retry rung *)
let test_recover_from_injected_crash () =
  Fault.with_armed [ ("csp.search.node", Fault.Nth 1) ] @@ fun () ->
  let policy = Resilient.Policy.make ~propagate_first:false () in
  let r = Resilient.solve ~policy ~source:triangle ~target:triangle () in
  (match r.Resilient.outcome with
  | Engine.Sat h ->
    check "witness verifies" true
      (Engine.is_hom ~source:triangle ~target:triangle h)
  | _ -> Alcotest.fail "expected Sat on the retry");
  check "settled by attempt 2" true
    (r.Resilient.rung = Resilient.Search 2);
  Alcotest.(check int) "two attempts" 2 r.Resilient.attempts

(* a permanent crash (every hit) exhausts the ladder with Crashed *)
let test_permanent_crash_exhausts () =
  Fault.with_armed [ ("csp.search.node", Fault.Every 1) ] @@ fun () ->
  let policy =
    Resilient.Policy.make ~max_attempts:2 ~propagate_first:false ()
  in
  let r = Resilient.solve ~policy ~source:triangle ~target:triangle () in
  check "Unknown (Crashed csp.search.node)" true
    (r.Resilient.outcome = Engine.Unknown (Engine.Crashed "csp.search.node"));
  check "rung Exhausted" true (r.Resilient.rung = Resilient.Exhausted)

(* AC-3 wipeout: Unsat certified with zero search attempts *)
let test_propagation_certificate () =
  let target =
    (* labelled target with no label matching the source's nodes *)
    Structure.make ~nodes:[ (0, Some "b") ] ~tuples:[ ("E", [ [| 0; 0 |] ]) ]
  in
  let source =
    Structure.make ~nodes:[ (0, Some "a") ] ~tuples:[ ("E", [ [| 0; 0 |] ]) ]
  in
  let r = Resilient.solve ~source ~target () in
  check "Unsat" true (r.Resilient.outcome = Engine.Unsat);
  check "rung Propagation" true (r.Resilient.rung = Resilient.Propagation);
  Alcotest.(check int) "zero search attempts" 0 r.Resilient.attempts

let test_scale_limits () =
  let policy = Resilient.Policy.make ~escalation:4.0 () in
  let l = Engine.Limits.make ~nodes:10 ~backtracks:3 ~timeout_ms:50. () in
  let l1 = Resilient.scale_limits policy ~attempt:1 l in
  Alcotest.(check (option int)) "attempt 1 identity" (Some 10) l1.Engine.Limits.nodes;
  let l3 = Resilient.scale_limits policy ~attempt:3 l in
  Alcotest.(check (option int)) "nodes x16" (Some 160) l3.Engine.Limits.nodes;
  Alcotest.(check (option int)) "backtracks x16" (Some 48) l3.Engine.Limits.backtracks;
  check "deadline never scaled" true
    (l3.Engine.Limits.timeout_ms = Some 50.)

(* --- graded certain answers: relational, gdm, xml --- *)

module Cq = Certdb_query.Cq
module Certain = Certdb_query.Certain
module Instance = Certdb_relational.Instance
module Fo = Certdb_query.Fo

(* Boolean 3-cycle query: R(x,y), R(y,z), R(z,x) with empty head *)
let cycle3_q =
  Cq.make ~head:[]
    [
      ("R", [ Fo.Var "x"; Fo.Var "y" ]);
      ("R", [ Fo.Var "y"; Fo.Var "z" ]);
      ("R", [ Fo.Var "z"; Fo.Var "x" ]);
    ]

let c i = Value.int i

let test_certain_cq_resilient_sound () =
  let tight = Engine.Limits.make ~nodes:0 () in
  let policy = Resilient.Policy.no_retry in
  (* an instance with a loop: the 3-cycle query folds onto R(5,5), so
     the certain answer is true and even naive evaluation sees it; with
     a zero budget the resilient path must degrade to that sound lower
     bound *)
  let d_loop = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 5; c 5 ] ]) ] in
  (match Certain.certain_cq_resilient ~policy ~limits:tight cycle3_q d_loop with
  | `Lower_bound b ->
    check "lower bound is sound" true
      ((not b) || Certain.certain_cq_via_hom cycle3_q d_loop);
    check "naive evaluation finds the loop witness" true b
  | `Exact _ -> Alcotest.fail "zero node budget cannot settle exactly");
  (* 2-cycle instance: an odd cycle has no hom into it, the certain
     answer is false; the degraded answer must not claim true *)
  let d2 = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 2; c 1 ] ]) ] in
  (match Certain.certain_cq_resilient ~policy ~limits:tight cycle3_q d2 with
  | `Lower_bound b | `Exact b ->
    check "never claims an uncertain true" true
      ((not b) || Certain.certain_cq_via_hom cycle3_q d2));
  (* unlimited: exact, agreeing with the oracle on both instances *)
  (match Certain.certain_cq_resilient cycle3_q d_loop with
  | `Exact true -> ()
  | _ -> Alcotest.fail "unlimited on the loop instance must be `Exact true");
  match Certain.certain_cq_resilient cycle3_q d2 with
  | `Exact false -> ()
  | _ -> Alcotest.fail "unlimited on the 2-cycle must be `Exact false"

module Gdb = Certdb_gdm.Gdb
module Logic = Certdb_gdm.Logic
module Query_answering = Certdb_gdm.Query_answering

let n1 = Value.null 7001
let n2 = Value.null 7002

(* two "a"-nodes with unknown data: "some two nodes have different data"
   is not certain (ground both nulls to the same constant) *)
let two_nulls_gdb =
  Gdb.make ~nodes:[ (0, "a", [ n1 ]); (1, "a", [ n2 ]) ] ~tuples:[]

let differ_f =
  Logic.Exists
    ( [ "x"; "y" ],
      Logic.And
        ( Logic.And (Logic.Label ("a", "x"), Logic.Label ("a", "y")),
          Logic.Not (Logic.EqAttr (1, "x", 1, "y")) ) )

let test_certain_resilient_gdm () =
  let oracle = Query_answering.certain_existential two_nulls_gdb differ_f in
  check "oracle: not certain" false oracle;
  (* unlimited resilient agrees exactly *)
  (match Query_answering.certain_resilient two_nulls_gdb differ_f with
  | `Exact b -> Alcotest.(check bool) "exact agrees with oracle" oracle b
  | `Lower_bound _ -> Alcotest.fail "unlimited budget must settle exactly");
  (* zero budget: the fresh completion satisfies differ_f (two distinct
     fresh constants), so refutation fails and nothing is certified *)
  let tight = Engine.Limits.make ~nodes:0 () in
  let policy = Resilient.Policy.no_retry in
  (match
     Query_answering.certain_resilient ~policy ~limits:tight two_nulls_gdb
       differ_f
   with
  | `Lower_bound false -> ()
  | _ -> Alcotest.fail "expected `Lower_bound false");
  (* a sentence false on the fresh completion is refuted exactly even
     with a dead budget: "some node is not labelled a" *)
  let not_a = Logic.Exists ([ "x" ], Logic.Not (Logic.Label ("a", "x"))) in
  match
    Query_answering.certain_resilient ~policy ~limits:tight two_nulls_gdb
      not_a
  with
  | `Exact false -> ()
  | _ -> Alcotest.fail "fresh-completion refutation should give `Exact false"

module Tree = Certdb_xml.Tree
module Tree_hom = Certdb_xml.Tree_hom

let test_leq_resilient_xml () =
  let t = Tree.node "r" [ Tree.node "a" []; Tree.node "b" [] ] in
  let t' = Tree.node "r" [ Tree.node "a" []; Tree.node "b" [] ] in
  (* unlimited: exact and agreeing with leq *)
  (match Tree_hom.leq_resilient t t' with
  | `Exact b -> Alcotest.(check bool) "exact agrees with leq" (Tree_hom.leq t t') b
  | `Lower_bound _ -> Alcotest.fail "unlimited budget must settle exactly");
  (* zero budget: nothing certifiable for tree hom existence *)
  let tight = Engine.Limits.make ~nodes:0 () in
  match Tree_hom.leq_resilient ~policy:Resilient.Policy.no_retry ~limits:tight t t' with
  | `Lower_bound false -> ()
  | _ -> Alcotest.fail "expected `Lower_bound false under a dead budget"

(* the degrade rung survives a permanent crash: even the naive fallback's
   hom evaluation dies, and the answer is the trivially sound floor *)
let test_certain_cq_degrade_survives_permanent_crash () =
  Fault.with_armed [ ("csp.search.node", Fault.Every 1) ] @@ fun () ->
  let d = Instance.of_list [ ("R", [ [ c 5; c 5 ] ]) ] in
  match
    Certain.certain_cq_resilient ~policy:Resilient.Policy.no_retry cycle3_q d
  with
  | `Lower_bound false -> ()
  | _ -> Alcotest.fail "expected the trivially sound `Lower_bound false"

module Constraints = Certdb_exchange.Constraints

(* the chase fault point: chase_b converts an injected step crash into
   Unknown (Crashed _) instead of a stack trace *)
let test_chase_fault_point () =
  let nx = Value.null 7101 and ny = Value.null 7102 and nz = Value.null 7103 in
  let cset =
    Constraints.make
      ~tgds:
        [
          Constraints.tgd
            ~body:(Instance.of_list [ ("S", [ [ nx; ny ] ]) ])
            ~head:(Instance.of_list [ ("T", [ [ nx; nz ] ]) ]);
        ]
      ()
  in
  let d = Instance.of_list [ ("S", [ [ c 1; c 2 ] ]) ] in
  Fault.with_armed [ ("exchange.chase.step", Fault.Nth 1) ] @@ fun () ->
  match Constraints.chase_b d cset with
  | Engine.Unknown (Engine.Crashed "exchange.chase.step") -> ()
  | _ -> Alcotest.fail "expected Unknown (Crashed exchange.chase.step)"

(* --- the Fault module itself --- *)

let count_fires point n =
  let fired = ref 0 in
  for _ = 1 to n do
    match Fault.hit point with
    | () -> ()
    | exception Fault.Injected _ -> incr fired
  done;
  !fired

let test_fault_triggers () =
  Fault.with_armed [ ("p", Fault.Nth 3) ] (fun () ->
      Alcotest.(check int) "Nth fires exactly once" 1 (count_fires "p" 10));
  Fault.with_armed [ ("p", Fault.Every 4) ] (fun () ->
      Alcotest.(check int) "Every 4 fires 5 times in 20" 5 (count_fires "p" 20));
  let seeded () =
    Fault.with_armed
      [ ("p", Fault.Seeded { seed = 42; per_mille = 300 }) ]
      (fun () ->
        List.init 200 (fun i ->
            match Fault.hit_k "p" (i + 1) with
            | () -> false
            | exception Fault.Injected _ -> true))
  in
  let a = seeded () and b = seeded () in
  check "seeded schedule is reproducible" true (a = b);
  let fires = List.length (List.filter Fun.id a) in
  check "seeded rate is roughly per_mille" true (fires > 20 && fires < 120);
  check "unarmed points never fire" true (count_fires "p" 100 = 0)

let test_fault_parse () =
  (match Fault.arm_from_string "csp.batch.task@2,csp.search.node~7:25" with
  | Ok () -> check "armed" true (Fault.armed ())
  | Error e -> Alcotest.fail e);
  Fault.disarm ();
  check "disarmed" false (Fault.armed ());
  (match Fault.arm_from_string "point%0" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "Every 0 must be rejected");
  match Fault.arm_from_string "no-trigger-here" with
  | Error _ -> Fault.disarm ()
  | Ok () -> Alcotest.fail "entry without a trigger must be rejected"

let () =
  Alcotest.run "resilient"
    [
      ( "invariant",
        [
          QCheck_alcotest.to_alcotest qcheck_ladder_sound;
          QCheck_alcotest.to_alcotest qcheck_seeded_order_sound;
        ] );
      ( "rungs",
        [
          Alcotest.test_case "node budget recovered" `Quick
            test_recover_from_node_budget;
          Alcotest.test_case "backtrack budget recovered" `Quick
            test_recover_from_backtrack_budget;
          Alcotest.test_case "deadline exhausts" `Quick test_deadline_exhausts;
          Alcotest.test_case "cancelled never retries" `Quick
            test_cancelled_never_retries;
          Alcotest.test_case "injected crash recovered" `Quick
            test_recover_from_injected_crash;
          Alcotest.test_case "permanent crash exhausts" `Quick
            test_permanent_crash_exhausts;
          Alcotest.test_case "propagation certificate" `Quick
            test_propagation_certificate;
          Alcotest.test_case "scale_limits" `Quick test_scale_limits;
        ] );
      ( "graded answers",
        [
          Alcotest.test_case "relational certain CQ" `Quick
            test_certain_cq_resilient_sound;
          Alcotest.test_case "gdm certain" `Quick test_certain_resilient_gdm;
          Alcotest.test_case "xml leq" `Quick test_leq_resilient_xml;
          Alcotest.test_case "degrade survives permanent crash" `Quick
            test_certain_cq_degrade_survives_permanent_crash;
          Alcotest.test_case "chase fault point" `Quick test_chase_fault_point;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "triggers" `Quick test_fault_triggers;
          Alcotest.test_case "parse grammar" `Quick test_fault_parse;
        ] );
    ]
