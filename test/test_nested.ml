(* Tests for null-extended nested relations — the model where the 1990s
   ordering-based approaches worked (paper §1): powerdomain-lifted
   orderings, the nested glb, and agreement with the flat (relational)
   constructions on flat embeddings. *)

open Certdb_values
open Certdb_relational
open Certdb_nested

let check = Alcotest.(check bool)
let c i = Nested.Atom (Value.int i)
let n i = Nested.Atom (Value.null (6600 + i))

let dept name emps =
  [| Nested.Atom (Value.str name); Nested.set emps |]

let test_conforms () =
  let s = Nested.SSet [ Nested.SAtom; Nested.SSet [ Nested.SAtom ] ] in
  let v = Nested.set [ dept "cs" [ [| c 1 |]; [| c 2 |] ] ] in
  check "conforms" true (Nested.conforms v s);
  check "atom shape mismatch" false (Nested.conforms (c 1) s);
  let bad = Nested.set [ [| c 1 |] ] in
  check "arity mismatch" false (Nested.conforms bad s)

let test_nulls_ground () =
  let v = Nested.set [ dept "cs" [ [| n 1 |] ]; dept "ee" [ [| c 5 |] ] ] in
  Alcotest.(check int) "one null" 1 (Value.Set.cardinal (Nested.nulls v));
  check "incomplete" false (Nested.is_complete v);
  let g = Nested.ground v in
  check "grounded" true (Nested.is_complete g);
  check "below its grounding" true (Nested.leq_owa v g)

let test_owa_ordering () =
  (* a department with an unknown employee is below one listing more *)
  let partial = Nested.set [ dept "cs" [ [| n 1 |] ] ] in
  let full = Nested.set [ dept "cs" [ [| c 1 |]; [| c 2 |] ] ] in
  check "partial below full" true (Nested.leq_owa partial full);
  check "full not below partial" false (Nested.leq_owa full partial);
  (* OWA: extra departments on the right are fine *)
  let more = Nested.set [ dept "cs" [ [| c 1 |] ]; dept "ee" [] ] in
  check "extra dept ok under OWA" true (Nested.leq_owa partial more)

let test_cwa_ordering () =
  let partial = Nested.set [ dept "cs" [ [| n 1 |] ] ] in
  let more = Nested.set [ dept "cs" [ [| c 1 |] ]; dept "ee" [] ] in
  (* CWA: the unexplained ee department blocks *)
  check "extra dept blocks under CWA" false (Nested.leq_cwa partial more);
  let exact = Nested.set [ dept "cs" [ [| c 1 |] ] ] in
  check "exact ok under CWA" true (Nested.leq_cwa partial exact);
  check "cwa implies owa" true (Nested.leq_owa partial exact)

let test_orderings_reflexive_transitive () =
  let vs =
    [
      Nested.set [ dept "cs" [ [| n 1 |] ] ];
      Nested.set [ dept "cs" [ [| c 1 |] ] ];
      Nested.set [ dept "cs" [ [| c 1 |]; [| c 2 |] ] ];
    ]
  in
  List.iter (fun v -> check "refl" true (Nested.leq_owa v v)) vs;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun cc ->
              if Nested.leq_owa a b && Nested.leq_owa b cc then
                check "trans" true (Nested.leq_owa a cc))
            vs)
        vs)
    vs

let test_glb_nested () =
  let v1 = Nested.set [ dept "cs" [ [| c 1 |] ] ] in
  let v2 = Nested.set [ dept "cs" [ [| c 2 |] ] ] in
  match Nested.glb v1 v2 with
  | None -> Alcotest.fail "glb exists"
  | Some g ->
    check "lower bound of v1" true (Nested.leq_owa g v1);
    check "lower bound of v2" true (Nested.leq_owa g v2);
    (* the employee ids disagreed: the glb's employee is a null *)
    check "not complete" false (Nested.is_complete g)

let test_glb_shape_mismatch () =
  check "atom vs set" true (Nested.glb (c 1) (Nested.set []) = None)

let test_glb_greatest_sampled () =
  let v1 = Nested.set [ dept "cs" [ [| c 1 |]; [| c 2 |] ] ] in
  let v2 = Nested.set [ dept "cs" [ [| c 1 |]; [| c 3 |] ] ] in
  let lb = Nested.set [ dept "cs" [ [| c 1 |] ] ] in
  match Nested.glb v1 v2 with
  | None -> Alcotest.fail "glb exists"
  | Some g ->
    check "sampled lower bound flows through" true
      ((not (Nested.leq_owa lb v1 && Nested.leq_owa lb v2))
      || Nested.leq_owa lb g)

(* flat embeddings: the nested machinery collapses to the relational one *)
let test_flat_embedding_ordering () =
  for seed = 0 to 15 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ~null_pool:2 ()
    in
    let d = mk seed and d' = mk (seed + 4000) in
    check
      (Printf.sprintf "seed %d: nested OWA = hoare lift" seed)
      (Ordering.hoare_leq d d')
      (Nested.leq_owa
         (Nested.of_instance_relation d "R")
         (Nested.of_instance_relation d' "R"));
    check
      (Printf.sprintf "seed %d: nested CWA = plotkin lift" seed)
      (Ordering.plotkin_leq d d')
      (Nested.leq_cwa
         (Nested.of_instance_relation d "R")
         (Nested.of_instance_relation d' "R"))
  done

let test_flat_embedding_glb () =
  (* on Codd tables (where ⪯ = ⊑, Prop. 4) the nested glb matches the
     relational ⊗-product up to ∼ *)
  for seed = 0 to 9 do
    let mk s =
      Codd.random ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ()
    in
    let d = mk seed and d' = mk (seed + 5000) in
    match
      Nested.glb
        (Nested.of_instance_relation d "R")
        (Nested.of_instance_relation d' "R")
    with
    | None -> Alcotest.fail "flat glb exists"
    | Some g ->
      let flat = Nested.to_instance_relation g ~rel:"R" in
      check
        (Printf.sprintf "seed %d: nested glb ~ relational glb" seed)
        true
        (Ordering.equiv flat (Glb.glb d d'))
  done

let test_roundtrip () =
  let d = Instance.of_list [ ("R", [ [ Value.int 1; Value.null 6699 ] ]) ] in
  let v = Nested.of_instance_relation d "R" in
  check "roundtrip" true
    (Instance.equal (Nested.to_instance_relation v ~rel:"R") d);
  Alcotest.check_raises "nested cell rejected"
    (Invalid_argument "Nested.to_instance_relation: nested cell") (fun () ->
      ignore
        (Nested.to_instance_relation
           (Nested.set [ [| Nested.set [] |] ])
           ~rel:"R"))

(* the paper's point: this machinery was adequate for nested relations but
   the Hoare lift diverges from homomorphism-based ⊑ once nulls repeat —
   exactly the Prop. 4 separation, visible through the embedding *)
let test_divergence_on_repeated_nulls () =
  let shared = Value.null 6666 in
  let d = Instance.of_list [ ("R", [ [ shared; shared ] ]) ] in
  let d' = Instance.of_list [ ("R", [ [ Value.int 1; Value.int 2 ] ]) ] in
  check "nested OWA accepts" true
    (Nested.leq_owa
       (Nested.of_instance_relation d "R")
       (Nested.of_instance_relation d' "R"));
  check "hom-based ordering refuses" false (Ordering.leq d d')

let () =
  Alcotest.run "nested"
    [
      ( "values",
        [
          Alcotest.test_case "conforms" `Quick test_conforms;
          Alcotest.test_case "nulls/ground" `Quick test_nulls_ground;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "orderings",
        [
          Alcotest.test_case "owa" `Quick test_owa_ordering;
          Alcotest.test_case "cwa" `Quick test_cwa_ordering;
          Alcotest.test_case "laws" `Quick test_orderings_reflexive_transitive;
          Alcotest.test_case "flat = powerdomain lifts" `Quick
            test_flat_embedding_ordering;
          Alcotest.test_case "prop4 divergence" `Quick
            test_divergence_on_repeated_nulls;
        ] );
      ( "glb",
        [
          Alcotest.test_case "nested glb" `Quick test_glb_nested;
          Alcotest.test_case "shape mismatch" `Quick test_glb_shape_mismatch;
          Alcotest.test_case "greatest sampled" `Quick test_glb_greatest_sampled;
          Alcotest.test_case "flat glb agreement" `Quick test_flat_embedding_glb;
        ] );
    ]
