Locate the binary (dune places cram deps at workspace-relative paths):

  $ CERTDB=$(find . ../.. -name 'certdb.exe' 2>/dev/null | head -1)
  $ echo found
  found

The server speaks JSONL over stdio: one request object per line, one
response object per line, in order.  A renamed, reordered copy of an
already-answered query is a cache hit (cached:true) because keys are
canonical modulo hom-equivalence; errors — unknown database, unknown
op, malformed JSON — are structured rows that never kill the stream
(latency and uptime fields redacted for determinism):

  $ cat > serve.jsonl <<'EOF'
  > {"op":"load","name":"d","source":"R(1,2); R(2,1); R(3,_u)"}
  > {"id":"q1","op":"query","db":"d","query":"ans() :- R(_x,_y), R(_y,_x)"}
  > {"id":"q2","op":"query","db":"d","query":"ans() :- R(_p,_q), R(_q,_p)"}
  > {"op":"query","db":"d","query":"ans(_x) :- R(_x,_y), R(_y,_x)"}
  > {"op":"query","db":"missing","query":"ans() :- R(_x,_y)"}
  > {"op":"frobnicate"}
  > not json
  > {"op":"stats"}
  > {"op":"unload","name":"d"}
  > {"op":"shutdown"}
  > EOF
  $ $CERTDB serve < serve.jsonl | sed -E 's/[0-9]+\.[0-9]+/<ms>/g'
  {"id":"0","index":0,"op":"load","status":"ok","name":"d","fingerprint":"8fd43156c49c67e8","facts":3}
  {"id":"q1","index":1,"op":"query","status":"ok","grade":"exact","certain":true,"cached":false,"latency_ms":<ms>}
  {"id":"q2","index":2,"op":"query","status":"ok","grade":"exact","certain":true,"cached":true,"latency_ms":<ms>}
  {"id":"3","index":3,"op":"query","status":"ok","grade":"exact","answers":"ans(1); ans(2)","cached":false,"latency_ms":<ms>}
  {"id":"4","index":4,"op":"query","status":"error","error":"unknown database \"missing\""}
  {"id":"5","index":5,"op":"frobnicate","status":"error","error":"unknown op \"frobnicate\""}
  {"id":"line-6","index":6,"op":"?","status":"error","error":"json: expected 'null' at offset 0"}
  {"id":"7","index":7,"op":"stats","status":"ok","uptime_ms":<ms>,"served":3,"databases":[{"name":"d","fingerprint":"8fd43156c49c67e8","facts":3}],"cache":{"capacity":1024,"size":2,"hits":1,"misses":2,"evictions":0,"bypasses":0}}
  {"id":"8","index":8,"op":"unload","status":"ok","name":"d"}
  {"id":"9","index":9,"op":"shutdown","status":"ok","served":3}

--load preloads named databases at startup, and --no-cache disables the
semantic cache entirely: the repeated (renamed) query stays a miss:

  $ printf '{"op":"query","db":"d","query":"ans() :- R(_x,_y)"}\n{"op":"query","db":"d","query":"ans() :- R(_a,_b)"}\n{"op":"shutdown"}\n' \
  >   | $CERTDB serve --no-cache --load 'd=R(1,2)' | sed -E 's/[0-9]+\.[0-9]+/<ms>/g'
  {"id":"0","index":0,"op":"query","status":"ok","grade":"exact","certain":true,"cached":false,"latency_ms":<ms>}
  {"id":"1","index":1,"op":"query","status":"ok","grade":"exact","certain":true,"cached":false,"latency_ms":<ms>}
  {"id":"2","index":2,"op":"shutdown","status":"ok","served":2}

explain:true attaches a trace object to the response — the plan route,
cache disposition and span tree for that request; responses without the
flag are unchanged (the blocks above pin the bytes):

  $ printf '{"op":"query","db":"d","query":"ans() :- R(_x,_y), R(_y,_x)","explain":true}\n{"op":"shutdown"}\n' \
  >   | $CERTDB serve --load 'd=R(1,2); R(2,1)' \
  >   | head -1 | grep -oE '"(root|route|cache)":"[^"]*"' | sort -u
  "cache":"miss"
  "root":"service.request"
  "route":"acyclic-join"

The trace verb dumps the span ring buffer as Chrome trace-event JSON
(loadable in about:tracing / Perfetto), and the metrics verb returns an
OpenMetrics exposition:

  $ printf '{"op":"query","db":"d","query":"ans() :- R(_x,_y)"}\n{"op":"trace"}\n{"op":"metrics"}\n{"op":"shutdown"}\n' \
  >   | $CERTDB serve --load 'd=R(1,2)' > verbs.out
  $ sed -n '2p' verbs.out | grep -oE '"(traceEvents|displayTimeUnit)":?' | sort -u
  "displayTimeUnit":
  "traceEvents":
  $ sed -n '3p' verbs.out | grep -oE '"content_type":"[^"]*"'
  "content_type":"application/openmetrics-text; version=1.0.0; charset=utf-8"

certdb trace dump replays a JSONL request file in-process and emits the
same Chrome JSON:

  $ printf '{"op":"load","name":"d","source":"R(1,2)"}\n{"op":"query","db":"d","query":"ans() :- R(_x,_y)"}\n' > replay.jsonl
  $ $CERTDB trace dump --replay replay.jsonl | grep -oE '"displayTimeUnit":"ms"'
  "displayTimeUnit":"ms"

ping is a liveness no-op (the retrying client and certdb ping use it),
and request lines over --max-line-bytes are drained and answered with a
structured error row — the stream stays in sync, so the next request
still gets its own row.  The oversized row never counts as served:

  $ { printf '{"op":"ping"}\n'
  >   printf '{"id":"big","op":"query","query":"%s"}\n' "$(head -c 300 /dev/zero | tr '\0' 'x')"
  >   printf '{"op":"shutdown"}\n'
  > } | $CERTDB serve --max-line-bytes 256
  {"id":"0","index":0,"op":"ping","status":"ok","pong":true}
  {"id":"line-1","index":1,"op":"?","status":"error","error":"request line exceeds 256 bytes"}
  {"id":"2","index":2,"op":"shutdown","status":"ok","served":0}

--slow-ms logs any request at least that slow as a JSON row (with its
full span tree) on stderr; the response stream is untouched:

  $ printf '{"op":"query","db":"d","query":"ans() :- R(_x,_y)"}\n{"op":"shutdown"}\n' \
  >   | $CERTDB serve --load 'd=R(1,2)' --slow-ms 0 2>slow.log >/dev/null
  $ grep -coE '"slow_query":true' slow.log
  1

The invalidate verb sweeps cached entries by footprint overlap: a
tuple-level touch on R drops the cached R reader but provably cannot
change the S reader, which stays cached; a column touch confined to an
existence-only position drops nothing.  The sweep is observable as
service.cache.footprint_{hit,skip}:

  $ cat > invalidate.jsonl <<'JSONL'
  > {"op":"load","name":"d","source":"R(1,2); S(3,4)"}
  > {"op":"query","db":"d","query":"ans() :- R(_x,_y)"}
  > {"op":"query","db":"d","query":"ans() :- S(_x,_y)"}
  > {"op":"invalidate","rel":"R","db":"d"}
  > {"op":"query","db":"d","query":"ans() :- R(_x,_y)"}
  > {"op":"query","db":"d","query":"ans() :- S(_x,_y)"}
  > {"op":"invalidate","rel":"S","cols":[2]}
  > {"op":"query","db":"d","query":"ans() :- S(_x,_y)"}
  > {"op":"metrics"}
  > {"op":"shutdown"}
  > JSONL
  $ $CERTDB serve < invalidate.jsonl > invalidate.out
  $ sed -E 's/[0-9]+\.[0-9]+/<ms>/g' invalidate.out | sed -n '1,8p;10p'
  {"id":"0","index":0,"op":"load","status":"ok","name":"d","fingerprint":"a21a281d2029a193","facts":2}
  {"id":"1","index":1,"op":"query","status":"ok","grade":"exact","certain":true,"cached":false,"latency_ms":<ms>}
  {"id":"2","index":2,"op":"query","status":"ok","grade":"exact","certain":true,"cached":false,"latency_ms":<ms>}
  {"id":"3","index":3,"op":"invalidate","status":"ok","rel":"R","invalidated":1,"remaining":1}
  {"id":"4","index":4,"op":"query","status":"ok","grade":"exact","certain":true,"cached":false,"latency_ms":<ms>}
  {"id":"5","index":5,"op":"query","status":"ok","grade":"exact","certain":true,"cached":true,"latency_ms":<ms>}
  {"id":"6","index":6,"op":"invalidate","status":"ok","rel":"S","invalidated":0,"remaining":2}
  {"id":"7","index":7,"op":"query","status":"ok","grade":"exact","certain":true,"cached":true,"latency_ms":<ms>}
  {"id":"9","index":9,"op":"shutdown","status":"ok","served":5}
  $ sed -n 9p invalidate.out | grep -oE 'service_cache_footprint_(hit|skip)_total [0-9]+' | sort
  service_cache_footprint_hit_total 1
  service_cache_footprint_skip_total 3
