(* Csp.Engine: three-valued outcomes, budget semantics, cancellation
   (including cross-domain), the exists short-circuit, and the Batch
   domain pool's deterministic ordering and per-worker accounting. *)

open Certdb_csp
module Obs = Certdb_obs.Obs

let check = Alcotest.(check bool)

let triangle =
  Structure.make
    ~nodes:[ (0, None); (1, None); (2, None) ]
    ~tuples:[ ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ]) ]

(* complete graph on n nodes, no self-loops *)
let clique n =
  let nodes = List.init n (fun v -> (v, None)) in
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a <> b then Some [| a; b |] else None)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  Structure.make ~nodes ~tuples:[ ("E", edges) ]

(* deterministic pseudo-random digraph from a seed *)
let random_structure seed =
  let st = Random.State.make [| seed |] in
  let n = 2 + Random.State.int st 4 in
  let nodes = List.init n (fun v -> (v, None)) in
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Random.State.float st 1.0 < 0.35 then edges := [| a; b |] :: !edges
    done
  done;
  Structure.make ~nodes ~tuples:[ ("E", !edges) ]

(* --- agreement with the naive baseline; no Unknown when unlimited --- *)

let qcheck_agreement =
  QCheck.Test.make ~count:200 ~name:"engine agrees with find_hom_naive"
    QCheck.(pair (int_range 0 5000) (int_range 0 5000))
    (fun (s1, s2) ->
      let source = random_structure s1 and target = random_structure s2 in
      let naive = Solver.find_hom_naive ~source ~target () in
      match Engine.solve ~source ~target () with
      | Engine.Unknown _ ->
        QCheck.Test.fail_report "Unknown under an unlimited budget"
      | Engine.Sat h ->
        Engine.is_hom ~source ~target h && Option.is_some naive
      | Engine.Unsat -> Option.is_none naive)

let qcheck_satisfiable_agreement =
  QCheck.Test.make ~count:200 ~name:"satisfiable agrees with solve"
    QCheck.(pair (int_range 0 5000) (int_range 0 5000))
    (fun (s1, s2) ->
      let source = random_structure s1 and target = random_structure s2 in
      let s = Engine.satisfiable ~source ~target () in
      let f = Engine.solve ~source ~target () in
      match (s, f) with
      | Engine.Sat (), Engine.Sat _ | Engine.Unsat, Engine.Unsat -> true
      | _ -> false)

(* --- budgets --- *)

let test_node_budget () =
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~nodes:1 ()) ()
  in
  (match Engine.solve ~config ~source:triangle ~target:triangle () with
  | Engine.Unknown Engine.Node_budget -> ()
  | Engine.Sat _ -> Alcotest.fail "1-node budget returned Sat"
  | Engine.Unsat -> Alcotest.fail "1-node budget returned Unsat"
  | Engine.Unknown r ->
    Alcotest.failf "wrong reason: %s" (Engine.reason_to_string r));
  (* budgets never flip an answer: a generous budget gives the real one *)
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~nodes:100_000 ()) ()
  in
  match Engine.solve ~config ~source:triangle ~target:triangle () with
  | Engine.Sat h -> check "witness" true (Engine.is_hom ~source:triangle ~target:triangle h)
  | _ -> Alcotest.fail "triangle -> triangle should be Sat"

let test_backtrack_budget () =
  (* K4 -> K3 has no hom and forces dead ends *)
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~backtracks:1 ()) ()
  in
  match Engine.solve ~config ~source:(clique 4) ~target:(clique 3) () with
  | Engine.Unknown Engine.Backtrack_budget -> ()
  | Engine.Unknown r ->
    Alcotest.failf "wrong reason: %s" (Engine.reason_to_string r)
  | Engine.Sat _ -> Alcotest.fail "K4 -> K3 cannot be Sat"
  | Engine.Unsat ->
    Alcotest.fail "1-backtrack budget should trip before exhausting"

let test_precancelled () =
  let cancel = Engine.Cancel.create () in
  Engine.Cancel.cancel cancel;
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~cancel ()) ()
  in
  match Engine.solve ~config ~source:triangle ~target:triangle () with
  | Engine.Unknown Engine.Cancelled -> ()
  | _ -> Alcotest.fail "pre-cancelled token must yield Unknown Cancelled"

let test_cross_domain_cancel () =
  (* K8 -> K7: unsatisfiable with a huge search space; a second domain
     trips the token after ~30ms and the search must come back promptly
     with Unknown Cancelled. *)
  let cancel = Engine.Cancel.create () in
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~cancel ()) ()
  in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.03;
        Engine.Cancel.cancel cancel)
  in
  let t0 = Unix.gettimeofday () in
  let result = Engine.solve ~config ~source:(clique 8) ~target:(clique 7) () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Domain.join canceller;
  (match result with
  | Engine.Unknown Engine.Cancelled -> ()
  | Engine.Unsat ->
    (* legal if the machine finished the whole space before the cancel;
       keep the test meaningful by requiring it was at least fast *)
    ()
  | Engine.Sat _ -> Alcotest.fail "K8 -> K7 cannot be Sat"
  | Engine.Unknown r ->
    Alcotest.failf "wrong reason: %s" (Engine.reason_to_string r));
  check "terminates promptly after cancel" true (elapsed < 10.)

let test_deadline () =
  let config =
    Engine.Config.make ~limits:(Engine.Limits.make ~timeout_ms:5. ()) ()
  in
  match Engine.solve ~config ~source:(clique 9) ~target:(clique 8) () with
  | Engine.Unknown Engine.Deadline -> ()
  | Engine.Unknown r ->
    Alcotest.failf "wrong reason: %s" (Engine.reason_to_string r)
  | Engine.Sat _ -> Alcotest.fail "K9 -> K8 cannot be Sat"
  | Engine.Unsat -> Alcotest.fail "5ms deadline should trip on K9 -> K8"

(* --- the exists short-circuit --- *)

let test_exists_short_circuit () =
  (* triangle plus an isolated node: solve must still assign the isolated
     node; satisfiable skips it, so it makes strictly fewer decisions *)
  let source = Structure.add_node triangle 3 in
  let decisions = Obs.counter "csp.solver.decisions" in
  let measure f =
    let before = Obs.counter_value decisions in
    f ();
    Obs.counter_value decisions - before
  in
  let find_d =
    measure (fun () ->
        match Engine.solve ~source ~target:triangle () with
        | Engine.Sat _ -> ()
        | _ -> Alcotest.fail "expected Sat")
  in
  let exists_d =
    measure (fun () ->
        match Engine.satisfiable ~source ~target:triangle () with
        | Engine.Sat () -> ()
        | _ -> Alcotest.fail "expected Sat")
  in
  check "exists expands strictly fewer nodes" true (exists_d < find_d);
  (* enumeration still counts assignments of the free node *)
  (* the directed 3-cycle has 3 self-homs (rotations); the isolated node
     can land on any of the 3 target nodes *)
  match Engine.count ~source ~target:triangle () with
  | Engine.Sat n ->
    Alcotest.(check int) "count includes free-variable choices" (3 * 3) n
  | _ -> Alcotest.fail "count should be Sat"

(* --- Batch --- *)

let test_batch_order () =
  let inputs = List.init 40 Fun.id in
  let doubled = Engine.Batch.map ~jobs:4 (fun x -> 2 * x) inputs in
  Alcotest.(check (list int)) "jobs:4 preserves input order"
    (List.map (fun x -> 2 * x) inputs)
    doubled;
  let tasks =
    List.init 12 (fun i ->
        {
          Engine.Batch.config = Engine.Config.default;
          source = (if i mod 2 = 0 then triangle else clique 4);
          target = triangle;
        })
  in
  let j1 = Engine.Batch.solve_all ~jobs:1 tasks in
  let j4 = Engine.Batch.solve_all ~jobs:4 tasks in
  check "same outcomes at jobs:1 and jobs:4" true
    (List.for_all2
       (fun a b ->
         match (a, b) with
         | Engine.Sat _, Engine.Sat _ -> true
         | Engine.Unsat, Engine.Unsat -> true
         | _ -> false)
       j1 j4);
  List.iteri
    (fun i r ->
      match r with
      | Engine.Sat h ->
        check "even tasks Sat with verified witness" true
          (i mod 2 = 0
          && Engine.is_hom ~source:triangle ~target:triangle h)
      | Engine.Unsat -> check "odd tasks Unsat" true (i mod 2 = 1)
      | Engine.Unknown _ -> Alcotest.fail "unlimited batch returned Unknown")
    j4

let test_batch_counters_add_up () =
  Obs.reset ();
  let tasks =
    List.init 17 (fun _ ->
        {
          Engine.Batch.config = Engine.Config.default;
          source = triangle;
          target = triangle;
        })
  in
  ignore (Engine.Batch.solve_all ~jobs:4 tasks);
  let m = Obs.snapshot () in
  let total =
    match Obs.find_counter m "csp.batch.tasks" with
    | Some n -> n
    | None -> Alcotest.fail "csp.batch.tasks not registered"
  in
  Alcotest.(check int) "one task accounted per input" 17 total;
  let worker_sum =
    List.fold_left
      (fun acc (name, v) ->
        if
          String.length name > 16
          && String.sub name 0 16 = "csp.batch.worker"
        then acc + v
        else acc)
      0 m.Obs.counters
  in
  Alcotest.(check int) "per-worker counters sum to the total" total worker_sum

let test_batch_error_propagation () =
  let boom = Failure "task 3 exploded" in
  (match
     Engine.Batch.map ~jobs:2
       (fun i -> if i = 3 then raise boom else i)
       [ 0; 1; 2; 3; 4 ]
   with
  | _ -> Alcotest.fail "expected the task's exception to re-raise"
  | exception Failure m -> Alcotest.(check string) "first error wins" "task 3 exploded" m)

(* --- monotone deadline clock: a backward wall-clock step must not
   disarm (or extend) the deadline --- *)

let test_monotone_deadline_clock () =
  let now = ref 1000. in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock_ms (fun () -> Unix.gettimeofday () *. 1000.))
  @@ fun () ->
  Obs.set_clock_ms (fun () -> !now);
  let b = Engine.Budget.start { Engine.Limits.unlimited with timeout_ms = Some 100. } in
  (* the budget polls the clock every 64 node ticks *)
  let poll () = for _ = 1 to 64 do Engine.Budget.tick_node b done in
  now := 1050.;
  poll ();
  (* NTP-style backward step: 900ms into the past.  An absolute-deadline
     implementation would now see deadline = 1100 vs now = 150 and grant
     ~950ms of extra life; the monotone clock must keep elapsed at 50. *)
  now := 150.;
  poll ();
  now := 210.;
  (* elapsed = 50 + 60 = 110 > 100: the deadline must fire *)
  (match poll () with
  | () -> Alcotest.fail "deadline disarmed by a backward clock step"
  | exception Engine.Budget.Interrupted Engine.Deadline -> ())

(* --- Batch.map_result: per-item isolation and failure policies --- *)

module Fault = Certdb_obs.Fault

let poisoned = [ 3; 20; 41; 77; 90 ]

let poisoned_schedule =
  List.map (fun k -> ("csp.batch.task", Fault.Nth k)) poisoned

let run_poisoned_batch ~jobs =
  Fault.with_armed poisoned_schedule (fun () ->
      Engine.Batch.map_result ~jobs (fun i -> i * i) (List.init 100 Fun.id))

let check_poisoned_results results =
  Alcotest.(check int) "100 results" 100 (List.length results);
  List.iteri
    (fun i r ->
      let k = i + 1 in
      match r with
      | Ok v ->
        check "non-poisoned task succeeds" true (not (List.mem k poisoned));
        Alcotest.(check int) "result in input slot" (i * i) v
      | Error (Engine.Batch.Raised { exn = Fault.Injected p; _ }) ->
        check "poisoned task errors" true (List.mem k poisoned);
        Alcotest.(check string) "fault point" "csp.batch.task" p
      | Error (Engine.Batch.Raised { exn; _ }) ->
        Alcotest.fail ("unexpected exception: " ^ Printexc.to_string exn)
      | Error Engine.Batch.Skipped ->
        Alcotest.fail "no task should be skipped under Continue")
    results

let test_map_result_poisoned () =
  Obs.reset ();
  let j1 = run_poisoned_batch ~jobs:1 in
  let j4 = run_poisoned_batch ~jobs:4 in
  check_poisoned_results j1;
  check_poisoned_results j4;
  (* the schedule is keyed to the task index, so parallelism cannot move
     the poison *)
  check "identical shape at jobs:1 and jobs:4" true
    (List.for_all2
       (fun a b ->
         match (a, b) with
         | Ok x, Ok y -> x = y
         | Error _, Error _ -> true
         | _ -> false)
       j1 j4);
  let m = Obs.snapshot () in
  Alcotest.(check (option int))
    "errors counted once per poisoned task per run" (Some 10)
    (Obs.find_counter m "csp.batch.errors")

let test_map_result_fail_fast () =
  Obs.reset ();
  let cancel = Engine.Cancel.create () in
  let results =
    Engine.Batch.map_result ~jobs:1 ~on_error:(Engine.Batch.Fail_fast cancel)
      (fun i -> if i = 2 then failwith "poisoned" else i)
      [ 0; 1; 2; 3; 4 ]
  in
  (match results with
  | [ Ok 0; Ok 1; Error (Engine.Batch.Raised _); Error Engine.Batch.Skipped;
      Error Engine.Batch.Skipped ] -> ()
  | _ -> Alcotest.fail "expected [Ok; Ok; Raised; Skipped; Skipped]");
  check "failure trips the shared token" true (Engine.Cancel.cancelled cancel);
  let m = Obs.snapshot () in
  Alcotest.(check (option int))
    "skipped tasks counted" (Some 2)
    (Obs.find_counter m "csp.batch.skipped")

let test_map_result_continue_no_skips () =
  let results =
    Engine.Batch.map_result ~jobs:4
      (fun i -> if i mod 3 = 0 then failwith "boom" else i)
      (List.init 20 Fun.id)
  in
  Alcotest.(check int) "all slots filled" 20 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check "survivor keeps its slot" true (v = i && i mod 3 <> 0)
      | Error (Engine.Batch.Raised _) -> check "raiser in its slot" true (i mod 3 = 0)
      | Error Engine.Batch.Skipped ->
        Alcotest.fail "Continue must never skip")
    results

let () =
  Alcotest.run "engine"
    [
      ( "agreement",
        [
          QCheck_alcotest.to_alcotest qcheck_agreement;
          QCheck_alcotest.to_alcotest qcheck_satisfiable_agreement;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "node budget" `Quick test_node_budget;
          Alcotest.test_case "backtrack budget" `Quick test_backtrack_budget;
          Alcotest.test_case "pre-cancelled" `Quick test_precancelled;
          Alcotest.test_case "cross-domain cancel" `Quick
            test_cross_domain_cancel;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "monotone deadline clock" `Quick
            test_monotone_deadline_clock;
        ] );
      ( "exists",
        [
          Alcotest.test_case "short-circuit" `Quick test_exists_short_circuit;
        ] );
      ( "batch",
        [
          Alcotest.test_case "deterministic order" `Quick test_batch_order;
          Alcotest.test_case "counters add up" `Quick
            test_batch_counters_add_up;
          Alcotest.test_case "error propagation" `Quick
            test_batch_error_propagation;
          Alcotest.test_case "map_result poisoned determinism" `Quick
            test_map_result_poisoned;
          Alcotest.test_case "map_result fail-fast" `Quick
            test_map_result_fail_fast;
          Alcotest.test_case "map_result continue never skips" `Quick
            test_map_result_continue_no_skips;
        ] );
    ]
