Locate the binary (dune places cram deps at workspace-relative paths):

  $ CERTDB=$(find . ../.. -name 'certdb.exe' 2>/dev/null | head -1)
  $ echo found
  found

DIMACS export of a Boolean-CQ certainty instance.  Three fresh nulls
over a unary relation are pairwise interchangeable, so the encoder
reports one symmetry class of three and appends two ordering clauses
(the last two lines) on top of the selector/tuple-support CNF:

  $ $CERTDB sat dimacs -q "ans() :- P(_a), P(_b), P(_c)" "P(1); P(2)"
  c certdb Boolean-CQ certainty; zero_ok=true
  c sel_vars=6 tuple_vars=6 clauses=17 sym_classes=1 largest_class=3
  p cnf 12 17
  1 2 0
  -1 -2 0
  3 4 0
  -3 -4 0
  5 6 0
  -5 -6 0
  -7 1 0
  -8 2 0
  8 7 0
  -9 3 0
  -10 4 0
  10 9 0
  -11 5 0
  -12 6 0
  12 11 0
  -2 -3 0
  -4 -5 0

Same instance without symmetry breaking — two clauses fewer, nothing
else changes (the ordering clauses never affect satisfiability):

  $ $CERTDB sat dimacs --no-symmetry -q "ans() :- P(_a), P(_b), P(_c)" "P(1); P(2)" | head -3
  c certdb Boolean-CQ certainty; zero_ok=true
  c sel_vars=6 tuple_vars=6 clauses=15 sym_classes=0 largest_class=0
  p cnf 12 15

Only Boolean queries encode:

  $ $CERTDB sat dimacs -q "ans(_x) :- P(_x)" "P(1)"
  sat dimacs applies to Boolean queries (empty head)
  [2]

Certainty through the SAT backend agrees with the default CSP engine:

  $ $CERTDB certain --backend sat --degrade -q "ans() :- E(_x,_y), E(_y,_x)" "E(1,2); E(2,1)"
  exact: true

  $ $CERTDB certain --backend sat --degrade -q "ans() :- E(_x,_y), E(_y,_x)" "E(1,2)"
  exact: false
  [1]

  $ $CERTDB certain --backend auto --degrade -q "ans() :- E(_x,_y), E(_y,_z), E(_z,_x)" "E(1,2); E(2,3); E(3,1)"
  exact: true

The planner's route and the CDCL core are visible in --stats:

  $ $CERTDB certain --backend sat -q "ans() :- E(_x,_y), E(_y,_x)" "E(1,2); E(2,1)" --stats 2>&1 | grep -E 'query\.plan\.sat|csp\.sat\.solves'
    csp.sat.solves                  1
    query.plan.sat                  1

Batch streams take a stream-level --backend default and a per-line
"backend" override; an unknown name is a structured error row, not a
dead stream:

  $ printf '%s\n%s\n%s\n' \
  >   '{"op":"certain","query":"ans() :- E(_x,_y), E(_y,_x)","d":"E(1,2); E(2,1)","backend":"sat"}' \
  >   '{"op":"certain","query":"ans() :- E(_x,_y)","d":"E(1,2)","backend":"nope"}' \
  >   '{"op":"certain","query":"ans() :- E(_x,_y), E(_y,_x)","d":"E(1,2)"}' \
  >   | $CERTDB batch --backend auto -
  {"id":"0","index":0,"op":"certain","status":"sat"}
  {"id":"1","index":1,"op":"certain","status":"error","error":"backend: \"nope\" is not one of csp/sat/auto"}
  {"id":"2","index":2,"op":"certain","status":"unsat"}
  [1]
