(* Theorem 2 and Prop. 7 exercised on the real relational domain: UCQs are
   monotone and have the complete saturation property, hence naïve
   evaluation computes their certain answers; a query with negation breaks
   the saturation premises and the conclusion. *)

open Certdb_values
open Certdb_relational
open Certdb_query

module Rel_domain = struct
  type t = Instance.t

  let leq = Ordering.leq
  let is_complete = Instance.is_complete
  let pi_cpl = Instance.pi_cpl
end

module D = Certdb_order.Domain.Make (Rel_domain)
module P = Certdb_order.Preorder.Make (Rel_domain)

let check = Alcotest.(check bool)
let v = Fo.var

(* queries as instance → instance maps over the fixed schema {R/2};
   answers are materialized in a relation "ans" *)
let ucq_query =
  let q = Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]) ] in
  fun d -> Ucq.answers (Ucq.make [ q ]) d

let join_query =
  let q =
    Cq.make ~head:[ "x"; "z" ]
      [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ]
  in
  fun d -> Ucq.answers (Ucq.make [ q ]) d

(* a non-monotone query: R-sources with no outgoing R-edge from their
   target *)
let negation_query d =
  let f =
    Fo.Exists
      ( [ "y" ],
        Fo.And
          ( Fo.atom "R" [ v "x"; v "y" ],
            Fo.Not (Fo.Exists ([ "z" ], Fo.atom "R" [ v "y"; v "z" ])) ) )
  in
  Fo.answers ~head:[ "x" ] d f

let instance_of_seed seed =
  Codd.random_naive ~seed ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
    ~domain:2 ~null_pool:2 ()

let pool_for d =
  (* d, its completions, and a few supersets — a finite fragment of the
     domain rich enough for the saturation checks *)
  let completions = List.map snd (Semantics.sample_completions d) in
  let extra =
    List.map
      (fun r ->
        Instance.union r
          (Instance.of_list [ ("R", [ [ Value.int 41; Value.int 43 ] ]) ]))
      completions
  in
  (d :: completions) @ extra

let test_ucq_monotone () =
  for seed = 0 to 4 do
    let d = instance_of_seed seed in
    let on = pool_for d in
    check
      (Printf.sprintf "seed %d: ucq monotone" seed)
      true
      (P.monotone ucq_query ~leq':Ordering.leq ~on)
  done

let test_ucq_saturation () =
  for seed = 0 to 4 do
    let d = instance_of_seed seed in
    let pool = pool_for d in
    let up_cpl x = List.filter (fun c -> Instance.is_complete c && Ordering.leq x c) pool in
    check
      (Printf.sprintf "seed %d: ucq saturation" seed)
      true
      (D.complete_saturation ucq_query ~on:[ d ] ~up_cpl ~pool)
  done

let test_theorem2_conclusion_ucq () =
  (* naive evaluation = certain answers, via the domain-level machinery *)
  for seed = 0 to 4 do
    let d = instance_of_seed seed in
    let completions = List.map snd (Semantics.sample_completions d) in
    let answers = List.map ucq_query completions in
    let naive = D.naive_eval ucq_query d in
    (* the naive answer is a complete lower bound of all answers *)
    check
      (Printf.sprintf "seed %d: naive below all answers" seed)
      true
      (List.for_all (fun a -> Ordering.leq naive a) answers);
    (* and matches the enumeration-based intersection *)
    let reference =
      Semantics.certain_answers_by_enumeration ucq_query d
    in
    check
      (Printf.sprintf "seed %d: naive = certain" seed)
      true
      (Instance.equal naive reference)
  done

let test_theorem2_conclusion_join () =
  for seed = 0 to 4 do
    let d = instance_of_seed seed in
    check
      (Printf.sprintf "seed %d: join naive = certain" seed)
      true
      (Instance.equal
         (D.naive_eval join_query d)
         (Semantics.certain_answers_by_enumeration join_query d))
  done

let test_negation_breaks_naive () =
  (* D = { R(1,⊥) }: naively, ⊥ has no successor so ans(1) is produced;
     but the completion R(1,1) has a successor for the target — not
     certain *)
  let n = Value.fresh_null () in
  let d = Instance.of_list [ ("R", [ [ Value.int 1; n ] ]) ] in
  let naive = D.naive_eval negation_query d in
  check "naively ans(1)" true
    (Instance.mem naive (Instance.fact "ans" [ Value.int 1 ]));
  let loop_world = Instance.of_list [ ("R", [ [ Value.int 1; Value.int 1 ] ]) ] in
  check "loop world in [[d]]" true (Semantics.mem loop_world d);
  check "ans(1) fails in the loop world" false
    (Instance.mem (negation_query loop_world) (Instance.fact "ans" [ Value.int 1 ]));
  (* and indeed the query is not monotone on this fragment *)
  check "not monotone" false
    (P.monotone negation_query ~leq':Ordering.leq ~on:[ d; loop_world ])

let test_models_theory_sets () =
  let d1 = Instance.of_list [ ("R", [ [ Value.int 1; Value.int 2 ] ]) ] in
  let d2 = Instance.of_list [ ("R", [ [ Value.int 2; Value.int 3 ] ]) ] in
  let both = Instance.union d1 d2 in
  let pool = [ Instance.empty; d1; d2; both ] in
  (* models of {d1, d2} = elements above both *)
  let m = D.models_of_set [ d1; d2 ] ~pool in
  check "both is a model" true (List.memq both m);
  check "d1 alone is not" false (List.memq d1 m);
  let th = D.theory_of_set [ d1; d2 ] ~pool in
  check "empty is in the theory" true (List.memq Instance.empty th);
  check "d1 is not in the common theory" false (List.memq d1 th)

let () =
  Alcotest.run "saturation"
    [
      ( "theorem2",
        [
          Alcotest.test_case "ucq monotone" `Quick test_ucq_monotone;
          Alcotest.test_case "ucq saturation" `Quick test_ucq_saturation;
          Alcotest.test_case "naive = certain (atoms)" `Quick
            test_theorem2_conclusion_ucq;
          Alcotest.test_case "naive = certain (join)" `Quick
            test_theorem2_conclusion_join;
          Alcotest.test_case "negation breaks it" `Quick
            test_negation_breaks_naive;
        ] );
      ( "galois",
        [ Alcotest.test_case "models/theory of sets" `Quick test_models_theory_sets ] );
    ]
