(* Tests for incomplete XML trees: homomorphisms, the information
   ordering, tree glbs (max-descriptions), ordered trees (Prop. 6), the
   lub counterexample (Prop. 10), and the relational coding. *)

open Certdb_values
open Certdb_xml

let check = Alcotest.(check bool)
let n1 = Value.null 7001
let n2 = Value.null 7002
let n3 = Value.null 7003
let c i = Value.int i

(* The paper's Section 2.2 example tree:
   r [ a(1,⊥1) [ b(⊥1) ]; a(⊥2,2) [ c(⊥3); c(⊥2) ] ] *)
let paper_tree =
  Tree.node "r"
    [
      Tree.node "a" ~data:[ c 1; n1 ] [ Tree.leaf "b" ~data:[ n1 ] ];
      Tree.node "a" ~data:[ n2; c 2 ]
        [ Tree.leaf "c" ~data:[ n3 ]; Tree.leaf "c" ~data:[ n2 ] ];
    ]

let test_tree_basics () =
  Alcotest.(check int) "size" 6 (Tree.size paper_tree);
  Alcotest.(check int) "depth" 3 (Tree.depth paper_tree);
  Alcotest.(check int) "nulls" 3 (Value.Set.cardinal (Tree.nulls paper_tree));
  check "incomplete" false (Tree.is_complete paper_tree)

let test_ground () =
  let g = Tree.ground paper_tree in
  check "complete" true (Tree.is_complete g);
  check "ground in [[t]]" true (Tree_hom.mem g paper_tree)

let test_hom_data_coupling () =
  (* a(⊥1)[b(⊥1)]: the two occurrences must agree in the image *)
  let t = Tree.node "a" ~data:[ n1 ] [ Tree.leaf "b" ~data:[ n1 ] ] in
  let good = Tree.node "a" ~data:[ c 5 ] [ Tree.leaf "b" ~data:[ c 5 ] ] in
  let bad = Tree.node "a" ~data:[ c 5 ] [ Tree.leaf "b" ~data:[ c 6 ] ] in
  check "coupled ok" true (Tree_hom.leq t good);
  check "coupled mismatch" false (Tree_hom.leq t bad)

let test_hom_structure () =
  let t = Tree.node "a" [ Tree.leaf "b" ] in
  let t' = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ] in
  check "subtree embeds" true (Tree_hom.leq t t');
  check "reverse fails" false (Tree_hom.leq t' t);
  (* child relation must be preserved: a[b] does not map into b[a] *)
  let flipped = Tree.node "b" [ Tree.leaf "a" ] in
  check "no label-flip" false (Tree_hom.leq t flipped)

let test_hom_non_root () =
  (* without require_root, a pattern can match deep in the target *)
  let pat = Tree.node "a" [ Tree.leaf "b" ] in
  let target = Tree.node "r" [ Tree.node "a" [ Tree.leaf "b" ] ] in
  check "matches below root" true (Tree_hom.leq pat target);
  check "require_root blocks" false
    (Tree_hom.exists ~require_root:true pat target)

let test_models () =
  let desc = Tree.node "r" [ Tree.node "a" ~data:[ n1; n2 ] [] ] in
  check "T |= T'" true (Tree_hom.models paper_tree desc)

let test_glb_is_lower_bound () =
  for seed = 0 to 14 do
    let mk s =
      Tree.random ~seed:s
        ~labels:[ ("r", 0); ("a", 1); ("b", 1) ]
        ~max_depth:3 ~max_children:2 ~null_prob:0.3 ~domain:2 ()
    in
    let t1 = { (mk seed) with Tree.label = "r"; data = [||] } in
    let t2 = { (mk (seed + 100)) with Tree.label = "r"; data = [||] } in
    match Tree_glb.glb t1 t2 with
    | None -> Alcotest.fail "roots share label r: glb must exist"
    | Some g ->
      check (Printf.sprintf "seed %d: glb leq t1" seed) true (Tree_hom.leq g t1);
      check (Printf.sprintf "seed %d: glb leq t2" seed) true (Tree_hom.leq g t2)
  done

let test_glb_is_greatest () =
  for seed = 0 to 9 do
    let mk s =
      let t =
        Tree.random ~seed:s
          ~labels:[ ("r", 0); ("a", 1) ]
          ~max_depth:3 ~max_children:2 ~null_prob:0.4 ~domain:2 ()
      in
      { t with Tree.label = "r"; data = [||] }
    in
    let t1 = mk seed and t2 = mk (seed + 50) and d = mk (seed + 150) in
    match Tree_glb.glb t1 t2 with
    | None -> Alcotest.fail "glb must exist"
    | Some g ->
      if Tree_hom.leq d t1 && Tree_hom.leq d t2 then
        check
          (Printf.sprintf "seed %d: lower bound factors through glb" seed)
          true (Tree_hom.leq d g)
  done

let test_glb_label_clash () =
  let t1 = Tree.leaf "a" and t2 = Tree.leaf "b" in
  check "no glb across roots" true (Tree_glb.glb t1 t2 = None)

let test_glb_data_merge () =
  let t1 = Tree.node "r" [ Tree.leaf "a" ~data:[ c 1 ] ] in
  let t2 = Tree.node "r" [ Tree.leaf "a" ~data:[ c 1 ] ] in
  (match Tree_glb.glb t1 t2 with
  | Some g ->
    check "same constant kept" true
      (Tree.equal g (Tree.node "r" [ Tree.leaf "a" ~data:[ c 1 ] ]))
  | None -> Alcotest.fail "glb exists");
  let t3 = Tree.node "r" [ Tree.leaf "a" ~data:[ c 2 ] ] in
  match Tree_glb.glb t1 t3 with
  | Some g -> (
    match g with
    | { Tree.children = [ { Tree.data = [| v |]; _ } ]; _ } ->
      check "conflicting constants merge to null" true (Value.is_null v)
    | _ -> Alcotest.fail "unexpected glb shape")
  | None -> Alcotest.fail "glb exists"

(* Ordered trees: Prop. 6. *)
let test_ordered_hom () =
  let t = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ] in
  let t_same = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "x"; Tree.leaf "c" ] in
  let t_swap = Tree.node "a" [ Tree.leaf "c"; Tree.leaf "b" ] in
  check "order embeds" true (Ordered_tree.leq t t_same);
  check "swap blocked" false (Ordered_tree.leq t t_swap);
  (* unordered homs don't care *)
  check "unordered allows swap" true (Tree_hom.leq t t_swap)

let test_prop6 () =
  let t, t' = Ordered_tree.prop6_pair () in
  let pool =
    [
      Tree.leaf "a";
      Tree.node "a" [ Tree.leaf "b" ];
      Tree.node "a" [ Tree.leaf "c" ];
      Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ];
      Tree.node "a" [ Tree.leaf "c"; Tree.leaf "b" ];
      Tree.leaf "b";
      Tree.leaf "c";
    ]
  in
  let maxima = Ordered_tree.maximal_lower_bounds_in_pool [ t; t' ] ~pool in
  check "at least two incomparable maxima" true (List.length maxima >= 2);
  check "no glb in pool" false
    (Ordered_tree.has_glb_in_pool [ t; t' ] ~pool)

let test_prop10 () = check "prop10 counterexample" true (Counterexamples.prop10_check ())

(* Corollary 2 coding: relational orderings are preserved. *)
let test_relational_coding () =
  let open Certdb_relational in
  for seed = 0 to 10 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ~null_pool:2 ()
    in
    let d = mk seed and d' = mk (seed + 400) in
    check
      (Printf.sprintf "seed %d: coding preserves ordering" seed)
      (Ordering.leq d d')
      (Tree_hom.exists ~require_root:true (Tree.of_instance d)
         (Tree.of_instance d'))
  done

let test_gdb_roundtrip () =
  let db = Tree.to_gdb paper_tree in
  Alcotest.(check int) "node count" (Tree.size paper_tree) (Certdb_gdm.Gdb.size db);
  check "conforms to xml schema" true
    (Certdb_gdm.Gdb.conforms db
       (Certdb_gdm.Gschema.xml
          ~alphabet:[ ("r", 0); ("a", 2); ("b", 1); ("c", 1) ]))

let () =
  Alcotest.run "xml"
    [
      ( "trees",
        [
          Alcotest.test_case "basics" `Quick test_tree_basics;
          Alcotest.test_case "ground" `Quick test_ground;
          Alcotest.test_case "gdb roundtrip" `Quick test_gdb_roundtrip;
        ] );
      ( "homs",
        [
          Alcotest.test_case "data coupling" `Quick test_hom_data_coupling;
          Alcotest.test_case "structure" `Quick test_hom_structure;
          Alcotest.test_case "non-root" `Quick test_hom_non_root;
          Alcotest.test_case "models" `Quick test_models;
        ] );
      ( "glb",
        [
          Alcotest.test_case "lower bound" `Quick test_glb_is_lower_bound;
          Alcotest.test_case "greatest" `Quick test_glb_is_greatest;
          Alcotest.test_case "label clash" `Quick test_glb_label_clash;
          Alcotest.test_case "data merge" `Quick test_glb_data_merge;
        ] );
      ( "ordered",
        [
          Alcotest.test_case "ordered homs" `Quick test_ordered_hom;
          Alcotest.test_case "prop6" `Quick test_prop6;
          Alcotest.test_case "prop10" `Quick test_prop10;
        ] );
      ( "coding",
        [
          Alcotest.test_case "relational" `Quick test_relational_coding;
        ] );
    ]
