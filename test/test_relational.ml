(* Tests for the relational substrate: instances, homomorphisms, orderings,
   glb/lub, cores, Codd tables, semantics. *)

open Certdb_values
open Certdb_relational

let n1 = Value.null 9001
let n2 = Value.null 9002
let n3 = Value.null 9003
let c i = Value.int i

(* The paper's Section 2.1 example:
   D: (1,2,⊥1), (⊥2,⊥1,3), (⊥3,5,1)   R: (1,2,4), (3,4,3), (5,5,1), (3,7,8) *)
let paper_d =
  Instance.of_list
    [ ("D", [ [ c 1; c 2; n1 ]; [ n2; n1; c 3 ]; [ n3; c 5; c 1 ] ]) ]

let paper_r =
  Instance.of_list
    [ ("D",
       [ [ c 1; c 2; c 4 ];
         [ c 3; c 4; c 3 ];
         [ c 5; c 5; c 1 ];
         [ c 3; c 7; c 8 ] ]) ]

let check = Alcotest.(check bool)

let test_paper_example () =
  check "R in [[D]]" true (Semantics.mem paper_r paper_d);
  check "D leq R" true (Ordering.leq paper_d paper_r);
  check "R not leq D" false (Ordering.leq paper_r paper_d)

let test_hom_identity () =
  check "D leq D" true (Ordering.leq paper_d paper_d);
  check "empty leq D" true (Ordering.leq Instance.empty paper_d);
  check "D not leq empty" false (Ordering.leq paper_d Instance.empty)

let test_hom_witness () =
  match Hom.find paper_d paper_r with
  | None -> Alcotest.fail "expected a homomorphism"
  | Some h ->
    check "witness is a hom" true (Hom.is_hom h paper_d paper_r);
    check "witness grounds" true (Valuation.is_grounding h)

let test_hom_repeated_nulls () =
  (* R(⊥1,⊥1) requires both positions equal in the target *)
  let d = Instance.of_list [ ("R", [ [ n1; n1 ] ]) ] in
  let t1 = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  let t2 = Instance.of_list [ ("R", [ [ c 2; c 2 ] ]) ] in
  check "no hom to (1,2)" false (Ordering.leq d t1);
  check "hom to (2,2)" true (Ordering.leq d t2)

let test_onto_hom () =
  let d = Instance.of_list [ ("R", [ [ n1 ]; [ n2 ] ]) ] in
  let r1 = Instance.of_list [ ("R", [ [ c 1 ]; [ c 2 ] ]) ] in
  let r2 = Instance.of_list [ ("R", [ [ c 1 ]; [ c 2 ]; [ c 3 ] ]) ] in
  check "onto two facts" true (Ordering.cwa_leq d r1);
  check "not onto three facts" false (Ordering.cwa_leq d r2);
  check "owa still fine" true (Ordering.leq d r2)

let test_pi_cpl () =
  let p = Instance.pi_cpl paper_d in
  check "pi_cpl drops nulls" true (Instance.is_complete p);
  Alcotest.(check int) "one complete fact" 0 (Instance.cardinal p);
  let d = Instance.of_list [ ("R", [ [ c 1 ]; [ n1 ] ]) ] in
  Alcotest.(check int) "keeps complete facts" 1
    (Instance.cardinal (Instance.pi_cpl d))

let test_ground () =
  let g = Instance.ground paper_d in
  check "ground is complete" true (Instance.is_complete g);
  check "ground in [[D]]" true (Semantics.mem g paper_d)

(* Prop. 4: ⪯ coincides with ⊑ on Codd databases. *)
let test_prop4_codd_agree () =
  for seed = 0 to 30 do
    let d =
      Codd.random ~seed ~schema:[ ("R", 2) ] ~facts:4 ~null_prob:0.4
        ~domain:3 ()
    in
    let d' =
      Codd.random ~seed:(seed + 1000) ~schema:[ ("R", 2) ] ~facts:4
        ~null_prob:0.4 ~domain:3 ()
    in
    check
      (Printf.sprintf "seed %d: hoare_leq = leq" seed)
      (Ordering.hoare_leq d d') (Ordering.leq d d')
  done

(* ... and differs on naïve databases: D = {R(⊥1,⊥1)}, D' = {R(1,2)}:
   ⪯ holds tuple-wise but there is no homomorphism. *)
let test_prop4_naive_separation () =
  let d = Instance.of_list [ ("R", [ [ n1; n1 ] ]) ] in
  let d' = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  check "hoare holds" true (Ordering.hoare_leq d d');
  check "leq fails" false (Ordering.leq d d')

(* Prop. 8: over Codd databases ⊑cwa = ⪯ + Hall. *)
let test_prop8 () =
  for seed = 0 to 40 do
    let d =
      Codd.random ~seed ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.5
        ~domain:2 ()
    in
    let d' =
      Codd.random ~seed:(seed + 500) ~schema:[ ("R", 2) ] ~facts:3
        ~null_prob:0.0 ~domain:2 ()
    in
    check
      (Printf.sprintf "seed %d: cwa via onto-hom = Hall characterization" seed)
      (Ordering.cwa_leq d d')
      (Ordering.cwa_leq_codd d d')
  done

(* Prop. 5: the ⊗-product is a glb. *)
let test_glb_is_lower_bound () =
  let r1 = Instance.of_list [ ("R", [ [ c 1; n1 ]; [ n1; c 2 ] ]) ] in
  let r2 = Instance.of_list [ ("R", [ [ c 1; c 3 ]; [ n2; c 2 ] ]) ] in
  let g, left, right = Glb.pair r1 r2 in
  check "g leq r1" true (Hom.is_hom left g r1);
  check "g leq r2" true (Hom.is_hom right g r2);
  check "g leq r1 (search)" true (Ordering.leq g r1);
  check "g leq r2 (search)" true (Ordering.leq g r2)

let test_glb_is_greatest () =
  for seed = 0 to 15 do
    let mk s =
      Codd.random_naive ~seed:s ~schema:[ ("R", 2) ] ~facts:3 ~null_prob:0.4
        ~domain:2 ~null_pool:2 ()
    in
    let r1 = mk seed and r2 = mk (seed + 100) and d = mk (seed + 200) in
    let g = Glb.glb r1 r2 in
    if Ordering.leq d r1 && Ordering.leq d r2 then
      check
        (Printf.sprintf "seed %d: lower bound flows through glb" seed)
        true (Ordering.leq d g)
  done

let test_glb_size_bound () =
  let r1 = Instance.of_list [ ("R", [ [ c 1; n1 ]; [ n1; c 2 ] ]) ] in
  let r2 = Instance.of_list [ ("R", [ [ c 1; c 3 ]; [ n2; c 2 ] ]) ] in
  let g = Glb.glb r1 r2 in
  check "product size" true (Instance.cardinal g <= 4)

(* lub: disjoint union is an upper bound, and least among sampled bounds. *)
let test_lub () =
  let r1 = Instance.of_list [ ("R", [ [ c 1; n1 ] ]) ] in
  let r2 = Instance.of_list [ ("R", [ [ n1; c 2 ] ]) ] in
  let u = Lub.pair r1 r2 in
  check "r1 leq u" true (Ordering.leq r1 u);
  check "r2 leq u" true (Ordering.leq r2 u);
  (* any other upper bound dominates u *)
  let v = Instance.of_list [ ("R", [ [ c 1; c 2 ]; [ c 2; c 2 ] ]) ] in
  if Ordering.leq r1 v && Ordering.leq r2 v then
    check "u leq other upper bound" true (Ordering.leq u v)

let test_core () =
  (* {R(⊥1), R(c)} folds to {R(c)} *)
  let d = Instance.of_list [ ("R", [ [ n1 ]; [ c 1 ] ]) ] in
  let cr = Core_instance.core d in
  Alcotest.(check int) "core size 1" 1 (Instance.cardinal cr);
  check "core equivalent" true (Ordering.equiv d cr);
  (* swap cycle is its own core *)
  let sw = Instance.of_list [ ("R", [ [ n1; n2 ]; [ n2; n1 ] ]) ] in
  check "2-cycle is a core" true (Core_instance.is_core sw);
  (* with a reflexive fact the cycle folds *)
  let sw2 = Instance.union sw (Instance.of_list [ ("R", [ [ c 5; c 5 ] ]) ]) in
  Alcotest.(check int) "folds onto loop" 1
    (Instance.cardinal (Core_instance.core sw2))

let test_codd () =
  check "paper_d not codd" false (Codd.is_codd paper_d);
  let cd = Codd.coddify paper_d in
  check "coddified is codd" true (Codd.is_codd cd);
  check "coddify less informative" true (Ordering.leq cd paper_d)

let test_rename_apart () =
  let d', h = Instance.rename_apart ~avoid:(Instance.nulls paper_d) paper_d in
  check "renamed equivalent" true (Ordering.equiv d' paper_d);
  check "injective renaming" true (Valuation.is_injective h);
  check "disjoint nulls" true
    (Value.Set.is_empty
       (Value.Set.inter (Instance.nulls d') (Instance.nulls paper_d)))

let test_semantics_sample () =
  let d = Instance.of_list [ ("R", [ [ n1; c 1 ] ]) ] in
  let worlds = Semantics.sample_completions d in
  check "samples non-empty" true (List.length worlds > 0);
  List.iter
    (fun (h, r) ->
      check "grounding" true (Valuation.is_grounding h);
      check "in [[d]]" true (Semantics.mem r d))
    worlds

let () =
  Alcotest.run "relational"
    [
      ( "hom",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "identity and empty" `Quick test_hom_identity;
          Alcotest.test_case "witness validity" `Quick test_hom_witness;
          Alcotest.test_case "repeated nulls" `Quick test_hom_repeated_nulls;
          Alcotest.test_case "onto homs" `Quick test_onto_hom;
        ] );
      ( "orderings",
        [
          Alcotest.test_case "prop4 agreement on Codd" `Quick
            test_prop4_codd_agree;
          Alcotest.test_case "prop4 separation on naive" `Quick
            test_prop4_naive_separation;
          Alcotest.test_case "prop8 cwa = hall" `Quick test_prop8;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "glb lower bound" `Quick test_glb_is_lower_bound;
          Alcotest.test_case "glb greatest" `Quick test_glb_is_greatest;
          Alcotest.test_case "glb size" `Quick test_glb_size_bound;
          Alcotest.test_case "lub" `Quick test_lub;
        ] );
      ( "instances",
        [
          Alcotest.test_case "pi_cpl" `Quick test_pi_cpl;
          Alcotest.test_case "ground" `Quick test_ground;
          Alcotest.test_case "core" `Quick test_core;
          Alcotest.test_case "codd" `Quick test_codd;
          Alcotest.test_case "rename apart" `Quick test_rename_apart;
          Alcotest.test_case "semantics sample" `Quick test_semantics_sample;
        ] );
    ]
