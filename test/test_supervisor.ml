(* lib/service socket front end: the supervisor's lifecycle and
   robustness contract.  Stale sockets are recovered on startup and the
   socket file is unlinked on drain; concurrent clients get interleaved
   but per-connection-ordered responses; a client hanging up mid-response
   (SIGPIPE) or an injected handler crash costs one row, never the
   process; idle connections past the request deadline are reclaimed;
   overload sheds with retry_after_ms hints the client honors. *)

module Obs = Certdb_obs.Obs
module Fault = Certdb_obs.Fault
module Json = Obs.Json
module Server = Certdb_service.Server
module Wire = Certdb_service.Wire
module Supervisor = Certdb_service.Supervisor
module Client = Certdb_service.Client

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---- harness --------------------------------------------------------- *)

let next_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "certdb-tsup-%d-%d.sock" (Unix.getpid ()) !n)

let wait_ready path =
  let probe =
    Client.connect
      ~config:(Client.Config.make ~request_timeout_ms:200.0 ~max_retries:0 ())
      ~path ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    match Client.ping probe with
    | Ok _ -> Client.close probe
    | Error m ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "server never became ready: %s" m
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let shutdown path =
  let c =
    Client.connect
      ~config:(Client.Config.make ~request_timeout_ms:500.0 ~max_retries:3 ())
      ~path ()
  in
  ignore (Client.request c [ ("op", Json.String "shutdown") ]);
  Client.close c

(* run [f path] against a freshly spawned supervised server; the
   supervisor domain joining without raising is itself part of every
   test ("the server never dies") *)
let with_server ?(config = Supervisor.Config.make ()) f =
  let path = next_sock () in
  let server = Server.create () in
  (match Server.load server ~name:"d" ~source:"R(1,2); R(2,1)" with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "load: %s" m);
  let sup = Domain.spawn (fun () -> Supervisor.run ~config server ~path) in
  wait_ready path;
  let r =
    try f path
    with e ->
      shutdown path;
      (try Domain.join sup with _ -> ());
      raise e
  in
  shutdown path;
  Domain.join sup;
  check "socket unlinked after drain" false (Sys.file_exists path);
  r

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send fd line =
  match Wire.write_line fd line with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write: %s" m

let read_row reader =
  match
    Wire.Fd_reader.read_line ~timeout_ms:5000.0
      ~max:Wire.default_max_line_bytes reader
  with
  | `Line l -> Json.of_string l
  | other ->
    Alcotest.failf "expected a response line, got %s"
      (match other with
      | `Timeout -> "timeout"
      | `Eof -> "eof"
      | `Stopped -> "stopped"
      | `Oversized n -> Printf.sprintf "oversized %d" n
      | `Line _ -> assert false)

let str_field k j = Option.get (Wire.str_field k j)

(* ---- lifecycle ------------------------------------------------------- *)

(* a stale socket file from a crashed predecessor must not prevent
   startup; with_server then asserts unlink-on-drain *)
let test_stale_socket_recovery () =
  let path = next_sock () in
  (* leave a bound-but-dead socket file behind, as a crash would *)
  let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX path);
  Unix.close dead;
  check "stale file present" true (Sys.file_exists path);
  let server = Server.create () in
  let sup =
    Domain.spawn (fun () ->
        Supervisor.run ~config:(Supervisor.Config.make ()) server ~path)
  in
  wait_ready path;
  shutdown path;
  Domain.join sup;
  check "unlinked" false (Sys.file_exists path)

(* ≥2 concurrent clients: responses interleave across connections but
   stay ordered within each (index 0,1,2 and the pinned ids, in order) *)
let test_concurrent_clients_ordered () =
  with_server ~config:(Supervisor.Config.make ~conns:2 ()) (fun path ->
      let client k =
        let fd = raw_connect path in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ids = List.init 3 (fun i -> Printf.sprintf "c%d_%d" k i) in
            (* pipelined: all three requests before any read *)
            List.iter
              (fun id ->
                send fd
                  (Json.to_string
                     (Json.Obj
                        [
                          ("id", Json.String id); ("op", Json.String "ping");
                        ])))
              ids;
            let reader = Wire.Fd_reader.create fd in
            List.iteri
              (fun i id ->
                let row = read_row reader in
                check_str "per-connection order" id (str_field "id" row);
                check_int "per-connection index" i
                  (Option.get (Wire.int_field "index" row)))
              ids)
      in
      let d1 = Domain.spawn (fun () -> client 1) in
      let d2 = Domain.spawn (fun () -> client 2) in
      Domain.join d1;
      Domain.join d2)

(* a client that hangs up right after sending (the response write hits
   EPIPE / a closed peer) costs that connection only *)
let test_sigpipe_mid_response () =
  with_server (fun path ->
      for _ = 1 to 3 do
        let fd = raw_connect path in
        send fd
          {|{"op":"query","db":"d","query":"ans() :- R(_x,_y), R(_y,_x)"}|};
        Unix.close fd
      done;
      (* the server is still there for a well-behaved client *)
      let c = Client.connect ~path () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.ping c with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "server died after hangups: %s" m))

(* ---- robustness ------------------------------------------------------ *)

(* an injected handler crash becomes one structured error row echoing
   the request id, counted, and the next request is served normally *)
let test_handler_crash_isolated () =
  with_server (fun path ->
      let crashed0 = Obs.counter_value (Obs.counter "service.server.crashed") in
      let fd = raw_connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Fault.with_armed
            [ ("service.handler", Fault.Nth 1) ]
            (fun () ->
              send fd {|{"id":"boom","op":"ping"}|};
              let reader = Wire.Fd_reader.create fd in
              let row = read_row reader in
              check_str "crash row echoes id" "boom" (str_field "id" row);
              check_str "crash row status" "error" (str_field "status" row);
              check "crash row message" true
                (String.length (str_field "error" row) > 0
                && Wire.str_field "error" row
                   = Some "handler crashed: injected fault at service.handler");
              (* same connection, next request: served *)
              send fd {|{"id":"after","op":"ping"}|};
              let row = read_row reader in
              check_str "served after crash" "ok" (str_field "status" row);
              check_str "id after crash" "after" (str_field "id" row)));
      check "crashed counter bumped" true
        (Obs.counter_value (Obs.counter "service.server.crashed") > crashed0))

(* an idle connection past --request-timeout-ms is answered with an
   error row and closed, reclaiming the worker *)
let test_request_deadline_reclaims () =
  with_server
    ~config:(Supervisor.Config.make ~conns:1 ~request_timeout_ms:60.0 ())
    (fun path ->
      let fd = raw_connect path in
      let reader = Wire.Fd_reader.create fd in
      let row = read_row reader in
      check_str "timeout row" "error" (str_field "status" row);
      check_str "timeout message" "request timed out" (str_field "error" row);
      (match
         Wire.Fd_reader.read_line ~timeout_ms:2000.0 ~max:4096 reader
       with
      | `Eof -> ()
      | _ -> Alcotest.fail "connection not closed after deadline");
      Unix.close fd;
      (* the single worker is free again *)
      let c = Client.connect ~path () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.ping c with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "worker not reclaimed: %s" m))

(* oversized request lines are drained and answered, and the stream
   stays in sync for the next request *)
let test_oversized_line () =
  with_server
    ~config:(Supervisor.Config.make ~max_line_bytes:256 ())
    (fun path ->
      let fd = raw_connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send fd
            (Printf.sprintf {|{"id":"big","op":"query","query":"%s"}|}
               (String.make 400 'x'));
          send fd {|{"id":"next","op":"ping"}|};
          let reader = Wire.Fd_reader.create fd in
          let row = read_row reader in
          check_str "oversized status" "error" (str_field "status" row);
          check_str "oversized message" "request line exceeds 256 bytes"
            (str_field "error" row);
          let row = read_row reader in
          check_str "stream in sync" "next" (str_field "id" row);
          check_str "served" "ok" (str_field "status" row)))

(* wire write faults: the client retries through dropped and truncated
   responses, reusing the request id *)
let test_client_retries_write_faults () =
  with_server (fun path ->
      let retries0 = Obs.counter_value (Obs.counter "service.client.retries") in
      Fault.with_armed
        [ ("service.write", Fault.Nth 1) ]
        (fun () ->
          let c =
            Client.connect
              ~config:
                (Client.Config.make ~request_timeout_ms:100.0 ~max_retries:5
                   ~backoff_ms:2.0 ())
              ~path ()
          in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (* first response write is dropped (hit 1 -> drop); the
                 retry reuses the id and succeeds *)
              match Client.request c ~id:"w1" [ ("op", Json.String "ping") ] with
              | Ok row ->
                check_str "retried to success" "ok" (str_field "status" row);
                check_str "same id" "w1" (str_field "id" row)
              | Error m -> Alcotest.failf "client gave up: %s" m));
      check "client retried" true
        (Obs.counter_value (Obs.counter "service.client.retries") > retries0))

(* admission control: with conns=1/queue=1 and the only worker parked on
   an idle connection, new connections are shed with a retry_after_ms
   hint; the retrying client still gets through once the deadline
   reclaims the worker *)
let test_overload_sheds_with_hint () =
  with_server
    ~config:
      (Supervisor.Config.make ~conns:1 ~queue_capacity:1
         ~request_timeout_ms:300.0 ~retry_after_ms:5.0 ())
    (fun path ->
      let shed0 = Obs.counter_value (Obs.counter "service.server.shed") in
      (* park the worker: an open connection that sends nothing *)
      let parked = raw_connect path in
      Unix.sleepf 0.03;
      (* fill the queue with a second idle connection *)
      let queued = raw_connect path in
      Unix.sleepf 0.03;
      (* now a direct probe must be shed with a hint *)
      let probe = raw_connect path in
      let reader = Wire.Fd_reader.create probe in
      let row = read_row reader in
      check_str "shed status" "overloaded" (str_field "status" row);
      check "shed carries retry_after_ms" true
        (Wire.float_field "retry_after_ms" row <> None);
      Unix.close probe;
      (* the retrying client waits the hint out and succeeds once the
         parked connection times out *)
      let c =
        Client.connect
          ~config:
            (Client.Config.make ~request_timeout_ms:500.0 ~max_retries:10
               ~backoff_ms:5.0 ())
          ~path ()
      in
      Fun.protect
        ~finally:(fun () ->
          Client.close c;
          (try Unix.close parked with Unix.Unix_error _ -> ());
          try Unix.close queued with Unix.Unix_error _ -> ())
        (fun () ->
          (match Client.ping c with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "client never admitted: %s" m);
          check "sheds counted" true
            (Obs.counter_value (Obs.counter "service.server.shed") > shed0)))

(* SIGTERM drains like the shutdown verb: in a child process, so the
   signal exercises the real handler path end to end *)
let test_sigterm_drains () =
  let path = next_sock () in
  let server = Server.create () in
  let sup =
    Domain.spawn (fun () ->
        Supervisor.run ~config:(Supervisor.Config.make ()) server ~path)
  in
  wait_ready path;
  (* in-process SIGTERM: the handler sets the stop flag; the acceptor
     notices within its select slice and run () drains *)
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Domain.join sup;
  check "socket unlinked after SIGTERM drain" false (Sys.file_exists path)

let () =
  Alcotest.run "supervisor"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "stale socket recovery + unlink" `Quick
            test_stale_socket_recovery;
          Alcotest.test_case "concurrent clients, ordered per conn" `Quick
            test_concurrent_clients_ordered;
          Alcotest.test_case "hangup mid-response survives" `Quick
            test_sigpipe_mid_response;
          Alcotest.test_case "SIGTERM drains" `Quick test_sigterm_drains;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "handler crash isolated" `Quick
            test_handler_crash_isolated;
          Alcotest.test_case "request deadline reclaims worker" `Quick
            test_request_deadline_reclaims;
          Alcotest.test_case "oversized line answered" `Quick
            test_oversized_line;
          Alcotest.test_case "client retries write faults" `Quick
            test_client_retries_write_faults;
          Alcotest.test_case "overload sheds with hint" `Quick
            test_overload_sheds_with_hint;
        ] );
    ]
