(* Request-scoped tracing: span-tree invariants (one root per trace,
   children nest within parent intervals), cross-domain trace inheritance
   in Engine.Batch, the explain:true wire surface against the Obs
   counters it must agree with, Chrome trace-event JSON validity, and the
   OpenMetrics exposition + lint. *)

module Obs = Certdb_obs.Obs
module Trace = Certdb_obs.Trace
module Openmetrics = Certdb_obs.Openmetrics
module Json = Obs.Json
module Engine = Certdb_csp.Engine
module Server = Certdb_service.Server

(* every test starts from an empty ring and a clean registry *)
let fresh () =
  Obs.reset ();
  Trace.set_enabled true;
  Trace.clear ()

let events_of_trace tid =
  List.filter (fun (e : Trace.event) -> e.Trace.trace_id = tid)
    (Trace.events ())

(* ---- span-tree invariants -------------------------------------------- *)

(* the checks shared by the unit and qcheck cases: exactly one root,
   every parent link resolves inside the trace, and children close
   within their parent's interval *)
let check_tree tid =
  let evs =
    List.filter (fun (e : Trace.event) -> e.Trace.kind = Trace.Span)
      (events_of_trace tid)
  in
  if evs = [] then failwith "trace recorded no spans";
  let roots = List.filter (fun e -> e.Trace.parent = None) evs in
  if List.length roots <> 1 then
    failwith
      (Printf.sprintf "trace %d has %d roots, expected exactly 1" tid
         (List.length roots));
  let root = List.hd roots in
  if root.Trace.span_id <> tid then
    failwith "root span id is not the trace id";
  let by_id = List.map (fun e -> (e.Trace.span_id, e)) evs in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.parent with
      | None -> ()
      | Some p -> (
        match List.assoc_opt p by_id with
        | None ->
          failwith (Printf.sprintf "span %d has unknown parent %d"
              e.Trace.span_id p)
        | Some pe ->
          let child_end = e.Trace.start_ms +. e.Trace.dur_ms in
          let parent_end = pe.Trace.start_ms +. pe.Trace.dur_ms in
          if e.Trace.start_ms < pe.Trace.start_ms -. 1e-9 then
            failwith "child starts before its parent";
          if child_end > parent_end +. 1e-9 then
            failwith "child ends after its parent"))
    evs

let test_one_root_nesting () =
  fresh ();
  let tid =
    Trace.with_trace "t.root" (fun tid ->
        Trace.with_span "t.a" (fun () ->
            Trace.with_span "t.a.1" (fun () -> ());
            Trace.with_span "t.a.2" (fun () -> ()));
        Trace.with_span "t.b" (fun () -> ());
        tid)
  in
  check_tree tid;
  Alcotest.(check int) "five spans" 5 (List.length (events_of_trace tid));
  (* spans also fed the plain timers *)
  let snap = Obs.snapshot () in
  List.iter
    (fun name ->
      match Obs.find_timer snap name with
      | Some s -> Alcotest.(check int) (name ^ " count") 1 s.Obs.count
      | None -> Alcotest.fail (name ^ ": timer never fed"))
    [ "t.root"; "t.a"; "t.a.1"; "t.a.2"; "t.b" ]

(* random nesting programs: at each step either open a child (down) or
   close the innermost span (up); the invariants must hold for any such
   interleaving *)
let test_tree_qcheck =
  let gen = QCheck.(list_of_size Gen.(int_range 1 30) bool) in
  QCheck.Test.make ~count:100 ~name:"trace tree invariants" gen (fun prog ->
      fresh ();
      let tid =
        Trace.with_trace "q.root" (fun tid ->
            (* interpret the program as a stack discipline over closures *)
            let rec go depth = function
              | [] -> ()
              | true :: rest when depth < 6 ->
                Trace.with_span
                  (Printf.sprintf "q.s%d" depth)
                  (fun () -> go (depth + 1) rest)
              | _ :: rest -> go depth rest
            in
            go 0 prog;
            tid)
      in
      check_tree tid;
      true)

let test_ring_wrap () =
  fresh ();
  let cap = Trace.capacity () in
  Trace.set_capacity 4;
  for i = 1 to 10 do
    Trace.with_trace (Printf.sprintf "w.%d" i) (fun _ -> ())
  done;
  let n = List.length (Trace.events ()) in
  Alcotest.(check bool) "ring holds at most 4" true (n <= 4);
  Alcotest.(check int) "dropped counts overwrites" 6 (Trace.dropped ());
  Trace.set_capacity cap

(* ---- cross-domain inheritance in Engine.Batch ------------------------ *)

let test_batch_inheritance () =
  fresh ();
  let tid =
    Trace.with_trace "t.batch" (fun tid ->
        let rs =
          Engine.Batch.map_result ~jobs:4
            (fun x -> x * x)
            [ 1; 2; 3; 4; 5; 6; 7; 8 ]
        in
        List.iteri
          (fun i r ->
            match r with
            | Ok y -> Alcotest.(check int) "task result" ((i + 1) * (i + 1)) y
            | Error _ -> Alcotest.fail "task failed")
          rs;
        tid)
  in
  let tasks =
    List.filter
      (fun (e : Trace.event) -> e.Trace.name = "csp.batch.task")
      (Trace.events ())
  in
  Alcotest.(check int) "one task span per input" 8 (List.length tasks);
  (* every task inherited the coordinator's trace id, across domains *)
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check int) "task trace id" tid e.Trace.trace_id;
      if not (List.mem_assoc "worker" e.Trace.labels) then
        Alcotest.fail "task span lacks a worker label")
    tasks;
  (* distinct span ids even when tasks ran concurrently *)
  let ids = List.map (fun e -> e.Trace.span_id) tasks in
  Alcotest.(check int) "distinct task span ids" 8
    (List.length (List.sort_uniq compare ids));
  (* worker-domain spans rolled up into the coordinator's timer registry *)
  match Obs.find_timer (Obs.snapshot ()) "csp.batch.task" with
  | Some s -> Alcotest.(check int) "timer rollup" 8 s.Obs.count
  | None -> Alcotest.fail "csp.batch.task timer never fed"

let test_distinct_requests_distinct_traces () =
  fresh ();
  let t1 = Trace.with_trace "r.1" (fun tid -> tid) in
  let t2 = Trace.with_trace "r.2" (fun tid -> tid) in
  Alcotest.(check bool) "distinct trace ids" true (t1 <> t2)

(* ---- the wire surface ------------------------------------------------ *)

let server () =
  let s = Server.create ~config:(Server.Config.make ~jobs:4 ()) () in
  (match Server.load s ~name:"d" ~source:"R(1,2); R(2,_x); S(3)" with
  | Ok _ -> ()
  | Error m -> failwith m);
  s

let query ?(extra = []) q =
  Json.to_string
    (Json.Obj
       ([ ("op", Json.String "query"); ("db", Json.String "d");
          ("query", Json.String q) ]
       @ extra))

let handle s line =
  let row, _ = Server.handle_line s ~idx:0 line in
  row

let counter_value snap name =
  match List.assoc_opt name snap.Obs.counters with Some v -> v | None -> 0

let test_explain_matches_counters () =
  fresh ();
  let s = server () in
  let row =
    handle s
      (query ~extra:[ ("explain", Json.Bool true) ]
         "ans() :- R(_x,_y), R(_y,_x)")
  in
  let trace =
    match Json.member "trace" row with
    | Some t -> t
    | None -> Alcotest.fail "explain:true returned no trace object"
  in
  let str k =
    match Json.member k trace with
    | Some (Json.String v) -> v
    | _ -> Alcotest.fail (Printf.sprintf "trace lacks field %s" k)
  in
  let snap = Obs.snapshot () in
  (* the route in the trace is the one whose plan counter fired *)
  let route_counter =
    match str "route" with
    | "naive-eval" -> "query.plan.naive_eval"
    | "acyclic-join" -> "query.plan.acyclic_join"
    | "hom-ladder" -> "query.plan.hom_ladder"
    | r when String.length r >= 13 && String.sub r 0 13 = "bounded-width" ->
      "query.plan.bounded_width"
    | r -> Alcotest.fail ("unknown route " ^ r)
  in
  Alcotest.(check int) "route counter fired" 1 (counter_value snap route_counter);
  (* first sight of this query: the cache missed, and the counter agrees *)
  Alcotest.(check string) "cache disposition" "miss" (str "cache");
  Alcotest.(check int) "cache.miss counter" 1
    (counter_value snap "service.cache.miss");
  (* same query again: a hit, in both the trace and the counter *)
  let row2 =
    handle s
      (query ~extra:[ ("explain", Json.Bool true) ]
         "ans() :- R(_x,_y), R(_y,_x)")
  in
  (match Json.member "trace" row2 with
  | Some t2 -> (
    match Json.member "cache" t2 with
    | Some (Json.String "hit") -> ()
    | _ -> Alcotest.fail "second request should trace as a cache hit")
  | None -> Alcotest.fail "explain:true returned no trace object");
  Alcotest.(check int) "cache.hit counter" 1
    (counter_value (Obs.snapshot ()) "service.cache.hit")

let test_explain_false_unchanged () =
  fresh ();
  let s = server () in
  let row = handle s (query "ans() :- R(_x,_y)") in
  Alcotest.(check bool) "no trace member without explain" true
    (Json.member "trace" row = None);
  let row' =
    handle s (query ~extra:[ ("explain", Json.Bool false) ] "ans() :- S(_z)")
  in
  Alcotest.(check bool) "explain:false adds nothing" true
    (Json.member "trace" row' = None)

let test_batch_explain () =
  fresh ();
  let s = server () in
  let reqs =
    List.init 6 (fun i ->
        Json.Obj
          [
            ("op", Json.String "query"); ("db", Json.String "d");
            ( "query",
              Json.String (Printf.sprintf "ans() :- R(_a%d,_b%d)" i i) );
          ])
  in
  let row =
    handle s
      (Json.to_string
         (Json.Obj
            [
              ("op", Json.String "batch"); ("requests", Json.List reqs);
              ("explain", Json.Bool true);
            ]))
  in
  match Json.member "results" row with
  | Some (Json.List rows) ->
    Alcotest.(check int) "six results" 6 (List.length rows);
    let tids =
      List.map
        (fun r ->
          match Json.member "trace" r with
          | Some t -> (
            match Json.member "trace_id" t with
            | Some (Json.Int tid) -> tid
            | _ -> Alcotest.fail "sub-trace lacks trace_id")
          | None -> Alcotest.fail "batch sub-response lacks trace")
        rows
    in
    (* one shared trace across the whole batch, fanned out over domains *)
    Alcotest.(check int) "single batch trace id" 1
      (List.length (List.sort_uniq compare tids))
  | _ -> Alcotest.fail "batch returned no results"

(* ---- exporters ------------------------------------------------------- *)

let test_chrome_json () =
  fresh ();
  ignore
    (Trace.with_trace "c.root" (fun tid ->
         Trace.with_span "c.child" (fun () -> Trace.instant "c.mark");
         tid));
  let j = Trace.chrome (Trace.events ()) in
  (* the export must survive a parse round-trip and carry the mandatory
     Chrome trace-event fields *)
  let j = Json.of_string (Json.to_string j) in
  match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
    Alcotest.(check int) "three events" 3 (List.length evs);
    List.iter
      (fun e ->
        let has k = Json.member k e <> None in
        List.iter
          (fun k ->
            if not (has k) then Alcotest.fail ("event lacks field " ^ k))
          [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ];
        match Json.member "ph" e with
        | Some (Json.String "X") ->
          if not (has "dur") then Alcotest.fail "complete event lacks dur"
        | Some (Json.String "i") -> ()
        | _ -> Alcotest.fail "unexpected event phase")
      evs;
    (* timestamps are rebased: the earliest event sits at ts = 0 *)
    let ts_of e =
      match Json.member "ts" e with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> Alcotest.fail "ts is not a number"
    in
    let min_ts = List.fold_left (fun m e -> min m (ts_of e)) infinity evs in
    Alcotest.(check (float 1e-6)) "rebased to zero" 0.0 min_ts
  | _ -> Alcotest.fail "no traceEvents array"

let test_openmetrics_expose () =
  fresh ();
  let s = server () in
  ignore (handle s (query "ans() :- R(_x,_y), R(_y,_x)"));
  let body = Openmetrics.expose (Obs.snapshot ()) in
  (match Openmetrics.lint body with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("exposition fails its own lint: " ^ m));
  let has_line pred =
    List.exists pred (String.split_on_char '\n' body)
  in
  Alcotest.(check bool) "ends with EOF" true
    (has_line (String.equal "# EOF"));
  Alcotest.(check bool) "counter total present" true
    (has_line (fun l ->
         String.length l > 26
         && String.sub l 0 26 = "certdb_service_cache_miss_"));
  Alcotest.(check bool) "p99 quantile exposed" true
    (has_line (fun l ->
         let q = {|quantile="0.99"|} in
         let rec find i =
           i + String.length q <= String.length l
           && (String.sub l i (String.length q) = q || find (i + 1))
         in
         String.length l > 0 && l.[0] <> '#' && find 0))

let test_openmetrics_lint_rejects () =
  let reject name body =
    match Openmetrics.lint body with
    | Ok () -> Alcotest.fail (name ^ ": lint accepted invalid exposition")
    | Error _ -> ()
  in
  reject "missing EOF" "# TYPE certdb_x counter\ncertdb_x_total 1\n";
  reject "duplicate TYPE"
    "# TYPE certdb_x counter\n# TYPE certdb_x counter\ncertdb_x_total 1\n# EOF\n";
  reject "invalid name"
    "# TYPE 9bad counter\n9bad_total 1\n# EOF\n";
  reject "counter without _total suffix"
    "# TYPE certdb_x counter\ncertdb_x 1\n# EOF\n";
  reject "content after EOF" "# EOF\ncertdb_x 1\n";
  match Openmetrics.lint "# EOF\n" with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("empty exposition rejected: " ^ m)

let () =
  Alcotest.run "trace"
    [
      ( "tree",
        [
          Alcotest.test_case "one root, nested intervals" `Quick
            test_one_root_nesting;
          QCheck_alcotest.to_alcotest test_tree_qcheck;
          Alcotest.test_case "ring wrap-around" `Quick test_ring_wrap;
        ] );
      ( "batch",
        [
          Alcotest.test_case "cross-domain inheritance at jobs=4" `Quick
            test_batch_inheritance;
          Alcotest.test_case "distinct requests, distinct traces" `Quick
            test_distinct_requests_distinct_traces;
        ] );
      ( "wire",
        [
          Alcotest.test_case "explain matches the counters" `Quick
            test_explain_matches_counters;
          Alcotest.test_case "explain:false is unchanged" `Quick
            test_explain_false_unchanged;
          Alcotest.test_case "batch explain shares one trace" `Quick
            test_batch_explain;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace-event JSON" `Quick test_chrome_json;
          Alcotest.test_case "openmetrics exposition lints" `Quick
            test_openmetrics_expose;
          Alcotest.test_case "openmetrics lint rejects" `Quick
            test_openmetrics_lint_rejects;
        ] );
    ]
