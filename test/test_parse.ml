(* Tests for the concrete instance syntax. *)

open Certdb_values
open Certdb_relational

let check = Alcotest.(check bool)

let test_basic () =
  let d, bindings = Parse.instance "R(1, 2); S(\"ann\", _x)" in
  Alcotest.(check int) "two facts" 2 (Instance.cardinal d);
  check "has R fact" true
    (Instance.mem d (Instance.fact "R" [ Value.int 1; Value.int 2 ]));
  Alcotest.(check int) "one null" 1 (List.length bindings);
  check "null is null" true (Value.is_null (List.assoc "x" bindings))

let test_shared_nulls () =
  let d, _ = Parse.instance "R(_x, _y); R(_y, _x)" in
  Alcotest.(check int) "two facts" 2 (Instance.cardinal d);
  Alcotest.(check int) "two nulls" 2
    (Value.Set.cardinal (Instance.nulls d));
  (* the same name is the same null *)
  let d2, _ = Parse.instance "R(_x, _x)" in
  Alcotest.(check int) "one null" 1 (Value.Set.cardinal (Instance.nulls d2))

let test_seeded_bindings () =
  let _, bindings = Parse.instance "S(_x, _y)" in
  let head, _ = Parse.instance ~bindings "T(_x); T(_z)" in
  let x = List.assoc "x" bindings in
  check "seeded null reused" true
    (Instance.mem head (Instance.fact "T" [ x ]))

let test_values () =
  check "int" true (Value.equal (Parse.value "42") (Value.int 42));
  check "negative int" true (Value.equal (Parse.value "-7") (Value.int (-7)));
  check "string" true (Value.equal (Parse.value "\"a b\"") (Value.str "a b"));
  check "bare ident as string" true
    (Value.equal (Parse.value "ann") (Value.str "ann"));
  check "null" true (Value.is_null (Parse.value "_q"))

let test_roundtrip () =
  let src = "R(1, _a, \"x\"); S(_a)" in
  let d, _ = Parse.instance src in
  let printed = Parse.to_string d in
  let d', _ = Parse.instance printed in
  check "roundtrip equivalent" true (Ordering.equiv d d')

let test_empty_args () =
  let d, _ = Parse.instance "Flag()" in
  check "0-ary fact" true (Instance.mem d (Instance.fact "Flag" []))

let test_errors () =
  let fails s =
    match Parse.instance s with
    | exception Parse.Parse_error _ -> true
    | _ -> false
  in
  check "unterminated string" true (fails "R(\"abc)");
  check "missing paren" true (fails "R(1");
  check "lone underscore" true (fails "R(_)");
  check "garbage" true (fails "R(1) ? S(2)");
  check "no separator" true (fails "R(1) S(2)")

let test_whitespace () =
  let d, _ = Parse.instance "  R ( 1 ,\n 2 ) ;\t S ( 3 )  " in
  Alcotest.(check int) "two facts" 2 (Instance.cardinal d)

(* FO formula parsing *)
let test_fo_parse () =
  let open Certdb_query in
  let f = Fo_parse.formula "exists x, y. R(x, y) and not S(x)" in
  check "ep shape" false (Fo.is_existential_positive f);
  check "existential" true (Fo.is_existential f);
  let d = Instance.of_list [ ("R", [ [ Value.int 1; Value.int 2 ] ]) ] in
  check "holds" true (Fo.holds d f);
  let g = Fo_parse.formula "forall x. R(x, 2) -> x = 1" in
  check "universal holds" true (Fo.holds d g);
  let h = Fo_parse.formula "R(1, 2) or false" in
  check "constant atom" true (Fo.holds d h);
  let prec = Fo_parse.formula "true and false or true" in
  check "and binds tighter than or" true (Fo.holds d prec)

let test_fo_parse_errors () =
  let open Certdb_query in
  let fails s =
    match Fo_parse.formula s with
    | exception Fo_parse.Parse_error _ -> true
    | _ -> false
  in
  check "trailing" true (fails "true true");
  check "bad quantifier" true (fails "exists . R(x)");
  check "unclosed atom" true (fails "R(x");
  check "dangling arrow" true (fails "R(1) ->")

let () =
  Alcotest.run "parse"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "shared nulls" `Quick test_shared_nulls;
          Alcotest.test_case "seeded bindings" `Quick test_seeded_bindings;
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "empty args" `Quick test_empty_args;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "whitespace" `Quick test_whitespace;
        ] );
      ( "fo",
        [
          Alcotest.test_case "formulas" `Quick test_fo_parse;
          Alcotest.test_case "errors" `Quick test_fo_parse_errors;
        ] );
    ]
