Locate the binary and the shipped example inputs:

  $ CERTDB=$(find . ../.. -name 'certdb.exe' 2>/dev/null | head -1)
  $ EXAMPLES=$(dirname $(find . ../.. -path '*examples/analyze/safe.fo' 2>/dev/null | head -1))
  $ echo found
  found

A safe first-order sentence gets a derivation-backed certificate; the
negation is reported to the monotonicity classifier:

  $ $CERTDB analyze --fo @$EXAMPLES/safe.fo
  safety: safe (range-restricted: (sentence); derivation: 5 steps)
  monotonicity: not syntactically monotone (negation in '~(S(x))')

An unrestricted variable makes the sentence unsafe — the culprit
variable is named and the exit code is 1:

  $ $CERTDB analyze --fo @$EXAMPLES/unsafe.fo
  safety: unsafe (variable y escapes in 'exists x,y. R(x)')
  monotonicity: monotone (existential-positive)
  [1]

A path-shaped CQ is GYO-acyclic and the planner routes it to the
acyclic join:

  $ $CERTDB analyze -q @$EXAMPLES/acyclic.cq
  safety: safe (range-restricted: (sentence); derivation: 4 steps)
  monotonicity: monotone (existential-positive)
  hypergraph: acyclic (GYO reduction: 4 steps); width estimate: 1
  plan: acyclic-join
  footprint: R[2] S[1]

The triangle is cyclic — the certificate is the irreducible residual
hypergraph — but its width estimate keeps it on the bounded-width DP:

  $ $CERTDB analyze -q @$EXAMPLES/cyclic.cq
  safety: safe (range-restricted: (sentence); derivation: 5 steps)
  monotonicity: monotone (existential-positive)
  hypergraph: cyclic (residual: #0{x,y}, #1{y,z}, #2{x,z}); width estimate: 2
  plan: bounded-width(2)
  footprint: R[1 2]

A weakly acyclic tgd set terminates with a round bound derived against
the given instance:

  $ $CERTDB analyze --tgd @$EXAMPLES/weakly_acyclic.tgd --instance "R(1,2)"
  weak-acyclicity: terminates (max rank 1, round bound 22, 4 positions)

A diverging set yields the special-edge cycle as a counterexample and
exit code 1:

  $ $CERTDB analyze --tgd @$EXAMPLES/diverging.tgd
  weak-acyclicity: diverges (special edge R.1 -> R.1; cycle: R.1 -> R.1)
  [1]

--json emits one object with class + certificate per analysis:

  $ $CERTDB analyze --json --tgd @$EXAMPLES/weakly_acyclic.tgd
  {"weak_acyclicity":{"class":"terminates","max_rank":1,"round_bound":4,"ranks":{"R.0":0,"R.1":0,"S.0":0,"S.1":1}}}

  $ $CERTDB analyze --json -q @$EXAMPLES/cyclic.cq | tr ',' '\n' | grep -E 'route|class|width'
  {"safety":{"class":"safe"
  "monotonicity":{"class":"monotone"}
  "hypergraph":{"class":"cyclic"
  "width_estimate":2}
  "plan":{"route":"bounded-width(2)"}

FDs over nulls get the three-valued Badia–Lemire grade.  A null in the
determined column is still certain when no pair of tuples agrees on the
left-hand side; a repairable disagreement is possible; two constants
forced apart are violated (exit 1):

  $ $CERTDB analyze --fds "R: 1 -> 2" --instance "R(1,2); R(3,_x)"
  fd R: 1 -> 2: certain
  $ $CERTDB analyze --fds "R: 1 -> 2" --instance "R(1,_x); R(1,3); R(2,5)"
  fd R: 1 -> 2: possible
  $ $CERTDB analyze --fds "R: 1 -> 2" --instance "R(1,2); R(1,3)"
  fd R: 1 -> 2: violated
  [1]

--json carries the re-checkable certificates: a possible verdict ships
both witnesses (a satisfying completion's merges and a violating pair),
a violated one the forced clash of constants:

  $ $CERTDB analyze --json --fds "R: 1 -> 2" --instance "R(1,_x); R(1,3); R(2,5)"
  {"fds":[{"fd":"R: 1 -> 2","grade":"possible","sat":{"kind":"completion-exists","merges":[["3","_|_1"]]},"falsified":{"kind":"violating-pair","tuple1":"(1, 3)","tuple2":"(1, _|_1)","position":2,"unifier":[]}}]}
  $ $CERTDB analyze --json --fds "R: 1 -> 2" --instance "R(1,2); R(1,3)"
  {"fds":[{"fd":"R: 1 -> 2","grade":"violated","certificate":{"kind":"forced-clash","left":"2","right":"3","chain":1}}]}
  [1]

Independence atoms X ⊥ Y report the product test — block counts and
the canonical-completion count on a certain verdict, the first missing
X x Y combination on a violated one:

  $ $CERTDB analyze --independence "R: 1 | 2" --instance "R(1,1); R(2,2); R(_u,_v); R(_s,_t)"
  independence R: 1 | 2: possible
  $ $CERTDB analyze --json --independence "R: 1 | 2" --instance "R(1,1); R(1,2); R(2,1); R(2,2)"
  {"independence":[{"atom":"R: 1 | 2","grade":"certain","certificate":{"kind":"product-holds","x_blocks":2,"y_blocks":2,"rows":4,"canonical":1}}]}
  $ $CERTDB analyze --json --independence "R: 1 | 2" --instance "R(1,1); R(2,2)"
  {"independence":[{"atom":"R: 1 | 2","grade":"violated","certificate":{"kind":"missing-combination","x":"(1)","y":"(2)","valuation":[]}}]}
  [1]

A query's footprint — constrained positions per relation plus the
mentioned constants — rides along in the JSON, keyed for the cache:

  $ $CERTDB analyze --json -q @$EXAMPLES/acyclic.cq | tr ',' '\n' | grep -A5 footprint
  "footprint":{"rels":[{"rel":"R"
  "positions":[2]}
  {"rel":"S"
  "positions":[1]}]
  "constants":[]
  "key":"R[2] S[1]"}}

Passing nothing to analyze is an error:

  $ $CERTDB analyze
  nothing to analyze: pass --query, --fo, --tgd, --fds, or --independence
  [2]

The analyses are counted (csp.analysis.*), and the chosen route is
recorded (query.plan.*):

  $ $CERTDB analyze -q @$EXAMPLES/acyclic.cq --stats-json 2>&1 >/dev/null | tr ',' '\n' | grep -E '"(csp.analysis|query.plan)' | grep -v ':0'
  "csp.analysis.hypergraph":2
  "csp.analysis.monotone":1
  "csp.analysis.safety":1

The self-test re-verifies every shipped example certificate:

  $ $CERTDB analyze --self-test > /dev/null && echo certificates-ok
  certificates-ok

The certified chase bound is observable end to end: a weakly acyclic
target chase runs under exchange.chase.certified, while an explicit
round cap (the legacy behaviour) stays uncertified-free:

  $ $CERTDB chase --tgd "S(_x,_y) -> T(_x,_z); T(_z,_y)" --target-tgd "T(_a,_b) -> U(_b)" "S(1,2)" --stats-json 2>&1 >/dev/null | tr ',' '\n' | grep -E 'chase.(un)?certified'
  "exchange.chase.certified":1
  "exchange.chase.uncertified":0
