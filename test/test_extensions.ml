(* Tests for the extension modules: graph parameters (Section 4's
   monotone/antimonotone observation), the Dedekind–MacNeille completion
   (Theorem 3's order-theoretic engine), AC-3 preprocessing, and certain
   answers in data exchange. *)

open Certdb_values
open Certdb_csp
open Certdb_graph

let check = Alcotest.(check bool)

(* graph parameters *)
let test_chromatic () =
  Alcotest.(check int) "K4" 4 (Graph_props.chromatic_number (Digraph.clique 4));
  Alcotest.(check int) "C5" 3 (Graph_props.chromatic_number (Digraph.cycle 5));
  Alcotest.(check int) "C6" 2 (Graph_props.chromatic_number (Digraph.cycle 6));
  Alcotest.(check int) "P4" 2 (Graph_props.chromatic_number (Digraph.path 4));
  Alcotest.(check int) "empty" 0 (Graph_props.chromatic_number Digraph.empty)

let test_girth () =
  Alcotest.(check (option int)) "C5 girth" (Some 5)
    (Graph_props.girth (Digraph.cycle 5));
  Alcotest.(check (option int)) "C5 odd girth" (Some 5)
    (Graph_props.odd_girth (Digraph.cycle 5));
  Alcotest.(check (option int)) "C6 odd girth" None
    (Graph_props.odd_girth (Digraph.cycle 6));
  Alcotest.(check (option int)) "path girth" None
    (Graph_props.girth (Digraph.path 5));
  check "path acyclic" true (Graph_props.is_acyclic (Digraph.path 5));
  check "cycle not acyclic" false (Graph_props.is_acyclic (Digraph.cycle 3))

let test_longest_path () =
  Alcotest.(check (option int)) "P5" (Some 5)
    (Graph_props.longest_path (Digraph.path 5));
  Alcotest.(check (option int)) "cyclic" None
    (Graph_props.longest_path (Digraph.cycle 4));
  Alcotest.(check (option int)) "tournament" (Some 3)
    (Graph_props.longest_path (Digraph.transitive_tournament 4))

let test_monotone_antimonotone () =
  (* chromatic number monotone, odd girth antimonotone along ⊑ *)
  for seed = 0 to 14 do
    let g = Digraph.random ~seed ~vertices:5 ~edge_prob:0.3 () in
    let g' = Digraph.random ~seed:(seed + 70) ~vertices:5 ~edge_prob:0.4 () in
    check
      (Printf.sprintf "seed %d" seed)
      true
      (Graph_props.monotone_antimonotone_witness g g')
  done;
  (* concrete: C5 ⊑ C3 (odd cycles map to shorter odd cycles? C5 → C3
     exists since 5 ≥ 3 odd walk... verify explicitly) *)
  if Graph_hom.leq (Digraph.cycle 5) (Digraph.cycle 3) then
    check "C5 vs C3 parameters" true
      (Graph_props.monotone_antimonotone_witness (Digraph.cycle 5) (Digraph.cycle 3))

(* Dedekind–MacNeille completion *)
let test_completion_chain () =
  (* a 3-chain completes to itself (already a lattice) *)
  let c = Certdb_order.Completion.make ~size:3 ~leq:(fun x y -> x <= y) in
  Alcotest.(check int) "chain cuts" 3 (Certdb_order.Completion.cardinal c);
  check "lattice" true (Certdb_order.Completion.is_lattice c);
  check "order preserved" true
    (Certdb_order.Completion.embedding_preserves_order c
       ~leq:(fun x y -> x <= y))

let test_completion_antichain () =
  (* a 2-antichain gains bottom and top: 4 cuts *)
  let c = Certdb_order.Completion.make ~size:2 ~leq:(fun x y -> x = y) in
  Alcotest.(check int) "antichain cuts" 4 (Certdb_order.Completion.cardinal c);
  check "lattice" true (Certdb_order.Completion.is_lattice c);
  check "order preserved" true
    (Certdb_order.Completion.embedding_preserves_order c ~leq:(fun x y -> x = y))

let test_completion_divisibility () =
  (* divisors of 12 under divisibility: {1,2,3,4,6,12} is already a
     lattice; elements indexed 0..5 *)
  let divisors = [| 1; 2; 3; 4; 6; 12 |] in
  let leq x y = divisors.(y) mod divisors.(x) = 0 in
  let c = Certdb_order.Completion.make ~size:6 ~leq in
  Alcotest.(check int) "divisor lattice" 6 (Certdb_order.Completion.cardinal c);
  check "lattice" true (Certdb_order.Completion.is_lattice c);
  check "order preserved" true
    (Certdb_order.Completion.embedding_preserves_order c ~leq);
  (* meet of 4 and 6 is 2 *)
  let e i = Certdb_order.Completion.embed c i in
  Alcotest.(check int) "gcd(4,6)=2"
    (e 1)
    (Certdb_order.Completion.meet c (e 3) (e 4))

let test_completion_incomparable_pair_without_meet () =
  (* poset: a, b < c, d with no meet/join among {a,b} originally; the
     completion adds them *)
  let leq x y =
    x = y || ((x = 0 || x = 1) && (y = 2 || y = 3))
  in
  let c = Certdb_order.Completion.make ~size:4 ~leq in
  check "completion is a lattice" true (Certdb_order.Completion.is_lattice c);
  check "order preserved" true
    (Certdb_order.Completion.embedding_preserves_order c ~leq);
  (* original poset had no glb for {2,3}; the completion gives one *)
  let m =
    Certdb_order.Completion.meet c
      (Certdb_order.Completion.embed c 2)
      (Certdb_order.Completion.embed c 3)
  in
  check "meet exists in completion" true (m >= 0)

(* AC-3 *)
let test_ac3_prunes () =
  let source = Digraph.to_structure (Digraph.cycle 3) in
  let target = Digraph.to_structure (Digraph.cycle 4) in
  (* no hom C3 → C4: AC-3 alone cannot always detect it, but the combined
     search must agree with the plain solver *)
  Alcotest.(check bool)
    "ac3 solver agrees (negative)" false
    (Option.is_some (Arc_consistency.find_hom ~source ~target ()));
  let target2 = Digraph.to_structure (Digraph.cycle 6) in
  Alcotest.(check bool)
    "ac3 solver agrees (positive)" true
    (Option.is_some (Arc_consistency.find_hom ~source:(Digraph.to_structure (Digraph.cycle 6)) ~target:(Digraph.to_structure (Digraph.cycle 3)) ()));
  ignore target2

let test_ac3_domain_wipeout () =
  (* a node restricted to an unsupported candidate: immediate None *)
  let source = Digraph.to_structure (Digraph.path 1) in
  let target = Digraph.to_structure (Digraph.path 1) in
  let restrict =
    (* sink can't start an edge *)
    Domains.of_list [ (0, Structure.Int_set.singleton 1) ]
  in
  Alcotest.(check bool)
    "wipeout" true
    (Arc_consistency.prune ~restrict ~source ~target () = None)

let test_ac3_agreement_random () =
  for seed = 0 to 20 do
    let source =
      Digraph.to_structure (Digraph.random ~seed ~vertices:5 ~edge_prob:0.35 ())
    in
    let target =
      Digraph.to_structure
        (Digraph.random ~seed:(seed + 99) ~vertices:5 ~edge_prob:0.45 ())
    in
    check
      (Printf.sprintf "seed %d" seed)
      (Option.is_some (Solver.find_hom ~source ~target ()))
      (Option.is_some (Arc_consistency.find_hom ~source ~target ()))
  done

(* certain answers in exchange *)
let test_certain_exchange () =
  let open Certdb_relational in
  let open Certdb_query in
  let nx = Value.fresh_null () and ny = Value.fresh_null () in
  let nz = Value.fresh_null () in
  let mapping =
    [
      Certdb_exchange.Mapping.relational_rule
        ~body:(Instance.of_list [ ("S", [ [ nx; ny ] ]) ])
        ~head:(Instance.of_list [ ("T", [ [ nx; nz ]; [ nz; ny ] ]) ]);
    ]
  in
  let source = Instance.of_list [ ("S", [ [ Value.int 1; Value.int 2 ] ]) ] in
  let q =
    Ucq.make
      [ Cq.make ~head:[ "x"; "y" ]
          [ ("T", [ Fo.Var "x"; Fo.Var "z" ]); ("T", [ Fo.Var "z"; Fo.Var "y" ]) ] ]
  in
  let direct = Certdb_exchange.Certain_exchange.certain_ucq mapping ~source q in
  let via_core =
    Certdb_exchange.Certain_exchange.certain_ucq_via_core mapping ~source q
  in
  check "endpoints certain" true
    (Instance.mem direct (Instance.fact "ans" [ Value.int 1; Value.int 2 ]));
  check "core route agrees" true (Instance.equal direct via_core);
  (* the invented intermediate value itself never shows up among certain
     answers, but z = 2 is certain (T(v,2) holds in every solution) *)
  let q_mid =
    Ucq.make [ Cq.make ~head:[ "z" ] [ ("T", [ Fo.Var "x"; Fo.Var "z" ]) ] ]
  in
  let mid = Certdb_exchange.Certain_exchange.certain_ucq mapping ~source q_mid in
  Alcotest.(check int) "only the endpoint is certain" 1 (Instance.cardinal mid);
  check "it is ans(2)" true
    (Instance.mem mid (Instance.fact "ans" [ Value.int 2 ]))

let () =
  Alcotest.run "extensions"
    [
      ( "graph-params",
        [
          Alcotest.test_case "chromatic" `Quick test_chromatic;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "monotone/antimonotone" `Quick
            test_monotone_antimonotone;
        ] );
      ( "completion",
        [
          Alcotest.test_case "chain" `Quick test_completion_chain;
          Alcotest.test_case "antichain" `Quick test_completion_antichain;
          Alcotest.test_case "divisibility" `Quick test_completion_divisibility;
          Alcotest.test_case "adds meets" `Quick
            test_completion_incomparable_pair_without_meet;
        ] );
      ( "ac3",
        [
          Alcotest.test_case "prunes" `Quick test_ac3_prunes;
          Alcotest.test_case "wipeout" `Quick test_ac3_domain_wipeout;
          Alcotest.test_case "agreement" `Quick test_ac3_agreement_random;
        ] );
      ( "certain-exchange",
        [ Alcotest.test_case "exchange answers" `Quick test_certain_exchange ] );
    ]
