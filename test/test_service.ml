(* lib/service: the semantic cache's soundness story.  Canonical query
   keys must be invariant under everything hom-equivalence allows
   (variable renaming, atom reordering, redundant atoms) and must never
   conflate queries the unlimited hom oracle distinguishes; cached
   answers must equal freshly computed ones; the LRU must evict in
   recency order; database fingerprints must be stable across reloads. *)

open Certdb_values
module Cq = Certdb_query.Cq
module Fo = Certdb_query.Fo
module Instance = Certdb_relational.Instance
module Parse = Certdb_relational.Parse
module Canon = Certdb_service.Canon
module Cache = Certdb_service.Cache
module Server = Certdb_service.Server
module Wire = Certdb_service.Wire
module Json = Certdb_obs.Obs.Json

let check = Alcotest.(check bool)

(* ---- generators ------------------------------------------------------ *)

let var i = Fo.Var (Printf.sprintf "x%d" i)

let gen_term =
  QCheck.Gen.(
    frequency
      [
        (3, map var (int_range 0 4));
        (1, map (fun i -> Fo.Val (Value.int i)) (int_range 1 3));
      ])

let gen_atom =
  QCheck.Gen.(
    oneof
      [
        map2 (fun a b -> ("R", [ a; b ])) gen_term gen_term;
        map (fun a -> ("S", [ a ])) gen_term;
      ])

let gen_atoms = QCheck.Gen.(list_size (int_range 1 5) gen_atom)

(* deterministic shuffle driven by generated sort keys *)
let gen_shuffle l =
  QCheck.Gen.(
    list_repeat (List.length l) (int_bound 1_000_000) >|= fun keys ->
    List.map snd (List.sort compare (List.combine keys l)))

(* an injective renaming of the x0..x4 variable space *)
let gen_renaming =
  QCheck.Gen.(
    gen_shuffle [ "a"; "b"; "c"; "d"; "e" ] >|= fun fresh i ->
    List.nth fresh i)

let rename_atom rho (rel, args) =
  ( rel,
    List.map
      (function
        | Fo.Var x ->
          let i = int_of_string (String.sub x 1 (String.length x - 1)) in
          Fo.Var (rho i)
        | t -> t)
      args )

let print_atoms atoms =
  Format.asprintf "%a" Cq.pp (Cq.boolean atoms)

(* ---- canonicalisation ------------------------------------------------ *)

(* invariance: a renamed, reordered copy gets the same key *)
let qcheck_canon_invariant =
  QCheck.Test.make ~count:500 ~name:"cq_key invariant under renaming+reorder"
    (QCheck.make
       ~print:(fun (atoms, variant) ->
         print_atoms atoms ^ "  vs  " ^ print_atoms variant)
       QCheck.Gen.(
         gen_atoms >>= fun atoms ->
         gen_renaming >>= fun rho ->
         gen_shuffle (List.map (rename_atom rho) atoms) >|= fun variant ->
         (atoms, variant)))
    (fun (atoms, variant) ->
      Canon.cq_key (Cq.boolean atoms) = Canon.cq_key (Cq.boolean variant))

(* invariance under redundancy: duplicating an atom never changes the
   core, hence never the key *)
let qcheck_canon_redundant =
  QCheck.Test.make ~count:300 ~name:"cq_key ignores redundant atoms"
    (QCheck.make ~print:print_atoms
       QCheck.Gen.(
         gen_atoms >>= fun atoms ->
         int_bound (List.length atoms - 1) >|= fun i ->
         atoms @ [ List.nth atoms i ]))
    (fun padded ->
      let base = List.filteri (fun i _ -> i < List.length padded - 1) padded in
      Canon.cq_key (Cq.boolean base) = Canon.cq_key (Cq.boolean padded))

(* soundness both ways on random pairs: equal keys iff hom-equivalent.
   The variable/relation space is small so collisions actually occur. *)
let qcheck_canon_sound =
  QCheck.Test.make ~count:1000 ~name:"cq_key equal iff hom-equivalent"
    (QCheck.make
       ~print:(fun (a, b) -> print_atoms a ^ "  vs  " ^ print_atoms b)
       QCheck.Gen.(pair gen_atoms gen_atoms))
    (fun (a1, a2) ->
      let q1 = Cq.boolean a1 and q2 = Cq.boolean a2 in
      match (Canon.cq_key q1, Canon.cq_key q2) with
      | Some k1, Some k2 ->
        Bool.equal (String.equal k1 k2) (Cq.equivalent q1 q2)
      | _ -> QCheck.Test.fail_report "canonicalisation budget tripped")

let test_canon_budget () =
  (* a clique of interchangeable atoms under a starved budget gives up
     (None) instead of searching beyond it *)
  let clique k =
    let ids = List.init k Fun.id in
    Cq.boolean
      (List.concat_map
         (fun a ->
           List.filter_map
             (fun b -> if a < b then Some ("R", [ var a; var b ]) else None)
             ids)
         ids)
  in
  check "starved budget returns None" true
    (Canon.cq_key ~budget:2 (clique 4) = None);
  check "default budget canonicalises the clique" true
    (Canon.cq_key (clique 4) <> None)

let test_canon_head_vars () =
  (* head variables are pinned: ans(x):-R(x,y) and ans(y):-R(y,x) are
     equivalent, but ans(x):-R(x,y) and ans(y):-R(x,y) are not *)
  let q head atoms = Cq.make ~head atoms in
  let k1 = Canon.cq_key (q [ "x" ] [ ("R", [ Fo.Var "x"; Fo.Var "y" ]) ]) in
  let k2 = Canon.cq_key (q [ "y" ] [ ("R", [ Fo.Var "y"; Fo.Var "x" ]) ]) in
  let k3 = Canon.cq_key (q [ "y" ] [ ("R", [ Fo.Var "x"; Fo.Var "y" ]) ]) in
  check "same query modulo renaming" true (k1 = k2);
  check "head position distinguishes" true (k1 <> k3)

(* ---- database fingerprints ------------------------------------------- *)

let test_fingerprint_stable () =
  let fp s = Canon.db_fingerprint (fst (Parse.instance s)) in
  check "reload is stable" true
    (fp "R(1,_x); R(_x,2)" = fp "R(1,_x); R(_x,2)");
  check "null names are immaterial" true
    (fp "R(1,_x); R(_x,2)" = fp "R(1,_u); R(_u,2)");
  check "fact order is immaterial" true
    (fp "R(1,_x); S(3)" = fp "S(3); R(1,_x)");
  check "different facts differ" true (fp "R(1,2)" <> fp "R(1,3)");
  check "null structure matters" true
    (fp "R(_x,_x)" <> fp "R(_x,_y)")

(* ---- the LRU --------------------------------------------------------- *)

let test_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" ~cost_ms:1.0 1;
  Cache.add c "b" ~cost_ms:1.0 2;
  check "a hits" true (Cache.find c "a" = Some (1, 1.0));
  (* a was promoted, so b is now least recently used *)
  Cache.add c "c" ~cost_ms:1.0 3;
  check "b evicted" true (Cache.find c "b" = None);
  check "a survives" true (Cache.find c "a" = Some (1, 1.0));
  check "c present" true (Cache.find c "c" = Some (3, 1.0));
  Alcotest.(check int) "size at capacity" 2 (Cache.size c);
  let t = Cache.totals c in
  Alcotest.(check int) "hits" 3 t.Cache.hits;
  Alcotest.(check int) "misses" 1 t.Cache.misses;
  Alcotest.(check int) "evictions" 1 t.Cache.evictions

let test_lru_refresh_and_bypass () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" ~cost_ms:1.0 1;
  Cache.add c "a" ~cost_ms:2.0 10;
  check "refresh replaces value and cost" true
    (Cache.find c "a" = Some (10, 2.0));
  Alcotest.(check int) "refresh does not grow" 1 (Cache.size c);
  Cache.bypass c;
  Alcotest.(check int) "bypass counted" 1 (Cache.totals c).Cache.bypasses;
  Cache.clear c;
  check "cleared" true (Cache.find c "a" = None);
  Alcotest.(check int) "totals survive clear" 1
    (Cache.totals c).Cache.bypasses

let test_lru_zero_capacity () =
  let c = Cache.create ~capacity:0 () in
  Cache.add c "a" ~cost_ms:1.0 1;
  check "stores nothing" true (Cache.find c "a" = None);
  Alcotest.(check int) "size stays 0" 0 (Cache.size c)

let test_footprint_invalidation () =
  let module Footprint = Certdb_analysis.Footprint in
  let fp_of q = Footprint.of_cq q in
  let v x = Fo.Var x in
  (* reads R; reads S -- footprints over disjoint relations *)
  let fp_r = fp_of (Cq.boolean [ ("R", [ v "x"; v "x" ]) ]) in
  let fp_s = fp_of (Cq.boolean [ ("S", [ v "x"; v "x" ]) ]) in
  let c = Cache.create ~capacity:8 () in
  Cache.add c "q_r" ~footprint:fp_r ~cost_ms:1.0 1;
  Cache.add c "q_s" ~footprint:fp_s ~cost_ms:1.0 2;
  Cache.add c "q_blind" ~cost_ms:1.0 3;
  (* a touch on R drops the R reader and the footprint-less entry
     (conservatively), while the disjoint S reader survives *)
  let dropped = Cache.invalidate c (Footprint.touch_rel "R") in
  Alcotest.(check int) "two entries invalidated" 2 dropped;
  check "overlapping entry gone" true (Cache.find c "q_r" = None);
  check "footprint-less entry gone" true (Cache.find c "q_blind" = None);
  check "disjoint entry survives" true (Cache.find c "q_s" = Some (2, 1.0));
  (* column-level precision: only R.1 is constrained by the join, so a
     touch confined to R.2 leaves the entry alone *)
  let q =
    Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("S", [ v "x"; v "z" ]) ]
  in
  Cache.add c "q_col" ~footprint:(fp_of q) ~cost_ms:1.0 4;
  Alcotest.(check int) "free-column touch drops nothing" 0
    (Cache.invalidate c (Footprint.touch_cols "R" [ 1 ]));
  Alcotest.(check int) "constrained-column touch drops it" 1
    (Cache.invalidate c (Footprint.touch_cols "R" [ 0 ]));
  (* key_prefix scopes the sweep to one database's entries *)
  Cache.add c "db1|q" ~footprint:fp_s ~cost_ms:1.0 5;
  Cache.add c "db2|q" ~footprint:fp_s ~cost_ms:1.0 6;
  Alcotest.(check int) "prefix-scoped sweep" 1
    (Cache.invalidate ~key_prefix:"db1|" c (Footprint.touch_rel "S"));
  check "other database untouched" true (Cache.find c "db2|q" = Some (6, 1.0))

(* ---- the server ------------------------------------------------------ *)

let mk_server ?(cache = true) () =
  let config = Server.Config.make ~cache_capacity:(if cache then 64 else 0) () in
  let s = Server.create ~config () in
  (match
     Server.load s ~name:"d" ~source:"R(1,2); R(2,3); R(3,1); R(4,_u); S(1)"
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  s

let answer_eq a b =
  match (a, b) with
  | Server.Graded g1, Server.Graded g2 -> g1 = g2
  | Server.Tuples d1, Server.Tuples d2 -> Instance.equal d1 d2
  | _ -> false

(* cached answers always equal freshly computed ones *)
let qcheck_cached_equals_fresh =
  let cached = mk_server () and fresh = mk_server ~cache:false () in
  QCheck.Test.make ~count:300 ~name:"cached answers = fresh answers"
    (QCheck.make ~print:print_atoms gen_atoms)
    (fun atoms ->
      let q = Cq.boolean atoms in
      let eval s =
        match Server.eval_query s ~db:"d" q with
        | Ok (a, _) -> a
        | Error m -> QCheck.Test.fail_reportf "eval failed: %s" m
      in
      let f = eval fresh in
      (* twice through the cached server: miss then (typically) hit *)
      answer_eq (eval cached) f && answer_eq (eval cached) f)

let test_server_hit_on_renamed () =
  let s = mk_server () in
  let q1 = Cq.boolean [ ("R", [ var 0; var 1 ]); ("R", [ var 1; var 0 ]) ] in
  let q2 =
    Cq.boolean [ ("R", [ Fo.Var "b"; Fo.Var "a" ]); ("R", [ Fo.Var "a"; Fo.Var "b" ]) ]
  in
  (match Server.eval_query s ~db:"d" q1 with
  | Ok (_, hit) -> check "first is a miss" false hit
  | Error m -> Alcotest.fail m);
  match Server.eval_query s ~db:"d" q2 with
  | Ok (a, hit) ->
    check "renamed+reordered query hits" true hit;
    check "answer is graded" true
      (match a with Server.Graded _ -> true | _ -> false)
  | Error m -> Alcotest.fail m

let test_server_no_cache_never_hits () =
  let s = mk_server ~cache:false () in
  let q = Cq.boolean [ ("S", [ var 0 ]) ] in
  (match Server.eval_query s ~db:"d" q with
  | Ok (_, hit) -> check "miss without a cache" false hit
  | Error m -> Alcotest.fail m);
  (match Server.eval_query s ~db:"d" q with
  | Ok (_, hit) -> check "still no hit" false hit
  | Error m -> Alcotest.fail m);
  check "no totals without a cache" true (Server.cache_totals s = None)

let test_server_protocol () =
  let s = mk_server () in
  let send line =
    let row, k = Server.handle_line s ~idx:0 line in
    (row, k)
  in
  let field name row =
    match Json.member name row with
    | Some v -> v
    | None -> Alcotest.fail ("missing field " ^ name ^ " in " ^ Json.to_string row)
  in
  let row, _ =
    send "{\"op\":\"query\",\"db\":\"d\",\"query\":\"ans() :- R(_x,_y), R(_y,_x)\"}"
  in
  check "query ok" true (field "status" row = Json.String "ok");
  check "first query not cached" true (field "cached" row = Json.Bool false);
  let row, _ =
    send "{\"op\":\"query\",\"db\":\"d\",\"query\":\"ans() :- R(_p,_q), R(_q,_p)\"}"
  in
  check "renamed query cached" true (field "cached" row = Json.Bool true);
  let row, _ = send "{\"op\":\"query\",\"db\":\"nope\",\"query\":\"ans() :- R(_x,_y)\"}" in
  check "unknown db is an error row" true
    (field "status" row = Json.String "error");
  let row, _ = send "{\"op\":\"frobnicate\"}" in
  check "unknown op is an error row" true
    (field "status" row = Json.String "error");
  let row, _ = send "not json at all" in
  check "bad json is an error row" true
    (field "status" row = Json.String "error");
  let row, k = send "{\"op\":\"shutdown\"}" in
  check "shutdown ok" true (field "status" row = Json.String "ok");
  check "shutdown stops the loop" true (k = `Shutdown)

let test_server_batch_verb () =
  let s = mk_server () in
  let row, _ =
    Server.handle_line s ~idx:0
      "{\"op\":\"batch\",\"requests\":[{\"db\":\"d\",\"query\":\"ans() :- \
       S(_x)\"},{\"db\":\"d\",\"query\":\"ans() :- S(_y)\"},{\"db\":\"d\",\"query\":\"ans() \
       :- Missing(_x)\"}]}"
  in
  (match Json.member "results" row with
  | Some (Json.List [ r1; r2; r3 ]) ->
    check "first miss" true (Json.member "cached" r1 = Some (Json.Bool false));
    (* requests in one batch are admitted before any compute, so an
       in-batch duplicate cannot hit the cache yet *)
    check "in-batch duplicate also misses" true
      (Json.member "cached" r2 = Some (Json.Bool false));
    check "absent relation is certain-false, not an error" true
      (Json.member "certain" r3 = Some (Json.Bool false))
  | _ -> Alcotest.fail ("bad batch response: " ^ Json.to_string row));
  (* but the batch stored its results: a follow-up single query hits *)
  let row, _ =
    Server.handle_line s ~idx:1
      "{\"op\":\"query\",\"db\":\"d\",\"query\":\"ans() :- S(_z)\"}"
  in
  check "batch results serve later queries" true
    (Json.member "cached" row = Some (Json.Bool true))

(* wire syntax round-trips *)
let test_wire_parse () =
  (match Wire.parse_cq_result "ans(_x) :- R(_x,_y), S(_y)" with
  | Ok q ->
    Alcotest.(check int) "two atoms" 2 (List.length q.Cq.atoms);
    Alcotest.(check (list string)) "head" [ "x" ] q.Cq.head
  | Error m -> Alcotest.fail m);
  check "missing turnstile rejected" true
    (Result.is_error (Wire.parse_cq_result "R(_x,_y)"));
  check "head var must occur" true
    (Result.is_error (Wire.parse_cq_result "ans(_z) :- R(_x,_y)"))

(* ---- bounded line IO -------------------------------------------------- *)

let with_string_ic s f =
  let path = Filename.temp_file "certdb-wire" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
      In_channel.with_open_bin path f)

let test_input_line_bounded () =
  with_string_ic "short\nx\n" (fun ic ->
      (match Wire.input_line_bounded ~max:16 ic with
      | `Line "short" -> ()
      | _ -> Alcotest.fail "expected `Line short");
      match Wire.input_line_bounded ~max:16 ic with
      | `Line "x" -> ()
      | _ -> Alcotest.fail "expected `Line x");
  (* an oversized line is drained to its newline: the next read is the
     following line, in sync *)
  with_string_ic (String.make 100 'a' ^ "\nafter\n") (fun ic ->
      (match Wire.input_line_bounded ~max:16 ic with
      | `Oversized n -> Alcotest.(check int) "drained total" 100 n
      | _ -> Alcotest.fail "expected `Oversized");
      match Wire.input_line_bounded ~max:16 ic with
      | `Line "after" -> ()
      | _ -> Alcotest.fail "expected `Line after");
  (* a partial final line without a newline is still a line; then EOF *)
  with_string_ic "partial" (fun ic ->
      (match Wire.input_line_bounded ~max:16 ic with
      | `Line "partial" -> ()
      | _ -> Alcotest.fail "expected `Line partial");
      match Wire.input_line_bounded ~max:16 ic with
      | `Eof -> ()
      | _ -> Alcotest.fail "expected `Eof")

let test_fd_reader () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let reader = Wire.Fd_reader.create a in
      (* two pipelined lines arrive as two reads *)
      (match Wire.write_raw b "one\ntwo\n" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Wire.Fd_reader.read_line ~timeout_ms:1000.0 ~max:64 reader with
      | `Line "one" -> ()
      | _ -> Alcotest.fail "expected `Line one");
      (match Wire.Fd_reader.read_line ~timeout_ms:1000.0 ~max:64 reader with
      | `Line "two" -> ()
      | _ -> Alcotest.fail "expected `Line two");
      (* nothing pending: the deadline fires *)
      (match Wire.Fd_reader.read_line ~timeout_ms:50.0 ~max:64 reader with
      | `Timeout -> ()
      | _ -> Alcotest.fail "expected `Timeout");
      (* a pre-set stop flag interrupts instead of timing out *)
      let stop = Atomic.make true in
      (match
         Wire.Fd_reader.read_line ~timeout_ms:5000.0 ~stop ~max:64 reader
       with
      | `Stopped -> ()
      | _ -> Alcotest.fail "expected `Stopped");
      (* oversized, then back in sync *)
      (match Wire.write_raw b (String.make 200 'z' ^ "\nok\n") with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Wire.Fd_reader.read_line ~timeout_ms:1000.0 ~max:64 reader with
      | `Oversized n -> Alcotest.(check int) "drained total" 200 n
      | _ -> Alcotest.fail "expected `Oversized");
      (match Wire.Fd_reader.read_line ~timeout_ms:1000.0 ~max:64 reader with
      | `Line "ok" -> ()
      | _ -> Alcotest.fail "expected `Line ok");
      (* a partial line at socket EOF is a torn request, not a line *)
      (match Wire.write_raw b "torn-frame-no-newline" with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      Unix.close b;
      match Wire.Fd_reader.read_line ~timeout_ms:1000.0 ~max:64 reader with
      | `Eof -> ()
      | _ -> Alcotest.fail "expected `Eof for torn frame")

let test_row_shapes () =
  (match Json.Obj (Wire.overloaded_fields ~retry_after_ms:75.0) with
  | j ->
    check "overloaded status" true
      (Wire.str_field "status" j = Some "overloaded");
    check "hint present" true
      (Wire.float_field "retry_after_ms" j = Some 75.0));
  let j = Server.oversized_row ~idx:3 ~max:256 in
  check "oversized id" true (Wire.str_field "id" j = Some "line-3");
  check "oversized message" true
    (Wire.str_field "error" j = Some "request line exceeds 256 bytes")

let () =
  Alcotest.run "service"
    [
      ( "canon",
        [
          QCheck_alcotest.to_alcotest qcheck_canon_invariant;
          QCheck_alcotest.to_alcotest qcheck_canon_redundant;
          QCheck_alcotest.to_alcotest qcheck_canon_sound;
          Alcotest.test_case "budget gives up" `Quick test_canon_budget;
          Alcotest.test_case "head variables pinned" `Quick
            test_canon_head_vars;
          Alcotest.test_case "db fingerprints" `Quick test_fingerprint_stable;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "refresh and bypass" `Quick
            test_lru_refresh_and_bypass;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "footprint invalidation" `Quick
            test_footprint_invalidation;
        ] );
      ( "server",
        [
          QCheck_alcotest.to_alcotest qcheck_cached_equals_fresh;
          Alcotest.test_case "hit on renamed query" `Quick
            test_server_hit_on_renamed;
          Alcotest.test_case "no cache, no hits" `Quick
            test_server_no_cache_never_hits;
          Alcotest.test_case "protocol rows" `Quick test_server_protocol;
          Alcotest.test_case "batch verb" `Quick test_server_batch_verb;
          Alcotest.test_case "wire CQ syntax" `Quick test_wire_parse;
        ] );
      ( "wire",
        [
          Alcotest.test_case "bounded channel reads" `Quick
            test_input_line_bounded;
          Alcotest.test_case "fd reader deadlines and sync" `Quick
            test_fd_reader;
          Alcotest.test_case "overloaded and oversized rows" `Quick
            test_row_shapes;
        ] );
    ]
