(* Tests for positive relational algebra: evaluation, the FO translation,
   naïve evaluation as certain answers. *)

open Certdb_values
open Certdb_relational
open Certdb_query

let check = Alcotest.(check bool)
let c i = Value.int i
let n1 = Value.null 2001

let schema = Schema.of_list [ ("R", 2); ("S", 1) ]

let d =
  Instance.of_list
    [ ("R", [ [ c 1; c 2 ]; [ c 2; c 3 ]; [ c 2; c 2 ] ]); ("S", [ [ c 2 ] ]) ]

let test_arity () =
  Alcotest.(check int) "rel" 2 (Algebra.arity schema (Rel "R"));
  Alcotest.(check int) "project" 1
    (Algebra.arity schema (Project ([ 0 ], Rel "R")));
  Alcotest.(check int) "product" 3
    (Algebra.arity schema (Product (Rel "R", Rel "S")));
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Algebra: unknown relation T") (fun () ->
      ignore (Algebra.arity schema (Rel "T")));
  Alcotest.check_raises "bad union"
    (Invalid_argument "Algebra: union arity mismatch") (fun () ->
      ignore (Algebra.arity schema (Union (Rel "R", Rel "S"))));
  Alcotest.check_raises "bad projection"
    (Invalid_argument "Algebra: projection column out of range") (fun () ->
      ignore (Algebra.arity schema (Project ([ 5 ], Rel "R"))));
  Alcotest.check_raises "bad rename"
    (Invalid_argument "Algebra: rename is not a permutation") (fun () ->
      ignore (Algebra.arity schema (Rename ([ 0; 0 ], Rel "R"))))

let test_select () =
  let q = Algebra.Select (Col_eq_col (0, 1), Rel "R") in
  Alcotest.(check int) "reflexive pairs" 1 (List.length (Algebra.eval q d));
  let q2 = Algebra.Select (Col_eq_const (0, c 2), Rel "R") in
  Alcotest.(check int) "first = 2" 2 (List.length (Algebra.eval q2 d))

let test_project () =
  let q = Algebra.Project ([ 1 ], Rel "R") in
  Alcotest.(check int) "distinct second columns" 2
    (List.length (Algebra.eval q d))

let test_join () =
  (* R ⋈ S on R.2 = S.1 *)
  let q = Algebra.Join ([ (1, 0) ], Rel "R", Rel "S") in
  Alcotest.(check int) "joined rows" 2 (List.length (Algebra.eval q d))

let test_union_rename () =
  let q =
    Algebra.Union (Rel "R", Algebra.Rename ([ 1; 0 ], Rel "R"))
  in
  (* R has 3 tuples, reversed adds (2,1), (3,2); (2,2) coincides *)
  Alcotest.(check int) "symmetric closure" 5 (List.length (Algebra.eval q d))

let test_fo_translation_agrees () =
  let queries =
    [
      Algebra.Rel "R";
      Algebra.Select (Col_eq_col (0, 1), Rel "R");
      Algebra.Select (Col_eq_const (1, c 2), Rel "R");
      Algebra.Project ([ 0 ], Rel "R");
      Algebra.Join ([ (1, 0) ], Rel "R", Rel "S");
      Algebra.Union (Rel "R", Algebra.Rename ([ 1; 0 ], Rel "R"));
      Algebra.Project ([ 0 ], Algebra.Join ([ (1, 0) ], Rel "R", Rel "S"));
    ]
  in
  List.iteri
    (fun i q ->
      let head, f = Algebra.to_fo q ~schema in
      let via_fo = Fo.answers ~head d f in
      let via_algebra = Algebra.eval_instance ~name:"ans" q d in
      check (Printf.sprintf "query %d: algebra = FO" i) true
        (Instance.equal via_fo via_algebra))
    queries

let test_naive_eval_certain () =
  (* with nulls: naive algebra evaluation = certain answers *)
  let dn =
    Instance.of_list [ ("R", [ [ c 1; n1 ]; [ n1; c 3 ] ]); ("S", [ [ c 1 ] ]) ]
  in
  let q = Algebra.Project ([ 0 ], Rel "R") in
  let naive = Algebra.naive_eval ~name:"ans" q dn in
  let reference =
    Semantics.certain_answers_by_enumeration
      (fun r -> Algebra.eval_instance ~name:"ans" q r)
      dn
  in
  check "naive = certain" true (Instance.equal naive reference);
  check "constant answer kept" true
    (Instance.mem naive (Instance.fact "ans" [ c 1 ]))

let test_nulls_as_values () =
  let dn = Instance.of_list [ ("R", [ [ n1; n1 ] ]) ] in
  let q = Algebra.Select (Col_eq_col (0, 1), Rel "R") in
  Alcotest.(check int) "null = itself" 1 (List.length (Algebra.eval q dn));
  Alcotest.(check int) "naive drops null rows" 0
    (Instance.cardinal (Algebra.naive_eval ~name:"ans" q dn))

let () =
  Alcotest.run "algebra"
    [
      ( "algebra",
        [
          Alcotest.test_case "arity" `Quick test_arity;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "union/rename" `Quick test_union_rename;
          Alcotest.test_case "fo agreement" `Quick test_fo_translation_agrees;
          Alcotest.test_case "naive = certain" `Quick test_naive_eval_certain;
          Alcotest.test_case "nulls as values" `Quick test_nulls_as_values;
        ] );
    ]
