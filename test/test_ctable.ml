(* Tests for conditional tables (Imieliński–Lipski [26]): condition
   algebra, grounding semantics, the strong representation property of the
   relational-algebra operations, and the difference construction that
   naïve tables cannot express. *)

open Certdb_values
open Certdb_relational

let check = Alcotest.(check bool)
let c i = Value.int i
let n1 = Value.null 1501
let n2 = Value.null 1502

let test_cond_eval () =
  let h = Valuation.bind Valuation.empty n1 (c 3) in
  check "eq holds" true (Ctable.eval_cond h (CEq (n1, c 3)));
  check "eq fails" false (Ctable.eval_cond h (CEq (n1, c 4)));
  check "neq" true (Ctable.eval_cond h (CNeq (n1, c 4)));
  check "and" true
    (Ctable.eval_cond h (CAnd (CEq (n1, c 3), CNeq (n1, c 4))));
  check "or" true (Ctable.eval_cond h (COr (CFalse, CEq (n1, c 3))));
  check "not" true (Ctable.eval_cond h (CNot CFalse))

let test_simplify () =
  check "x = x is true" true (Ctable.simplify (CEq (n1, n1)) = CTrue);
  check "1 = 2 is false" true (Ctable.simplify (CEq (c 1, c 2)) = CFalse);
  check "1 <> 2 is true" true (Ctable.simplify (CNeq (c 1, c 2)) = CTrue);
  check "and false" true
    (Ctable.simplify (CAnd (CEq (n1, c 1), CFalse)) = CFalse);
  check "not not" true
    (Ctable.simplify (CNot (CNot (CEq (n1, c 1)))) = CEq (n1, c 1))

let test_ground () =
  let t =
    Ctable.of_rows ~arity:1
      [
        { args = [| n1 |]; guard = CEq (n1, c 1) };
        { args = [| c 9 |]; guard = CTrue };
      ]
  in
  let h1 = Valuation.bind Valuation.empty n1 (c 1) in
  let h2 = Valuation.bind Valuation.empty n1 (c 2) in
  Alcotest.(check int) "guard satisfied: 2 tuples" 2
    (List.length (Ctable.ground h1 t));
  Alcotest.(check int) "guard violated: 1 tuple" 1
    (List.length (Ctable.ground h2 t))

(* strong representation: for each operation op, and each grounding h,
   ground h (op T) = op (ground h T). *)
let reference_op op world =
  (* world is a list of tuples; apply the set-level operation *)
  op world

let test_strong_representation_select () =
  let t =
    Ctable.of_rows ~arity:2
      [
        { args = [| n1; c 2 |]; guard = CTrue };
        { args = [| c 1; n2 |]; guard = CTrue };
      ]
  in
  let selected = Ctable.select_eq_col 0 1 t in
  List.iter
    (fun h ->
      let lhs = Ctable.ground h selected in
      let rhs =
        reference_op
          (List.filter (fun tu -> Value.equal tu.(0) tu.(1)))
          (Ctable.ground h t)
      in
      check "select commutes with grounding" true
        (List.sort compare lhs = List.sort compare rhs))
    (Ctable.sample_valuations t)

let test_strong_representation_difference () =
  let t1 = Ctable.of_rows ~arity:1 [ { args = [| n1 |]; guard = CTrue } ] in
  let t2 = Ctable.of_rows ~arity:1 [ { args = [| c 1 |]; guard = CTrue } ] in
  let diff = Ctable.difference t1 t2 in
  List.iter
    (fun h ->
      let lhs = Ctable.ground h diff in
      let w1 = Ctable.ground h t1 and w2 = Ctable.ground h t2 in
      let rhs = List.filter (fun tu -> not (List.mem tu w2)) w1 in
      check "difference commutes with grounding" true
        (List.sort compare lhs = List.sort compare rhs))
    (Ctable.sample_valuations (Ctable.union t1 t2))

let test_difference_expressiveness () =
  (* T1 = {(⊥)}, T2 = {(1)}: T1 - T2 = {(⊥) if ⊥ <> 1} — representable as
     a c-table, not as a naïve table.  Check semantics directly. *)
  let t1 = Ctable.of_rows ~arity:1 [ { args = [| n1 |]; guard = CTrue } ] in
  let t2 = Ctable.of_rows ~arity:1 [ { args = [| c 1 |]; guard = CTrue } ] in
  let diff = Ctable.difference t1 t2 in
  let h_eq = Valuation.bind Valuation.empty n1 (c 1) in
  let h_neq = Valuation.bind Valuation.empty n1 (c 5) in
  Alcotest.(check int) "⊥=1: empty" 0 (List.length (Ctable.ground h_eq diff));
  Alcotest.(check int) "⊥=5: singleton" 1
    (List.length (Ctable.ground h_neq diff))

let test_join_product () =
  let t1 = Ctable.of_naive ~arity:2 [ [| c 1; n1 |] ] in
  let t2 = Ctable.of_naive ~arity:2 [ [| n1; c 3 |]; [| c 9; c 9 |] ] in
  let j = Ctable.join [ (1, 0) ] t1 t2 in
  Alcotest.(check int) "rows kept symbolically" 2 (List.length (Ctable.rows j));
  (* under h(⊥)=9 the join produces (1,9,9,9)?  t1 row is (1,9); t2 rows
     are (9,3) and (9,9): join column 1 of t1 with column 0 of t2 gives
     both *)
  let h = Valuation.bind Valuation.empty n1 (c 9) in
  Alcotest.(check int) "grounded join" 2 (List.length (Ctable.ground h j))

let test_certain_possible () =
  let t =
    Ctable.of_rows ~arity:1
      [
        { args = [| c 7 |]; guard = CTrue };
        { args = [| c 8 |]; guard = CEq (n1, c 1) };
      ]
  in
  let certain = Ctable.certain_tuples t in
  let possible = Ctable.possible_tuples t in
  check "7 certain" true (List.mem [| c 7 |] certain);
  check "8 not certain" false (List.mem [| c 8 |] certain);
  check "8 possible" true (List.mem [| c 8 |] possible)

let test_naive_embedding () =
  (* a naïve table as a c-table: certain answers agree with
     Instance/naïve-eval semantics for a projection query *)
  let d = Instance.of_list [ ("R", [ [ c 1; n1 ]; [ c 2; c 3 ] ]) ] in
  let t = Ctable.of_instance_relation d "R" in
  let proj = Ctable.project [ 0 ] t in
  let certain = Ctable.certain_tuples proj in
  check "1 certain" true (List.mem [| c 1 |] certain);
  check "2 certain" true (List.mem [| c 2 |] certain)

let test_guard_nulls_outside_args () =
  (* a guard can mention nulls that do not occur in the tuple *)
  let t =
    Ctable.of_rows ~arity:1 [ { args = [| c 5 |]; guard = CEq (n1, n2) } ]
  in
  check "sometimes present" true
    (List.exists (fun w -> w <> []) (Ctable.rep_sample t));
  check "sometimes absent" true
    (List.exists (fun w -> w = []) (Ctable.rep_sample t));
  check "not certain" false (List.mem [| c 5 |] (Ctable.certain_tuples t))

let test_arity_errors () =
  let t = Ctable.of_naive ~arity:2 [ [| c 1; c 2 |] ] in
  Alcotest.check_raises "select out of range"
    (Invalid_argument "Ctable.select_eq_col: column out of range") (fun () ->
      ignore (Ctable.select_eq_col 0 5 t));
  Alcotest.check_raises "union arity"
    (Invalid_argument "Ctable.union: arity mismatch") (fun () ->
      ignore (Ctable.union t (Ctable.of_naive ~arity:1 [ [| c 1 |] ])))

let () =
  Alcotest.run "ctable"
    [
      ( "conditions",
        [
          Alcotest.test_case "eval" `Quick test_cond_eval;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "ground" `Quick test_ground;
          Alcotest.test_case "certain/possible" `Quick test_certain_possible;
          Alcotest.test_case "naive embedding" `Quick test_naive_embedding;
          Alcotest.test_case "guard-only nulls" `Quick test_guard_nulls_outside_args;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "select strong" `Quick test_strong_representation_select;
          Alcotest.test_case "difference strong" `Quick
            test_strong_representation_difference;
          Alcotest.test_case "difference expressiveness" `Quick
            test_difference_expressiveness;
          Alcotest.test_case "join/product" `Quick test_join_product;
          Alcotest.test_case "arity errors" `Quick test_arity_errors;
        ] );
    ]
