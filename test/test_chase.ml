(* Tests for the constrained chase (tgds + egds), CQ minimization, and XML
   data exchange (the Prop. 10 loss-of-canonicity phenomenon). *)

open Certdb_values
open Certdb_relational
open Certdb_exchange

let check = Alcotest.(check bool)
let c i = Value.int i
let nx = Value.null 1601
let ny = Value.null 1602
let nz = Value.null 1603

(* --- egds: functional dependency on T: first column determines second --- *)
let fd_egd =
  Constraints.egd
    ~body:(Instance.of_list [ ("T", [ [ nx; ny ]; [ nx; nz ] ]) ])
    ~left:ny ~right:nz

let test_egd_unifies_nulls () =
  let n1 = Value.fresh_null () in
  let d = Instance.of_list [ ("T", [ [ c 1; n1 ]; [ c 1; c 5 ] ]) ] in
  let constraints = Constraints.make ~egds:[ fd_egd ] () in
  check "violated before" false (Constraints.satisfies d constraints);
  let chased = Constraints.chase d constraints in
  check "satisfied after" true (Constraints.satisfies chased constraints);
  Alcotest.(check int) "facts merged" 1 (Instance.cardinal chased);
  check "null resolved to 5" true
    (Instance.mem chased (Instance.fact "T" [ c 1; c 5 ]))

let test_egd_constant_clash () =
  let d = Instance.of_list [ ("T", [ [ c 1; c 4 ]; [ c 1; c 5 ] ]) ] in
  let constraints = Constraints.make ~egds:[ fd_egd ] () in
  check "clash raises" true
    (match Constraints.chase d constraints with
    | exception Constraints.Chase_failure _ -> true
    | _ -> false)

(* --- tgds: every T-endpoint needs a U-tag --- *)
let tag_tgd =
  Constraints.tgd
    ~body:(Instance.of_list [ ("T", [ [ nx; ny ] ]) ])
    ~head:(Instance.of_list [ ("U", [ [ ny; nz ] ]) ])

let test_tgd_fires () =
  let d = Instance.of_list [ ("T", [ [ c 1; c 2 ] ]) ] in
  let constraints = Constraints.make ~tgds:[ tag_tgd ] () in
  check "violated before" false (Constraints.satisfies d constraints);
  let chased = Constraints.chase d constraints in
  check "satisfied after" true (Constraints.satisfies chased constraints);
  (* one U fact with endpoint 2 and an invented null *)
  let us = Instance.tuples chased "U" in
  Alcotest.(check int) "one U fact" 1 (List.length us);
  (match us with
  | [ [| a; b |] ] ->
    check "endpoint" true (Value.equal a (c 2));
    check "invented null" true (Value.is_null b)
  | _ -> Alcotest.fail "unexpected U shape")

let test_tgd_already_satisfied () =
  let d = Instance.of_list [ ("T", [ [ c 1; c 2 ] ]); ("U", [ [ c 2; c 9 ] ]) ] in
  let constraints = Constraints.make ~tgds:[ tag_tgd ] () in
  check "satisfied" true (Constraints.satisfies d constraints);
  check "chase is identity" true
    (Instance.equal (Constraints.chase d constraints) d)

let test_hom_check_terminates_growing_tgd () =
  (* R(x,y) -> R(y,z): under homomorphism-based satisfaction the all-null
     head is satisfied by any R-fact after one round — the standard chase
     terminates where the oblivious chase would not *)
  let grow =
    Constraints.tgd
      ~body:(Instance.of_list [ ("R", [ [ nx; ny ] ]) ])
      ~head:(Instance.of_list [ ("R", [ [ ny; nz ] ]) ])
  in
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]) ] in
  let constraints = Constraints.make ~tgds:[ grow ] () in
  let chased = Constraints.chase ~max_rounds:10 d constraints in
  check "terminates satisfied" true (Constraints.satisfies chased constraints)

let test_round_limit_guard () =
  (* more violations than allowed rounds: the guard must fire *)
  let constraints = Constraints.make ~tgds:[ tag_tgd ] () in
  let d =
    Instance.of_list
      [ ("T", [ [ c 1; c 2 ]; [ c 3; c 4 ]; [ c 5; c 6 ] ]) ]
  in
  check "round limit enforced" true
    (match Constraints.chase ~max_rounds:1 d constraints with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_exchange_with_target_constraints () =
  (* exchange S(x,y) -> T(x,z),T(z,y); target fd: T's first column is a
     key.  Two source facts sharing x force their invented z's to merge. *)
  let mapping =
    [
      Mapping.relational_rule
        ~body:(Instance.of_list [ ("S", [ [ nx; ny ] ]) ])
        ~head:(Instance.of_list [ ("T", [ [ nx; nz ]; [ nz; ny ] ]) ]);
    ]
  in
  let source = Instance.of_list [ ("S", [ [ c 1; c 2 ]; [ c 1; c 2 ] ]) ] in
  match
    Constraints.universal_solution_with_constraints mapping ~source
      ~target_constraints:(Constraints.make ~egds:[ fd_egd ] ())
  with
  | None -> Alcotest.fail "solution exists"
  | Some solution ->
    check "satisfies fd" true
      (Constraints.satisfies solution (Constraints.make ~egds:[ fd_egd ] ()));
    (* the two invented nulls were identified *)
    Alcotest.(check int) "two facts after merging" 2
      (Instance.cardinal solution)

(* --- CQ minimization --- *)
let test_minimize_redundant_atom () =
  let open Certdb_query in
  let v = Fo.var in
  (* ans(x) :- R(x,y), R(x,z): the second atom is redundant *)
  let q =
    Cq.make ~head:[ "x" ] [ ("R", [ v "x"; v "y" ]); ("R", [ v "x"; v "z" ]) ]
  in
  let m = Cq.minimize q in
  Alcotest.(check int) "one atom" 1 (List.length m.Cq.atoms);
  check "equivalent" true (Cq.equivalent q m)

let test_minimize_keeps_core () =
  let open Certdb_query in
  let v = Fo.var in
  (* path of length 2 with distinct roles: not foldable *)
  let q =
    Cq.make ~head:[ "x"; "z" ]
      [ ("R", [ v "x"; v "y" ]); ("R", [ v "y"; v "z" ]) ]
  in
  let m = Cq.minimize q in
  Alcotest.(check int) "two atoms" 2 (List.length m.Cq.atoms);
  check "equivalent" true (Cq.equivalent q m)

let test_minimize_boolean_triangle_plus_edge () =
  let open Certdb_query in
  let v = Fo.var in
  (* triangle plus a pendant homomorphic edge folds to the triangle *)
  let q =
    Cq.boolean
      [ ("R", [ v "a"; v "b" ]); ("R", [ v "b"; v "c" ]);
        ("R", [ v "c"; v "a" ]); ("R", [ v "p"; v "q" ]) ]
  in
  let m = Cq.minimize q in
  Alcotest.(check int) "three atoms" 3 (List.length m.Cq.atoms);
  check "equivalent" true (Cq.equivalent q m)

(* --- XML exchange --- *)
open Certdb_xml

let test_xml_exchange_solutions () =
  let nb = Value.fresh_null () in
  (* source: doc[ item(v) ]; rule: item(v) -> out[ entry(v) ] *)
  let mapping =
    [
      Xml_exchange.rule
        ~body:(Tree.leaf "item" ~data:[ nb ])
        ~head:(Tree.node "out" [ Tree.leaf "entry" ~data:[ nb ] ]);
    ]
  in
  let source =
    Tree.node "doc" [ Tree.leaf "item" ~data:[ c 1 ]; Tree.leaf "item" ~data:[ c 2 ] ]
  in
  let pieces = Xml_exchange.m_of_d mapping source in
  Alcotest.(check int) "two pieces" 2 (List.length pieces);
  let good =
    Tree.node "out" [ Tree.leaf "entry" ~data:[ c 1 ]; Tree.leaf "entry" ~data:[ c 2 ] ]
  in
  check "merged tree solves" true
    (Xml_exchange.is_solution mapping ~source good);
  let bad = Tree.node "out" [ Tree.leaf "entry" ~data:[ c 1 ] ] in
  check "missing entry is no solution" false
    (Xml_exchange.is_solution mapping ~source bad)

let test_xml_exchange_incomparable_solutions () =
  (* the Prop. 10 shape as an exchange problem: two rules emitting a[b]
     and a[c]; both a[b;c] and d[a[b];a[c]] are solutions, neither maps
     into the other *)
  let mapping =
    [
      Xml_exchange.rule ~body:(Tree.leaf "src")
        ~head:(Tree.node "a" [ Tree.leaf "b" ]);
      Xml_exchange.rule ~body:(Tree.leaf "src")
        ~head:(Tree.node "a" [ Tree.leaf "c" ]);
    ]
  in
  let source = Tree.leaf "src" in
  let s1 = Tree.node "a" [ Tree.leaf "b"; Tree.leaf "c" ] in
  let s2 =
    Tree.node "d"
      [ Tree.node "a" [ Tree.leaf "b" ]; Tree.node "a" [ Tree.leaf "c" ] ]
  in
  check "incomparable solutions exist" true
    (Xml_exchange.incomparable_solutions mapping ~source s1 s2);
  (* and therefore neither is universal against the other *)
  check "s1 not universal" false
    (Xml_exchange.is_universal_vs mapping ~source s1 ~solutions:[ s2 ]);
  check "s2 not universal" false
    (Xml_exchange.is_universal_vs mapping ~source s2 ~solutions:[ s1 ])

let () =
  Alcotest.run "chase"
    [
      ( "egds",
        [
          Alcotest.test_case "unify nulls" `Quick test_egd_unifies_nulls;
          Alcotest.test_case "constant clash" `Quick test_egd_constant_clash;
        ] );
      ( "tgds",
        [
          Alcotest.test_case "fires" `Quick test_tgd_fires;
          Alcotest.test_case "already satisfied" `Quick test_tgd_already_satisfied;
          Alcotest.test_case "growing tgd terminates" `Quick
            test_hom_check_terminates_growing_tgd;
          Alcotest.test_case "round limit" `Quick test_round_limit_guard;
          Alcotest.test_case "exchange + constraints" `Quick
            test_exchange_with_target_constraints;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "redundant atom" `Quick test_minimize_redundant_atom;
          Alcotest.test_case "core kept" `Quick test_minimize_keeps_core;
          Alcotest.test_case "triangle + edge" `Quick
            test_minimize_boolean_triangle_plus_edge;
        ] );
      ( "xml-exchange",
        [
          Alcotest.test_case "solutions" `Quick test_xml_exchange_solutions;
          Alcotest.test_case "incomparable solutions" `Quick
            test_xml_exchange_incomparable_solutions;
        ] );
    ]
