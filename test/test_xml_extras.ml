(* Tests for the tree concrete syntax and the structurally incomplete
   document model of [4,7] (descendant edges, wildcards). *)

open Certdb_values
open Certdb_xml

let check = Alcotest.(check bool)
let c i = Value.int i

(* --- tree parsing --- *)
let test_parse_basic () =
  let t, _ = Tree_parse.tree "catalog[book(1, 1999)[author(\"ann\")]; book(2, _y)]" in
  Alcotest.(check string) "root" "catalog" t.Tree.label;
  Alcotest.(check int) "children" 2 (List.length t.Tree.children);
  Alcotest.(check int) "size" 4 (Tree.size t);
  Alcotest.(check int) "one null" 1 (Value.Set.cardinal (Tree.nulls t))

let test_parse_shared_nulls () =
  let t, bindings = Tree_parse.tree "r[a(_x); b(_x)]" in
  Alcotest.(check int) "one null" 1 (Value.Set.cardinal (Tree.nulls t));
  Alcotest.(check int) "one binding" 1 (List.length bindings)

let test_parse_roundtrip () =
  let src = "r[a(1, _v)[b]; c(\"s\")]" in
  let t, _ = Tree_parse.tree src in
  let t', _ = Tree_parse.tree (Tree_parse.to_string t) in
  check "roundtrip equivalent" true (Tree_hom.equiv t t')

let test_parse_errors () =
  let fails s =
    match Tree_parse.tree s with
    | exception Tree_parse.Parse_error _ -> true
    | _ -> false
  in
  check "missing bracket" true (fails "r[a");
  check "trailing garbage" true (fails "r[a] b");
  check "lone underscore" true (fails "r(_)");
  check "empty" true (fails "")

let test_parse_leaf_forms () =
  let t1, _ = Tree_parse.tree "a" in
  check "bare leaf" true (Tree.equal t1 (Tree.leaf "a"));
  let t2, _ = Tree_parse.tree "a()" in
  check "empty data" true (Tree.equal t2 (Tree.leaf "a"));
  let t3, _ = Tree_parse.tree "a[]" in
  check "empty children" true (Tree.equal t3 (Tree.leaf "a"))

(* --- incomplete documents --- *)
let alphabet = [ ("r", 0); ("a", 1); ("b", 1); ("m", 0) ]

let doc_with_descendant =
  (* r[ //a(⊥) ]: somewhere below the root there is an a-node *)
  Incomplete_doc.node ~label:"r"
    [ (Incomplete_doc.Descendant,
       Incomplete_doc.node ~label:"a" ~data:[ Value.null 3301 ] []) ]

let test_member_child_vs_descendant () =
  let shallow = Tree.node "r" [ Tree.leaf "a" ~data:[ c 1 ] ] in
  let deep = Tree.node "r" [ Tree.node "m" [ Tree.leaf "a" ~data:[ c 1 ] ] ] in
  check "shallow member" true (Incomplete_doc.member doc_with_descendant shallow);
  check "deep member" true (Incomplete_doc.member doc_with_descendant deep);
  let none = Tree.node "r" [ Tree.leaf "m" ] in
  check "no a-node" false (Incomplete_doc.member doc_with_descendant none)

let test_member_wildcard () =
  let doc =
    Incomplete_doc.node ~label:"r"
      [ (Incomplete_doc.Child, Incomplete_doc.node ~data:[ Value.null 3302 ] []) ]
  in
  (* wildcard child with one attribute: a or b both fit *)
  check "a fits" true
    (Incomplete_doc.member doc (Tree.node "r" [ Tree.leaf "a" ~data:[ c 1 ] ]));
  check "b fits" true
    (Incomplete_doc.member doc (Tree.node "r" [ Tree.leaf "b" ~data:[ c 2 ] ]));
  check "arity 0 does not fit" false
    (Incomplete_doc.member doc (Tree.node "r" [ Tree.leaf "m" ]))

let test_member_data_coupling () =
  let n = Value.null 3303 in
  let doc =
    Incomplete_doc.node ~label:"r"
      [ (Incomplete_doc.Child, Incomplete_doc.node ~label:"a" ~data:[ n ] []);
        (Incomplete_doc.Child, Incomplete_doc.node ~label:"b" ~data:[ n ] []) ]
  in
  let same =
    Tree.node "r" [ Tree.leaf "a" ~data:[ c 5 ]; Tree.leaf "b" ~data:[ c 5 ] ]
  in
  let diff =
    Tree.node "r" [ Tree.leaf "a" ~data:[ c 5 ]; Tree.leaf "b" ~data:[ c 6 ] ]
  in
  check "coupled ok" true (Incomplete_doc.member doc same);
  check "coupled mismatch" false (Incomplete_doc.member doc diff)

let test_of_tree () =
  let t = Tree.node "r" [ Tree.leaf "a" ~data:[ c 1 ] ] in
  let doc = Incomplete_doc.of_tree t in
  check "tree is its own member" true (Incomplete_doc.member doc t);
  Alcotest.(check int) "size preserved" (Tree.size t) (Incomplete_doc.size doc)

let test_sample_completions () =
  let completions =
    Incomplete_doc.sample_completions ~alphabet ~chain_bound:2
      doc_with_descendant
  in
  check "non-empty sample" true (List.length completions > 0);
  List.iter
    (fun t ->
      check "complete" true (Tree.is_complete t);
      check "satisfies the description" true
        (Incomplete_doc.member doc_with_descendant t))
    completions;
  (* some completion has depth 3 (interior chain node) *)
  check "a deep completion exists" true
    (List.exists (fun t -> Tree.depth t >= 3) completions)

let test_leq_sampled () =
  (* r[//a(⊥)] is less informative than r[a(1)] as a description *)
  let precise =
    Incomplete_doc.node ~label:"r"
      [ (Incomplete_doc.Child, Incomplete_doc.node ~label:"a" ~data:[ c 1 ] []) ]
  in
  check "descendant description below child description" true
    (Incomplete_doc.leq ~alphabet ~chain_bound:2 doc_with_descendant precise);
  check "not conversely" false
    (Incomplete_doc.leq ~alphabet ~chain_bound:2 precise doc_with_descendant)

let test_consistency () =
  check "consistent" true
    (Incomplete_doc.consistent ~alphabet doc_with_descendant);
  (* wildcard with arity 5: no label fits *)
  let bad =
    Incomplete_doc.node ~label:"r"
      [ (Incomplete_doc.Child,
         Incomplete_doc.node
           ~data:[ c 1; c 2; c 3; c 4; c 5 ] []) ]
  in
  check "inconsistent arity" false (Incomplete_doc.consistent ~alphabet bad);
  (* unknown label *)
  let unknown = Incomplete_doc.node ~label:"zzz" [] in
  check "unknown label" false (Incomplete_doc.consistent ~alphabet unknown)

let () =
  Alcotest.run "xml-extras"
    [
      ( "tree-parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "shared nulls" `Quick test_parse_shared_nulls;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "leaf forms" `Quick test_parse_leaf_forms;
        ] );
      ( "incomplete-doc",
        [
          Alcotest.test_case "child vs descendant" `Quick
            test_member_child_vs_descendant;
          Alcotest.test_case "wildcard" `Quick test_member_wildcard;
          Alcotest.test_case "data coupling" `Quick test_member_data_coupling;
          Alcotest.test_case "of_tree" `Quick test_of_tree;
          Alcotest.test_case "completions" `Quick test_sample_completions;
          Alcotest.test_case "sampled leq" `Quick test_leq_sampled;
          Alcotest.test_case "consistency" `Quick test_consistency;
        ] );
    ]
