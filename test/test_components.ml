(* Property-based tests (qcheck) for the interned/bitset data layer and
   the component decomposition:

   - component-split solving agrees with whole-instance solving, and
     budgets never flip a definitive Sat/Unsat;
   - the compiled bitset engine agrees with the preserved map/set
     [Engine.Reference] core;
   - bitset AC-3 pruning equals a set-based fixpoint oracle
     (reimplemented here from the pre-columnar definition). *)

open Certdb_csp
open Certdb_graph
module Int_set = Structure.Int_set
module Int_map = Structure.Int_map

let count = 60
let seed_arb = QCheck.int_range 0 10_000
let mk name arb prop = QCheck.Test.make ~count ~name arb prop

let graph_structure ~seed ~vertices ~edge_prob =
  Digraph.to_structure (Digraph.random ~seed ~vertices ~edge_prob ())

(* a source with several genuine components: disjoint union of 2–3 small
   random graphs *)
let multi_component_source seed =
  let g i = graph_structure ~seed:(seed + (97 * i)) ~vertices:3 ~edge_prob:0.5 in
  let u1, _, _ = Structure.disjoint_union (g 0) (g 1) in
  if seed mod 2 = 0 then u1
  else
    let u2, _, _ = Structure.disjoint_union u1 (g 2) in
    u2

let target_of_seed seed =
  graph_structure ~seed:(seed + 7919) ~vertices:5 ~edge_prob:0.45

(* --- component split vs whole instance --- *)

let prop_components_agree =
  mk "components = whole instance" seed_arb (fun seed ->
      let source = multi_component_source seed in
      let target = target_of_seed seed in
      let whole = Engine.solve ~source ~target () in
      let split = Engine.Components.solve ~source ~target () in
      match (whole, split) with
      | Engine.Sat _, Engine.Sat h ->
        (* the stitched witness must be a real homomorphism *)
        Engine.is_hom ~source ~target h
      | Engine.Unsat, Engine.Unsat -> true
      | _ -> false)

let prop_components_jobs_agree =
  mk "components jobs=3 = jobs=1" seed_arb (fun seed ->
      let source = multi_component_source seed in
      let target = target_of_seed seed in
      let d1 = Engine.Components.satisfiable ~jobs:1 ~source ~target () in
      let d3 = Engine.Components.satisfiable ~jobs:3 ~source ~target () in
      match (d1, d3) with
      | Engine.Sat (), Engine.Sat () | Engine.Unsat, Engine.Unsat -> true
      | _ -> false)

(* Budgets may turn a definitive answer into Unknown, never flip it. *)
let prop_components_budget_sound =
  mk "budgets never flip Sat/Unsat"
    QCheck.(pair seed_arb (int_range 1 40))
    (fun (seed, nodes) ->
      let source = multi_component_source seed in
      let target = target_of_seed seed in
      let unlimited = Engine.Components.satisfiable ~source ~target () in
      let config =
        Engine.Config.make ~limits:(Engine.Limits.make ~nodes ()) ()
      in
      let budgeted =
        Engine.Components.satisfiable ~config ~source ~target ()
      in
      match (unlimited, budgeted) with
      | Engine.Sat (), (Engine.Sat () | Engine.Unknown _) -> true
      | Engine.Unsat, (Engine.Unsat | Engine.Unknown _) -> true
      | (Engine.Sat () | Engine.Unsat), _ -> false
      | Engine.Unknown _, _ -> false (* unlimited search cannot be Unknown *))

let prop_split_partitions_source =
  mk "split partitions nodes and tuples" seed_arb (fun seed ->
      let source = multi_component_source seed in
      let parts = Engine.Components.split source in
      let nodes_total =
        List.fold_left
          (fun acc p -> acc + List.length (Structure.nodes p))
          0 parts
      in
      let tuples_total =
        List.fold_left
          (fun acc p -> acc + List.length (Structure.all_tuples p))
          0 parts
      in
      nodes_total = List.length (Structure.nodes source)
      && tuples_total = List.length (Structure.all_tuples source)
      && List.length parts = Engine.Components.count source)

(* --- compiled bitset engine vs preserved Reference core --- *)

let prop_engine_matches_reference =
  mk "engine = reference" seed_arb (fun seed ->
      let source = graph_structure ~seed ~vertices:5 ~edge_prob:0.35 in
      let target = target_of_seed seed in
      let a = Engine.solve ~source ~target () in
      let b = Engine.Reference.solve ~source ~target () in
      match (a, b) with
      | Engine.Sat h, Engine.Sat _ -> Engine.is_hom ~source ~target h
      | Engine.Unsat, Engine.Unsat -> true
      | _ -> false)

let prop_engine_matches_reference_restricted =
  mk "engine = reference under restrict" seed_arb (fun seed ->
      let source = graph_structure ~seed ~vertices:4 ~edge_prob:0.4 in
      let target = target_of_seed seed in
      let restrict =
        Domains.of_list
          (List.filter_map
             (fun v ->
               if v mod 2 = 0 then
                 Some
                   ( v,
                     Int_set.of_list
                       (List.filter
                          (fun w -> w mod 2 = seed mod 2)
                          (Structure.nodes target)) )
               else None)
             (Structure.nodes source))
      in
      let config = Engine.Config.make ~restrict () in
      let a = Engine.satisfiable ~config ~source ~target () in
      let b = Engine.Reference.satisfiable ~config ~source ~target () in
      match (a, b) with
      | Engine.Sat (), Engine.Sat () | Engine.Unsat, Engine.Unsat -> true
      | _ -> false)

(* --- bitset AC-3 vs a set-based fixpoint oracle --- *)

(* the pre-columnar definition, verbatim: a candidate w for v survives iff
   for every constraint (rel, tup) with v ∈ tup there is a target tuple
   t ∈ rel with t.(i) = w at v's position and t.(j) in the current domain
   of tup.(j) everywhere else.  The greatest such fixpoint is unique, so
   any chaotic iteration computes it. *)
let ac3_oracle ?restrict ~source ~target () =
  let label_ok v w = Structure.same_label source v target w in
  let base v =
    let labelled =
      Int_set.of_list
        (List.filter (label_ok v) (Structure.nodes target))
    in
    match restrict with
    | None -> labelled
    | Some r -> (
      match Domains.find r v with
      | None -> labelled
      | Some s -> Int_set.inter labelled s)
  in
  let domains =
    ref
      (List.fold_left
         (fun m v -> Int_map.add v (base v) m)
         Int_map.empty (Structure.nodes source))
  in
  let cstrs = Structure.all_tuples source in
  let supported tup i w =
    List.exists
      (fun (rel, t) ->
        rel = fst tup
        && Array.length t = Array.length (snd tup)
        && t.(i) = w
        && Array.for_all
             (fun j -> Int_set.mem t.(j) (Int_map.find (snd tup).(j) !domains))
             (Array.init (Array.length t) Fun.id))
      (List.filter (fun (r, _) -> r = fst tup) (Structure.all_tuples target))
  in
  let changed = ref true in
  let wiped = ref false in
  while !changed && not !wiped do
    changed := false;
    List.iter
      (fun (rel, tup) ->
        Array.iteri
          (fun i v ->
            let dom = Int_map.find v !domains in
            let dom' =
              Int_set.filter (fun w -> supported (rel, tup) i w) dom
            in
            if not (Int_set.equal dom dom') then begin
              changed := true;
              domains := Int_map.add v dom' !domains;
              if Int_set.is_empty dom' then wiped := true
            end)
          tup)
      cstrs
  done;
  let zero_ok =
    List.for_all
      (fun (rel, tup) ->
        Array.length tup > 0
        || List.exists
             (fun (r, t) -> r = rel && Array.length t = 0)
             (Structure.all_tuples target))
      cstrs
  in
  if (not zero_ok) || !wiped
     || Int_map.exists (fun _ s -> Int_set.is_empty s) !domains
  then None
  else Some !domains

let prop_ac3_matches_oracle =
  mk "bitset AC-3 = set oracle" seed_arb (fun seed ->
      let source = graph_structure ~seed ~vertices:4 ~edge_prob:0.45 in
      let target =
        graph_structure ~seed:(seed + 31) ~vertices:4 ~edge_prob:0.35
      in
      let got = Arc_consistency.prune ~source ~target () in
      let want = ac3_oracle ~source ~target () in
      match (got, want) with
      | None, None -> true
      | Some a, Some b -> Int_map.equal Int_set.equal a b
      | _ -> false)

let prop_ac3_matches_oracle_restricted =
  mk "bitset AC-3 = set oracle (restricted)" seed_arb (fun seed ->
      let source = graph_structure ~seed ~vertices:4 ~edge_prob:0.45 in
      let target =
        graph_structure ~seed:(seed + 31) ~vertices:5 ~edge_prob:0.4
      in
      let restrict =
        Domains.of_list
          (List.filter_map
             (fun v ->
               if v mod 3 = 0 then
                 Some
                   ( v,
                     Int_set.of_list
                       (List.filter (fun w -> w <> seed mod 5)
                          (Structure.nodes target)) )
               else None)
             (Structure.nodes source))
      in
      let got = Arc_consistency.prune ~restrict ~source ~target () in
      let want = ac3_oracle ~restrict ~source ~target () in
      match (got, want) with
      | None, None -> true
      | Some a, Some b -> Int_map.equal Int_set.equal a b
      | _ -> false)

(* --- implicit node registration --- *)

let prop_add_tuple_registers =
  mk "add_tuple registers nodes" seed_arb (fun seed ->
      let tup = [| seed mod 7; (seed / 7) mod 7 |] in
      let s = Structure.add_tuple Structure.empty "E" tup in
      Array.for_all (fun v -> List.mem v (Structure.nodes s)) tup
      && Structure.mem_tuple s "E" tup)

let all_props =
  [
    prop_components_agree;
    prop_components_jobs_agree;
    prop_components_budget_sound;
    prop_split_partitions_source;
    prop_engine_matches_reference;
    prop_engine_matches_reference_restricted;
    prop_ac3_matches_oracle;
    prop_ac3_matches_oracle_restricted;
    prop_add_tuple_registers;
  ]

let () =
  Alcotest.run "components"
    [ ("qcheck", List.map QCheck_alcotest.to_alcotest all_props) ]
