(* Edge-case tests: empty inputs, arity conflicts, degenerate structures,
   counting functions, decomposition reuse, classifier corners. *)

open Certdb_values
open Certdb_csp
open Certdb_relational

let check = Alcotest.(check bool)
let c i = Value.int i
let n1 = Value.null 1801
let n2 = Value.null 1802

(* --- schema --- *)
let test_schema_conflicts () =
  Alcotest.check_raises "redeclared arity"
    (Invalid_argument "Schema.add: R redeclared with arity 3 (was 2)")
    (fun () -> ignore (Schema.of_list [ ("R", 2); ("R", 3) ]));
  let s1 = Schema.of_list [ ("R", 2) ] and s2 = Schema.of_list [ ("S", 1) ] in
  Alcotest.(check int) "union size" 2
    (List.length (Schema.relations (Schema.union s1 s2)));
  check "conforms" true (Schema.conforms s1 ~rel:"R" ~arity:2);
  check "wrong arity" false (Schema.conforms s1 ~rel:"R" ~arity:1);
  check "unknown" false (Schema.conforms s1 ~rel:"T" ~arity:2)

let test_instance_schema_inference () =
  let d = Instance.of_list [ ("R", [ [ c 1; c 2 ] ]); ("S", [ [ c 1 ] ]) ] in
  let s = Instance.schema d in
  check "R/2" true (Schema.arity s "R" = Some 2);
  check "S/1" true (Schema.arity s "S" = Some 1);
  let bad = Instance.of_list [ ("R", [ [ c 1 ]; [ c 1; c 2 ] ]) ] in
  Alcotest.check_raises "mixed arities"
    (Invalid_argument "Schema.add: R redeclared with arity 2 (was 1)")
    (fun () -> ignore (Instance.schema bad))

(* --- empty instances --- *)
let test_empty_instances () =
  check "empty leq empty" true (Ordering.leq Instance.empty Instance.empty);
  check "empty cwa empty" true (Ordering.cwa_leq Instance.empty Instance.empty);
  check "empty is complete" true (Instance.is_complete Instance.empty);
  check "empty is codd" true (Codd.is_codd Instance.empty);
  check "empty core" true
    (Instance.is_empty (Core_instance.core Instance.empty));
  let d = Instance.of_list [ ("R", [ [ c 1 ] ]) ] in
  let g = Glb.glb Instance.empty d in
  check "glb with empty is empty" true (Instance.is_empty g)

(* --- zero-ary facts --- *)
let test_zero_ary () =
  let d = Instance.of_list [ ("Flag", [ [] ]) ] in
  check "mem 0-ary" true (Instance.mem d (Instance.fact "Flag" []));
  check "complete" true (Instance.is_complete d);
  check "self hom" true (Ordering.leq d d);
  let d2 = Instance.of_list [ ("Flag", [ [] ]); ("R", [ [ n1 ] ]) ] in
  check "0-ary preserved in glb" true
    (Instance.mem (Glb.glb d2 d2) (Instance.fact "Flag" []))

(* --- hom counting --- *)
let test_hom_count () =
  let d = Instance.of_list [ ("R", [ [ n1 ] ]) ] in
  let d' = Instance.of_list [ ("R", [ [ c 1 ]; [ c 2 ]; [ c 3 ] ]) ] in
  Alcotest.(check int) "three homs" 3 (Hom.count d d');
  let coupled = Instance.of_list [ ("R", [ [ n1 ] ]); ("S", [ [ n1 ] ]) ] in
  let target =
    Instance.of_list [ ("R", [ [ c 1 ]; [ c 2 ] ]); ("S", [ [ c 1 ] ]) ]
  in
  Alcotest.(check int) "coupling restricts" 1 (Hom.count coupled target)

let test_hom_no_facts_for_relation () =
  let d = Instance.of_list [ ("R", [ [ c 1 ] ]) ] in
  let d' = Instance.of_list [ ("S", [ [ c 1 ] ]) ] in
  check "different relations" false (Ordering.leq d d')

(* --- structure / solver corners --- *)
let test_structure_add_tuple_unknown_node () =
  (* tuple nodes are registered implicitly: no pre-declaration needed *)
  let s = Structure.make ~nodes:[ (0, None) ] ~tuples:[] in
  let s = Structure.add_tuple s "E" [| 0; 1 |] in
  check "node auto-registered" true
    (List.mem 1 (Structure.nodes s));
  check "tuple present" true (Structure.mem_tuple s "E" [| 0; 1 |]);
  check "fresh node unlabeled" true (Structure.label_of s 1 = None)

let test_solver_empty_source () =
  let t = Structure.make ~nodes:[ (0, None) ] ~tuples:[] in
  check "empty source has hom" true
    (Solver.exists_hom ~source:Structure.empty ~target:t ());
  check "empty target blocks nonempty source" false
    (Solver.exists_hom ~source:t ~target:Structure.empty ())

let test_solver_self_loop () =
  let loop =
    Structure.make ~nodes:[ (0, None) ] ~tuples:[ ("E", [ [| 0; 0 |] ]) ]
  in
  let open Certdb_graph in
  check "everything maps to a loop" true
    (Solver.exists_hom
       ~source:(Digraph.to_structure (Digraph.clique 3))
       ~target:loop ());
  check "loop only maps to loopy" false
    (Solver.exists_hom ~source:loop
       ~target:(Digraph.to_structure (Digraph.cycle 2))
       ())

let test_treewidth_explicit_order () =
  let open Certdb_graph in
  let g = Digraph.to_structure (Digraph.cycle 4) in
  let d1 = Treewidth.of_elimination_order g [ 0; 1; 2; 3 ] in
  check "explicit order valid" true (Treewidth.is_valid g d1);
  check "width at least 2" true (Treewidth.width d1 >= 2);
  let empty = Treewidth.of_elimination_order Structure.empty [] in
  Alcotest.(check int) "empty decomposition width" (-1) (Treewidth.width empty)

let test_bounded_tw_single_node () =
  let s = Structure.make ~nodes:[ (0, Some "a") ] ~tuples:[] in
  let t = Structure.make ~nodes:[ (5, Some "a"); (6, Some "b") ] ~tuples:[] in
  check "single node maps" true (Bounded_tw.hom ~source:s ~target:t ());
  let t_wrong = Structure.make ~nodes:[ (5, Some "b") ] ~tuples:[] in
  check "label blocks" false (Bounded_tw.hom ~source:s ~target:t_wrong ())

(* --- gdm corners --- *)
let test_gdb_errors () =
  let open Certdb_gdm in
  let db = Gdb.make ~nodes:[ (0, "a", [ c 1 ]) ] ~tuples:[] in
  Alcotest.check_raises "duplicate node"
    (Invalid_argument "Gdb.add_node: node exists") (fun () ->
      ignore (Gdb.add_node db ~node:0 ~label:"b" ~data:[]));
  Alcotest.check_raises "missing node data"
    (Invalid_argument "Gdb.data: missing node") (fun () ->
      ignore (Gdb.data db 42))

let test_gdb_map_nodes_merge_guard () =
  let open Certdb_gdm in
  let db =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ c 2 ]) ] ~tuples:[]
  in
  Alcotest.check_raises "conflicting data merge"
    (Invalid_argument "Gdb.map_nodes: merged nodes with different data")
    (fun () -> ignore (Gdb.map_nodes db (fun _ -> 0)));
  let db_same =
    Gdb.make ~nodes:[ (0, "a", [ c 1 ]); (1, "a", [ c 1 ]) ] ~tuples:[]
  in
  Alcotest.(check int) "legal merge" 1
    (Gdb.size (Gdb.map_nodes db_same (fun _ -> 0)))

let test_logic_eqattr_out_of_range () =
  let open Certdb_gdm in
  let db = Gdb.make ~nodes:[ (0, "a", [ c 1 ]) ] ~tuples:[] in
  check "index 2 on arity 1 is false" false
    (Logic.holds db (Logic.Exists ([ "x" ], Logic.EqAttr (2, "x", 2, "x"))));
  check "index 1 reflexive" true
    (Logic.holds db (Logic.Exists ([ "x" ], Logic.EqAttr (1, "x", 1, "x"))))

let test_gschema_duplicates () =
  let open Certdb_gdm in
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Gschema.make: duplicate label") (fun () ->
      ignore (Gschema.make ~alphabet:[ ("a", 1); ("a", 2) ] ~sigma:[]))

(* --- valuation laws --- *)
let test_valuation_compose_identity () =
  let h = Valuation.bind Valuation.empty n1 (c 3) in
  let composed = Valuation.compose Valuation.empty h in
  check "left identity-ish" true
    (Value.equal (Valuation.apply composed n1) (c 3));
  let composed2 = Valuation.compose h Valuation.empty in
  check "right identity" true
    (Value.equal (Valuation.apply composed2 n1) (c 3))

let test_valuation_compose_chain () =
  let f = Valuation.bind Valuation.empty n1 n2 in
  let g = Valuation.bind Valuation.empty n2 (c 9) in
  let fg = Valuation.compose f g in
  check "f;g on n1" true (Value.equal (Valuation.apply fg n1) (c 9));
  (* compose is not commutative *)
  let gf = Valuation.compose g f in
  check "g;f on n1" true (Value.equal (Valuation.apply gf n1) n2)

(* --- ordering corner: instances equivalent but not equal --- *)
let test_equiv_not_equal () =
  let d1 = Instance.of_list [ ("R", [ [ n1 ] ]) ] in
  let d2 = Instance.of_list [ ("R", [ [ n2 ] ]) ] in
  check "not structurally equal" false (Instance.equal d1 d2);
  check "equivalent" true (Ordering.equiv d1 d2)

(* --- exchange corners --- *)
let test_mapping_no_triggers () =
  let open Certdb_exchange in
  let rule =
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("S", [ [ n1 ] ]) ])
      ~head:(Instance.of_list [ ("T", [ [ n1 ] ]) ])
  in
  let empty_source = Certdb_gdm.Encode.of_instance Instance.empty in
  check "no triggers on empty source" true
    (Mapping.m_of_d [ rule ] empty_source = []);
  check "empty is a solution then" true
    (Solution.is_solution [ rule ] ~source:empty_source Certdb_gdm.Gdb.empty)

let test_chase_relational_preserves_source_nulls_linkage () =
  let open Certdb_exchange in
  let shared = Value.fresh_null () in
  let rule =
    Mapping.relational_rule
      ~body:(Instance.of_list [ ("S", [ [ n1; n2 ] ]) ])
      ~head:(Instance.of_list [ ("T", [ [ n2; n1 ] ]) ])
  in
  let source = Instance.of_list [ ("S", [ [ shared; c 2 ]; [ c 3; shared ] ]) ] in
  let out = Universal.chase_relational [ rule ] source in
  (* the source null flows into both target facts in swapped positions *)
  let tuples = Instance.tuples out "T" in
  Alcotest.(check int) "two target facts" 2 (List.length tuples);
  let target_nulls = Instance.nulls out in
  Alcotest.(check int) "single source null in target" 1
    (Value.Set.cardinal target_nulls);
  check "it is the shared one" true (Value.Set.mem shared target_nulls)

(* --- graph corner --- *)
let test_graph_empty () =
  let open Certdb_graph in
  check "empty graph hom" true (Graph_hom.leq Digraph.empty Digraph.empty);
  check "empty into anything" true
    (Graph_hom.leq Digraph.empty (Digraph.cycle 3));
  Alcotest.(check int) "core of empty" 0
    (Digraph.size (Graph_core.core Digraph.empty))

let () =
  Alcotest.run "edge-cases"
    [
      ( "schema",
        [
          Alcotest.test_case "conflicts" `Quick test_schema_conflicts;
          Alcotest.test_case "inference" `Quick test_instance_schema_inference;
        ] );
      ( "instances",
        [
          Alcotest.test_case "empty" `Quick test_empty_instances;
          Alcotest.test_case "zero-ary" `Quick test_zero_ary;
          Alcotest.test_case "equiv not equal" `Quick test_equiv_not_equal;
        ] );
      ( "homs",
        [
          Alcotest.test_case "count" `Quick test_hom_count;
          Alcotest.test_case "relation mismatch" `Quick
            test_hom_no_facts_for_relation;
        ] );
      ( "csp",
        [
          Alcotest.test_case "implicit nodes" `Quick test_structure_add_tuple_unknown_node;
          Alcotest.test_case "empty source" `Quick test_solver_empty_source;
          Alcotest.test_case "self loop" `Quick test_solver_self_loop;
          Alcotest.test_case "explicit order" `Quick test_treewidth_explicit_order;
          Alcotest.test_case "single node dp" `Quick test_bounded_tw_single_node;
        ] );
      ( "gdm",
        [
          Alcotest.test_case "gdb errors" `Quick test_gdb_errors;
          Alcotest.test_case "merge guard" `Quick test_gdb_map_nodes_merge_guard;
          Alcotest.test_case "eqattr range" `Quick test_logic_eqattr_out_of_range;
          Alcotest.test_case "gschema dupes" `Quick test_gschema_duplicates;
        ] );
      ( "valuations",
        [
          Alcotest.test_case "compose identity" `Quick
            test_valuation_compose_identity;
          Alcotest.test_case "compose chain" `Quick test_valuation_compose_chain;
        ] );
      ( "exchange",
        [
          Alcotest.test_case "no triggers" `Quick test_mapping_no_triggers;
          Alcotest.test_case "source nulls flow" `Quick
            test_chase_relational_preserves_source_nulls_linkage;
        ] );
      ( "graph",
        [ Alcotest.test_case "empty graph" `Quick test_graph_empty ] );
    ]
