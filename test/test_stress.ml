(* Stress tests (kept under a few seconds each): the polynomial paths must
   stay comfortable at sizes where exponential fallbacks would explode. *)

open Certdb_values
open Certdb_relational
open Certdb_gdm

let check = Alcotest.(check bool)

let test_codd_membership_200 () =
  let d = Ggen.tree ~seed:5 ~nodes:200 ~labels:[ "a"; "b" ] ~null_prob:0.4 ~domain:3 () in
  let d' =
    Gdb.ground
      (Ggen.tree ~seed:6 ~nodes:220 ~labels:[ "a"; "b" ] ~null_prob:0.0 ~domain:3 ())
  in
  (* just exercise it; the answer value is data-dependent *)
  let result = Membership.codd_leq d d' in
  check "terminates" true (result || not result)

let test_codd_membership_positive_200 () =
  let d = Ggen.tree ~seed:7 ~nodes:200 ~labels:[ "a" ] ~null_prob:0.6 ~domain:2 () in
  let d' = Gdb.ground d in
  check "grounding is a member" true (Membership.codd_leq d d')

let test_hoare_ordering_500_facts () =
  let d =
    Codd.random ~seed:1 ~schema:[ ("R", 2) ] ~facts:500 ~null_prob:0.3
      ~domain:20 ()
  in
  let d' =
    Codd.random ~seed:2 ~schema:[ ("R", 2) ] ~facts:500 ~null_prob:0.0
      ~domain:20 ()
  in
  let result = Ordering.hoare_leq d d' in
  check "terminates" true (result || not result)

let test_hall_300 () =
  let d =
    Codd.random ~seed:3 ~schema:[ ("R", 2) ] ~facts:300 ~null_prob:0.5
      ~domain:5 ()
  in
  let d' =
    Codd.random ~seed:4 ~schema:[ ("R", 2) ] ~facts:300 ~null_prob:0.0
      ~domain:5 ()
  in
  let result = Ordering.cwa_leq_codd d d' in
  check "terminates" true (result || not result)

let test_hom_positive_large () =
  (* a satisfiable hom instance: d into its own grounding, 120 facts *)
  let d =
    Codd.random_naive ~seed:9 ~schema:[ ("R", 2); ("S", 1) ] ~facts:120
      ~null_prob:0.3 ~domain:10 ~null_pool:6 ()
  in
  check "hom into grounding" true (Ordering.leq d (Instance.ground d))

let test_glb_family_of_five () =
  let tables =
    List.init 5 (fun i ->
        Instance.of_list
          [ ("R", List.init 3 (fun j -> [ Value.int ((10 * i) + j); Value.fresh_null () ])) ])
  in
  let g = Glb.family tables in
  check "size = 3^5" true (Instance.cardinal g = 243);
  check "is lower bound of all" true
    (List.for_all (fun t -> Ordering.leq g t) tables)

let test_chase_100_facts () =
  let open Certdb_exchange in
  let nx = Value.null 9901 and ny = Value.null 9902 and nz = Value.null 9903 in
  let m =
    [
      Mapping.relational_rule
        ~body:(Instance.of_list [ ("S", [ [ nx; ny ] ]) ])
        ~head:(Instance.of_list [ ("T", [ [ nx; nz ]; [ nz; ny ] ]) ]);
    ]
  in
  let source =
    Instance.of_list
      [ ("S", List.init 100 (fun i -> [ Value.int i; Value.int (i + 1000) ])) ]
  in
  let solution = Universal.chase_relational m source in
  Alcotest.(check int) "200 facts" 200 (Instance.cardinal solution)

let test_pattern_matching_large_tree () =
  let open Certdb_xml in
  let t =
    Tree.node "root"
      (List.init 300 (fun i ->
           Tree.node "item" ~data:[ Value.int i ]
             [ Tree.leaf "tag" ~data:[ Value.int (i mod 7) ] ]))
  in
  let p =
    Pattern.node ~label:"item" ~data:[ Pattern.Var "id" ]
      [ (Pattern.Child, Pattern.node ~label:"tag" ~data:[ Pattern.Val (Value.int 3) ] []) ]
  in
  let answers = Pattern.answers p t ~out:[ "id" ] in
  check "found the 3-tagged items" true (List.length answers > 30)

let test_tree_glb_wide () =
  let open Certdb_xml in
  let mk offset =
    Tree.node "r"
      (List.init 12 (fun i -> Tree.leaf "a" ~data:[ Value.int (offset + (i mod 6)) ]))
  in
  match Tree_glb.glb (mk 0) (mk 3) with
  | Some g ->
    check "bounded by product" true (Tree.size g <= 1 + (12 * 12));
    check "lower bound" true (Tree_hom.leq g (mk 0) && Tree_hom.leq g (mk 3))
  | None -> Alcotest.fail "glb exists"

let test_treewidth_large_tree () =
  let open Certdb_csp in
  let d = Ggen.tree ~seed:11 ~nodes:400 ~labels:[ "a" ] ~null_prob:0.0 ~domain:2 () in
  let dec = Treewidth.of_structure (Gdb.structure d) in
  check "valid" true (Treewidth.is_valid (Gdb.structure d) dec);
  Alcotest.(check int) "width 1" 1 (Treewidth.width dec)

let () =
  Alcotest.run "stress"
    [
      ( "polynomial-paths",
        [
          Alcotest.test_case "codd membership 200" `Slow test_codd_membership_200;
          Alcotest.test_case "codd membership positive 200" `Slow
            test_codd_membership_positive_200;
          Alcotest.test_case "hoare 500" `Slow test_hoare_ordering_500_facts;
          Alcotest.test_case "hall 300" `Slow test_hall_300;
          Alcotest.test_case "hom positive 120" `Slow test_hom_positive_large;
          Alcotest.test_case "treewidth 400" `Slow test_treewidth_large_tree;
        ] );
      ( "constructions",
        [
          Alcotest.test_case "glb family 3^5" `Slow test_glb_family_of_five;
          Alcotest.test_case "chase 100" `Slow test_chase_100_facts;
          Alcotest.test_case "patterns 300" `Slow test_pattern_matching_large_tree;
          Alcotest.test_case "tree glb wide" `Slow test_tree_glb_wide;
        ] );
    ]
