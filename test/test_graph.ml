(* Tests for the graph substrate: homomorphism order, cores, the glb/lub
   lattice constructions, and the Theorem 3 chain of paths and cycles. *)

open Certdb_graph

let check = Alcotest.(check bool)

let test_families () =
  Alcotest.(check int) "path vertices" 5 (Digraph.size (Digraph.path 4));
  Alcotest.(check int) "path edges" 4 (Digraph.edge_count (Digraph.path 4));
  Alcotest.(check int) "cycle vertices" 4 (Digraph.size (Digraph.cycle 4));
  Alcotest.(check int) "clique edges" 6 (Digraph.edge_count (Digraph.clique 3));
  Alcotest.(check int) "grid vertices" 6 (Digraph.size (Digraph.grid 2 3))

let test_hom_cycles () =
  (* C_{2m} -> C_m when m divides 2m; directed cycles: C_n -> C_k iff k | n *)
  check "C4 -> C2" true (Graph_hom.leq (Digraph.cycle 4) (Digraph.cycle 2));
  check "C8 -> C4" true (Graph_hom.leq (Digraph.cycle 8) (Digraph.cycle 4));
  check "C4 -/-> C8" false (Graph_hom.leq (Digraph.cycle 4) (Digraph.cycle 8));
  check "C6 -> C3" true (Graph_hom.leq (Digraph.cycle 6) (Digraph.cycle 3));
  check "C6 -/-> C4" false (Graph_hom.leq (Digraph.cycle 6) (Digraph.cycle 4))

let test_hom_paths () =
  check "P2 -> P5" true (Graph_hom.leq (Digraph.path 2) (Digraph.path 5));
  check "P5 -/-> P2" false (Graph_hom.leq (Digraph.path 5) (Digraph.path 2));
  check "P3 -> C4" true (Graph_hom.leq (Digraph.path 3) (Digraph.cycle 4))

(* The Theorem 3 chain: P1 ≺ P2 ≺ ... ≺ C_{2^m} ≺ ... ≺ C4 ≺ C2 *)
let test_theorem3_chain () =
  for n = 1 to 4 do
    check
      (Printf.sprintf "P%d < P%d" n (n + 1))
      true
      (Graph_hom.strictly_less (Digraph.path n) (Digraph.path (n + 1)))
  done;
  for m = 2 to 4 do
    let big = Digraph.cycle (1 lsl m) and small = Digraph.cycle (1 lsl (m - 1)) in
    check
      (Printf.sprintf "C%d < C%d" (1 lsl m) (1 lsl (m - 1)))
      true
      (Graph_hom.strictly_less big small)
  done;
  check "P7 < C8" true
    (Graph_hom.strictly_less (Digraph.path 7) (Digraph.cycle 8))

let test_colorable () =
  check "triangle 3-colorable" true (Graph_hom.colorable 3 (Digraph.cycle 3));
  check "triangle not 2-colorable" false
    (Graph_hom.colorable 2 (Digraph.cycle 3));
  check "C4 2-colorable" true (Graph_hom.colorable 2 (Digraph.cycle 4));
  check "K4 not 3-colorable" false (Graph_hom.colorable 3 (Digraph.clique 4));
  check "K4 4-colorable" true (Graph_hom.colorable 4 (Digraph.clique 4))

let test_core_basics () =
  (* directed cycles are cores *)
  check "C3 is core" true (Graph_core.is_core (Digraph.cycle 3));
  check "C4 is core" true (Graph_core.is_core (Digraph.cycle 4));
  (* paths are cores (rigid) *)
  check "P3 is core" true (Graph_core.is_core (Digraph.path 3));
  (* two disjoint copies of C3 fold to one *)
  let two = Digraph.disjoint_union (Digraph.cycle 3) (Digraph.cycle 3) in
  check "2xC3 not core" false (Graph_core.is_core two);
  let c = Graph_core.core two in
  Alcotest.(check int) "core size 3" 3 (Digraph.size c);
  check "core equivalent" true (Graph_hom.equiv c two)

let test_core_c6_c3 () =
  (* C6 ⊔ C3 folds to C3 *)
  let u = Digraph.disjoint_union (Digraph.cycle 6) (Digraph.cycle 3) in
  let c = Graph_core.core u in
  Alcotest.(check int) "core of C6+C3" 3 (Digraph.size c);
  check "equiv to C3" true (Graph_hom.equiv c (Digraph.cycle 3))

let test_glb_lattice () =
  (* C4 ∧ C6: product contains a directed cycle of length lcm? The glb of
     C4 and C6 in the core lattice is core(C4 × C6) = C12. *)
  let g = Graph_core.glb (Digraph.cycle 4) (Digraph.cycle 6) in
  check "glb below C4" true (Graph_hom.leq g (Digraph.cycle 4));
  check "glb below C6" true (Graph_hom.leq g (Digraph.cycle 6));
  check "glb equiv C12" true (Graph_hom.equiv g (Digraph.cycle 12))

let test_lub_lattice () =
  let l = Graph_core.lub (Digraph.cycle 4) (Digraph.cycle 6) in
  check "C4 below lub" true (Graph_hom.leq (Digraph.cycle 4) l);
  check "C6 below lub" true (Graph_hom.leq (Digraph.cycle 6) l);
  (* C2 is an upper bound of both, so lub ⊑ C2 *)
  check "lub below C2" true (Graph_hom.leq l (Digraph.cycle 2))

let test_glb_universal_property () =
  for seed = 0 to 10 do
    let g1 = Digraph.random ~seed ~vertices:4 ~edge_prob:0.4 () in
    let g2 = Digraph.random ~seed:(seed + 20) ~vertices:4 ~edge_prob:0.4 () in
    let h = Digraph.random ~seed:(seed + 40) ~vertices:3 ~edge_prob:0.4 () in
    let g = Digraph.product g1 g2 in
    check
      (Printf.sprintf "seed %d: lower bounds factor" seed)
      (Graph_hom.leq h g1 && Graph_hom.leq h g2)
      (Graph_hom.leq h g)
  done

let test_incomparable () =
  (* C3 and C4 are incomparable *)
  check "C3 | C4" true (Graph_hom.incomparable (Digraph.cycle 3) (Digraph.cycle 4))

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "families" `Quick test_families;
        ] );
      ( "hom",
        [
          Alcotest.test_case "cycles" `Quick test_hom_cycles;
          Alcotest.test_case "paths" `Quick test_hom_paths;
          Alcotest.test_case "theorem3 chain" `Quick test_theorem3_chain;
          Alcotest.test_case "colorable" `Quick test_colorable;
          Alcotest.test_case "incomparable" `Quick test_incomparable;
        ] );
      ( "core",
        [
          Alcotest.test_case "basics" `Quick test_core_basics;
          Alcotest.test_case "C6+C3" `Quick test_core_c6_c3;
          Alcotest.test_case "glb" `Quick test_glb_lattice;
          Alcotest.test_case "lub" `Quick test_lub_lattice;
          Alcotest.test_case "glb universal" `Quick test_glb_universal_property;
        ] );
    ]
