(* Tests for the consistency problem (Section 6, Prop. 11). *)

open Certdb_values
open Certdb_csp
open Certdb_gdm
open Certdb_consistency

let check = Alcotest.(check bool)

let graph_schema = Gschema.make ~alphabet:[ ("v", 0) ] ~sigma:[ ("E", 2) ]

(* an undirected version: add both directions *)
let gdb_of_undirected edges vertices =
  let db =
    List.fold_left
      (fun db v -> Gdb.add_node db ~node:v ~label:"v" ~data:[])
      Gdb.empty vertices
  in
  List.fold_left
    (fun db (x, y) ->
      Gdb.add_tuple (Gdb.add_tuple db "E" [ x; y ]) "E" [ y; x ])
    db edges

let k3_structure () =
  let open Certdb_graph in
  Digraph.to_structure (Digraph.clique 3)
  |> fun s ->
  (* label all nodes "v" to match the schema *)
  List.fold_left
    (fun acc v -> Structure.add_node ~label:"v" acc v)
    s (Structure.nodes s)

let test_classify () =
  let f = Cons.three_colorability_condition () in
  check "structural" true (Cons.is_structural f);
  check "exists-forall" true (Cons.classify f = `Exists_forall);
  let g = Logic.Exists ([ "x" ], Logic.Label ("v", "x")) in
  check "existential" true (Cons.classify g = `Existential);
  let h = Logic.Forall ([ "x" ], Logic.Exists ([ "y" ], Logic.Rel ("E", [ "x"; "y" ]))) in
  check "other" true (Cons.classify h = `Other)

let test_cons_existential () =
  let sat = Logic.Exists ([ "x" ], Logic.Label ("v", "x")) in
  check "satisfiable" true (Cons.cons_existential ~schema:graph_schema sat);
  let unsat = Logic.Exists ([ "x" ], Logic.And (Logic.Label ("v", "x"), Logic.Not (Logic.Label ("v", "x")))) in
  check "unsatisfiable" false (Cons.cons_existential ~schema:graph_schema unsat);
  let edge = Logic.Exists ([ "x"; "y" ], Logic.Rel ("E", [ "x"; "y" ])) in
  check "edge satisfiable" true (Cons.cons_existential ~schema:graph_schema edge)

let test_cons_hom_into_3col () =
  (* triangle is 3-colorable, K4 is not *)
  let tri = gdb_of_undirected [ (0, 1); (1, 2); (2, 0) ] [ 0; 1; 2 ] in
  check "triangle" true (Cons.cons_hom_into ~target:(k3_structure ()) tri);
  let k4 =
    gdb_of_undirected
      [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
      [ 0; 1; 2; 3 ]
  in
  check "K4" false (Cons.cons_hom_into ~target:(k3_structure ()) k4);
  (* 5-cycle is 3-colorable but not 2-colorable *)
  let c5 = gdb_of_undirected [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] [ 0; 1; 2; 3; 4 ] in
  check "C5 3-colorable" true (Cons.cons_hom_into ~target:(k3_structure ()) c5)

let test_cons_bounded_agrees_with_3col () =
  let phi = Cons.three_colorability_condition () in
  let cases =
    [
      (gdb_of_undirected [ (0, 1); (1, 2); (2, 0) ] [ 0; 1; 2 ], true);
      ( gdb_of_undirected
          [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
          [ 0; 1; 2; 3 ],
        false );
      (gdb_of_undirected [ (0, 1) ] [ 0; 1 ], true);
    ]
  in
  List.iter
    (fun (d, expected) ->
      check "bounded search = 3-colorability" expected
        (Cons.cons_bounded ~schema:graph_schema ~size_bound:3 phi d))
    cases

let test_fiber_unification () =
  (* two nodes with data (⊥1) and (5) merged by a hom into one target node:
     consistent; data (4) and (5): clash *)
  let n1 = Value.null 4001 in
  let mergeable =
    Gdb.make ~nodes:[ (0, "v", [ n1 ]); (1, "v", [ Value.int 5 ]) ] ~tuples:[]
  in
  let clashing =
    Gdb.make
      ~nodes:[ (0, "v", [ Value.int 4 ]); (1, "v", [ Value.int 5 ]) ]
      ~tuples:[]
  in
  let single =
    Structure.make ~nodes:[ (0, Some "v") ] ~tuples:[]
  in
  (* schema with arity-1 label for this test *)
  check "mergeable fibers" true (Cons.cons_hom_into ~target:single mergeable);
  check "clashing fibers" false (Cons.cons_hom_into ~target:single clashing)

let test_cons_with_data_constraints () =
  (* with the triangle over nulls as data: still consistent *)
  let n i = Value.null (4100 + i) in
  let db =
    Gdb.make
      ~nodes:[ (0, "v", [ n 0 ]); (1, "v", [ n 1 ]); (2, "v", [ n 2 ]) ]
      ~tuples:[ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ]
  in
  let target =
    let s = k3_structure () in
    s
  in
  (* arity mismatch: target fibers map arity-1 data; cons_hom_into only
     needs fibers unifiable among themselves *)
  check "triangle with nulls consistent" true (Cons.cons_hom_into ~target db)

let () =
  Alcotest.run "consistency"
    [
      ( "classify",
        [ Alcotest.test_case "classify" `Quick test_classify ] );
      ( "existential",
        [ Alcotest.test_case "cons ∃*" `Quick test_cons_existential ] );
      ( "np-case",
        [
          Alcotest.test_case "hom into K3" `Quick test_cons_hom_into_3col;
          Alcotest.test_case "bounded search" `Quick test_cons_bounded_agrees_with_3col;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "unification" `Quick test_fiber_unification;
          Alcotest.test_case "data constraints" `Quick test_cons_with_data_constraints;
        ] );
    ]
