(* lib/obs — registry semantics, span nesting, snapshot/reset, JSON
   well-formedness, and determinism of the instrumented hom search. *)

module Obs = Certdb_obs.Obs
open Certdb_csp

(* Minimal recursive-descent JSON reader, used only to check that the
   hand-rolled emitter produces well-formed documents. *)
module Json_check = struct
  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let parse_string () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> raise (Bad "unterminated string")
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance ();
            go ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> raise (Bad "bad \\u escape")
            done;
            go ()
          | _ -> raise (Bad "bad escape"))
        | Some _ ->
          advance ();
          go ()
      in
      go ()
    in
    let parse_number () =
      let number_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      let start = !pos in
      while (match peek () with Some c -> number_char c | None -> false) do
        advance ()
      done;
      if !pos = start then raise (Bad "empty number");
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some _ -> ()
      | None -> raise (Bad "bad number")
    in
    let parse_lit lit =
      String.iter (fun c -> expect c) lit
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> raise (Bad "expected , or } in object")
          in
          members ()
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements ()
            | Some ']' -> advance ()
            | _ -> raise (Bad "expected , or ] in array")
          in
          elements ()
        end
      | Some '"' -> parse_string ()
      | Some 't' -> parse_lit "true"
      | Some 'f' -> parse_lit "false"
      | Some 'n' -> parse_lit "null"
      | Some _ -> parse_number ()
      | None -> raise (Bad "empty input")
    in
    parse_value ();
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage")

  let well_formed s =
    match parse s with () -> true | exception Bad _ -> false
end

let cycle n =
  let s =
    List.fold_left
      (fun s v -> Structure.add_node s v)
      Structure.empty (List.init n Fun.id)
  in
  List.fold_left
    (fun s v -> Structure.add_edge s "E" v ((v + 1) mod n))
    s (List.init n Fun.id)

let test_counters () =
  Obs.reset ();
  let c = Obs.counter "test.obs.counter" in
  let c' = Obs.counter "test.obs.counter" in
  Obs.incr c;
  Obs.add c' 4;
  Alcotest.(check int) "registry memoizes by name" 5 (Obs.counter_value c);
  Alcotest.(check (option int))
    "snapshot sees the counter" (Some 5)
    (Obs.find_counter (Obs.snapshot ()) "test.obs.counter");
  Obs.set_enabled false;
  Obs.incr c;
  Obs.set_enabled true;
  Alcotest.(check int) "disabled counters do not move" 5 (Obs.counter_value c)

let test_gauges_timers () =
  Obs.reset ();
  let g = Obs.gauge "test.obs.gauge" in
  Obs.set g 2.5;
  Obs.set_int (Obs.gauge "test.obs.gauge") 7;
  Alcotest.(check (float 1e-9)) "gauge keeps last value" 7. (Obs.gauge_value g);
  let t = Obs.timer "test.obs.timer" in
  Obs.record_ms t 2.;
  Obs.record_ms t 4.;
  Obs.record_ms t 6.;
  let s = Option.get (Obs.find_timer (Obs.snapshot ()) "test.obs.timer") in
  Alcotest.(check int) "count" 3 s.Obs.count;
  Alcotest.(check (float 1e-9)) "total" 12. s.Obs.total_ms;
  Alcotest.(check (float 1e-9)) "mean" 4. s.Obs.mean_ms;
  Alcotest.(check (float 1e-9)) "min" 2. s.Obs.min_ms;
  Alcotest.(check (float 1e-9)) "max" 6. s.Obs.max_ms

let test_timer_quantiles () =
  Obs.reset ();
  let t = Obs.timer "test.obs.quantiles" in
  (* 100 samples 1..100 ms: the log-scale buckets estimate quantiles
     within a sqrt 2 relative error, clamped to the observed [min, max] *)
  for i = 1 to 100 do
    Obs.record_ms t (float_of_int i)
  done;
  let s = Option.get (Obs.find_timer (Obs.snapshot ()) "test.obs.quantiles") in
  let rel_ok q est =
    est >= (q /. Float.sqrt 2.) -. 1e-9 && est <= (q *. Float.sqrt 2.) +. 1e-9
  in
  Alcotest.(check bool) "p50 within bucket error" true (rel_ok 50. s.Obs.p50_ms);
  Alcotest.(check bool) "p95 within bucket error" true (rel_ok 95. s.Obs.p95_ms);
  Alcotest.(check bool) "p99 within bucket error" true (rel_ok 99. s.Obs.p99_ms);
  Alcotest.(check bool) "p50 <= p95" true (s.Obs.p50_ms <= s.Obs.p95_ms);
  Alcotest.(check bool) "p95 <= p99" true (s.Obs.p95_ms <= s.Obs.p99_ms);
  Alcotest.(check bool)
    "quantiles clamped into [min, max]" true
    (s.Obs.p50_ms >= s.Obs.min_ms && s.Obs.p99_ms <= s.Obs.max_ms);
  (* a single sample collapses every quantile onto it exactly *)
  let u = Obs.timer "test.obs.quantiles.single" in
  Obs.record_ms u 3.;
  let s1 =
    Option.get (Obs.find_timer (Obs.snapshot ()) "test.obs.quantiles.single")
  in
  Alcotest.(check (float 1e-9)) "single-sample p50" 3. s1.Obs.p50_ms;
  Alcotest.(check (float 1e-9)) "single-sample p95" 3. s1.Obs.p95_ms;
  Alcotest.(check (float 1e-9)) "single-sample p99" 3. s1.Obs.p99_ms;
  (* reset clears the buckets, not just the moments *)
  Obs.reset ();
  Obs.record_ms t 7.;
  let s2 = Option.get (Obs.find_timer (Obs.snapshot ()) "test.obs.quantiles") in
  Alcotest.(check (float 1e-9)) "p50 after reset" 7. s2.Obs.p50_ms

let test_spans () =
  Obs.reset ();
  (* deterministic fake clock: each read advances 1 ms *)
  let ticks = ref 0. in
  Obs.set_clock_ms (fun () ->
      ticks := !ticks +. 1.;
      !ticks);
  Fun.protect
    ~finally:(fun () ->
      Obs.set_clock_ms (fun () -> Unix.gettimeofday () *. 1000.))
    (fun () ->
      Alcotest.(check int) "no open span" 0 (Obs.span_depth ());
      Obs.with_span "test.obs.outer" (fun () ->
          Alcotest.(check int) "outer open" 1 (Obs.span_depth ());
          Obs.with_span ~labels:[ ("k", "v") ] "test.obs.inner" (fun () ->
              Alcotest.(check int) "nested depth" 2 (Obs.span_depth ())));
      Alcotest.(check int) "all closed" 0 (Obs.span_depth ());
      (* raising inside a span still closes it *)
      (try
         Obs.with_span "test.obs.raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "closed after raise" 0 (Obs.span_depth ());
      let m = Obs.snapshot () in
      let stats name = Option.get (Obs.find_timer m name) in
      Alcotest.(check int) "outer recorded" 1 (stats "test.obs.outer").Obs.count;
      Alcotest.(check int) "labelled inner recorded" 1
        (stats "test.obs.inner{k=v}").Obs.count;
      Alcotest.(check int) "raising span recorded" 1
        (stats "test.obs.raises").Obs.count)

let test_snapshot_reset () =
  Obs.reset ();
  Obs.add (Obs.counter "test.obs.reset") 3;
  Obs.set (Obs.gauge "test.obs.reset_gauge") 1.5;
  Obs.record_ms (Obs.timer "test.obs.reset_timer") 1.;
  Obs.reset ();
  let m = Obs.snapshot () in
  Alcotest.(check (option int))
    "counter survives reset at zero" (Some 0)
    (Obs.find_counter m "test.obs.reset");
  Alcotest.(check (option (float 1e-9)))
    "gauge survives reset at zero" (Some 0.)
    (Obs.find_gauge m "test.obs.reset_gauge");
  Alcotest.(check int) "timer cleared" 0
    (Option.get (Obs.find_timer m "test.obs.reset_timer")).Obs.count;
  let names = List.map fst m.Obs.counters in
  Alcotest.(check bool) "counter names sorted" true
    (List.sort String.compare names = names)

let test_json () =
  Obs.reset ();
  Obs.incr (Obs.counter "test.obs.json");
  (* hostile metric name: quotes, backslash, control char *)
  Obs.incr (Obs.counter "test.obs.\"quoted\\name\"\t");
  Obs.record_ms (Obs.timer "test.obs.json_timer") 0.125;
  let s = Obs.json_string (Obs.snapshot ()) in
  Alcotest.(check bool) "snapshot JSON is well-formed" true
    (Json_check.well_formed s);
  let open Obs.Json in
  Alcotest.(check string) "emitter basics"
    {json|{"a":[1,2.5,null,true,"x\"y\\z"],"b":null}|json}
    (to_string
       (Obj
          [
            ("a", List [ Int 1; Float 2.5; Null; Bool true; String "x\"y\\z" ]);
            ("b", Float Float.nan);
          ]))

let test_find_hom_deterministic () =
  Obs.reset ();
  let source = cycle 6 and target = cycle 3 in
  let decisions = Obs.counter "csp.solver.decisions" in
  let run () =
    let before = Obs.counter_value decisions in
    let h = Solver.find_hom ~source ~target () in
    Alcotest.(check bool) "hom exists" true (Option.is_some h);
    Obs.counter_value decisions - before
  in
  let first = run () in
  let second = run () in
  Alcotest.(check bool) "decision count is nonzero" true (first > 0);
  Alcotest.(check int) "decision count is reproducible" first second

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges and timers" `Quick test_gauges_timers;
          Alcotest.test_case "timer quantiles" `Quick test_timer_quantiles;
          Alcotest.test_case "snapshot/reset" `Quick test_snapshot_reset;
        ] );
      ("spans", [ Alcotest.test_case "nesting" `Quick test_spans ]);
      ("json", [ Alcotest.test_case "well-formedness" `Quick test_json ]);
      ( "solver",
        [
          Alcotest.test_case "deterministic decision count" `Quick
            test_find_hom_deterministic;
        ] );
    ]
