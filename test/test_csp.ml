(* Tests for the CSP substrate: structures, solver, matching, treewidth,
   bounded-treewidth dynamic programming. *)

open Certdb_csp
module IS = Structure.Int_set

let check = Alcotest.(check bool)

let triangle =
  Structure.make
    ~nodes:[ (0, None); (1, None); (2, None) ]
    ~tuples:[ ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ]) ]

let square =
  Structure.make
    ~nodes:[ (0, None); (1, None); (2, None); (3, None) ]
    ~tuples:[ ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 0 |] ]) ]

let labelled_pair =
  Structure.make
    ~nodes:[ (0, Some "a"); (1, Some "b") ]
    ~tuples:[ ("E", [ [| 0; 1 |] ]) ]

let test_structure_basics () =
  Alcotest.(check int) "size" 3 (Structure.size triangle);
  Alcotest.(check int) "tuples" 3 (Structure.tuple_count triangle);
  check "mem tuple" true (Structure.mem_tuple triangle "E" [| 0; 1 |]);
  check "no reverse edge" false (Structure.mem_tuple triangle "E" [| 1; 0 |]);
  check "labels" true
    (Structure.label_of labelled_pair 0 = Some "a")

let test_structure_product () =
  let p, decode = Structure.product triangle triangle in
  Alcotest.(check int) "product nodes" 9 (Structure.size p);
  (* product has an edge for each compatible pair: 3*3 = 9 edges *)
  Alcotest.(check int) "product edges" 9 (Structure.tuple_count p);
  let v = List.hd (Structure.nodes p) in
  let a, b = decode v in
  check "decode in range" true (a >= 0 && a < 3 && b >= 0 && b < 3)

let test_product_labels () =
  let p, _ = Structure.product labelled_pair labelled_pair in
  Alcotest.(check int) "only like-labelled pairs" 2 (Structure.size p)

let test_disjoint_union () =
  let u, inj1, inj2 = Structure.disjoint_union triangle square in
  Alcotest.(check int) "union nodes" 7 (Structure.size u);
  Alcotest.(check int) "union tuples" 7 (Structure.tuple_count u);
  check "injections disjoint" true (inj1 0 <> inj2 0)

let test_restrict () =
  let r = Structure.restrict triangle (IS.of_list [ 0; 1 ]) in
  Alcotest.(check int) "restricted nodes" 2 (Structure.size r);
  Alcotest.(check int) "restricted edges" 1 (Structure.tuple_count r)

let test_gaifman () =
  let g = Structure.gaifman triangle in
  check "neighbors" true
    (IS.equal (Structure.Int_map.find 0 g) (IS.of_list [ 1; 2 ]))

let test_solver_basic () =
  check "triangle -> triangle" true
    (Solver.exists_hom ~source:triangle ~target:triangle ());
  check "square -> square" true
    (Solver.exists_hom ~source:square ~target:square ());
  (* no hom C3 -> C4: directed cycles map iff length divisible *)
  check "triangle -/-> square" false
    (Solver.exists_hom ~source:triangle ~target:square ());
  check "square -/-> triangle" false
    (Solver.exists_hom ~source:square ~target:triangle ())

let test_solver_labels () =
  let flipped =
    Structure.make
      ~nodes:[ (0, Some "b"); (1, Some "a") ]
      ~tuples:[ ("E", [ [| 0; 1 |] ]) ]
  in
  check "labels preserved" true
    (Solver.exists_hom ~source:labelled_pair ~target:labelled_pair ());
  check "label mismatch" false
    (Solver.exists_hom ~source:labelled_pair ~target:flipped ())

let test_solver_witness () =
  match Solver.find_hom ~source:square ~target:square () with
  | None -> Alcotest.fail "expected endomorphism"
  | Some h -> check "witness checks" true (Solver.is_hom ~source:square ~target:square h)

let test_solver_restrict () =
  let r = Domains.of_list [ (0, IS.singleton 1) ] in
  (match Solver.find_hom ~restrict:r ~source:triangle ~target:triangle () with
  | Some h -> Alcotest.(check int) "restricted image" 1 (Structure.Int_map.find 0 h)
  | None -> Alcotest.fail "expected restricted hom");
  let empty_r =
    Domains.of_list [ (0, IS.empty); (1, IS.empty); (2, IS.empty) ]
  in
  check "empty restriction" false
    (Solver.exists_hom ~restrict:empty_r ~source:triangle ~target:triangle ())

let test_solver_agreement_with_naive () =
  for seed = 0 to 20 do
    let mk s p =
      let open Certdb_graph in
      Digraph.to_structure (Digraph.random ~seed:s ~vertices:5 ~edge_prob:p ())
    in
    let a = mk seed 0.3 and b = mk (seed + 100) 0.5 in
    check
      (Printf.sprintf "seed %d: mrv = naive" seed)
      (Option.is_some (Solver.find_hom ~source:a ~target:b ()))
      (Option.is_some (Solver.find_hom_naive ~source:a ~target:b ()))
  done

let test_count_homs () =
  (* homs from a single edge into a triangle: 3 edges to pick *)
  let edge =
    Structure.make ~nodes:[ (0, None); (1, None) ]
      ~tuples:[ ("E", [ [| 0; 1 |] ]) ]
  in
  Alcotest.(check int) "edge into triangle" 3
    (Solver.count_homs ~source:edge ~target:triangle ())

let test_onto () =
  let edge =
    Structure.make ~nodes:[ (0, None); (1, None) ]
      ~tuples:[ ("E", [ [| 0; 1 |] ]) ]
  in
  check "no onto edge -> triangle" false
    (Option.is_some (Solver.find_onto_hom ~source:edge ~target:triangle ()));
  check "onto triangle -> triangle" true
    (Option.is_some (Solver.find_onto_hom ~source:triangle ~target:triangle ()))

(* matching *)
let test_matching_perfect () =
  let g =
    Matching.make ~left:3 ~right:3
      ~edges:[ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2) ]
  in
  let size, ml = Matching.max_matching g in
  Alcotest.(check int) "perfect matching" 3 size;
  check "all matched" true (Array.for_all Option.is_some ml);
  check "saturates" true (Matching.saturates_left g)

let test_matching_hall_violation () =
  (* two left vertices share a single right neighbor *)
  let g = Matching.make ~left:2 ~right:2 ~edges:[ (0, 0); (1, 0) ] in
  check "not saturating" false (Matching.saturates_left g);
  match Matching.hall_violation g with
  | Some u -> check "violator has >= 2 vertices" true (List.length u >= 2)
  | None -> Alcotest.fail "expected a Hall violator"

let test_matching_empty () =
  let g = Matching.make ~left:0 ~right:0 ~edges:[] in
  check "empty saturates" true (Matching.saturates_left g)

(* treewidth *)
let test_treewidth_path () =
  let open Certdb_graph in
  let p = Digraph.to_structure (Digraph.path 6) in
  let d = Treewidth.of_structure p in
  check "valid decomposition" true (Treewidth.is_valid p d);
  Alcotest.(check int) "path width 1" 1 (Treewidth.width d)

let test_treewidth_cycle () =
  let open Certdb_graph in
  let c = Digraph.to_structure (Digraph.cycle 8) in
  let d = Treewidth.of_structure c in
  check "valid decomposition" true (Treewidth.is_valid c d);
  Alcotest.(check int) "cycle width 2" 2 (Treewidth.width d)

let test_treewidth_clique () =
  let open Certdb_graph in
  let k = Digraph.to_structure (Digraph.clique 4) in
  let d = Treewidth.of_structure k in
  check "valid decomposition" true (Treewidth.is_valid k d);
  Alcotest.(check int) "clique width n-1" 3 (Treewidth.width d)

let test_treewidth_exact () =
  let open Certdb_graph in
  (* exact widths on known graphs *)
  let cases =
    [ (Digraph.to_structure (Digraph.path 5), 1);
      (Digraph.to_structure (Digraph.cycle 6), 2);
      (Digraph.to_structure (Digraph.clique 4), 3);
      (Digraph.to_structure (Digraph.grid 2 3), 2) ]
  in
  List.iter
    (fun (s, expected) ->
      let d = Treewidth.exact s in
      check "exact valid" true (Treewidth.is_valid s d);
      Alcotest.(check int) "exact width" expected (Treewidth.width d))
    cases;
  (* heuristics never beat the optimum *)
  for seed = 0 to 8 do
    let g =
      Digraph.to_structure (Digraph.random ~seed ~vertices:7 ~edge_prob:0.3 ())
    in
    let opt = Treewidth.width (Treewidth.exact g) in
    List.iter
      (fun h ->
        check
          (Printf.sprintf "seed %d heuristic >= exact" seed)
          true
          (Treewidth.width (Treewidth.of_structure ~heuristic:h g) >= opt))
      [ `Min_degree; `Min_fill ]
  done;
  Alcotest.check_raises "size guard"
    (Invalid_argument "Treewidth.exact: too many nodes (max 12)") (fun () ->
      ignore (Treewidth.exact (Digraph.to_structure (Digraph.clique 13))))

let test_treewidth_random_valid () =
  for seed = 0 to 10 do
    let open Certdb_graph in
    let g =
      Digraph.to_structure
        (Digraph.random ~seed ~vertices:8 ~edge_prob:0.3 ())
    in
    List.iter
      (fun h ->
        let d = Treewidth.of_structure ~heuristic:h g in
        check (Printf.sprintf "seed %d valid" seed) true
          (Treewidth.is_valid g d))
      [ `Min_degree; `Min_fill ]
  done

(* bounded-treewidth DP vs backtracking solver *)
let test_bounded_tw_agreement () =
  for seed = 0 to 25 do
    let open Certdb_graph in
    (* tree-like sources: paths and cycles (small width) *)
    let source =
      Digraph.to_structure
        (if seed mod 2 = 0 then Digraph.path (3 + (seed mod 4))
         else Digraph.cycle (3 + (seed mod 4)))
    in
    let target =
      Digraph.to_structure
        (Digraph.random ~seed:(seed + 50) ~vertices:5 ~edge_prob:0.4 ())
    in
    check
      (Printf.sprintf "seed %d: dp = solver" seed)
      (Solver.exists_hom ~source ~target ())
      (Bounded_tw.hom ~source ~target ())
  done

let test_bounded_tw_witness () =
  let open Certdb_graph in
  let source = Digraph.to_structure (Digraph.path 4) in
  let target = Digraph.to_structure (Digraph.cycle 3) in
  let restrict = Domains.unconstrained in
  match Bounded_tw.r_hom_witness ~source ~target ~restrict () with
  | None -> Alcotest.fail "path should map into cycle"
  | Some h ->
    check "witness is hom" true (Solver.is_hom ~source ~target h)

let test_bounded_tw_restrict () =
  let open Certdb_graph in
  let source = Digraph.to_structure (Digraph.path 2) in
  let target = Digraph.to_structure (Digraph.cycle 3) in
  (* forbid node 0 of the path from mapping anywhere: unsatisfiable *)
  let restrict = Domains.of_list [ (0, IS.empty) ] in
  check "empty restriction blocks" false
    (Bounded_tw.r_hom ~source ~target ~restrict ());
  (* pin path start to cycle node 1 *)
  let restrict = Domains.singleton 0 1 in
  (match Bounded_tw.r_hom_witness ~source ~target ~restrict () with
  | Some h -> Alcotest.(check int) "pinned" 1 (Structure.Int_map.find 0 h)
  | None -> Alcotest.fail "pinned hom should exist")

let test_bounded_tw_empty_source () =
  check "empty source has hom" true
    (Bounded_tw.hom ~source:Structure.empty ~target:triangle ())

let () =
  Alcotest.run "csp"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_structure_basics;
          Alcotest.test_case "product" `Quick test_structure_product;
          Alcotest.test_case "product labels" `Quick test_product_labels;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "gaifman" `Quick test_gaifman;
        ] );
      ( "solver",
        [
          Alcotest.test_case "basic" `Quick test_solver_basic;
          Alcotest.test_case "labels" `Quick test_solver_labels;
          Alcotest.test_case "witness" `Quick test_solver_witness;
          Alcotest.test_case "restrict" `Quick test_solver_restrict;
          Alcotest.test_case "mrv vs naive" `Quick test_solver_agreement_with_naive;
          Alcotest.test_case "count" `Quick test_count_homs;
          Alcotest.test_case "onto" `Quick test_onto;
        ] );
      ( "matching",
        [
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "hall violation" `Quick test_matching_hall_violation;
          Alcotest.test_case "empty" `Quick test_matching_empty;
        ] );
      ( "treewidth",
        [
          Alcotest.test_case "path" `Quick test_treewidth_path;
          Alcotest.test_case "cycle" `Quick test_treewidth_cycle;
          Alcotest.test_case "clique" `Quick test_treewidth_clique;
          Alcotest.test_case "random valid" `Quick test_treewidth_random_valid;
          Alcotest.test_case "exact" `Quick test_treewidth_exact;
        ] );
      ( "bounded_tw",
        [
          Alcotest.test_case "agreement" `Quick test_bounded_tw_agreement;
          Alcotest.test_case "witness" `Quick test_bounded_tw_witness;
          Alcotest.test_case "restriction" `Quick test_bounded_tw_restrict;
          Alcotest.test_case "empty source" `Quick test_bounded_tw_empty_source;
        ] );
    ]
